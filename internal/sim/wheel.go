package sim

import "time"

// The hierarchical timer wheel defers mid-range events away from the
// heap. A fleet schedules O(clients) concurrent pacing, RTO and drain
// timers per tick; keeping them all in one heap makes every push/pop
// pay O(log n) on a structure too big for cache. The wheel gives those
// timers O(1) insertion and lets timers that are cancelled before
// maturing (the RTO re-arm pattern: armed per send, stopped per ACK)
// die without ever touching the heap.
//
// Layout: wheelLevels levels of wheelSlots slots each. One tick is
// 1<<tickShift nanoseconds (~524 µs); a level-L slot spans
// wheelSlots^L ticks, so the wheel covers ~2.4 hours. Events due in
// the current tick go straight to the heap, events beyond the wheel
// horizon overflow to the heap too (the far-future tier). The heap
// therefore always holds the imminent frontier and orders it by
// (at, seq) exactly as before; the wheel only controls *when* an event
// is handed to the heap, never in which order it fires. A slot is
// flushed before the clock can reach any timestamp inside it (slots
// are flushed whenever their start bound reaches the heap frontier,
// compared with <=, so ties are broken by seq in the heap), which is
// what keeps the firing order bit-identical to a pure-heap scheduler —
// the property the equivalence suite in wheel_test.go pins.
const (
	tickShift   = 19 // one tick = 2^19 ns ≈ 524 µs
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
)

// wheelNode is one deferred event in a slot's singly-linked list.
// Nodes live in Scheduler.wnodes and are recycled through wfree; links
// are index+1 so the zero value means nil and fresh slots need no
// initialization.
type wheelNode struct {
	ev   event
	next int32
}

// place routes a scheduled event to the heap or a wheel slot.
func (s *Scheduler) place(ev event) {
	d := int64(ev.at>>tickShift) - s.wcursor
	var level int
	switch {
	case d < 1:
		s.push(ev)
		return
	case d < 1<<wheelBits:
		level = 0
	case d < 1<<(2*wheelBits):
		level = 1
	case d < 1<<(3*wheelBits):
		level = 2
	default: // beyond the wheel horizon: far-future overflow tier
		s.push(ev)
		return
	}
	lt := int64(ev.at>>tickShift) >> (wheelBits * level)
	slot := int(lt & wheelMask)
	var ni int32
	if n := len(s.wfree); n > 0 {
		ni = s.wfree[n-1]
		s.wfree = s.wfree[:n-1]
	} else {
		s.wnodes = append(s.wnodes, wheelNode{})
		ni = int32(len(s.wnodes)) // index+1
	}
	nd := &s.wnodes[ni-1]
	nd.ev = ev
	nd.next = s.wheel[level][slot]
	s.wheel[level][slot] = ni
	s.wbits[level][slot>>6] |= 1 << (slot & 63)
	s.wcount++
	if start := lt << (wheelBits * level); s.wbound >= 0 && start < s.wbound {
		s.wbound = start
	}
}

// wheelBound returns the start tick of the earliest occupied slot — a
// lower bound on every wheel event's timestamp. The scan result is
// cached; insertions below the cache min-update it and advances
// invalidate it.
func (s *Scheduler) wheelBound() int64 {
	if s.wbound >= 0 {
		return s.wbound
	}
	best := int64(-1)
	for level := 0; level < wheelLevels; level++ {
		cur := s.wcursor >> (wheelBits * level)
		d := s.nextOccupied(level, int(cur&wheelMask))
		if d == 0 {
			continue
		}
		start := (cur + int64(d)) << (wheelBits * level)
		if best < 0 || start < best {
			best = start
		}
	}
	s.wbound = best
	return best
}

// nextOccupied returns the cyclic distance (1..wheelSlots) from
// curSlot to the next occupied slot of the level, or 0 if the level is
// empty. Distance wheelSlots is curSlot itself — a slot one full
// rotation ahead.
func (s *Scheduler) nextOccupied(level, curSlot int) int {
	bm := &s.wbits[level]
	for d := 1; d <= wheelSlots; d++ {
		slot := (curSlot + d) & wheelMask
		if bm[slot>>6]&(1<<(slot&63)) != 0 {
			return d
		}
	}
	return 0
}

// advance moves the wheel cursor to tick (an occupied-slot start bound
// from wheelBound) and flushes the slot entered at every level:
// matured events go to the heap, still-distant ones re-place into a
// lower level, cancelled timers are dropped without ever reaching the
// heap. Every slot whose start is < tick is empty by construction
// (tick is the minimal occupied bound), so the cursor can jump.
func (s *Scheduler) advance(tick int64) {
	old := s.wcursor
	s.wcursor = tick
	s.wbound = -1
	for level := wheelLevels - 1; level >= 0; level-- {
		sh := wheelBits * level
		if tick>>sh == old>>sh {
			continue // still in the same level-L slot
		}
		slot := int((tick >> sh) & wheelMask)
		ni := s.wheel[level][slot]
		if ni == 0 {
			continue
		}
		s.wheel[level][slot] = 0
		s.wbits[level][slot>>6] &^= 1 << (slot & 63)
		for ni != 0 {
			nd := &s.wnodes[ni-1]
			ev, next := nd.ev, nd.next
			nd.ev = event{} // release fn/task references
			s.wfree = append(s.wfree, ni)
			s.wcount--
			ni = next
			if ev.slot != noSlot && s.slots[ev.slot].stopped {
				s.freeSlot(ev.slot)
				continue
			}
			if level == 0 {
				// A level-0 slot entered by the cursor holds only matured
				// events: batch-pop the whole slot straight onto the heap
				// instead of re-deriving the route per event.
				s.push(ev)
				continue
			}
			s.place(ev)
		}
	}
}

// nextReady flushes the wheel up to the heap frontier and returns the
// timestamp of the earliest live event. On return the event is at the
// top of the heap; the wheel holds only events at strictly later
// timestamps (or equal timestamps with larger seq — impossible, since
// equal timestamps share a slot bound and the bound comparison is <=).
func (s *Scheduler) nextReady() (time.Duration, bool) {
	for {
		at, ok := s.heapTopLive()
		if s.wcount == 0 {
			return at, ok
		}
		b := s.wheelBound()
		if b < 0 {
			return at, ok
		}
		if ok && at < time.Duration(b<<tickShift) {
			return at, true
		}
		s.advance(b)
	}
}

// heapTopLive discards cancelled timers at the top of the heap and
// reports the earliest live heap event's timestamp.
func (s *Scheduler) heapTopLive() (time.Duration, bool) {
	for len(s.heap) > 0 {
		ev := &s.heap[0]
		if ev.slot != noSlot && s.slots[ev.slot].stopped {
			popped := s.pop()
			s.freeSlot(popped.slot)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// wheelPending counts live (non-cancelled) events parked in the wheel.
func (s *Scheduler) wheelPending() int {
	n := 0
	for level := range s.wheel {
		for _, ni := range s.wheel[level] {
			for ni != 0 {
				nd := &s.wnodes[ni-1]
				if nd.ev.slot == noSlot || !s.slots[nd.ev.slot].stopped {
					n++
				}
				ni = nd.next
			}
		}
	}
	return n
}
