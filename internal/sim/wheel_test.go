package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The wheel must be invisible: every workload fires in exactly the
// (time, insertion-order) sequence a plain sorted event list produces.
// refSched is that sorted list — an O(n^2) executable spec of the
// scheduler contract — and runWorkload drives both implementations
// through identical randomized schedule/stop/re-arm scripts spanning
// every wheel tier (sub-tick, levels 0-2, and far-future overflow).

type refEvent struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped *bool
}

type refSched struct {
	now time.Duration
	seq uint64
	evs []refEvent
}

func (r *refSched) after(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	r.evs = append(r.evs, refEvent{at: r.now + d, seq: r.seq, fn: fn})
	r.seq++
}

func (r *refSched) timer(d time.Duration, fn func()) func() bool {
	if d < 0 {
		d = 0
	}
	stopped := new(bool)
	fired := new(bool)
	r.evs = append(r.evs, refEvent{
		at:  r.now + d,
		seq: r.seq,
		fn: func() {
			*fired = true
			fn()
		},
		stopped: stopped,
	})
	r.seq++
	return func() bool {
		if *stopped || *fired {
			return false
		}
		*stopped = true
		return true
	}
}

// next returns the index of the earliest live event, or -1.
func (r *refSched) next() int {
	best := -1
	for i := range r.evs {
		e := &r.evs[i]
		if e.stopped != nil && *e.stopped {
			continue
		}
		if best < 0 || e.at < r.evs[best].at ||
			(e.at == r.evs[best].at && e.seq < r.evs[best].seq) {
			best = i
		}
	}
	return best
}

func (r *refSched) step(i int) {
	ev := r.evs[i]
	r.evs = append(r.evs[:i], r.evs[i+1:]...)
	r.now = ev.at
	ev.fn()
}

func (r *refSched) run() {
	for {
		i := r.next()
		if i < 0 {
			return
		}
		r.step(i)
	}
}

func (r *refSched) runUntil(deadline time.Duration) {
	for {
		i := r.next()
		if i < 0 || r.evs[i].at > deadline {
			break
		}
		r.step(i)
	}
	if r.now < deadline {
		r.now = deadline
	}
}

func (r *refSched) nowAt() time.Duration { return r.now }

func (r *refSched) pending() int {
	n := 0
	for i := range r.evs {
		if e := &r.evs[i]; e.stopped == nil || !*e.stopped {
			n++
		}
	}
	return n
}

// wlDriver abstracts the surface the workload script uses, so the same
// script runs against the real scheduler and the reference.
type wlDriver interface {
	after(d time.Duration, fn func())
	timer(d time.Duration, fn func()) func() bool
	run()
	runUntil(deadline time.Duration)
	nowAt() time.Duration
	pending() int
}

type realDriver struct{ s *Scheduler }

func (r realDriver) after(d time.Duration, fn func()) { r.s.After(d, fn) }
func (r realDriver) timer(d time.Duration, fn func()) func() bool {
	return r.s.TimerAfter(d, fn).Stop
}
func (r realDriver) run()                            { r.s.Run() }
func (r realDriver) runUntil(deadline time.Duration) { r.s.RunUntil(deadline) }
func (r realDriver) nowAt() time.Duration            { return r.s.Now() }
func (r realDriver) pending() int                    { return r.s.Pending() }

type traceEntry struct {
	id int
	at time.Duration
}

// runWorkload drives d through a deterministic random script: an
// initial batch of events whose callbacks spawn more events, arm
// cancellable timers, and stop/re-arm earlier timers. Delays are drawn
// from every tier the scheduler routes between — exact ties, sub-tick,
// wheel levels 0/1/2, and beyond-horizon overflow — so tier-crossing
// reinsertions and cross-tier timestamp ties are all exercised. The
// trace (and the embedded rng) diverges at the first ordering
// difference, so equal traces mean bit-identical firing order.
func runWorkload(d wlDriver, seed int64, n int) []traceEntry {
	rng := rand.New(rand.NewSource(seed))
	var trace []traceEntry
	var stops []func() bool
	id := 0
	delay := func() time.Duration {
		switch rng.Intn(7) {
		case 0:
			return 0 // exact tie with now
		case 1:
			return time.Duration(rng.Int63n(1 << tickShift)) // sub-tick: heap
		case 2:
			return time.Duration(rng.Int63n(int64(100 * time.Millisecond))) // level 0
		case 3:
			return time.Duration(rng.Int63n(int64(30 * time.Second))) // level 1
		case 4:
			return time.Duration(rng.Int63n(int64(2 * time.Hour))) // level 2
		case 5:
			return 3*time.Hour + time.Duration(rng.Int63n(int64(8*time.Hour))) // overflow
		default:
			// Tick-aligned, so distinct events collide on slot starts.
			return time.Duration(rng.Int63n(512)) << tickShift
		}
	}
	var fire func(myID int) func()
	fire = func(myID int) func() {
		return func() {
			trace = append(trace, traceEntry{myID, d.nowAt()})
			switch r := rng.Intn(10); {
			case r < 3 && myID < n*6: // spawn follow-up events
				for k := rng.Intn(2); k >= 0; k-- {
					id++
					d.after(delay(), fire(id))
				}
			case r < 6 && myID < n*6: // arm a cancellable timer
				id++
				stops = append(stops, d.timer(delay(), fire(id)))
			case r < 8 && len(stops) > 0: // stop one; re-arm if it was live
				if stops[rng.Intn(len(stops))]() && myID < n*6 {
					id++
					d.after(delay(), fire(id))
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		id++
		if i%3 == 0 {
			stops = append(stops, d.timer(delay(), fire(id)))
		} else {
			d.after(delay(), fire(id))
		}
	}
	// Stop a few timers before anything runs (pure-wheel cancellation).
	for i := 0; i < len(stops); i += 4 {
		stops[i]()
	}
	d.runUntil(90 * time.Second)
	trace = append(trace, traceEntry{-1, d.nowAt()})
	trace = append(trace, traceEntry{-d.pending() - 2, 0})
	d.run()
	trace = append(trace, traceEntry{-1, d.nowAt()})
	return trace
}

func diffTraces(t *testing.T, seed int64, ref, got []traceEntry) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("seed %d: trace lengths differ: ref %d vs wheel %d", seed, len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("seed %d: traces diverge at %d: ref %+v vs wheel %+v", seed, i, ref[i], got[i])
		}
	}
}

// TestWheelHeapEquivalence pins the tentpole invariant: the wheel-based
// scheduler fires randomized timer workloads in exactly the order the
// reference sorted-list scheduler does.
func TestWheelHeapEquivalence(t *testing.T) {
	n := 48
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		ref := runWorkload(&refSched{}, seed, n)
		got := runWorkload(realDriver{NewScheduler(1)}, seed, n)
		diffTraces(t, seed, ref, got)
	}
}

// FuzzWheelEquivalence lets the fuzzer hunt for workload shapes where
// the wheel's firing order deviates from the reference.
func FuzzWheelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(16))
	f.Add(int64(42), uint8(64))
	f.Add(int64(-7), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		size := int(n%96) + 1
		ref := runWorkload(&refSched{}, seed, size)
		got := runWorkload(realDriver{NewScheduler(1)}, seed, size)
		diffTraces(t, seed, ref, got)
	})
}

// TestWheelPendingTiers checks Pending() sees events parked in every
// tier and that cancellation is reflected before any cascade runs.
func TestWheelPendingTiers(t *testing.T) {
	s := NewScheduler(1)
	delays := []time.Duration{
		100 * time.Microsecond, // sub-tick: heap
		50 * time.Millisecond,  // level 0
		10 * time.Second,       // level 1
		time.Hour,              // level 2
		6 * time.Hour,          // overflow: heap
	}
	for _, d := range delays {
		s.After(d, func() {})
	}
	tm := s.TimerAfter(20*time.Second, func() { t.Fatal("stopped timer fired") })
	if got := s.Pending(); got != len(delays)+1 {
		t.Fatalf("Pending = %d, want %d", got, len(delays)+1)
	}
	tm.Stop()
	if got := s.Pending(); got != len(delays) {
		t.Fatalf("Pending after Stop = %d, want %d", got, len(delays))
	}
	s.RunUntil(time.Minute)
	if s.Pending() != 2 { // hour + 6h still parked
		t.Fatalf("Pending after RunUntil(1m) = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", s.Pending())
	}
	if s.Now() != 6*time.Hour {
		t.Fatalf("clock = %v, want 6h", s.Now())
	}
}

// TestWheelTieAcrossTiers pins seq-order ties between an event parked
// early in the wheel and one scheduled later straight into the heap
// for the same instant: insertion order must win.
func TestWheelTieAcrossTiers(t *testing.T) {
	s := NewScheduler(1)
	target := 600 * time.Millisecond
	var got []int
	s.At(target, func() { got = append(got, 1) }) // parked in the wheel
	s.At(target-time.Millisecond, func() {
		s.At(target, func() { got = append(got, 2) }) // near-term: heap
		s.At(target, func() { got = append(got, 3) })
	})
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("tie across tiers fired as %v, want [1 2 3]", got)
	}
}

// TestWheelStopInsideWheel cancels a timer that lives deep in the
// wheel and checks it neither fires nor leaks into Pending, while an
// unrelated later event still fires at the right time.
func TestWheelStopInsideWheel(t *testing.T) {
	s := NewScheduler(1)
	tm := s.TimerAfter(45*time.Minute, func() { t.Fatal("stopped timer fired") })
	fired := false
	s.After(time.Hour, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on parked timer reported false")
	}
	s.Run()
	if !fired {
		t.Fatal("surviving event did not fire")
	}
	if s.Now() != time.Hour {
		t.Fatalf("clock = %v, want 1h", s.Now())
	}
}

// TestWheelRearmChurn drives the RTO pattern — arm, stop before
// maturity, re-arm — through wheel tiers and verifies the survivor
// count and final clock.
func TestWheelRearmChurn(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	var rearm func(depth int)
	rearm = func(depth int) {
		tm := s.TimerAfter(time.Duration(depth+1)*time.Second, func() { t.Fatal("cancelled RTO fired") })
		s.After(500*time.Millisecond, func() {
			if !tm.Stop() {
				t.Fatal("RTO already fired before Stop")
			}
			if depth > 0 {
				rearm(depth - 1)
			} else {
				s.After(250*time.Millisecond, func() { fired++ })
			}
		})
	}
	rearm(20)
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}
