package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerTieBreakFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulerAfterRelative(t *testing.T) {
	s := NewScheduler(1)
	var at time.Duration
	s.After(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 12ms", at)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run()
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.TimerAfter(10*time.Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.TimerAfter(time.Millisecond, func() {})
	s.Run()
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

// Regression for the seed's operator-precedence bug: Stop after the
// callback fired must report false even when called many times, and a
// double Stop on a pending timer must cancel exactly once.
func TestTimerStopAfterFireAndDoubleStop(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := s.TimerAfter(time.Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	for i := 0; i < 3; i++ {
		if tm.Stop() {
			t.Fatalf("Stop #%d after fire reported true", i+1)
		}
	}

	cancelled := s.TimerAfter(time.Millisecond, func() { t.Fatal("stopped timer fired") })
	if !cancelled.Stop() {
		t.Fatal("first Stop on a pending timer must report true")
	}
	if cancelled.Stop() {
		t.Fatal("second Stop on the same timer must report false")
	}
	if cancelled.Active() {
		t.Fatal("stopped timer still active")
	}
	s.Run()
}

// A recycled timer slot must not resurrect a stale handle.
func TestTimerSlotReuse(t *testing.T) {
	s := NewScheduler(1)
	old := s.TimerAfter(time.Millisecond, func() {})
	s.Run()
	fired := false
	fresh := s.TimerAfter(time.Millisecond, func() { fired = true })
	if old.Stop() || old.Active() {
		t.Fatal("stale handle acted on a recycled slot")
	}
	s.Run()
	if !fired {
		t.Fatal("fresh timer did not fire")
	}
	_ = fresh
}

type opRecorder struct{ ops []int32 }

func (r *opRecorder) RunTask(op int32) { r.ops = append(r.ops, op) }

func TestTaskScheduling(t *testing.T) {
	s := NewScheduler(1)
	r := &opRecorder{}
	s.AtTask(2*time.Millisecond, r, 2)
	s.AtTask(time.Millisecond, r, 1)
	s.AfterTask(3*time.Millisecond, r, 3)
	tm := s.TimerAfterTask(4*time.Millisecond, r, 4)
	stopped := s.TimerAfterTask(5*time.Millisecond, r, 5)
	stopped.Stop()
	s.Run()
	want := []int32{1, 2, 3, 4}
	if len(r.ops) != len(want) {
		t.Fatalf("ops = %v, want %v", r.ops, want)
	}
	for i := range want {
		if r.ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", r.ops, want)
		}
	}
	if tm.Active() {
		t.Fatal("fired task timer still active")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25ms) fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*time.Millisecond {
		t.Fatalf("clock = %v, want 25ms", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.RunUntil(100 * time.Millisecond)
	if len(fired) != 4 {
		t.Fatalf("second RunUntil fired %d total, want 4", len(fired))
	}
}

func TestStopAbortsRun(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("ran %d events after Stop, want 3", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, s.Rand().Int63n(1000))
			if len(out) < 50 {
				s.After(time.Duration(s.Rand().Intn(100))*time.Microsecond, tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events with arbitrary delays, Run fires
// them in nondecreasing time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := NewScheduler(7)
		var fired []time.Duration
		var maxT time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			if at > maxT {
				maxT = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, next)
		}
	}
	s.After(0, next)
	s.Run()
}
