// Package sim provides a deterministic discrete-event scheduler used by
// every other substrate in this repository. Virtual time is a
// time.Duration offset from the start of the simulation; events fire in
// (time, insertion-order) order, so runs with the same seed are fully
// reproducible.
//
// The event queue is a two-tier structure: a hierarchical timer wheel
// (wheel.go) absorbs mid-range timers with O(1) insertion and
// heap-free cancellation, while a value-based 4-ary heap orders the
// imminent frontier by (time, insertion-order) and holds far-future
// overflow. Entries are stored inline, so scheduling a fire-and-forget
// event performs no allocation beyond the callback itself. Hot paths
// that would otherwise allocate a closure per event can instead
// implement Task and schedule themselves with AtTask, passing a small
// op code to select the behaviour. Cancellable timers draw bookkeeping
// slots from a free list, so re-arming a timer (the TCP RTO pattern)
// is allocation-free at steady state.
package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"time"
)

// Task is a pre-allocated event callback. A single Task value may be
// scheduled several times with different op codes; RunTask dispatches
// on op. This exists so hot paths (one or more events per packet) can
// avoid allocating a closure per event.
type Task interface {
	RunTask(op int32)
}

// event is one scheduled callback, stored by value in the heap. seq
// breaks ties between events scheduled for the same instant so
// ordering is deterministic. Exactly one of fn and task is set. slot
// is the timer-slot index for cancellable events, -1 otherwise.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	task Task
	op   int32
	slot int32
}

// timerSlot tracks the cancellation state of one outstanding timer.
// Slots are recycled through a free list; gen distinguishes a live
// slot from a stale Timer handle pointing at a recycled one.
type timerSlot struct {
	gen     uint32
	pending bool
	stopped bool
}

const noSlot = -1

// Timer is a handle to a cancellable scheduled event. The zero value
// is inert: Stop and Active return false.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the callback had not yet
// fired (and therefore will never fire). Stopping an already-fired or
// already-stopped timer is a no-op that reports false.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	if sl.gen != t.gen || !sl.pending || sl.stopped {
		return false
	}
	sl.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	return sl.gen == t.gen && sl.pending && !sl.stopped
}

// Scheduler is a single-threaded discrete-event loop. The zero value is
// not usable; call NewScheduler.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	cur     uint64 // seq of the executing event; == seq when idle
	heap    []event
	slots   []timerSlot
	free    []int32
	rng     *rand.Rand
	stopped bool

	// Same-timestamp batch dispatch state (see runFrontier): batch holds
	// the events popped for the current timestamp in seq order, batchPos
	// the next one to run, scratch the reusable index buffer popBatch
	// collects the equal-time heap subtree into.
	batch    []event
	batchPos int
	scratch  []int32

	// Hierarchical timer wheel (see wheel.go). The heap above holds the
	// imminent frontier plus far-future overflow; mid-range events park
	// in wheel slots and cascade into the heap before they can fire.
	wheel   [wheelLevels][wheelSlots]int32       // per-slot list head, index+1 into wnodes
	wbits   [wheelLevels][wheelSlots / 64]uint64 // slot occupancy bitmaps
	wnodes  []wheelNode
	wfree   []int32 // recycled wnodes entries, index+1
	wcount  int     // events currently parked in the wheel
	wcursor int64   // tick the wheel has advanced to; wheel events are strictly later
	wbound  int64   // cached earliest occupied slot start (ticks); -1 = recompute
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed)), wbound: -1}
}

// Reset returns the scheduler to the state NewScheduler(seed) produces
// while keeping every backing allocation — heap, timer slots, batch and
// wheel-node storage — so a recycled scheduler runs the next simulation
// without rebuilding its queues. Pending events are discarded (their
// fn/task references released) and the rng is re-seeded. Outstanding
// Timer handles must not be used across a Reset: slot generations
// restart, so a stale handle could alias a fresh timer.
func (s *Scheduler) Reset(seed int64) {
	s.now = 0
	s.seq = 0
	s.cur = 0
	clear(s.heap)
	s.heap = s.heap[:0]
	clear(s.slots)
	s.slots = s.slots[:0]
	s.free = s.free[:0]
	s.rng = rand.New(rand.NewSource(seed))
	s.stopped = false
	clear(s.batch)
	s.batch = s.batch[:0]
	s.batchPos = 0
	s.scratch = s.scratch[:0]
	s.wheel = [wheelLevels][wheelSlots]int32{}
	s.wbits = [wheelLevels][wheelSlots / 64]uint64{}
	clear(s.wnodes)
	s.wnodes = s.wnodes[:0]
	s.wfree = s.wfree[:0]
	s.wcount = 0
	s.wcursor = 0
	s.wbound = -1
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

func (s *Scheduler) schedule(t time.Duration, fn func(), task Task, op int32, slot int32) {
	s.placeAt(event{at: t, seq: s.seq, fn: fn, task: task, op: op, slot: slot})
	s.seq++
}

// placeAt routes a fully formed event (timestamp and sequence number
// already assigned) into the wheel or heap.
func (s *Scheduler) placeAt(ev event) {
	if ev.at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", ev.at, s.now))
	}
	if s.wcount == 0 {
		// An empty wheel can advance for free; keeping the cursor at the
		// clock keeps short delays in level 0 instead of overflow.
		if nowTick := int64(s.now >> tickShift); nowTick > s.wcursor {
			s.wcursor = nowTick
		}
	}
	s.place(ev)
}

// ---- Event elision (drain pumps) ----
//
// A hot path that would schedule one event per packet can instead keep
// its pending work in its own FIFO and arm a single timer for the
// earliest entry (netem.Link is the canonical user). To keep the global
// firing order bit-identical to the one-event-per-packet scheme, the
// pump reserves a sequence number per elided event at the moment the
// reference scheme would have scheduled it (ReserveSeq), arms its timer
// with the earliest entry's reserved number (AtTaskSeq), and before
// retiring each entry asks whether any real pending event orders before
// it (PendingBefore) — if one does, the pump re-arms and yields.
// AdoptSeq makes the retired entry the "current" event so that lazy
// state settled against EventSeq (e.g. link queue occupancy) observes
// exactly the state the reference scheme would have produced.

// ReserveSeq consumes and returns the next event sequence number
// without scheduling anything. Elided events must reserve their numbers
// exactly where the non-elided scheme would have scheduled them.
func (s *Scheduler) ReserveSeq() uint64 {
	seq := s.seq
	s.seq++
	return seq
}

// AtTaskSeq schedules task.RunTask(op) at absolute time t with a
// previously reserved sequence number, so the event fires exactly where
// the reservation point falls in the global (time, insertion) order.
// Events for the current instant bypass the wheel: in-flight batch
// dispatch consults only the heap for same-timestamp ordering.
func (s *Scheduler) AtTaskSeq(t time.Duration, seq uint64, task Task, op int32) {
	ev := event{at: t, seq: seq, task: task, op: op, slot: noSlot}
	if t == s.now {
		s.push(ev)
		return
	}
	s.placeAt(ev)
}

// PendingBefore reports whether any live pending event orders strictly
// before (t, seq). Cancelled timers encountered at the frontier are
// discarded, exactly as the dispatch loop would discard them.
func (s *Scheduler) PendingBefore(t time.Duration, seq uint64) bool {
	for s.batchPos < len(s.batch) {
		e := &s.batch[s.batchPos]
		if e.slot != noSlot && s.slots[e.slot].stopped {
			s.freeSlot(e.slot)
			s.batch[s.batchPos] = event{}
			s.batchPos++
			continue
		}
		if e.at < t || (e.at == t && e.seq < seq) {
			return true
		}
		break
	}
	if at, ok := s.heapTopLive(); ok {
		if at < t || (at == t && s.heap[0].seq < seq) {
			return true
		}
	}
	return false
}

// AdoptSeq marks a reserved sequence number as the currently executing
// event. Pumps call it per retired entry so EventSeq-based lazy
// settling sees the reference scheme's exact execution point.
func (s *Scheduler) AdoptSeq(seq uint64) { s.cur = seq }

// EventSeq returns the sequence number of the event being executed, or
// the next number to be assigned when the loop is idle — the bound
// below which every scheduled event has already fired.
func (s *Scheduler) EventSeq() uint64 { return s.cur }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it is always a logic error in a discrete-event model.
// Use TimerAt when the event may need to be cancelled.
func (s *Scheduler) At(t time.Duration, fn func()) {
	s.schedule(t, fn, nil, 0, noSlot)
}

// fromNow converts a relative delay to an absolute timestamp,
// clamping negative delays to "now".
func (s *Scheduler) fromNow(d time.Duration) time.Duration {
	if d < 0 {
		return s.now
	}
	return s.now + d
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.schedule(s.fromNow(d), fn, nil, 0, noSlot)
}

// AtTask schedules task.RunTask(op) at absolute virtual time t without
// allocating: the task is supplied by the caller and the event itself
// is stored inline in the heap.
func (s *Scheduler) AtTask(t time.Duration, task Task, op int32) {
	s.schedule(t, nil, task, op, noSlot)
}

// AfterTask schedules task.RunTask(op) to run d after the current time.
func (s *Scheduler) AfterTask(d time.Duration, task Task, op int32) {
	s.schedule(s.fromNow(d), nil, task, op, noSlot)
}

// newTimer allocates a cancellation slot from the free list.
func (s *Scheduler) newTimer() (int32, Timer) {
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, timerSlot{})
	}
	sl := &s.slots[slot]
	sl.pending = true
	sl.stopped = false
	return slot, Timer{s: s, slot: slot, gen: sl.gen}
}

// freeSlot retires a slot after its event popped (fired or cancelled),
// invalidating outstanding Timer handles.
func (s *Scheduler) freeSlot(slot int32) {
	sl := &s.slots[slot]
	sl.gen++
	sl.pending = false
	sl.stopped = false
	s.free = append(s.free, slot)
}

// TimerAt schedules fn at absolute virtual time t and returns a handle
// that can cancel it.
func (s *Scheduler) TimerAt(t time.Duration, fn func()) Timer {
	slot, tm := s.newTimer()
	s.schedule(t, fn, nil, 0, slot)
	return tm
}

// TimerAfter schedules fn to run d after the current time and returns
// a cancellation handle.
func (s *Scheduler) TimerAfter(d time.Duration, fn func()) Timer {
	return s.TimerAt(s.fromNow(d), fn)
}

// TimerAfterTask is TimerAfter for pre-allocated Tasks: cancellable and
// allocation-free at steady state.
func (s *Scheduler) TimerAfterTask(d time.Duration, task Task, op int32) Timer {
	slot, tm := s.newTimer()
	s.schedule(s.fromNow(d), nil, task, op, slot)
	return tm
}

// ---- 4-ary heap, ordered by (at, seq) ----
//
// A 4-ary layout halves the tree depth of a binary heap; combined with
// value storage this keeps pop/push cache-friendly, which dominates
// the simulator's profile at packet scale.

func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(ev event) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(&ev, &s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = ev
}

func (s *Scheduler) pop() event {
	top := s.heap[0]
	n := len(s.heap) - 1
	ev := s.heap[n]
	s.heap[n] = event{} // release fn/task references
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(ev)
	}
	return top
}

func (s *Scheduler) siftDown(ev event) { s.siftDownFrom(0, ev) }

// siftDownFrom sifts ev down from heap index i. The subtree rooted at
// i must satisfy the heap property; ev's relation to i's ancestors is
// the caller's responsibility (popBatch only ever fills a hole with an
// element strictly greater than the hole's surviving parent).
func (s *Scheduler) siftDownFrom(i int, ev event) {
	h := s.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if evLess(&h[c], &h[best]) {
				best = c
			}
		}
		if !evLess(&h[best], &ev) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
}

// ---- Event loop ----

// Step runs the single earliest pending event. It reports whether an
// event was run.
func (s *Scheduler) Step() bool {
	if _, ok := s.nextReady(); !ok {
		return false
	}
	ev := s.pop()
	if ev.slot != noSlot {
		s.freeSlot(ev.slot)
	}
	s.now = ev.at
	s.exec(ev)
	s.cur = s.seq
	return true
}

// exec runs one event with its seq exposed through EventSeq.
func (s *Scheduler) exec(ev event) {
	s.cur = ev.seq
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.task.RunTask(ev.op)
	}
}

// Run processes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.runFrontier(0, false) {
	}
}

// RunUntil processes events with timestamps <= deadline and then
// advances the clock to deadline. Events scheduled after deadline stay
// pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped && s.runFrontier(deadline, true) {
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// runFrontier advances the clock to the earliest pending timestamp and
// runs every event scheduled for that instant in one settle: the
// equal-time heap prefix is popped as a batch (popBatch) instead of
// re-sifting the whole heap per event. Handlers that schedule more work
// for the same instant are accommodated — fresh events carry larger
// seqs and are drained by the re-settle loop, while borrowed-seq pump
// arms (AtTaskSeq pushes them straight to the heap when t == now) are
// interleaved into the batch remainder by peeking the heap top between
// events. Reports whether any timestamp was processed; with bounded
// set, timestamps past deadline are left pending.
func (s *Scheduler) runFrontier(deadline time.Duration, bounded bool) bool {
	t, ok := s.nextReady()
	if !ok || (bounded && t > deadline) {
		return false
	}
	s.now = t
	for {
		s.popBatch(t)
		for s.batchPos < len(s.batch) {
			if s.stopped {
				// Requeue the remainder so a later Run resumes exactly
				// where this one was aborted.
				for _, ev := range s.batch[s.batchPos:] {
					s.push(ev)
				}
				s.resetBatch()
				s.cur = s.seq
				return true
			}
			if at, live := s.heapTopLive(); live && at == t && s.heap[0].seq < s.batch[s.batchPos].seq {
				ev := s.pop()
				if ev.slot != noSlot {
					s.freeSlot(ev.slot)
				}
				s.exec(ev)
				continue
			}
			ev := s.batch[s.batchPos]
			s.batch[s.batchPos] = event{}
			s.batchPos++
			if ev.slot != noSlot {
				if s.slots[ev.slot].stopped {
					s.freeSlot(ev.slot)
					continue
				}
				s.freeSlot(ev.slot)
			}
			s.exec(ev)
		}
		s.resetBatch()
		next, more := s.nextReady()
		if !more || next != t {
			break
		}
	}
	s.cur = s.seq
	return true
}

// resetBatch clears the batch buffer for reuse, releasing fn/task
// references held by unconsumed entries.
func (s *Scheduler) resetBatch() {
	for i := s.batchPos; i < len(s.batch); i++ {
		s.batch[i] = event{}
	}
	s.batch = s.batch[:0]
	s.batchPos = 0
}

// popBatch moves every heap entry with timestamp t into s.batch,
// ordered by seq. The equal-time entries form an up-closed subtree
// containing the root (t is the heap minimum, so every ancestor of a
// t-entry is a t-entry), which a breadth-first walk collects in
// ascending index order; removing the holes in descending index order
// then only ever fills a hole with a strictly-later event, so a
// sift-down restores the heap without any sift-up.
func (s *Scheduler) popBatch(t time.Duration) {
	if len(s.heap) == 0 || s.heap[0].at != t {
		return
	}
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, 0)
	for k := 0; k < len(s.scratch); k++ {
		first := 4*int(s.scratch[k]) + 1
		for c := first; c < first+4 && c < len(s.heap); c++ {
			if s.heap[c].at == t {
				s.scratch = append(s.scratch, int32(c))
			}
		}
	}
	for _, i := range s.scratch {
		s.batch = append(s.batch, s.heap[i])
	}
	for k := len(s.scratch) - 1; k >= 0; k-- {
		i := int(s.scratch[k])
		n := len(s.heap) - 1
		last := s.heap[n]
		s.heap[n] = event{}
		s.heap = s.heap[:n]
		if i < n {
			s.siftDownFrom(i, last)
		}
	}
	slices.SortFunc(s.batch, func(a, b event) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
}

// peek reports the timestamp of the earliest live event, discarding
// cancelled timers it encounters and cascading the wheel as needed.
func (s *Scheduler) peek() (time.Duration, bool) {
	return s.nextReady()
}

// Stop aborts a Run or RunUntil in progress after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of live scheduled events, including the
// unconsumed remainder of an in-flight same-timestamp batch.
func (s *Scheduler) Pending() int {
	n := s.wheelPending()
	for i := range s.heap {
		ev := &s.heap[i]
		if ev.slot != noSlot && s.slots[ev.slot].stopped {
			continue
		}
		n++
	}
	for i := s.batchPos; i < len(s.batch); i++ {
		ev := &s.batch[i]
		if ev.slot != noSlot && s.slots[ev.slot].stopped {
			continue
		}
		n++
	}
	return n
}
