// Package sim provides a deterministic discrete-event scheduler used by
// every other substrate in this repository. Virtual time is a
// time.Duration offset from the start of the simulation; events fire in
// (time, insertion-order) order, so runs with the same seed are fully
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. seq breaks ties between events
// scheduled for the same instant so ordering is deterministic.
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the callback had not yet
// fired (and therefore will never fire). Stopping an already-fired or
// already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.index == -1 && t.ev.fn == nil {
		return false
	}
	if t.ev.stopped {
		return false
	}
	fired := t.ev.index == -1
	t.ev.stopped = true
	return !fired
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.stopped && t.ev.index != -1
}

// Scheduler is a single-threaded discrete-event loop. The zero value is
// not usable; call NewScheduler.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step runs the single earliest pending event. It reports whether an
// event was run.
func (s *Scheduler) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.stopped {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run processes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline and then
// advances the clock to deadline. Events scheduled after deadline stay
// pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped {
		if s.events.Len() == 0 {
			break
		}
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

func (s *Scheduler) peek() *event {
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.stopped {
			heap.Pop(&s.events)
			continue
		}
		return ev
	}
	return nil
}

// Stop aborts a Run or RunUntil in progress after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of live scheduled events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.stopped {
			n++
		}
	}
	return n
}
