// Package sim provides a deterministic discrete-event scheduler used by
// every other substrate in this repository. Virtual time is a
// time.Duration offset from the start of the simulation; events fire in
// (time, insertion-order) order, so runs with the same seed are fully
// reproducible.
//
// The event queue is a two-tier structure: a hierarchical timer wheel
// (wheel.go) absorbs mid-range timers with O(1) insertion and
// heap-free cancellation, while a value-based 4-ary heap orders the
// imminent frontier by (time, insertion-order) and holds far-future
// overflow. Entries are stored inline, so scheduling a fire-and-forget
// event performs no allocation beyond the callback itself. Hot paths
// that would otherwise allocate a closure per event can instead
// implement Task and schedule themselves with AtTask, passing a small
// op code to select the behaviour. Cancellable timers draw bookkeeping
// slots from a free list, so re-arming a timer (the TCP RTO pattern)
// is allocation-free at steady state.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Task is a pre-allocated event callback. A single Task value may be
// scheduled several times with different op codes; RunTask dispatches
// on op. This exists so hot paths (one or more events per packet) can
// avoid allocating a closure per event.
type Task interface {
	RunTask(op int32)
}

// event is one scheduled callback, stored by value in the heap. seq
// breaks ties between events scheduled for the same instant so
// ordering is deterministic. Exactly one of fn and task is set. slot
// is the timer-slot index for cancellable events, -1 otherwise.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	task Task
	op   int32
	slot int32
}

// timerSlot tracks the cancellation state of one outstanding timer.
// Slots are recycled through a free list; gen distinguishes a live
// slot from a stale Timer handle pointing at a recycled one.
type timerSlot struct {
	gen     uint32
	pending bool
	stopped bool
}

const noSlot = -1

// Timer is a handle to a cancellable scheduled event. The zero value
// is inert: Stop and Active return false.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the callback had not yet
// fired (and therefore will never fire). Stopping an already-fired or
// already-stopped timer is a no-op that reports false.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	if sl.gen != t.gen || !sl.pending || sl.stopped {
		return false
	}
	sl.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	return sl.gen == t.gen && sl.pending && !sl.stopped
}

// Scheduler is a single-threaded discrete-event loop. The zero value is
// not usable; call NewScheduler.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	heap    []event
	slots   []timerSlot
	free    []int32
	rng     *rand.Rand
	stopped bool

	// Hierarchical timer wheel (see wheel.go). The heap above holds the
	// imminent frontier plus far-future overflow; mid-range events park
	// in wheel slots and cascade into the heap before they can fire.
	wheel   [wheelLevels][wheelSlots]int32       // per-slot list head, index+1 into wnodes
	wbits   [wheelLevels][wheelSlots / 64]uint64 // slot occupancy bitmaps
	wnodes  []wheelNode
	wfree   []int32 // recycled wnodes entries, index+1
	wcount  int     // events currently parked in the wheel
	wcursor int64   // tick the wheel has advanced to; wheel events are strictly later
	wbound  int64   // cached earliest occupied slot start (ticks); -1 = recompute
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed)), wbound: -1}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

func (s *Scheduler) schedule(t time.Duration, fn func(), task Task, op int32, slot int32) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if s.wcount == 0 {
		// An empty wheel can advance for free; keeping the cursor at the
		// clock keeps short delays in level 0 instead of overflow.
		if nowTick := int64(s.now >> tickShift); nowTick > s.wcursor {
			s.wcursor = nowTick
		}
	}
	s.place(event{at: t, seq: s.seq, fn: fn, task: task, op: op, slot: slot})
	s.seq++
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it is always a logic error in a discrete-event model.
// Use TimerAt when the event may need to be cancelled.
func (s *Scheduler) At(t time.Duration, fn func()) {
	s.schedule(t, fn, nil, 0, noSlot)
}

// fromNow converts a relative delay to an absolute timestamp,
// clamping negative delays to "now".
func (s *Scheduler) fromNow(d time.Duration) time.Duration {
	if d < 0 {
		return s.now
	}
	return s.now + d
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.schedule(s.fromNow(d), fn, nil, 0, noSlot)
}

// AtTask schedules task.RunTask(op) at absolute virtual time t without
// allocating: the task is supplied by the caller and the event itself
// is stored inline in the heap.
func (s *Scheduler) AtTask(t time.Duration, task Task, op int32) {
	s.schedule(t, nil, task, op, noSlot)
}

// AfterTask schedules task.RunTask(op) to run d after the current time.
func (s *Scheduler) AfterTask(d time.Duration, task Task, op int32) {
	s.schedule(s.fromNow(d), nil, task, op, noSlot)
}

// newTimer allocates a cancellation slot from the free list.
func (s *Scheduler) newTimer() (int32, Timer) {
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, timerSlot{})
	}
	sl := &s.slots[slot]
	sl.pending = true
	sl.stopped = false
	return slot, Timer{s: s, slot: slot, gen: sl.gen}
}

// freeSlot retires a slot after its event popped (fired or cancelled),
// invalidating outstanding Timer handles.
func (s *Scheduler) freeSlot(slot int32) {
	sl := &s.slots[slot]
	sl.gen++
	sl.pending = false
	sl.stopped = false
	s.free = append(s.free, slot)
}

// TimerAt schedules fn at absolute virtual time t and returns a handle
// that can cancel it.
func (s *Scheduler) TimerAt(t time.Duration, fn func()) Timer {
	slot, tm := s.newTimer()
	s.schedule(t, fn, nil, 0, slot)
	return tm
}

// TimerAfter schedules fn to run d after the current time and returns
// a cancellation handle.
func (s *Scheduler) TimerAfter(d time.Duration, fn func()) Timer {
	return s.TimerAt(s.fromNow(d), fn)
}

// TimerAfterTask is TimerAfter for pre-allocated Tasks: cancellable and
// allocation-free at steady state.
func (s *Scheduler) TimerAfterTask(d time.Duration, task Task, op int32) Timer {
	slot, tm := s.newTimer()
	s.schedule(s.fromNow(d), nil, task, op, slot)
	return tm
}

// ---- 4-ary heap, ordered by (at, seq) ----
//
// A 4-ary layout halves the tree depth of a binary heap; combined with
// value storage this keeps pop/push cache-friendly, which dominates
// the simulator's profile at packet scale.

func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(ev event) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(&ev, &s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = ev
}

func (s *Scheduler) pop() event {
	top := s.heap[0]
	n := len(s.heap) - 1
	ev := s.heap[n]
	s.heap[n] = event{} // release fn/task references
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(ev)
	}
	return top
}

func (s *Scheduler) siftDown(ev event) {
	h := s.heap
	n := len(h)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if evLess(&h[c], &h[best]) {
				best = c
			}
		}
		if !evLess(&h[best], &ev) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
}

// ---- Event loop ----

// Step runs the single earliest pending event. It reports whether an
// event was run.
func (s *Scheduler) Step() bool {
	if _, ok := s.nextReady(); !ok {
		return false
	}
	ev := s.pop()
	if ev.slot != noSlot {
		s.freeSlot(ev.slot)
	}
	s.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.task.RunTask(ev.op)
	}
	return true
}

// Run processes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline and then
// advances the clock to deadline. Events scheduled after deadline stay
// pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek reports the timestamp of the earliest live event, discarding
// cancelled timers it encounters and cascading the wheel as needed.
func (s *Scheduler) peek() (time.Duration, bool) {
	return s.nextReady()
}

// Stop aborts a Run or RunUntil in progress after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of live scheduled events.
func (s *Scheduler) Pending() int {
	n := s.wheelPending()
	for i := range s.heap {
		ev := &s.heap[i]
		if ev.slot != noSlot && s.slots[ev.slot].stopped {
			continue
		}
		n++
	}
	return n
}
