package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestSketchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSketch(0.02)
	for i := 0; i < 5000; i++ {
		s.Add(math.Exp(rng.NormFloat64() * 6)) // span many orders of magnitude
	}
	for i := 0; i < 50; i++ {
		s.Add(0) // populate the zero bin
	}
	buf := s.AppendBinary(nil)
	if !reflect.DeepEqual(buf, s.AppendBinary(nil)) {
		t.Fatal("encoding is not canonical: two encodes differ")
	}
	d := NewDecoder(buf)
	got, err := DecodeSketch(d)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("%d bytes left after decode", d.Len())
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	// The decoded sketch must be merge-compatible and answer the same
	// quantiles bit-for-bit.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got.Quantile(q) != s.Quantile(q) {
			t.Fatalf("quantile %v differs after round-trip", q)
		}
	}
}

func TestSketchCodecEmptyAndNil(t *testing.T) {
	empty := NewSketch(0.01)
	d := NewDecoder(empty.AppendBinary(nil))
	got, err := DecodeSketch(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty sketch round-trip mismatch: %+v", got)
	}

	var nilSketch *Sketch
	d = NewDecoder(nilSketch.AppendBinary(nil))
	got, err = DecodeSketch(d)
	if err != nil || got != nil {
		t.Fatalf("nil sketch round-trip = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestBinnedCodecRoundTrip(t *testing.T) {
	b := NewBinned(250*time.Millisecond, 30*time.Second)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		b.Add(time.Duration(rng.Int63n(int64(30*time.Second))), rng.Float64()*1500)
	}
	buf := b.AppendBinary(nil)
	d := NewDecoder(buf)
	got, err := DecodeBinned(d)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("%d bytes left after decode", d.Len())
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatal("binned round-trip mismatch")
	}

	var nilBinned *Binned
	d = NewDecoder(nilBinned.AppendBinary(nil))
	got, err = DecodeBinned(d)
	if err != nil || got != nil {
		t.Fatalf("nil binned round-trip = (%v, %v), want (nil, nil)", got, err)
	}
}

// Concatenated encodings must decode in sequence — the per-cell stream
// format depends on it.
func TestCodecSequence(t *testing.T) {
	s := NewSketch(0.01)
	s.Add(3.5)
	b := NewBinned(time.Second, 10*time.Second)
	b.Add(2*time.Second, 7)
	buf := s.AppendBinary(nil)
	buf = b.AppendBinary(buf)
	buf = appendI64(buf, 42)

	d := NewDecoder(buf)
	gs, err := DecodeSketch(d)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := DecodeBinned(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.I64(); v != 42 || d.Err() != nil || d.Len() != 0 {
		t.Fatalf("trailing scalar = %d, err %v, left %d", v, d.Err(), d.Len())
	}
	if !reflect.DeepEqual(gs, s) || !reflect.DeepEqual(gb, b) {
		t.Fatal("sequence decode mismatch")
	}
}

func TestCodecTruncation(t *testing.T) {
	s := NewSketch(0.01)
	for i := 1; i <= 40; i++ {
		s.Add(float64(i))
	}
	full := s.AppendBinary(nil)
	for cut := 0; cut < len(full); cut += 7 {
		d := NewDecoder(full[:cut])
		if _, err := DecodeSketch(d); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(full))
		}
	}
	// A corrupt count that implies more bytes than exist must error,
	// not allocate or hang.
	bad := append([]byte(nil), full...)
	for i := 0; i < 8; i++ {
		bad[48+i] = 0xff // overwrite the key-count field
	}
	if _, err := DecodeSketch(NewDecoder(bad)); err == nil {
		t.Fatal("absurd key count decoded without error")
	}
}
