package stats

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"time"
)

// Binary codecs for Sketch and Binned. Distributed fleet runs ship
// per-cell results across process boundaries and must merge into the
// same bytes a single-process run produces, so the encoding is exact
// and canonical: every float crosses as its IEEE-754 bit pattern
// (math.Float64bits — no text formatting, no rounding), map keys are
// emitted in sorted order, and all integers are fixed-width
// little-endian. Encoding the same value twice yields identical bytes.

// ErrCodec reports a truncated or structurally invalid encoding.
var ErrCodec = errors.New("stats: truncated or corrupt encoding")

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendI64(buf []byte, v int64) []byte {
	return appendU64(buf, uint64(v))
}

func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}

// Decoder consumes the canonical encoding. Errors latch: after the
// first short read every subsequent call returns zero values, and Err
// reports the failure once at the end — call sites stay linear.
type Decoder struct {
	data []byte
	off  int
	bad  bool
}

// NewDecoder wraps data for decoding starting at offset 0.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns ErrCodec if any read ran past the input.
func (d *Decoder) Err() error {
	if d.bad {
		return ErrCodec
	}
	return nil
}

// Len returns the number of unconsumed bytes.
func (d *Decoder) Len() int { return len(d.data) - d.off }

// U64 reads one little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.bad || d.off+8 > len(d.data) {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// I64 reads one little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads one float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// AppendBinary appends the canonical encoding of s to buf. A nil
// sketch encodes like an empty one with RelErr 0 (decode restores nil).
func (s *Sketch) AppendBinary(buf []byte) []byte {
	if s == nil {
		return appendF64(buf, 0)
	}
	buf = appendF64(buf, s.RelErr)
	buf = appendI64(buf, s.zeros)
	buf = appendI64(buf, s.n)
	buf = appendF64(buf, s.sum)
	buf = appendF64(buf, s.min)
	buf = appendF64(buf, s.max)
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	buf = appendI64(buf, int64(len(keys)))
	for _, k := range keys {
		buf = appendI64(buf, int64(k))
		buf = appendI64(buf, s.counts[k])
	}
	return buf
}

// DecodeSketch reads one sketch written by AppendBinary. The gamma
// terms are recomputed from the decoded RelErr exactly as NewSketch
// computes them, so a round-trip is indistinguishable from the
// original (reflect.DeepEqual-equal and merge-compatible).
func DecodeSketch(d *Decoder) (*Sketch, error) {
	relErr := d.F64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if relErr == 0 {
		return nil, nil
	}
	if relErr < 0 || relErr >= 1 || math.IsNaN(relErr) {
		return nil, ErrCodec
	}
	s := NewSketch(relErr)
	s.zeros = d.I64()
	s.n = d.I64()
	s.sum = d.F64()
	s.min = d.F64()
	s.max = d.F64()
	nk := d.I64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nk < 0 || nk > int64(d.Len()/16) {
		return nil, ErrCodec
	}
	for i := int64(0); i < nk; i++ {
		k := d.I64()
		c := d.I64()
		s.counts[int(k)] = c
	}
	return s, d.Err()
}

// AppendBinary appends the canonical encoding of b to buf. A nil
// series encodes with width 0 (decode restores nil).
func (b *Binned) AppendBinary(buf []byte) []byte {
	if b == nil {
		return appendI64(buf, 0)
	}
	buf = appendI64(buf, int64(b.Width))
	buf = appendI64(buf, int64(len(b.Bins)))
	for _, v := range b.Bins {
		buf = appendF64(buf, v)
	}
	return buf
}

// DecodeBinned reads one binned series written by AppendBinary.
func DecodeBinned(d *Decoder) (*Binned, error) {
	width := time.Duration(d.I64())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if width == 0 {
		return nil, nil
	}
	if width < 0 {
		return nil, ErrCodec
	}
	n := d.I64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n < 0 || n > int64(d.Len()/8) {
		return nil, ErrCodec
	}
	b := &Binned{Width: width, Bins: make([]float64, n)}
	for i := range b.Bins {
		b.Bins[i] = d.F64()
	}
	return b, d.Err()
}
