package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
	if m := c.Median(); math.Abs(m-2.5) > 1e-12 {
		t.Errorf("median = %v", m)
	}
}

func TestCDFWithDuplicates(t *testing.T) {
	c := NewCDF([]float64{64, 64, 64, 64, 128, 256})
	if got := c.At(64); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("At(64) = %v, want 4/6", got)
	}
	if got := c.At(63.9); got != 0 {
		t.Fatalf("At(63.9) = %v, want 0", got)
	}
}

// TestCDFAtHeavilyTied is the regression test for the upper-bound
// binary search: block-size samples are heavily tied (thousands of
// identical 64 kB blocks), and At must stay correct — and sub-linear —
// on such inputs. Correctness is checked against a naive O(n) count.
func TestCDFAtHeavilyTied(t *testing.T) {
	const n = 50000
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Three massive tie groups plus a sprinkle of distinct values.
		switch i % 10 {
		case 9:
			xs = append(xs, float64(i))
		case 8:
			xs = append(xs, 256<<10)
		default:
			xs = append(xs, 64<<10)
		}
	}
	c := NewCDF(xs)
	naive := func(x float64) float64 {
		k := 0
		for _, v := range xs {
			if v <= x {
				k++
			}
		}
		return float64(k) / float64(len(xs))
	}
	for _, x := range []float64{0, 64<<10 - 1, 64 << 10, 64<<10 + 1, 256 << 10, 1e9, -5} {
		if got, want := c.At(x), naive(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func BenchmarkCDFAtTied(b *testing.B) {
	xs := make([]float64, 1<<20)
	for i := range xs {
		xs[i] = 64 << 10 // fully tied: the old linear scan's worst case
	}
	c := NewCDF(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(64 << 10)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	if q := c.Quantile(0.5); math.Abs(q-5) > 1e-12 {
		t.Fatalf("interpolated median = %v", q)
	}
	if q := c.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := c.Quantile(1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty CDF quantile must be NaN")
	}
}

func TestCDFPointsAndRender(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 99 {
		t.Fatalf("endpoints = %v, %v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF points must be nondecreasing")
		}
	}
	r := c.Render("test metric", 5)
	if !strings.Contains(r, "CDF of test metric") || len(strings.Split(r, "\n")) < 5 {
		t.Fatalf("render output malformed:\n%s", r)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance = %v", v)
	}
	if s := Std(xs); s != 2 {
		t.Fatalf("std = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Fatal("empty stats must be NaN")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive corr = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative corr = %v", r)
	}
	if r := Pearson(x, []float64{3, 3, 3, 3, 3}); !math.IsNaN(r) {
		t.Fatalf("constant series corr = %v, want NaN", r)
	}
	if r := Pearson(x, []float64{1}); !math.IsNaN(r) {
		t.Fatal("length mismatch must be NaN")
	}
	// Uncorrelated-ish: alternating pattern orthogonal to the trend.
	u := []float64{1, -1, 1, -1, 1}
	if r := Pearson(x, u); math.Abs(r) > 0.5 {
		t.Fatalf("weak corr expected, got %v", r)
	}
}

func TestHistogramMode(t *testing.T) {
	// Samples clustered at ~64 with stragglers: the paper's Figure 4
	// block-size shape.
	samples := []float64{64, 64.2, 64.5, 65, 65.5, 128, 256, 30}
	h := NewHistogram(samples, 8)
	center, share := h.Mode()
	if center < 56 || center > 72 {
		t.Fatalf("mode center = %v, want ~64", center)
	}
	if share < 0.5 {
		t.Fatalf("mode share = %v, want >= 0.5", share)
	}
	empty := NewHistogram(nil, 8)
	if c, s := empty.Mode(); !math.IsNaN(c) || s != 0 {
		t.Fatal("empty histogram mode must be NaN/0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("summary string empty")
	}
}

// Property: CDF At is a valid distribution function — monotone, 0
// before min, 1 at max.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := c.At(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is an approximate inverse of At.
func TestPropertyQuantileInverse(t *testing.T) {
	f := func(raw []float64, qraw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		q := float64(qraw) / 255
		c := NewCDF(xs)
		x := c.Quantile(q)
		// Interpolated quantiles sit between order statistics, so At
		// can undershoot q by at most one sample's worth of mass.
		return c.At(x) >= q-1.0/float64(len(xs))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
