// Package stats provides the descriptive statistics the paper's
// figures are built from: empirical CDFs, quantiles, Pearson
// correlation, histograms with modal bins, and compact summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Upper-bound binary search: the first index with sorted[i] > x.
	// (A linear scan past ties is O(n) per lookup on heavily tied
	// samples such as block sizes.)
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile, q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) || frac == 0 {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the extremes.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Points samples the CDF at n evenly spaced sample indices, returning
// (x, P(X<=x)) pairs suitable for plotting a figure series.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / maxInt(n-1, 1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

// Render prints a textual CDF curve with the given x-axis label, used
// by the figure benches to emit the paper's series.
func (c *CDF) Render(label string, points int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# CDF of %s (n=%d)\n", label, c.N())
	for _, p := range c.Points(points) {
		fmt.Fprintf(&b, "%12.4f  %6.4f\n", p[0], p[1])
	}
	return b.String()
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 { return NewCDF(xs).Median() }

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns NaN when either series is constant or lengths mismatch.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram bins samples into fixed-width bins.
type Histogram struct {
	BinWidth float64
	Counts   map[int]int
	total    int
}

// NewHistogram bins the samples.
func NewHistogram(samples []float64, binWidth float64) *Histogram {
	h := &Histogram{BinWidth: binWidth, Counts: map[int]int{}}
	for _, s := range samples {
		h.Counts[int(math.Floor(s/binWidth))]++
		h.total++
	}
	return h
}

// Mode returns the center of the most populated bin and its share of
// all samples.
func (h *Histogram) Mode() (center float64, share float64) {
	best, bestN := 0, -1
	//vlint:unordered argmax under the total order (count desc, bin asc): every visit order yields the same winner
	for bin, n := range h.Counts {
		if n > bestN || (n == bestN && bin < best) {
			best, bestN = bin, n
		}
	}
	if bestN <= 0 {
		return math.NaN(), 0
	}
	return (float64(best) + 0.5) * h.BinWidth, float64(bestN) / float64(h.total)
}

// Summary is a compact numeric description of a sample set.
type Summary struct {
	N                  int
	Mean, Median, Std  float64
	Min, Max, P10, P90 float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	c := NewCDF(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: c.Median(),
		Std:    Std(xs),
		Min:    c.Min(),
		Max:    c.Max(),
		P10:    c.Quantile(0.1),
		P90:    c.Quantile(0.9),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g std=%.4g min=%.4g p10=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.P10, s.P90, s.Max)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
