package stats

import (
	"math"
	"sort"
)

// Sketch is a mergeable streaming quantile sketch with a guaranteed
// relative error: every quantile estimate is within RelErr of the true
// sample value at that rank. It is the DDSketch construction —
// logarithmic bins of width log(gamma), gamma = (1+e)/(1-e) — chosen
// over rank-based sketches because merging is plain bin-count
// addition, which keeps fleet shards bit-reproducible for any worker
// count. Memory is O(log(max/min)/e) regardless of the sample count,
// so per-client QoE metrics from thousands of sessions cost a few
// hundred bins instead of a buffered vector.
//
// Values must be non-negative (rates, delays, byte counts — every
// fleet metric); values below minTrackable collapse into a dedicated
// zero bin whose estimate is exactly 0.
type Sketch struct {
	// RelErr is the relative accuracy guarantee, fixed at creation.
	RelErr float64

	gamma   float64 // (1+RelErr)/(1-RelErr)
	lnGamma float64

	counts map[int]int64
	zeros  int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// minTrackable is the smallest magnitude the log bins resolve; smaller
// samples count as zero. Fleet metrics (Mbps, seconds) sit far above.
const minTrackable = 1e-9

// DefaultSketchErr is the relative error used when NewSketch is given
// a non-positive one: 1% — invisible next to seed-to-seed variance.
const DefaultSketchErr = 0.01

// NewSketch returns an empty sketch with the given relative error
// guarantee (non-positive means DefaultSketchErr).
func NewSketch(relErr float64) *Sketch {
	if relErr <= 0 {
		relErr = DefaultSketchErr
	}
	if relErr >= 1 {
		relErr = 0.99
	}
	gamma := (1 + relErr) / (1 - relErr)
	return &Sketch{
		RelErr:  relErr,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		counts:  make(map[int]int64, 128), // presized: ~O(log range) bins, avoids rehash growth on the fleet hot path
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Reset empties the sketch in place, keeping the bin map's backing
// storage (and the RelErr geometry) so a recycled sketch accumulates
// the next stream without rehashing. A reset sketch is
// indistinguishable from NewSketch(s.RelErr).
func (s *Sketch) Reset() {
	clear(s.counts)
	s.zeros = 0
	s.n = 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// key returns the bin index covering x: the smallest k with
// gamma^k >= x, so bin k spans (gamma^(k-1), gamma^k].
func (s *Sketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// estimate returns the midpoint value of bin k; its relative distance
// to any sample in the bin is at most RelErr.
func (s *Sketch) estimate(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Add inserts one sample. Negative samples are clamped to zero (the
// metrics this sketch serves are non-negative by construction).
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	s.n++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if x < minTrackable {
		s.zeros++
		return
	}
	s.counts[s.key(x)]++
}

// Merge folds o into s. Both sketches must have been created with the
// same RelErr; merging is exact (the merged sketch equals the sketch
// of the concatenated streams), which is what makes sharded fleet
// statistics independent of the worker count.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if o.RelErr != s.RelErr {
		panic("stats: merging sketches with different relative errors")
	}
	for k, c := range o.counts {
		s.counts[k] += c
	}
	s.zeros += o.zeros
	s.n += o.n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of samples added.
func (s *Sketch) N() int64 { return s.n }

// Sum returns the exact running sum of the samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact sample mean (the sum is tracked exactly).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}

// Min and Max return the exact extremes.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact largest sample.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]): the
// value returned is within RelErr (relatively) of the sample that
// holds rank ceil(q*n) in the sorted stream. Estimates are clamped to
// the exact observed [Min, Max].
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.zeros {
		return 0
	}
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	cum := s.zeros
	for _, k := range keys {
		cum += s.counts[k]
		if cum >= rank {
			est := s.estimate(k)
			if est < s.min {
				est = s.min
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// Median returns the 0.5 quantile estimate.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// Bins returns the number of occupied log bins — the sketch's actual
// memory footprint, asserted O(log range) by tests.
func (s *Sketch) Bins() int { return len(s.counts) }
