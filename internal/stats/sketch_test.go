package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactRank returns the sample holding rank ceil(q*n) of the sorted
// slice — the same rank convention Sketch.Quantile promises to
// approximate.
func exactRank(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSketchRelativeErrorBound pins the sketch's accuracy guarantee
// against the exact buffered computation across several distributions:
// every quantile estimate must sit within RelErr (relatively) of the
// exact sample at the same rank.
func TestSketchRelativeErrorBound(t *testing.T) {
	const relErr = 0.01
	distros := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() * 100 },
		"exp":       func(r *rand.Rand) float64 { return r.ExpFloat64() * 5 },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) },
		"heavytied": func(r *rand.Rand) float64 { return float64(r.Intn(4)) * 1.5 },
		"withzeros": func(r *rand.Rand) float64 {
			if r.Intn(3) == 0 {
				return 0
			}
			return r.Float64() * 10
		},
	}
	for name, gen := range distros {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			s := NewSketch(relErr)
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := gen(r)
				s.Add(x)
				samples = append(samples, x)
			}
			sort.Float64s(samples)
			for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				got := s.Quantile(q)
				want := exactRank(samples, q)
				if want == 0 {
					if got != 0 {
						t.Fatalf("q=%.2f: exact 0, sketch %v", q, got)
					}
					continue
				}
				if rel := math.Abs(got-want) / want; rel > relErr+1e-12 {
					t.Fatalf("q=%.2f: exact %v, sketch %v, relative error %.4f > %.4f",
						q, want, got, rel, relErr)
				}
			}
			if s.N() != 20000 {
				t.Fatalf("N = %d, want 20000", s.N())
			}
			if got, want := s.Min(), samples[0]; got != want {
				t.Fatalf("Min = %v, want %v", got, want)
			}
			if got, want := s.Max(), samples[len(samples)-1]; got != want {
				t.Fatalf("Max = %v, want %v", got, want)
			}
			if got, want := s.Mean(), Mean(samples); math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Fatalf("Mean = %v, want %v", got, want)
			}
		})
	}
}

// TestSketchMergeEqualsSingleStream checks the merge is exact: sharded
// insertion followed by merges yields the identical sketch state as
// one stream, so fleet statistics cannot depend on how clients were
// split across shards.
func TestSketchMergeEqualsSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	whole := NewSketch(0.02)
	shards := []*Sketch{NewSketch(0.02), NewSketch(0.02), NewSketch(0.02)}
	for i := 0; i < 9999; i++ {
		x := r.ExpFloat64() * 42
		whole.Add(x)
		shards[i%3].Add(x)
	}
	merged := NewSketch(0.02)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.N() != whole.N() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary differs: %v/%v/%v vs %v/%v/%v",
			merged.N(), merged.Min(), merged.Max(),
			whole.N(), whole.Min(), whole.Max())
	}
	// The sum is exact per shard; only float addition order differs
	// between the sharded and single-stream accumulations.
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum %v != single-stream sum %v", merged.Sum(), whole.Sum())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		if a, b := merged.Quantile(q), whole.Quantile(q); a != b {
			t.Fatalf("q=%v: merged %v != single-stream %v", q, a, b)
		}
	}
}

// TestSketchMemoryLogarithmic asserts the footprint grows with the
// value range, not the sample count.
func TestSketchMemoryLogarithmic(t *testing.T) {
	s := NewSketch(0.01)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000_000; i++ {
		s.Add(1 + r.Float64()*999) // 3 decades
	}
	// 0.01 relative error → gamma ≈ 1.0202 → ~345 bins per decade of
	// range; 1..1000 must stay well under 400.
	if s.Bins() > 400 {
		t.Fatalf("sketch used %d bins for 1e6 samples in [1,1000]; not O(log range)", s.Bins())
	}
}

func TestSketchEmptyAndEdge(t *testing.T) {
	s := NewSketch(0)
	if s.RelErr != DefaultSketchErr {
		t.Fatalf("default RelErr = %v", s.RelErr)
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty sketch must return NaN")
	}
	s.Add(-5) // clamps to zero
	s.Add(0)
	if s.Quantile(1) != 0 || s.N() != 2 {
		t.Fatalf("zero-only sketch: q1=%v n=%d", s.Quantile(1), s.N())
	}
	s.Add(10)
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("max clamp: q1 = %v, want 10", got)
	}
}

func TestSketchMergeRejectsMismatchedError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different RelErr must panic")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	a.Merge(b)
}

func TestBinnedAddMergeCum(t *testing.T) {
	b := NewBinned(time.Second, 10*time.Second)
	if len(b.Bins) != 10 {
		t.Fatalf("bins = %d, want 10", len(b.Bins))
	}
	b.Add(0, 1)
	b.Add(1500*time.Millisecond, 2)
	b.Add(-time.Second, 4)    // clamps to first bin
	b.Add(10*time.Second, 8)  // exactly at horizon → last bin
	b.Add(99*time.Second, 16) // beyond horizon → last bin
	if b.Bins[0] != 5 || b.Bins[1] != 2 || b.Bins[9] != 24 {
		t.Fatalf("bins = %v", b.Bins)
	}
	if b.Sum() != 31 {
		t.Fatalf("sum = %v", b.Sum())
	}
	o := NewBinned(time.Second, 10*time.Second)
	o.Add(2*time.Second, 3)
	b.Merge(o)
	if b.Bins[2] != 3 {
		t.Fatalf("merge: bins = %v", b.Bins)
	}
	cum := b.Cum()
	if cum[0] != 5 || cum[2] != 10 || cum[9] != 34 {
		t.Fatalf("cum = %v", cum)
	}
	if ps := b.PerSecond(); ps[2] != 3 {
		t.Fatalf("per-second = %v", ps)
	}
	if got := b.From(8 * time.Second); len(got) != 2 {
		t.Fatalf("From(8s) len = %d", len(got))
	}
}

func TestBinnedMergeRejectsGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different geometries must panic")
		}
	}()
	NewBinned(time.Second, 10*time.Second).Merge(NewBinned(time.Second, 11*time.Second))
}

func TestCVAndPeakToMean(t *testing.T) {
	flat := []float64{4, 4, 4, 4}
	if got := CV(flat); got != 0 {
		t.Fatalf("CV(flat) = %v", got)
	}
	if got := PeakToMean(flat); got != 1 {
		t.Fatalf("PeakToMean(flat) = %v", got)
	}
	bursty := []float64{0, 0, 0, 16}
	if cv := CV(bursty); math.Abs(cv-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("CV(bursty) = %v, want sqrt(3)", cv)
	}
	if ptm := PeakToMean(bursty); ptm != 4 {
		t.Fatalf("PeakToMean(bursty) = %v", ptm)
	}
	if !math.IsNaN(CV(nil)) || !math.IsNaN(PeakToMean(nil)) {
		t.Fatal("empty series must be NaN")
	}
}
