package stats

import (
	"math"
	"time"
)

// Binned is a fixed-width time series: a preallocated vector of bins
// over [0, horizon), each accumulating a float64. It is the O(1)
// per-packet (and O(horizon/width) memory) replacement for buffered
// per-packet series at fleet scale — link utilization adds wire bytes
// at capture time, concurrency tracks +1/-1 deltas — and two series
// with the same shape merge by plain element addition, deterministic
// across fleet shards.
type Binned struct {
	Width time.Duration
	Bins  []float64
}

// NewBinned allocates a series of ceil(horizon/width) bins. Width and
// horizon must be positive.
func NewBinned(width, horizon time.Duration) *Binned {
	if width <= 0 || horizon <= 0 {
		panic("stats: binned series needs positive width and horizon")
	}
	n := int((horizon + width - 1) / width)
	if n < 1 {
		n = 1
	}
	return &Binned{Width: width, Bins: make([]float64, n)}
}

// Reset zeroes every bin in place, keeping the backing slice and
// geometry — the recycled-series counterpart of NewBinned.
func (b *Binned) Reset() {
	clear(b.Bins)
}

// idx clamps a timestamp into the bin range, so samples exactly at the
// horizon (a delivery scheduled at the final instant) land in the last
// bin instead of vanishing.
func (b *Binned) idx(at time.Duration) int {
	if at < 0 {
		return 0
	}
	i := int(at / b.Width)
	if i >= len(b.Bins) {
		i = len(b.Bins) - 1
	}
	return i
}

// Add accumulates v into the bin covering at.
func (b *Binned) Add(at time.Duration, v float64) {
	b.Bins[b.idx(at)] += v
}

// Merge adds o element-wise into b. Shapes must match — merging is
// only defined between series of the same geometry (fleet shards share
// one geometry by construction).
func (b *Binned) Merge(o *Binned) {
	if o == nil {
		return
	}
	if o.Width != b.Width || len(o.Bins) != len(b.Bins) {
		panic("stats: merging binned series with different geometry")
	}
	for i, v := range o.Bins {
		b.Bins[i] += v
	}
}

// Sum returns the total accumulated across all bins.
func (b *Binned) Sum() float64 {
	s := 0.0
	for _, v := range b.Bins {
		s += v
	}
	return s
}

// PerSecond returns the series normalized to per-second rates
// (bin value divided by the bin width).
func (b *Binned) PerSecond() []float64 {
	out := make([]float64, len(b.Bins))
	w := b.Width.Seconds()
	for i, v := range b.Bins {
		out[i] = v / w
	}
	return out
}

// Cum returns the running (prefix) sum — the concurrency series when
// the bins hold +1 arrival / -1 departure deltas.
func (b *Binned) Cum() []float64 {
	out := make([]float64, len(b.Bins))
	s := 0.0
	for i, v := range b.Bins {
		s += v
		out[i] = s
	}
	return out
}

// From returns the suffix of the series starting at the bin covering
// t — the post-warm-up window burstiness is measured over.
func (b *Binned) From(t time.Duration) []float64 {
	return b.Bins[b.idx(t):]
}

// CV returns the coefficient of variation (std/mean) of xs — the
// paper-style burstiness index of a rate series: 0 for a perfectly
// smooth link, growing as ON-OFF cycles synchronize into bursts. NaN
// when the series is empty or has zero mean.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) || m == 0 {
		return math.NaN()
	}
	return Std(xs) / m
}

// PeakToMean returns max/mean of xs — the dimensioning-oriented
// burstiness companion to CV. NaN for empty or zero-mean series.
func PeakToMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	peak := xs[0]
	for _, x := range xs[1:] {
		if x > peak {
			peak = x
		}
	}
	return peak / m
}
