package scenario

// The streaming/buffered equivalence suite: the tentpole guarantee of
// the sink refactor is that the online analyzer (attached at the tap,
// O(flows) state, segment pooling on) and the tcpdump-then-analyze
// pipeline (buffered trace.Trace, pooling off, replayed through
// analysis.Analyze) produce bit-identical Results — across every
// player kind, both scenario shapes, and a pcap round trip.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/session"
	"repro/internal/trace"
)

// runOne expands the spec to its single session config and runs it.
func runOne(t *testing.T, sp Spec, buffered bool) *session.Result {
	t.Helper()
	cfgs := sp.Configs() // fresh player instance per call
	if len(cfgs) != 1 {
		t.Fatalf("expected one config, got %d", len(cfgs))
	}
	cfg := cfgs[0]
	cfg.Buffered = buffered
	return session.Run(cfg)
}

// TestStreamingMatchesBufferedAllPlayers runs every player kind twice
// — once buffered (no segment pool, trace retained) and once streaming
// (pool on, nothing retained) — and demands three-way equality: the
// live streaming analysis of the buffered run, the offline replay of
// its trace, and the independent streaming run.
func TestStreamingMatchesBufferedAllPlayers(t *testing.T) {
	for _, k := range PlayerKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			sp := Spec{
				Player:   k,
				Sessions: 1,
				Duration: 60 * time.Second,
				Seed:     100 + int64(k),
			}
			buffered := runOne(t, sp, true)
			if buffered.Trace == nil || buffered.Trace.Len() == 0 {
				t.Fatal("buffered run captured nothing")
			}
			replay := analysis.Analyze(buffered.Trace, buffered.Config.AnalysisConfig())
			if !reflect.DeepEqual(buffered.Analysis, replay) {
				t.Fatalf("live streaming analysis != buffered replay\nlive:   %+v\nreplay: %+v", buffered.Analysis, replay)
			}
			streaming := runOne(t, sp, false)
			if streaming.Trace != nil {
				t.Fatal("streaming run must not buffer a trace")
			}
			if !reflect.DeepEqual(buffered.Analysis, streaming.Analysis) {
				t.Fatalf("streaming-mode session (segment pool on) diverged from buffered mode\nbuffered:  %+v\nstreaming: %+v", buffered.Analysis, streaming.Analysis)
			}
			if buffered.Downloaded != streaming.Downloaded || buffered.Packets != streaming.Packets {
				t.Fatalf("session accounting diverged: downloaded %d/%d, packets %d/%d",
					buffered.Downloaded, streaming.Downloaded, buffered.Packets, streaming.Packets)
			}
		})
	}
}

// TestStreamingMatchesBufferedShared covers the shared-bottleneck
// shape: per-client dispatch taps feed either per-client streaming
// sinks or per-client traces; every outcome must agree.
func TestStreamingMatchesBufferedShared(t *testing.T) {
	sp := Spec{
		Player:   IEHtml5,
		Sessions: 3,
		Arrival:  Arrival{Kind: Staggered, Window: 15 * time.Second},
		Duration: 45 * time.Second,
		Seed:     9,
	}
	bs := sp
	bs.Buffered = true
	buffered := RunShared(bs)
	streaming := RunShared(sp)

	full := sp.withDefaults()
	for i := range buffered.Outcomes {
		bo, so := buffered.Outcomes[i], streaming.Outcomes[i]
		v := full.video(i)
		replay := analysis.Analyze(bo.Trace, analysis.Config{
			KnownDuration: v.Duration,
			KnownRate:     v.EncodingRate,
		})
		if !reflect.DeepEqual(bo.Analysis, replay) {
			t.Fatalf("client %d: live shared analysis != buffered replay", i)
		}
		if !reflect.DeepEqual(bo.Analysis, so.Analysis) {
			t.Fatalf("client %d: streaming shared run diverged from buffered", i)
		}
		if so.Trace != nil {
			t.Fatalf("client %d: streaming shared run must not buffer a trace", i)
		}
	}
	if buffered.Offered != streaming.Offered || buffered.Dropped != streaming.Dropped {
		t.Fatalf("bottleneck accounting diverged: offered %d/%d dropped %d/%d",
			buffered.Offered, streaming.Offered, buffered.Dropped, streaming.Dropped)
	}
}

// TestStreamingMatchesBufferedPcapRoundTrip writes a buffered capture
// to pcap and classifies it twice — materialized (ReadPcap + Analyze)
// and streamed (StreamPcap into the online analyzer) — expecting
// identical Results.
func TestStreamingMatchesBufferedPcapRoundTrip(t *testing.T) {
	sp := Spec{
		Player:   Flash,
		Sessions: 1,
		Duration: 45 * time.Second,
		Seed:     4,
	}
	r := runOne(t, sp, true)
	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := analysis.Config{} // offline: no out-of-band metadata
	tr, err := trace.ReadPcap(bytes.NewReader(buf.Bytes()), session.ClientAddr)
	if err != nil {
		t.Fatal(err)
	}
	materialized := analysis.Analyze(tr, cfg)

	st := analysis.NewStreaming(cfg)
	if err := trace.StreamPcap(bytes.NewReader(buf.Bytes()), session.ClientAddr, st); err != nil {
		t.Fatal(err)
	}
	streamed := st.Result()
	if !reflect.DeepEqual(materialized, streamed) {
		t.Fatalf("pcap classification diverged\nmaterialized: %+v\nstreamed:     %+v", materialized, streamed)
	}
	if materialized.Strategy != r.Analysis.Strategy {
		t.Fatalf("strategy from pcap = %v, live = %v", materialized.Strategy, r.Analysis.Strategy)
	}
}
