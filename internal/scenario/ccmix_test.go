package scenario

import (
	"bytes"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/tcp"
)

// ccMixFleet is the heterogeneous-transport fleet the determinism
// suite runs: all three congestion controllers interleaved across the
// clients of a tree whose contended tiers run AQM — the full PR 9
// surface in one spec. Spanning several cells makes the CC assignment
// cross cell boundaries, which is exactly where a sharding-dependent
// assignment bug would show.
func ccMixFleet() Fleet {
	f := detFleet()
	f.Clients = 100 // 4 cells on the default 32-per-agg grouping
	f.CCMix = []string{tcp.CCReno, tcp.CCCubic, tcp.CCBbr}
	f.Tree.Agg.AQM = netem.AqmConfig{Kind: netem.AqmCoDel}
	f.Tree.Access.AQM = netem.AqmConfig{Kind: netem.AqmRED}
	f.Exact = true
	return f
}

// TestFleetMixedCCDeterministic: a mixed-CC, AQM-enabled fleet is the
// worker-count determinism guarantee's hardest case — per-client
// controller state must be derived from the global client index alone.
// One worker and an oversubscribed pool must produce DeepEqual results
// and byte-identical serialized artifacts.
func TestFleetMixedCCDeterministic(t *testing.T) {
	f := ccMixFleet()
	seq := RunFleet(runner.Options{Workers: 1}, f)
	par := RunFleet(runner.Options{Workers: runtime.NumCPU() + 3}, f)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("mixed-CC fleet differs between worker counts:\nseq: %s\npar: %s",
			seq.Render(), par.Render())
	}
	a, err := seq.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("serialized mixed-CC FleetResult differs between worker counts")
	}
	if seq.ActiveClients == 0 || seq.Downloaded == 0 {
		t.Fatalf("mixed-CC fleet streamed nothing: %s", seq.Render())
	}
}

// TestFleetMixedCCShardInvariant: the deprecated Shards hint and the
// serialized distributed path (WriteFleetCells streams merged with
// MergeFleetCellStreams, what `vfleet -distributed` children emit)
// must both reproduce the single-process mixed-CC result bit for bit.
func TestFleetMixedCCShardInvariant(t *testing.T) {
	f := ccMixFleet()
	f.Shards = 1
	single := RunFleet(runner.Options{Workers: 1}, f)
	f.Shards = 5
	resharded := RunFleet(runner.Options{Workers: 2}, f)
	single.Fleet.Shards = 0
	resharded.Fleet.Shards = 0
	if !reflect.DeepEqual(single, resharded) {
		t.Fatalf("shard hint changed the mixed-CC result:\n1: %s\n5: %s",
			single.Render(), resharded.Render())
	}

	f.Shards = 0
	singleBytes, _ := single.MarshalBinary()
	cells := f.Cells()
	if cells < 2 {
		t.Fatalf("fleet too small to split: %d cells", cells)
	}
	cuts := []int{0, cells / 2, cells}
	var readers []io.Reader
	for i := 0; i+1 < len(cuts); i++ {
		var buf bytes.Buffer
		if err := WriteFleetCells(&buf, runner.Options{Workers: 2}, f, cuts[i], cuts[i+1]); err != nil {
			t.Fatal(err)
		}
		readers = append(readers, &buf)
	}
	merged, err := MergeFleetCellStreams(f, readers...)
	if err != nil {
		t.Fatal(err)
	}
	merged.Fleet.Shards = 0
	if !reflect.DeepEqual(merged, single) {
		t.Fatalf("merged mixed-CC cells differ from single-process run:\nmerged: %s\nsingle: %s",
			merged.Render(), single.Render())
	}
	mergedBytes, _ := merged.MarshalBinary()
	if !bytes.Equal(mergedBytes, singleBytes) {
		t.Fatal("merged mixed-CC artifact bytes differ from single-process bytes")
	}
}

// TestParseCCMix covers the textual mix syntax and its error cases.
func TestParseCCMix(t *testing.T) {
	good := []struct {
		in   string
		want []string
	}{
		{"reno", []string{"reno"}},
		{"cubic", []string{"cubic"}},
		{"reno:2+cubic:1", []string{"reno", "reno", "cubic"}},
		{"RENO,BBR", []string{"reno", "bbr"}},
		{" reno : 1 , cubic : 2 ", []string{"reno", "cubic", "cubic"}},
	}
	for _, c := range good {
		got, err := ParseCCMix(c.in)
		if err != nil {
			t.Fatalf("ParseCCMix(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseCCMix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "vegas", "reno:0", "reno:-1", "reno:9999", "reno:x", ":2"} {
		if _, err := ParseCCMix(bad); err == nil {
			t.Fatalf("ParseCCMix(%q) accepted", bad)
		}
	}
}

// TestFleetCCMixValidation: unknown controller names must be rejected
// at spec validation, both in the mix and in the server default.
func TestFleetCCMixValidation(t *testing.T) {
	f := detFleet()
	f.CCMix = []string{"reno", "vegas"}
	if err := f.Validate(); err == nil {
		t.Fatal("unknown CC in mix validated")
	}
	f = detFleet()
	f.ServerTCP.CC = "vegas"
	if err := f.Validate(); err == nil {
		t.Fatal("unknown ServerTCP.CC validated")
	}
	f = detFleet()
	f.CCMix = []string{tcp.CCCubic}
	if err := f.Validate(); err != nil {
		t.Fatalf("valid CC mix rejected: %v", err)
	}
}

// TestSharedResultAqmDrops: a shared-bottleneck run with CoDel on a
// strained profile reports its policy drops in the OutageDrops-style
// AqmDrops counter, consistent with the induced-loss accounting.
func TestSharedResultAqmDrops(t *testing.T) {
	prof := netem.Profile{Name: "strained", Down: 3 * netem.Mbps, Up: 1 * netem.Mbps,
		RTT: 40 * time.Millisecond, Queue: 256 << 10, UpLoss: -1,
		AQM: netem.AqmConfig{Kind: netem.AqmCoDel}}
	res := RunShared(Spec{
		Profile:  prof,
		Player:   Flash,
		Sessions: 4,
		Duration: 30 * time.Second,
		Seed:     3,
	})
	if res.AqmDrops == 0 {
		t.Fatalf("CoDel on a strained shared bottleneck dropped nothing: %d total drops", res.Dropped)
	}
	if res.AqmDrops > res.Dropped {
		t.Fatalf("AqmDrops %d exceeds Dropped %d", res.AqmDrops, res.Dropped)
	}
	if res.OutageDrops != 0 {
		t.Fatalf("no outage in the timeline but OutageDrops = %d", res.OutageDrops)
	}
}
