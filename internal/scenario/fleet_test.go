package scenario

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// detFleet is the fleet the determinism suite runs: the acceptance
// scale (1,000 clients outside -race) on the default multi-tier tree,
// spanning dozens of cells so the merge path actually exercises
// cross-cell folding. Shards is set (and ignored) on purpose: results
// must not depend on it.
func detFleet() Fleet {
	return Fleet{
		Mix:      []MixEntry{{Player: Flash, Weight: 1}, {Player: FirefoxHtml5, Weight: 1}},
		Clients:  fleetDetClients,
		Duration: 15 * time.Second,
		Arrival:  Arrival{Kind: Staggered, Window: 8 * time.Second},
		Seed:     11,
		Shards:   4,
	}
}

// TestFleetShardCountInvariant pins the tentpole guarantee directly:
// the deprecated Shards hint must not influence a single byte of the
// result.
func TestFleetShardCountInvariant(t *testing.T) {
	f := detFleet()
	f.Clients = 100 // 4 cells, one ragged
	f.Shards = 1
	a := RunFleet(runner.Options{Workers: 1}, f)
	f.Shards = 7
	b := RunFleet(runner.Options{Workers: 3}, f)
	a.Fleet.Shards = 0 // resolved specs differ only in the ignored hint
	b.Fleet.Shards = 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shard hint changed the result:\n1 shard: %s\n7 shards: %s", a.Render(), b.Render())
	}
}

// TestFleetDeterministicAcrossWorkers: a sharded fleet produces a
// bit-identical FleetResult for one worker and one worker per CPU —
// the runner determinism guarantee extended to the fleet merge path.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	f := detFleet()
	seq := RunFleet(runner.Options{Workers: 1}, f)
	par := RunFleet(runner.Options{Workers: runtime.NumCPU() + 3}, f)
	if seq.Clients != f.Clients {
		t.Fatalf("ran %d clients, want %d", seq.Clients, f.Clients)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fleet result differs between worker counts:\nseq: %s\npar: %s",
			seq.Render(), par.Render())
	}
	if seq.ActiveClients == 0 || seq.Downloaded == 0 {
		t.Fatalf("fleet streamed nothing: %s", seq.Render())
	}
	if seq.Unrouted != 0 {
		t.Fatalf("unrouted packets in a fully attached tree: %d", seq.Unrouted)
	}
	// Rendered artifact equality too — what the golden harness and
	// vfleet print must not depend on the pool size either.
	if seq.Render() != par.Render() {
		t.Fatal("rendered artifacts differ between worker counts")
	}
}

// TestFleetAbrDeterministicAcrossWorkers is the adaptive twin of the
// worker-count determinism guarantee, at the acceptance scale (1,000
// clients outside -race): an ABR fleet under the PR 2 rate-drop
// timeline — controllers reacting to mid-run congestion at the
// aggregation tier — produces a bit-identical FleetResult (QoE
// sketches, rung occupancy and all) for one worker and one worker per
// CPU.
func TestFleetAbrDeterministicAcrossWorkers(t *testing.T) {
	f := Fleet{
		Mix:      []MixEntry{{Player: AbrBuffer, Weight: 2}, {Player: AbrRate, Weight: 1}, {Player: AbrFixed, Weight: 1}},
		Clients:  fleetDetClients,
		Duration: 30 * time.Second,
		Arrival:  Arrival{Kind: Staggered, Window: 8 * time.Second},
		Down:     netem.Dynamics{}.Then(netem.RateStep(10*time.Second, 20*netem.Mbps)),
		Seed:     17,
		Shards:   4,
	}
	seq := RunFleet(runner.Options{Workers: 1}, f)
	par := RunFleet(runner.Options{Workers: runtime.NumCPU() + 3}, f)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("ABR fleet result differs between worker counts:\nseq: %s\npar: %s",
			seq.Render(), par.Render())
	}
	if seq.Render() != par.Render() {
		t.Fatal("rendered artifacts differ between worker counts")
	}
	if seq.RungShare() == nil {
		t.Fatal("adaptive fleet reported no rung occupancy")
	}
	if seq.FetchedMbps.Quantile(0.5) <= 0 {
		t.Fatalf("adaptive fleet fetched nothing: %s", seq.Render())
	}
}

// TestFleetGOMAXPROCSInvariant tightens the worker-count invariance
// to the OS-thread level: two same-seed fleets serialize to
// byte-identical FleetResult artifacts between GOMAXPROCS=1 (forced
// single-threaded execution, whatever the pool size) and an
// oversubscribed parallel pool. Together with the globalrand vlint
// rule — no draw outside a seeded *rand.Rand, so the per-cell
// sim.Scheduler rng is the only randomness source reachable from a
// cell — this pins that thread scheduling cannot reach result bytes.
func TestFleetGOMAXPROCSInvariant(t *testing.T) {
	f := detFleet()
	f.Clients = 100
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	seq := RunFleet(runner.Options{Workers: runtime.NumCPU() + 3}, f)
	runtime.GOMAXPROCS(runtime.NumCPU() + 2)
	par := RunFleet(runner.Options{Workers: runtime.NumCPU() + 3}, f)
	a, err := seq.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("serialized FleetResult differs between GOMAXPROCS=1 and %d:\nseq: %s\npar: %s",
			runtime.NumCPU()+2, seq.Render(), par.Render())
	}
}

// TestFleetRerunIdentical: the same spec twice yields the same result
// (no hidden global state).
func TestFleetRerunIdentical(t *testing.T) {
	f := detFleet()
	f.Clients = 64
	f.Shards = 2
	a := RunFleet(runner.Options{Workers: 1}, f)
	b := RunFleet(runner.Options{Workers: 2}, f)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs produced different results")
	}
}

// exactQuantile mirrors the sketch's rank convention on a buffered
// sample vector.
func exactQuantile(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// coreRecorder buffers the raw core-link capture — the exact,
// buffered computation the streaming accumulators are pinned against.
type coreRecorder struct {
	at   []time.Duration
	size []int
}

func (r *coreRecorder) Capture(at time.Duration, seg *packet.Segment) {
	r.at = append(r.at, at)
	r.size = append(r.size, seg.WireLen())
}

// TestFleetSketchMatchesExact runs one fleet with both pipelines
// attached: the streaming quantile sketches must sit within their
// pinned relative-error bound of the exact buffered quantiles, and
// the streaming binned utilization must equal the offline binning of
// the buffered capture bit-for-bit (same values, same addition
// order). This mirrors the streaming/buffered analyzer equivalence
// suite one level up.
func TestFleetSketchMatchesExact(t *testing.T) {
	rec := &coreRecorder{}
	f := Fleet{
		Mix:          []MixEntry{{Player: Flash, Weight: 1}, {Player: ChromeHtml5, Weight: 2}},
		Clients:      48,
		Duration:     40 * time.Second,
		Arrival:      Arrival{Kind: Poisson, Window: 10 * time.Second},
		Seed:         5,
		UtilBin:      500 * time.Millisecond,
		Exact:        true,
		ExtraCoreTap: rec,
	}
	res := RunFleet(runner.Options{}, f)

	if res.Exact == nil || len(res.Exact.RateMbps) != 48 {
		t.Fatalf("exact vectors missing: %+v", res.Exact)
	}
	if int64(len(res.Exact.RateMbps)) != res.RateMbps.N() {
		t.Fatalf("sketch saw %d rate samples, exact has %d", res.RateMbps.N(), len(res.Exact.RateMbps))
	}
	checkSketch := func(name string, sk *stats.Sketch, samples []float64) {
		t.Helper()
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			got := sk.Quantile(q)
			want := exactQuantile(samples, q)
			if want == 0 {
				if got != 0 {
					t.Fatalf("%s q=%v: exact 0, sketch %v", name, q, got)
				}
				continue
			}
			if rel := math.Abs(got-want) / want; rel > sk.RelErr+1e-12 {
				t.Fatalf("%s q=%v: exact %v, sketch %v, rel err %.5f > %.5f",
					name, q, want, got, rel, sk.RelErr)
			}
		}
		if got, want := sk.Mean(), stats.Mean(samples); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s mean: sketch %v, exact %v", name, got, want)
		}
	}
	checkSketch("rate", res.RateMbps, res.Exact.RateMbps)
	checkSketch("startup", res.StartupSec, res.Exact.StartupSec)

	// Streaming binned utilization vs offline binning of the buffered
	// capture: identical capture order means identical float sums.
	exact := stats.NewBinned(f.UtilBin, f.Duration)
	var total float64
	for i, at := range rec.at {
		exact.Add(at, float64(rec.size[i]))
		total += float64(rec.size[i])
	}
	if !reflect.DeepEqual(exact.Bins, res.CoreUtil.Bins) {
		t.Fatal("streaming core utilization series differs from exact offline binning")
	}
	if res.CoreUtil.Sum() != total {
		t.Fatalf("core bytes: streaming %v, exact %v", res.CoreUtil.Sum(), total)
	}

	// Concurrency integrates to a sane series: never negative, peaks
	// at no more than the client count.
	for i, c := range res.Concurrency() {
		if c < 0 || c > float64(f.Clients) {
			t.Fatalf("concurrency bin %d = %v out of [0,%d]", i, c, f.Clients)
		}
	}
}

// TestFleetMixPattern: the weighted round-robin assignment is exact
// and shard-invariant.
func TestFleetMixPattern(t *testing.T) {
	f := Fleet{Mix: []MixEntry{{Player: Flash, Weight: 2}, {Player: FirefoxHtml5, Weight: 1}}}.withDefaults()
	p := f.pattern()
	if len(p) != 3 || p[0] != Flash || p[1] != Flash || p[2] != FirefoxHtml5 {
		t.Fatalf("pattern = %v", p)
	}
	counts := map[PlayerKind]int{}
	for i := 0; i < 300; i++ {
		counts[p[i%len(p)]]++
	}
	if counts[Flash] != 200 || counts[FirefoxHtml5] != 100 {
		t.Fatalf("mix proportions off: %v", counts)
	}
	// Per-client videos carry the kind's native container and
	// consecutive IDs regardless of which shard runs them.
	v := f.fleetVideo(7, Flash)
	if v.Container != Flash.NativeContainer() || v.ID != f.Video.ID+7 {
		t.Fatalf("fleetVideo = %+v", v)
	}
}

// TestFleetValidate rejects the specs that cannot run.
func TestFleetValidate(t *testing.T) {
	bad := []Fleet{
		{Mix: []MixEntry{{Player: Flash, Weight: 0}}},
		{Mix: []MixEntry{{Player: Flash, Weight: 1}, {Player: NetflixIPad, Weight: 1}}},
		{Clients: 17_000_000},
		{Clients: 4, Shards: 8},
		{Duration: 10 * time.Second, Warmup: 10 * time.Second},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, f)
		}
	}
	// The mixed-service rejection must fire for the service reason
	// specifically: a YouTube player and a Netflix player cannot share
	// one server port, and the cell world builds exactly one service.
	if err := bad[1].Validate(); err == nil || !strings.Contains(err.Error(), "spans services") {
		t.Fatalf("mixed-service mix rejected for the wrong reason: %v", err)
	}
	ok := Fleet{Mix: []MixEntry{{Player: Flash, Weight: 1}}, Clients: 10}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
}

// TestMixedFleetKeepsLegacyBitrate: adding an adaptive kind to a mix
// must not re-pin the shared video template — only the adaptive
// clients get the default ladder, applied per client.
func TestMixedFleetKeepsLegacyBitrate(t *testing.T) {
	f := Fleet{Mix: []MixEntry{
		{Player: SilverlightPC, Weight: 1},
		{Player: AbrBuffer, Weight: 1},
	}}.withDefaults()
	if len(f.Video.Renditions) != 0 || f.Video.EncodingRate != 1.75e6 {
		t.Fatalf("shared template mutated by the adaptive mix entry: %+v", f.Video)
	}
	legacy := f.fleetVideo(0, SilverlightPC)
	if len(legacy.Renditions) != 0 || legacy.EncodingRate != 1.75e6 {
		t.Fatalf("legacy client video mutated: %+v", legacy)
	}
	adaptive := f.fleetVideo(1, AbrBuffer)
	if len(adaptive.Renditions) == 0 {
		t.Fatalf("adaptive client got no ladder: %+v", adaptive)
	}
}
