package scenario

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/session"
)

func TestPlayerKindRegistry(t *testing.T) {
	kinds := PlayerKinds()
	if len(kinds) != 13 {
		t.Fatalf("want 13 player kinds (9 legacy + 4 ABR), got %d", len(kinds))
	}
	legacy := 0
	for _, k := range kinds {
		if !k.Adaptive() {
			legacy++
		}
	}
	if legacy != 9 {
		t.Fatalf("want the paper's 9 legacy kinds, got %d", legacy)
	}
	if !AbrBuffer.Adaptive() || Flash.Adaptive() {
		t.Fatal("Adaptive() misclassifies kinds")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Fatalf("duplicate player kind name %q", k)
		}
		seen[k.String()] = true
		if p := k.New(); p == nil || p.Name() == "" {
			t.Fatalf("kind %v: factory returned unusable player", k)
		}
		got, ok := PlayerKindByName(k.String())
		if !ok || got != k {
			t.Fatalf("PlayerKindByName(%q) = %v, %v", k, got, ok)
		}
	}
	if SilverlightPC.Service() != session.Netflix || Flash.Service() != session.YouTube {
		t.Fatal("player->service mapping broken")
	}
	if _, ok := PlayerKindByName("winamp"); ok {
		t.Fatal("unknown player name resolved")
	}
}

func TestArrivalProcesses(t *testing.T) {
	for _, a := range []Arrival{
		{Kind: AllAtOnce},
		{Kind: Staggered, Window: 30 * time.Second},
		{Kind: Poisson, Window: 30 * time.Second, Rate: 0.5},
		{Kind: FlashCrowd, Window: 60 * time.Second},
	} {
		rng := rand.New(rand.NewSource(5))
		ts := a.Times(16, rng)
		if len(ts) != 16 {
			t.Fatalf("%v: %d times", a.Kind, len(ts))
		}
		window := a.Window
		if window == 0 {
			window = 60 * time.Second
		}
		for i, x := range ts {
			if x < 0 || x > window {
				t.Fatalf("%v: time %v outside [0, %v]", a.Kind, x, window)
			}
			if i > 0 && x < ts[i-1] {
				t.Fatalf("%v: times not sorted", a.Kind)
			}
			if a.Kind == AllAtOnce && x != 0 {
				t.Fatalf("all-at-once produced offset %v", x)
			}
			if a.Kind == FlashCrowd && x > 6*time.Second {
				t.Fatalf("flash crowd arrival %v beyond 10%% of the window", x)
			}
		}
		// Same seed, same schedule.
		again := a.Times(16, rand.New(rand.NewSource(5)))
		for i := range ts {
			if ts[i] != again[i] {
				t.Fatalf("%v: schedule not deterministic", a.Kind)
			}
		}
	}
	if got := (Arrival{}).Times(0, rand.New(rand.NewSource(1))); got != nil {
		t.Fatal("zero sessions must produce no times")
	}
}

func TestSpecConfigsExpansion(t *testing.T) {
	sp := Spec{
		Player:   ChromeHtml5,
		Sessions: 4,
		Arrival:  Arrival{Kind: Staggered, Window: 20 * time.Second},
		Duration: 60 * time.Second,
		Seed:     7,
		Down:     netem.Dynamics{}.Then(netem.RateStep(30*time.Second, 2*netem.Mbps)),
	}
	cfgs := sp.Configs()
	if len(cfgs) != 4 {
		t.Fatalf("expanded %d configs, want 4", len(cfgs))
	}
	seeds := map[int64]bool{}
	ids := map[int]bool{}
	for i, c := range cfgs {
		if c.Service != session.YouTube {
			t.Fatalf("config %d: service %v", i, c.Service)
		}
		if c.Player == nil {
			t.Fatalf("config %d: nil player", i)
		}
		if c.Duration != 60*time.Second {
			t.Fatalf("config %d: duration %v", i, c.Duration)
		}
		if c.StartAt < 0 || c.StartAt > 20*time.Second {
			t.Fatalf("config %d: StartAt %v outside window", i, c.StartAt)
		}
		if seeds[c.Seed] {
			t.Fatalf("config %d: duplicate seed", i)
		}
		seeds[c.Seed] = true
		if ids[c.Video.ID] {
			t.Fatalf("config %d: duplicate video ID %d", i, c.Video.ID)
		}
		ids[c.Video.ID] = true
		if len(c.DownDynamics.Steps) != 1 {
			t.Fatalf("config %d: dynamics not propagated", i)
		}
	}
	// Expansion is deterministic.
	again := sp.Configs()
	for i := range cfgs {
		if cfgs[i].Seed != again[i].Seed || cfgs[i].StartAt != again[i].StartAt {
			t.Fatalf("config %d: expansion not deterministic", i)
		}
	}
}

// TestRunIsolatedStartAt: a delayed arrival must shorten the effective
// stream (capture horizon is absolute) and still produce a capture.
func TestRunIsolatedStartAt(t *testing.T) {
	sp := Spec{
		Player:   Flash,
		Sessions: 2,
		Arrival:  Arrival{Kind: Staggered, Window: 15 * time.Second},
		Duration: 40 * time.Second,
		Seed:     3,
	}
	results := RunIsolated(runner.Options{Workers: 2}, sp)
	for i, r := range results {
		if r.Downloaded == 0 {
			t.Fatalf("session %d downloaded nothing", i)
		}
		if r.Packets == 0 {
			t.Fatalf("session %d captured nothing", i)
		}
	}
}

// TestRunSharedDeterminism: two identical shared runs must agree
// byte-for-byte; a different seed must not (smoke that the seed is
// actually threaded through).
func TestRunSharedDeterminism(t *testing.T) {
	sp := Spec{
		Player:   Flash,
		Sessions: 4,
		Arrival:  Arrival{Kind: FlashCrowd, Window: 20 * time.Second},
		Duration: 45 * time.Second,
		Seed:     11,
		Down:     netem.Dynamics{}.Then(netem.RateStep(25*time.Second, 10*netem.Mbps)),
	}
	a, b := RunShared(sp), RunShared(sp)
	if a.Offered != b.Offered || a.Dropped != b.Dropped || a.Unrouted != b.Unrouted {
		t.Fatalf("shared run not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.Start != y.Start || x.Downloaded != y.Downloaded || x.Packets != y.Packets {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
		if x.Downloaded == 0 {
			t.Fatalf("outcome %d downloaded nothing", i)
		}
		if x.Packets == 0 {
			t.Fatalf("outcome %d has an empty per-client capture", i)
		}
	}
	if a.Unrouted != 0 {
		t.Fatalf("%d unrouted packets in a fully attached dumbbell", a.Unrouted)
	}
}

// TestRunSharedPerClientCaptures: the address-filtering taps must
// split the shared links into disjoint per-client traces whose byte
// totals sum to the aggregate.
func TestRunSharedPerClientCaptures(t *testing.T) {
	sp := Spec{
		Player:   Flash,
		Sessions: 3,
		Duration: 30 * time.Second,
		Seed:     2,
		Buffered: true, // record inspection below needs the raw capture
	}
	res := RunShared(sp)
	var sum int64
	for i, o := range res.Outcomes {
		down := o.Trace.DownBytes()
		if down == 0 {
			t.Fatalf("client %d saw no downstream bytes", i)
		}
		sum += down
		// Every record in a client's capture must involve its address.
		addr := clientAddr(i)
		for _, rec := range o.Trace.Records {
			if rec.Seg.Src.Addr != addr && rec.Seg.Dst.Addr != addr {
				t.Fatalf("client %d capture contains foreign packet", i)
			}
		}
	}
	if res.AggregateMbps <= 0 {
		t.Fatal("aggregate rate not computed")
	}
	want := float64(sum) * 8 / sp.Duration.Seconds() / 1e6
	if diff := res.AggregateMbps - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("aggregate %v Mbps, want %v from per-client sum", res.AggregateMbps, want)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := Spec{Player: Flash, Down: netem.Dynamics{Steps: []netem.Step{{At: -time.Second}}}}
	if bad.Validate() == nil {
		t.Fatal("invalid down timeline passed Validate")
	}
}
