package scenario

import (
	"testing"
	"time"

	"repro/internal/netem"
)

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want netem.Bandwidth
	}{
		{"2Mbps", 2 * netem.Mbps},
		{"750kbps", 750 * netem.Kbps},
		{"1.5Gbps", 1.5 * netem.Gbps},
		{"8000000", 8 * netem.Mbps},
		{"64 kbps", 64 * netem.Kbps},
		{"3mbps", 3 * netem.Mbps},
		{"100bps", 100},
	}
	for _, tc := range cases {
		got, err := ParseBandwidth(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBandwidth(%q) = %v, %v; want %v", tc.in, float64(got), err, float64(tc.want))
		}
	}
	for _, bad := range []string{"", "fast", "-2Mbps", "2Tbps2"} {
		if _, err := ParseBandwidth(bad); err == nil {
			t.Fatalf("ParseBandwidth(%q) accepted", bad)
		}
	}
}

func TestParseDynamics(t *testing.T) {
	d, err := ParseDynamics("rate@30s=2Mbps; loss@45s=0.02; delay@60s=200ms; outage@90s=5s; rate@120s+10s=10Mbps")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 5 {
		t.Fatalf("parsed %d steps, want 5", len(d.Steps))
	}
	st := d.Steps[0]
	if !st.SetRate || st.Rate != 2*netem.Mbps || st.At != 30*time.Second || st.Ramp != 0 {
		t.Fatalf("rate step parsed wrong: %+v", st)
	}
	if !d.Steps[1].SetLoss || d.Steps[1].At != 45*time.Second {
		t.Fatalf("loss step parsed wrong: %+v", d.Steps[1])
	}
	if !d.Steps[2].SetDelay || d.Steps[2].Delay != 200*time.Millisecond {
		t.Fatalf("delay step parsed wrong: %+v", d.Steps[2])
	}
	if d.Steps[3].Outage != 5*time.Second || d.Steps[3].At != 90*time.Second {
		t.Fatalf("outage step parsed wrong: %+v", d.Steps[3])
	}
	ramp := d.Steps[4]
	if !ramp.SetRate || ramp.Ramp != 10*time.Second || ramp.Rate != 10*netem.Mbps {
		t.Fatalf("ramp step parsed wrong: %+v", ramp)
	}

	if d, err := ParseDynamics("  "); err != nil || !d.Empty() {
		t.Fatalf("empty spec: %v, %v", d, err)
	}

	for _, bad := range []string{
		"rate=2Mbps",         // no time
		"rate@30s",           // no value
		"loss@10s=1.5",       // probability out of range
		"warp@10s=9",         // unknown kind
		"delay@10s+5s=200ms", // ramp on non-rate
		"outage@10s=-5s",     // negative outage
		"rate@ten=2Mbps",     // bad time
	} {
		if _, err := ParseDynamics(bad); err == nil {
			t.Fatalf("ParseDynamics(%q) accepted", bad)
		}
	}
}
