package scenario

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/runner"
)

// TestFleetFreshVsRecycledWorlds is the equivalence suite of the
// cell-world recycling contract: a fleet run on per-worker recycled
// worlds must serialize to exactly the bytes a run that constructs a
// fresh world per cell produces, at the full determinism-test scale
// and for both serial and pooled execution.
func TestFleetFreshVsRecycledWorlds(t *testing.T) {
	f := detFleet()
	recycled := RunFleet(runner.Options{Workers: 4}, f)
	rb, err := recycled.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	f.FreshWorlds = true
	for _, workers := range []int{1, 4} {
		fresh := RunFleet(runner.Options{Workers: workers}, f)
		fb, err := fresh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rb, fb) {
			t.Fatalf("fresh worlds (workers=%d) produce different bytes than recycled worlds", workers)
		}
		if fresh.Render() != recycled.Render() {
			t.Fatalf("fresh worlds (workers=%d) render differently than recycled worlds", workers)
		}
	}
}

// fuzzFleet is the small spec FuzzCellWorldReset worlds run: three
// cells, the last one ragged (8 of 16 slots), so the golden cell
// replays into a world whose spare slots still hold a fuller cell's
// state.
func fuzzFleet(seed int64) Fleet {
	f := Fleet{
		Mix:      []MixEntry{{Player: Flash, Weight: 1}, {Player: FirefoxHtml5, Weight: 1}},
		Clients:  40,
		Duration: 5 * time.Second,
		Arrival:  Arrival{Kind: Staggered, Window: 3 * time.Second},
		Seed:     seed,
	}
	f.Tree.ClientsPerAgg = 16
	return f.withDefaults()
}

// runCellBytes serializes one cell run of w.
func runCellBytes(t testing.TB, w *cellWorld, cell int) []byte {
	t.Helper()
	from := cell * w.per
	to := from + w.per
	if to > w.f.Clients {
		to = w.f.Clients
	}
	r := w.run(from, to)
	b, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	w.putResult(r)
	return b
}

// FuzzCellWorldReset dirties a recycled world with an arbitrary
// sequence of cells, then runs a golden cell and requires its bytes to
// match a fresh world's — the property that makes recycling invisible
// at any fleet scale. The fuzzer hunts for a (seed, dirt schedule)
// pair under which some layer's Reset leaks state into the next cell.
func FuzzCellWorldReset(f *testing.F) {
	f.Add(int64(11), uint8(0), uint8(1))
	f.Add(int64(7), uint8(2), uint8(3))
	f.Add(int64(-3), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, dirt, rounds uint8) {
		spec := fuzzFleet(seed)
		cells := spec.cells()
		golden := int(dirt+1) % cells

		w := newCellWorld(spec)
		for r := 0; r < int(rounds%3)+1; r++ {
			runCellBytes(t, w, (int(dirt)+r)%cells)
		}
		got := runCellBytes(t, w, golden)

		want := runCellBytes(t, newCellWorld(spec), golden)
		if !bytes.Equal(got, want) {
			t.Fatalf("dirty world (seed=%d dirt=%d rounds=%d) produced different bytes for cell %d", seed, dirt, rounds, golden)
		}
	})
}
