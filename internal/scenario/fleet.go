package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// MixEntry weights one player kind inside a fleet's strategy mix.
type MixEntry struct {
	Player PlayerKind
	Weight int
}

// Fleet declares a fleet-scale run: hundreds to thousands of
// concurrent sessions of a strategy mix, each behind its own access
// link of a multi-tier netem.Tree, competing at shared aggregation
// links and one core uplink. This is the aggregate vantage the paper
// closes on — what an ISP sees when thousands of ON-OFF sources
// synchronize — so results are streaming aggregate statistics
// (mergeable quantile sketches, fixed-width utilization series), not
// per-session captures: per-client state is O(1) and no analyzer or
// trace is attached anywhere.
type Fleet struct {
	Name string
	// Mix is the strategy mix. Clients take kinds from a deterministic
	// weighted round-robin pattern, so proportions are exact for any
	// client count. Empty means 100% Flash. All entries must talk to
	// one service (YouTube and Netflix players cannot share a server
	// port).
	Mix []MixEntry
	// CCMix assigns server-side congestion controllers per client:
	// global client i is served with CCMix[i % len(CCMix)] (tcp.CCReno
	// etc.; parse textual specs with ParseCCMix). Like Mix, the
	// assignment depends only on the global client index, never on
	// sharding, so mixed-CC results stay bit-identical across any
	// worker/shard/process split. Empty keeps ServerTCP.CC for
	// everyone.
	CCMix   []string
	Clients int // total sessions; default 64
	// Tree shapes the topology; zero fields take netem defaults
	// (6/1 Mbps access, 32 clients per 200 Mbps aggregation link,
	// 2 Gbps core).
	Tree netem.TreeConfig
	// Video is the content template; per-client copies get consecutive
	// IDs and the client's native container. Zero EncodingRate selects
	// the 1.75 Mbps 360p default.
	Video   media.Video
	Arrival Arrival
	// Duration is the absolute horizon; 0 → 180 s.
	Duration time.Duration
	// Warmup is where aggregate statistics (utilization means,
	// burstiness) start, so arrival ramps don't masquerade as
	// burstiness; 0 → Duration/4.
	Warmup time.Duration
	Seed   int64
	// Shards is a deprecated execution hint. The simulation unit is
	// now always one cell — a single aggregation group of
	// Tree.ClientsPerAgg clients with its own core uplink — so results
	// are bit-identical for any shard, worker, and process count;
	// parallelism comes from runner.Options alone. The field is still
	// validated (a spec asking for more shards than clients was always
	// a bug) but otherwise ignored.
	Shards int
	// Down is a dynamics timeline applied to every aggregation
	// downstream link of every shard — the fleet-scale form of the
	// PR 2 rate-drop scenarios (mid-run congestion at the contended
	// tier). Empty leaves the links frozen.
	Down netem.Dynamics
	// UtilBin is the width of the fixed-width utilization/concurrency
	// bins; 0 → 1 s.
	UtilBin time.Duration
	// QuantErr is the relative error of the QoE quantile sketches;
	// 0 → stats.DefaultSketchErr (1%).
	QuantErr  float64
	ServerTCP tcp.Config
	// Exact additionally retains exact per-client metric vectors
	// (FleetResult.Exact) — the buffered computation the sketch
	// equivalence tests pin the streaming one against. O(clients)
	// extra memory; leave false at scale.
	Exact bool
	// ExtraCoreTap, when non-nil, is attached to each shard's core
	// downstream link — the hook equivalence tests use to observe the
	// raw packet stream next to the streaming accumulators.
	ExtraCoreTap netem.Tap
	// FreshWorlds is a diagnostic knob: build a fresh cell world for
	// every cell instead of recycling one per worker. Results must be
	// byte-identical either way — this is the baseline the
	// fresh-vs-recycled equivalence suite (and `vfleet -fresh-worlds`)
	// compares against. Slower and allocation-heavy; leave false.
	FreshWorlds bool
}

// ParseMix parses a command-line strategy mix: entries of the form
// "player:weight" (weight optional, default 1) joined by '+' or ',',
// e.g. "flash:2+firefox:1" or "flash,chrome". It is the textual twin
// of Fleet.MixString.
func ParseMix(s string) ([]MixEntry, error) {
	var out []MixEntry
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == '+' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
			if err != nil {
				return nil, fmt.Errorf("mix %q: bad weight in %q", s, part)
			}
			weight = w
		}
		if weight <= 0 {
			return nil, fmt.Errorf("mix %q: non-positive weight in %q", s, part)
		}
		kind, ok := PlayerKindByName(name)
		if !ok {
			return nil, fmt.Errorf("mix %q: unknown player %q", s, name)
		}
		out = append(out, MixEntry{Player: kind, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q: no entries", s)
	}
	return out, nil
}

// MixString renders the resolved mix ("flash:1+firefox:1").
func (f Fleet) MixString() string {
	parts := make([]string, len(f.Mix))
	for i, e := range f.Mix {
		parts[i] = fmt.Sprintf("%s:%d", e.Player, e.Weight)
	}
	return strings.Join(parts, "+")
}

func (f Fleet) withDefaults() Fleet {
	if len(f.Mix) == 0 {
		f.Mix = []MixEntry{{Player: Flash, Weight: 1}}
	}
	if f.Clients <= 0 {
		f.Clients = 64
	}
	if f.Duration <= 0 {
		f.Duration = session.DefaultDuration
	}
	if f.Warmup <= 0 {
		f.Warmup = f.Duration / 4
	}
	if f.Seed == 0 {
		f.Seed = 1
	}
	if f.Shards <= 0 {
		f.Shards = 1
	}
	if f.UtilBin <= 0 {
		f.UtilBin = time.Second
	}
	if f.QuantErr <= 0 {
		f.QuantErr = stats.DefaultSketchErr
	}
	f.Tree = f.Tree.WithDefaults()
	if f.Video.EncodingRate == 0 {
		f.Video = media.Video{
			EncodingRate: 1.75e6,
			Duration:     420 * time.Second,
			Resolution:   "360p",
		}
	}
	if f.Video.ID == 0 {
		f.Video.ID = 9000
	}
	if f.Video.Duration <= 0 {
		f.Video.Duration = 420 * time.Second
	}
	if f.Name == "" {
		f.Name = fmt.Sprintf("fleet x%d %s", f.Clients, f.MixString())
	}
	return f
}

// Validate rejects fleets that cannot run.
func (f Fleet) Validate() error {
	f = f.withDefaults()
	svc := f.Mix[0].Player.Service()
	for _, e := range f.Mix {
		if e.Weight <= 0 {
			return fmt.Errorf("fleet %q: non-positive weight for %s", f.Name, e.Player)
		}
		if e.Player.Service() != svc {
			return fmt.Errorf("fleet %q: mix spans services (%s is %s, %s is %s)",
				f.Name, f.Mix[0].Player, svc, e.Player, e.Player.Service())
		}
	}
	if f.Clients > maxFleetClients {
		return fmt.Errorf("fleet %q: %d clients exceeds the 10.0.0.0/8 address plan", f.Name, f.Clients)
	}
	if f.Shards > f.Clients {
		return fmt.Errorf("fleet %q: %d shards for %d clients", f.Name, f.Shards, f.Clients)
	}
	if f.Warmup >= f.Duration {
		return fmt.Errorf("fleet %q: warmup %v >= duration %v", f.Name, f.Warmup, f.Duration)
	}
	if err := f.Down.Validate(); err != nil {
		return fmt.Errorf("fleet %q down: %w", f.Name, err)
	}
	for _, cc := range f.CCMix {
		if !tcp.ValidCC(cc) {
			return fmt.Errorf("fleet %q: unknown congestion control %q", f.Name, cc)
		}
	}
	if !tcp.ValidCC(f.ServerTCP.CC) {
		return fmt.Errorf("fleet %q: unknown congestion control %q", f.Name, f.ServerTCP.CC)
	}
	return nil
}

// ParseCCMix parses a congestion-controller mix: names joined by '+'
// or ',', each with an optional ":weight" ("cubic", "reno:2+cubic:1").
// The result is the expanded per-client cycle for Fleet.CCMix.
func ParseCCMix(s string) ([]string, error) {
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == '+' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = strings.TrimSpace(part[:i])
			w, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
			if err != nil || w <= 0 || w > 1024 {
				return nil, fmt.Errorf("cc mix %q: bad weight in %q", s, part)
			}
			weight = w
		}
		name = strings.ToLower(name)
		if name == "" || !tcp.ValidCC(name) {
			return nil, fmt.Errorf("cc mix %q: unknown congestion control %q (%s)",
				s, name, strings.Join(tcp.CCKinds(), "|"))
		}
		for k := 0; k < weight; k++ {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cc mix %q: no entries", s)
	}
	return out, nil
}

// maxFleetClients is the capacity of the 10.0.0.0/8 client address
// plan: clientAddr maps indices injectively into three octets.
const maxFleetClients = 1<<24 - 2

// cells returns the number of simulation cells the fleet splits into:
// one per aggregation group. The cell is the fixed physical unit — its
// own scheduler, tree, server, and core uplink — which is what makes
// results independent of how cells are batched across workers or
// processes.
func (f Fleet) cells() int {
	per := f.Tree.ClientsPerAgg
	return (f.Clients + per - 1) / per
}

// Cells reports how many cells the resolved fleet runs — the unit
// distributed drivers partition across processes.
func (f Fleet) Cells() int {
	return f.withDefaults().cells()
}

// pattern expands the mix into its weighted round-robin sequence:
// entry order, each kind Weight times. Client i plays
// pattern[i%len(pattern)], which keeps proportions exact and the
// assignment independent of sharding.
func (f Fleet) pattern() []PlayerKind {
	var p []PlayerKind
	for _, e := range f.Mix {
		for k := 0; k < e.Weight; k++ {
			p = append(p, e.Player)
		}
	}
	return p
}

// fleetVideo is client i's content: the template with a consecutive ID
// and the client's native container, so a mixed fleet streams each
// kind its own format. An adaptive client with no explicit ladder gets
// the default one — applied per client, never to the shared template,
// so legacy kinds in a mixed fleet keep the template's bitrate instead
// of being silently re-pinned to the ladder's top rung.
func (f Fleet) fleetVideo(i int, kind PlayerKind) media.Video {
	v := f.Video
	v.ID += i
	v.Container = kind.NativeContainer()
	if kind.Adaptive() && len(v.Renditions) == 0 {
		v = v.WithLadder(media.DefaultLadder()...)
	}
	return v
}

// FleetResult is the merged outcome of a fleet run: streaming
// aggregate statistics only, O(clients + bins) memory regardless of
// how many packets flowed.
type FleetResult struct {
	Fleet   Fleet // resolved spec
	Clients int
	Groups  int // aggregation links == cells across the whole fleet

	// Per-client QoE sketches (merged across cells, exact merge).
	RateMbps   *stats.Sketch // mean goodput over each client's active period
	StartupSec *stats.Sketch // arrival → first payload byte

	// Playback QoE sketches (merged across cells): the buffer-model
	// outcomes of every client.
	RebufCount  *stats.Sketch // rebuffer events per client
	RebufSec    *stats.Sketch // total rebuffer seconds per client
	SwitchCount *stats.Sketch // rendition switches per client
	FetchedMbps *stats.Sketch // duration-weighted mean fetched bitrate
	// RungSec is fetched media seconds per ladder rung, summed
	// fleet-wide (nil when no client streamed a ladder).
	RungSec []float64

	// Per-tier downstream utilization: wire bytes per UtilBin bin,
	// summed over every link of the tier (and every cell).
	CoreUtil   *stats.Binned
	AggUtil    *stats.Binned
	AccessUtil *stats.Binned
	// ConcurrencyDeltas holds +1/-1 at each client's active-period
	// boundaries; Concurrency() integrates it.
	ConcurrencyDeltas *stats.Binned

	// Burstiness sketches over post-warmup per-bin rates: one CV
	// sample per aggregation link and one per cell core link.
	AggBurst  *stats.Sketch
	CoreBurst *stats.Sketch

	// Loss accounting (downstream), per tier.
	CoreOffered, CoreDropped      int
	AggDropped, AccessDropped     int
	Unrouted                      int
	InducedCoreLoss               float64
	Downloaded                    int64 // player-consumed bytes, fleet-wide
	ActiveClients, StarvedClients int   // got ≥1 payload byte / got none

	// Exact per-client vectors in global client order; nil unless
	// Fleet.Exact.
	Exact *FleetExact
}

// FleetExact is the buffered companion the sketch tests compare
// against: the same per-client samples the sketches absorbed.
type FleetExact struct {
	RateMbps   []float64
	StartupSec []float64
}

// Concurrency returns the per-bin count of clients with an active
// download (first payload seen, last payload not yet).
func (r *FleetResult) Concurrency() []float64 { return r.ConcurrencyDeltas.Cum() }

// meanMbps converts a tier's merged byte series into the mean
// per-link Mbps over the post-warmup window.
func (r *FleetResult) meanMbps(b *stats.Binned, links int) float64 {
	w := b.From(r.Fleet.Warmup)
	if len(w) == 0 || links == 0 {
		return 0
	}
	return stats.Mean(w) * 8 / b.Width.Seconds() / 1e6 / float64(links)
}

// CoreMbps, AggMbps and AccessMbps return mean per-link downstream
// rates over the post-warmup window.
func (r *FleetResult) CoreMbps() float64 { return r.meanMbps(r.CoreUtil, r.Groups) }

// AggMbps returns the mean per-aggregation-link downstream rate.
func (r *FleetResult) AggMbps() float64 { return r.meanMbps(r.AggUtil, r.Groups) }

// AccessMbps returns the mean per-access-link downstream rate.
func (r *FleetResult) AccessMbps() float64 { return r.meanMbps(r.AccessUtil, r.Clients) }

// Render prints the fleet summary table shared by vfleet, the fleet
// example and the experiment artifacts.
func (r *FleetResult) Render() string {
	var b strings.Builder
	f := r.Fleet
	fmt.Fprintf(&b, "fleet %q: %d clients, %d cells (%d/agg), %v horizon (%v warmup)\n",
		f.Name, r.Clients, r.Groups, f.Tree.ClientsPerAgg, f.Duration, f.Warmup)
	fmt.Fprintf(&b, "  mix            : %s, arrivals %s\n", f.MixString(), f.Arrival.Kind)
	fmt.Fprintf(&b, "  tier util Mbps : core %.1f  agg %.1f  access %.2f (per link, post-warmup)\n",
		r.CoreMbps(), r.AggMbps(), r.AccessMbps())
	fmt.Fprintf(&b, "  agg burstiness : CV p50 %.3f (p90 %.3f)   core CV %.3f\n",
		r.AggBurst.Quantile(0.5), r.AggBurst.Quantile(0.9), r.CoreBurst.Quantile(0.5))
	fmt.Fprintf(&b, "  client rate    : p10 %.2f  p50 %.2f  p90 %.2f Mbps (%d active, %d starved)\n",
		r.RateMbps.Quantile(0.1), r.RateMbps.Quantile(0.5), r.RateMbps.Quantile(0.9),
		r.ActiveClients, r.StarvedClients)
	fmt.Fprintf(&b, "  startup        : p50 %.2f s  p90 %.2f s\n",
		r.StartupSec.Quantile(0.5), r.StartupSec.Quantile(0.9))
	fmt.Fprintf(&b, "  playback       : rebuffers p50 %.0f (p90 %.0f), %.1f s stalled p90, switches p50 %.0f\n",
		r.RebufCount.Quantile(0.5), r.RebufCount.Quantile(0.9),
		r.RebufSec.Quantile(0.9), r.SwitchCount.Quantile(0.5))
	if shares := r.RungShare(); shares != nil {
		fmt.Fprintf(&b, "  rung occupancy :")
		for i, s := range shares {
			fmt.Fprintf(&b, " r%d %.0f%%", i, s*100)
		}
		fmt.Fprintf(&b, "  (mean fetched %.2f Mbps p50)\n", r.FetchedMbps.Quantile(0.5))
	}
	fmt.Fprintf(&b, "  core loss      : %.3f%% (%d/%d)  agg drops %d  access drops %d\n",
		r.InducedCoreLoss*100, r.CoreDropped, r.CoreOffered, r.AggDropped, r.AccessDropped)
	return b.String()
}

// RungShare returns each ladder rung's share of the fetched media
// time, nil when no client streamed a ladder.
func (r *FleetResult) RungShare() []float64 {
	var total float64
	for _, s := range r.RungSec {
		total += s
	}
	if total <= 0 {
		return nil
	}
	out := make([]float64, len(r.RungSec))
	for i, s := range r.RungSec {
		out[i] = s / total
	}
	return out
}

// clientState is the whole per-client state a fleet run keeps — six
// words in a struct-of-arrays slice, so every client's counters live
// in one cache line and the tap update is O(1) per downstream packet.
// The struct is its own netem.Tap: attaching &states[j] boxes a plain
// pointer into the interface, so flattening also removes the per-client
// tap allocation the old two-level clientTap paid.
type clientState struct {
	bytes   int64
	packets int64
	start   time.Duration
	first   time.Duration // -1 until the first payload byte
	last    time.Duration
	util    *stats.Binned // shared access-tier utilization series
}

// Capture implements netem.Tap.
func (c *clientState) Capture(at time.Duration, seg *packet.Segment) {
	c.util.Add(at, float64(seg.WireLen()))
	n := seg.Len()
	if n == 0 {
		return
	}
	c.packets++
	c.bytes += int64(n)
	if c.first < 0 {
		c.first = at
	}
	c.last = at
}

// utilTap accumulates wire bytes of a shared link into binned series.
type utilTap struct {
	bins []*stats.Binned
}

// Capture implements netem.Tap.
func (t utilTap) Capture(at time.Duration, seg *packet.Segment) {
	v := float64(seg.WireLen())
	for _, b := range t.bins {
		b.Add(at, v)
	}
}

// fleetCellSeed derives the deterministic seed of one cell from the
// global index of its first client; a fixed formula (not an rng
// stream) keeps it independent of evaluation order. The formula is the
// one the sharded scheme used, so group-aligned runs reproduce their
// historical traces exactly.
func fleetCellSeed(seed int64, firstClient int) int64 {
	return seed + 1000003*int64(firstClient)
}

// merge folds sh — the next cell in global cell order — into r. Every
// operation is either exact (sketch bin addition, integer sums) or a
// float left-fold in a fixed order, so any execution that folds cells
// 0..n-1 left to right produces bit-identical bytes, whether the cells
// ran on one worker, a pool, or another process.
func (r *FleetResult) merge(sh *FleetResult) {
	r.Clients += sh.Clients
	r.Groups += sh.Groups
	r.RateMbps.Merge(sh.RateMbps)
	r.StartupSec.Merge(sh.StartupSec)
	r.RebufCount.Merge(sh.RebufCount)
	r.RebufSec.Merge(sh.RebufSec)
	r.SwitchCount.Merge(sh.SwitchCount)
	r.FetchedMbps.Merge(sh.FetchedMbps)
	for len(r.RungSec) < len(sh.RungSec) {
		r.RungSec = append(r.RungSec, 0)
	}
	for i, sec := range sh.RungSec {
		r.RungSec[i] += sec
	}
	r.CoreUtil.Merge(sh.CoreUtil)
	r.AggUtil.Merge(sh.AggUtil)
	r.AccessUtil.Merge(sh.AccessUtil)
	r.ConcurrencyDeltas.Merge(sh.ConcurrencyDeltas)
	r.AggBurst.Merge(sh.AggBurst)
	r.CoreBurst.Merge(sh.CoreBurst)
	r.CoreOffered += sh.CoreOffered
	r.CoreDropped += sh.CoreDropped
	r.AggDropped += sh.AggDropped
	r.AccessDropped += sh.AccessDropped
	r.Unrouted += sh.Unrouted
	r.Downloaded += sh.Downloaded
	r.ActiveClients += sh.ActiveClients
	r.StarvedClients += sh.StarvedClients
	if r.Exact != nil && sh.Exact != nil {
		r.Exact.RateMbps = append(r.Exact.RateMbps, sh.Exact.RateMbps...)
		r.Exact.StartupSec = append(r.Exact.StartupSec, sh.Exact.StartupSec...)
	}
}

// finalize derives the quotient fields once every cell has been folded
// in. It is idempotent, so re-finalizing a merged-of-merged result
// (the distributed parent) is safe.
func (r *FleetResult) finalize() {
	if r.CoreOffered > 0 {
		r.InducedCoreLoss = float64(r.CoreDropped) / float64(r.CoreOffered)
	}
}

// newFleetResult builds an empty result shell for f: the sketches,
// binned series and Exact buffers a cell (or the fleet accumulator)
// folds into. cellWorld recycles these shells; merging a cell into a
// fresh shell is exact, so the accumulator path produces the same
// bytes the old adopt-first-cell fold did.
func newFleetResult(f Fleet) *FleetResult {
	r := &FleetResult{
		Fleet:             f,
		RateMbps:          stats.NewSketch(f.QuantErr),
		StartupSec:        stats.NewSketch(f.QuantErr),
		RebufCount:        stats.NewSketch(f.QuantErr),
		RebufSec:          stats.NewSketch(f.QuantErr),
		SwitchCount:       stats.NewSketch(f.QuantErr),
		FetchedMbps:       stats.NewSketch(f.QuantErr),
		CoreUtil:          stats.NewBinned(f.UtilBin, f.Duration),
		AggUtil:           stats.NewBinned(f.UtilBin, f.Duration),
		AccessUtil:        stats.NewBinned(f.UtilBin, f.Duration),
		ConcurrencyDeltas: stats.NewBinned(f.UtilBin, f.Duration),
		AggBurst:          stats.NewSketch(f.QuantErr),
		CoreBurst:         stats.NewSketch(f.QuantErr),
	}
	if f.Exact {
		r.Exact = &FleetExact{}
	}
	return r
}

// fleetWave bounds how many per-cell results exist at once: cells run
// in waves on the runner pool and each wave is folded into the
// accumulator before the next starts. A million-client fleet is ~31k
// cells; waves keep the in-flight results O(fleetWave) while the fold
// order stays the global cell order, so the batching is invisible in
// the bytes.
const fleetWave = 1024

// runFleetCellRange runs cells [lo, hi) in waves and passes each
// cell's result to emit in cell order. It is the shared engine of
// RunFleet and the distributed child mode (which serializes each
// result instead of folding it).
//
// Each pool worker keeps one cellWorld for the whole range, so a wave
// reuses Workers worlds instead of constructing fleetWave of them; the
// wave-sized result and producer arrays are allocated once and shells
// return to their producing world after emit. Workers own disjoint
// wave indexes (runner.MapN), so the per-index writes need no locks
// and the emit order — global cell order — is untouched.
func runFleetCellRange(o runner.Options, f Fleet, lo, hi int, emit func(cell int, r *FleetResult)) {
	if hi <= lo {
		return
	}
	per := f.Tree.ClientsPerAgg
	waveCap := hi - lo
	if waveCap > fleetWave {
		waveCap = fleetWave
	}
	worlds := make([]*cellWorld, o.NumWorkers())
	results := make([]*FleetResult, waveCap)
	producers := make([]*cellWorld, waveCap)
	for base := lo; base < hi; base += fleetWave {
		n := hi - base
		if n > fleetWave {
			n = fleetWave
		}
		runner.MapN(o, n, func(worker, i int) {
			var w *cellWorld
			if f.FreshWorlds {
				w = newCellWorld(f)
			} else {
				w = worlds[worker]
				if w == nil {
					w = newCellWorld(f)
					worlds[worker] = w
				}
			}
			from := (base + i) * per
			to := from + per
			if to > f.Clients {
				to = f.Clients
			}
			results[i] = w.run(from, to)
			producers[i] = w
		})
		for i := 0; i < n; i++ {
			emit(base+i, results[i])
		}
		for i := 0; i < n; i++ {
			producers[i].putResult(results[i])
			results[i] = nil
			producers[i] = nil
		}
	}
}

// RunFleet executes the fleet: cells fan out on the runner pool (each
// cell one single-threaded simulation of one aggregation group on a
// per-worker recycled cell world) and their streaming statistics fold
// in cell order into a fresh accumulator, so the result is
// bit-identical for any worker count — and, because the cell is the
// physical unit, for any shard or process count too.
func RunFleet(o runner.Options, f Fleet) *FleetResult {
	f = f.withDefaults()
	if err := f.Validate(); err != nil {
		panic("scenario: " + err.Error())
	}
	if f.ExtraCoreTap != nil {
		// The extra tap is shared mutable state across cells: run them
		// sequentially so it observes the packet stream in cell order.
		o.Workers = 1
	}
	res := newFleetResult(f)
	runFleetCellRange(o, f, 0, f.cells(), func(_ int, sh *FleetResult) {
		res.merge(sh)
	})
	res.finalize()
	return res
}
