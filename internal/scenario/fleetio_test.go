package scenario

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/runner"
)

// serFleet exercises every serialized field: an adaptive mix populates
// the playback sketches and RungSec, Exact retains the per-client
// vectors, and a ragged tail (clients not divisible by the group size)
// checks partial cells.
func serFleet(clients int) Fleet {
	return Fleet{
		Mix:      []MixEntry{{Player: AbrBuffer, Weight: 1}, {Player: AbrRate, Weight: 2}},
		Clients:  clients,
		Duration: 12 * time.Second,
		Arrival:  Arrival{Kind: Staggered, Window: 5 * time.Second},
		Seed:     23,
		Exact:    true,
	}
}

// TestFleetResultRoundTrip pins the exactness of the codec: marshal →
// unmarshal → reflect.DeepEqual across every sketch, binned series,
// vector and scalar field, and re-marshalling the decoded result
// reproduces the original bytes (the encoding is canonical).
func TestFleetResultRoundTrip(t *testing.T) {
	f := serFleet(70)
	res := RunFleet(runner.Options{Workers: 1}, f)

	data, err := res.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFleetResult(data, f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, res)
	}
	re, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("re-marshalling the decoded result changed the bytes")
	}

	// Without Exact the presence flag must round-trip to nil.
	f2 := serFleet(33)
	f2.Exact = false
	res2 := RunFleet(runner.Options{Workers: 1}, f2)
	data2, _ := res2.MarshalBinary()
	got2, err := UnmarshalFleetResult(data2, f2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Exact != nil {
		t.Fatal("Exact resurrected from a run that did not retain it")
	}
	if !reflect.DeepEqual(got2, res2) {
		t.Fatal("round-trip mismatch without Exact")
	}
}

func TestFleetResultCodecErrors(t *testing.T) {
	f := serFleet(33)
	res := RunFleet(runner.Options{Workers: 1}, f)
	data, _ := res.MarshalBinary()
	for _, cut := range []int{0, 7, 8, len(data) / 2, len(data) - 1} {
		if _, err := UnmarshalFleetResult(data[:cut], f); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := UnmarshalFleetResult(append(data, 0), f); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := UnmarshalFleetResult(bad, f); err == nil {
		t.Fatal("bad magic decoded without error")
	}
}

// TestFleetMergeSerializedCells is the distributed-protocol golden at
// the acceptance scale (1,000 clients outside -race): cells serialized
// in contiguous ranges across several streams — exactly what -distributed
// child processes emit — must merge into a result that is DeepEqual to
// AND byte-identical with a single-process run.
func TestFleetMergeSerializedCells(t *testing.T) {
	f := detFleet()
	f.Exact = true
	single := RunFleet(runner.Options{Workers: 1}, f)
	singleBytes, _ := single.MarshalBinary()

	cells := f.Cells()
	if cells < 3 {
		t.Fatalf("fleet too small to split: %d cells", cells)
	}
	// Uneven contiguous ranges, like child processes with ragged
	// splits (duplicate cuts collapse at small -race scales).
	cuts := []int{0, cells / 3, cells / 2, cells}
	var streams []*bytes.Buffer
	for i := 0; i+1 < len(cuts); i++ {
		if cuts[i] >= cuts[i+1] {
			continue
		}
		var buf bytes.Buffer
		if err := WriteFleetCells(&buf, runner.Options{Workers: 2}, f, cuts[i], cuts[i+1]); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, &buf)
	}
	readers := make([]io.Reader, len(streams))
	for i, s := range streams {
		readers[i] = s
	}
	merged, err := MergeFleetCellStreams(f, readers...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, single) {
		t.Fatalf("merged serialized cells differ from single-process run:\nmerged: %s\nsingle: %s",
			merged.Render(), single.Render())
	}
	mergedBytes, _ := merged.MarshalBinary()
	if !bytes.Equal(mergedBytes, singleBytes) {
		t.Fatal("merged artifact bytes differ from single-process bytes")
	}

	// A stream that covers only part of the fleet must be rejected.
	var partial bytes.Buffer
	if err := WriteFleetCells(&partial, runner.Options{Workers: 1}, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFleetCellStreams(f, &partial); err == nil {
		t.Fatal("partial coverage merged without error")
	}
}

func TestWriteFleetCellsValidatesRange(t *testing.T) {
	f := serFleet(70)
	var buf bytes.Buffer
	for _, r := range [][2]int{{-1, 1}, {0, 100}, {2, 2}, {3, 1}} {
		if err := WriteFleetCells(&buf, runner.Options{}, f, r[0], r[1]); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
}
