package scenario

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// ArrivalKind selects the arrival process for a scenario's sessions.
type ArrivalKind int

// The four processes. AllAtOnce is the degenerate paper setup (one
// measurement at a time starts immediately); the others open the
// time-varying workloads the paper could not capture.
const (
	// AllAtOnce starts every session at t=0.
	AllAtOnce ArrivalKind = iota
	// Staggered spreads starts uniformly at random over Window.
	Staggered
	// Poisson draws exponential inter-arrival times at Rate per
	// second, truncated to Window (a session that would arrive after
	// the window joins at its end).
	Poisson
	// FlashCrowd packs every arrival into the first Burst fraction of
	// Window (default 10%): the sudden-audience workload.
	FlashCrowd
)

func (k ArrivalKind) String() string {
	switch k {
	case AllAtOnce:
		return "all-at-once"
	case Staggered:
		return "staggered"
	case Poisson:
		return "poisson"
	case FlashCrowd:
		return "flash-crowd"
	default:
		return "unknown"
	}
}

// Arrival is a declarative arrival process.
type Arrival struct {
	Kind   ArrivalKind
	Window time.Duration // span arrivals land in; 0 means 60 s
	Rate   float64       // Poisson arrivals per second; 0 means n/Window
	Burst  float64       // FlashCrowd: leading fraction of Window; 0 means 0.1
}

// Times returns n sorted start offsets drawn from the process using
// rng. The draw order is fixed, so a given (process, seed) pair always
// produces the same schedule — scenario determinism hangs off this.
func (a Arrival) Times(n int, rng *rand.Rand) []time.Duration {
	return a.TimesInto(nil, n, rng)
}

// TimesInto is Times reusing dst's backing array when it is large
// enough — the per-cell schedule scratch of a recycled fleet world.
// The returned slice holds exactly the same values Times would.
func (a Arrival) TimesInto(dst []time.Duration, n int, rng *rand.Rand) []time.Duration {
	if n <= 0 {
		return dst[:0]
	}
	window := a.Window
	if window <= 0 {
		window = 60 * time.Second
	}
	var out []time.Duration
	if cap(dst) >= n {
		out = dst[:n]
	} else {
		out = make([]time.Duration, n)
	}
	switch a.Kind {
	case Staggered:
		for i := range out {
			out[i] = time.Duration(rng.Int63n(int64(window)))
		}
	case Poisson:
		rate := a.Rate
		if rate <= 0 {
			rate = float64(n) / window.Seconds()
		}
		at := 0.0
		for i := range out {
			at += rng.ExpFloat64() / rate
			d := time.Duration(at * float64(time.Second))
			if d > window {
				d = window
			}
			out[i] = d
		}
	case FlashCrowd:
		burst := a.Burst
		if burst <= 0 {
			burst = 0.1
		}
		span := time.Duration(math.Min(burst, 1) * float64(window))
		if span <= 0 {
			span = 1
		}
		for i := range out {
			out[i] = time.Duration(rng.Int63n(int64(span)))
		}
	default: // AllAtOnce: zeros
		clear(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
