package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/netem"
)

// ParseDynamics turns a compact textual timeline into a
// netem.Dynamics. Events are separated by ';' and each takes one of
// the forms
//
//	rate@30s=2Mbps        step the rate at t=30s
//	rate@30s+10s=2Mbps    ramp linearly to 2 Mbps over [30s, 40s]
//	delay@60s=200ms       step the propagation delay
//	loss@45s=0.02         step to independent random loss
//	outage@90s=5s         block the link over [90s, 95s)
//	aqm@60s=codel         switch the queue policy (droptail|red|codel)
//
// This is the cmd/vscenario spec syntax; scenario code composes
// netem.Dynamics values directly.
func ParseDynamics(spec string) (netem.Dynamics, error) {
	var d netem.Dynamics
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return d, nil
	}
	for _, ev := range strings.Split(spec, ";") {
		ev = strings.TrimSpace(ev)
		if ev == "" {
			continue
		}
		kindAndTime, value, ok := strings.Cut(ev, "=")
		if !ok {
			return d, fmt.Errorf("dynamics event %q: missing '='", ev)
		}
		kind, timeSpec, ok := strings.Cut(kindAndTime, "@")
		if !ok {
			return d, fmt.Errorf("dynamics event %q: missing '@<time>'", ev)
		}
		kind = strings.ToLower(strings.TrimSpace(kind))
		atSpec, rampSpec, hasRamp := strings.Cut(timeSpec, "+")
		at, err := time.ParseDuration(strings.TrimSpace(atSpec))
		if err != nil {
			return d, fmt.Errorf("dynamics event %q: bad time: %v", ev, err)
		}
		var ramp time.Duration
		if hasRamp {
			if kind != "rate" {
				return d, fmt.Errorf("dynamics event %q: only rate supports ramps", ev)
			}
			ramp, err = time.ParseDuration(strings.TrimSpace(rampSpec))
			if err != nil {
				return d, fmt.Errorf("dynamics event %q: bad ramp: %v", ev, err)
			}
		}
		value = strings.TrimSpace(value)
		switch kind {
		case "rate":
			r, err := ParseBandwidth(value)
			if err != nil {
				return d, fmt.Errorf("dynamics event %q: %v", ev, err)
			}
			if hasRamp {
				d = d.Then(netem.RateRamp(at, ramp, r))
			} else {
				d = d.Then(netem.RateStep(at, r))
			}
		case "delay":
			dl, err := time.ParseDuration(value)
			if err != nil {
				return d, fmt.Errorf("dynamics event %q: bad delay: %v", ev, err)
			}
			d = d.Then(netem.DelayStep(at, dl))
		case "loss":
			p, err := strconv.ParseFloat(value, 64)
			if err != nil || p < 0 || p > 1 {
				return d, fmt.Errorf("dynamics event %q: loss must be a probability in [0,1]", ev)
			}
			d = d.Then(netem.LossStep(at, p))
		case "outage":
			dur, err := time.ParseDuration(value)
			if err != nil || dur <= 0 {
				return d, fmt.Errorf("dynamics event %q: bad outage duration", ev)
			}
			d = d.Then(netem.OutageStep(at, dur))
		case "aqm":
			a, err := netem.ParseAqm(strings.ToLower(value))
			if err != nil {
				return d, fmt.Errorf("dynamics event %q: %v", ev, err)
			}
			d = d.Then(netem.AqmStep(at, a))
		default:
			return d, fmt.Errorf("dynamics event %q: unknown kind %q (rate|delay|loss|outage|aqm)", ev, kind)
		}
	}
	if err := d.Validate(); err != nil {
		return netem.Dynamics{}, err
	}
	return d, nil
}

// ParseBandwidth parses "2Mbps", "750kbps", "1.5Gbps" or a bare
// bits-per-second number.
func ParseBandwidth(s string) (netem.Bandwidth, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(ls, "kbps"):
		mult, ls = 1e3, strings.TrimSuffix(ls, "kbps")
	case strings.HasSuffix(ls, "mbps"):
		mult, ls = 1e6, strings.TrimSuffix(ls, "mbps")
	case strings.HasSuffix(ls, "gbps"):
		mult, ls = 1e9, strings.TrimSuffix(ls, "gbps")
	case strings.HasSuffix(ls, "bps"):
		ls = strings.TrimSuffix(ls, "bps")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(ls), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad bandwidth %q", s)
	}
	return netem.Bandwidth(v * mult), nil
}
