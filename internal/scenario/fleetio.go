package scenario

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/runner"
	"repro/internal/stats"
)

// Binary serialization of FleetResult, exact and canonical: floats
// cross process boundaries as IEEE-754 bit patterns and sketches
// encode their bins in sorted order, so a result marshals to the same
// bytes however it was computed, and a distributed run that folds
// unmarshalled per-cell results reproduces a single-process run
// bit for bit. The Fleet spec itself is NOT part of the encoding —
// every process already has it from its own flags — which also keeps
// the artifact comparable across runs that differ only in execution
// shape (workers, shards, processes).

// fleetResultMagic versions the encoding ("FLR1").
const fleetResultMagic = 0x31524c46

func fleetAppendI64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

func fleetAppendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func fleetAppendVec(buf []byte, xs []float64) []byte {
	buf = fleetAppendI64(buf, int64(len(xs)))
	for _, x := range xs {
		buf = fleetAppendF64(buf, x)
	}
	return buf
}

func fleetDecodeVec(d *stats.Decoder) ([]float64, error) {
	n := d.I64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n < 0 || n > int64(d.Len()/8) {
		return nil, stats.ErrCodec
	}
	if n == 0 {
		return nil, nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.F64()
	}
	return xs, d.Err()
}

// AppendBinary appends the canonical encoding of r to buf.
func (r *FleetResult) AppendBinary(buf []byte) []byte {
	buf = fleetAppendI64(buf, fleetResultMagic)
	buf = fleetAppendI64(buf, int64(r.Clients))
	buf = fleetAppendI64(buf, int64(r.Groups))
	for _, sk := range []*stats.Sketch{
		r.RateMbps, r.StartupSec, r.RebufCount, r.RebufSec,
		r.SwitchCount, r.FetchedMbps,
	} {
		buf = sk.AppendBinary(buf)
	}
	buf = fleetAppendVec(buf, r.RungSec)
	for _, b := range []*stats.Binned{
		r.CoreUtil, r.AggUtil, r.AccessUtil, r.ConcurrencyDeltas,
	} {
		buf = b.AppendBinary(buf)
	}
	buf = r.AggBurst.AppendBinary(buf)
	buf = r.CoreBurst.AppendBinary(buf)
	buf = fleetAppendI64(buf, int64(r.CoreOffered))
	buf = fleetAppendI64(buf, int64(r.CoreDropped))
	buf = fleetAppendI64(buf, int64(r.AggDropped))
	buf = fleetAppendI64(buf, int64(r.AccessDropped))
	buf = fleetAppendI64(buf, int64(r.Unrouted))
	buf = fleetAppendF64(buf, r.InducedCoreLoss)
	buf = fleetAppendI64(buf, r.Downloaded)
	buf = fleetAppendI64(buf, int64(r.ActiveClients))
	buf = fleetAppendI64(buf, int64(r.StarvedClients))
	if r.Exact == nil {
		buf = fleetAppendI64(buf, 0)
	} else {
		buf = fleetAppendI64(buf, 1)
		buf = fleetAppendVec(buf, r.Exact.RateMbps)
		buf = fleetAppendVec(buf, r.Exact.StartupSec)
	}
	return buf
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *FleetResult) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(nil), nil
}

// DecodeFleetResult reads one FleetResult written by AppendBinary.
// The Fleet spec is supplied by the caller (it is not serialized) and
// resolved with the same defaulting a run applies.
func DecodeFleetResult(d *stats.Decoder, f Fleet) (*FleetResult, error) {
	if d.I64() != fleetResultMagic {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("scenario: fleet result encoding: bad magic")
	}
	r := &FleetResult{Fleet: f.withDefaults()}
	r.Clients = int(d.I64())
	r.Groups = int(d.I64())
	var err error
	for _, sk := range []**stats.Sketch{
		&r.RateMbps, &r.StartupSec, &r.RebufCount, &r.RebufSec,
		&r.SwitchCount, &r.FetchedMbps,
	} {
		if *sk, err = stats.DecodeSketch(d); err != nil {
			return nil, err
		}
	}
	if r.RungSec, err = fleetDecodeVec(d); err != nil {
		return nil, err
	}
	for _, b := range []**stats.Binned{
		&r.CoreUtil, &r.AggUtil, &r.AccessUtil, &r.ConcurrencyDeltas,
	} {
		if *b, err = stats.DecodeBinned(d); err != nil {
			return nil, err
		}
	}
	if r.AggBurst, err = stats.DecodeSketch(d); err != nil {
		return nil, err
	}
	if r.CoreBurst, err = stats.DecodeSketch(d); err != nil {
		return nil, err
	}
	r.CoreOffered = int(d.I64())
	r.CoreDropped = int(d.I64())
	r.AggDropped = int(d.I64())
	r.AccessDropped = int(d.I64())
	r.Unrouted = int(d.I64())
	r.InducedCoreLoss = d.F64()
	r.Downloaded = d.I64()
	r.ActiveClients = int(d.I64())
	r.StarvedClients = int(d.I64())
	if d.I64() != 0 {
		r.Exact = &FleetExact{}
		if r.Exact.RateMbps, err = fleetDecodeVec(d); err != nil {
			return nil, err
		}
		if r.Exact.StartupSec, err = fleetDecodeVec(d); err != nil {
			return nil, err
		}
	}
	return r, d.Err()
}

// UnmarshalFleetResult decodes one complete FleetResult from data.
func UnmarshalFleetResult(data []byte, f Fleet) (*FleetResult, error) {
	d := stats.NewDecoder(data)
	r, err := DecodeFleetResult(d, f)
	if err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("scenario: fleet result encoding: %d trailing bytes", d.Len())
	}
	return r, nil
}

// maxFleetRecord bounds one serialized cell record — a corruption
// guard, far above anything a real cell produces.
const maxFleetRecord = 1 << 30

// WriteFleetCells runs cells [lo, hi) of the fleet and streams each
// cell's result to w as a length-prefixed record, in cell order. This
// is the distributed child's side of the protocol: per-cell results
// (never locally folded partials) cross the pipe, so the parent can
// perform the one global left fold that keeps the merged bytes
// identical to a single-process run.
func WriteFleetCells(w io.Writer, o runner.Options, f Fleet, lo, hi int) error {
	f = f.withDefaults()
	if err := f.Validate(); err != nil {
		return err
	}
	if lo < 0 || hi > f.cells() || lo >= hi {
		return fmt.Errorf("scenario: cell range [%d,%d) outside fleet's %d cells", lo, hi, f.cells())
	}
	bw := bufio.NewWriter(w)
	var scratch []byte
	var werr error
	runFleetCellRange(o, f, lo, hi, func(_ int, r *FleetResult) {
		if werr != nil {
			return
		}
		scratch = r.AppendBinary(scratch[:0])
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(scratch)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			werr = err
			return
		}
		if _, err := bw.Write(scratch); err != nil {
			werr = err
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// MergeFleetCellStreams reads length-prefixed per-cell records from
// the readers in order — the readers must cover cells 0..N-1
// contiguously, in fleet order — and left-folds them exactly as a
// single-process RunFleet does, returning the finalized result.
func MergeFleetCellStreams(f Fleet, readers ...io.Reader) (*FleetResult, error) {
	f = f.withDefaults()
	var res *FleetResult
	for i, rd := range readers {
		br := bufio.NewReader(rd)
		for {
			var lenBuf [8]byte
			if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
				if err == io.EOF {
					break
				}
				return nil, fmt.Errorf("scenario: cell stream %d: %w", i, err)
			}
			n := binary.LittleEndian.Uint64(lenBuf[:])
			if n == 0 || n > maxFleetRecord {
				return nil, fmt.Errorf("scenario: cell stream %d: bad record length %d", i, n)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("scenario: cell stream %d: %w", i, err)
			}
			cell, err := UnmarshalFleetResult(buf, f)
			if err != nil {
				return nil, fmt.Errorf("scenario: cell stream %d: %w", i, err)
			}
			if res == nil {
				res = cell
			} else {
				res.merge(cell)
			}
		}
	}
	if res == nil {
		return nil, fmt.Errorf("scenario: no cell records in any stream")
	}
	if res.Clients != f.Clients {
		return nil, fmt.Errorf("scenario: merged streams cover %d clients, fleet has %d", res.Clients, f.Clients)
	}
	res.finalize()
	return res, nil
}
