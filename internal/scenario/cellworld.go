package scenario

import (
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/player"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// cellWorld is the reusable simulation world one runner worker keeps
// across fleet cells: the scheduler, the tree topology, the server and
// per-client TCP stacks, the service front end, the packet and
// connection pools, and every per-cell scratch buffer. Building all of
// that is the dominant steady-state allocation of a fleet run — a
// million-client fleet is ~31k cells, each of which used to construct
// (and garbage-collect) its own copy — so instead the world is built
// once and every layer is Reset to its just-built state at the top of
// each cell.
//
// The Reset contract, and what makes recycling invisible in the bytes:
// a recycled world must be observationally identical to a fresh one.
// Every layer owns its part — the scheduler drains its wheel and
// re-seeds its rng, links rewind rings/counters/taps and take fresh
// AQM instances, hosts return conns to the pool and re-arm their
// address, the packet pool re-carves its slabs, sketches and binned
// series zero in place — and the per-cell wiring below replays exactly
// the calls a fresh construction would make, in the same order, so the
// scheduler's (time, seq) event ordering is reproduced bit for bit.
// The fresh-vs-recycled equivalence tests pin this.
type cellWorld struct {
	f   Fleet // resolved spec, fixed at construction
	per int   // clients per cell (== Tree.ClientsPerAgg)

	sch      *sim.Scheduler
	server   *tcp.Host
	tree     *netem.Tree
	segPool  *packet.Pool
	connPool *tcp.ConnPool
	yt       *service.YouTube
	nf       *service.Netflix
	pattern  []PlayerKind

	// Per-slot wiring, created on first use and kept for the world's
	// lifetime. Slot j serves local client j of whatever cell is
	// running; hosts are re-addressed per cell by Host.Reset.
	hosts []*tcp.Host
	envs  []player.Env

	// Per-cell scratch, reused. perAgg/aggTaps are per active group;
	// the tap structs live here so AddTap boxes a stable pointer
	// instead of allocating a fresh tap per cell.
	kinds   []PlayerKind
	vids    []media.Video
	starts  []time.Duration
	states  []clientState
	players []player.Player
	perAgg  []*stats.Binned
	aggTaps []utilTap
	coreTap utilTap

	// free holds result shells whose cells have been emitted; their
	// sketches and series are scrubbed and reused for later cells.
	free []*FleetResult
}

// newCellWorld builds the world's permanent wiring for f (already
// defaulted and validated): topology, server stack, service front end,
// pools, and fixed-size scratch. Nothing here depends on which cell
// runs; all cell-specific state is installed by run.
func newCellWorld(f Fleet) *cellWorld {
	per := f.Tree.ClientsPerAgg
	w := &cellWorld{f: f, per: per}
	w.sch = sim.NewScheduler(f.Seed) // re-seeded per cell by run
	w.server = tcp.NewHost(w.sch, session.ServerAddr[0], session.ServerAddr[1], session.ServerAddr[2], session.ServerAddr[3])
	w.tree = netem.NewTree(w.sch, f.Tree, w.server)
	w.server.SetLink(w.tree.CoreDown)

	// Streaming sinks only — every stack on the tree shares one
	// segment pool and one conn pool, the same O(flows) memory regime
	// sessions use, retained across cells.
	w.segPool = &packet.Pool{}
	w.connPool = &tcp.ConnPool{}
	w.server.SetSegmentPool(w.segPool)
	w.server.SetConnPool(w.connPool)

	switch f.Mix[0].Player.Service() {
	case session.YouTube:
		w.yt = service.NewYouTube(w.server, f.ServerTCP, nil)
	case session.Netflix:
		w.nf = service.NewNetflix(w.server, f.ServerTCP, nil)
	}
	if len(f.CCMix) > 0 {
		// Per-client server-side congestion control: the peer address
		// encodes the global client index, so the assignment is the
		// same no matter which cell, worker or process serves it.
		ccmix := f.CCMix
		w.server.SetAcceptConfig(func(peer packet.Endpoint, cfg tcp.Config) tcp.Config {
			cfg.CC = ccmix[clientIndex(peer.Addr)%len(ccmix)]
			return cfg
		})
	}

	w.pattern = f.pattern()
	w.coreTap.bins = make([]*stats.Binned, 0, 1)
	w.hosts = make([]*tcp.Host, 0, per)
	w.envs = make([]player.Env, 0, per)
	w.kinds = make([]PlayerKind, per)
	w.vids = make([]media.Video, per)
	w.starts = make([]time.Duration, per)
	w.states = make([]clientState, per)
	w.players = make([]player.Player, per)
	return w
}

// run simulates global clients [from, to) — one aggregation group — on
// the recycled world and returns its streaming statistics. The caller
// must hand the result back via putResult once it has been folded or
// serialized; until then the world may run further cells (shells come
// from a pool, not from the world's hot state).
func (w *cellWorld) run(from, to int) *FleetResult {
	n := to - from
	f := w.f

	// Rewind every recycled layer to its just-built state. On a brand
	// new world these are no-ops on empty structures, so fresh and
	// recycled cells share one code path.
	w.sch.Reset(fleetCellSeed(f.Seed, from))
	w.server.Reset(session.ServerAddr[0], session.ServerAddr[1], session.ServerAddr[2], session.ServerAddr[3])
	for j, h := range w.hosts {
		if j < n {
			addr := clientAddr(from + j)
			h.Reset(addr[0], addr[1], addr[2], addr[3])
		} else {
			// Spare slot from a fuller previous cell: return its conns
			// and park it unaddressed.
			h.Reset(0, 0, 0, 0)
		}
	}
	w.tree.Reset()
	w.segPool.Reset()
	if w.yt != nil {
		w.yt.ResetCatalog()
	}
	if w.nf != nil {
		w.nf.ResetCatalog()
	}

	res := w.takeResult()
	res.Clients = n

	kinds := w.kinds[:n]
	vids := w.vids[:n]
	for j := 0; j < n; j++ {
		kinds[j] = w.pattern[(from+j)%len(w.pattern)]
		vids[j] = f.fleetVideo(from+j, kinds[j])
		if w.yt != nil {
			w.yt.AddVideo(vids[j])
		}
		if w.nf != nil {
			w.nf.AddVideo(vids[j])
		}
	}

	w.coreTap.bins = append(w.coreTap.bins[:0], res.CoreUtil)
	w.tree.CoreDown.AddTap(&w.coreTap)
	if f.ExtraCoreTap != nil {
		w.tree.CoreDown.AddTap(f.ExtraCoreTap)
	}

	w.starts = f.Arrival.TimesInto(w.starts, n, w.sch.Rand())
	starts := w.starts
	states := w.states[:n]
	players := w.players[:n]
	groups := 0
	for j := 0; j < n; j++ {
		addr := clientAddr(from + j)
		if j == len(w.hosts) {
			host := tcp.NewHost(w.sch, addr[0], addr[1], addr[2], addr[3])
			host.SetSegmentPool(w.segPool)
			host.SetConnPool(w.connPool)
			w.hosts = append(w.hosts, host)
			w.envs = append(w.envs, player.Env{Sch: w.sch, Host: host, Server: packet.Endpoint{Addr: session.ServerAddr, Port: 80}})
		}
		host := w.hosts[j]
		host.SetLink(w.tree.Attach(addr, host))
		// The first client of a group wires the aggregation link: its
		// burstiness series, the shared tier accumulator, and the
		// fleet's dynamics timeline.
		if g := w.tree.Group(j); g == groups {
			if g == len(w.perAgg) {
				w.perAgg = append(w.perAgg, stats.NewBinned(f.UtilBin, f.Duration))
				w.aggTaps = append(w.aggTaps, utilTap{bins: make([]*stats.Binned, 0, 2)})
			} else {
				w.perAgg[g].Reset()
			}
			groups++
			w.aggTaps[g].bins = append(w.aggTaps[g].bins[:0], res.AggUtil, w.perAgg[g])
			w.tree.AggDown[g].AddTap(&w.aggTaps[g])
			f.Down.Apply(w.sch, w.tree.AggDown[g])
		}
		states[j] = clientState{start: starts[j], first: -1, util: res.AccessUtil}
		w.tree.AccessDown[j].AddTap(&states[j])
		env := &w.envs[j]
		p := kinds[j].New()
		players[j] = p
		vid := vids[j]
		if starts[j] > 0 {
			w.sch.At(starts[j], func() { p.Start(env, vid) })
		} else {
			p.Start(env, vid)
		}
	}
	res.Groups = w.tree.Groups()

	w.sch.RunUntil(f.Duration)

	for j := range states {
		c := &states[j]
		res.Downloaded += players[j].Downloaded()
		q := players[j].QoE(w.sch.Now())
		res.RebufCount.Add(float64(q.Rebuffers))
		res.RebufSec.Add(q.RebufferTime.Seconds())
		res.SwitchCount.Add(float64(q.Switches))
		res.FetchedMbps.Add(q.MeanFetchedBps() / 1e6)
		for len(res.RungSec) < len(q.RungSec) {
			res.RungSec = append(res.RungSec, 0)
		}
		for r, sec := range q.RungSec {
			res.RungSec[r] += sec
		}
		players[j] = nil // drop the player; its QoE is folded in
		if c.first < 0 {
			res.StarvedClients++
			res.RateMbps.Add(0)
			if res.Exact != nil {
				res.Exact.RateMbps = append(res.Exact.RateMbps, 0)
			}
			continue
		}
		res.ActiveClients++
		rate := 0.0
		if c.last > c.first {
			rate = float64(c.bytes) * 8 / (c.last - c.first).Seconds() / 1e6
		}
		startup := (c.first - c.start).Seconds()
		res.RateMbps.Add(rate)
		res.StartupSec.Add(startup)
		res.ConcurrencyDeltas.Add(c.first, 1)
		res.ConcurrencyDeltas.Add(c.last, -1)
		if res.Exact != nil {
			res.Exact.RateMbps = append(res.Exact.RateMbps, rate)
			res.Exact.StartupSec = append(res.Exact.StartupSec, startup)
		}
	}
	for _, b := range w.perAgg[:groups] {
		res.AggBurst.Add(stats.CV(b.From(f.Warmup)))
	}
	res.CoreBurst.Add(stats.CV(res.CoreUtil.From(f.Warmup)))

	res.CoreOffered = w.tree.CoreDown.Sent + w.tree.CoreDown.Dropped
	core, agg, access := w.tree.DroppedAtTier()
	res.CoreDropped = core
	res.AggDropped = agg
	res.AccessDropped = access
	res.Unrouted = w.tree.Unrouted()
	// InducedCoreLoss is derived once, in finalize, from the merged
	// counters — it covers the single-cell case too.
	return res
}

// takeResult returns an empty result shell: a scrubbed recycled one
// when available, a fresh allocation otherwise.
func (w *cellWorld) takeResult() *FleetResult {
	if k := len(w.free); k > 0 {
		r := w.free[k-1]
		w.free[k-1] = nil
		w.free = w.free[:k-1]
		return r
	}
	return newFleetResult(w.f)
}

// putResult scrubs an emitted shell and parks it for the next cell.
// Sketches and binned series reset in place (backing maps and slices
// survive), so a steady-state wave allocates no result storage at all.
func (w *cellWorld) putResult(r *FleetResult) {
	r.Clients = 0
	r.Groups = 0
	r.RateMbps.Reset()
	r.StartupSec.Reset()
	r.RebufCount.Reset()
	r.RebufSec.Reset()
	r.SwitchCount.Reset()
	r.FetchedMbps.Reset()
	r.RungSec = r.RungSec[:0]
	r.CoreUtil.Reset()
	r.AggUtil.Reset()
	r.AccessUtil.Reset()
	r.ConcurrencyDeltas.Reset()
	r.AggBurst.Reset()
	r.CoreBurst.Reset()
	r.CoreOffered = 0
	r.CoreDropped = 0
	r.AggDropped = 0
	r.AccessDropped = 0
	r.Unrouted = 0
	r.InducedCoreLoss = 0
	r.Downloaded = 0
	r.ActiveClients = 0
	r.StarvedClients = 0
	if r.Exact != nil {
		r.Exact.RateMbps = r.Exact.RateMbps[:0]
		r.Exact.StartupSec = r.Exact.StartupSec[:0]
	}
	w.free = append(w.free, r)
}
