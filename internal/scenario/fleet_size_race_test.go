//go:build race

package scenario

// fleetDetClients under -race: the merge/determinism paths are
// identical, only the client count shrinks to keep the race suite
// fast.
const fleetDetClients = 96
