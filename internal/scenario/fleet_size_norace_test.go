//go:build !race

package scenario

// fleetDetClients sizes the fleet determinism test: the full
// 1,000-client acceptance scale in normal runs, scaled down under the
// race detector (same code paths, ~20x the per-event cost).
const fleetDetClients = 1000
