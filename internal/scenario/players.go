package scenario

import (
	"fmt"
	"strings"

	"repro/internal/abr"
	"repro/internal/media"
	"repro/internal/player"
	"repro/internal/session"
)

// PlayerKind names a client application from Table 1. Scenario specs
// carry kinds rather than player.Player values because players are
// stateful single-use objects: every expanded session needs a fresh
// instance, which New provides.
type PlayerKind int

// The nine clients of the paper (six YouTube, three Netflix), plus
// the adaptive-bitrate players (segmented fetch loop + rendition
// ladder) the paper-era clients evolved into. Legacy indices are
// frozen — the ABR kinds append.
const (
	Flash PlayerKind = iota
	IEHtml5
	FirefoxHtml5
	ChromeHtml5
	AndroidYouTube
	IPadYouTube
	SilverlightPC
	NetflixIPad
	NetflixAndroid
	// AbrFixed pins the top ladder rung via the null controller: the
	// single-bitrate player expressed in the composable core, and the
	// stall-prone baseline of the rate-drop headline.
	AbrFixed
	// AbrRate switches on a throughput EWMA (the classic rate rule).
	AbrRate
	// AbrBuffer switches on the buffer level (BBA reservoir/cushion).
	AbrBuffer
	// AbrRange is the buffer-based controller fetching per-rendition
	// byte ranges from YouTube instead of Netflix-style fragments.
	AbrRange
)

// playerTable maps kinds to their metadata and factories.
var playerTable = []struct {
	kind     PlayerKind
	name     string
	service  session.ServiceKind
	adaptive bool
	mk       func() player.Player
}{
	{Flash, "flash", session.YouTube, false, func() player.Player { return player.NewFlashPlayer("Internet Explorer") }},
	{IEHtml5, "ie", session.YouTube, false, func() player.Player { return player.NewIEHtml5() }},
	{FirefoxHtml5, "firefox", session.YouTube, false, func() player.Player { return player.NewFirefoxHtml5() }},
	{ChromeHtml5, "chrome", session.YouTube, false, func() player.Player { return player.NewChromeHtml5() }},
	{AndroidYouTube, "android-yt", session.YouTube, false, func() player.Player { return player.NewAndroidYouTube() }},
	{IPadYouTube, "ipad-yt", session.YouTube, false, func() player.Player { return player.NewIPadYouTube() }},
	{SilverlightPC, "silverlight", session.Netflix, false, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }},
	{NetflixIPad, "netflix-ipad", session.Netflix, false, func() player.Player { return player.NewNetflixIPad() }},
	{NetflixAndroid, "netflix-android", session.Netflix, false, func() player.Player { return player.NewNetflixAndroid() }},
	{AbrFixed, "abr-fixed", session.Netflix, true, func() player.Player {
		return player.NewABRPlayer(player.ABRConfig{Controller: abr.NewFixed(-1)})
	}},
	{AbrRate, "abr-rate", session.Netflix, true, func() player.Player {
		return player.NewABRPlayer(player.ABRConfig{Controller: abr.NewRateBased()})
	}},
	{AbrBuffer, "abr-buffer", session.Netflix, true, func() player.Player {
		return player.NewABRPlayer(player.ABRConfig{Controller: abr.NewBufferBased()})
	}},
	{AbrRange, "abr-range", session.YouTube, true, func() player.Player {
		return player.NewABRPlayer(player.ABRConfig{Controller: abr.NewBufferBased(), Source: player.Ranges})
	}},
}

// New returns a fresh player instance of this kind.
func (k PlayerKind) New() player.Player {
	return playerTable[k].mk()
}

// Service returns the service the client talks to.
func (k PlayerKind) Service() session.ServiceKind {
	return playerTable[k].service
}

// Adaptive reports whether the kind is an ABR player, i.e. streams a
// rendition ladder rather than one bitrate. Specs give adaptive kinds
// the default ladder when the video carries none.
func (k PlayerKind) Adaptive() bool {
	return playerTable[k].adaptive
}

// NativeContainer returns the container this client streams in: FLV
// for the Flash plugin, MP4 fragments for the Netflix clients and the
// fragment-fetching ABR kinds, WebM for every HTML5/native YouTube
// player. Specs and experiments share this single mapping.
func (k PlayerKind) NativeContainer() media.Container {
	switch k {
	case Flash:
		return media.Flash
	case SilverlightPC, NetflixIPad, NetflixAndroid, AbrFixed, AbrRate, AbrBuffer:
		return media.Silverlight
	default:
		return media.HTML5
	}
}

// String returns the spec-level name (also accepted by PlayerKindByName).
func (k PlayerKind) String() string {
	if int(k) < 0 || int(k) >= len(playerTable) {
		return fmt.Sprintf("PlayerKind(%d)", int(k))
	}
	return playerTable[k].name
}

// PlayerKinds lists every kind in Table 1 order.
func PlayerKinds() []PlayerKind {
	out := make([]PlayerKind, len(playerTable))
	for i, e := range playerTable {
		out[i] = e.kind
	}
	return out
}

// PlayerKindByName resolves a spec-level name (case-insensitive).
func PlayerKindByName(name string) (PlayerKind, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, e := range playerTable {
		if e.name == name {
			return e.kind, true
		}
	}
	return 0, false
}
