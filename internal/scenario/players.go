package scenario

import (
	"fmt"
	"strings"

	"repro/internal/media"
	"repro/internal/player"
	"repro/internal/session"
)

// PlayerKind names a client application from Table 1. Scenario specs
// carry kinds rather than player.Player values because players are
// stateful single-use objects: every expanded session needs a fresh
// instance, which New provides.
type PlayerKind int

// The nine clients of the paper (six YouTube, three Netflix).
const (
	Flash PlayerKind = iota
	IEHtml5
	FirefoxHtml5
	ChromeHtml5
	AndroidYouTube
	IPadYouTube
	SilverlightPC
	NetflixIPad
	NetflixAndroid
)

// playerTable maps kinds to their metadata and factories.
var playerTable = []struct {
	kind    PlayerKind
	name    string
	service session.ServiceKind
	mk      func() player.Player
}{
	{Flash, "flash", session.YouTube, func() player.Player { return player.NewFlashPlayer("Internet Explorer") }},
	{IEHtml5, "ie", session.YouTube, func() player.Player { return player.NewIEHtml5() }},
	{FirefoxHtml5, "firefox", session.YouTube, func() player.Player { return player.NewFirefoxHtml5() }},
	{ChromeHtml5, "chrome", session.YouTube, func() player.Player { return player.NewChromeHtml5() }},
	{AndroidYouTube, "android-yt", session.YouTube, func() player.Player { return player.NewAndroidYouTube() }},
	{IPadYouTube, "ipad-yt", session.YouTube, func() player.Player { return player.NewIPadYouTube() }},
	{SilverlightPC, "silverlight", session.Netflix, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }},
	{NetflixIPad, "netflix-ipad", session.Netflix, func() player.Player { return player.NewNetflixIPad() }},
	{NetflixAndroid, "netflix-android", session.Netflix, func() player.Player { return player.NewNetflixAndroid() }},
}

// New returns a fresh player instance of this kind.
func (k PlayerKind) New() player.Player {
	return playerTable[k].mk()
}

// Service returns the service the client talks to.
func (k PlayerKind) Service() session.ServiceKind {
	return playerTable[k].service
}

// NativeContainer returns the container this client streams in: FLV
// for the Flash plugin, MP4 fragments for the Netflix clients, WebM
// for every HTML5/native YouTube player. Specs and experiments share
// this single mapping.
func (k PlayerKind) NativeContainer() media.Container {
	switch k {
	case Flash:
		return media.Flash
	case SilverlightPC, NetflixIPad, NetflixAndroid:
		return media.Silverlight
	default:
		return media.HTML5
	}
}

// String returns the spec-level name (also accepted by PlayerKindByName).
func (k PlayerKind) String() string {
	if int(k) < 0 || int(k) >= len(playerTable) {
		return fmt.Sprintf("PlayerKind(%d)", int(k))
	}
	return playerTable[k].name
}

// PlayerKinds lists every kind in Table 1 order.
func PlayerKinds() []PlayerKind {
	out := make([]PlayerKind, len(playerTable))
	for i, e := range playerTable {
		out[i] = e.kind
	}
	return out
}

// PlayerKindByName resolves a spec-level name (case-insensitive).
func PlayerKindByName(name string) (PlayerKind, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, e := range playerTable {
		if e.name == name {
			return e.kind, true
		}
	}
	return 0, false
}
