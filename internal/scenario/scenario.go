// Package scenario is the declarative layer over the emulation stack:
// a Spec composes a vantage profile, a client application, a video, an
// arrival process and per-direction dynamics timelines into runnable
// batches. The paper measured one frozen network per capture; specs
// reach the time-varying workloads its access networks actually had —
// mid-session rate drops, bursty-loss episodes, outages, and flash
// crowds of sessions competing on one bottleneck.
//
// A spec runs in one of two shapes:
//
//   - Isolated: every session gets its own path (the paper's one
//     player per vantage methodology), expanded into seeded
//     session.Configs and fanned out on the runner pool.
//   - Shared: all sessions join one netem.Dumbbell bottleneck in a
//     single deterministic simulation, with per-client captures taken
//     by address-filtering taps on the shared links.
//
// Both shapes are bit-reproducible for any worker count: isolated
// batches carry per-session seeds and are consumed in submission
// order; a shared run is one single-threaded simulation.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/player"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Spec declares one scenario. The zero value of every optional field
// picks a sensible default (see withDefaults).
type Spec struct {
	Name    string
	Profile netem.Profile // base network; zero Name → netem.Research
	Player  PlayerKind
	// Video is the content template. Sessions stream copies with
	// consecutive IDs so a shared service can route every request. A
	// zero EncodingRate selects a 1.75 Mbps 360p default in the
	// player's native container.
	Video    media.Video
	Sessions int     // session count; 0 → 1
	Arrival  Arrival // start-time process for the sessions
	// Duration is the absolute capture horizon; 0 → 180 s.
	Duration time.Duration
	Seed     int64
	// Down and Up are dynamics timelines for the respective direction
	// (per-path in isolated runs, on the shared bottleneck links in
	// shared runs).
	Down, Up netem.Dynamics
	// ServerTCP overrides the server's TCP configuration.
	ServerTCP tcp.Config
	// Buffered retains each session's full capture (tcpdump mode)
	// instead of the default streaming sinks; see session.Config.
	Buffered bool
	// SeriesBin, when positive, asks the analyzer for fixed-width
	// binned series (constant-memory download/window curves).
	SeriesBin time.Duration
}

// Service returns the service the spec's player talks to. A player
// implies its service — Silverlight cannot stream from YouTube — so
// specs never carry a contradictory pair.
func (s Spec) Service() session.ServiceKind { return s.Player.Service() }

func (s Spec) withDefaults() Spec {
	if s.Profile.Name == "" {
		s.Profile = netem.Research
	}
	if s.Sessions <= 0 {
		s.Sessions = 1
	}
	if s.Duration <= 0 {
		s.Duration = session.DefaultDuration
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Video.EncodingRate == 0 {
		s.Video = media.Video{
			EncodingRate: 1.75e6,
			Duration:     420 * time.Second,
			Container:    s.Player.NativeContainer(),
			Resolution:   "360p",
		}
	}
	if s.Video.ID == 0 {
		s.Video.ID = 9000
	}
	if s.Video.Duration <= 0 {
		s.Video.Duration = 420 * time.Second
	}
	// An adaptive player needs a ladder to switch across; the default
	// is the paper-era Netflix ladder.
	if s.Player.Adaptive() && len(s.Video.Renditions) == 0 {
		s.Video = s.Video.WithLadder(media.DefaultLadder()...)
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("%s/%s x%d", s.Profile.Name, s.Player, s.Sessions)
	}
	return s
}

// Validate rejects specs that cannot run.
func (s Spec) Validate() error {
	if s.Sessions < 0 {
		return fmt.Errorf("scenario %q: negative session count", s.Name)
	}
	if err := s.Down.Validate(); err != nil {
		return fmt.Errorf("scenario %q down: %w", s.Name, err)
	}
	if err := s.Up.Validate(); err != nil {
		return fmt.Errorf("scenario %q up: %w", s.Name, err)
	}
	return nil
}

// video returns the i-th session's content: the template with a
// consecutive ID so every session is individually routable/servable.
func (s Spec) video(i int) media.Video {
	v := s.Video
	v.ID += i
	return v
}

// Configs expands the spec into independent-path session configs:
// one network per session (the paper's methodology), arrival offsets
// as StartAt, a derived seed per session, and the spec's dynamics on
// every path. The expansion itself is deterministic in Spec.Seed.
func (s Spec) Configs() []session.Config {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	starts := s.Arrival.Times(s.Sessions, rng)
	cfgs := make([]session.Config, s.Sessions)
	for i := range cfgs {
		cfgs[i] = session.Config{
			Video:        s.video(i),
			Service:      s.Service(),
			Player:       s.Player.New(),
			Network:      s.Profile,
			Duration:     s.Duration,
			StartAt:      starts[i],
			Seed:         rng.Int63(),
			ServerTCP:    s.ServerTCP,
			DownDynamics: s.Down,
			UpDynamics:   s.Up,
			Buffered:     s.Buffered,
			SeriesBin:    s.SeriesBin,
		}
	}
	return cfgs
}

// RunIsolated executes the expanded configs on a worker pool,
// returning results in submission order (bit-identical for any worker
// count).
func RunIsolated(o runner.Options, s Spec) []*session.Result {
	return runner.Sessions(o, s.Configs())
}

// Outcome is one session's result inside a shared-bottleneck run.
type Outcome struct {
	Index      int
	Start      time.Duration
	Downloaded int64
	// Packets counts this client's captured packets (both directions).
	Packets int
	// Trace is the buffered capture; nil unless Spec.Buffered.
	Trace    *trace.Trace
	Analysis *analysis.Result
	// QoE is the client's playback-buffer outcome at the horizon.
	QoE player.Metrics
}

// SharedResult is everything a shared-bottleneck run produced.
type SharedResult struct {
	Spec     Spec
	Outcomes []Outcome
	// Bottleneck accounting (shared downstream link).
	Offered     int
	Dropped     int
	InducedLoss float64
	OutageDrops int
	// AqmDrops is the subset of Dropped attributed to the profile's
	// queue policy (RED/CoDel), zero under drop-tail.
	AqmDrops int
	Unrouted int
	// AggregateMbps is the mean downstream rate over the horizon.
	AggregateMbps float64
}

// dispatchTap splits a shared link's packets into per-client captures
// by address in O(1) per packet (one map lookup, not a scan over N
// per-client filters), so each session's trace looks exactly like
// tcpdump on that client.
type dispatchTap struct {
	down   bool // key on Dst (downstream) instead of Src (upstream)
	byAddr map[[4]byte]netem.Tap
}

// Capture implements netem.Tap.
func (t *dispatchTap) Capture(at time.Duration, seg *packet.Segment) {
	a := seg.Src.Addr
	if t.down {
		a = seg.Dst.Addr
	}
	if inner, ok := t.byAddr[a]; ok {
		inner.Capture(at, seg)
	}
}

// clientAddr numbers clients from 10.0.0.1 upward across the whole
// 10.0.0.0/8 plan: three octets of i+1, injective below 2^24-1 and
// identical to the historical 10.0/16 numbering for the first 65535
// clients, so group-aligned fleet runs keep their exact addresses.
func clientAddr(i int) [4]byte {
	return [4]byte{10, byte((i + 1) >> 16), byte((i + 1) >> 8), byte(i + 1)}
}

// clientIndex inverts clientAddr: the global client index behind an
// address in the 10.0.0.0/8 plan.
func clientIndex(addr [4]byte) int {
	return int(addr[1])<<16 | int(addr[2])<<8 | int(addr[3]) - 1
}

// RunShared executes every session of the spec on one shared
// netem.Dumbbell bottleneck in a single deterministic simulation:
// sessions join at their arrival offsets and compete for the same
// drop-tail queue while the spec's dynamics play out on the shared
// links. Each client's capture is analyzed individually through its
// own streaming sink (or a buffered trace when Spec.Buffered asks for
// tcpdump mode).
func RunShared(s Spec) *SharedResult {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		panic("scenario: " + err.Error())
	}
	sch := sim.NewScheduler(s.Seed)
	server := tcp.NewHost(sch, session.ServerAddr[0], session.ServerAddr[1], session.ServerAddr[2], session.ServerAddr[3])
	db := netem.NewDumbbell(sch, s.Profile, server)
	server.SetLink(db.Down)
	s.Down.Apply(sch, db.Down)
	s.Up.Apply(sch, db.Up)

	// One shared pool for every stack on the dumbbell: with only
	// streaming sinks attached, no segment survives its delivery.
	var pool *packet.Pool
	if !s.Buffered {
		pool = &packet.Pool{}
		server.SetSegmentPool(pool)
	}

	vids := make([]media.Video, s.Sessions)
	for i := range vids {
		vids[i] = s.video(i)
	}
	switch s.Service() {
	case session.YouTube:
		service.NewYouTube(server, s.ServerTCP, vids)
	case session.Netflix:
		service.NewNetflix(server, s.ServerTCP, vids)
	}

	starts := s.Arrival.Times(s.Sessions, sch.Rand())
	res := &SharedResult{Spec: s, Outcomes: make([]Outcome, s.Sessions)}
	players := make([]player.Player, s.Sessions)
	streams := make([]*analysis.Streaming, s.Sessions)
	downTap := &dispatchTap{down: true, byAddr: make(map[[4]byte]netem.Tap, s.Sessions)}
	upTap := &dispatchTap{byAddr: make(map[[4]byte]netem.Tap, s.Sessions)}
	db.AddTaps(downTap, upTap)
	for i := 0; i < s.Sessions; i++ {
		i := i
		addr := clientAddr(i)
		client := tcp.NewHost(sch, addr[0], addr[1], addr[2], addr[3])
		client.SetLink(db.Attach(addr, client))
		if pool != nil {
			client.SetSegmentPool(pool)
		}
		streams[i] = analysis.NewStreaming(analysis.Config{
			KnownDuration: vids[i].Duration,
			KnownRate:     vids[i].EncodingRate,
			SeriesBin:     s.SeriesBin,
		})
		sinks := []trace.Sink{streams[i]}
		var tr *trace.Trace
		if s.Buffered {
			tr = &trace.Trace{}
			sinks = append(sinks, tr)
		}
		sink := trace.Fanout(sinks...)
		downTap.byAddr[addr] = trace.SinkTap(sink, trace.Down)
		upTap.byAddr[addr] = trace.SinkTap(sink, trace.Up)
		res.Outcomes[i] = Outcome{Index: i, Start: starts[i], Trace: tr}
		env := &player.Env{Sch: sch, Host: client, Server: packet.Endpoint{Addr: session.ServerAddr, Port: 80}}
		p := s.Player.New()
		players[i] = p
		start := func() { p.Start(env, vids[i]) }
		if starts[i] > 0 {
			sch.At(starts[i], start)
		} else {
			start()
		}
	}
	sch.RunUntil(s.Duration)

	var aggregate int64
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		o.Downloaded = players[i].Downloaded()
		o.QoE = players[i].QoE(sch.Now())
		o.Analysis = streams[i].Result()
		o.Packets = o.Analysis.Packets
		aggregate += o.Analysis.TotalBytes
	}
	res.Offered = db.Down.Sent + db.Down.Dropped
	res.Dropped = db.Down.Dropped
	res.OutageDrops = db.Down.OutageDrops
	res.AqmDrops = db.Down.AqmDrops
	if res.Offered > 0 {
		res.InducedLoss = float64(res.Dropped) / float64(res.Offered)
	}
	res.Unrouted = db.Unrouted()
	if s.Duration > 0 {
		res.AggregateMbps = float64(aggregate) * 8 / s.Duration.Seconds() / 1e6
	}
	return res
}

// StrategyMix counts classified strategies across the outcomes,
// rendered in a stable order.
func (r *SharedResult) StrategyMix() string {
	counts := map[analysis.Strategy]int{}
	for _, o := range r.Outcomes {
		counts[o.Analysis.Strategy]++
	}
	out := ""
	for _, st := range []analysis.Strategy{analysis.NoOnOff, analysis.ShortOnOff, analysis.LongOnOff, analysis.MultipleOnOff, analysis.StrategyUnknown} {
		if n := counts[st]; n > 0 {
			if out != "" {
				out += ", "
			}
			out += fmt.Sprintf("%dx %s", n, st)
		}
	}
	if out == "" {
		return "none"
	}
	return out
}
