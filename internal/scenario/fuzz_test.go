package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseDynamics drives the timeline parser with arbitrary specs.
// Properties: the parser never panics, and any timeline it accepts
// must also pass netem's own Validate (the parser promises it runs
// Validate before returning).
func FuzzParseDynamics(f *testing.F) {
	for _, seed := range []string{
		"",
		";",
		"rate@30s=2Mbps",
		"rate@30s+10s=2Mbps; outage@90s=5s",
		"delay@60s=200ms; loss@45s=0.02",
		"rate@5m=750kbps; rate@6m=1.5Gbps; rate@7m=1000000",
		"outage@90s=5s; outage@100s=1s",
		"loss@0s=1",
		"rate@1s=0bps",
		" rate @ 30s = 2Mbps ",
		"rate@30s",
		"=2Mbps",
		"rate@-5s=1Mbps",
		"loss@1s=2",
		"delay@1s+2s=3ms",
		"rate@1h+30m=0.001Gbps",
		"outage@0s=0s",
		"bogus@1s=2",
		"rate@30s+=2Mbps",
		"rate@+10s=2Mbps",
		"loss@45s=NaN",
		"rate@30s=\x002Mbps",
		"aqm@30s=codel",
		"aqm@0s=red",
		"aqm@1s=droptail",
		"aqm@1s=RED",
		"aqm@1s=bogus",
		"aqm@1s=",
		"aqm@2m=codel; rate@3m=1Mbps",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := ParseDynamics(spec)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ParseDynamics(%q) accepted a timeline its own Validate rejects: %v", spec, verr)
		}
		// Accepted specs must produce exactly one step per non-empty
		// event — nothing silently dropped or duplicated — and no rate
		// step may smuggle in a negative bandwidth (ParseBandwidth's
		// own fuzzed invariant, which the event parser must preserve).
		events := 0
		for _, ev := range strings.Split(spec, ";") {
			if strings.TrimSpace(ev) != "" {
				events++
			}
		}
		if len(d.Steps) != events {
			t.Fatalf("ParseDynamics(%q): %d non-empty events became %d steps", spec, events, len(d.Steps))
		}
		for _, st := range d.Steps {
			if st.SetRate && st.Rate < 0 {
				t.Fatalf("ParseDynamics(%q) accepted a negative rate %v", spec, st.Rate)
			}
		}
	})
}

// FuzzParseMix drives the strategy-mix parser with arbitrary specs.
// Properties: no panics; any accepted mix has only positive weights
// and resolvable player kinds; and the mix round-trips through its
// String rendering — MixString re-parses to the identical entry list.
func FuzzParseMix(f *testing.F) {
	for _, seed := range []string{
		"",
		"flash",
		"flash:2+firefox:1",
		"flash,chrome",
		"abr-buffer:3+abr-rate:1",
		"flash:0",
		"flash:-1",
		"flash:2x",
		"flash:+2",
		":3",
		"flash:",
		"+",
		",,,",
		" flash : 2 ",
		"netflix-ipad:999999",
		"flash:2+flash:2",
		"winamp:1",
		"flash\x00:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		mix, err := ParseMix(spec)
		if err != nil {
			return
		}
		if len(mix) == 0 {
			t.Fatalf("ParseMix(%q) accepted an empty mix", spec)
		}
		for _, e := range mix {
			if e.Weight <= 0 {
				t.Fatalf("ParseMix(%q) accepted non-positive weight %d for %s", spec, e.Weight, e.Player)
			}
			if _, ok := PlayerKindByName(e.Player.String()); !ok {
				t.Fatalf("ParseMix(%q) produced unresolvable kind %v", spec, e.Player)
			}
		}
		rendered := Fleet{Mix: mix}.MixString()
		again, err := ParseMix(rendered)
		if err != nil {
			t.Fatalf("MixString %q of accepted mix %q does not re-parse: %v", rendered, spec, err)
		}
		if !reflect.DeepEqual(mix, again) {
			t.Fatalf("mix %q does not round-trip: %v -> %q -> %v", spec, mix, rendered, again)
		}
	})
}

// FuzzParseBandwidth covers the unit-suffix parser on its own: no
// panics, and accepted values are non-negative.
func FuzzParseBandwidth(f *testing.F) {
	for _, seed := range []string{"2Mbps", "750kbps", "1.5Gbps", "123", "0bps", "-1Mbps", "Mbps", "1e3kbps", " 2 Mbps "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		bw, err := ParseBandwidth(s)
		if err == nil && bw < 0 {
			t.Fatalf("ParseBandwidth(%q) accepted a negative bandwidth %v", s, bw)
		}
	})
}
