// Package pcap reads and writes libpcap capture files (the classic
// 0xa1b2c3d4 microsecond format, LINKTYPE_RAW) so traces produced by
// the simulator can be inspected with tcpdump/wireshark, and traces
// captured by real tools can be fed to internal/analysis.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
)

const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeRaw means packets start directly at the IP header.
	LinkTypeRaw = 101
	// DefaultSnapLen mirrors the classic tcpdump -s default used for
	// header-only captures; internal/session captures with a larger
	// value so container headers in early payloads are preserved.
	DefaultSnapLen = 262144
)

// Writer emits a pcap stream. Create with NewWriter.
type Writer struct {
	w       io.Writer
	snaplen int
	hdr     [16]byte
	Records int
}

// NewWriter writes the global header and returns a Writer that
// truncates packets to snaplen bytes (0 means DefaultSnapLen).
func NewWriter(w io.Writer, snaplen int) (*Writer, error) {
	if snaplen <= 0 {
		snaplen = DefaultSnapLen
	}
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:], magicMicros)
	binary.LittleEndian.PutUint16(gh[4:], versionMajor)
	binary.LittleEndian.PutUint16(gh[6:], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(gh[16:], uint32(snaplen))
	binary.LittleEndian.PutUint32(gh[20:], LinkTypeRaw)
	if _, err := w.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WritePacket serializes one segment captured at virtual time ts.
func (w *Writer) WritePacket(ts time.Duration, seg *packet.Segment) error {
	data := seg.Marshal()
	return w.WriteRaw(ts, data, len(data))
}

// WriteRaw writes pre-serialized packet bytes with the given original
// length, truncating the stored bytes to snaplen.
func (w *Writer) WriteRaw(ts time.Duration, data []byte, origLen int) error {
	capLen := len(data)
	if capLen > w.snaplen {
		capLen = w.snaplen
		data = data[:capLen]
	}
	sec := uint32(ts / time.Second)
	usec := uint32((ts % time.Second) / time.Microsecond)
	binary.LittleEndian.PutUint32(w.hdr[0:], sec)
	binary.LittleEndian.PutUint32(w.hdr[4:], usec)
	binary.LittleEndian.PutUint32(w.hdr[8:], uint32(capLen))
	binary.LittleEndian.PutUint32(w.hdr[12:], uint32(origLen))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	w.Records++
	return nil
}

// Record is one captured packet returned by Reader.
type Record struct {
	TS      time.Duration
	OrigLen int
	Data    []byte
}

// Reader parses a pcap stream written by Writer (or by tcpdump with
// the same magic and little-endian byte order, including big-endian
// captures via byte-order detection).
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	SnapLen int
	Link    uint32
}

// ErrFormat marks a malformed capture file.
var ErrFormat = errors.New("pcap: bad file format")

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var gh [24]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(gh[0:]) {
	case magicMicros:
		order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(gh[0:]) == magicMicros {
			order = binary.BigEndian
		} else {
			return nil, ErrFormat
		}
	}
	return &Reader{
		r:       r,
		order:   order,
		SnapLen: int(order.Uint32(gh[16:])),
		Link:    order.Uint32(gh[20:]),
	}, nil
}

// Next returns the next record, or io.EOF at clean end of stream.
func (r *Reader) Next() (*Record, error) {
	var rh [16]byte
	if _, err := io.ReadFull(r.r, rh[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.order.Uint32(rh[0:])
	usec := r.order.Uint32(rh[4:])
	capLen := int(r.order.Uint32(rh[8:]))
	if capLen < 0 || capLen > 256<<20 {
		return nil, ErrFormat
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, fmt.Errorf("pcap: reading %d record bytes: %w", capLen, err)
	}
	return &Record{
		TS:      time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
		OrigLen: int(r.order.Uint32(rh[12:])),
		Data:    data,
	}, nil
}

// ReadAll drains the stream into memory.
func (r *Reader) ReadAll() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
