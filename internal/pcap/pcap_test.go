package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"repro/internal/packet"
)

func seg(seq uint32, payload []byte) *packet.Segment {
	return &packet.Segment{
		Flow:    packet.Flow{Src: packet.EP(10, 0, 0, 1, 5000), Dst: packet.EP(10, 0, 0, 2, 80)},
		Seq:     seq,
		Flags:   packet.FlagACK,
		Window:  65536,
		Payload: payload,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	times := []time.Duration{0, 1500 * time.Microsecond, 2 * time.Second}
	for i, ts := range times {
		if err := w.WritePacket(ts, seg(uint32(i), []byte("hello"))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records != 3 {
		t.Fatalf("Records = %d, want 3", w.Records)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Link != LinkTypeRaw {
		t.Fatalf("link type %d, want %d", r.Link, LinkTypeRaw)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.TS != times[i] {
			t.Errorf("record %d ts %v, want %v", i, rec.TS, times[i])
		}
		s, err := packet.Parse(rec.Data)
		if err != nil {
			t.Fatalf("record %d does not parse: %v", i, err)
		}
		if s.Seq != uint32(i) || string(s.Payload) != "hello" {
			t.Errorf("record %d decoded wrong: %v", i, s)
		}
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	big := seg(1, bytes.Repeat([]byte{9}, 1000))
	if err := w.WritePacket(time.Second, big); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 60 {
		t.Fatalf("captured %d bytes, want 60", len(rec.Data))
	}
	if rec.OrigLen != 1040 {
		t.Fatalf("OrigLen %d, want 1040", rec.OrigLen)
	}
	s, err := packet.Parse(rec.Data)
	if err != nil {
		t.Fatal(err)
	}
	if s.PayloadLen != 1000 {
		t.Fatalf("parsed PayloadLen %d, want 1000 from IP header", s.PayloadLen)
	}
	if len(s.Payload) != 20 {
		t.Fatalf("captured payload %d, want 20", len(s.Payload))
	}
}

func TestGlobalHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 96); err != nil {
		t.Fatal(err)
	}
	gh := buf.Bytes()
	if binary.LittleEndian.Uint32(gh[0:]) != 0xa1b2c3d4 {
		t.Error("bad magic")
	}
	if binary.LittleEndian.Uint16(gh[4:]) != 2 || binary.LittleEndian.Uint16(gh[6:]) != 4 {
		t.Error("bad version")
	}
	if binary.LittleEndian.Uint32(gh[16:]) != 96 {
		t.Error("bad snaplen")
	}
	if binary.LittleEndian.Uint32(gh[20:]) != LinkTypeRaw {
		t.Error("bad linktype")
	}
}

func TestBigEndianReader(t *testing.T) {
	// Hand-construct a big-endian capture with one empty record.
	var buf bytes.Buffer
	var gh [24]byte
	binary.BigEndian.PutUint32(gh[0:], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(gh[4:], 2)
	binary.BigEndian.PutUint16(gh[6:], 4)
	binary.BigEndian.PutUint32(gh[16:], 65535)
	binary.BigEndian.PutUint32(gh[20:], LinkTypeRaw)
	buf.Write(gh[:])
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:], 3)      // 3s
	binary.BigEndian.PutUint32(rh[4:], 500000) // .5s
	binary.BigEndian.PutUint32(rh[8:], 0)
	binary.BigEndian.PutUint32(rh[12:], 0)
	buf.Write(rh[:])

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.TS != 3*time.Second+500*time.Millisecond {
		t.Fatalf("ts %v, want 3.5s", rec.TS)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrFormat {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w.WritePacket(0, seg(1, []byte("x")))
	full := buf.Bytes()
	// Cut inside the record body.
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record gave err=%v, want a wrapped read error", err)
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty capture: recs=%d err=%v", len(recs), err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, _ := NewWriter(io.Discard, 0)
	s := seg(1, make([]byte, 1460))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = w.WritePacket(time.Duration(i), s)
	}
}
