package experiments

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// The fleet experiment family runs the paper's closing argument at
// its native scale: streaming strategies matter in *aggregate*,
// because thousands of concurrent ON-OFF sources synchronize into
// bursts exactly at the aggregation tier an ISP provisions. A fleet
// of clients on the multi-tier tree (access → aggregation → core)
// produces streaming aggregate statistics only, so the experiment
// scales in clients, not packets.

// BurstinessRow is one strategy mix's aggregation-tier outcome.
type BurstinessRow struct {
	Mix         string
	Clients     int
	MeanAggMbps float64 // mean per-aggregation-link load, post-warmup
	AggCV       float64 // median per-agg-link burstiness (CV of binned rate)
	AggP90CV    float64
	CoreCV      float64
	PeakToMean  float64 // aggregation tier peak-to-mean ratio
	CoreLoss    float64
	RateP50Mbps float64 // per-client goodput median
}

// AggregateBurstinessResult is the mix sweep.
type AggregateBurstinessResult struct {
	Rows     []BurstinessRow
	Artifact Artifact
	// TargetMbps is the per-aggregation-link load every row offers.
	TargetMbps float64
}

// Long-run per-client downstream wire rates used to size rows to
// equal mean load: a No ON-OFF (Firefox) client bulk downloads at its
// access-link rate for as long as content remains; a Short ON-OFF
// (Flash) client averages the server's block pacing (measured steady
// wire rate of the 1.75 Mbps default video, headers included — see
// the fleet probe in the PR notes, ~3.2 Mbps).
const (
	fleetEncodingRate  = 1.75e6 // bps, the 360p default
	shortOnOffPerMbps  = 3.2
	noOnOffPerMbps     = 6.0 // the default tree's access down-link rate
	burstTargetAggMbps = 64  // offered load per 200 Mbps aggregation link
)

// burstMix is one row's configuration.
type burstMix struct {
	label     string
	mix       []scenario.MixEntry
	perClient float64 // estimated long-run Mbps per client
}

// AggregateBurstiness shifts a fleet's strategy mix from No ON-OFF to
// Short ON-OFF while holding the offered aggregation-link load fixed:
// each row's client count is sized from the strategy's long-run
// per-client rate, so the tier carries the same mean Mbps and only
// the traffic's shape changes. The paper's aggregate claim is that
// the Short ON-OFF end of the sweep is the burstier one — more
// clients, each duty-cycling through ON bursts at access speed,
// synchronize into spikes a continuous No ON-OFF fleet never shows.
func AggregateBurstiness(o Options) *AggregateBurstinessResult {
	o = o.withDefaults()
	res := &AggregateBurstinessResult{
		TargetMbps: burstTargetAggMbps,
		Artifact:   Artifact{Title: "Extension: strategy mix vs aggregation-link burstiness at equal mean load"},
	}
	// o.N scales the topology width (aggregation links per row), not
	// the per-link load: N=8 default → 2 aggregation groups.
	groups := o.N / 4
	if groups < 1 {
		groups = 1
	}
	mixes := []burstMix{
		{"No ON-OFF (firefox)", []scenario.MixEntry{{Player: scenario.FirefoxHtml5, Weight: 1}}, noOnOffPerMbps},
		{"50/50 mix", []scenario.MixEntry{{Player: scenario.Flash, Weight: 1}, {Player: scenario.FirefoxHtml5, Weight: 1}},
			(shortOnOffPerMbps + noOnOffPerMbps) / 2},
		{"Short ON-OFF (flash)", []scenario.MixEntry{{Player: scenario.Flash, Weight: 1}}, shortOnOffPerMbps},
	}
	warmup := o.Duration * 2 / 5
	res.Artifact.Addf("%d x 200 Mbps aggregation links, %.0f Mbps offered per link, %v horizon (%v warmup), 250 ms bins",
		groups, res.TargetMbps, o.Duration, warmup)
	res.Artifact.Addf("%-22s %-8s %-12s %-18s %-10s %-10s", "mix", "clients", "agg Mbps", "agg CV p50 (p90)", "peak/mean", "rate p50")
	res.Rows = make([]BurstinessRow, len(mixes))
	for i, m := range mixes {
		perAgg := int(burstTargetAggMbps/m.perClient + 0.5)
		f := scenario.Fleet{
			Name:     m.label,
			Mix:      m.mix,
			Clients:  groups * perAgg,
			Duration: o.Duration,
			Warmup:   warmup,
			UtilBin:  250 * time.Millisecond,
			Arrival:  scenario.Arrival{Kind: scenario.Staggered, Window: o.Duration / 5},
			Seed:     o.Seed + int64(i),
			// A long video keeps every strategy active through the
			// horizon: a No ON-OFF bulk download must not run out of
			// content mid-measurement, or its idle tail would read as
			// burstiness.
			Video: media.Video{EncodingRate: fleetEncodingRate, Duration: 900 * time.Second, Resolution: "360p"},
		}
		f.Tree.ClientsPerAgg = perAgg
		r := scenario.RunFleet(o.pool(), f)
		res.Rows[i] = BurstinessRow{
			Mix:         m.label,
			Clients:     r.Clients,
			MeanAggMbps: r.AggMbps(),
			AggCV:       r.AggBurst.Quantile(0.5),
			AggP90CV:    r.AggBurst.Quantile(0.9),
			CoreCV:      r.CoreBurst.Quantile(0.5),
			PeakToMean:  peakToMeanFrom(r),
			CoreLoss:    r.InducedCoreLoss,
			RateP50Mbps: r.RateMbps.Quantile(0.5),
		}
		row := res.Rows[i]
		res.Artifact.Addf("%-22s %-8d %-12.1f %-18s %-10.2f %-10.2f",
			row.Mix, row.Clients, row.MeanAggMbps,
			fmt.Sprintf("%.3f (%.3f)", row.AggCV, row.AggP90CV),
			row.PeakToMean, row.RateP50Mbps)
	}
	res.Artifact.Addf("equal mean load, different shape: ON-OFF duty cycles stack into aggregation-tier bursts")
	return res
}

// peakToMeanFrom computes the aggregation tier's post-warmup
// peak-to-mean ratio from the merged utilization series.
func peakToMeanFrom(r *scenario.FleetResult) float64 {
	return stats.PeakToMean(r.AggUtil.From(r.Fleet.Warmup))
}
