package experiments

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/tcp"
)

// TestCcMatrixTransportSensitivity pins the matrix's headline claim —
// the ON-OFF classification is transport-sensitive — qualitatively,
// not just byte-for-byte: the paper's reference corner (Reno behind a
// drop-tail queue) and the modern corner (CUBIC behind CoDel) must
// land in different classification mixes, and the drop accounting
// must attribute policy drops only where a policy runs.
func TestCcMatrixTransportSensitivity(t *testing.T) {
	r := CcMatrix(Options{N: 1, Seed: 1, Duration: 120 * time.Second})
	if len(r.Rows) != len(tcp.CCKinds())*len(netem.AqmKinds()) {
		t.Fatalf("matrix has %d rows, want %d", len(r.Rows), len(tcp.CCKinds())*len(netem.AqmKinds()))
	}
	for _, cc := range tcp.CCKinds() {
		for _, aqm := range netem.AqmKinds() {
			cell := r.Cell(cc, aqm)
			if cell == nil {
				t.Fatalf("missing cell %s/%s", cc, aqm)
			}
			if cell.Mix == "none" {
				t.Fatalf("cell %s/%s classified nothing", cc, aqm)
			}
			if cell.AggregateMbps <= 0 {
				t.Fatalf("cell %s/%s streamed nothing", cc, aqm)
			}
			if aqm == netem.AqmDropTail && cell.AqmShare != 0 {
				t.Fatalf("drop-tail cell %s/%s has AQM-attributed drops (share %.2f)", cc, aqm, cell.AqmShare)
			}
			if cell.AqmShare < 0 || cell.AqmShare > 1 {
				t.Fatalf("cell %s/%s AqmShare %.2f outside [0,1]", cc, aqm, cell.AqmShare)
			}
		}
	}
	// The qualitative shift: swapping Reno/drop-tail for CUBIC/CoDel
	// moves the classified mix — the strained bottleneck's wire pattern
	// is not a property of the player alone.
	renoDT := r.Cell(tcp.CCReno, netem.AqmDropTail)
	cubicCD := r.Cell(tcp.CCCubic, netem.AqmCoDel)
	if renoDT.Mix == cubicCD.Mix {
		t.Fatalf("reno/droptail and cubic/codel classify identically (%q): the matrix shows no transport sensitivity", renoDT.Mix)
	}
	// CoDel must actually engage somewhere in the matrix, and under
	// loss-based controllers its early shedding accounts for the drops.
	if renoCD := r.Cell(tcp.CCReno, netem.AqmCoDel); renoCD.AqmShare == 0 {
		t.Fatal("CoDel never dropped under reno on a strained bottleneck")
	}
}
