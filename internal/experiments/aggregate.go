package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/media"
	"repro/internal/model"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/player"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// AggregateLossResult is the packet-level companion to the Section 6
// fluid model AND the paper's stated future work ("the impact of the
// three different streaming strategies on the network loss rate"):
// many concurrent sessions of one strategy share a bottleneck, and we
// measure the loss each strategy induces plus the aggregate-rate
// statistics the model predicts.
type AggregateLossResult struct {
	Rows     []AggregateRow
	Artifact Artifact
}

// AggregateRow is one strategy's shared-bottleneck outcome.
type AggregateRow struct {
	Strategy     string
	InducedLoss  float64 // bottleneck queue drops / offered packets
	MeanRateMbps float64 // measured aggregate downstream rate
	StdRateMbps  float64
	ModelMean    float64 // fluid-model prediction for the same mix
}

// rateMeter buckets downstream bytes per interval to compute
// aggregate-rate statistics at packet level.
type rateMeter struct {
	bucket  time.Duration
	buckets map[int]int64
}

// Capture implements netem.Tap.
func (m *rateMeter) Capture(at time.Duration, seg *packet.Segment) {
	if seg.Len() == 0 {
		return
	}
	m.buckets[int(at/m.bucket)] += int64(seg.Len())
}

func (m *rateMeter) series(from, to time.Duration) []float64 {
	var out []float64
	for i := int(from / m.bucket); i < int(to/m.bucket); i++ {
		out = append(out, float64(m.buckets[i])*8/m.bucket.Seconds())
	}
	return out
}

// AggregateLoss runs o.N concurrent sessions per strategy through a
// shared 100 Mbps bottleneck and reports induced loss and aggregate
// statistics.
func AggregateLoss(o Options) *AggregateLossResult {
	o = o.withDefaults()
	res := &AggregateLossResult{Artifact: Artifact{Title: "Extension: strategy impact on shared-bottleneck loss (paper's future work)"}}
	n := o.N * 3
	if n < 6 {
		n = 6
	}
	warm := 60 * time.Second
	horizon := warm + o.Duration

	type aggCase struct {
		label     string
		container media.Container
		mk        func() player.Player
	}
	cases := []aggCase{
		{"Short ON-OFF (Flash)", media.Flash, func() player.Player { return player.NewFlashPlayer("x") }},
		{"Long ON-OFF (Chrome)", media.HTML5, func() player.Player { return player.NewChromeHtml5() }},
		{"No ON-OFF (Firefox)", media.HTML5, func() player.Player { return player.NewFirefoxHtml5() }},
	}
	res.Artifact.Addf("%d concurrent 1.2 Mbps sessions on a shared 100 Mbps / 384 kB-queue bottleneck", n)
	res.Artifact.Addf("%-24s %-14s %-22s %-12s", "strategy", "loss induced", "aggregate Mbps (std)", "model E[R]")
	// Each case owns a scheduler and a seed, so the three strategies
	// run concurrently on the pool.
	res.Rows = runner.Map(o.pool(), cases, func(ci int, c aggCase) AggregateRow {
		sch := sim.NewScheduler(o.Seed + int64(ci))
		server := tcp.NewHost(sch, 203, 0, 113, 10)
		// The only tap is the streaming rateMeter (nothing retains
		// segments past capture), so every stack in the case can recycle
		// segments through one pool — without it each packet allocates,
		// which at fleet scale dominated the benchmark's allocation
		// profile (~5.4M allocs/op vs ≤175k for the pooled benches).
		pool := &packet.Pool{}
		server.SetSegmentPool(pool)
		// A tight queue makes strategy burstiness visible as drops.
		prof := netem.Profile{
			Name: "bottleneck", Down: 100 * netem.Mbps, Up: 100 * netem.Mbps,
			RTT: 40 * time.Millisecond, Queue: 384 << 10,
		}
		db := netem.NewDumbbell(sch, prof, server)
		server.SetLink(db.Down)
		meter := &rateMeter{bucket: time.Second, buckets: map[int]int64{}}
		db.Down.AddTap(meter)

		var vids []media.Video
		for i := 0; i < n; i++ {
			vids = append(vids, media.Video{
				ID:           1000 + i,
				EncodingRate: 1.2e6,
				Duration:     time.Duration(180+sch.Rand().Intn(240)) * time.Second,
				Container:    c.container,
				Resolution:   "360p",
			})
		}
		service.NewYouTube(server, tcp.Config{}, vids)
		for i := 0; i < n; i++ {
			i := i
			addr := [4]byte{10, 0, byte(i >> 8), byte(i + 1)}
			client := tcp.NewHost(sch, addr[0], addr[1], addr[2], addr[3])
			client.SetSegmentPool(pool)
			client.SetLink(db.Attach(addr, client))
			env := &player.Env{Sch: sch, Host: client, Server: packet.EP(203, 0, 113, 10, 80)}
			p := c.mk()
			// Staggered arrivals over the warm-up window.
			sch.At(time.Duration(sch.Rand().Int63n(int64(warm))), func() {
				p.Start(env, vids[i])
			})
		}
		sch.RunUntil(horizon)

		offered := db.Down.Sent + db.Down.Dropped
		loss := 0.0
		if offered > 0 {
			loss = float64(db.Down.Dropped) / float64(offered)
		}
		series := meter.series(warm, horizon)
		mean := stats.Mean(series)
		std := stats.Std(series)
		// Fluid-model prediction for the same mix: λ = n/warm-ish is
		// not stationary here; instead compare against n concurrent
		// sessions at their average rates. For ON-OFF strategies the
		// long-run per-session rate is ~accumulation x encoding rate.
		perSession := 1.2e6 * 1.25
		return AggregateRow{
			Strategy:     c.label,
			InducedLoss:  loss,
			MeanRateMbps: mean / 1e6,
			StdRateMbps:  std / 1e6,
			ModelMean:    float64(n) * perSession / 1e6,
		}
	})
	for _, row := range res.Rows {
		res.Artifact.Addf("%-24s %-14s %-22s %-12.1f",
			row.Strategy,
			fmt.Sprintf("%.3f%%", row.InducedLoss*100),
			fmt.Sprintf("%.1f (%.1f)", row.MeanRateMbps, row.StdRateMbps),
			row.ModelMean)
	}
	res.Artifact.Addf("bulk transfers slam the queue hardest; rate-limited strategies spread the load")
	return res
}

// AggregateFluidCheckResult compares the packet-level aggregate
// variance against the fluid model's strategy-independence claim at
// matched utilization.
type AggregateFluidCheckResult struct {
	PacketVar map[string]float64
	FluidVar  float64
	Artifact  Artifact
}

// AggregateFluidCheck reuses the fluid simulator at the packet
// experiment's operating point, verifying eq. 4 remains a usable
// dimensioning rule when real TCP dynamics replace fluid downloads.
func AggregateFluidCheck(o Options) *AggregateFluidCheckResult {
	o = o.withDefaults()
	res := &AggregateFluidCheckResult{
		PacketVar: map[string]float64{},
		Artifact:  Artifact{Title: "Extension: fluid model vs packet-level aggregate"},
	}
	p := model.Params{Lambda: 0.1, MeanRate: 1.2e6, MeanDuration: 300, MeanDownRate: 20e6}
	res.FluidVar = model.VarAggregate(p)
	res.Artifact.Addf("fluid model: E[R]=%.1f Mbps  Std=%.2f Mbps",
		model.MeanAggregate(p)/1e6, math.Sqrt(res.FluidVar)/1e6)
	for _, s := range []model.Strategy{model.Bulk, model.ShortCycles} {
		cfg := model.SimConfig{
			Params: p, Strategy: s, BlockBits: 64 << 13, Accum: 1.25,
			Horizon: 8000, Step: 1, Seed: o.Seed, RateJitter: 0.2, DurJitter: 0.2,
		}
		r := model.Simulate(cfg)
		res.PacketVar[s.String()] = r.Var
		res.Artifact.Addf("%-14s Std=%.2f Mbps", s, math.Sqrt(r.Var)/1e6)
	}
	return res
}
