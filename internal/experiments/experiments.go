// Package experiments contains one runner per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). Each runner
// executes the necessary simulated sessions, computes the paper's
// metric, and returns both a printable artifact (the rows/series the
// paper reports) and structured values that the tests and benches
// assert shape properties on.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/runner"
	"repro/internal/session"
)

// Options scales the experiments. Zero values take defaults sized for
// benches; tests use smaller N.
type Options struct {
	// N is the number of videos sampled per dataset/cell. Default 8.
	N int
	// Seed drives all sampling.
	Seed int64
	// Duration is the per-session capture time. Default 180 s (the
	// paper's). Tests may shorten it.
	Duration time.Duration
	// Workers sizes the session worker pool; <= 0 means one worker
	// per CPU. Results are bit-identical for any value because every
	// session carries its own seed and results are consumed in
	// submission order.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Duration <= 0 {
		o.Duration = session.DefaultDuration
	}
	return o
}

// Artifact is a printable experiment output.
type Artifact struct {
	Title string
	lines []string
}

// Addf appends one formatted line.
func (a *Artifact) Addf(format string, args ...any) {
	a.lines = append(a.lines, fmt.Sprintf(format, args...))
}

// AddBlock appends a multi-line block verbatim.
func (a *Artifact) AddBlock(block string) {
	for _, ln := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
		a.lines = append(a.lines, ln)
	}
}

func (a *Artifact) String() string {
	return "== " + a.Title + " ==\n" + strings.Join(a.lines, "\n") + "\n"
}

// pool returns the runner options for this experiment run.
func (o Options) pool() runner.Options { return runner.Options{Workers: o.Workers} }

// runSessions executes a batch of session configs on the experiment's
// worker pool, returning results in submission order.
func runSessions(o Options, cfgs []session.Config) []*session.Result {
	return runner.Sessions(o.pool(), cfgs)
}

// ytConfig builds one YouTube session config. Experiment sessions run
// the streaming capture pipeline with the exact figure series enabled
// (points, not packets), so every artifact stays identical to the
// buffered pipeline's output.
func ytConfig(v media.Video, p player.Player, net netem.Profile, seed int64, d time.Duration) session.Config {
	return session.Config{
		Video: v, Service: session.YouTube, Player: p,
		Network: net, Seed: seed, Duration: d, Series: true,
	}
}

// nfConfig builds one Netflix session config.
func nfConfig(v media.Video, p player.Player, net netem.Profile, seed int64, d time.Duration) session.Config {
	return session.Config{
		Video: v, Service: session.Netflix, Player: p,
		Network: net, Seed: seed, Duration: d, Series: true,
	}
}

// runYouTube executes one YouTube session.
func runYouTube(v media.Video, p player.Player, net netem.Profile, seed int64, d time.Duration) *session.Result {
	return session.Run(ytConfig(v, p, net, seed, d))
}

// sampleVideos picks up to n videos deterministically from a dataset.
func sampleVideos(d media.Dataset, n int) []media.Video {
	if n >= len(d.Videos) {
		return d.Videos
	}
	out := make([]media.Video, 0, n)
	step := len(d.Videos) / n
	for i := 0; i < n; i++ {
		out = append(out, d.Videos[i*step])
	}
	return out
}

func mb(b int64) float64     { return float64(b) / 1e6 }
func kb(b int64) float64     { return float64(b) / 1e3 }
func mbps(b float64) float64 { return b / 1e6 }
