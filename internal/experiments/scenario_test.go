package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// TestScenarioRateDropFlipsClassifier is the PR's acceptance
// criterion: a mid-session rate drop must measurably change the
// classifier output against the static baseline. Flash is the paper's
// canonical short ON-OFF strategy; a link pinned below the encoding
// rate leaves no room for OFF periods and the capture degenerates to a
// bulk-like transfer.
func TestScenarioRateDropFlipsClassifier(t *testing.T) {
	res := ScenarioRateDrop(Options{N: 1, Seed: 3, Duration: 180 * time.Second})
	if len(res.Rows) < 3 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
	flash := res.Rows[0]
	if !strings.Contains(flash.Player, "Flash") {
		t.Fatalf("first row is %q, want the Flash player", flash.Player)
	}
	if flash.Static != analysis.ShortOnOff {
		t.Fatalf("static Flash baseline classified %v, want Short ON-OFF\n%s", flash.Static, res.Artifact.String())
	}
	if flash.Dynamic == flash.Static {
		t.Fatalf("rate drop did not change the Flash classification (%v)\n%s", flash.Dynamic, res.Artifact.String())
	}
	if flash.Dynamic != analysis.NoOnOff {
		t.Fatalf("rate drop classified %v, want No ON-OFF (cycles melt together)\n%s", flash.Dynamic, res.Artifact.String())
	}
	// The mechanism, not just the label: cycles must have merged.
	if flash.DynamicBlocks >= flash.StaticBlocks/2 {
		t.Fatalf("blocks %d -> %d: the drop should merge most cycles", flash.StaticBlocks, flash.DynamicBlocks)
	}
	// Firefox is a bulk transfer either way: the drop must NOT flip it.
	for _, row := range res.Rows {
		if strings.Contains(row.Player, "Firefox") && row.Static != row.Dynamic {
			t.Fatalf("Firefox (already bulk) flipped from %v to %v", row.Static, row.Dynamic)
		}
	}
}

func TestScenarioFlashCrowdSharedBottleneck(t *testing.T) {
	res := ScenarioFlashCrowd(Options{N: 4, Seed: 5, Duration: 120 * time.Second})
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Sessions < 6 {
			t.Fatalf("%s: only %d sessions", row.Strategy, row.Sessions)
		}
		if row.Aggregate <= 0 {
			t.Fatalf("%s: no aggregate traffic", row.Strategy)
		}
		if row.EarlyMB <= 0 || row.LateMB <= 0 {
			t.Fatalf("%s: early/late medians missing (%v / %v)", row.Strategy, row.EarlyMB, row.LateMB)
		}
		if row.Mix == "none" {
			t.Fatalf("%s: no per-session classifications", row.Strategy)
		}
	}
	// Eight 1.2 Mbps bulk transfers racing on 20 Mbps must induce loss.
	ff := res.Rows[2]
	if !strings.Contains(ff.Strategy, "Firefox") {
		t.Fatalf("third row is %q, want Firefox (bulk)", ff.Strategy)
	}
	if ff.InducedLoss == 0 {
		t.Fatalf("a bulk flash crowd induced no loss\n%s", res.Artifact.String())
	}
}
