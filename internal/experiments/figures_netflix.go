package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
)

// netflixSample builds the NetPC/NetMob samples.
func netflixSample(o Options) []media.Video {
	return sampleVideos(media.NetPC(o.N*4, o.Seed+7), o.N)
}

// Figure10Result holds the representative Netflix traces.
type Figure10Result struct {
	PC, IPad, Android            []SeriesPoint
	PCStrategy, IPadStrategy     analysis.Strategy
	AndroidStrategy              analysis.Strategy
	PCConns, IPadConns, AndConns int
	Artifact                     Artifact
}

// Figure10 reproduces the Netflix download-evolution traces in the
// Academic network.
func Figure10(o Options) *Figure10Result {
	o = o.withDefaults()
	v := media.Video{ID: 31, EncodingRate: 3800e3, Duration: 45 * time.Minute, Container: media.Silverlight, Resolution: "adaptive"}
	rs := runSessions(o, []session.Config{
		nfConfig(v, player.NewSilverlightPC("Internet Explorer"), netem.Academic, o.Seed, o.Duration),
		nfConfig(v, player.NewNetflixIPad(), netem.Academic, o.Seed+1, o.Duration),
		nfConfig(v, player.NewNetflixAndroid(), netem.Academic, o.Seed+2, o.Duration),
	})
	pc, ip, an := rs[0], rs[1], rs[2]

	res := &Figure10Result{
		PC: downloadSeries(pc, 30), IPad: downloadSeries(ip, 30), Android: downloadSeries(an, 30),
		PCStrategy: pc.Analysis.Strategy, IPadStrategy: ip.Analysis.Strategy, AndroidStrategy: an.Analysis.Strategy,
		PCConns: pc.Analysis.ConnCount, IPadConns: ip.Analysis.ConnCount, AndConns: an.Analysis.ConnCount,
		Artifact: Artifact{Title: "Figure 10: streaming strategies used by Netflix (Academic)"},
	}
	res.Artifact.Addf("(a) PC:   %s, %d conns, %.1f MB in %d s", res.PCStrategy, res.PCConns, lastMB(res.PC), int(o.Duration.Seconds()))
	res.Artifact.Addf("    iPad: %s, %d conns, %.1f MB", res.IPadStrategy, res.IPadConns, lastMB(res.IPad))
	res.Artifact.Addf("(b) Android: %s, %d conns, %.1f MB", res.AndroidStrategy, res.AndConns, lastMB(res.Android))
	return res
}

func lastMB(s []SeriesPoint) float64 {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].V / 1e6
}

// Figure11Result holds the Netflix buffering-amount distributions.
type Figure11Result struct {
	// Buffering maps series label to the CDF of buffering amounts in
	// MB: PC/Academic, PC/Home, iPad/Academic (a); Android/Academic (b).
	Buffering map[string]*stats.CDF
	Artifact  Artifact
}

// Figure11 measures Netflix buffering amounts per application.
func Figure11(o Options) *Figure11Result {
	o = o.withDefaults()
	res := &Figure11Result{Buffering: map[string]*stats.CDF{}, Artifact: Artifact{Title: "Figure 11: Netflix buffering amounts"}}
	vids := netflixSample(o)
	series := []struct {
		label string
		net   netem.Profile
		mk    func() player.Player
	}{
		{"PC/Academic", netem.Academic, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }},
		{"PC/Home", netem.Home, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }},
		{"iPad/Academic", netem.Academic, func() player.Player { return player.NewNetflixIPad() }},
		{"Android/Academic", netem.Academic, func() player.Player { return player.NewNetflixAndroid() }},
	}
	var cfgs []session.Config
	for si, s := range series {
		for i, v := range vids {
			cfgs = append(cfgs, nfConfig(v, s.mk(), s.net, o.Seed+int64(si*100+i), o.Duration))
		}
	}
	results := runSessions(o, cfgs)
	for si, s := range series {
		var buf []float64
		for i := range vids {
			r := results[si*len(vids)+i]
			buf = append(buf, mb(r.Analysis.BufferedBytes))
		}
		res.Buffering[s.label] = stats.NewCDF(buf)
		res.Artifact.Addf("%-18s median %.1f MB (n=%d)", s.label, res.Buffering[s.label].Median(), len(buf))
	}
	return res
}

// Figure12Result holds the Netflix block-size distributions.
type Figure12Result struct {
	Blocks   map[string]*stats.CDF // MB
	Artifact Artifact
}

// Figure12 measures Netflix steady-state block sizes per application.
func Figure12(o Options) *Figure12Result {
	o = o.withDefaults()
	res := &Figure12Result{Blocks: map[string]*stats.CDF{}, Artifact: Artifact{Title: "Figure 12: Netflix block sizes"}}
	vids := netflixSample(o)
	series := []struct {
		label string
		net   netem.Profile
		mk    func() player.Player
	}{
		{"PC/Academic", netem.Academic, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }},
		{"PC/Home", netem.Home, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }},
		{"iPad/Academic", netem.Academic, func() player.Player { return player.NewNetflixIPad() }},
		{"Android/Academic", netem.Academic, func() player.Player { return player.NewNetflixAndroid() }},
	}
	var cfgs []session.Config
	for si, s := range series {
		for i, v := range vids {
			cfgs = append(cfgs, nfConfig(v, s.mk(), s.net, o.Seed+int64(si*100+i), o.Duration))
		}
	}
	results := runSessions(o, cfgs)
	for si, s := range series {
		var blocks []float64
		for i := range vids {
			r := results[si*len(vids)+i]
			for _, b := range r.Analysis.Blocks {
				blocks = append(blocks, mb(b))
			}
		}
		res.Blocks[s.label] = stats.NewCDF(blocks)
		if res.Blocks[s.label].N() > 0 {
			res.Artifact.Addf("%-18s median %.2f MB p90 %.2f MB (n=%d)",
				s.label, res.Blocks[s.label].Median(), res.Blocks[s.label].Quantile(0.9), res.Blocks[s.label].N())
		}
	}
	return res
}
