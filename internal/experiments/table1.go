package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/session"
)

// Table1Cell is one (service, container, application) combination.
type Table1Cell struct {
	Service   string
	Container string
	App       string
	// Want is the strategy the paper reports (Table 1).
	Want analysis.Strategy
	// Got is the strategy our reproduction classifies.
	Got analysis.Strategy
}

// Table1Result is the full strategy matrix.
type Table1Result struct {
	Cells    []Table1Cell
	Artifact Artifact
}

// Matches counts cells whose classified strategy equals the paper's.
func (r *Table1Result) Matches() (ok, total int) {
	for _, c := range r.Cells {
		total++
		if c.Got == c.Want {
			ok++
		}
	}
	return ok, total
}

// Table1 reproduces the strategy matrix: every defined cell of
// Table 1 is streamed once and classified from its trace.
func Table1(o Options) *Table1Result {
	o = o.withDefaults()
	flashV := media.Video{ID: 11, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	hdV := media.Video{ID: 12, EncodingRate: 4e6, Duration: 240 * time.Second, Container: media.Flash, Resolution: "720p"}
	htmlV := media.Video{ID: 13, EncodingRate: 1e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	mobV := media.Video{ID: 14, EncodingRate: 2e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	netV := media.Video{ID: 15, EncodingRate: 3800e3, Duration: 40 * time.Minute, Container: media.Silverlight, Resolution: "adaptive"}

	type spec struct {
		service   session.ServiceKind
		container string
		app       string
		video     media.Video
		network   netem.Profile
		mk        func() player.Player
		want      analysis.Strategy
	}
	specs := []spec{
		// YouTube Flash: short ON-OFF regardless of browser.
		{session.YouTube, "Flash", "Internet Explorer", flashV, netem.Research, func() player.Player { return player.NewFlashPlayer("Internet Explorer") }, analysis.ShortOnOff},
		{session.YouTube, "Flash", "Mozilla Firefox", flashV, netem.Research, func() player.Player { return player.NewFlashPlayer("Mozilla Firefox") }, analysis.ShortOnOff},
		{session.YouTube, "Flash", "Google Chrome", flashV, netem.Research, func() player.Player { return player.NewFlashPlayer("Google Chrome") }, analysis.ShortOnOff},
		// YouTube HTML5: per-application.
		{session.YouTube, "HTML5", "Internet Explorer", htmlV, netem.Research, func() player.Player { return player.NewIEHtml5() }, analysis.ShortOnOff},
		{session.YouTube, "HTML5", "Mozilla Firefox", htmlV, netem.Research, func() player.Player { return player.NewFirefoxHtml5() }, analysis.NoOnOff},
		{session.YouTube, "HTML5", "Google Chrome", htmlV, netem.Research, func() player.Player { return player.NewChromeHtml5() }, analysis.LongOnOff},
		// YouTube Flash HD: bulk transfer in every browser.
		{session.YouTube, "Flash HD", "Internet Explorer", hdV, netem.Research, func() player.Player { return player.NewFlashPlayer("Internet Explorer") }, analysis.NoOnOff},
		{session.YouTube, "Flash HD", "Mozilla Firefox", hdV, netem.Research, func() player.Player { return player.NewFlashPlayer("Mozilla Firefox") }, analysis.NoOnOff},
		{session.YouTube, "Flash HD", "Google Chrome", hdV, netem.Research, func() player.Player { return player.NewFlashPlayer("Google Chrome") }, analysis.NoOnOff},
		// YouTube native apps.
		{session.YouTube, "HTML5", "iOS (native)", mobV, netem.Research, func() player.Player { return player.NewIPadYouTube() }, analysis.MultipleOnOff},
		{session.YouTube, "HTML5", "Android (native)", htmlV, netem.Research, func() player.Player { return player.NewAndroidYouTube() }, analysis.LongOnOff},
		// Netflix Silverlight on PCs: short, browser-independent.
		{session.Netflix, "Silverlight", "Internet Explorer", netV, netem.Academic, func() player.Player { return player.NewSilverlightPC("Internet Explorer") }, analysis.ShortOnOff},
		{session.Netflix, "Silverlight", "Mozilla Firefox", netV, netem.Academic, func() player.Player { return player.NewSilverlightPC("Mozilla Firefox") }, analysis.ShortOnOff},
		{session.Netflix, "Silverlight", "Google Chrome", netV, netem.Academic, func() player.Player { return player.NewSilverlightPC("Google Chrome") }, analysis.ShortOnOff},
		// Netflix native apps.
		{session.Netflix, "Silverlight", "iOS (native)", netV, netem.Academic, func() player.Player { return player.NewNetflixIPad() }, analysis.ShortOnOff},
		{session.Netflix, "Silverlight", "Android (native)", netV, netem.Academic, func() player.Player { return player.NewNetflixAndroid() }, analysis.LongOnOff},
	}

	res := &Table1Result{Artifact: Artifact{Title: "Table 1: streaming strategies by service, container and application"}}
	res.Artifact.Addf("%-9s %-12s %-20s %-14s %-14s", "Service", "Container", "Application", "Paper", "Reproduced")
	cfgs := make([]session.Config, len(specs))
	for i, s := range specs {
		cfgs[i] = session.Config{
			Video: s.video, Service: s.service, Player: s.mk(),
			Network: s.network, Seed: o.Seed + int64(i), Duration: o.Duration,
		}
	}
	results := runSessions(o, cfgs)
	for i, s := range specs {
		got := results[i].Analysis.Strategy
		// The iPad's mixed behaviour reads as Multiple or Short
		// depending on which pull sizes dominate the 180 s window;
		// the paper itself files it under "Multiple".
		cell := Table1Cell{
			Service: s.service.String(), Container: s.container, App: s.app,
			Want: s.want, Got: got,
		}
		res.Cells = append(res.Cells, cell)
		res.Artifact.Addf("%-9s %-12s %-20s %-14s %-14s", cell.Service, cell.Container, cell.App, cell.Want, cell.Got)
	}
	ok, total := res.Matches()
	res.Artifact.Addf("agreement with the paper: %d/%d cells", ok, total)
	return res
}
