package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/player"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Ablation experiments for the design choices DESIGN.md calls out.
// They operate at the substrate level (raw TCP over netem) or via
// session overrides, isolating one mechanism each.

// AblationIdleResetResult compares the first-RTT burst with and
// without the RFC 5681 idle restart (the Figure 9 discussion).
type AblationIdleResetResult struct {
	MedianOffKB, MedianOnKB float64
	Artifact                Artifact
}

// AblationIdleReset runs Flash sessions with both server settings.
func AblationIdleReset(o Options) *AblationIdleResetResult {
	o = o.withDefaults()
	res := &AblationIdleResetResult{Artifact: Artifact{Title: "Ablation: RFC 5681 idle cwnd reset"}}
	v := media.Video{ID: 51, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	settings := []bool{false, true}
	cfgs := make([]session.Config, len(settings))
	for i, reset := range settings {
		cfgs[i] = session.Config{
			Video: v, Service: session.YouTube,
			Player: player.NewFlashPlayer("x"), Network: netem.Research,
			Seed: o.Seed, Duration: o.Duration,
			ServerTCP: tcp.Config{IdleReset: reset},
		}
	}
	results := runSessions(o, cfgs)
	for i, reset := range settings {
		var samples []float64
		for _, b := range results[i].Analysis.FirstRTTBytes {
			samples = append(samples, kb(b))
		}
		m := stats.Median(samples)
		if reset {
			res.MedianOnKB = m
		} else {
			res.MedianOffKB = m
		}
		res.Artifact.Addf("idleReset=%-5v first-RTT median %.0f kB (n=%d)", reset, m, len(samples))
	}
	res.Artifact.Addf("without the reset the server blasts the whole 64 kB block back-to-back")
	return res
}

// lab is a bare two-host TCP testbed with a trace tap.
type lab struct {
	sch            *sim.Scheduler
	client, server *tcp.Host
	path           *netem.Path
	tr             *trace.Trace
}

func newLab(seed int64, prof netem.Profile) *lab {
	sch := sim.NewScheduler(seed)
	client := tcp.NewHost(sch, 10, 0, 0, 1)
	server := tcp.NewHost(sch, 203, 0, 113, 10)
	path := netem.NewPath(sch, prof, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	tr := &trace.Trace{}
	path.Down.AddTap(tr.Tap(trace.Down))
	path.Up.AddTap(tr.Tap(trace.Up))
	return &lab{sch: sch, client: client, server: server, path: path, tr: tr}
}

// AblationDelayedAckResult compares upstream ACK volume.
type AblationDelayedAckResult struct {
	AcksWith, AcksWithout int
	Artifact              Artifact
}

// AblationDelayedAck transfers 4 MB with and without delayed ACKs and
// counts upstream packets.
func AblationDelayedAck(o Options) *AblationDelayedAckResult {
	o = o.withDefaults()
	res := &AblationDelayedAckResult{Artifact: Artifact{Title: "Ablation: delayed ACKs"}}
	run := func(noDelay bool) int {
		l := newLab(o.Seed, netem.Profile{Name: "lab", Down: 20 * netem.Mbps, Up: 20 * netem.Mbps, RTT: 40 * time.Millisecond})
		l.server.Listen(80, tcp.Config{}, func(c *tcp.Conn) {
			c.SetCallbacks(tcp.Callbacks{OnConnected: func() { c.WriteZero(4 << 20) }})
		})
		c := l.client.Dial(tcp.Config{RecvBuf: 1 << 20, NoDelayedAck: noDelay}, packet.EP(203, 0, 113, 10, 80))
		c.SetCallbacks(tcp.Callbacks{OnReadable: func() { c.Discard(1 << 30) }})
		l.sch.RunUntil(time.Minute)
		return l.path.Up.Sent
	}
	counts := runner.Map(o.pool(), []bool{false, true}, func(_ int, noDelay bool) int {
		return run(noDelay)
	})
	res.AcksWith, res.AcksWithout = counts[0], counts[1]
	res.Artifact.Addf("delayed ACKs on : %d upstream packets", res.AcksWith)
	res.Artifact.Addf("delayed ACKs off: %d upstream packets", res.AcksWithout)
	res.Artifact.Addf("delayed ACKs roughly halve the upstream packet load")
	return res
}

// AblationRecvBufferResult shows that pull pacing needs the advertised
// window to bind: with an oversized buffer the client's slow reads no
// longer shape the wire traffic.
type AblationRecvBufferResult struct {
	// BlocksByBuf maps receive-buffer bytes to the on-wire median
	// block size (kB) for the same 256 kB / 2 s pull schedule.
	BlocksByBuf map[int]float64
	// BurstByBuf maps receive-buffer bytes to the initial unpaced
	// burst (kB): the window only starts shaping traffic once the
	// buffer fills, so the burst tracks the buffer size.
	BurstByBuf map[int]float64
	ZeroWindow map[int]int
	Artifact   Artifact
}

// AblationRecvBuffer sweeps the client receive buffer under an
// IE-style pull schedule.
func AblationRecvBuffer(o Options) *AblationRecvBufferResult {
	o = o.withDefaults()
	res := &AblationRecvBufferResult{
		BlocksByBuf: map[int]float64{},
		BurstByBuf:  map[int]float64{},
		ZeroWindow:  map[int]int{},
		Artifact:    Artifact{Title: "Ablation: receive buffer size vs pull pacing"},
	}
	bufs := []int{128 << 10, 384 << 10, 8 << 20}
	analyses := runner.Map(o.pool(), bufs, func(_ int, buf int) labAnalysis {
		l := newLab(o.Seed, netem.Profile{Name: "lab", Down: 100 * netem.Mbps, Up: 100 * netem.Mbps, RTT: 30 * time.Millisecond, Queue: 1536 << 10})
		l.server.Listen(80, tcp.Config{}, func(c *tcp.Conn) {
			c.SetCallbacks(tcp.Callbacks{OnConnected: func() { c.WriteZero(64 << 20) }})
		})
		c := l.client.Dial(tcp.Config{RecvBuf: buf}, packet.EP(203, 0, 113, 10, 80))
		var pull func()
		pull = func() {
			c.Discard(256 << 10)
			l.sch.After(2*time.Second, pull)
		}
		l.sch.After(0, pull)
		l.sch.RunUntil(o.Duration)
		return analyzeLab(l)
	})
	for i, buf := range bufs {
		a := analyses[i]
		res.BlocksByBuf[buf] = float64(a.median) / 1e3
		res.BurstByBuf[buf] = float64(a.burst) / 1e3
		res.ZeroWindow[buf] = a.zeroWindows
		res.Artifact.Addf("recvBuf %5d kB: initial burst %7.0f kB, median wire block %6.0f kB, %d zero-window ACKs",
			buf>>10, res.BurstByBuf[buf], res.BlocksByBuf[buf], a.zeroWindows)
	}
	res.Artifact.Addf("only a binding window (buffer comparable to the pull size) produces ON-OFF pacing")
	return res
}

type labAnalysis struct {
	median      int64
	burst       int64 // bytes of the initial unpaced burst (cycle 0)
	zeroWindows int
}

func analyzeLab(l *lab) labAnalysis {
	var out labAnalysis
	a := analysis.Analyze(l.tr, analysis.Config{})
	out.median = a.MedianBlock()
	out.burst = a.BufferedBytes
	for _, wp := range l.tr.ReceiveWindowSeries() {
		if wp.Window == 0 {
			out.zeroWindows++
		}
	}
	return out
}

// AblationLossResult reproduces the paper's Residence/Academic
// artefact: loss merges and splits ON-OFF cycles, spreading the block
// distribution around the 64 kB mode.
type AblationLossResult struct {
	// Rows are (loss rate, median block kB, p90 block kB, retrans %).
	Rows     [][4]float64
	Artifact Artifact
}

// AblationLoss sweeps random loss under the Flash strategy.
func AblationLoss(o Options) *AblationLossResult {
	o = o.withDefaults()
	res := &AblationLossResult{Artifact: Artifact{Title: "Ablation: loss rate vs Flash block-size spread"}}
	v := media.Video{ID: 52, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	res.Artifact.Addf("%-10s %-16s %-14s %-10s", "loss", "median blk kB", "p90 blk kB", "retrans%")
	losses := []float64{0, 0.002, 0.01}
	cfgs := make([]session.Config, len(losses))
	for i, loss := range losses {
		prof := netem.Research
		prof.Name = "lossy"
		prof.Loss = loss
		cfgs[i] = session.Config{
			Video: v, Service: session.YouTube,
			Player: player.NewFlashPlayer("x"), Network: prof,
			Seed: o.Seed, Duration: o.Duration,
		}
	}
	results := runSessions(o, cfgs)
	for i, loss := range losses {
		r := results[i]
		var blocks []float64
		for _, b := range r.Analysis.Blocks {
			blocks = append(blocks, kb(b))
		}
		c := stats.NewCDF(blocks)
		row := [4]float64{loss, c.Median(), c.Quantile(0.9), r.Analysis.RetransRate * 100}
		res.Rows = append(res.Rows, row)
		res.Artifact.Addf("%-10.3f %-16.0f %-14.0f %-10.2f", row[0], row[1], row[2], row[3])
	}
	res.Artifact.Addf("loss widens the block distribution around the 64 kB mode (Section 5.1.1)")
	return res
}
