package experiments

import (
	"testing"
	"time"
)

// TestAbrRateDropHeadline pins the experiment's claim: under the
// mid-run aggregation-tier rate drop, the fixed-top-rung fleet stalls
// for a large share of the post-drop horizon while the adaptive
// controllers keep rebuffering near zero by walking down the ladder.
func TestAbrRateDropHeadline(t *testing.T) {
	r := AbrRateDrop(Options{N: 1, Seed: 1, Duration: 120 * time.Second})
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 controller rows, got %d", len(r.Rows))
	}
	fixed, rate, buffer := r.Rows[0], r.Rows[1], r.Rows[2]
	if fixed.Controller != "fixed" || rate.Controller != "rate" || buffer.Controller != "buffer" {
		t.Fatalf("unexpected row order: %+v", r.Rows)
	}
	// The fixed fleet must stall hard; both adaptive fleets must stall
	// at least 3x less at the median.
	if fixed.StallSecP50 < 10 {
		t.Fatalf("fixed-rung fleet barely stalled (%.1f s p50) — the drop is not biting", fixed.StallSecP50)
	}
	for _, a := range []AbrRow{rate, buffer} {
		if a.StallSecP50 > fixed.StallSecP50/3 {
			t.Fatalf("%s controller stalled %.1f s p50, want < fixed/3 (%.1f)",
				a.Controller, a.StallSecP50, fixed.StallSecP50/3)
		}
		if a.SwitchP50 <= 0 {
			t.Fatalf("%s controller never switched rungs", a.Controller)
		}
		// The trade: adaptive fleets fetch at a lower mean bitrate.
		if a.FetchedP50 >= fixed.FetchedP50 {
			t.Fatalf("%s controller fetched %.2f Mbps p50, want below the fixed rung's %.2f",
				a.Controller, a.FetchedP50, fixed.FetchedP50)
		}
	}
	// The fixed fleet never leaves the top rung.
	if n := len(fixed.RungShare); n == 0 || fixed.RungShare[n-1] < 0.999 {
		t.Fatalf("fixed fleet's rung occupancy is not pinned to the top: %v", fixed.RungShare)
	}
}
