package experiments

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/media"
	"repro/internal/model"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/session"
)

// Table2Result quantifies the qualitative strategy comparison of
// Table 2: peak receive-side buffer-ahead and unused bytes when the
// user interrupts after watching 20% of the video.
type Table2Result struct {
	Rows     []Table2Row
	Artifact Artifact
}

// Table2Row is one strategy's measured costs.
type Table2Row struct {
	Strategy     string
	MaxAheadMB   float64 // peak downloaded-but-unwatched data
	UnusedMB     float64 // unused bytes at a 20% interruption
	DownloadedMB float64
}

// Table2 streams the same video with the three strategies, interrupts
// at 20% of the duration, and measures the waste. Buffer-ahead is
// computed from the trace as max over t of downloaded(t) − e·t, i.e.
// data the player holds beyond real-time playback.
func Table2(o Options) *Table2Result {
	o = o.withDefaults()
	v := media.Video{ID: 41, EncodingRate: 1.2e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	fv := v
	fv.Container = media.Flash
	beta := 0.2
	cut := time.Duration(beta * float64(v.Duration))

	cases := []struct {
		label string
		video media.Video
		mk    func() player.Player
	}{
		{"No ON-OFF (Firefox/HTML5)", v, func() player.Player { return player.NewFirefoxHtml5() }},
		{"Long ON-OFF (Chrome/HTML5)", v, func() player.Player { return player.NewChromeHtml5() }},
		{"Short ON-OFF (Flash)", fv, func() player.Player { return player.NewFlashPlayer("Internet Explorer") }},
	}
	res := &Table2Result{Artifact: Artifact{Title: "Table 2: comparison of streaming strategies (interruption at 20%)"}}
	res.Artifact.Addf("%-28s %-18s %-16s %-14s", "Strategy", "peak ahead (MB)", "unused (MB)", "downloaded")
	cfgs := make([]session.Config, len(cases))
	for i, c := range cases {
		cfgs[i] = ytConfig(c.video, c.mk(), netem.Research, o.Seed+int64(i), cut)
	}
	results := runSessions(o, cfgs)
	for i, c := range cases {
		r := results[i]
		var maxAhead, total float64
		for _, p := range r.Download {
			ahead := float64(p.Bytes) - v.EncodingRate/8*p.TS.Seconds()
			if ahead > maxAhead {
				maxAhead = ahead
			}
			total = float64(p.Bytes)
		}
		watched := v.EncodingRate / 8 * cut.Seconds()
		unused := total - watched
		if unused < 0 {
			unused = 0
		}
		row := Table2Row{
			Strategy:     c.label,
			MaxAheadMB:   maxAhead / 1e6,
			UnusedMB:     unused / 1e6,
			DownloadedMB: total / 1e6,
		}
		res.Rows = append(res.Rows, row)
		res.Artifact.Addf("%-28s %-18.1f %-16.1f %-14.1f", row.Strategy, row.MaxAheadMB, row.UnusedMB, row.DownloadedMB)
	}
	return res
}

// ModelAggregateResult validates eqs. 3–4 against the Monte-Carlo
// simulator for the three strategies (experiment M1).
type ModelAggregateResult struct {
	Params                model.Params
	MeanForm              float64
	VarForm               float64
	Sim                   map[string]model.SimResult
	MaxMeanErr, MaxVarErr float64
	Artifact              Artifact
}

// ModelAggregate runs M1.
func ModelAggregate(o Options) *ModelAggregateResult {
	o = o.withDefaults()
	p := model.Params{Lambda: 0.2, MeanRate: 1e6, MeanDuration: 240, MeanDownRate: 10e6}
	res := &ModelAggregateResult{
		Params: p, MeanForm: model.MeanAggregate(p), VarForm: model.VarAggregate(p),
		Sim:      map[string]model.SimResult{},
		Artifact: Artifact{Title: "Model (eqs. 3-4): aggregate mean/variance vs Monte-Carlo, per strategy"},
	}
	res.Artifact.Addf("params: %s", p)
	res.Artifact.Addf("closed form: E[R]=%.3g bps Var=%.3g", res.MeanForm, res.VarForm)
	for _, s := range []model.Strategy{model.Bulk, model.ShortCycles, model.LongCycles} {
		cfg := model.SimConfig{
			Params: p, Strategy: s, BlockBits: 64 << 13, Accum: 1.25,
			Horizon: 10000 * float64(o.N) / 8, Step: 1, Seed: o.Seed,
			RateJitter: 0.3, DurJitter: 0.3,
		}
		if s == model.LongCycles {
			cfg.BlockBits = 4 << 23
		}
		r := model.Simulate(cfg)
		res.Sim[s.String()] = r
		meanErr := math.Abs(r.Mean-res.MeanForm) / res.MeanForm
		varErr := math.Abs(r.Var-res.VarForm) / res.VarForm
		res.MaxMeanErr = math.Max(res.MaxMeanErr, meanErr)
		res.MaxVarErr = math.Max(res.MaxVarErr, varErr)
		res.Artifact.Addf("%-14s mean %.3g (%.1f%% off)  var %.3g (%.1f%% off)  sessions %d",
			s, r.Mean, meanErr*100, r.Var, varErr*100, r.Sessions)
	}
	res.Artifact.Addf("=> mean and variance are strategy-independent (Section 6.1)")
	return res
}

// ModelSmoothnessResult shows CoV falling as encoding rates rise (M2).
type ModelSmoothnessResult struct {
	Rates    []float64 // Mbps
	CoV      []float64
	Artifact Artifact
}

// ModelSmoothness runs M2.
func ModelSmoothness(o Options) *ModelSmoothnessResult {
	o = o.withDefaults()
	res := &ModelSmoothnessResult{Artifact: Artifact{Title: "Model: higher encoding rates give smoother aggregate traffic"}}
	for _, mbpsRate := range []float64{0.5, 1, 2, 4, 8} {
		p := model.Params{Lambda: 0.2, MeanRate: mbpsRate * 1e6, MeanDuration: 240, MeanDownRate: 10e6}
		res.Rates = append(res.Rates, mbpsRate)
		res.CoV = append(res.CoV, model.CoV(p))
		res.Artifact.Addf("E[e]=%.1f Mbps: E[R]=%.1f Mbps, CoV=%.3f",
			mbpsRate, model.MeanAggregate(p)/1e6, model.CoV(p))
	}
	res.Artifact.Addf("=> mean grows linearly while CoV shrinks as 1/sqrt(E[e])")
	return res
}

// ModelInterruptionResult covers eq. 7 (M3).
type ModelInterruptionResult struct {
	WorkedExample float64
	Thresholds    [][2]float64 // (beta, L threshold seconds)
	Artifact      Artifact
}

// ModelInterruption runs M3.
func ModelInterruption(o Options) *ModelInterruptionResult {
	res := &ModelInterruptionResult{Artifact: Artifact{Title: "Model (eq. 7): duration below which interrupted videos download fully"}}
	res.WorkedExample = model.InterruptionThreshold(40, 1.25, 0.2)
	res.Artifact.Addf("worked example B'=40s k=1.25 beta=0.2: L = %.1f s (paper: 53.3 s)", res.WorkedExample)
	for _, beta := range []float64{0.1, 0.2, 0.4, 0.6} {
		l := model.InterruptionThreshold(40, 1.25, beta)
		res.Thresholds = append(res.Thresholds, [2]float64{beta, l})
		res.Artifact.Addf("beta=%.1f -> L=%.1f s", beta, l)
	}
	return res
}

// ModelWasteResult covers eqs. 8-9 (M4): wasted bandwidth per
// strategy-parameter set under the lack-of-interest distribution
// reported by Finamore et al. (60% of videos watched < 20%).
type ModelWasteResult struct {
	Rows     []WasteRow
	Artifact Artifact
}

// WasteRow is the wasted rate for one strategy's (B', k) parameters.
type WasteRow struct {
	Strategy  string
	WasteMbps float64
}

// ModelWaste runs M4.
func ModelWaste(o Options) *ModelWasteResult {
	o = o.withDefaults()
	res := &ModelWasteResult{Artifact: Artifact{Title: "Model (eqs. 8-9): wasted bandwidth under user interruptions"}}
	const lambda = 0.2
	rng := rand.New(rand.NewSource(o.Seed))
	n := 4000
	// Pre-draw a common population so strategies are compared on the
	// same interruptions.
	type draw struct{ rate, dur, beta float64 }
	pop := make([]draw, n)
	for i := range pop {
		beta := rng.Float64() * 0.2 // 60% quit before 20%...
		if rng.Float64() > 0.6 {
			beta = 0.2 + rng.Float64()*0.8 // ...the rest anywhere later
		}
		pop[i] = draw{
			rate: 0.2e6 + rng.Float64()*1.3e6,
			dur:  60 + rng.Float64()*540,
			beta: beta,
		}
	}
	cases := []struct {
		label  string
		buffer func(d draw) float64 // B' seconds
		accum  float64
	}{
		{"Short ON-OFF (Flash: B'=40s k=1.25)", func(draw) float64 { return 40 }, 1.25},
		{"Long ON-OFF (Chrome: B'~12MB k=1.34)", func(d draw) float64 { return 12e6 * 8 / d.rate }, 1.34},
		{"No ON-OFF (whole video up front)", func(d draw) float64 { return d.dur }, 1},
	}
	for _, c := range cases {
		w := model.WasteRate(lambda, n, func(i int) model.Session {
			d := pop[i]
			return model.Session{
				Rate: d.rate, Duration: d.dur,
				Buffer: math.Min(c.buffer(d), d.dur),
				Accum:  c.accum, Beta: d.beta,
			}
		})
		res.Rows = append(res.Rows, WasteRow{Strategy: c.label, WasteMbps: w / 1e6})
		res.Artifact.Addf("%-40s E[R'] = %.2f Mbps", c.label, w/1e6)
	}
	res.Artifact.Addf("=> waste ordering matches Table 2: No > Long > Short")
	return res
}
