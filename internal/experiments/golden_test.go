package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifacts under testdata/golden")

// TestGoldenArtifacts pins small-scale experiment artifacts
// byte-for-byte. Every PR in this repository has claimed
// "byte-identical artifacts" after refactors; this harness turns that
// claim from a manual diff into an enforced regression test. The
// cases span the major artifact families (paper table, fluid model,
// scenario engine, fleet engine) at scales that run in a few seconds.
//
// To re-bless after an intentional artifact change:
//
//	go test ./internal/experiments -run TestGoldenArtifacts -update
func TestGoldenArtifacts(t *testing.T) {
	cases := []struct {
		name string
		run  func() string
	}{
		{"table1_n2_40s", func() string {
			return Table1(Options{N: 2, Seed: 1, Duration: 40 * time.Second}).Artifact.String()
		}},
		{"model-agg_n2", func() string {
			return ModelAggregate(Options{N: 2, Seed: 1}).Artifact.String()
		}},
		{"scenario-ratedrop_n1_120s", func() string {
			return ScenarioRateDrop(Options{N: 1, Seed: 1, Duration: 120 * time.Second}).Artifact.String()
		}},
		// 150 s is the shortest horizon whose post-warmup window is
		// fully steady-state; shorter horizons pin a transient-phase
		// artifact whose burstiness ordering is not the paper's claim.
		{"fleet-burstiness_n1_150s", func() string {
			return AggregateBurstiness(Options{N: 1, Seed: 1, Duration: 150 * time.Second}).Artifact.String()
		}},
		{"abr-ratedrop_n1_120s", func() string {
			return AbrRateDrop(Options{N: 1, Seed: 1, Duration: 120 * time.Second}).Artifact.String()
		}},
		{"ccmatrix_n1_120s", func() string {
			return CcMatrix(Options{N: 1, Seed: 1, Duration: 120 * time.Second}).Artifact.String()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run()
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden artifact (run with -update to bless): %v", err)
			}
			if got != string(want) {
				t.Fatalf("artifact drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
