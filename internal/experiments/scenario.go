package experiments

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/stats"
)

// The scenario experiment family probes workloads the paper's frozen
// per-capture networks could not produce: mid-session bandwidth drops
// that force a strategy's wire pattern to degenerate, and flash crowds
// of sessions joining a shared bottleneck over time. Like every other
// experiment, artifacts are byte-identical for any worker count.

// RateDropRow is one player's static-vs-dynamic comparison.
type RateDropRow struct {
	Player  string
	Static  analysis.Strategy
	Dynamic analysis.Strategy
	// Block counts and medians expose *why* the classification moved:
	// the drop melts ON-OFF cycles into one continuous transfer.
	StaticBlocks, DynamicBlocks   int
	StaticMedianKB, DynMedianKB   float64
	StaticRetrans, DynamicRetrans float64 // retransmission rates
}

// ScenarioRateDropResult is the full sweep.
type ScenarioRateDropResult struct {
	Rows     []RateDropRow
	Artifact Artifact
}

// rateDropSpecs builds the static/dynamic spec pair for one player.
// The drop fires at one sixth of the horizon — late enough that
// buffering has finished and a steady-state pattern exists, early
// enough that the degenerate regime dominates the trace — and pins the
// downstream below the encoding rate, so rate-limited pacing can no
// longer leave the link idle.
func rateDropSpecs(k scenario.PlayerKind, o Options) (static, dynamic scenario.Spec) {
	v := media.Video{
		ID: 500, EncodingRate: 1e6, Duration: 400 * time.Second,
		Resolution: "360p", Container: k.NativeContainer(),
	}
	static = scenario.Spec{
		Name:     "static/" + k.String(),
		Profile:  netem.Residence,
		Player:   k,
		Video:    v,
		Duration: o.Duration,
		Seed:     o.Seed + 21,
	}
	dynamic = static
	dynamic.Name = "ratedrop/" + k.String()
	dynamic.Down = netem.Dynamics{}.Then(netem.RateStep(o.Duration/6, 800*netem.Kbps))
	return static, dynamic
}

// ScenarioRateDrop streams each YouTube browser player over a frozen
// Residence link and over the same link whose rate drops below the
// encoding rate at one sixth of the capture, then compares the
// classified strategies. The drop degenerates rate-limited strategies
// into continuous bulk-like transfers — OFF periods vanish — which is
// exactly the paper's warning that its phase detection reacts to
// network artefacts, now reproduced on demand.
func ScenarioRateDrop(o Options) *ScenarioRateDropResult {
	o = o.withDefaults()
	kinds := []scenario.PlayerKind{
		scenario.Flash, scenario.IEHtml5, scenario.ChromeHtml5, scenario.FirefoxHtml5,
	}
	// One flat batch (static, dynamic per kind) so the pool fans every
	// session out at once; results come back in submission order.
	var cfgs []session.Config
	for _, k := range kinds {
		st, dy := rateDropSpecs(k, o)
		cfgs = append(cfgs, st.Configs()...)
		cfgs = append(cfgs, dy.Configs()...)
	}
	results := runSessions(o, cfgs)

	res := &ScenarioRateDropResult{Artifact: Artifact{Title: "Scenario: mid-session bandwidth drop vs static baseline"}}
	res.Artifact.Addf("Residence downlink drops to 0.8 Mbps (below the 1 Mbps encoding rate) at t=%v of %v",
		o.Duration/6, o.Duration)
	res.Artifact.Addf("%-26s %-14s %-16s %-18s %-18s", "player", "static", "with rate drop", "blocks (st->dy)", "retrans (st->dy)")
	for i, k := range kinds {
		st, dy := results[2*i].Analysis, results[2*i+1].Analysis
		row := RateDropRow{
			Player:         k.New().Name(),
			Static:         st.Strategy,
			Dynamic:        dy.Strategy,
			StaticBlocks:   len(st.Blocks),
			DynamicBlocks:  len(dy.Blocks),
			StaticMedianKB: float64(st.MedianBlock()) / 1e3,
			DynMedianKB:    float64(dy.MedianBlock()) / 1e3,
			StaticRetrans:  st.RetransRate,
			DynamicRetrans: dy.RetransRate,
		}
		res.Rows = append(res.Rows, row)
		res.Artifact.Addf("%-26s %-14s %-16s %-18s %-18s",
			row.Player, row.Static, row.Dynamic,
			fmt.Sprintf("%d -> %d", row.StaticBlocks, row.DynamicBlocks),
			fmt.Sprintf("%.2f%% -> %.2f%%", row.StaticRetrans*100, row.DynamicRetrans*100))
	}
	res.Artifact.Addf("a pinned link leaves no room for OFF periods: rate-limited strategies degenerate to bulk")
	return res
}

// FlashCrowdRow is one strategy's shared-bottleneck outcome under a
// flash-crowd arrival process.
type FlashCrowdRow struct {
	Strategy    string
	Sessions    int
	InducedLoss float64
	Aggregate   float64 // mean downstream Mbps over the horizon
	Mix         string  // classified strategy mix across sessions
	// EarlyMB/LateMB compare the median download of the first and last
	// arrival quartile: late joiners pay for the crowd.
	EarlyMB, LateMB float64
}

// ScenarioFlashCrowdResult is the full sweep.
type ScenarioFlashCrowdResult struct {
	Rows     []FlashCrowdRow
	Artifact Artifact
}

// ScenarioFlashCrowd packs an audience onto one 20 Mbps bottleneck,
// with every session of a strategy arriving within the first tenth of
// a window — the sudden-audience workload. It measures the loss each
// strategy's synchronized buffering phase induces and how late
// arrivals fare against early ones (competing sessions joining over
// time, the paper's future-work question at packet level).
func ScenarioFlashCrowd(o Options) *ScenarioFlashCrowdResult {
	o = o.withDefaults()
	n := o.N * 2
	if n < 6 {
		n = 6
	}
	prof := netem.Profile{
		Name: "crowded", Down: 20 * netem.Mbps, Up: 20 * netem.Mbps,
		RTT: 40 * time.Millisecond, Queue: 256 << 10,
	}
	kinds := []scenario.PlayerKind{scenario.Flash, scenario.ChromeHtml5, scenario.FirefoxHtml5}
	res := &ScenarioFlashCrowdResult{Artifact: Artifact{Title: "Scenario: flash crowd on a shared 20 Mbps bottleneck"}}
	res.Artifact.Addf("%d x 1.2 Mbps sessions join within the first %v of a %v capture",
		n, time.Duration(float64(o.Duration)/3*0.1), o.Duration)
	res.Artifact.Addf("%-24s %-10s %-12s %-16s %-20s %s", "strategy", "sessions", "loss", "aggregate Mbps", "early/late MB", "per-session mix")
	// Each strategy is one single-threaded shared simulation; the pool
	// runs the strategies concurrently, ordered by submission.
	rows := runner.Map(o.pool(), kinds, func(ki int, k scenario.PlayerKind) FlashCrowdRow {
		sp := scenario.Spec{
			Name:    "flashcrowd/" + k.String(),
			Profile: prof,
			Player:  k,
			Video: media.Video{
				ID: 700, EncodingRate: 1.2e6, Duration: 420 * time.Second,
				Resolution: "360p", Container: k.NativeContainer(),
			},
			Sessions: n,
			Arrival:  scenario.Arrival{Kind: scenario.FlashCrowd, Window: o.Duration / 3},
			Duration: o.Duration,
			Seed:     o.Seed + int64(ki)*101,
		}
		shared := scenario.RunShared(sp)
		row := FlashCrowdRow{
			Strategy:    k.New().Name(),
			Sessions:    n,
			InducedLoss: shared.InducedLoss,
			Aggregate:   shared.AggregateMbps,
			Mix:         shared.StrategyMix(),
		}
		q := len(shared.Outcomes) / 4
		if q < 1 {
			q = 1
		}
		var early, late []float64
		for i, out := range shared.Outcomes { // outcomes are arrival-sorted
			if i < q {
				early = append(early, float64(out.Downloaded)/1e6)
			}
			if i >= len(shared.Outcomes)-q {
				late = append(late, float64(out.Downloaded)/1e6)
			}
		}
		row.EarlyMB = stats.Median(early)
		row.LateMB = stats.Median(late)
		return row
	})
	res.Rows = rows
	for _, row := range rows {
		res.Artifact.Addf("%-24s %-10d %-12s %-16.1f %-20s %s",
			row.Strategy, row.Sessions,
			fmt.Sprintf("%.3f%%", row.InducedLoss*100),
			row.Aggregate,
			fmt.Sprintf("%.1f / %.1f", row.EarlyMB, row.LateMB),
			row.Mix)
	}
	res.Artifact.Addf("synchronized buffering phases slam the queue; late joiners stream into the backlog")
	return res
}
