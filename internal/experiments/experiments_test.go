package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// testOpts keeps test runtimes reasonable: fewer videos and shorter
// captures than the benches, still enough for the shape assertions.
func testOpts() Options {
	return Options{N: 4, Seed: 3, Duration: 120 * time.Second}
}

func TestTable1MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Table1(testOpts())
	ok, total := res.Matches()
	if total != 16 {
		t.Fatalf("expected 16 cells, got %d", total)
	}
	// Allow at most one divergent cell (the iPad's Multiple/Short
	// boundary is genuinely fuzzy in the paper too).
	if ok < total-1 {
		t.Fatalf("only %d/%d cells match the paper:\n%s", ok, total, res.Artifact.String())
	}
	if !strings.Contains(res.Artifact.String(), "Flash") {
		t.Fatal("artifact must render the matrix")
	}
}

func TestFigure1Phases(t *testing.T) {
	res := Figure1(testOpts())
	if res.BufferingEnd <= 0 || res.BufferedBytes <= 0 {
		t.Fatalf("no buffering phase: %+v", res)
	}
	if res.Blocks == 0 {
		t.Fatal("no steady-state cycles")
	}
	if res.Accumulation < 1.0 || res.Accumulation > 1.5 {
		t.Fatalf("accumulation = %.2f, want ~1.25", res.Accumulation)
	}
}

func TestFigure2WindowSignature(t *testing.T) {
	res := Figure2(testOpts())
	if len(res.FlashDownload) == 0 || len(res.HTML5Download) == 0 {
		t.Fatal("missing download series")
	}
	// IE/HTML5 closes its receive window periodically; Flash does not.
	if res.HTML5WindowZeroes == 0 {
		t.Fatal("HTML5 on IE must show receive-window-empty events (client pull pacing)")
	}
	if res.FlashWindowZeroes > res.HTML5WindowZeroes/10 {
		t.Fatalf("Flash shows %d window zeroes vs HTML5 %d; server pacing should keep the window open",
			res.FlashWindowZeroes, res.HTML5WindowZeroes)
	}
}

func TestFigure3BufferingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure3(testOpts())
	// Flash: ~40 s of playback buffered in every network.
	for name, c := range res.PlaybackCDF {
		if c.N() == 0 {
			t.Fatalf("%s: no samples", name)
		}
		if m := c.Median(); m < 25 || m > 55 {
			t.Errorf("%s: median buffered playback %.1f s, want ~40", name, m)
		}
	}
	// Strong correlation for Flash, weak for HTML5.
	if res.FlashCorrelation < 0.7 {
		t.Errorf("Flash corr = %.2f, want strong (paper 0.85)", res.FlashCorrelation)
	}
	if math.Abs(res.HTML5Correlation) > 0.6 {
		t.Errorf("HTML5 corr = %.2f, want weak (paper 0.41)", res.HTML5Correlation)
	}
	// HTML5 buffering tops out at 10-15 MB regardless of rate (short
	// videos can be smaller than the target — they download fully).
	atTarget := 0
	for _, p := range res.HTML5Scatter {
		if p[1] > 18 {
			t.Errorf("HTML5 buffering %.1f MB at %.2f Mbps, want <= 15 MB", p[1], p[0])
		}
		if p[1] >= 8 {
			atTarget++
		}
	}
	if atTarget == 0 {
		t.Error("no HTML5 session reached the 10-15 MB buffering target")
	}
}

func TestFigure4FlashSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure4(testOpts())
	// 64 kB dominant block size.
	if res.DominantBlockKB < 48 || res.DominantBlockKB > 90 {
		t.Fatalf("dominant block = %.0f kB, want ~64\n%s", res.DominantBlockKB, res.Artifact.String())
	}
	if res.MedianAccum < 1.1 || res.MedianAccum > 1.4 {
		t.Fatalf("median accumulation = %.2f, want ~1.25", res.MedianAccum)
	}
	// Lossy networks show larger spread (merged cycles) but the
	// median must stay near 64 kB everywhere.
	for name, c := range res.BlockCDF {
		if c.N() == 0 {
			continue
		}
		if m := c.Median(); m < 40 || m > 160 {
			t.Errorf("%s: median block %.0f kB, want near 64", name, m)
		}
	}
}

func TestFigure5Html5SteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure5(testOpts())
	if res.DominantBlockKB < 200 || res.DominantBlockKB > 330 {
		t.Fatalf("dominant block = %.0f kB, want ~256\n%s", res.DominantBlockKB, res.Artifact.String())
	}
	if res.MedianAccum < 0.95 || res.MedianAccum > 1.2 {
		t.Fatalf("median accumulation = %.2f, want ~1.06", res.MedianAccum)
	}
}

func TestFigure6LongCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure6(testOpts())
	if res.ShareLong < 0.6 {
		t.Fatalf("only %.0f%% of blocks exceed 2.5 MB; long ON-OFF should dominate\n%s",
			res.ShareLong*100, res.Artifact.String())
	}
	for label, c := range res.BlockCDF {
		if c.N() == 0 {
			continue
		}
		if m := c.Median(); m < 2.5 {
			t.Errorf("%s: median block %.1f MB, want > 2.5", label, m)
		}
	}
}

func TestFigure7IPad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure7(testOpts())
	// Video1 (high rate) uses many connections.
	if res.Conns1 < 8 {
		t.Fatalf("Video1 used %d connections, want many", res.Conns1)
	}
	// Block size grows with the encoding rate.
	if res.Correlation < 0.6 {
		t.Fatalf("corr(rate, block) = %.2f, want clearly positive\n%s", res.Correlation, res.Artifact.String())
	}
}

func TestFigure8Decoupled(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure8(testOpts())
	if res.NoSteadyShare < 0.9 {
		t.Fatalf("HD sessions with no steady state = %.0f%%, want ~all", res.NoSteadyShare*100)
	}
	// Download rate must not track the encoding rate; it should sit
	// near the line rate instead.
	if res.Correlation > 0.5 {
		t.Fatalf("corr = %.2f, want decoupled", res.Correlation)
	}
	for _, p := range res.Scatter {
		if p[1] < 3*p[0] {
			t.Errorf("download %.1f Mbps at enc %.1f Mbps: bulk transfer should run far above the encoding rate", p[1], p[0])
		}
	}
}

func TestFigure9AckClockAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := testOpts()
	off := Figure9(o, false)
	on := Figure9(o, true)
	// Without idle reset, the Flash server blasts the whole 64 kB
	// block in the first RTT.
	flashOff := off.FirstRTT["Flash"]
	if flashOff.N() == 0 || flashOff.Median() < 48 {
		t.Fatalf("Flash first-RTT median = %.0f kB, want ~64 (no ACK clock)", flashOff.Median())
	}
	// With RFC 5681 idle reset, the restart window bounds the burst.
	flashOn := on.FirstRTT["Flash"]
	if flashOn.N() == 0 || flashOn.Median() >= flashOff.Median() {
		t.Fatalf("idle reset must shrink the first-RTT burst: %.0f kB vs %.0f kB",
			flashOn.Median(), flashOff.Median())
	}
	// Applications with larger blocks show larger first-RTT bursts
	// (the Figure 9 per-application separation).
	chrome := off.FirstRTT["Chrome"]
	if chrome.N() > 0 && chrome.Median() <= flashOff.Median() {
		t.Errorf("Chrome first-RTT %.0f kB should exceed Flash %.0f kB", chrome.Median(), flashOff.Median())
	}
}

func TestFigure10NetflixTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure10(testOpts())
	if res.PCStrategy != analysis.ShortOnOff || res.IPadStrategy != analysis.ShortOnOff {
		t.Fatalf("PC=%v iPad=%v, want Short ON-OFF", res.PCStrategy, res.IPadStrategy)
	}
	if res.AndroidStrategy != analysis.LongOnOff {
		t.Fatalf("Android=%v, want Long ON-OFF", res.AndroidStrategy)
	}
	if res.PCConns < 5 || res.AndConns != 1 {
		t.Fatalf("conns: PC=%d (want many) Android=%d (want 1)", res.PCConns, res.AndConns)
	}
}

func TestFigure11NetflixBuffering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure11(testOpts())
	pc := res.Buffering["PC/Academic"].Median()
	ipad := res.Buffering["iPad/Academic"].Median()
	android := res.Buffering["Android/Academic"].Median()
	// Ordering: PC (~50 MB) > Android (~40 MB) > iPad (~10 MB).
	if !(pc > android && android > ipad) {
		t.Fatalf("buffering ordering violated: PC=%.1f Android=%.1f iPad=%.1f\n%s",
			pc, android, ipad, res.Artifact.String())
	}
	if pc < 30 || pc > 70 {
		t.Errorf("PC buffering %.1f MB, want ~50", pc)
	}
	if ipad < 5 || ipad > 20 {
		t.Errorf("iPad buffering %.1f MB, want ~10", ipad)
	}
	if android < 25 || android > 55 {
		t.Errorf("Android buffering %.1f MB, want ~40", android)
	}
}

func TestFigure12NetflixBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Figure12(testOpts())
	pc := res.Blocks["PC/Academic"]
	android := res.Blocks["Android/Academic"]
	if pc.N() == 0 || android.N() == 0 {
		t.Fatal("missing block samples")
	}
	// PC blocks below 2.5 MB but above YouTube's 64/256 kB.
	if m := pc.Median(); m < 0.5 || m >= 2.5 {
		t.Fatalf("PC median block %.2f MB, want in (0.5, 2.5)", m)
	}
	// Android blocks are long-cycle sized.
	if m := android.Median(); m < 2.5 {
		t.Fatalf("Android median block %.2f MB, want > 2.5", m)
	}
}

func TestTable2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Table2(testOpts())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	no, long, short := res.Rows[0], res.Rows[1], res.Rows[2]
	// Table 2's ordering: buffer occupancy and unused bytes are
	// Large (No) > Moderate (Long) > Small (Short).
	if !(no.MaxAheadMB > long.MaxAheadMB && long.MaxAheadMB > short.MaxAheadMB) {
		t.Fatalf("buffer-ahead ordering violated:\n%s", res.Artifact.String())
	}
	if !(no.UnusedMB > long.UnusedMB && long.UnusedMB > short.UnusedMB) {
		t.Fatalf("unused-bytes ordering violated:\n%s", res.Artifact.String())
	}
}

func TestModelExperiments(t *testing.T) {
	o := testOpts()
	agg := ModelAggregate(o)
	if agg.MaxMeanErr > 0.1 || agg.MaxVarErr > 0.3 {
		t.Fatalf("model validation errors too large: mean %.1f%% var %.1f%%",
			agg.MaxMeanErr*100, agg.MaxVarErr*100)
	}
	sm := ModelSmoothness(o)
	for i := 1; i < len(sm.CoV); i++ {
		if sm.CoV[i] >= sm.CoV[i-1] {
			t.Fatalf("CoV must fall with encoding rate: %v", sm.CoV)
		}
	}
	mi := ModelInterruption(o)
	if math.Abs(mi.WorkedExample-53.333) > 0.01 {
		t.Fatalf("worked example = %v", mi.WorkedExample)
	}
	mw := ModelWaste(o)
	if len(mw.Rows) != 3 {
		t.Fatal("waste rows")
	}
	// Ordering: short ON-OFF wastes least, bulk wastes most.
	if !(mw.Rows[2].WasteMbps > mw.Rows[1].WasteMbps && mw.Rows[1].WasteMbps > mw.Rows[0].WasteMbps) {
		t.Fatalf("waste ordering violated:\n%s", mw.Artifact.String())
	}
}

func TestArtifactRendering(t *testing.T) {
	a := Artifact{Title: "T"}
	a.Addf("x=%d", 1)
	a.AddBlock("l1\nl2\n")
	s := a.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "x=1") || !strings.Contains(s, "l2") {
		t.Fatalf("artifact = %q", s)
	}
}

func TestSampleVideosBounds(t *testing.T) {
	o := testOpts()
	vids := netflixSample(o)
	if len(vids) != o.N {
		t.Fatalf("sample size %d, want %d", len(vids), o.N)
	}
}
