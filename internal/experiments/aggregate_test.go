package experiments

import (
	"testing"
	"time"
)

func TestAggregateLossOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{N: 3, Seed: 5, Duration: 90 * time.Second}
	res := AggregateLoss(o)
	if len(res.Rows) != 3 {
		t.Fatal("rows")
	}
	short, long, bulk := res.Rows[0], res.Rows[1], res.Rows[2]
	// Bulk transfers must induce the most queue loss.
	if !(bulk.InducedLoss > short.InducedLoss) {
		t.Fatalf("bulk should induce more loss than short ON-OFF:\n%s", res.Artifact.String())
	}
	// Rate-limited strategies deliver close to their model rate.
	for _, r := range []AggregateRow{short, long} {
		if r.MeanRateMbps < 0.5*r.ModelMean || r.MeanRateMbps > 1.8*r.ModelMean {
			t.Errorf("%s: measured %.1f Mbps vs model %.1f", r.Strategy, r.MeanRateMbps, r.ModelMean)
		}
	}
	_ = long
}

func TestAggregateFluidCheck(t *testing.T) {
	res := AggregateFluidCheck(Options{N: 4, Seed: 2})
	if len(res.PacketVar) != 2 || res.FluidVar <= 0 {
		t.Fatalf("fluid check incomplete: %+v", res.PacketVar)
	}
}
