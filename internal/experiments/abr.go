package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/scenario"
)

// The ABR experiment family closes the loop the paper leaves open:
// its Table-1 players react to congestion only through TCP, so a
// bandwidth drop degrades them into stalls — the client-side answer
// is switching rendition rungs. AbrRateDrop runs that comparison at
// fleet scale under the PR 2 rate-drop timeline.

// AbrRow is one controller's fleet outcome under the rate drop.
type AbrRow struct {
	Controller  string
	Clients     int
	RebufP50    float64 // rebuffer events per client
	RebufP90    float64
	StallSecP50 float64 // rebuffer seconds per client
	StallSecP90 float64
	StartupP50  float64 // startup delay seconds
	SwitchP50   float64 // rendition switches per client
	FetchedP50  float64 // duration-weighted mean fetched Mbps
	RungShare   []float64
	CoreLoss    float64
}

// AbrRateDropResult is the controller sweep.
type AbrRateDropResult struct {
	Rows     []AbrRow
	Artifact Artifact
}

// abrDropMbps is the post-drop aggregation-link rate: with the
// default 32 clients per 200 Mbps aggregation link, 24 Mbps leaves
// 0.75 Mbps per client — between the two bottom ladder rungs, so a
// controller that refuses to leave the top rung cannot avoid stalls.
const abrDropMbps = 24

// abrFleet builds one controller's fleet: o.N aggregation groups of
// 32 adaptive clients each (one tree shard per group), streaming a
// 900 s laddered title while every aggregation link drops to
// abrDropMbps at one third of the horizon.
func abrFleet(kind scenario.PlayerKind, o Options) scenario.Fleet {
	return scenario.Fleet{
		Name:     "abr-ratedrop/" + kind.String(),
		Mix:      []scenario.MixEntry{{Player: kind, Weight: 1}},
		Clients:  o.N * 32,
		Shards:   o.N,
		Duration: o.Duration,
		Arrival:  scenario.Arrival{Kind: scenario.Staggered, Window: o.Duration / 6},
		Down:     netem.Dynamics{}.Then(netem.RateStep(o.Duration/3, abrDropMbps*netem.Mbps)),
		Seed:     o.Seed + 31,
		Video:    media.Video{Duration: 900 * time.Second, Resolution: "adaptive"}.WithLadder(media.DefaultLadder()...),
	}
}

// AbrRateDrop streams three fleets — the fixed-top-rung null
// controller, the throughput-EWMA rate rule, and the BBA-style
// buffer-based controller — through the same mid-run aggregation-tier
// rate drop, and compares playback QoE. The headline: the adaptive
// controllers trade bitrate for near-zero rebuffering (they walk down
// the ladder as the drop bites), while the fixed-rung fleet keeps
// requesting 3.8 Mbps through a 0.75 Mbps share and stalls for most
// of the post-drop horizon. Results are bit-identical for any worker
// count; scale comes from sharding, one tree per aggregation group.
func AbrRateDrop(o Options) *AbrRateDropResult {
	o = o.withDefaults()
	kinds := []scenario.PlayerKind{scenario.AbrFixed, scenario.AbrRate, scenario.AbrBuffer}
	res := &AbrRateDropResult{Artifact: Artifact{Title: "Extension: ABR controllers vs a fixed rung under a fleet-scale rate drop"}}
	res.Artifact.Addf("%d clients/controller on %d x 200 Mbps agg links; drop to %d Mbps (0.75 Mbps/client) at t=%v of %v",
		o.N*32, o.N, abrDropMbps, o.Duration/3, o.Duration)
	res.Artifact.Addf("%-12s %-8s %-16s %-18s %-10s %-10s %-10s", "controller", "clients",
		"rebuffers p50/p90", "stall s p50/p90", "switches", "Mbps p50", "rungs (occupancy)")
	for _, k := range kinds {
		f := abrFleet(k, o)
		r := scenario.RunFleet(o.pool(), f)
		row := AbrRow{
			Controller:  strings.TrimPrefix(k.String(), "abr-"),
			Clients:     r.Clients,
			RebufP50:    r.RebufCount.Quantile(0.5),
			RebufP90:    r.RebufCount.Quantile(0.9),
			StallSecP50: r.RebufSec.Quantile(0.5),
			StallSecP90: r.RebufSec.Quantile(0.9),
			StartupP50:  r.StartupSec.Quantile(0.5),
			SwitchP50:   r.SwitchCount.Quantile(0.5),
			FetchedP50:  r.FetchedMbps.Quantile(0.5),
			RungShare:   r.RungShare(),
			CoreLoss:    r.InducedCoreLoss,
		}
		res.Rows = append(res.Rows, row)
		shares := make([]string, len(row.RungShare))
		for i, s := range row.RungShare {
			shares[i] = fmt.Sprintf("%.0f%%", s*100)
		}
		res.Artifact.Addf("%-12s %-8d %-16s %-18s %-10s %-10.2f %s",
			row.Controller, row.Clients,
			fmt.Sprintf("%.0f / %.0f", row.RebufP50, row.RebufP90),
			fmt.Sprintf("%.1f / %.1f", row.StallSecP50, row.StallSecP90),
			fmt.Sprintf("%.0f", row.SwitchP50),
			row.FetchedP50, strings.Join(shares, " "))
	}
	res.Artifact.Addf("a ladder is the client-side answer to congestion: adaptive fleets trade bitrate for smooth playback")
	return res
}
