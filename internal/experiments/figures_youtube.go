package experiments

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// Figure1Result summarizes the phase anatomy of one session (Figure 1).
type Figure1Result struct {
	BufferingEnd  time.Duration
	BufferedBytes int64
	SteadyRate    float64
	Accumulation  float64
	Blocks        int
	Artifact      Artifact
}

// Figure1 runs a single Flash session and reports its phases.
func Figure1(o Options) *Figure1Result {
	o = o.withDefaults()
	v := media.Video{ID: 21, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	r := runYouTube(v, player.NewFlashPlayer("Internet Explorer"), netem.Research, o.Seed, o.Duration)
	a := r.Analysis
	res := &Figure1Result{
		BufferingEnd:  a.BufferingEnd,
		BufferedBytes: a.BufferedBytes,
		SteadyRate:    a.SteadyRate,
		Accumulation:  a.AccumulationRatio,
		Blocks:        len(a.Blocks),
		Artifact:      Artifact{Title: "Figure 1: phases of video download"},
	}
	res.Artifact.Addf("buffering phase : %.1f s, %.2f MB (%.1f s of playback)",
		a.BufferingEnd.Seconds(), mb(a.BufferedBytes), a.PlaybackBuffered())
	res.Artifact.Addf("steady state    : %d ON-OFF cycles, average rate %.2f Mbps", len(a.Blocks), mbps(a.SteadyRate))
	res.Artifact.Addf("block size      : median %.0f kB", kb(a.MedianBlock()))
	res.Artifact.Addf("accumulation    : %.2f (steady rate / encoding rate)", a.AccumulationRatio)
	return res
}

// SeriesPoint is one (t, value) sample of a figure curve.
type SeriesPoint struct {
	T time.Duration
	V float64
}

// Figure2Result holds the short ON-OFF traces of Figure 2: download
// amount and receive window evolution for Flash vs HTML5 on IE.
type Figure2Result struct {
	FlashDownload []SeriesPoint
	HTML5Download []SeriesPoint
	FlashWindow   []SeriesPoint
	HTML5Window   []SeriesPoint
	// HTML5WindowZeroes counts receive-window-empty observations in
	// steady state — IE's pull throttling signature.
	HTML5WindowZeroes int
	FlashWindowZeroes int
	Artifact          Artifact
}

// Figure2 reproduces the paired Flash/HTML5 traces on IE.
func Figure2(o Options) *Figure2Result {
	o = o.withDefaults()
	fv := media.Video{ID: 22, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	hv := media.Video{ID: 23, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.HTML5, Resolution: "360p"}
	rs := runSessions(o, []session.Config{
		ytConfig(fv, player.NewFlashPlayer("Internet Explorer"), netem.Research, o.Seed, o.Duration),
		ytConfig(hv, player.NewIEHtml5(), netem.Research, o.Seed+1, o.Duration),
	})
	fr, hr := rs[0], rs[1]

	res := &Figure2Result{Artifact: Artifact{Title: "Figure 2: short ON-OFF cycles (IE), download amount and TCP receive window"}}
	res.FlashDownload = downloadSeries(fr, 40)
	res.HTML5Download = downloadSeries(hr, 40)
	res.FlashWindow, res.FlashWindowZeroes = windowSeries(fr, 40)
	res.HTML5Window, res.HTML5WindowZeroes = windowSeries(hr, 40)

	res.Artifact.Addf("%-8s %-16s %-16s %-14s %-14s", "t(s)", "Flash DL (MB)", "HTML5 DL (MB)", "Flash wnd(kB)", "HTML5 wnd(kB)")
	for i := 0; i < len(res.FlashDownload) && i < len(res.HTML5Download); i += 4 {
		f, h := res.FlashDownload[i], res.HTML5Download[i]
		fw := sampleAt(res.FlashWindow, f.T)
		hw := sampleAt(res.HTML5Window, f.T)
		res.Artifact.Addf("%-8.1f %-16.2f %-16.2f %-14.0f %-14.0f",
			f.T.Seconds(), f.V/1e6, h.V/1e6, fw/1e3, hw/1e3)
	}
	res.Artifact.Addf("HTML5 receive-window-empty observations: %d (Flash: %d)", res.HTML5WindowZeroes, res.FlashWindowZeroes)
	return res
}

func downloadSeries(r *session.Result, points int) []SeriesPoint {
	raw := r.Download
	out := make([]SeriesPoint, len(raw))
	for i, p := range raw {
		out[i] = SeriesPoint{T: p.TS, V: float64(p.Bytes)}
	}
	return resample(out, points)
}

func windowSeries(r *session.Result, points int) ([]SeriesPoint, int) {
	var out []SeriesPoint
	zeroes := 0
	for _, wp := range r.Windows {
		out = append(out, SeriesPoint{T: wp.TS, V: float64(wp.Window)})
		if wp.Window == 0 {
			zeroes++
		}
	}
	return resample(out, points*4), zeroes
}

// resample thins a series to about n points, keeping endpoints.
func resample(s []SeriesPoint, n int) []SeriesPoint {
	if len(s) <= n || n <= 0 {
		return s
	}
	out := make([]SeriesPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s[i*(len(s)-1)/(n-1)])
	}
	return out
}

func sampleAt(s []SeriesPoint, t time.Duration) float64 {
	v := 0.0
	for _, p := range s {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Figure3Result covers buffering-phase measurements (Figure 3).
type Figure3Result struct {
	// PlaybackCDF maps network name to the CDF of buffered playback
	// seconds for Flash videos (Figure 3a).
	PlaybackCDF map[string]*stats.CDF
	// FlashCorrelation is corr(encoding rate, buffered bytes) for
	// Flash (the paper: 0.85).
	FlashCorrelation float64
	// HTML5Scatter is (encoding rate Mbps, buffering MB) for HTML5 on
	// IE (Figure 3b).
	HTML5Scatter [][2]float64
	// HTML5Correlation is the paper's weak 0.41.
	HTML5Correlation float64
	Artifact         Artifact
}

// Figure3 measures the buffering phase across the four networks.
func Figure3(o Options) *Figure3Result {
	o = o.withDefaults()
	res := &Figure3Result{
		PlaybackCDF: map[string]*stats.CDF{},
		Artifact:    Artifact{Title: "Figure 3: amount downloaded during the buffering phase"},
	}
	flash := sampleVideos(media.YouFlash(o.N*4, o.Seed), o.N)
	html := sampleVideos(media.YouHtml(o.N*4, o.Seed+100), o.N)
	var cfgs []session.Config
	for _, net := range netem.Profiles() {
		for i, v := range flash {
			cfgs = append(cfgs, ytConfig(v, player.NewFlashPlayer("Internet Explorer"), net, o.Seed+int64(i), o.Duration))
		}
	}
	for i, v := range html {
		cfgs = append(cfgs, ytConfig(v, player.NewIEHtml5(), netem.Research, o.Seed+200+int64(i), o.Duration))
	}
	results := runSessions(o, cfgs)

	var allRates, allBuf []float64
	k := 0
	for _, net := range netem.Profiles() {
		var playback []float64
		for _, v := range flash {
			a := results[k].Analysis
			k++
			if a.Media.EncodingRate <= 0 {
				continue
			}
			playback = append(playback, a.PlaybackBuffered())
			if net.Name == "Research" {
				allRates = append(allRates, v.EncodingRate)
				allBuf = append(allBuf, float64(a.BufferedBytes))
			}
		}
		res.PlaybackCDF[net.Name] = stats.NewCDF(playback)
	}
	res.FlashCorrelation = stats.Pearson(allRates, allBuf)

	var hRates, hBuf []float64
	for _, v := range html {
		a := results[k].Analysis
		k++
		res.HTML5Scatter = append(res.HTML5Scatter, [2]float64{v.EncodingRate / 1e6, mb(a.BufferedBytes)})
		hRates = append(hRates, v.EncodingRate)
		hBuf = append(hBuf, float64(a.BufferedBytes))
	}
	res.HTML5Correlation = stats.Pearson(hRates, hBuf)

	res.Artifact.Addf("(a) CDF of buffered playback time, Flash videos:")
	for _, net := range netem.Profiles() {
		c := res.PlaybackCDF[net.Name]
		res.Artifact.Addf("  %-10s median %.1f s (n=%d)", net.Name, c.Median(), c.N())
	}
	res.Artifact.Addf("  corr(encoding rate, buffered bytes) = %.2f (paper: 0.85)", res.FlashCorrelation)
	res.Artifact.Addf("(b) HTML5 on IE, buffering vs encoding rate (Research):")
	for _, p := range res.HTML5Scatter {
		res.Artifact.Addf("  %.2f Mbps -> %.1f MB", p[0], p[1])
	}
	res.Artifact.Addf("  corr = %.2f (paper: 0.41, weak)", res.HTML5Correlation)
	return res
}

// SteadyStateResult covers Figures 4 and 5: block-size and
// accumulation-ratio distributions per network.
type SteadyStateResult struct {
	BlockCDF map[string]*stats.CDF // kB
	AccumCDF map[string]*stats.CDF
	// DominantBlockKB is the modal block size across all networks.
	DominantBlockKB float64
	// MedianAccum is the median accumulation ratio on the clean
	// (Research) network; lossy networks inflate the measurement when
	// the buffering phase splits early — the paper reports the same
	// wide spread in Figure 5(b) and calls it a technique artifact.
	MedianAccum float64
	Artifact    Artifact
}

func steadyState(o Options, title string, videos []media.Video, mk func() player.Player) *SteadyStateResult {
	res := &SteadyStateResult{
		BlockCDF: map[string]*stats.CDF{},
		AccumCDF: map[string]*stats.CDF{},
		Artifact: Artifact{Title: title},
	}
	var cfgs []session.Config
	for _, net := range netem.Profiles() {
		for i, v := range videos {
			cfgs = append(cfgs, ytConfig(v, mk(), net, o.Seed+int64(i), o.Duration))
		}
	}
	results := runSessions(o, cfgs)
	var allBlocks, allAccum []float64
	k := 0
	for _, net := range netem.Profiles() {
		var blocks, accums []float64
		for range videos {
			a := results[k].Analysis
			k++
			for _, b := range a.Blocks {
				blocks = append(blocks, float64(b)/1e3)
			}
			if a.AccumulationRatio > 0 {
				accums = append(accums, a.AccumulationRatio)
			}
		}
		res.BlockCDF[net.Name] = stats.NewCDF(blocks)
		res.AccumCDF[net.Name] = stats.NewCDF(accums)
		allBlocks = append(allBlocks, blocks...)
		allAccum = append(allAccum, accums...)
	}
	h := stats.NewHistogram(allBlocks, 16) // 16 kB bins
	res.DominantBlockKB, _ = h.Mode()
	if c := res.AccumCDF["Research"]; c != nil && c.N() > 0 {
		res.MedianAccum = c.Median()
	} else {
		res.MedianAccum = stats.Median(allAccum)
	}
	_ = allAccum

	res.Artifact.Addf("%-10s %-18s %-18s %-16s", "Network", "median blk (kB)", "p90 blk (kB)", "median accum")
	for _, net := range netem.Profiles() {
		b, a := res.BlockCDF[net.Name], res.AccumCDF[net.Name]
		res.Artifact.Addf("%-10s %-18.0f %-18.0f %-16.2f", net.Name, b.Median(), b.Quantile(0.9), a.Median())
	}
	res.Artifact.Addf("dominant block %.0f kB, overall median accumulation %.2f", res.DominantBlockKB, res.MedianAccum)
	return res
}

// Figure4 measures the Flash steady state (64 kB blocks, accumulation
// 1.25).
func Figure4(o Options) *SteadyStateResult {
	o = o.withDefaults()
	videos := sampleVideos(media.YouFlash(o.N*4, o.Seed), o.N)
	return steadyState(o, "Figure 4: steady state for Flash videos",
		videos, func() player.Player { return player.NewFlashPlayer("Internet Explorer") })
}

// Figure5 measures the HTML5-on-IE steady state (256 kB blocks,
// accumulation ~1.06).
func Figure5(o Options) *SteadyStateResult {
	o = o.withDefaults()
	videos := sampleVideos(media.YouHtml(o.N*4, o.Seed+1), o.N)
	return steadyState(o, "Figure 5: steady state for HTML5 videos on Internet Explorer",
		videos, func() player.Player { return player.NewIEHtml5() })
}

// Figure6Result covers the long ON-OFF strategy.
type Figure6Result struct {
	// Download and window trace of one Chrome session (Figure 6a).
	Download []SeriesPoint
	Window   []SeriesPoint
	// BlockCDF per series label — Chrome on each network plus Android
	// on Research (Figure 6b), in MB.
	BlockCDF map[string]*stats.CDF
	// ShareLong is the fraction of blocks above 2.5 MB.
	ShareLong float64
	Artifact  Artifact
}

// Figure6 reproduces the long ON-OFF traces and block sizes.
func Figure6(o Options) *Figure6Result {
	o = o.withDefaults()
	res := &Figure6Result{BlockCDF: map[string]*stats.CDF{}, Artifact: Artifact{Title: "Figure 6: long ON-OFF cycles"}}

	tv := media.Video{ID: 24, EncodingRate: 1.2e6, Duration: 600 * time.Second, Container: media.HTML5, Resolution: "360p"}
	videos := sampleVideos(media.YouHtml(o.N*4, o.Seed+2), o.N)
	mob := sampleVideos(media.YouMob(o.N*4, o.Seed+3), o.N)
	cfgs := []session.Config{ytConfig(tv, player.NewChromeHtml5(), netem.Research, o.Seed, o.Duration)}
	for _, net := range netem.Profiles() {
		for i, v := range videos {
			cfgs = append(cfgs, ytConfig(v, player.NewChromeHtml5(), net, o.Seed+int64(i), o.Duration))
		}
	}
	for i, v := range mob {
		cfgs = append(cfgs, ytConfig(v, player.NewAndroidYouTube(), netem.Research, o.Seed+500+int64(i), o.Duration))
	}
	results := runSessions(o, cfgs)

	tr := results[0]
	res.Download = downloadSeries(tr, 40)
	res.Window, _ = windowSeries(tr, 40)

	long, total := 0, 0
	k := 1
	for _, net := range netem.Profiles() {
		var blocks []float64
		for range videos {
			for _, b := range results[k].Analysis.Blocks {
				blocks = append(blocks, mb(b))
				total++
				if b >= analysis.LongCycleBytes {
					long++
				}
			}
			k++
		}
		res.BlockCDF["Chrome/"+net.Name] = stats.NewCDF(blocks)
	}
	var blocks []float64
	for range mob {
		for _, b := range results[k].Analysis.Blocks {
			blocks = append(blocks, mb(b))
			total++
			if b >= analysis.LongCycleBytes {
				long++
			}
		}
		k++
	}
	res.BlockCDF["Android/Research"] = stats.NewCDF(blocks)
	if total > 0 {
		res.ShareLong = float64(long) / float64(total)
	}

	res.Artifact.Addf("(a) Chrome trace: %d download points, OFF periods tens of seconds", len(res.Download))
	res.Artifact.Addf("(b) block sizes:")
	// Fixed label order: map iteration would make the artifact differ
	// from run to run, breaking byte-identity checks.
	labels := make([]string, 0, len(res.BlockCDF))
	for _, net := range netem.Profiles() {
		labels = append(labels, "Chrome/"+net.Name)
	}
	labels = append(labels, "Android/Research")
	for _, label := range labels {
		if c := res.BlockCDF[label]; c != nil && c.N() > 0 {
			res.Artifact.Addf("  %-18s median %.1f MB p10 %.1f MB (n=%d)", label, c.Median(), c.Quantile(0.1), c.N())
		}
	}
	res.Artifact.Addf("share of blocks > 2.5 MB: %.0f%%", res.ShareLong*100)
	return res
}

// Figure7Result covers the iPad behaviour.
type Figure7Result struct {
	// Video1/Video2 download traces (Figure 7a).
	Video1, Video2 []SeriesPoint
	Conns1, Conns2 int
	// BlockVsRate is (encoding rate Mbps, mean block kB) over the
	// YouMob sample (Figure 7b).
	BlockVsRate [][2]float64
	Correlation float64
	Artifact    Artifact
}

// Figure7 reproduces the iPad's mixed strategies.
func Figure7(o Options) *Figure7Result {
	o = o.withDefaults()
	res := &Figure7Result{Artifact: Artifact{Title: "Figure 7: streaming strategies for YouTube on iPad"}}
	v1 := media.Video{ID: 25, EncodingRate: 2.5e6, Duration: 500 * time.Second, Container: media.HTML5, Resolution: "360p"}
	v2 := media.Video{ID: 26, EncodingRate: 0.4e6, Duration: 500 * time.Second, Container: media.HTML5, Resolution: "240p"}
	sample := sampleVideos(media.YouMob(o.N*4, o.Seed+4), o.N)
	cfgs := []session.Config{
		ytConfig(v1, player.NewIPadYouTube(), netem.Research, o.Seed, o.Duration),
		ytConfig(v2, player.NewIPadYouTube(), netem.Research, o.Seed+1, o.Duration),
	}
	for i, v := range sample {
		cfgs = append(cfgs, ytConfig(v, player.NewIPadYouTube(), netem.Research, o.Seed+100+int64(i), o.Duration))
	}
	results := runSessions(o, cfgs)
	r1, r2 := results[0], results[1]
	res.Video1 = downloadSeries(r1, 30)
	res.Video2 = downloadSeries(r2, 30)
	res.Conns1 = r1.Analysis.ConnCount
	res.Conns2 = r2.Analysis.ConnCount

	var rates, blocks []float64
	for i, v := range sample {
		r := results[2+i]
		bs := r.Analysis.Blocks
		if len(bs) == 0 {
			continue
		}
		var sum float64
		for _, b := range bs {
			sum += float64(b)
		}
		mean := sum / float64(len(bs))
		res.BlockVsRate = append(res.BlockVsRate, [2]float64{v.EncodingRate / 1e6, mean / 1e3})
		rates = append(rates, v.EncodingRate)
		blocks = append(blocks, mean)
	}
	res.Correlation = stats.Pearson(rates, blocks)

	res.Artifact.Addf("(a) Video1 (%.1f Mbps): %d connections; Video2 (%.1f Mbps): %d connections",
		v1.EncodingRate/1e6, res.Conns1, v2.EncodingRate/1e6, res.Conns2)
	res.Artifact.Addf("(b) mean block size vs encoding rate:")
	for _, p := range res.BlockVsRate {
		res.Artifact.Addf("  %.2f Mbps -> %.0f kB", p[0], p[1])
	}
	res.Artifact.Addf("corr(rate, block) = %.2f (paper: block size grows with the encoding rate)", res.Correlation)
	return res
}

// Figure8Result covers the no-ON-OFF strategy: download rate vs
// encoding rate.
type Figure8Result struct {
	// Scatter is (encoding rate Mbps, download rate Mbps).
	Scatter     [][2]float64
	Correlation float64
	// NoSteadyShare is the fraction of sessions with no steady state.
	NoSteadyShare float64
	Artifact      Artifact
}

// Figure8 streams HD videos (unpaced) and checks the decoupling.
func Figure8(o Options) *Figure8Result {
	o = o.withDefaults()
	res := &Figure8Result{Artifact: Artifact{Title: "Figure 8: no ON-OFF cycles (HD videos)"}}
	var rates, dl []float64
	noSteady := 0
	videos := sampleVideos(media.YouHD(o.N*4, o.Seed+5), o.N)
	cfgs := make([]session.Config, len(videos))
	for i, v := range videos {
		cfgs[i] = ytConfig(v, player.NewFlashPlayer("Mozilla Firefox"), netem.Research, o.Seed+int64(i), o.Duration)
	}
	results := runSessions(o, cfgs)
	for i, v := range videos {
		a := results[i].Analysis
		span := a.Duration.Seconds()
		if span <= 0 {
			continue
		}
		// Download rate over the active transfer (until the data ran
		// out or capture ended).
		var lastData time.Duration
		for _, c := range a.Cycles {
			lastData = c.End
		}
		if lastData <= 0 {
			continue
		}
		rate := float64(a.TotalBytes) * 8 / lastData.Seconds()
		res.Scatter = append(res.Scatter, [2]float64{v.EncodingRate / 1e6, rate / 1e6})
		rates = append(rates, v.EncodingRate)
		dl = append(dl, rate)
		if !a.HasSteadyState {
			noSteady++
		}
	}
	res.Correlation = stats.Pearson(rates, dl)
	res.NoSteadyShare = float64(noSteady) / float64(len(videos))
	for _, p := range res.Scatter {
		res.Artifact.Addf("%.2f Mbps encoded -> %.1f Mbps downloaded", p[0], p[1])
	}
	res.Artifact.Addf("corr(encoding rate, download rate) = %.2f (paper: uncorrelated)", res.Correlation)
	res.Artifact.Addf("sessions with no steady state: %.0f%%", res.NoSteadyShare*100)
	return res
}

// Figure9Result covers the ACK-clock measurement.
type Figure9Result struct {
	// FirstRTT maps application label to the CDF of bytes received in
	// the first RTT of steady-state ON periods (kB).
	FirstRTT map[string]*stats.CDF
	Artifact Artifact
}

// Figure9 measures the data received back-to-back at ON-period starts
// for each application. idleReset optionally enables the RFC 5681
// restart on the server, which restores the ACK clock — the ablation
// of the Section 5.1.5 discussion.
func Figure9(o Options, idleReset bool) *Figure9Result {
	o = o.withDefaults()
	title := "Figure 9: ACK clock (bytes in the first RTT of ON periods)"
	if idleReset {
		title += " [ablation: RFC 5681 idle reset ON]"
	}
	res := &Figure9Result{FirstRTT: map[string]*stats.CDF{}, Artifact: Artifact{Title: title}}

	flashV := media.Video{ID: 27, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	htmlV := media.Video{ID: 28, EncodingRate: 1e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	mobV := media.Video{ID: 29, EncodingRate: 2e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}

	apps := []struct {
		label string
		video media.Video
		mk    func() player.Player
	}{
		{"Flash", flashV, func() player.Player { return player.NewFlashPlayer("Internet Explorer") }},
		{"Int. Explorer", htmlV, func() player.Player { return player.NewIEHtml5() }},
		{"Chrome", htmlV, func() player.Player { return player.NewChromeHtml5() }},
		{"Android", htmlV, func() player.Player { return player.NewAndroidYouTube() }},
		{"iPad", mobV, func() player.Player { return player.NewIPadYouTube() }},
	}
	res.Artifact.Addf("%-15s %-14s %-14s %-8s", "Application", "median (kB)", "p90 (kB)", "samples")
	perApp := (o.N + 3) / 4
	var cfgs []session.Config
	for i, app := range apps {
		for j := 0; j < perApp; j++ {
			cfgs = append(cfgs, session.Config{
				Video: app.video, Service: session.YouTube, Player: app.mk(),
				Network: netem.Research, Seed: o.Seed + int64(i*10+j), Duration: o.Duration,
				ServerTCP: tcp.Config{IdleReset: idleReset},
			})
		}
	}
	results := runSessions(o, cfgs)
	for i, app := range apps {
		var samples []float64
		for j := 0; j < perApp; j++ {
			for _, b := range results[i*perApp+j].Analysis.FirstRTTBytes {
				samples = append(samples, kb(b))
			}
		}
		c := stats.NewCDF(samples)
		res.FirstRTT[app.label] = c
		res.Artifact.Addf("%-15s %-14.0f %-14.0f %-8d", app.label, c.Median(), c.Quantile(0.9), c.N())
	}
	return res
}
