package experiments

import "testing"

func TestAblationIdleReset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := AblationIdleReset(testOpts())
	if res.MedianOnKB >= res.MedianOffKB {
		t.Fatalf("idle reset must shrink the first-RTT burst: on=%.0f off=%.0f",
			res.MedianOnKB, res.MedianOffKB)
	}
	if res.MedianOffKB < 48 {
		t.Fatalf("without reset the full 64 kB block should arrive in one RTT, got %.0f", res.MedianOffKB)
	}
}

func TestAblationDelayedAck(t *testing.T) {
	res := AblationDelayedAck(testOpts())
	if res.AcksWith >= res.AcksWithout {
		t.Fatalf("delayed ACKs must reduce upstream packets: %d vs %d", res.AcksWith, res.AcksWithout)
	}
}

func TestAblationRecvBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := AblationRecvBuffer(testOpts())
	// Small buffers bind: zero-window ACKs appear; a huge buffer never
	// closes the window within the test horizon.
	if res.ZeroWindow[128<<10] == 0 || res.ZeroWindow[384<<10] == 0 {
		t.Fatalf("binding buffers must show zero windows: %+v", res.ZeroWindow)
	}
	// The oversized buffer delays window closure (it still fills
	// eventually - the transfer is bigger than the buffer), so it
	// must show fewer zero-window events than a binding buffer.
	if res.ZeroWindow[8<<20] >= res.ZeroWindow[384<<10] {
		t.Fatalf("an oversized buffer should close the window later/less: %+v", res.ZeroWindow)
	}
	// With the huge buffer the initial unpaced burst is buffer-sized:
	// pacing only begins once the window binds.
	if res.BurstByBuf[8<<20] < 8*res.BurstByBuf[384<<10] {
		t.Fatalf("oversized buffer should admit a buffer-sized burst: %+v", res.BurstByBuf)
	}
}

func TestAblationLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := AblationLoss(testOpts())
	if len(res.Rows) != 3 {
		t.Fatal("rows")
	}
	// Retransmissions grow with loss; the p90 block spread widens.
	if !(res.Rows[2][3] > res.Rows[0][3]) {
		t.Fatalf("retrans%% must grow with loss: %+v", res.Rows)
	}
	if !(res.Rows[2][2] >= res.Rows[0][2]) {
		t.Fatalf("block spread should widen with loss: %+v", res.Rows)
	}
}
