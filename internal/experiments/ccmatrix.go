package experiments

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// The CC matrix re-runs the paper's ON-OFF classification with the
// transport swapped out from under the players: every congestion
// controller crossed with every queue policy on one strained shared
// bottleneck. The paper measured strategies through one fixed
// transport (Reno-era senders behind drop-tail queues); this matrix
// asks how much of the observed wire behaviour was the strategy and
// how much was the transport underneath it.

// CcMatrixRow is one (congestion controller x queue policy) cell.
type CcMatrixRow struct {
	CC  string
	AQM string
	// Mix is the classified strategy mix across the cell's sessions —
	// the paper's ON-OFF taxonomy re-evaluated under this transport.
	Mix string
	// MedianBlockKB is the per-session median ON-OFF block size,
	// medianed across sessions.
	MedianBlockKB float64
	InducedLoss   float64
	// AqmShare is the fraction of bottleneck drops attributed to the
	// queue policy (0 under drop-tail, where only the hard cap drops).
	AqmShare      float64
	AggregateMbps float64
	// RebufferP50 is the median per-session stall time, seconds.
	RebufferP50 float64
}

// CcMatrixResult is the full 3x3 sweep.
type CcMatrixResult struct {
	Rows     []CcMatrixRow
	Artifact Artifact
}

// ccMatrixCell names one matrix cell.
type ccMatrixCell struct {
	cc, aqm string
}

// CcMatrix crosses every congestion controller with every queue
// policy on a strained shared bottleneck (four 1 Mbps Flash sessions
// into 3 Mbps, a deep 256 KiB buffer) and re-runs the ON-OFF
// classification per cell. The strain makes the transport visible:
// with drop-tail the deep queue only signals loss when it fills, and
// loss-based controllers recover at very different speeds, while the
// AQM policies shed early and keep the standing queue — and with it
// the effective RTT every block transfer sees — short.
func CcMatrix(o Options) *CcMatrixResult {
	o = o.withDefaults()
	var cells []ccMatrixCell
	for _, cc := range tcp.CCKinds() {
		for _, aqm := range netem.AqmKinds() {
			cells = append(cells, ccMatrixCell{cc: cc, aqm: aqm})
		}
	}
	rows := runner.Map(o.pool(), cells, func(ci int, c ccMatrixCell) CcMatrixRow {
		prof := netem.Profile{
			Name: "strained-" + c.aqm,
			Down: 3 * netem.Mbps, Up: 1 * netem.Mbps,
			RTT: 40 * time.Millisecond, Queue: 256 << 10, UpLoss: -1,
			AQM: netem.AqmConfig{Kind: c.aqm},
		}
		sp := scenario.Spec{
			Name:    "ccmatrix/" + c.cc + "/" + c.aqm,
			Profile: prof,
			Player:  scenario.Flash,
			Video: media.Video{
				ID: 800, EncodingRate: 1e6, Duration: 420 * time.Second,
				Resolution: "360p", Container: scenario.Flash.NativeContainer(),
			},
			Sessions:  4,
			Duration:  o.Duration,
			Seed:      o.Seed + int64(ci)*131,
			ServerTCP: tcp.Config{CC: c.cc},
		}
		shared := scenario.RunShared(sp)
		row := CcMatrixRow{
			CC:            c.cc,
			AQM:           c.aqm,
			Mix:           shared.StrategyMix(),
			InducedLoss:   shared.InducedLoss,
			AggregateMbps: shared.AggregateMbps,
		}
		if shared.Dropped > 0 {
			row.AqmShare = float64(shared.AqmDrops) / float64(shared.Dropped)
		}
		var blocks, stalls []float64
		for _, out := range shared.Outcomes {
			blocks = append(blocks, float64(out.Analysis.MedianBlock())/1e3)
			stalls = append(stalls, out.QoE.RebufferTime.Seconds())
		}
		row.MedianBlockKB = stats.Median(blocks)
		row.RebufferP50 = stats.Median(stalls)
		return row
	})

	res := &CcMatrixResult{
		Rows:     rows,
		Artifact: Artifact{Title: "CC matrix: ON-OFF classification across transports and queue policies"},
	}
	res.Artifact.Addf("4 x 1 Mbps Flash sessions share a strained 3 Mbps / 40 ms / 256 KiB bottleneck for %v", o.Duration)
	res.Artifact.Addf("%-8s %-10s %-26s %-12s %-10s %-10s %-10s %s",
		"cc", "aqm", "mix", "blk p50 KB", "loss", "aqm/drop", "agg Mbps", "stall p50")
	for _, row := range rows {
		res.Artifact.Addf("%-8s %-10s %-26s %-12.0f %-10s %-10.2f %-10.2f %.1fs",
			row.CC, row.AQM, row.Mix, row.MedianBlockKB,
			fmt.Sprintf("%.2f%%", row.InducedLoss*100),
			row.AqmShare, row.AggregateMbps, row.RebufferP50)
	}
	res.Artifact.Addf("the classification is transport-sensitive: the same player moves cells when the controller or queue policy changes")
	return res
}

// Cell returns the row for a (cc, aqm) pair, nil if absent.
func (r *CcMatrixResult) Cell(cc, aqm string) *CcMatrixRow {
	for i := range r.Rows {
		if r.Rows[i].CC == cc && r.Rows[i].AQM == aqm {
			return &r.Rows[i]
		}
	}
	return nil
}
