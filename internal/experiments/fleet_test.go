package experiments

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// TestAggregateBurstinessOrdering is the fleet acceptance criterion:
// at equal mean aggregation-link load, shifting the strategy mix from
// No ON-OFF toward Short ON-OFF must raise aggregation-link
// burstiness.
func TestAggregateBurstinessOrdering(t *testing.T) {
	res := AggregateBurstiness(Options{N: 2, Seed: 1, Duration: 150 * time.Second})
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 mixes, got %d", len(res.Rows))
	}
	no, short := res.Rows[0], res.Rows[len(res.Rows)-1]

	// Equal mean load: every row must offer the target within 15%.
	for _, row := range res.Rows {
		if math.Abs(row.MeanAggMbps-res.TargetMbps) > 0.15*res.TargetMbps {
			t.Fatalf("%s: mean agg load %.1f Mbps, target %.1f — rows are not load-matched\n%s",
				row.Mix, row.MeanAggMbps, res.TargetMbps, res.Artifact.String())
		}
		if row.CoreLoss > 0.01 {
			t.Fatalf("%s: %.2f%% core loss — burstiness would be congestion, not strategy\n%s",
				row.Mix, row.CoreLoss*100, res.Artifact.String())
		}
	}

	// The paper's aggregate claim, with margin: the Short ON-OFF end
	// must be clearly burstier than the No ON-OFF end.
	if short.AggCV < 1.5*no.AggCV {
		t.Fatalf("Short ON-OFF agg CV %.4f not > 1.5x No ON-OFF %.4f at equal load\n%s",
			short.AggCV, no.AggCV, res.Artifact.String())
	}
	if short.PeakToMean <= no.PeakToMean {
		t.Fatalf("Short ON-OFF peak/mean %.3f <= No ON-OFF %.3f\n%s",
			short.PeakToMean, no.PeakToMean, res.Artifact.String())
	}
	// Mixing Short ON-OFF clients in must not make the fleet smoother
	// than the pure No ON-OFF baseline.
	if mid := res.Rows[1]; mid.AggCV <= no.AggCV {
		t.Fatalf("50/50 mix agg CV %.4f <= No ON-OFF %.4f\n%s", mid.AggCV, no.AggCV, res.Artifact.String())
	}
}

// TestAggregateBurstinessDeterministic: the artifact is byte-identical
// for any worker count, like every other experiment.
func TestAggregateBurstinessDeterministic(t *testing.T) {
	o := Options{N: 1, Seed: 9, Duration: 60 * time.Second}
	a := AggregateBurstiness(o)
	o.Workers = runtime.NumCPU() + 2
	b := AggregateBurstiness(o)
	if a.Artifact.String() != b.Artifact.String() {
		t.Fatalf("artifact differs across worker counts:\n%s\nvs\n%s", a.Artifact.String(), b.Artifact.String())
	}
}
