package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func sampleSeg() *Segment {
	return &Segment{
		Flow: Flow{
			Src: EP(10, 0, 0, 1, 43211),
			Dst: EP(203, 0, 113, 5, 80),
		},
		Seq:     1000,
		Ack:     2000,
		Flags:   FlagACK | FlagPSH,
		Window:  256 << 10,
		Payload: []byte("GET /video HTTP/1.1\r\n"),
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	s := sampleSeg()
	b := s.Marshal()
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != s.Flow {
		t.Errorf("flow %v, want %v", got.Flow, s.Flow)
	}
	if got.Seq != s.Seq || got.Ack != s.Ack || got.Flags != s.Flags {
		t.Errorf("header mismatch: %+v vs %+v", got, s)
	}
	if got.Window != s.Window {
		t.Errorf("window %d, want %d (scale must round-trip)", got.Window, s.Window)
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Errorf("payload %q, want %q", got.Payload, s.Payload)
	}
	if got.PayloadLen != len(s.Payload) {
		t.Errorf("PayloadLen %d, want %d", got.PayloadLen, len(s.Payload))
	}
}

func TestMarshalZeroFilledPayload(t *testing.T) {
	s := sampleSeg()
	s.Payload = nil
	s.PayloadLen = 100
	b := s.Marshal()
	if len(b) != 140 {
		t.Fatalf("wire len %d, want 140", len(b))
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadLen != 100 {
		t.Fatalf("PayloadLen %d, want 100", got.PayloadLen)
	}
	for _, by := range got.Payload {
		if by != 0 {
			t.Fatal("synthetic payload must be zero-filled")
		}
	}
}

func TestParseTruncatedSnaplen(t *testing.T) {
	s := sampleSeg()
	s.Payload = bytes.Repeat([]byte{7}, 1000)
	full := s.Marshal()
	snap := full[:96] // typical tcpdump -s 96
	got, err := Parse(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadLen != 1000 {
		t.Errorf("original len from IP header = %d, want 1000", got.PayloadLen)
	}
	if len(got.Payload) != 96-40 {
		t.Errorf("captured payload = %d bytes, want 56", len(got.Payload))
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short input should fail")
	}
	b := sampleSeg().Marshal()
	b[0] = 0x65 // IPv6 version nibble
	if _, err := Parse(b); err == nil {
		t.Error("non-IPv4 should fail")
	}
	b = sampleSeg().Marshal()
	b[9] = 17 // UDP
	if _, err := Parse(b); err == nil {
		t.Error("non-TCP should fail")
	}
}

func TestWindowSaturation(t *testing.T) {
	s := sampleSeg()
	s.Window = 1 << 30 // larger than 65535 << WindowScale
	got, err := Parse(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != 0xFFFF<<WindowScale {
		t.Fatalf("saturated window = %d, want %d", got.Window, 0xFFFF<<WindowScale)
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Src: EP(1, 2, 3, 4, 5), Dst: EP(6, 7, 8, 9, 10)}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Fatalf("Reverse broken: %v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse must be identity")
	}
}

func TestFlagsAndStrings(t *testing.T) {
	s := &Segment{Flags: FlagSYN | FlagACK}
	if !s.HasFlag(FlagSYN) || !s.HasFlag(FlagACK) || s.HasFlag(FlagFIN) {
		t.Fatal("HasFlag broken")
	}
	if s.String() == "" || s.Flow.String() == "" {
		t.Fatal("String must be non-empty")
	}
	e := EP(192, 168, 1, 10, 8080)
	if e.String() != "192.168.1.10:8080" {
		t.Fatalf("endpoint string = %q", e.String())
	}
}

func TestIPChecksumValid(t *testing.T) {
	b := sampleSeg().Marshal()
	// Recompute including the stored checksum: result must be 0xFFFF
	// complemented to 0, i.e. the full sum folds to 0xFFFF.
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	if uint16(sum) != 0xFFFF {
		t.Fatalf("IP checksum does not verify: fold=%#x", sum)
	}
}

// Property: any header combination round-trips (with window quantized
// to the fixed scale).
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		if len(payload) > 1460 {
			payload = payload[:1460]
		}
		s := &Segment{
			Flow:    Flow{Src: EP(1, 1, 1, 1, 1000), Dst: EP(2, 2, 2, 2, 80)},
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  int(win) << WindowScale,
			Payload: payload,
		}
		got, err := Parse(s.Marshal())
		if err != nil {
			return false
		}
		return got.Seq == seq && got.Ack == ack && got.Flags == flags &&
			got.Window == int(win)<<WindowScale && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	s := sampleSeg()
	c := s.Clone()
	c.Seq = 999
	if s.Seq == 999 {
		t.Fatal("Clone must not alias header fields")
	}
}

func BenchmarkMarshal(b *testing.B) {
	s := sampleSeg()
	s.Payload = make([]byte, 1460)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Marshal()
	}
}

func BenchmarkParse(b *testing.B) {
	s := sampleSeg()
	s.Payload = make([]byte, 1460)
	wire := s.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
