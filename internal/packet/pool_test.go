package packet

import "testing"

func TestPoolReusesAndZeroes(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	s.Seq = 42
	s.Payload = []byte{1, 2, 3}
	s.PayloadLen = 9
	s.Flags = FlagSYN
	p.Put(s)
	got := p.Get()
	if got != s {
		t.Fatal("pool must reuse the recycled struct")
	}
	if got.Seq != 0 || got.Payload != nil || got.PayloadLen != 0 || got.Flags != 0 || got.Window != 0 {
		t.Fatalf("recycled segment not zeroed: %+v", got)
	}
	if p.Get() == s {
		t.Fatal("empty pool must allocate a fresh struct")
	}
	p.Put(nil) // must not panic or store
	if p.Get() == nil {
		t.Fatal("nil must not enter the free list")
	}
}

// Slab carving must hand out distinct zeroed structs across chunk
// boundaries, and recycled structs must still take priority over the
// slab tail.
func TestPoolSlabCarving(t *testing.T) {
	p := &Pool{}
	seen := make(map[*Segment]bool, 3*poolChunk)
	for i := 0; i < 3*poolChunk; i++ {
		s := p.Get()
		if seen[s] {
			t.Fatalf("segment %d handed out twice without Put", i)
		}
		if s.Seq != 0 || s.Payload != nil || s.Flags != 0 || s.PayloadLen != 0 {
			t.Fatalf("fresh segment %d not zeroed: %+v", i, s)
		}
		seen[s] = true
		s.Seq = uint32(i) // dirty it so aliasing would be caught above
	}
	recycled := p.Get()
	p.Put(recycled)
	if p.Get() != recycled {
		t.Fatal("free list must win over slab carving")
	}
}
