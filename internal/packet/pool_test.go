package packet

import "testing"

func TestPoolReusesAndZeroes(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	s.Seq = 42
	s.Payload = []byte{1, 2, 3}
	s.PayloadLen = 9
	s.Flags = FlagSYN
	p.Put(s)
	got := p.Get()
	if got != s {
		t.Fatal("pool must reuse the recycled struct")
	}
	if got.Seq != 0 || got.Payload != nil || got.PayloadLen != 0 || got.Flags != 0 || got.Window != 0 {
		t.Fatalf("recycled segment not zeroed: %+v", got)
	}
	if p.Get() == s {
		t.Fatal("empty pool must allocate a fresh struct")
	}
	p.Put(nil) // must not panic or store
	if p.Get() == nil {
		t.Fatal("nil must not enter the free list")
	}
}
