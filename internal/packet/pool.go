package packet

// Pool is a slab-backed free list of Segment structs for one
// single-threaded simulation. Streaming captures observe segments
// synchronously at the tap, so once a segment has been delivered
// nothing references the struct any more and it can be reused instead
// of burdening the GC — segments are the dominant per-packet
// allocation of a session.
//
// Fresh segments are carved from chunked slabs (poolChunk structs per
// allocation) rather than allocated one struct at a time: a fleet cell
// touches a few hundred segments at steady state, and slab carving
// both amortizes the allocator round-trips and keeps the structs
// contiguous, so the free list cycles through a handful of cache
// lines. The zero Pool is ready to use.
//
// Only the struct is recycled: payload byte slices keep their backing
// arrays, so receive buffers and reassemblers may alias Payload freely.
// A Pool is not safe for concurrent use; every simulation owns its own
// (the runner gives each parallel session a private one).
type Pool struct {
	free  []*Segment
	slabs [][]Segment // every slab ever allocated, retained for Reset
	cur   int         // slab Get carves from
	off   int         // next uncarved index in slabs[cur]
}

// poolChunk is how many Segments one slab allocation carves into.
// 256 × ~72 B ≈ 18 KB per slab — two or three slabs cover a cell.
const poolChunk = 256

// Get returns a zeroed segment, reusing a recycled one when available
// and carving from the current slab otherwise.
func (p *Pool) Get() *Segment {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		*s = Segment{}
		return s
	}
	if p.cur == len(p.slabs) {
		p.slabs = append(p.slabs, make([]Segment, poolChunk))
	}
	s := &p.slabs[p.cur][p.off]
	if p.off++; p.off == poolChunk {
		p.cur++
		p.off = 0
	}
	*s = Segment{}
	return s
}

// Put recycles a segment. The caller must guarantee that no reference
// to the struct survives — buffered capture sinks retain segments, so
// pooling is only enabled when every attached sink is streaming.
func (p *Pool) Put(s *Segment) {
	if s == nil {
		return
	}
	p.free = append(p.free, s)
}

// Reset reclaims every segment the pool has ever handed out, keeping
// the slabs for reuse. Segments still referenced at reset time (e.g.
// parked in an abandoned reassembly queue) are reclaimed wholesale —
// the whole simulation that held them must be over. The free list is
// dropped rather than kept: every slab slot is carveable again, so
// keeping recycled pointers would hand out the same struct twice.
func (p *Pool) Reset() {
	p.free = p.free[:0]
	p.cur = 0
	p.off = 0
}
