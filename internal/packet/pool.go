package packet

// Pool is a free list of Segment structs for one single-threaded
// simulation. Streaming captures observe segments synchronously at the
// tap, so once a segment has been delivered nothing references the
// struct any more and it can be reused instead of burdening the GC —
// segments are the dominant per-packet allocation of a session.
//
// Only the struct is recycled: payload byte slices keep their backing
// arrays, so receive buffers and reassemblers may alias Payload freely.
// A Pool is not safe for concurrent use; every simulation owns its own
// (the runner gives each parallel session a private one).
type Pool struct {
	free []*Segment
}

// Get returns a zeroed segment, reusing a recycled one when available.
func (p *Pool) Get() *Segment {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		*s = Segment{}
		return s
	}
	return &Segment{}
}

// Put recycles a segment. The caller must guarantee that no reference
// to the struct survives — buffered capture sinks retain segments, so
// pooling is only enabled when every attached sink is streaming.
func (p *Pool) Put(s *Segment) {
	if s == nil {
		return
	}
	p.free = append(p.free, s)
}
