package packet

// Pool is a slab-backed free list of Segment structs for one
// single-threaded simulation. Streaming captures observe segments
// synchronously at the tap, so once a segment has been delivered
// nothing references the struct any more and it can be reused instead
// of burdening the GC — segments are the dominant per-packet
// allocation of a session.
//
// Fresh segments are carved from chunked slabs (poolChunk structs per
// allocation) rather than allocated one struct at a time: a fleet cell
// touches a few hundred segments at steady state, and slab carving
// both amortizes the allocator round-trips and keeps the structs
// contiguous, so the free list cycles through a handful of cache
// lines. The zero Pool is ready to use.
//
// Only the struct is recycled: payload byte slices keep their backing
// arrays, so receive buffers and reassemblers may alias Payload freely.
// A Pool is not safe for concurrent use; every simulation owns its own
// (the runner gives each parallel session a private one).
type Pool struct {
	free []*Segment
	slab []Segment // current slab; Get carves from the tail
}

// poolChunk is how many Segments one slab allocation carves into.
// 256 × ~72 B ≈ 18 KB per slab — two or three slabs cover a cell.
const poolChunk = 256

// Get returns a zeroed segment, reusing a recycled one when available
// and carving from the current slab otherwise.
func (p *Pool) Get() *Segment {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		*s = Segment{}
		return s
	}
	if len(p.slab) == 0 {
		p.slab = make([]Segment, poolChunk)
	}
	s := &p.slab[0]
	p.slab = p.slab[1:]
	return s
}

// Put recycles a segment. The caller must guarantee that no reference
// to the struct survives — buffered capture sinks retain segments, so
// pooling is only enabled when every attached sink is streaming.
func (p *Pool) Put(s *Segment) {
	if s == nil {
		return
	}
	p.free = append(p.free, s)
}
