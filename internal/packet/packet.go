// Package packet models the IPv4/TCP segments exchanged by the
// simulated stacks, following the layer/flow/endpoint design of
// gopacket: an Endpoint is a hashable address, a Flow is an ordered
// (src, dst) pair, and Segment is the decoded TCP layer. Segments can
// be serialized to real IPv4+TCP wire bytes (and parsed back), so
// captures written by internal/pcap are readable with tcpdump.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Flag bits of the TCP header we model.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// WindowScale is the fixed window-scale shift both simulated stacks
// use. Real 2011 stacks negotiated scales of 2–8; fixing it keeps the
// wire format parseable without tracking per-connection options while
// still letting us advertise multi-megabyte buffers.
const WindowScale = 6

// Endpoint is an (IPv4 address, TCP port) pair. It is comparable and
// therefore usable as a map key, like gopacket's Endpoint.
type Endpoint struct {
	Addr [4]byte
	Port uint16
}

// EP builds an endpoint from dotted address bytes and a port.
func EP(a, b, c, d byte, port uint16) Endpoint {
	return Endpoint{Addr: [4]byte{a, b, c, d}, Port: port}
}

func (e Endpoint) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", e.Addr[0], e.Addr[1], e.Addr[2], e.Addr[3], e.Port)
}

// Flow identifies the direction of a segment: from Src to Dst.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow of the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

func (f Flow) String() string { return f.Src.String() + " -> " + f.Dst.String() }

// Segment is one TCP segment. Payload may be nil even when PayloadLen
// is nonzero: bulk simulated media bytes share a zero page and only the
// length matters to the stacks; Marshal fills the gap with zeros.
type Segment struct {
	Flow
	Seq        uint32
	Ack        uint32
	Flags      uint8
	Window     int // advertised receive window in bytes (pre-scaling)
	Payload    []byte
	PayloadLen int
}

// Len returns the payload length in bytes.
func (s *Segment) Len() int {
	if s.Payload != nil {
		return len(s.Payload)
	}
	return s.PayloadLen
}

// WireLen returns the serialized size: IPv4 (20) + TCP (20) + payload.
func (s *Segment) WireLen() int { return 40 + s.Len() }

// HasFlag reports whether flag is set.
func (s *Segment) HasFlag(flag uint8) bool { return s.Flags&flag != 0 }

func flagString(f uint8) string {
	out := ""
	if f&FlagSYN != 0 {
		out += "S"
	}
	if f&FlagFIN != 0 {
		out += "F"
	}
	if f&FlagRST != 0 {
		out += "R"
	}
	if f&FlagPSH != 0 {
		out += "P"
	}
	if f&FlagACK != 0 {
		out += "."
	}
	return out
}

func (s *Segment) String() string {
	return fmt.Sprintf("%s Flags [%s] seq %d ack %d win %d len %d",
		s.Flow, flagString(s.Flags), s.Seq, s.Ack, s.Window, s.Len())
}

// Clone returns a deep-enough copy: header fields are copied; the
// payload slice is shared (payload bytes are immutable by convention).
func (s *Segment) Clone() *Segment {
	c := *s
	return &c
}

// Marshal serializes the segment as an IPv4 packet with a TCP header,
// suitable for LINKTYPE_RAW pcap files. The advertised window is
// right-shifted by WindowScale and saturates at 65535.
func (s *Segment) Marshal() []byte {
	n := s.Len()
	buf := make([]byte, 40+n)
	// IPv4 header.
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:], uint16(40+n))
	buf[8] = 64 // TTL
	buf[9] = 6  // protocol TCP
	copy(buf[12:16], s.Src.Addr[:])
	copy(buf[16:20], s.Dst.Addr[:])
	binary.BigEndian.PutUint16(buf[10:], ipChecksum(buf[:20]))
	// TCP header.
	tcp := buf[20:]
	binary.BigEndian.PutUint16(tcp[0:], s.Src.Port)
	binary.BigEndian.PutUint16(tcp[2:], s.Dst.Port)
	binary.BigEndian.PutUint32(tcp[4:], s.Seq)
	binary.BigEndian.PutUint32(tcp[8:], s.Ack)
	tcp[12] = 5 << 4 // data offset 5 words
	tcp[13] = s.Flags
	w := s.Window >> WindowScale
	if w > 0xFFFF {
		w = 0xFFFF
	}
	binary.BigEndian.PutUint16(tcp[14:], uint16(w))
	if s.Payload != nil {
		copy(tcp[20:], s.Payload)
	}
	return buf
}

var errShort = errors.New("packet: truncated")

// Parse decodes an IPv4+TCP packet produced by Marshal (or a real
// capture with the same fixed 20-byte headers). Truncated payloads are
// accepted — PayloadLen reports the original length from the IP header
// while Payload holds whatever bytes were captured — mirroring how
// snaplen-limited tcpdump captures behave.
func Parse(b []byte) (*Segment, error) {
	if len(b) < 40 {
		return nil, errShort
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < 20 || len(b) < ihl+20 {
		return nil, errShort
	}
	if b[9] != 6 {
		return nil, fmt.Errorf("packet: not TCP (protocol %d)", b[9])
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	tcp := b[ihl:]
	off := int(tcp[12]>>4) * 4
	if off < 20 || len(tcp) < off {
		return nil, errShort
	}
	s := &Segment{
		Flow: Flow{
			Src: Endpoint{Port: binary.BigEndian.Uint16(tcp[0:])},
			Dst: Endpoint{Port: binary.BigEndian.Uint16(tcp[2:])},
		},
		Seq:    binary.BigEndian.Uint32(tcp[4:]),
		Ack:    binary.BigEndian.Uint32(tcp[8:]),
		Flags:  tcp[13],
		Window: int(binary.BigEndian.Uint16(tcp[14:])) << WindowScale,
	}
	copy(s.Src.Addr[:], b[12:16])
	copy(s.Dst.Addr[:], b[16:20])
	s.PayloadLen = total - ihl - off
	if s.PayloadLen < 0 {
		s.PayloadLen = 0
	}
	if captured := len(tcp) - off; captured > 0 {
		if captured > s.PayloadLen {
			captured = s.PayloadLen
		}
		s.Payload = tcp[off : off+captured]
	}
	return s, nil
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
