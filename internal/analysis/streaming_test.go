package analysis

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

var (
	testClient = packet.EP(10, 0, 0, 1, 40000)
	testServer = packet.EP(203, 0, 113, 10, 80)
	downFlow   = packet.Flow{Src: testServer, Dst: testClient}
	upFlow     = packet.Flow{Src: testClient, Dst: testServer}
)

func dseg(seq uint32, payload []byte, n int) *packet.Segment {
	return &packet.Segment{Flow: downFlow, Seq: seq, Flags: packet.FlagACK, Window: 65536, Payload: payload, PayloadLen: n}
}

// payloadFor makes retransmission content deterministic: the byte at
// absolute sequence s is always f(s), like a real TCP stream.
func payloadFor(seq uint32, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte((seq + uint32(i)) * 131)
	}
	return p
}

// TestHeaderAsmMatchesTraceReassemble cross-checks the bounded online
// reassembler against the buffered Trace.Reassemble walk on randomized
// segment streams: duplicates, partial overlaps, reordering, gaps,
// payload-free (snaplen-truncated) pieces, present or missing SYN.
func TestHeaderAsmMatchesTraceReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const base = uint32(5000)
	for trial := 0; trial < 300; trial++ {
		tr := &trace.Trace{}
		asm := headerAsm{}
		feed := func(seg *packet.Segment) {
			tr.Capture(time.Duration(tr.Len())*time.Millisecond, trace.Down, seg)
			asm.add(seg)
		}
		if rng.Intn(4) > 0 { // usually the SYN is captured
			feed(&packet.Segment{Flow: downFlow, Seq: base - 1, Flags: packet.FlagSYN | packet.FlagACK})
		}
		segs := 1 + rng.Intn(24)
		for i := 0; i < segs; i++ {
			off := uint32(rng.Intn(6000))
			n := 1 + rng.Intn(1600)
			seq := base + off
			var payload []byte
			if rng.Intn(5) > 0 {
				payload = payloadFor(seq, n)
				if rng.Intn(8) == 0 && n > 3 {
					payload = payload[:n/2] // snaplen truncation
				}
			}
			feed(&packet.Segment{Flow: downFlow, Seq: seq, Flags: packet.FlagACK, Payload: payload, PayloadLen: n})
		}
		want := tr.Reassemble(downFlow, maxHeaderBytes)
		got := asm.finish()
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d: online reassembly diverged: want %d bytes, got %d", trial, len(want), len(got))
		}
	}
}

// TestStreamingNoHandshakeFallback: a capture that starts mid-flow has
// no handshake, so the RTT falls back to 40 ms and the ACK-clock
// samples deferred during the capture must still be credited to the
// right cycles on Close.
func TestStreamingNoHandshakeFallback(t *testing.T) {
	s := NewStreaming(Config{OffThreshold: 150 * time.Millisecond})
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	// Cycle 0 (buffering): 3 segments.
	s.Capture(at(0), trace.Down, dseg(1000, nil, 1000))
	s.Capture(at(10), trace.Down, dseg(2000, nil, 1000))
	s.Capture(at(20), trace.Down, dseg(3000, nil, 1000))
	// OFF 300 ms, then cycle 1: two segments inside 40 ms, one after.
	s.Capture(at(320), trace.Down, dseg(4000, nil, 500))
	s.Capture(at(350), trace.Down, dseg(4500, nil, 500))
	s.Capture(at(400), trace.Down, dseg(5000, nil, 500))
	r := s.Result()
	if r.RTT != 40*time.Millisecond {
		t.Fatalf("RTT fallback = %v, want 40ms", r.RTT)
	}
	if len(r.Cycles) != 2 || len(r.FirstRTTBytes) != 1 {
		t.Fatalf("cycles = %d, samples = %v", len(r.Cycles), r.FirstRTTBytes)
	}
	// Window [320, 360]: the 320 and 350 segments, not the 400 one.
	if r.FirstRTTBytes[0] != 1000 {
		t.Fatalf("first-RTT bytes = %d, want 1000", r.FirstRTTBytes[0])
	}
	if r.TotalBytes != 4500 || r.DataSegs != 6 {
		t.Fatalf("accounting: %d bytes, %d segs", r.TotalBytes, r.DataSegs)
	}
}

// TestStreamingRTTFromHandshake: the estimate is the first SYN ->
// SYN-ACK gap, resolved online.
func TestStreamingRTTFromHandshake(t *testing.T) {
	s := NewStreaming(Config{})
	s.Capture(0, trace.Up, &packet.Segment{Flow: upFlow, Seq: 99, Flags: packet.FlagSYN, Window: 65536})
	s.Capture(35*time.Millisecond, trace.Down, &packet.Segment{Flow: downFlow, Seq: 499, Ack: 100, Flags: packet.FlagSYN | packet.FlagACK, Window: 65536})
	s.Capture(40*time.Millisecond, trace.Down, dseg(500, nil, 1000))
	r := s.Result()
	if r.RTT != 35*time.Millisecond {
		t.Fatalf("RTT = %v, want 35ms", r.RTT)
	}
	if r.ConnCount != 1 || r.Packets != 3 {
		t.Fatalf("conns=%d packets=%d", r.ConnCount, r.Packets)
	}
}

// TestStreamingBinnedSeries: SeriesBin aggregates the capture into
// contiguous fixed-width bins with a window envelope.
func TestStreamingBinnedSeries(t *testing.T) {
	s := NewStreaming(Config{SeriesBin: 100 * time.Millisecond})
	s.Capture(10*time.Millisecond, trace.Down, dseg(1000, nil, 700))
	s.Capture(20*time.Millisecond, trace.Up, &packet.Segment{Flow: upFlow, Flags: packet.FlagACK, Window: 64000})
	s.Capture(250*time.Millisecond, trace.Down, dseg(2000, nil, 300))
	s.Capture(260*time.Millisecond, trace.Up, &packet.Segment{Flow: upFlow, Flags: packet.FlagACK, Window: 0})
	r := s.Result()
	if len(r.Bins) != 3 {
		t.Fatalf("bins = %d, want 3 (gap bin included)", len(r.Bins))
	}
	if r.Bins[0].Bytes != 700 || r.Bins[0].Packets != 2 || r.Bins[0].LastWindow != 64000 {
		t.Fatalf("bin 0 = %+v", r.Bins[0])
	}
	if r.Bins[1].Packets != 0 || r.Bins[1].MinWindow != -1 {
		t.Fatalf("gap bin = %+v", r.Bins[1])
	}
	if r.Bins[2].Bytes != 300 || r.Bins[2].MinWindow != 0 {
		t.Fatalf("bin 2 = %+v", r.Bins[2])
	}
}

// TestStreamingIgnoresCapturesAfterClose: Result freezes the analysis.
func TestStreamingIgnoresCapturesAfterClose(t *testing.T) {
	s := NewStreaming(Config{})
	s.Capture(0, trace.Down, dseg(1000, nil, 1000))
	r := s.Result()
	total := r.TotalBytes
	s.Capture(time.Second, trace.Down, dseg(2000, nil, 1000))
	if got := s.Result().TotalBytes; got != total {
		t.Fatalf("capture after close changed the result: %d -> %d", total, got)
	}
}
