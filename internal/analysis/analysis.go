// Package analysis computes the paper's measurement metrics from the
// captured packets alone, mirroring Sections 3–5:
//
//   - ON/OFF cycle segmentation of the downstream data,
//   - phase detection (the buffering phase ends at the start of the
//     first OFF period — the paper's own convention, including its
//     sensitivity to packet loss),
//   - block sizes (bytes per ON period in steady state),
//   - the accumulation ratio (steady-state rate / encoding rate),
//   - encoding-rate recovery from container headers in the payload
//     bytes, with the Content-Length/duration fallback for WebM,
//   - the ACK-clock metric (bytes in the first RTT of each ON period,
//     Figure 9), and
//   - the streaming-strategy classifier (2.5 MB block threshold).
//
// The core is Streaming, an online trace.Sink holding O(flows) state;
// Analyze replays a buffered Trace through the same core, so buffered
// and streaming sessions produce bit-identical Results.
package analysis

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LongCycleBytes is the paper's block-size boundary between short and
// long ON-OFF cycles (Section 3: 2.5 MB).
const LongCycleBytes = 2500 * 1000

// Config tunes the analyzer. Zero values take defaults.
type Config struct {
	// OffThreshold is the minimum downstream silence that counts as
	// an OFF period. It must exceed the RTT (slow-start gaps) but sit
	// below real OFF periods (0.2–5 s for short cycles). Default
	// 150 ms.
	OffThreshold time.Duration
	// KnownDuration optionally supplies the video duration (the paper
	// used the YouTube API when headers were unusable).
	KnownDuration time.Duration
	// KnownRate optionally supplies the encoding rate out of band.
	KnownRate float64
	// ProbeIgnoreBytes: data segments smaller than this do not start
	// a new ON period — they are zero-window keepalive probes, not
	// media blocks. Default 128.
	ProbeIgnoreBytes int
	// SeriesBin, when positive, makes the analyzer aggregate the
	// download/window series into fixed-width time bins (Result.Bins):
	// the constant-memory form of the figure series, O(duration/bin)
	// instead of O(packets).
	SeriesBin time.Duration
}

func (c Config) withDefaults() Config {
	if c.OffThreshold <= 0 {
		c.OffThreshold = 150 * time.Millisecond
	}
	if c.ProbeIgnoreBytes <= 0 {
		c.ProbeIgnoreBytes = 128
	}
	return c
}

// Strategy is the classified streaming strategy of Section 3.
type Strategy int

// The three strategies, plus the iPad's combination (Section 5.1.3)
// and Unknown for empty traces.
const (
	StrategyUnknown Strategy = iota
	NoOnOff
	ShortOnOff
	LongOnOff
	MultipleOnOff
)

func (s Strategy) String() string {
	switch s {
	case NoOnOff:
		return "No ON-OFF"
	case ShortOnOff:
		return "Short ON-OFF"
	case LongOnOff:
		return "Long ON-OFF"
	case MultipleOnOff:
		return "Multiple"
	default:
		return "Unknown"
	}
}

// Cycle is one ON period.
type Cycle struct {
	Start, End time.Duration
	Bytes      int64
	// OffAfter is the silence following this ON period (0 for the
	// last cycle).
	OffAfter time.Duration
}

// MediaInfo is what the analyzer recovered about the content.
type MediaInfo struct {
	Container     media.Container
	EncodingRate  float64 // bps; 0 when unrecoverable
	Duration      time.Duration
	ContentLength int64
	// RateSource records how EncodingRate was obtained: "header",
	// "content-length" (the paper's WebM fallback), "known", or "".
	RateSource string
}

// SeriesBin aggregates the capture over one fixed-width time bin (see
// Config.SeriesBin): downstream payload bytes, packet count, and the
// advertised-window envelope observed in the bin (-1 when no Up packet
// fell into it).
type SeriesBin struct {
	Start      time.Duration
	Bytes      int64
	Packets    int
	MinWindow  int
	LastWindow int
}

// RungSpan is one per-rendition request cycle: a contiguous stretch
// of downstream fragments all encoded at one ladder bitrate,
// recovered from the fragment headers on the wire (the methodology's
// rate-from-headers idea applied to adaptive streams).
type RungSpan struct {
	Bitrate    float64 // bps, from the fragment headers
	Start, End time.Duration
	Bytes      int64
	Fragments  int
}

// Result is the full per-session analysis.
type Result struct {
	Cycles []Cycle

	// Phases (Figure 1 / Section 3).
	BufferingEnd   time.Duration // start of the first OFF period
	BufferedBytes  int64
	HasSteadyState bool

	// Steady state.
	Blocks            []int64 // bytes per steady-state ON period
	SteadyRate        float64 // bps during steady state
	AccumulationRatio float64 // 0 when the encoding rate is unknown

	// ACK-clock samples: bytes observed in the first RTT of each
	// steady-state ON period (Figure 9).
	FirstRTTBytes []int64
	RTT           time.Duration

	Media    MediaInfo
	Strategy Strategy

	// Trace-level accounting.
	TotalBytes  int64
	Duration    time.Duration
	Packets     int // captured packets, both directions
	ConnCount   int
	Retrans     int
	DataSegs    int
	RetransRate float64

	// Bins is the optional binned series (Config.SeriesBin).
	Bins []SeriesBin

	// Rungs are the per-rendition request cycles of an adaptive
	// session (nil when the capture carries no fragment headers);
	// RungSwitches counts rendition changes between adjacent spans.
	Rungs        []RungSpan
	RungSwitches int
}

// Analyze runs the full pipeline on a buffered trace by replaying it
// through the streaming core.
func Analyze(t *trace.Trace, cfg Config) *Result {
	s := NewStreaming(cfg)
	for _, rec := range t.Records {
		s.Capture(rec.TS, rec.Dir, rec.Seg)
	}
	return s.Result()
}

// mediaFromStream recovers content metadata from the reassembled
// payload prefix of the first flow: HTTP response header, then
// container header. This is the paper's methodology — rate from the
// Flash header, or the Content-Length/duration estimate for WebM.
func mediaFromStream(stream []byte, haveFlow bool, cfg Config) MediaInfo {
	mi := MediaInfo{Duration: cfg.KnownDuration}
	if !haveFlow {
		return applyKnown(mi, cfg)
	}
	idx := bytes.Index(stream, []byte("\r\n\r\n"))
	if idx < 0 {
		return applyKnown(mi, cfg)
	}
	head := stream[:idx]
	body := stream[idx+4:]
	// Pull Content-Length out of the response header.
	for _, line := range bytes.Split(head, []byte("\r\n")) {
		k, v, ok := bytes.Cut(line, []byte(":"))
		if ok && bytes.EqualFold(bytes.TrimSpace(k), []byte("content-length")) {
			fmt.Sscanf(string(bytes.TrimSpace(v)), "%d", &mi.ContentLength)
		}
	}
	info, err := media.ParseHeader(body)
	if err != nil {
		return applyKnown(mi, cfg)
	}
	mi.Container = info.Container
	if info.Duration > 0 {
		mi.Duration = info.Duration
	}
	switch {
	case info.RateValid && info.EncodingRate > 0:
		mi.EncodingRate = info.EncodingRate
		mi.RateSource = "header"
	case mi.ContentLength > 0 && mi.Duration > 0:
		// The WebM fallback: estimate as Content-Length / duration.
		mi.EncodingRate = float64(mi.ContentLength) * 8 / mi.Duration.Seconds()
		mi.RateSource = "content-length"
	}
	return applyKnown(mi, cfg)
}

func applyKnown(mi MediaInfo, cfg Config) MediaInfo {
	if mi.EncodingRate == 0 && cfg.KnownRate > 0 {
		mi.EncodingRate = cfg.KnownRate
		mi.RateSource = "known"
	}
	return mi
}

// classify implements the Section 3 taxonomy. A session with no OFF
// periods is a bulk transfer; otherwise the block sizes decide, with
// MultipleOnOff covering the iPad's mixed behaviour (Section 5.1.3).
func classify(r *Result) Strategy {
	if r.TotalBytes == 0 {
		return StrategyUnknown
	}
	if !r.HasSteadyState {
		return NoOnOff
	}
	// A transfer whose OFF time is negligible relative to its active
	// span is a bulk transfer interrupted by loss-recovery stalls, not
	// a rate-limited stream: still No ON-OFF. (The paper notes its
	// phase detection is sensitive to exactly these artefacts.)
	var totalOff time.Duration
	for _, c := range r.Cycles {
		totalOff += c.OffAfter
	}
	activeSpan := r.Cycles[len(r.Cycles)-1].End - r.Cycles[0].Start
	if activeSpan > 0 && totalOff < activeSpan/10 {
		return NoOnOff
	}
	short, long := 0, 0
	for _, b := range r.Blocks {
		if b < LongCycleBytes {
			short++
		} else {
			long++
		}
	}
	total := short + long
	mixed := short >= 3 && long >= 3 &&
		float64(short)/float64(total) >= 0.15 && float64(long)/float64(total) >= 0.15
	switch {
	case long == 0:
		return ShortOnOff
	case short == 0:
		return LongOnOff
	case mixed:
		return MultipleOnOff
	case float64(long)/float64(total) > 0.5:
		return LongOnOff
	default:
		return ShortOnOff
	}
}

// MedianBlock returns the median steady-state block size in bytes,
// or 0 when there is no steady state.
func (r *Result) MedianBlock() int64 {
	if len(r.Blocks) == 0 {
		return 0
	}
	xs := make([]float64, len(r.Blocks))
	for i, b := range r.Blocks {
		xs[i] = float64(b)
	}
	return int64(stats.Median(xs))
}

// PlaybackBuffered converts the buffered bytes into seconds of
// playback at the recovered encoding rate (Figure 3a's y-axis).
func (r *Result) PlaybackBuffered() float64 {
	if r.Media.EncodingRate <= 0 {
		return 0
	}
	return float64(r.BufferedBytes) * 8 / r.Media.EncodingRate
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d conns, %.2f MB total, buffering %.1fs/%.2f MB, %d blocks (median %.0f kB), accum %.2f, retrans %.2f%%",
		r.Strategy, r.ConnCount, float64(r.TotalBytes)/1e6,
		r.BufferingEnd.Seconds(), float64(r.BufferedBytes)/1e6,
		len(r.Blocks), float64(r.MedianBlock())/1e3, r.AccumulationRatio, r.RetransRate*100)
}
