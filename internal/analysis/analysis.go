// Package analysis computes the paper's measurement metrics from a
// captured trace alone, mirroring Sections 3–5:
//
//   - ON/OFF cycle segmentation of the downstream data,
//   - phase detection (the buffering phase ends at the start of the
//     first OFF period — the paper's own convention, including its
//     sensitivity to packet loss),
//   - block sizes (bytes per ON period in steady state),
//   - the accumulation ratio (steady-state rate / encoding rate),
//   - encoding-rate recovery from container headers in the payload
//     bytes, with the Content-Length/duration fallback for WebM,
//   - the ACK-clock metric (bytes in the first RTT of each ON period,
//     Figure 9), and
//   - the streaming-strategy classifier (2.5 MB block threshold).
package analysis

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LongCycleBytes is the paper's block-size boundary between short and
// long ON-OFF cycles (Section 3: 2.5 MB).
const LongCycleBytes = 2500 * 1000

// Config tunes the analyzer. Zero values take defaults.
type Config struct {
	// OffThreshold is the minimum downstream silence that counts as
	// an OFF period. It must exceed the RTT (slow-start gaps) but sit
	// below real OFF periods (0.2–5 s for short cycles). Default
	// 150 ms.
	OffThreshold time.Duration
	// KnownDuration optionally supplies the video duration (the paper
	// used the YouTube API when headers were unusable).
	KnownDuration time.Duration
	// KnownRate optionally supplies the encoding rate out of band.
	KnownRate float64
	// ProbeIgnoreBytes: data segments smaller than this do not start
	// a new ON period — they are zero-window keepalive probes, not
	// media blocks. Default 128.
	ProbeIgnoreBytes int
}

func (c Config) withDefaults() Config {
	if c.OffThreshold <= 0 {
		c.OffThreshold = 150 * time.Millisecond
	}
	if c.ProbeIgnoreBytes <= 0 {
		c.ProbeIgnoreBytes = 128
	}
	return c
}

// Strategy is the classified streaming strategy of Section 3.
type Strategy int

// The three strategies, plus the iPad's combination (Section 5.1.3)
// and Unknown for empty traces.
const (
	StrategyUnknown Strategy = iota
	NoOnOff
	ShortOnOff
	LongOnOff
	MultipleOnOff
)

func (s Strategy) String() string {
	switch s {
	case NoOnOff:
		return "No ON-OFF"
	case ShortOnOff:
		return "Short ON-OFF"
	case LongOnOff:
		return "Long ON-OFF"
	case MultipleOnOff:
		return "Multiple"
	default:
		return "Unknown"
	}
}

// Cycle is one ON period.
type Cycle struct {
	Start, End time.Duration
	Bytes      int64
	// OffAfter is the silence following this ON period (0 for the
	// last cycle).
	OffAfter time.Duration
}

// MediaInfo is what the analyzer recovered about the content.
type MediaInfo struct {
	Container     media.Container
	EncodingRate  float64 // bps; 0 when unrecoverable
	Duration      time.Duration
	ContentLength int64
	// RateSource records how EncodingRate was obtained: "header",
	// "content-length" (the paper's WebM fallback), "known", or "".
	RateSource string
}

// Result is the full per-session analysis.
type Result struct {
	Cycles []Cycle

	// Phases (Figure 1 / Section 3).
	BufferingEnd   time.Duration // start of the first OFF period
	BufferedBytes  int64
	HasSteadyState bool

	// Steady state.
	Blocks            []int64 // bytes per steady-state ON period
	SteadyRate        float64 // bps during steady state
	AccumulationRatio float64 // 0 when the encoding rate is unknown

	// ACK-clock samples: bytes observed in the first RTT of each
	// steady-state ON period (Figure 9).
	FirstRTTBytes []int64
	RTT           time.Duration

	Media    MediaInfo
	Strategy Strategy

	// Trace-level accounting.
	TotalBytes  int64
	Duration    time.Duration
	ConnCount   int
	Retrans     int
	DataSegs    int
	RetransRate float64
}

// Analyze runs the full pipeline on a captured trace.
func Analyze(t *trace.Trace, cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		TotalBytes: t.DownBytes(),
		Duration:   t.Duration(),
		ConnCount:  len(t.Flows()),
	}
	r.Retrans, r.DataSegs = t.Retransmissions()
	if r.DataSegs > 0 {
		r.RetransRate = float64(r.Retrans) / float64(r.DataSegs)
	}
	r.RTT = estimateRTT(t)
	r.Cycles = segment(t, cfg.OffThreshold, cfg.ProbeIgnoreBytes)
	if len(r.Cycles) == 0 {
		return r
	}

	// Phases: buffering ends where the first OFF begins.
	first := r.Cycles[0]
	r.BufferingEnd = first.End
	r.BufferedBytes = first.Bytes
	r.HasSteadyState = len(r.Cycles) > 1

	if r.HasSteadyState {
		steady := r.Cycles[1:]
		var steadyBytes int64
		for _, c := range steady {
			r.Blocks = append(r.Blocks, c.Bytes)
			steadyBytes += c.Bytes
		}
		span := steady[len(steady)-1].End - first.End
		if span > 0 {
			r.SteadyRate = float64(steadyBytes) * 8 / span.Seconds()
		}
		r.FirstRTTBytes = ackClockSamples(t, steady, r.RTT)
	}

	r.Media = extractMedia(t, cfg)
	if r.Media.EncodingRate > 0 && r.SteadyRate > 0 {
		r.AccumulationRatio = r.SteadyRate / r.Media.EncodingRate
	}
	r.Strategy = classify(r)
	return r
}

// segment splits the aggregate downstream data into ON periods
// separated by silences longer than off. Segments smaller than
// probeIgnore never start an ON period: isolated zero-window probes
// stay part of the surrounding OFF.
func segment(t *trace.Trace, off time.Duration, probeIgnore int) []Cycle {
	var cycles []Cycle
	var cur *Cycle
	var lastData time.Duration
	for _, rec := range t.Records {
		if rec.Dir != trace.Down || rec.Seg.Len() == 0 {
			continue
		}
		if rec.Seg.Len() < probeIgnore && (cur == nil || rec.TS-lastData > off) {
			continue // keepalive probe inside an OFF period
		}
		ts := rec.TS
		if cur == nil {
			cycles = append(cycles, Cycle{Start: ts})
			cur = &cycles[len(cycles)-1]
		} else if ts-lastData > off {
			cur.End = lastData
			cur.OffAfter = ts - lastData
			cycles = append(cycles, Cycle{Start: ts})
			cur = &cycles[len(cycles)-1]
		}
		cur.Bytes += int64(rec.Seg.Len())
		lastData = ts
	}
	if cur != nil {
		cur.End = lastData
	}
	return cycles
}

// estimateRTT uses the SYN -> SYN-ACK gap of the first complete
// handshake in the capture; it falls back to the first data->ack gap.
func estimateRTT(t *trace.Trace) time.Duration {
	synAt := map[uint16]time.Duration{} // keyed by client port
	for _, rec := range t.Records {
		seg := rec.Seg
		isSyn := seg.HasFlag(packet.FlagSYN)
		isAck := seg.HasFlag(packet.FlagACK)
		if rec.Dir == trace.Up && isSyn && !isAck {
			if _, dup := synAt[seg.Src.Port]; !dup {
				synAt[seg.Src.Port] = rec.TS
			}
		}
		if rec.Dir == trace.Down && isSyn && isAck {
			if t0, ok := synAt[seg.Dst.Port]; ok {
				return rec.TS - t0
			}
		}
	}
	return 40 * time.Millisecond
}

// ackClockSamples sums downstream payload bytes within the first RTT
// of each steady-state ON period: the paper's conservative estimate of
// the congestion window at ON-period start (Figure 9).
func ackClockSamples(t *trace.Trace, steady []Cycle, rtt time.Duration) []int64 {
	out := make([]int64, len(steady))
	ci := 0
	for _, rec := range t.Records {
		if rec.Dir != trace.Down || rec.Seg.Len() == 0 {
			continue
		}
		for ci < len(steady) && rec.TS > steady[ci].Start+rtt {
			ci++
		}
		if ci == len(steady) {
			break
		}
		c := steady[ci]
		if rec.TS >= c.Start && rec.TS <= c.Start+rtt {
			out[ci] += int64(rec.Seg.Len())
		}
	}
	return out
}

// extractMedia recovers content metadata from the first flow's payload
// bytes: HTTP response header, then container header. This is the
// paper's methodology — rate from the Flash header, or the
// Content-Length/duration estimate for WebM.
func extractMedia(t *trace.Trace, cfg Config) MediaInfo {
	mi := MediaInfo{Duration: cfg.KnownDuration}
	flows := t.Flows()
	if len(flows) == 0 {
		return applyKnown(mi, cfg)
	}
	stream := t.Reassemble(flows[0], 4096)
	idx := bytes.Index(stream, []byte("\r\n\r\n"))
	if idx < 0 {
		return applyKnown(mi, cfg)
	}
	head := stream[:idx]
	body := stream[idx+4:]
	// Pull Content-Length out of the response header.
	for _, line := range bytes.Split(head, []byte("\r\n")) {
		k, v, ok := bytes.Cut(line, []byte(":"))
		if ok && bytes.EqualFold(bytes.TrimSpace(k), []byte("content-length")) {
			fmt.Sscanf(string(bytes.TrimSpace(v)), "%d", &mi.ContentLength)
		}
	}
	info, err := media.ParseHeader(body)
	if err != nil {
		return applyKnown(mi, cfg)
	}
	mi.Container = info.Container
	if info.Duration > 0 {
		mi.Duration = info.Duration
	}
	switch {
	case info.RateValid && info.EncodingRate > 0:
		mi.EncodingRate = info.EncodingRate
		mi.RateSource = "header"
	case mi.ContentLength > 0 && mi.Duration > 0:
		// The WebM fallback: estimate as Content-Length / duration.
		mi.EncodingRate = float64(mi.ContentLength) * 8 / mi.Duration.Seconds()
		mi.RateSource = "content-length"
	}
	return applyKnown(mi, cfg)
}

func applyKnown(mi MediaInfo, cfg Config) MediaInfo {
	if mi.EncodingRate == 0 && cfg.KnownRate > 0 {
		mi.EncodingRate = cfg.KnownRate
		mi.RateSource = "known"
	}
	return mi
}

// classify implements the Section 3 taxonomy. A session with no OFF
// periods is a bulk transfer; otherwise the block sizes decide, with
// MultipleOnOff covering the iPad's mixed behaviour (Section 5.1.3).
func classify(r *Result) Strategy {
	if r.TotalBytes == 0 {
		return StrategyUnknown
	}
	if !r.HasSteadyState {
		return NoOnOff
	}
	// A transfer whose OFF time is negligible relative to its active
	// span is a bulk transfer interrupted by loss-recovery stalls, not
	// a rate-limited stream: still No ON-OFF. (The paper notes its
	// phase detection is sensitive to exactly these artefacts.)
	var totalOff time.Duration
	for _, c := range r.Cycles {
		totalOff += c.OffAfter
	}
	activeSpan := r.Cycles[len(r.Cycles)-1].End - r.Cycles[0].Start
	if activeSpan > 0 && totalOff < activeSpan/10 {
		return NoOnOff
	}
	short, long := 0, 0
	for _, b := range r.Blocks {
		if b < LongCycleBytes {
			short++
		} else {
			long++
		}
	}
	total := short + long
	mixed := short >= 3 && long >= 3 &&
		float64(short)/float64(total) >= 0.15 && float64(long)/float64(total) >= 0.15
	switch {
	case long == 0:
		return ShortOnOff
	case short == 0:
		return LongOnOff
	case mixed:
		return MultipleOnOff
	case float64(long)/float64(total) > 0.5:
		return LongOnOff
	default:
		return ShortOnOff
	}
}

// MedianBlock returns the median steady-state block size in bytes,
// or 0 when there is no steady state.
func (r *Result) MedianBlock() int64 {
	if len(r.Blocks) == 0 {
		return 0
	}
	xs := make([]float64, len(r.Blocks))
	for i, b := range r.Blocks {
		xs[i] = float64(b)
	}
	return int64(stats.Median(xs))
}

// PlaybackBuffered converts the buffered bytes into seconds of
// playback at the recovered encoding rate (Figure 3a's y-axis).
func (r *Result) PlaybackBuffered() float64 {
	if r.Media.EncodingRate <= 0 {
		return 0
	}
	return float64(r.BufferedBytes) * 8 / r.Media.EncodingRate
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d conns, %.2f MB total, buffering %.1fs/%.2f MB, %d blocks (median %.0f kB), accum %.2f, retrans %.2f%%",
		r.Strategy, r.ConnCount, float64(r.TotalBytes)/1e6,
		r.BufferingEnd.Seconds(), float64(r.BufferedBytes)/1e6,
		len(r.Blocks), float64(r.MedianBlock())/1e3, r.AccumulationRatio, r.RetransRate*100)
}
