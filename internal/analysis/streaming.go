package analysis

import (
	"sort"
	"time"

	"repro/internal/media"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Streaming is the online analysis core: a trace.Sink that computes
// the full Result — cycle segmentation, RTT estimation, ACK-clock
// sampling, retransmission counting, media extraction and strategy
// classification — one packet at a time, holding O(flows) state
// instead of the O(packets) buffer the tcpdump-then-analyze pipeline
// needs. Analyze replays a buffered Trace through this same core, so
// the two modes cannot drift apart.
//
// The only unbounded inputs it keeps are (a) per-flow high-water marks
// and (b) ACK-clock samples (16 bytes per data segment) deferred while
// the RTT is still unknown. In any capture that starts before its
// first handshake — which every capture this repository produces does
// — the RTT resolves before the first data segment and (b) stays
// empty; a tcpdump file recorded mid-connection degrades to (b)'s
// 16 bytes per data packet, still an order of magnitude below
// buffering the records themselves. Equivalence with the buffered
// pipeline additionally assumes the first flow's SYN (when captured at
// all) precedes its data, so the header-reassembly base never moves
// backward mid-stream — see headerAsm.
type Streaming struct {
	cfg Config
	res Result

	lastTS  time.Duration
	packets int

	// Flow accounting: distinct Down flows (ConnCount) and per-flow
	// sequence high-water marks (retransmission detection).
	seen map[packet.Flow]bool
	high map[packet.Flow]uint32

	// RTT estimation: client-port -> SYN time, until the first
	// complete handshake resolves the estimate.
	synAt    map[uint16]time.Duration
	rttKnown bool

	// Cycle segmentation.
	lastData time.Duration
	open     bool

	// ACK-clock sampling: a monotone cursor over steady-state cycles,
	// plus samples deferred until the RTT resolves.
	ci      int
	pending []ackSample

	// Media extraction: bounded header reassembly of the first flow.
	haveFlow  bool
	firstFlow packet.Flow
	asm       headerAsm

	// Rendition segmentation: fragment headers observed in Down
	// payloads delimit per-rendition request cycles. Scanning is
	// self-disabling: a capture whose first rungScanBudget data
	// segments carry no fragment header never will (fragment streams
	// announce themselves in segment one), so non-fragment sessions
	// pay nothing past the first window.
	rungMisses int
	rungFound  bool

	done bool
}

// rungScanBudget is how many fragment-header-free data segments the
// analyzer scans before concluding the capture is not a fragment
// stream.
const rungScanBudget = 64

type ackSample struct {
	at time.Duration
	n  int
}

// NewStreaming returns an online analyzer with the given config (zero
// values take the same defaults as Analyze).
func NewStreaming(cfg Config) *Streaming {
	return &Streaming{
		cfg:   cfg.withDefaults(),
		seen:  make(map[packet.Flow]bool),
		high:  make(map[packet.Flow]uint32),
		synAt: make(map[uint16]time.Duration),
	}
}

// Capture implements trace.Sink. Segments are read synchronously and
// never retained (payload slices of the first flow's header window are
// the one exception; their backing arrays are immutable).
func (s *Streaming) Capture(at time.Duration, dir trace.Dir, seg *packet.Segment) {
	if s.done {
		return
	}
	s.lastTS = at
	s.packets++
	if s.cfg.SeriesBin > 0 {
		s.binTick(at, dir, seg)
	}
	if dir == trace.Up {
		if !s.rttKnown && seg.HasFlag(packet.FlagSYN) && !seg.HasFlag(packet.FlagACK) {
			if _, dup := s.synAt[seg.Src.Port]; !dup {
				s.synAt[seg.Src.Port] = at
			}
		}
		return
	}

	f := seg.Flow
	if !s.seen[f] {
		s.seen[f] = true
		s.res.ConnCount++
		if !s.haveFlow {
			s.haveFlow = true
			s.firstFlow = f
		}
	}
	if !s.rttKnown && seg.HasFlag(packet.FlagSYN) && seg.HasFlag(packet.FlagACK) {
		if t0, ok := s.synAt[seg.Dst.Port]; ok {
			s.resolveRTT(at - t0)
		}
	}
	if f == s.firstFlow {
		s.asm.add(seg)
	}

	n := seg.Len()
	if n == 0 {
		return
	}
	s.res.TotalBytes += int64(n)
	s.rungTick(at, seg, n)

	// Retransmission heuristic: sequence regression per flow.
	s.res.DataSegs++
	end := seg.Seq + uint32(n)
	if h, started := s.high[f]; !started {
		s.high[f] = end
	} else if int32(end-h) <= 0 {
		s.res.Retrans++
	} else {
		s.high[f] = end
	}

	// Cycle segmentation. Segments below ProbeIgnoreBytes never start
	// an ON period: isolated zero-window probes stay part of the
	// surrounding OFF (but still feed the ACK-clock pass, which counts
	// every data segment, exactly like the buffered analyzer).
	probe := n < s.cfg.ProbeIgnoreBytes && (!s.open || at-s.lastData > s.cfg.OffThreshold)
	if !probe {
		if !s.open {
			s.res.Cycles = append(s.res.Cycles, Cycle{Start: at})
			s.open = true
		} else if at-s.lastData > s.cfg.OffThreshold {
			cur := &s.res.Cycles[len(s.res.Cycles)-1]
			cur.End = s.lastData
			cur.OffAfter = at - s.lastData
			s.res.Cycles = append(s.res.Cycles, Cycle{Start: at})
			// A steady-state cycle opened: grow its ACK-clock slot.
			s.res.FirstRTTBytes = append(s.res.FirstRTTBytes, 0)
		}
		cur := &s.res.Cycles[len(s.res.Cycles)-1]
		cur.Bytes += int64(n)
		s.lastData = at
	}
	s.ackTick(at, n)
}

// rungTick segments per-rendition request cycles: every MP4 fragment
// header in the downstream payload announces the bitrate the client
// chose for that fragment, and contiguous same-rate stretches fold
// into one RungSpan. Retransmitted headers re-announce the same rate
// and are absorbed by the open span, so the output is insensitive to
// loss.
func (s *Streaming) rungTick(at time.Duration, seg *packet.Segment, n int) {
	if !s.rungFound && s.rungMisses >= rungScanBudget {
		return
	}
	rate := media.FragHeaderRate(seg.Payload)
	if rate > 0 {
		cur := len(s.res.Rungs) - 1
		if cur >= 0 && s.res.Rungs[cur].Bitrate == rate {
			s.res.Rungs[cur].Fragments++
		} else {
			if cur >= 0 {
				s.res.RungSwitches++
			}
			s.res.Rungs = append(s.res.Rungs, RungSpan{Bitrate: rate, Start: at, Fragments: 1})
		}
		s.rungFound = true
	} else if !s.rungFound {
		s.rungMisses++
		return
	}
	if cur := len(s.res.Rungs) - 1; cur >= 0 {
		s.res.Rungs[cur].Bytes += int64(n)
		s.res.Rungs[cur].End = at
	}
}

// ackTick accumulates bytes into the first-RTT window of the current
// steady-state cycle. Before the RTT is known, samples are deferred
// and replayed on resolution; cycle starts never move once created, so
// the replay reproduces the buffered pass exactly.
func (s *Streaming) ackTick(at time.Duration, n int) {
	if !s.rttKnown {
		s.pending = append(s.pending, ackSample{at: at, n: n})
		return
	}
	if len(s.res.Cycles) < 2 {
		return
	}
	steady := s.res.Cycles[1:]
	for s.ci < len(steady) && at > steady[s.ci].Start+s.res.RTT {
		s.ci++
	}
	if s.ci >= len(steady) {
		return
	}
	if c := steady[s.ci]; at >= c.Start && at <= c.Start+s.res.RTT {
		s.res.FirstRTTBytes[s.ci] += int64(n)
	}
}

func (s *Streaming) resolveRTT(rtt time.Duration) {
	s.res.RTT = rtt
	s.rttKnown = true
	s.synAt = nil
	pend := s.pending
	s.pending = nil
	for _, p := range pend {
		s.ackTick(p.at, p.n)
	}
}

// binTick folds the packet into the fixed-width series bins.
func (s *Streaming) binTick(at time.Duration, dir trace.Dir, seg *packet.Segment) {
	i := int(at / s.cfg.SeriesBin)
	for len(s.res.Bins) <= i {
		s.res.Bins = append(s.res.Bins, SeriesBin{
			Start:      time.Duration(len(s.res.Bins)) * s.cfg.SeriesBin,
			MinWindow:  -1,
			LastWindow: -1,
		})
	}
	b := &s.res.Bins[i]
	b.Packets++
	if dir == trace.Down {
		b.Bytes += int64(seg.Len())
	} else {
		if b.MinWindow < 0 || seg.Window < b.MinWindow {
			b.MinWindow = seg.Window
		}
		b.LastWindow = seg.Window
	}
}

// Close implements trace.Sink: it finalizes the Result.
func (s *Streaming) Close() error {
	s.finish()
	return nil
}

// Result finalizes (if Close has not run yet) and returns the
// analysis. The Result is owned by the Streaming value; further
// Capture calls are ignored once it has been produced.
func (s *Streaming) Result() *Result {
	s.finish()
	return &s.res
}

func (s *Streaming) finish() {
	if s.done {
		return
	}
	s.done = true
	if !s.rttKnown {
		// No complete handshake in the capture: the buffered
		// estimator's 40 ms fallback, applied to the deferred samples.
		s.resolveRTT(40 * time.Millisecond)
	}
	r := &s.res
	r.Packets = s.packets
	r.Duration = s.lastTS
	if r.DataSegs > 0 {
		r.RetransRate = float64(r.Retrans) / float64(r.DataSegs)
	}
	if s.open {
		r.Cycles[len(r.Cycles)-1].End = s.lastData
	}
	if len(r.Cycles) == 0 {
		return
	}

	// Phases: buffering ends where the first OFF begins.
	first := r.Cycles[0]
	r.BufferingEnd = first.End
	r.BufferedBytes = first.Bytes
	r.HasSteadyState = len(r.Cycles) > 1

	if r.HasSteadyState {
		steady := r.Cycles[1:]
		var steadyBytes int64
		for _, c := range steady {
			r.Blocks = append(r.Blocks, c.Bytes)
			steadyBytes += c.Bytes
		}
		span := steady[len(steady)-1].End - first.End
		if span > 0 {
			r.SteadyRate = float64(steadyBytes) * 8 / span.Seconds()
		}
	}

	r.Media = mediaFromStream(s.streamPrefix(), s.haveFlow, s.cfg)
	if r.Media.EncodingRate > 0 && r.SteadyRate > 0 {
		r.AccumulationRatio = r.SteadyRate / r.Media.EncodingRate
	}
	r.Strategy = classify(r)
}

// streamPrefix returns the reassembled in-order payload prefix of the
// first Down flow, nil when no flow was seen.
func (s *Streaming) streamPrefix() []byte {
	if !s.haveFlow {
		return nil
	}
	return s.asm.finish()
}

// maxHeaderBytes bounds how much of the first flow the analyzer
// reassembles: the paper's methodology only needs the HTTP response
// header and the container header behind it.
const maxHeaderBytes = 4096

// headerAsm incrementally reassembles the first maxHeaderBytes of one
// flow. It keeps only pieces that can still contribute to that prefix:
// out-of-window and contained duplicates are discarded on arrival, so
// the state is bounded by the window size, not the flow length, while
// finish reproduces Trace.Reassemble byte for byte.
//
// One divergence is accepted: pieces are filtered against the base
// known at arrival, so a SYN captured only after data that moves the
// base backward (same-4-tuple connection reuse inside one capture)
// cannot resurrect pieces already discarded, where the buffered walk
// — which keeps every piece — could. Captures whose SYNs precede
// their data (all simulator captures, and tcpdump started before the
// connection) are exact.
type headerAsm struct {
	base     uint32
	haveBase bool
	pieces   []asmPiece
}

type asmPiece struct {
	seq     uint32
	length  int32
	payload []byte
}

func (a *headerAsm) add(seg *packet.Segment) {
	if seg.HasFlag(packet.FlagSYN) {
		if base := seg.Seq + 1; !a.haveBase || base != a.base {
			a.base = base
			a.haveBase = true
			a.clip()
		}
		return
	}
	n := seg.Len()
	if n == 0 {
		return
	}
	if !a.haveBase {
		a.base = seg.Seq
		a.haveBase = true
	}
	off := int32(seg.Seq - a.base)
	if int64(off)+int64(n) <= 0 || off >= maxHeaderBytes {
		return // cannot contribute to the header window
	}
	end := seg.Seq + uint32(n)
	for _, p := range a.pieces {
		// Contained in an earlier piece: the stable seq-sorted walk
		// would consume the earlier piece first and skip this one.
		if int32(seg.Seq-p.seq) >= 0 && int32(end-(p.seq+uint32(p.length))) <= 0 {
			return
		}
	}
	a.pieces = append(a.pieces, asmPiece{seq: seg.Seq, length: int32(n), payload: seg.Payload})
}

// clip re-applies the window filter after the base moved (a SYN seen
// mid-flow).
func (a *headerAsm) clip() {
	kept := a.pieces[:0]
	for _, p := range a.pieces {
		off := int32(p.seq - a.base)
		if int64(off)+int64(p.length) <= 0 || off >= maxHeaderBytes {
			continue
		}
		kept = append(kept, p)
	}
	a.pieces = kept
}

// finish runs the same stable-sorted merge walk as Trace.Reassemble
// over the retained pieces.
func (a *headerAsm) finish() []byte {
	if len(a.pieces) == 0 {
		return nil
	}
	sort.SliceStable(a.pieces, func(i, j int) bool {
		return int32(a.pieces[i].seq-a.pieces[j].seq) < 0
	})
	out := make([]byte, 0, maxHeaderBytes)
	next := a.base
	for _, p := range a.pieces {
		off := int32(p.seq - next)
		if off+p.length <= 0 {
			continue // fully duplicate
		}
		if off > 0 {
			break // gap: cannot reassemble past it
		}
		skip := int(-off)
		take := int(p.length) - skip
		if take <= 0 {
			continue
		}
		chunk := make([]byte, take)
		if p.payload != nil && skip < len(p.payload) {
			copy(chunk, p.payload[skip:])
		}
		out = append(out, chunk...)
		next += uint32(take)
		if len(out) >= maxHeaderBytes {
			return out[:maxHeaderBytes]
		}
	}
	return out
}
