package analysis

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/packet"
	"repro/internal/trace"
)

var (
	client = packet.EP(10, 0, 0, 1, 40000)
	server = packet.EP(203, 0, 113, 10, 80)
	down   = packet.Flow{Src: server, Dst: client}
	up     = packet.Flow{Src: client, Dst: server}
)

// synth builds a trace with a handshake, an HTTP+container response
// header, a buffering burst, then periodic blocks.
type synth struct {
	tr  *trace.Trace
	seq uint32
	now time.Duration
}

func newSynth() *synth {
	s := &synth{tr: &trace.Trace{}, seq: 1000}
	s.tr.Tap(trace.Up).Capture(0, &packet.Segment{Flow: up, Seq: 99, Flags: packet.FlagSYN, Window: 1 << 18})
	s.tr.Tap(trace.Down).Capture(30*time.Millisecond, &packet.Segment{Flow: down, Seq: 999, Ack: 100, Flags: packet.FlagSYN | packet.FlagACK, Window: 1 << 18})
	s.now = 60 * time.Millisecond
	return s
}

// data appends n payload bytes at the current time as MSS segments.
func (s *synth) data(payload []byte, n int, gap time.Duration) {
	if payload != nil {
		s.tr.Tap(trace.Down).Capture(s.now, &packet.Segment{Flow: down, Seq: s.seq, Flags: packet.FlagACK, Payload: payload})
		s.seq += uint32(len(payload))
		s.now += gap
		return
	}
	for n > 0 {
		take := 1460
		if take > n {
			take = n
		}
		s.tr.Tap(trace.Down).Capture(s.now, &packet.Segment{Flow: down, Seq: s.seq, Flags: packet.FlagACK, PayloadLen: take})
		s.seq += uint32(take)
		n -= take
		s.now += gap
	}
}

func (s *synth) idle(d time.Duration) { s.now += d }

func httpHead(contentLength int64) []byte {
	return []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", contentLength))
}

func flashVideo() media.Video {
	return media.Video{ID: 7, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash}
}

// buildFlashLike synthesizes a short-ON-OFF session: 5 MB buffering
// burst then 64 kB blocks every 410 ms (1.25x accumulation at 1 Mbps).
func buildFlashLike() *trace.Trace {
	s := newSynth()
	v := flashVideo()
	s.data(append(httpHead(v.Size()), media.EncodeFLVHeader(v)...), 0, time.Millisecond)
	s.data(nil, 5<<20, 120*time.Microsecond) // buffering at ~100 Mbps
	for i := 0; i < 20; i++ {
		s.idle(350 * time.Millisecond)
		s.data(nil, 64<<10, 120*time.Microsecond)
	}
	return s.tr
}

func TestAnalyzeFlashShortOnOff(t *testing.T) {
	r := Analyze(buildFlashLike(), Config{})
	if r.Strategy != ShortOnOff {
		t.Fatalf("strategy = %v, want Short ON-OFF", r.Strategy)
	}
	if !r.HasSteadyState || len(r.Blocks) != 20 {
		t.Fatalf("blocks = %d, want 20", len(r.Blocks))
	}
	if mb := r.MedianBlock(); mb < 60<<10 || mb > 70<<10 {
		t.Fatalf("median block = %d, want ~64k", mb)
	}
	if r.BufferedBytes < 5<<20 || r.BufferedBytes > 5<<20+128<<10 {
		t.Fatalf("buffered = %d, want ~5 MB", r.BufferedBytes)
	}
	if r.Media.Container != media.Flash || r.Media.RateSource != "header" {
		t.Fatalf("media = %+v", r.Media)
	}
	if r.Media.EncodingRate != 1e6 {
		t.Fatalf("rate = %v", r.Media.EncodingRate)
	}
	// Steady rate: 64 kB per ~410 ms ≈ 1.28 Mbps -> accumulation ≈ 1.28.
	if r.AccumulationRatio < 1.0 || r.AccumulationRatio > 1.6 {
		t.Fatalf("accumulation ratio = %v", r.AccumulationRatio)
	}
	if r.RTT != 30*time.Millisecond {
		t.Fatalf("RTT = %v", r.RTT)
	}
}

func TestAnalyzeNoOnOff(t *testing.T) {
	s := newSynth()
	v := flashVideo()
	s.data(append(httpHead(v.Size()), media.EncodeFLVHeader(v)...), 0, time.Millisecond)
	s.data(nil, 20<<20, 120*time.Microsecond) // whole video at line rate
	r := Analyze(s.tr, Config{})
	if r.Strategy != NoOnOff {
		t.Fatalf("strategy = %v, want No ON-OFF", r.Strategy)
	}
	if r.HasSteadyState {
		t.Fatal("bulk transfer must have no steady state")
	}
	if len(r.Blocks) != 0 {
		t.Fatalf("blocks = %d", len(r.Blocks))
	}
}

func TestAnalyzeLongOnOff(t *testing.T) {
	s := newSynth()
	v := media.Video{ID: 9, EncodingRate: 1.5e6, Duration: 600 * time.Second, Container: media.HTML5}
	s.data(append(httpHead(v.Size()), media.EncodeWebMHeader(v)...), 0, time.Millisecond)
	s.data(nil, 12<<20, 120*time.Microsecond) // Chrome-like buffering
	for i := 0; i < 5; i++ {
		s.idle(30 * time.Second)
		s.data(nil, 6<<20, 120*time.Microsecond) // blocks > 2.5 MB
	}
	r := Analyze(s.tr, Config{})
	if r.Strategy != LongOnOff {
		t.Fatalf("strategy = %v, want Long ON-OFF", r.Strategy)
	}
	if mb := r.MedianBlock(); mb < LongCycleBytes {
		t.Fatalf("median block = %d, want > 2.5 MB", mb)
	}
	// WebM fallback: rate from Content-Length / duration.
	if r.Media.RateSource != "content-length" {
		t.Fatalf("rate source = %q", r.Media.RateSource)
	}
	if r.Media.EncodingRate < 1.4e6 || r.Media.EncodingRate > 1.6e6 {
		t.Fatalf("estimated rate = %v, want ~1.5e6", r.Media.EncodingRate)
	}
}

func TestAnalyzeMultipleStrategy(t *testing.T) {
	s := newSynth()
	v := media.Video{ID: 3, EncodingRate: 2e6, Duration: 300 * time.Second, Container: media.HTML5}
	s.data(append(httpHead(v.Size()), media.EncodeWebMHeader(v)...), 0, time.Millisecond)
	s.data(nil, 4<<20, 120*time.Microsecond)
	for i := 0; i < 6; i++ { // iPad-like mix of small and large blocks
		s.idle(2 * time.Second)
		if i%2 == 0 {
			s.data(nil, 512<<10, 120*time.Microsecond)
		} else {
			s.data(nil, 5<<20, 120*time.Microsecond)
		}
	}
	r := Analyze(s.tr, Config{})
	if r.Strategy != MultipleOnOff {
		t.Fatalf("strategy = %v, want Multiple", r.Strategy)
	}
}

func TestSegmentationOffDurations(t *testing.T) {
	s := newSynth()
	s.data(nil, 1<<20, 120*time.Microsecond)
	s.idle(2 * time.Second)
	s.data(nil, 64<<10, 120*time.Microsecond)
	s.idle(3 * time.Second)
	s.data(nil, 64<<10, 120*time.Microsecond)
	r := Analyze(s.tr, Config{})
	if len(r.Cycles) != 3 {
		t.Fatalf("cycles = %d, want 3", len(r.Cycles))
	}
	if off := r.Cycles[0].OffAfter; off < 1900*time.Millisecond || off > 2100*time.Millisecond {
		t.Fatalf("first OFF = %v, want ~2s", off)
	}
	if r.Cycles[2].OffAfter != 0 {
		t.Fatal("last cycle must have no OffAfter")
	}
}

func TestSlowStartGapsDoNotSplitBuffering(t *testing.T) {
	// Early RTT-spaced bursts (slow start) must not register as OFF
	// periods with the default 150 ms threshold.
	s := newSynth()
	for burst := 1; burst <= 8; burst *= 2 {
		s.data(nil, burst*1460, 100*time.Microsecond)
		s.idle(80 * time.Millisecond) // RTT-spaced
	}
	s.data(nil, 2<<20, 120*time.Microsecond)
	r := Analyze(s.tr, Config{})
	if len(r.Cycles) != 1 {
		t.Fatalf("slow-start gaps split the buffering phase into %d cycles", len(r.Cycles))
	}
}

func TestAckClockSamples(t *testing.T) {
	// Construct two ON periods: one blasting a full block within the
	// RTT (no ack clock), one trickling it (ack-clocked).
	s := newSynth() // RTT = 30ms
	s.data(nil, 1<<20, 100*time.Microsecond)
	s.idle(5 * time.Second)
	s.data(nil, 64<<10, 100*time.Microsecond) // 45 segs * 0.1ms = 4.5ms < RTT
	s.idle(5 * time.Second)
	s.data(nil, 64<<10, 5*time.Millisecond) // spread over 220ms >> RTT
	r := Analyze(s.tr, Config{})
	if len(r.FirstRTTBytes) != 2 {
		t.Fatalf("ack clock samples = %d", len(r.FirstRTTBytes))
	}
	if r.FirstRTTBytes[0] < 60<<10 {
		t.Fatalf("burst block first-RTT bytes = %d, want ~64k", r.FirstRTTBytes[0])
	}
	if r.FirstRTTBytes[1] >= r.FirstRTTBytes[0]/2 {
		t.Fatalf("trickled block should show much smaller first-RTT bytes: %d vs %d",
			r.FirstRTTBytes[1], r.FirstRTTBytes[0])
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Analyze(&trace.Trace{}, Config{})
	if r.Strategy != StrategyUnknown {
		t.Fatalf("strategy = %v", r.Strategy)
	}
	if r.TotalBytes != 0 || len(r.Cycles) != 0 {
		t.Fatal("empty trace must yield empty result")
	}
}

func TestKnownRateFallback(t *testing.T) {
	s := newSynth()
	s.data([]byte("garbage no http here"), 0, time.Millisecond)
	s.data(nil, 1<<20, 120*time.Microsecond)
	s.idle(time.Second)
	s.data(nil, 64<<10, 120*time.Microsecond)
	r := Analyze(s.tr, Config{KnownRate: 2e6})
	if r.Media.RateSource != "known" || r.Media.EncodingRate != 2e6 {
		t.Fatalf("media = %+v", r.Media)
	}
	if r.AccumulationRatio == 0 {
		t.Fatal("known rate must enable the accumulation ratio")
	}
}

func TestPlaybackBuffered(t *testing.T) {
	r := Analyze(buildFlashLike(), Config{})
	// ~5 MB at 1 Mbps ≈ 40 s of playback.
	if pb := r.PlaybackBuffered(); pb < 38 || pb > 46 {
		t.Fatalf("playback buffered = %.1fs, want ~40s", pb)
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		NoOnOff: "No ON-OFF", ShortOnOff: "Short ON-OFF",
		LongOnOff: "Long ON-OFF", MultipleOnOff: "Multiple", StrategyUnknown: "Unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestResultString(t *testing.T) {
	if Analyze(buildFlashLike(), Config{}).String() == "" {
		t.Fatal("String must be non-empty")
	}
}
