package analysis

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// Additional edge-case and property tests for the analyzer.

func TestProbeFilteredFromCycles(t *testing.T) {
	s := newSynth()
	s.data(nil, 1<<20, 120*time.Microsecond)
	// Zero-window probes: 1-byte segments every second inside a long
	// OFF period. They must not register as ON periods.
	for i := 0; i < 10; i++ {
		s.idle(time.Second)
		s.data(nil, 1, 0)
	}
	s.idle(time.Second)
	s.data(nil, 512<<10, 120*time.Microsecond)
	r := Analyze(s.tr, Config{})
	if len(r.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2 (probes must not split the OFF period)", len(r.Cycles))
	}
	if off := r.Cycles[0].OffAfter; off < 10*time.Second {
		t.Fatalf("OFF period %v, want the full probe-covered silence", off)
	}
}

func TestSmallSegmentsInsideOnPeriodCount(t *testing.T) {
	// A tiny segment in the middle of an ON burst (e.g. an HTTP
	// header) is data, not a probe.
	s := newSynth()
	s.data(nil, 64<<10, 120*time.Microsecond)
	s.data([]byte("tiny"), 0, 120*time.Microsecond)
	s.data(nil, 64<<10, 120*time.Microsecond)
	r := Analyze(s.tr, Config{})
	if len(r.Cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(r.Cycles))
	}
	if r.Cycles[0].Bytes != int64(128<<10)+4 {
		t.Fatalf("cycle bytes = %d", r.Cycles[0].Bytes)
	}
}

func TestNearContinuousTransferIsBulk(t *testing.T) {
	// A bulk transfer with one loss-recovery stall must classify as
	// No ON-OFF, not as two giant blocks.
	s := newSynth()
	s.data(nil, 20<<20, 120*time.Microsecond)
	s.idle(300 * time.Millisecond) // an RTO-backoff stall
	s.data(nil, 30<<20, 120*time.Microsecond)
	r := Analyze(s.tr, Config{})
	if r.Strategy != NoOnOff {
		t.Fatalf("strategy = %v, want No ON-OFF (stall << active span)", r.Strategy)
	}
}

func TestMultiFlowAggregation(t *testing.T) {
	// Blocks delivered over different connections (iPad/Netflix style)
	// aggregate into one ON-OFF view.
	tr := &trace.Trace{}
	dt := tr.Tap(trace.Down)
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		f := packet.Flow{
			Src: packet.EP(203, 0, 113, 10, 80),
			Dst: packet.EP(10, 0, 0, 1, uint16(40000+i)),
		}
		for b := 0; b < 700<<10; b += 1460 {
			dt.Capture(now, &packet.Segment{Flow: f, Seq: uint32(1000 + b), Flags: packet.FlagACK, PayloadLen: 1460})
			now += 150 * time.Microsecond
		}
		now += 2 * time.Second
	}
	r := Analyze(tr, Config{})
	if r.ConnCount != 6 {
		t.Fatalf("conn count = %d", r.ConnCount)
	}
	if len(r.Cycles) != 6 {
		t.Fatalf("cycles = %d, want 6", len(r.Cycles))
	}
	if r.Strategy != ShortOnOff {
		t.Fatalf("strategy = %v", r.Strategy)
	}
}

func TestOffThresholdConfigurable(t *testing.T) {
	s := newSynth()
	s.data(nil, 1<<20, 120*time.Microsecond)
	s.idle(200 * time.Millisecond)
	s.data(nil, 64<<10, 120*time.Microsecond)
	// Default threshold 150 ms: split into two cycles.
	if r := Analyze(s.tr, Config{}); len(r.Cycles) != 2 {
		t.Fatalf("default threshold cycles = %d", len(r.Cycles))
	}
	// A 300 ms threshold merges them.
	if r := Analyze(s.tr, Config{OffThreshold: 300 * time.Millisecond}); len(r.Cycles) != 1 {
		t.Fatalf("relaxed threshold cycles = %d", len(r.Cycles))
	}
}

// Property: cycle invariants hold for arbitrary data/idle interleaving —
// bytes sum to the trace total, cycles are ordered and non-overlapping,
// and all OFF gaps exceed the threshold.
func TestPropertyCycleInvariants(t *testing.T) {
	f := func(steps []uint16) bool {
		s := newSynth()
		var total int64
		for _, st := range steps {
			n := int(st%64+1) * 1460
			s.data(nil, n, 120*time.Microsecond)
			total += int64(n)
			s.idle(time.Duration(st%500) * time.Millisecond)
		}
		if total == 0 {
			return true
		}
		r := Analyze(s.tr, Config{})
		var sum int64
		for i, c := range r.Cycles {
			sum += c.Bytes
			if c.End < c.Start {
				return false
			}
			if i > 0 && c.Start < r.Cycles[i-1].End {
				return false
			}
			if i < len(r.Cycles)-1 && c.OffAfter <= 150*time.Millisecond {
				return false
			}
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: classification is stable under trace duplication in time —
// appending the same pattern again never turns a short-cycle session
// into bulk.
func TestPropertyClassificationMonotone(t *testing.T) {
	build := func(reps int) *trace.Trace {
		s := newSynth()
		s.data(nil, 2<<20, 120*time.Microsecond)
		for i := 0; i < reps; i++ {
			s.idle(time.Second)
			s.data(nil, 64<<10, 120*time.Microsecond)
		}
		return s.tr
	}
	small := Analyze(build(5), Config{})
	big := Analyze(build(50), Config{})
	if small.Strategy != ShortOnOff || big.Strategy != ShortOnOff {
		t.Fatalf("strategies: %v, %v", small.Strategy, big.Strategy)
	}
	if big.MedianBlock() != small.MedianBlock() {
		t.Fatalf("median block changed with repetition: %d vs %d", big.MedianBlock(), small.MedianBlock())
	}
}

func TestRTTFallbackWithoutHandshake(t *testing.T) {
	tr := &trace.Trace{}
	dt := tr.Tap(trace.Down)
	dt.Capture(time.Millisecond, &packet.Segment{Flow: down, Seq: 1, Flags: packet.FlagACK, PayloadLen: 1460})
	r := Analyze(tr, Config{})
	if r.RTT != 40*time.Millisecond {
		t.Fatalf("fallback RTT = %v", r.RTT)
	}
}
