package tcp

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// pair wires two hosts over a duplex path with the given profile.
type pair struct {
	sch            *sim.Scheduler
	client, server *Host
	path           *netem.Path
}

func newPair(seed int64, p netem.Profile) *pair {
	sch := sim.NewScheduler(seed)
	client := NewHost(sch, 10, 0, 0, 1)
	server := NewHost(sch, 203, 0, 113, 10)
	path := netem.NewPath(sch, p, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	return &pair{sch: sch, client: client, server: server, path: path}
}

func noLossProfile() netem.Profile {
	return netem.Profile{Name: "test", Down: 10 * netem.Mbps, Up: 10 * netem.Mbps, RTT: 40 * time.Millisecond}
}

func TestHandshake(t *testing.T) {
	p := newPair(1, noLossProfile())
	serverConnected, clientConnected := false, false
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { serverConnected = true }})
	})
	c := p.client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{OnConnected: func() { clientConnected = true }})
	p.sch.RunUntil(time.Second)
	if !clientConnected || !serverConnected {
		t.Fatalf("handshake incomplete: client=%v server=%v", clientConnected, serverConnected)
	}
	if c.ConnState() != StateEstablished {
		t.Fatalf("client state %v", c.ConnState())
	}
	if c.HandshakeRTT < 40*time.Millisecond || c.HandshakeRTT > 45*time.Millisecond {
		t.Fatalf("handshake RTT %v, want ~40ms", c.HandshakeRTT)
	}
}

func TestBulkTransferIntegrity(t *testing.T) {
	p := newPair(2, noLossProfile())
	// Pattern data so corruption/reordering is detectable.
	payload := make([]byte, 200<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got bytes.Buffer
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.Write(payload) }})
	})
	c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{OnReadable: func() {
		buf := make([]byte, 64<<10)
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			got.Write(buf[:n])
		}
	}})
	p.sch.RunUntil(30 * time.Second)
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", got.Len(), len(payload))
	}
}

func TestTransferWithLossIntegrity(t *testing.T) {
	p := newPair(3, noLossProfile())
	p.path.Down.SetLoss(netem.RandomLoss{Rate: 0.02})
	payload := make([]byte, 500<<10)
	for i := range payload {
		payload[i] = byte(i >> 3)
	}
	var got bytes.Buffer
	var srv *Conn
	p.server.Listen(80, Config{}, func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{OnConnected: func() { c.Write(payload) }})
	})
	c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{OnReadable: func() {
		buf := make([]byte, 64<<10)
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			got.Write(buf[:n])
		}
	}})
	p.sch.RunUntil(120 * time.Second)
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("lossy transfer corrupted: got %d want %d", got.Len(), len(payload))
	}
	if srv.Stats.Retransmits == 0 {
		t.Fatal("2% loss must cause retransmissions")
	}
}

func TestZeroFillBulk(t *testing.T) {
	p := newPair(4, noLossProfile())
	const total = 5 << 20
	received := 0
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(total) }})
	})
	c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{OnReadable: func() { received += c.Discard(1 << 30) }})
	p.sch.RunUntil(60 * time.Second)
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestThroughputTracksBottleneck(t *testing.T) {
	prof := noLossProfile() // 10 Mbps
	p := newPair(5, prof)
	const total = 4 << 20
	received := 0
	var done time.Duration
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(total) }})
	})
	c := p.client.Dial(Config{RecvBuf: 2 << 20}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{OnReadable: func() {
		received += c.Discard(1 << 30)
		if received == total {
			done = p.sch.Now()
		}
	}})
	p.sch.RunUntil(2 * time.Minute)
	if received != total {
		t.Fatalf("received %d/%d", received, total)
	}
	rate := float64(total) * 8 / done.Seconds()
	if rate < 7e6 || rate > 10.5e6 {
		t.Fatalf("goodput %.1f Mbps, want near 10 Mbps bottleneck", rate/1e6)
	}
}

func TestFlowControlZeroWindowAndPull(t *testing.T) {
	// Server writes 1 MB; client has a 128 KB buffer and reads nothing
	// at first: the window must close and transfer stall. Then the
	// client pulls 64 KB chunks on a timer; the stall must clear each
	// time — this is the IE/HTML5 pacing mechanism from the paper.
	p := newPair(6, noLossProfile())
	const total = 1 << 20
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(total) }})
	})
	c := p.client.Dial(Config{RecvBuf: 128 << 10}, packet.EP(203, 0, 113, 10, 80))
	read := 0
	p.sch.RunUntil(3 * time.Second)
	if c.Buffered() == 0 {
		t.Fatal("receive buffer empty; expected it to fill")
	}
	if c.Buffered() > 128<<10 {
		t.Fatalf("receive buffer %d exceeds capacity", c.Buffered())
	}
	stalledAt := c.Stats.BytesReceived
	p.sch.RunUntil(6 * time.Second)
	if c.Stats.BytesReceived != stalledAt {
		t.Fatalf("transfer did not stall on closed window: %d -> %d", stalledAt, c.Stats.BytesReceived)
	}
	// Pull in 64 KB steps every 100 ms.
	var pull func()
	pull = func() {
		read += c.Discard(64 << 10)
		if read < total {
			p.sch.After(100*time.Millisecond, pull)
		}
	}
	p.sch.After(0, pull)
	p.sch.RunUntil(30 * time.Second)
	if read != total {
		t.Fatalf("pulled %d, want %d", read, total)
	}
}

func TestPersistProbeSurvivesLostWindowUpdate(t *testing.T) {
	p := newPair(7, noLossProfile())
	const total = 512 << 10
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(total) }})
	})
	c := p.client.Dial(Config{RecvBuf: 64 << 10}, packet.EP(203, 0, 113, 10, 80))
	p.sch.RunUntil(2 * time.Second) // window now closed
	// Simulate losing every upstream packet briefly (the window-update
	// ACK dies), then heal the path. Persist probes must revive the
	// transfer.
	p.path.Up.SetLoss(netem.RandomLoss{Rate: 1.0})
	c.Discard(1 << 30) // window update is sent into the black hole
	p.sch.RunUntil(2500 * time.Millisecond)
	p.path.Up.SetLoss(netem.NoLoss{})
	got := 0
	c.SetCallbacks(Callbacks{OnReadable: func() { got += c.Discard(1 << 30) }})
	p.sch.RunUntil(60 * time.Second)
	if c.Stats.BytesReceived != total {
		t.Fatalf("received %d, want %d (persist probe must recover)", c.Stats.BytesReceived, total)
	}
}

func TestFastRetransmitOnIsolatedLoss(t *testing.T) {
	p := newPair(8, noLossProfile())
	// Drop exactly one mid-stream data packet.
	drop := &dropNth{n: 100}
	p.path.Down.SetLoss(drop)
	const total = 1 << 20
	var srv *Conn
	p.server.Listen(80, Config{}, func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(total) }})
	})
	c := p.client.Dial(Config{RecvBuf: 2 << 20}, packet.EP(203, 0, 113, 10, 80))
	got := 0
	c.SetCallbacks(Callbacks{OnReadable: func() { got += c.Discard(1 << 30) }})
	p.sch.RunUntil(time.Minute)
	if got != total {
		t.Fatalf("received %d/%d", got, total)
	}
	if srv.Stats.FastRetransmit == 0 {
		t.Fatal("isolated loss should trigger fast retransmit")
	}
	if srv.Stats.Timeouts != 0 {
		t.Fatalf("isolated mid-stream loss recovered via %d timeouts; want fast retransmit only", srv.Stats.Timeouts)
	}
}

// dropNth drops exactly the nth packet offered.
type dropNth struct {
	n     int
	count int
}

// Drop implements netem.LossModel.
func (d *dropNth) Drop(*rand.Rand) bool {
	d.count++
	return d.count == d.n
}

func TestRTORecoversTailLoss(t *testing.T) {
	p := newPair(9, noLossProfile())
	// Kill the path entirely mid-transfer, then restore: only RTO can
	// recover (no dup acks arrive).
	const total = 256 << 10
	var srv *Conn
	p.server.Listen(80, Config{}, func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(total) }})
	})
	c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
	got := 0
	c.SetCallbacks(Callbacks{OnReadable: func() { got += c.Discard(1 << 30) }})
	p.sch.After(200*time.Millisecond, func() { p.path.Down.SetLoss(netem.RandomLoss{Rate: 1.0}) })
	p.sch.After(1200*time.Millisecond, func() { p.path.Down.SetLoss(netem.NoLoss{}) })
	p.sch.RunUntil(2 * time.Minute)
	if got != total {
		t.Fatalf("received %d/%d after blackout", got, total)
	}
	if srv.Stats.Timeouts == 0 {
		t.Fatal("blackout must be recovered by RTO")
	}
}

func TestCloseHandshake(t *testing.T) {
	p := newPair(10, noLossProfile())
	serverSawClose, clientClosed := false, false
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{
			OnConnected:   func() { c.Write([]byte("bye")); c.Close() },
			OnRemoteClose: func() { serverSawClose = true },
		})
	})
	c := p.client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{
		OnRemoteClose: func() {
			buf := make([]byte, 16)
			if n := c.Read(buf); string(buf[:n]) != "bye" {
				t.Errorf("data before FIN = %q", buf[:n])
			}
			c.Close()
		},
		OnClosed: func() { clientClosed = true },
	})
	p.sch.RunUntil(5 * time.Second)
	if !clientClosed {
		t.Fatal("client FIN never acked")
	}
	if !serverSawClose {
		t.Fatal("server did not see client FIN")
	}
	if p.client.ConnCount() != 0 {
		t.Fatalf("client still tracks %d conns", p.client.ConnCount())
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(11, noLossProfile())
	var srv *Conn
	serverClosed := false
	p.server.Listen(80, Config{}, func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{
			OnConnected: func() { c.WriteZero(1 << 20) },
			OnClosed:    func() { serverClosed = true },
		})
	})
	c := p.client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
	p.sch.RunUntil(500 * time.Millisecond)
	c.Abort()
	p.sch.RunUntil(2 * time.Second)
	if !serverClosed {
		t.Fatal("server not torn down by RST")
	}
	_ = srv
	if p.client.ConnCount() != 0 || p.server.ConnCount() != 0 {
		t.Fatal("connections leaked after abort")
	}
}

func TestHandshakeSYNLossRetry(t *testing.T) {
	p := newPair(12, noLossProfile())
	// Lose the first SYN.
	first := true
	p.path.Up.SetLoss(lossFunc(func() bool {
		if first {
			first = false
			return true
		}
		return false
	}))
	connected := false
	p.server.Listen(80, Config{}, func(c *Conn) {})
	c := p.client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
	c.SetCallbacks(Callbacks{OnConnected: func() { connected = true }})
	p.sch.RunUntil(5 * time.Second)
	if !connected {
		t.Fatal("SYN retransmission did not complete handshake")
	}
	if c.Stats.Retransmits == 0 {
		t.Fatal("expected SYN retransmit counted")
	}
}

type lossFunc func() bool

// Drop implements netem.LossModel.
func (f lossFunc) Drop(*rand.Rand) bool { return f() }

func TestDelayedAckReducesAckCount(t *testing.T) {
	run := func(delayed bool) int {
		p := newPair(13, noLossProfile())
		p.server.Listen(80, Config{}, func(c *Conn) {
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(512 << 10) }})
		})
		c := p.client.Dial(Config{RecvBuf: 1 << 20, NoDelayedAck: !delayed}, packet.EP(203, 0, 113, 10, 80))
		c.SetCallbacks(Callbacks{OnReadable: func() { c.Discard(1 << 30) }})
		p.sch.RunUntil(30 * time.Second)
		return p.path.Up.Sent
	}
	withDelay := run(true)
	without := run(false)
	if withDelay >= without {
		t.Fatalf("delayed ACKs sent %d acks, immediate sent %d; delayed must send fewer", withDelay, without)
	}
}

func TestIdleResetAblation(t *testing.T) {
	// After a long idle period, a sender with IdleReset must restart
	// from the initial window (ack-clocked ramp) while the default
	// sender blasts the whole block — the paper's Figure 9 contrast.
	burstAfterIdle := func(idleReset bool) int {
		p := newPair(14, noLossProfile())
		var srv *Conn
		p.server.Listen(80, Config{IdleReset: idleReset}, func(c *Conn) {
			srv = c
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(256 << 10) }})
		})
		c := p.client.Dial(Config{RecvBuf: 4 << 20}, packet.EP(203, 0, 113, 10, 80))
		c.SetCallbacks(Callbacks{OnReadable: func() { c.Discard(1 << 30) }})
		p.sch.RunUntil(5 * time.Second)
		// Idle 10 s, then send another block and count bytes put on
		// the wire in the first RTT.
		p.sch.RunUntil(15 * time.Second)
		before := srv.Stats.BytesSent
		srv.WriteZero(256 << 10)
		p.sch.RunUntil(15*time.Second + 40*time.Millisecond) // one RTT
		return int(srv.Stats.BytesSent - before)
	}
	withReset := burstAfterIdle(true)
	without := burstAfterIdle(false)
	if withReset >= without {
		t.Fatalf("first-RTT burst with idle reset (%d) must be smaller than without (%d)", withReset, without)
	}
	if without < 100<<10 {
		t.Fatalf("without idle reset the burst should approach the block size, got %d", without)
	}
}

func TestSequenceOffsets(t *testing.T) {
	if seqLT(1, 2) != true || seqLT(2, 1) != false {
		t.Fatal("seqLT basic")
	}
	// Wraparound.
	var a uint32 = 0xFFFFFFF0
	var b uint32 = 0x10
	if !seqLT(a, b) {
		t.Fatal("seqLT must handle wraparound")
	}
	if !seqLEQ(a, a) {
		t.Fatal("seqLEQ reflexive")
	}
}

func TestStateString(t *testing.T) {
	for s := StateSynSent; s <= StateClosed; s++ {
		if s.String() == "UNKNOWN" {
			t.Fatalf("state %d has no name", s)
		}
	}
	if State(99).String() != "UNKNOWN" {
		t.Fatal("unknown state must stringify to UNKNOWN")
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() (int, time.Duration) {
		p := newPair(77, netem.Residence)
		p.server.Listen(80, Config{}, func(c *Conn) {
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(2 << 20) }})
		})
		c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
		done := time.Duration(0)
		got := 0
		c.SetCallbacks(Callbacks{OnReadable: func() {
			got += c.Discard(1 << 30)
			if got == 2<<20 {
				done = p.sch.Now()
			}
		}})
		p.sch.RunUntil(2 * time.Minute)
		return got, done
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("same-seed runs diverged: (%d,%v) vs (%d,%v)", g1, d1, g2, d2)
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := newPair(1, noLossProfile())
		p.server.Listen(80, Config{}, func(c *Conn) {
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(1 << 20) }})
		})
		c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
		c.SetCallbacks(Callbacks{OnReadable: func() { c.Discard(1 << 30) }})
		p.sch.RunUntil(time.Minute)
	}
}
