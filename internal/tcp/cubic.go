package tcp

import (
	"math"
	"time"
)

// CUBIC constants (RFC 8312): C scales the cubic growth curve,
// beta is the multiplicative-decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// cubic implements RFC 8312 CUBIC congestion control on the virtual
// clock. Window growth in congestion avoidance follows the cubic
// W(t) = C·(t−K)³ + W_max curve anchored at the last loss epoch —
// concave while approaching W_max, convex while probing beyond it —
// with the TCP-friendly region as a lower bound so short-RTT paths
// never grow slower than Reno. Loss handling keeps the Conn's NewReno
// recovery mechanics (fast retransmit, partial-ack refill); only the
// window arithmetic differs.
//
// Everything is derived from AckEvent fields and IEEE-754 arithmetic,
// so runs are bit-identical for a given event sequence (no wall
// clock, no randomness).
type cubic struct {
	mss      int
	initCwnd int

	cwnd     int
	ssthresh int

	// Epoch state for the cubic curve. epochStart < 0 means no epoch
	// is open; the next congestion-avoidance ack opens one.
	epochStart time.Duration
	wMax       float64 // window (segments) at the last loss event
	k          float64 // time to regain wMax on the curve, seconds
	origin     float64 // curve origin (segments)
	westBase   float64 // TCP-friendly estimate base (segments at epoch)
	frac       float64 // fractional cwnd bytes not yet materialized

	dupAcks    int
	inRecovery bool
	recoverPt  int64
}

// Init implements CongestionControl.
func (cu *cubic) Init(cfg Config, _ time.Duration) {
	cu.mss = cfg.MSS
	cu.initCwnd = cfg.InitCwndSegs * cfg.MSS
	cu.cwnd = cu.initCwnd
	cu.ssthresh = 1 << 30
	cu.epochStart = -1
	cu.wMax = 0
	cu.frac = 0
	cu.dupAcks = 0
	cu.inRecovery = false
	cu.recoverPt = 0
}

// Cwnd implements CongestionControl.
func (cu *cubic) Cwnd() int { return cu.cwnd }

// InRecovery implements CongestionControl.
func (cu *cubic) InRecovery() bool { return cu.inRecovery }

// Name implements CongestionControl.
func (cu *cubic) Name() string { return CCCubic }

// OnAck implements CongestionControl.
func (cu *cubic) OnAck(ev AckEvent) CcAction {
	if cu.inRecovery {
		if ev.AckOff >= cu.recoverPt {
			cu.inRecovery = false
			cu.cwnd = cu.ssthresh
			cu.dupAcks = 0
			cu.epochStart = -1
			return CcNone
		}
		cu.cwnd = maxInt(cu.cwnd-ev.Acked+cu.mss, cu.mss)
		return CcRetransmit
	}
	cu.dupAcks = 0
	if cu.cwnd < cu.ssthresh {
		cu.cwnd += minInt(ev.Acked, cu.mss) // slow start
		return CcNone
	}
	cu.avoid(ev)
	return CcNone
}

// avoid grows cwnd along the cubic curve (congestion avoidance).
func (cu *cubic) avoid(ev AckEvent) {
	cwndSeg := float64(cu.cwnd) / float64(cu.mss)
	if cu.epochStart < 0 {
		cu.epochStart = ev.Now
		if cwndSeg < cu.wMax {
			cu.k = math.Cbrt((cu.wMax - cwndSeg) / cubicC)
			cu.origin = cu.wMax
		} else {
			cu.k = 0
			cu.origin = cwndSeg
		}
		cu.westBase = cwndSeg
		cu.frac = 0
	}
	// RFC 8312 §4.1: the curve is evaluated one RTT ahead, so the
	// window reaches the target a round later.
	t := (ev.Now - cu.epochStart + ev.SRTT).Seconds()
	d := t - cu.k
	target := cu.origin + cubicC*d*d*d
	// TCP-friendly region (§4.2): never slower than a Reno flow that
	// saw the same epoch.
	if ev.SRTT > 0 {
		west := cu.westBase + 3*(1-cubicBeta)/(1+cubicBeta)*(t/ev.SRTT.Seconds())
		if target < west {
			target = west
		}
	}
	if target <= cwndSeg {
		return // max-probing plateau: hold
	}
	// Per RFC: cwnd grows (target−cwnd)/cwnd per arriving ACK; with
	// byte-counted acks that is (target−cwnd)/cwnd · acked bytes.
	// Materialize whole bytes, capped at one MSS per ack so a stale
	// epoch can never step the window discontinuously.
	cu.frac += (target - cwndSeg) / cwndSeg * float64(ev.Acked)
	if cu.frac >= 1 {
		inc := int(cu.frac)
		if inc > cu.mss {
			inc = cu.mss
		}
		cu.cwnd += inc
		cu.frac -= float64(inc)
		if cu.frac > float64(cu.mss) {
			cu.frac = float64(cu.mss) // bound carried debt
		}
	}
}

// OnDupAck implements CongestionControl.
func (cu *cubic) OnDupAck(ev AckEvent) CcAction {
	cu.dupAcks++
	if cu.inRecovery {
		cu.cwnd += cu.mss // inflation keeps the ack clock running
		return CcNone
	}
	if cu.dupAcks == 3 {
		cu.onLoss()
		cu.inRecovery = true
		cu.recoverPt = ev.SndNxt
		cu.cwnd = cu.ssthresh + 3*cu.mss
		return CcRetransmit
	}
	return CcNone
}

// onLoss applies the CUBIC multiplicative decrease and re-anchors the
// curve, with fast convergence (§4.6) when the loss arrived before
// the window regained the previous wMax.
func (cu *cubic) onLoss() {
	cwndSeg := float64(cu.cwnd) / float64(cu.mss)
	cu.epochStart = -1
	if cwndSeg < cu.wMax {
		cu.wMax = cwndSeg * (2 - cubicBeta) / 2
	} else {
		cu.wMax = cwndSeg
	}
	cu.ssthresh = maxInt(int(float64(cu.cwnd)*cubicBeta), 2*cu.mss)
}

// OnRTO implements CongestionControl.
func (cu *cubic) OnRTO(AckEvent) {
	cu.onLoss()
	cu.cwnd = cu.mss
	cu.frac = 0
	cu.dupAcks = 0
	cu.inRecovery = false
}

// OnIdle implements CongestionControl.
func (cu *cubic) OnIdle(time.Duration) {
	cu.cwnd = minInt(cu.cwnd, cu.initCwnd)
	cu.epochStart = -1
	cu.frac = 0
}
