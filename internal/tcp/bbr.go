package tcp

import "time"

// BBR-lite tuning. Real BBR paces on a delivery-rate estimator over
// per-packet send/ack timestamps; the simulator's event-driven stack
// has no pacing layer, so this model-based variant sizes cwnd from
// the same two quantities BBR models — bottleneck bandwidth and
// round-trip propagation time — measured analytically from the ack
// stream on the virtual clock.
const (
	bbrBwWinRounds = 8    // windowed-max bandwidth filter length, rounds
	bbrStartupGain = 2.0  // cwnd gain while probing for the ceiling
	bbrPlateauGain = 1.25 // a round must beat this to extend startup
	bbrFullBwCount = 3    // plateau rounds before leaving startup
	bbrCycleLen    = 8    // PROBE_BW gain-cycle length
	bbrMinCwndSegs = 4    // cwnd floor, segments
)

// bbrCycleGains is the PROBE_BW pacing-gain cycle: probe up, drain
// the queue the probe built, then cruise at the estimated BDP.
var bbrCycleGains = [bbrCycleLen]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bbrLite phases.
const (
	bbrStartup = iota
	bbrDrain
	bbrProbeBW
)

// bbrLite is a model-based BBR-flavoured controller: it estimates the
// bottleneck bandwidth as a windowed max of per-round delivery rates
// (acked bytes over elapsed virtual time), tracks the minimum smoothed
// RTT as RTprop, and sets cwnd = gain × estimated BDP. STARTUP doubles
// the window each round until the delivery rate stops growing, DRAIN
// lets the queue empty, and PROBE_BW cycles gains to re-probe. Loss is
// repaired by the Conn's NewReno machinery (fast retransmit, hole
// refill) but — unlike the loss-based controllers — does not collapse
// the window: the model, not the drop, sizes it.
type bbrLite struct {
	mss      int
	initCwnd int
	cwnd     int

	// Model.
	rtProp time.Duration           // min smoothed RTT observed
	bwWin  [bbrBwWinRounds]float64 // delivery-rate samples, bytes/sec
	bwN    int                     // valid samples in bwWin
	bwIdx  int                     // next slot to overwrite

	// Round accounting: one measurement round per RTprop of ack time.
	roundStart time.Duration // < 0 until the first ack
	roundBytes int

	phase        int
	fullBw       float64
	fullBwRounds int
	cycleIdx     int
	cycleStart   time.Duration

	dupAcks    int
	inRecovery bool
	recoverPt  int64
}

// Init implements CongestionControl.
func (b *bbrLite) Init(cfg Config, _ time.Duration) {
	b.mss = cfg.MSS
	b.initCwnd = cfg.InitCwndSegs * cfg.MSS
	b.cwnd = maxInt(b.initCwnd, bbrMinCwndSegs*cfg.MSS)
	b.rtProp = 0
	b.bwN, b.bwIdx = 0, 0
	b.roundStart = -1
	b.roundBytes = 0
	b.phase = bbrStartup
	b.fullBw = 0
	b.fullBwRounds = 0
	b.cycleIdx = 0
	b.cycleStart = 0
	b.dupAcks = 0
	b.inRecovery = false
	b.recoverPt = 0
}

// Cwnd implements CongestionControl.
func (b *bbrLite) Cwnd() int { return b.cwnd }

// InRecovery implements CongestionControl.
func (b *bbrLite) InRecovery() bool { return b.inRecovery }

// Name implements CongestionControl.
func (b *bbrLite) Name() string { return CCBbr }

// btlBw returns the windowed-max bandwidth estimate in bytes/sec.
func (b *bbrLite) btlBw() float64 {
	bw := 0.0
	for i := 0; i < b.bwN; i++ {
		if b.bwWin[i] > bw {
			bw = b.bwWin[i]
		}
	}
	return bw
}

// bdp returns the estimated bandwidth-delay product in bytes, or 0
// while the model has no samples yet.
func (b *bbrLite) bdp() int {
	bw := b.btlBw()
	if bw <= 0 || b.rtProp <= 0 {
		return 0
	}
	return int(bw * b.rtProp.Seconds())
}

// floorCwnd clamps the window to the operating floor.
func (b *bbrLite) floorCwnd() {
	if min := bbrMinCwndSegs * b.mss; b.cwnd < min {
		b.cwnd = min
	}
}

// OnAck implements CongestionControl.
func (b *bbrLite) OnAck(ev AckEvent) CcAction {
	if ev.SRTT > 0 && (b.rtProp == 0 || ev.SRTT < b.rtProp) {
		b.rtProp = ev.SRTT
	}
	action := CcNone
	if b.inRecovery {
		if ev.AckOff >= b.recoverPt {
			b.inRecovery = false
			b.dupAcks = 0
		} else {
			action = CcRetransmit // refill the hole; window stays model-sized
		}
	} else {
		b.dupAcks = 0
	}

	// Round accounting: fold a delivery-rate sample into the filter
	// once per RTprop of ack time.
	if b.roundStart < 0 {
		b.roundStart = ev.Now
	}
	b.roundBytes += ev.Acked
	if b.rtProp > 0 && ev.Now-b.roundStart >= b.rtProp {
		elapsed := (ev.Now - b.roundStart).Seconds()
		if elapsed > 0 {
			b.pushBw(float64(b.roundBytes) / elapsed)
		}
		b.roundStart = ev.Now
		b.roundBytes = 0
	}

	switch b.phase {
	case bbrStartup:
		// Exponential probing: grow by every acked byte (gain ~2).
		b.cwnd += ev.Acked
		if cap := int(bbrStartupGain * float64(maxInt(b.bdp(), b.initCwnd))); b.bdp() > 0 && b.cwnd > cap {
			b.cwnd = cap
		}
	case bbrDrain:
		if bdp := b.bdp(); bdp > 0 {
			b.cwnd = bdp
			if ev.Flight <= bdp {
				b.phase = bbrProbeBW
				b.cycleIdx = 0
				b.cycleStart = ev.Now
			}
		}
	case bbrProbeBW:
		if b.rtProp > 0 {
			for ev.Now-b.cycleStart >= b.rtProp {
				b.cycleStart += b.rtProp
				b.cycleIdx = (b.cycleIdx + 1) % bbrCycleLen
			}
		}
		if bdp := b.bdp(); bdp > 0 {
			b.cwnd = int(bbrCycleGains[b.cycleIdx] * float64(bdp))
		}
	}
	b.floorCwnd()
	return action
}

// pushBw folds one delivery-rate sample into the windowed-max filter
// and runs the per-round phase logic.
func (b *bbrLite) pushBw(sample float64) {
	b.bwWin[b.bwIdx] = sample
	b.bwIdx = (b.bwIdx + 1) % bbrBwWinRounds
	if b.bwN < bbrBwWinRounds {
		b.bwN++
	}
	if b.phase == bbrStartup {
		if sample > bbrPlateauGain*b.fullBw {
			b.fullBw = sample
			b.fullBwRounds = 0
		} else if b.fullBwRounds++; b.fullBwRounds >= bbrFullBwCount {
			b.phase = bbrDrain
		}
	}
}

// OnDupAck implements CongestionControl.
func (b *bbrLite) OnDupAck(ev AckEvent) CcAction {
	b.dupAcks++
	if b.inRecovery {
		return CcNone
	}
	if b.dupAcks == 3 {
		b.inRecovery = true
		b.recoverPt = ev.SndNxt
		return CcRetransmit
	}
	return CcNone
}

// OnRTO implements CongestionControl.
func (b *bbrLite) OnRTO(AckEvent) {
	// A timeout means the model badly oversized the window (or the
	// path died); restart conservatively but keep the learned model.
	b.cwnd = maxInt(b.initCwnd, bbrMinCwndSegs*b.mss)
	b.roundStart = -1
	b.roundBytes = 0
	b.dupAcks = 0
	b.inRecovery = false
}

// OnIdle implements CongestionControl.
func (b *bbrLite) OnIdle(time.Duration) {
	b.cwnd = minInt(b.cwnd, maxInt(b.initCwnd, bbrMinCwndSegs*b.mss))
	b.roundStart = -1
	b.roundBytes = 0
}
