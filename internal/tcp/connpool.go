package tcp

// ConnPool recycles Conn structs across simulations on one worker: a
// fleet cell opens one connection per client plus the server's accept
// side, and rebuilding those structs (send/receive chunk slices,
// reassembly queue, congestion controller) per cell is the largest
// steady-state allocation a recycled cell world would otherwise pay.
// The pool is attached per host with SetConnPool; both ends of a
// topology share one pool, and the simulation is single-threaded, so
// no locking. Without a pool a host allocates fresh Conns exactly as
// before.
type ConnPool struct {
	free []*Conn
}

// put scrubs a connection and parks it for reuse. Every field is
// zeroed except the buffer slice capacities and the congestion
// controller instance — newConn re-Init's the controller (every
// registered controller's Init assigns all of its state) or replaces
// it when the next connection asks for a different kind. Segments
// parked in the reassembly queue are dropped; the packet pool that
// owns them reclaims them wholesale on its own Reset.
func (p *ConnPool) put(c *Conn) {
	clear(c.sndBuf.chunks)
	sndChunks := c.sndBuf.chunks[:0]
	clear(c.rcvBuf.chunks)
	rcvChunks := c.rcvBuf.chunks[:0]
	clear(c.ooo.entries)
	oooEntries := c.ooo.entries[:0]
	cc := c.cc
	*c = Conn{}
	c.sndBuf.chunks = sndChunks
	c.rcvBuf.chunks = rcvChunks
	c.ooo.entries = oooEntries
	c.cc = cc
	p.free = append(p.free, c)
}

// SetConnPool attaches a connection pool: Conns the host creates are
// drawn from it, and Host.Reset returns them. Both ends of a path may
// share one pool.
func (h *Host) SetConnPool(p *ConnPool) { h.connPool = p }

// takeConn returns a blank Conn, recycled when a pool is attached.
// Pool-drawn conns are tracked so Reset can return them in creation
// order — a deterministic recycle order, independent of map layout.
func (h *Host) takeConn() *Conn {
	c := &Conn{}
	if h.connPool != nil {
		if n := len(h.connPool.free); n > 0 {
			c = h.connPool.free[n-1]
			h.connPool.free = h.connPool.free[:n-1]
		}
		h.created = append(h.created, c)
	}
	return c
}

// resolvedCC maps the empty Config.CC to the default controller name,
// so a recycled conn's controller can be matched against the requested
// kind.
func resolvedCC(name string) string {
	if name == "" {
		return CCReno
	}
	return name
}

// Reset returns the host to the state NewHost produces with the given
// address, recycling every connection it created into the attached
// ConnPool. Listeners, the accept hook, the segment pool, the conn
// pool and the egress link survive — they are per-world wiring,
// installed once. The scheduler must be Reset in the same pass so no
// connection timer survives into the next run.
func (h *Host) Reset(a, b, c, d byte) {
	h.addr = [4]byte{a, b, c, d}
	clear(h.conns)
	if h.connPool != nil {
		for i, cn := range h.created {
			h.connPool.put(cn)
			h.created[i] = nil
		}
		h.created = h.created[:0]
	}
	h.nextPort = 40000
	h.nextISS = 10000
	h.retained = false
}
