package tcp

import "time"

// CongestionControl is the pluggable congestion-control policy of a
// Conn. The Conn owns reliability (retransmission, RTO timers, the
// NewReno partial-ack hole refill and the go-back-N rollback); the
// controller owns only the congestion window and the state machine
// that sizes it. All hooks run on the scheduler goroutine.
//
// Hooks fire after the Conn has updated its transport state (sndUna,
// RTT sample, counters) but before any retransmission the hook's
// return value requests, so a controller sees the post-ack world and
// its window decision takes effect for the segments that follow.
type CongestionControl interface {
	// Init resets the controller for a fresh connection. cfg has had
	// defaults applied; now is the virtual-clock time of creation.
	Init(cfg Config, now time.Duration)
	// Cwnd returns the current congestion window in bytes. The Conn
	// clamps its send window to min(Cwnd, peer-advertised window).
	Cwnd() int
	// InRecovery reports whether the controller is in loss recovery.
	InRecovery() bool
	// OnAck fires for every ACK that advances sndUna. Returning
	// CcRetransmit makes the Conn resend the segment at sndUna (the
	// NewReno partial-ack refill).
	OnAck(ev AckEvent) CcAction
	// OnDupAck fires for every duplicate ACK (data outstanding, no
	// payload, unchanged window). Returning CcRetransmit triggers a
	// fast retransmit of the segment at sndUna.
	OnDupAck(ev AckEvent) CcAction
	// OnRTO fires when the retransmission timer expires, before the
	// go-back-N rollback. ev.Flight is the pre-rollback flight size.
	OnRTO(ev AckEvent)
	// OnIdle fires when the RFC 5681 idle-restart condition holds
	// (connection idle longer than one RTO with IdleReset enabled).
	OnIdle(now time.Duration)
	// Name returns the registry name ("reno", "cubic", "bbr").
	Name() string
}

// AckEvent carries the transport state a congestion controller may
// consult when a hook fires. Offsets are stream offsets (int64 bytes
// from 0), not wire sequence numbers.
type AckEvent struct {
	Now    time.Duration // virtual-clock time
	Acked  int           // bytes newly acknowledged (0 for dup acks / RTO)
	AckOff int64         // cumulative ack offset
	SndNxt int64         // next offset to send
	Flight int           // bytes in flight (see hook docs for when it is sampled)
	SRTT   time.Duration // smoothed RTT, 0 before the first sample
}

// CcAction is a congestion-control hook's verdict on retransmission.
type CcAction int

// Hook return values.
const (
	// CcNone requests nothing; the Conn continues normally.
	CcNone CcAction = iota
	// CcRetransmit asks the Conn to resend the segment at sndUna.
	CcRetransmit
)

// Congestion-controller registry names for Config.CC.
const (
	CCReno  = "reno"
	CCCubic = "cubic"
	CCBbr   = "bbr"
)

// CCKinds lists the registered controller names in presentation order.
func CCKinds() []string { return []string{CCReno, CCCubic, CCBbr} }

// ValidCC reports whether name selects a registered controller ("" is
// the Reno default).
func ValidCC(name string) bool {
	switch name {
	case "", CCReno, CCCubic, CCBbr:
		return true
	}
	return false
}

// newCongestionControl builds the controller selected by cfg.CC. An
// unknown name is a spec bug (flag parsers validate with ValidCC), so
// it panics rather than guessing. A switch — not a registry map — so
// selection order can never leak map iteration order into a run.
func newCongestionControl(cfg Config) CongestionControl {
	switch cfg.CC {
	case "", CCReno:
		return &reno{}
	case CCCubic:
		return &cubic{}
	case CCBbr:
		return &bbrLite{}
	default:
		panic("tcp: unknown congestion control " + cfg.CC)
	}
}

// reno is NewReno congestion control (RFC 5681 + RFC 6582), the
// default — and the stack's only policy before the CongestionControl
// split, preserved here operation-for-operation so every golden
// artifact stays byte-identical (pinned by the cc_equiv tests against
// the inline reference).
type reno struct {
	mss      int
	initCwnd int

	cwnd       int
	ssthresh   int
	cwndAcc    int // byte accumulator for congestion avoidance
	dupAcks    int
	inRecovery bool
	recoverPt  int64
}

// Init implements CongestionControl.
func (r *reno) Init(cfg Config, _ time.Duration) {
	r.mss = cfg.MSS
	r.initCwnd = cfg.InitCwndSegs * cfg.MSS
	r.cwnd = r.initCwnd
	r.ssthresh = 1 << 30
	r.cwndAcc = 0
	r.dupAcks = 0
	r.inRecovery = false
	r.recoverPt = 0
}

// Cwnd implements CongestionControl.
func (r *reno) Cwnd() int { return r.cwnd }

// InRecovery implements CongestionControl.
func (r *reno) InRecovery() bool { return r.inRecovery }

// Name implements CongestionControl.
func (r *reno) Name() string { return CCReno }

// OnAck implements CongestionControl.
func (r *reno) OnAck(ev AckEvent) CcAction {
	if r.inRecovery {
		if ev.AckOff >= r.recoverPt {
			// Full ack: leave recovery, deflate.
			r.inRecovery = false
			r.cwnd = r.ssthresh
			r.dupAcks = 0
			return CcNone
		}
		// Partial ack: refill the next hole (NewReno) and deflate by
		// the acked amount, re-inflating one MSS.
		r.cwnd = maxInt(r.cwnd-ev.Acked+r.mss, r.mss)
		return CcRetransmit
	}
	r.dupAcks = 0
	r.grow(ev.Acked)
	return CcNone
}

func (r *reno) grow(acked int) {
	if r.cwnd < r.ssthresh {
		r.cwnd += minInt(acked, r.mss) // slow start
		return
	}
	// Congestion avoidance: one MSS per cwnd of acked bytes.
	r.cwndAcc += acked
	if r.cwndAcc >= r.cwnd {
		r.cwndAcc -= r.cwnd
		r.cwnd += r.mss
	}
}

// OnDupAck implements CongestionControl.
func (r *reno) OnDupAck(ev AckEvent) CcAction {
	r.dupAcks++
	if r.inRecovery {
		r.cwnd += r.mss // inflation
		return CcNone
	}
	if r.dupAcks == 3 {
		r.ssthresh = maxInt(ev.Flight/2, 2*r.mss)
		r.cwnd = r.ssthresh + 3*r.mss
		r.inRecovery = true
		r.recoverPt = ev.SndNxt
		return CcRetransmit
	}
	return CcNone
}

// OnRTO implements CongestionControl.
func (r *reno) OnRTO(ev AckEvent) {
	r.ssthresh = maxInt(ev.Flight/2, 2*r.mss)
	r.cwnd = r.mss
	r.cwndAcc = 0
	r.dupAcks = 0
	r.inRecovery = false
}

// OnIdle implements CongestionControl.
func (r *reno) OnIdle(time.Duration) {
	r.cwnd = minInt(r.cwnd, r.initCwnd)
	r.cwndAcc = 0
}
