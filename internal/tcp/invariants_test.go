package tcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// The invariant suite checks the conservation laws every TCP
// simulation must obey regardless of seed, loss pattern, pooling mode
// or transfer direction:
//
//   - byte conservation: in-order bytes accepted by the receiver never
//     exceed payload bytes the sender handed to the network, and match
//     exactly on loss-free links;
//   - no retransmissions, timeouts or duplicate ACKs on loss-free
//     links with unlimited queues;
//   - monotone receive offsets: the receiver's delivered-byte count
//     never decreases, and grows exactly by what the application
//     drains.
//
// It runs both endpoints of the stack (download and upload direction)
// and both memory regimes (pooled segments, as streaming captures use,
// and unpooled, as buffered captures use) across seeds; CI runs it
// under -race.

// invariantRun transfers total bytes from one host to the other and
// returns the sender and receiver connections after the horizon.
type invariantRun struct {
	sch      *sim.Scheduler
	snd, rcv *Conn
	// delivered tracks every OnReadable drain; monotonicity is
	// asserted at each step.
	delivered int64
	total     int
}

// runTransfer wires client and server over profile p and streams
// total bytes. upload flips the direction (client writes, server
// reads) so both ends of the stack exercise both roles. pooled
// attaches a shared segment pool, the fleet/session streaming regime.
func runTransfer(t *testing.T, seed int64, prof netem.Profile, total int, upload, pooled bool, horizon time.Duration) *invariantRun {
	t.Helper()
	sch := sim.NewScheduler(seed)
	client := NewHost(sch, 10, 0, 0, 1)
	server := NewHost(sch, 203, 0, 113, 10)
	path := netem.NewPath(sch, prof, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	if pooled {
		pool := &packet.Pool{}
		client.SetSegmentPool(pool)
		server.SetSegmentPool(pool)
	}

	run := &invariantRun{sch: sch, total: total}
	drain := func(c *Conn) func() {
		return func() {
			got := int64(c.Discard(1 << 20))
			if got < 0 {
				t.Fatalf("Discard returned negative %d", got)
			}
			run.delivered += got
			if run.delivered > int64(total) {
				t.Fatalf("receiver drained %d bytes, more than the %d ever written", run.delivered, total)
			}
			if run.delivered != c.Stats.BytesReceived-int64(c.Buffered()) {
				t.Fatalf("drained %d != accepted %d - buffered %d: receive offsets not monotone/consistent",
					run.delivered, c.Stats.BytesReceived, c.Buffered())
			}
		}
	}
	server.Listen(80, Config{}, func(c *Conn) {
		if upload {
			run.rcv = c
			c.SetCallbacks(Callbacks{OnReadable: drain(c)})
		} else {
			run.snd = c
			c.SetCallbacks(Callbacks{OnConnected: func() {
				c.WriteZero(total)
				c.Close()
			}})
		}
	})
	cc := client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
	if upload {
		run.snd = cc
		cc.SetCallbacks(Callbacks{OnConnected: func() {
			cc.WriteZero(total)
			cc.Close()
		}})
	} else {
		run.rcv = cc
		cc.SetCallbacks(Callbacks{OnReadable: drain(cc)})
	}
	sch.RunUntil(horizon)
	if run.snd == nil || run.rcv == nil {
		t.Fatal("connection never established")
	}
	return run
}

// checkConservation asserts the direction-independent laws.
func checkConservation(t *testing.T, r *invariantRun) {
	t.Helper()
	snd, rcv := r.snd.Stats, r.rcv.Stats
	if rcv.BytesReceived > snd.BytesSent {
		t.Fatalf("conservation violated: receiver accepted %d in-order bytes, sender only transmitted %d",
			rcv.BytesReceived, snd.BytesSent)
	}
	if rcv.BytesReceived > int64(r.total) {
		t.Fatalf("receiver accepted %d bytes of a %d-byte stream", rcv.BytesReceived, r.total)
	}
	if snd.BytesAcked > snd.BytesSent {
		t.Fatalf("sender saw %d bytes acked but transmitted %d", snd.BytesAcked, snd.BytesSent)
	}
	if r.delivered != rcv.BytesReceived-int64(r.rcv.Buffered()) {
		t.Fatalf("final drain %d != accepted %d - buffered %d", r.delivered, rcv.BytesReceived, r.rcv.Buffered())
	}
}

// lossFree is a clean pipe: no loss, unlimited queues — nothing may
// be retransmitted on it.
func lossFree() netem.Profile {
	return netem.Profile{Name: "clean", Down: 16 * netem.Mbps, Up: 4 * netem.Mbps,
		RTT: 50 * time.Millisecond, UpLoss: -1}
}

// TestInvariantsLossFree: exact byte conservation and a completely
// retransmission-free wire, for both directions, both pooling modes,
// across seeds.
func TestInvariantsLossFree(t *testing.T) {
	const total = 300 << 10
	for seed := int64(1); seed <= 5; seed++ {
		for _, upload := range []bool{false, true} {
			for _, pooled := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/upload=%v/pooled=%v", seed, upload, pooled)
				t.Run(name, func(t *testing.T) {
					r := runTransfer(t, seed, lossFree(), total, upload, pooled, 30*time.Second)
					checkConservation(t, r)
					if r.delivered != total {
						t.Fatalf("delivered %d of %d bytes on a loss-free link", r.delivered, total)
					}
					if got := r.rcv.Stats.BytesReceived; got != total {
						t.Fatalf("accepted %d of %d bytes", got, total)
					}
					s := r.snd.Stats
					if s.Retransmits != 0 || s.Timeouts != 0 || s.FastRetransmit != 0 {
						t.Fatalf("retransmissions on a loss-free link: %+v", s)
					}
					if s.BytesSent != int64(total) {
						t.Fatalf("sender transmitted %d payload bytes for a %d-byte stream", s.BytesSent, total)
					}
					if s.BytesAcked != int64(total) {
						t.Fatalf("only %d of %d bytes acked at the horizon", s.BytesAcked, total)
					}
				})
			}
		}
	}
}

// TestInvariantsUnderLoss: conservation and monotonicity must survive
// random loss, bursty Gilbert-Elliott loss and a tight queue, in both
// directions, across seeds. Every stream must still complete — the
// stack's job is reliability over a lossy pipe.
func TestInvariantsUnderLoss(t *testing.T) {
	const total = 120 << 10
	cases := map[string]netem.Profile{
		"random2pct": {Name: "lossy", Down: 8 * netem.Mbps, Up: 2 * netem.Mbps,
			RTT: 60 * time.Millisecond, Loss: 0.02},
		"tightqueue": {Name: "tight", Down: 8 * netem.Mbps, Up: 2 * netem.Mbps,
			RTT: 40 * time.Millisecond, Queue: 12 << 10, UpLoss: -1},
	}
	for name, prof := range cases {
		for seed := int64(1); seed <= 4; seed++ {
			for _, upload := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/seed=%d/upload=%v", name, seed, upload), func(t *testing.T) {
					r := runTransfer(t, seed, prof, total, upload, true, 120*time.Second)
					checkConservation(t, r)
					if r.delivered != total {
						t.Fatalf("stream did not complete under loss: %d of %d bytes (sender %+v)",
							r.delivered, total, r.snd.Stats)
					}
					// Loss direction saw drops → the sender must have
					// recovered through retransmission at least once
					// unless the network happened to drop nothing.
					if snd := r.snd.Stats; snd.BytesSent < int64(total) {
						t.Fatalf("sender transmitted %d < stream size %d", snd.BytesSent, total)
					}
				})
			}
		}
	}
}

// TestInvariantsBurstyLoss runs the Gilbert-Elliott model — the
// correlated-loss regime that merges ON-OFF cycles — and checks the
// same laws hold when losses cluster.
func TestInvariantsBurstyLoss(t *testing.T) {
	const total = 100 << 10
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sch := sim.NewScheduler(seed)
			client := NewHost(sch, 10, 0, 0, 1)
			server := NewHost(sch, 203, 0, 113, 10)
			prof := netem.Profile{Name: "bursty", Down: 8 * netem.Mbps, Up: 2 * netem.Mbps,
				RTT: 60 * time.Millisecond, UpLoss: -1}
			path := netem.NewPath(sch, prof, client, server)
			path.Down.SetLoss(&netem.GilbertElliott{PGoodToBad: 0.02, PBadToGood: 0.3, PGood: 0.0005, PBad: 0.3})
			client.SetLink(path.Up)
			server.SetLink(path.Down)

			var srv *Conn
			server.Listen(80, Config{}, func(c *Conn) {
				srv = c
				c.SetCallbacks(Callbacks{OnConnected: func() {
					c.WriteZero(total)
					c.Close()
				}})
			})
			cc := client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
			delivered := int64(0)
			cc.SetCallbacks(Callbacks{OnReadable: func() {
				delivered += int64(cc.Discard(1 << 20))
			}})
			sch.RunUntil(180 * time.Second)
			if srv == nil {
				t.Fatal("no connection")
			}
			if cc.Stats.BytesReceived > srv.Stats.BytesSent {
				t.Fatalf("conservation violated under bursty loss: %d > %d",
					cc.Stats.BytesReceived, srv.Stats.BytesSent)
			}
			if delivered != total {
				t.Fatalf("stream incomplete under bursty loss: %d of %d (server %+v)",
					delivered, total, srv.Stats)
			}
		})
	}
}
