package tcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// The equivalence suite pins the CongestionControl extraction against
// the congestion logic the Conn carried inline before the split,
// preserved below as an executable reference (the same pinning style
// pump_test.go uses for the event-elided link). Both controllers run
// the full stack over seeded loss, tight queues, bursty loss and
// mid-flight reordering; the receiver-observed wire behaviour — every
// admitted segment's timestamp, sequence, ack, flags, window and
// length, both directions — must be bit-identical. This is the test
// that guarantees every pre-split golden artifact still means what it
// meant.

// inlineReno is the pre-split congestion logic transcribed
// operation-for-operation from the old Conn methods (growCwnd,
// enterRecovery, the processAck recovery branches, onRTO, the idle
// restart) into the hook interface. It is deliberately a second,
// independent transcription — not a call into the production reno —
// so a regression in either copy breaks the comparison.
type inlineReno struct {
	cfg        Config
	cwnd       int
	ssthresh   int
	cwndAcc    int
	dupAcks    int
	inRecovery bool
	recoverPt  int64
}

func (r *inlineReno) Init(cfg Config, _ time.Duration) {
	*r = inlineReno{cfg: cfg, cwnd: cfg.InitCwndSegs * cfg.MSS, ssthresh: 1 << 30}
}

func (r *inlineReno) Cwnd() int        { return r.cwnd }
func (r *inlineReno) InRecovery() bool { return r.inRecovery }
func (r *inlineReno) Name() string     { return "inline-reno" }

func (r *inlineReno) OnAck(ev AckEvent) CcAction {
	if r.inRecovery {
		if ev.AckOff >= r.recoverPt {
			// Full ack: leave recovery, deflate.
			r.inRecovery = false
			r.cwnd = r.ssthresh
			r.dupAcks = 0
			return CcNone
		}
		// Partial ack: retransmit the next hole (NewReno).
		r.cwnd = maxInt(r.cwnd-ev.Acked+r.cfg.MSS, r.cfg.MSS)
		return CcRetransmit
	}
	r.dupAcks = 0
	r.growCwnd(ev.Acked)
	return CcNone
}

func (r *inlineReno) growCwnd(acked int) {
	if r.cwnd < r.ssthresh {
		r.cwnd += minInt(acked, r.cfg.MSS) // slow start
		return
	}
	// Congestion avoidance: one MSS per cwnd of acked bytes.
	r.cwndAcc += acked
	if r.cwndAcc >= r.cwnd {
		r.cwndAcc -= r.cwnd
		r.cwnd += r.cfg.MSS
	}
}

func (r *inlineReno) OnDupAck(ev AckEvent) CcAction {
	r.dupAcks++
	if r.inRecovery {
		r.cwnd += r.cfg.MSS // inflation
	} else if r.dupAcks == 3 {
		// enterRecovery, verbatim.
		flight := ev.Flight
		r.ssthresh = maxInt(flight/2, 2*r.cfg.MSS)
		r.cwnd = r.ssthresh + 3*r.cfg.MSS
		r.inRecovery = true
		r.recoverPt = ev.SndNxt
		return CcRetransmit
	}
	return CcNone
}

func (r *inlineReno) OnRTO(ev AckEvent) {
	flight := ev.Flight
	r.ssthresh = maxInt(flight/2, 2*r.cfg.MSS)
	r.cwnd = r.cfg.MSS
	r.cwndAcc = 0
	r.dupAcks = 0
	r.inRecovery = false
}

func (r *inlineReno) OnIdle(time.Duration) {
	r.cwnd = minInt(r.cwnd, r.cfg.InitCwndSegs*r.cfg.MSS)
	r.cwndAcc = 0
}

// wireTuple is one admitted segment as the network saw it.
type wireTuple struct {
	dir   byte // 'v' down, '^' up
	at    time.Duration
	seq   uint32
	ack   uint32
	flags uint8
	wnd   int
	n     int
}

// wireTap appends tuples; scalar fields are copied at capture time so
// segment pooling cannot alias records.
type wireTap struct {
	dir byte
	out *[]wireTuple
}

func (w *wireTap) Capture(at time.Duration, seg *packet.Segment) {
	*w.out = append(*w.out, wireTuple{
		dir: w.dir, at: at, seq: seg.Seq, ack: seg.Ack,
		flags: seg.Flags, wnd: seg.Window, n: seg.Len(),
	})
}

// equivCase shapes one comparison scenario.
type equivCase struct {
	name  string
	prof  netem.Profile
	ge    *netem.GilbertElliott
	total int
	// reorderAt, when set, steps the downstream propagation delay from
	// 30 ms to 5 ms mid-flight, overtaking in-flight packets — genuine
	// reordering on an otherwise loss-free pipe.
	reorderAt time.Duration
}

func equivCases() []equivCase {
	return []equivCase{
		{name: "clean", total: 256 << 10,
			prof: netem.Profile{Down: 16 * netem.Mbps, Up: 4 * netem.Mbps, RTT: 50 * time.Millisecond, UpLoss: -1}},
		{name: "random3pct", total: 96 << 10,
			prof: netem.Profile{Down: 8 * netem.Mbps, Up: 2 * netem.Mbps, RTT: 60 * time.Millisecond, Loss: 0.03}},
		{name: "tightqueue", total: 128 << 10,
			prof: netem.Profile{Down: 8 * netem.Mbps, Up: 2 * netem.Mbps, RTT: 40 * time.Millisecond, Queue: 10 << 10, UpLoss: -1}},
		{name: "bursty", total: 96 << 10,
			prof: netem.Profile{Down: 8 * netem.Mbps, Up: 2 * netem.Mbps, RTT: 60 * time.Millisecond, UpLoss: -1},
			ge:   &netem.GilbertElliott{PGoodToBad: 0.02, PBadToGood: 0.3, PGood: 0.0005, PBad: 0.3}},
		{name: "reorder", total: 128 << 10,
			prof:      netem.Profile{Down: 8 * netem.Mbps, Up: 2 * netem.Mbps, RTT: 60 * time.Millisecond, UpLoss: -1},
			reorderAt: 200 * time.Millisecond},
	}
}

// equivTransfer runs one download over the case's network and returns
// the full wire trace plus the sender's final counters. useRef swaps
// both endpoints onto the inline reference controller.
func equivTransfer(seed int64, ec equivCase, useRef bool) ([]wireTuple, Stats) {
	sch := sim.NewScheduler(seed)
	client := NewHost(sch, 10, 0, 0, 1)
	server := NewHost(sch, 203, 0, 113, 10)
	path := netem.NewPath(sch, ec.prof, client, server)
	if ec.ge != nil {
		path.Down.SetLoss(ec.ge)
	}
	if ec.reorderAt > 0 {
		path.Down.SetDelay(30 * time.Millisecond)
		sch.At(ec.reorderAt, func() { path.Down.SetDelay(5 * time.Millisecond) })
	}
	client.SetLink(path.Up)
	server.SetLink(path.Down)

	var trace []wireTuple
	path.AddTaps(&wireTap{dir: 'v', out: &trace}, &wireTap{dir: '^', out: &trace})

	var snd *Conn
	server.Listen(80, Config{}, func(c *Conn) {
		snd = c
		if useRef {
			c.SetCongestionControl(&inlineReno{})
		}
		c.SetCallbacks(Callbacks{OnConnected: func() {
			c.WriteZero(ec.total)
			c.Close()
		}})
	})
	cl := client.Dial(Config{}, packet.EP(203, 0, 113, 10, 80))
	if useRef {
		cl.SetCongestionControl(&inlineReno{})
	}
	cl.SetCallbacks(Callbacks{OnReadable: func() { cl.Discard(1 << 20) }})
	sch.RunUntil(120 * time.Second)
	if snd == nil {
		return trace, Stats{}
	}
	return trace, snd.Stats
}

// diffTraces fails the test at the first diverging tuple.
func diffTraces(t *testing.T, got, ref []wireTuple) {
	t.Helper()
	n := len(got)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if got[i] != ref[i] {
			t.Fatalf("wire divergence at packet %d:\nextracted: %+v\ninline:    %+v", i, got[i], ref[i])
		}
	}
	if len(got) != len(ref) {
		t.Fatalf("trace lengths differ: extracted %d packets, inline reference %d", len(got), len(ref))
	}
}

// TestCcEquivalence: the extracted Reno and the inline reference must
// produce bit-identical wire traces and counters on every scenario and
// seed.
func TestCcEquivalence(t *testing.T) {
	for _, ec := range equivCases() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", ec.name, seed), func(t *testing.T) {
				got, gotStats := equivTransfer(seed, ec, false)
				ref, refStats := equivTransfer(seed, ec, true)
				if len(got) == 0 {
					t.Fatal("empty wire trace")
				}
				diffTraces(t, got, ref)
				if gotStats != refStats {
					t.Fatalf("sender counters diverge:\nextracted: %+v\ninline:    %+v", gotStats, refStats)
				}
			})
		}
	}
}

// TestCcEquivalenceExercisesRecovery guards the suite against
// vacuousness: across its scenarios the comparison must actually pass
// through fast retransmit, RTO and dup-ack handling — a trace that
// never recovers from loss would prove nothing about the recovery
// paths.
func TestCcEquivalenceExercisesRecovery(t *testing.T) {
	var agg Stats
	for _, ec := range equivCases() {
		for seed := int64(1); seed <= 3; seed++ {
			_, s := equivTransfer(seed, ec, false)
			agg.Retransmits += s.Retransmits
			agg.Timeouts += s.Timeouts
			agg.FastRetransmit += s.FastRetransmit
			agg.DupAcksSeen += s.DupAcksSeen
		}
	}
	if agg.FastRetransmit == 0 || agg.Timeouts == 0 || agg.DupAcksSeen == 0 {
		t.Fatalf("equivalence scenarios never exercised recovery: %+v", agg)
	}
}

// FuzzCcEquivalence drives the same comparison over fuzzer-chosen
// seeds, loss rates, queue caps and reorder timing. Any divergence
// between the extracted controller and the inline reference — on any
// network the fuzzer can build — is a crash-grade finding.
func FuzzCcEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(0), false)
	f.Add(int64(2), uint16(30), uint16(0), false)
	f.Add(int64(3), uint16(0), uint16(10), true)
	f.Add(int64(4), uint16(55), uint16(24), false)
	f.Add(int64(5), uint16(12), uint16(6), true)
	f.Fuzz(func(t *testing.T, seed int64, loss, queueKiB uint16, reorder bool) {
		ec := equivCase{
			name:  "fuzz",
			total: 64 << 10,
			prof: netem.Profile{Down: 8 * netem.Mbps, Up: 2 * netem.Mbps,
				RTT:  50 * time.Millisecond,
				Loss: float64(loss%80) / 1000, // 0 .. 7.9%
				// 8..71 KiB queue; 0 stays uncapped.
				Queue:  int(queueKiB%64+8) << 10,
				UpLoss: -1,
			},
		}
		if queueKiB == 0 {
			ec.prof.Queue = 0
		}
		if reorder {
			ec.reorderAt = 150 * time.Millisecond
		}
		got, gotStats := equivTransfer(seed, ec, false)
		ref, refStats := equivTransfer(seed, ec, true)
		diffTraces(t, got, ref)
		if gotStats != refStats {
			t.Fatalf("sender counters diverge:\nextracted: %+v\ninline:    %+v", gotStats, refStats)
		}
	})
}
