package tcp

import (
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Callbacks notify the application of connection events. All callbacks
// run on the scheduler goroutine; nil callbacks are skipped.
type Callbacks struct {
	// OnConnected fires once when the handshake completes.
	OnConnected func()
	// OnReadable fires whenever new in-order bytes become readable.
	OnReadable func()
	// OnAcked fires when previously written bytes are acknowledged,
	// with the newly acknowledged count.
	OnAcked func(n int)
	// OnRemoteClose fires when the peer's FIN is received (all data
	// before it has been delivered).
	OnRemoteClose func()
	// OnClosed fires when the connection fully closes (our FIN acked,
	// or reset).
	OnClosed func()
}

// Conn is one endpoint of a simulated TCP connection.
type Conn struct {
	host  *Host
	cfg   Config
	cb    Callbacks
	local packet.Endpoint
	peer  packet.Endpoint
	state State

	// Send state. Stream offsets are int64 from 0; the wire sequence
	// of offset x is iss+1+x.
	iss     uint32
	sndUna  int64 // lowest unacknowledged stream offset
	sndNxt  int64 // next stream offset to send
	maxSent int64 // high-water mark of transmitted offsets (for RTO rollback)
	sndWnd  int   // peer-advertised window in bytes
	sndBuf  sendBuffer
	finAt   int64 // stream offset of FIN, -1 if not closing
	finSent bool

	// Congestion control. All window state lives in the controller;
	// the Conn only queries Cwnd and fires the hooks.
	cc         CongestionControl
	lastSendAt time.Duration

	// RTT estimation (RFC 6298). One outstanding sample (Karn).
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoBackoff   int
	rttSampleOff int64 // stream offset whose ack completes the sample; -1 idle
	rttSampleAt  time.Duration
	rtoTimer     sim.Timer
	persistTimer sim.Timer
	synTimer     sim.Timer

	// Receive state.
	irs       uint32
	rcvNxt    int64 // next expected stream offset from peer
	rcvBuf    recvBuffer
	ooo       oooQueue
	lastAdvW  int
	ackTimer  sim.Timer
	unacked   int // segments received since last ACK sent
	remoteFin bool

	// HandshakeRTT is the SYN -> SYN-ACK (or SYN -> ACK) time.
	HandshakeRTT time.Duration
	synSentAt    time.Duration

	Stats Stats
}

// Local and Peer expose the endpoints; State the lifecycle state.
func (c *Conn) Local() packet.Endpoint { return c.local }

// Peer returns the remote endpoint.
func (c *Conn) Peer() packet.Endpoint { return c.peer }

// State returns the current lifecycle state.
func (c *Conn) ConnState() State { return c.state }

// SetCallbacks installs the application callbacks.
func (c *Conn) SetCallbacks(cb Callbacks) { c.cb = cb }

// Config returns the effective configuration.
func (c *Conn) Config() Config { return c.cfg }

func newConn(h *Host, cfg Config, local, peer packet.Endpoint) *Conn {
	cfg = cfg.withDefaults()
	c := h.takeConn()
	c.host = h
	c.cfg = cfg
	c.local = local
	c.peer = peer
	c.sndWnd = cfg.MSS  // until the peer advertises
	c.rto = time.Second // RFC 6298 initial
	c.rttSampleOff = -1
	c.finAt = -1
	c.lastAdvW = cfg.RecvBuf
	// A recycled conn keeps its controller when the kind matches; Init
	// fully resets it either way.
	if c.cc == nil || c.cc.Name() != resolvedCC(cfg.CC) {
		c.cc = newCongestionControl(cfg)
	}
	c.cc.Init(cfg, h.sch.Now())
	return c
}

// Cwnd returns the controller's current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cc.Cwnd() }

// CC returns the connection's congestion controller.
func (c *Conn) CC() CongestionControl { return c.cc }

// SetCongestionControl replaces the congestion controller. It must be
// called before any data flows (i.e. right after Dial or inside a
// listener's accept callback); the controller is re-initialized for
// this connection's configuration. Tests use it to inject reference
// or instrumented controllers.
func (c *Conn) SetCongestionControl(cc CongestionControl) {
	cc.Init(c.cfg, c.host.sch.Now())
	c.cc = cc
}

// ccEvent assembles the hook payload from current transport state.
func (c *Conn) ccEvent(acked int, ackOff int64) AckEvent {
	return AckEvent{
		Now:    c.host.sch.Now(),
		Acked:  acked,
		AckOff: ackOff,
		SndNxt: c.sndNxt,
		Flight: int(c.sndNxt - c.sndUna),
		SRTT:   c.srtt,
	}
}

// ---- Application interface ----

// Write appends data to the send stream. The slice is not copied; the
// caller must not mutate it afterwards.
func (c *Conn) Write(data []byte) {
	if c.state == StateClosed || c.finAt >= 0 {
		return
	}
	c.sndBuf.Append(data)
	c.trySend()
}

// WriteZero appends n zero bytes (bulk media padding).
func (c *Conn) WriteZero(n int) {
	if c.state == StateClosed || c.finAt >= 0 || n <= 0 {
		return
	}
	c.sndBuf.AppendZero(n)
	c.trySend()
}

// Buffered returns the number of readable in-order bytes.
func (c *Conn) Buffered() int { return c.rcvBuf.Len() }

// Unsent returns bytes written but not yet transmitted once.
func (c *Conn) Unsent() int64 { return c.sndBuf.Unsent(c.sndNxt) }

// Unacked returns bytes in flight (sent, not acknowledged).
func (c *Conn) Unacked() int64 { return c.sndNxt - c.sndUna }

// Read copies up to len(p) readable bytes into p, opening the
// advertised window.
func (c *Conn) Read(p []byte) int {
	n := c.rcvBuf.Read(p)
	c.maybeWindowUpdate()
	return n
}

// Discard consumes up to n readable bytes without copying, returning
// the count consumed. This is the bulk-read path used by players.
func (c *Conn) Discard(n int) int {
	got := c.rcvBuf.Discard(n)
	c.maybeWindowUpdate()
	return got
}

// Peek copies readable bytes without consuming them.
func (c *Conn) Peek(p []byte) int { return c.rcvBuf.Peek(p) }

// RemoteClosed reports whether the peer sent FIN.
func (c *Conn) RemoteClosed() bool { return c.remoteFin }

// Close half-closes: a FIN is queued after all written data.
func (c *Conn) Close() {
	if c.state == StateClosed || c.finAt >= 0 {
		return
	}
	c.finAt = c.sndBuf.Len()
	c.trySend()
}

// Abort sends RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	seg := c.mkSegment(packet.FlagRST|packet.FlagACK, c.sndNxt, nil, 0)
	c.host.send(seg)
	c.teardown()
}

func (c *Conn) teardown() {
	c.state = StateClosed
	c.stopTimer(&c.rtoTimer)
	c.stopTimer(&c.persistTimer)
	c.stopTimer(&c.ackTimer)
	c.stopTimer(&c.synTimer)
	// The connection stays registered with the host so late segments
	// (a retransmitted FIN in particular) still reach the TIME-WAIT
	// responder in deliver.
	if c.cb.OnClosed != nil {
		c.cb.OnClosed()
	}
}

func (c *Conn) stopTimer(t *sim.Timer) {
	t.Stop()
	*t = sim.Timer{}
}

// Timer op codes for Conn's sim.Task implementation.
const (
	connOpRTO int32 = iota
	connOpPersist
	connOpSYN
	connOpDelAck
)

// RunTask implements sim.Task: all four connection timers dispatch
// through the Conn itself, so re-arming a timer never allocates a
// closure — this matters because the RTO is restarted on every ACK.
func (c *Conn) RunTask(op int32) {
	switch op {
	case connOpRTO:
		c.onRTO()
	case connOpPersist:
		c.onPersist()
	case connOpSYN:
		c.onSYNTimer()
	case connOpDelAck:
		c.ackTimer = sim.Timer{}
		c.sendAck()
	}
}

// ---- Segment construction ----

func (c *Conn) seqOf(off int64) uint32 { return c.iss + 1 + uint32(off) }

func (c *Conn) ackOf() uint32 {
	a := c.irs + 1 + uint32(c.rcvNxt)
	if c.remoteFin {
		a++ // FIN consumed one sequence number
	}
	return a
}

func (c *Conn) advWindow() int {
	w := c.cfg.RecvBuf - c.rcvBuf.Len()
	if w < 0 {
		w = 0
	}
	// Quantize to the wire encoding so the sender's view matches what
	// a captured trace shows.
	w = (w >> packet.WindowScale) << packet.WindowScale
	return w
}

func (c *Conn) mkSegment(flags uint8, off int64, payload []byte, payloadLen int) *packet.Segment {
	w := c.advWindow()
	c.lastAdvW = w
	seg := c.host.newSeg()
	seg.Flow = packet.Flow{Src: c.local, Dst: c.peer}
	seg.Seq = c.seqOf(off)
	seg.Ack = c.ackOf()
	seg.Flags = flags
	seg.Window = w
	seg.Payload = payload
	seg.PayloadLen = payloadLen
	return seg
}

// ---- Connection establishment ----

func (c *Conn) sendSYN() {
	c.synSentAt = c.host.sch.Now()
	seg := c.host.newSeg()
	seg.Flow = packet.Flow{Src: c.local, Dst: c.peer}
	seg.Seq = c.iss
	seg.Flags = packet.FlagSYN
	seg.Window = c.advWindow()
	c.host.send(seg)
	c.armSYNTimer()
}

func (c *Conn) sendSYNACK() {
	seg := c.host.newSeg()
	seg.Flow = packet.Flow{Src: c.local, Dst: c.peer}
	seg.Seq = c.iss
	seg.Ack = c.irs + 1
	seg.Flags = packet.FlagSYN | packet.FlagACK
	seg.Window = c.advWindow()
	c.host.send(seg)
	c.armSYNTimer()
}

func (c *Conn) armSYNTimer() {
	c.stopTimer(&c.synTimer)
	c.synTimer = c.host.sch.TimerAfterTask(c.rto, c, connOpSYN)
}

func (c *Conn) onSYNTimer() {
	if c.state == StateSynSent {
		c.rto = minDur(c.rto*2, c.cfg.MaxRTO)
		c.Stats.Retransmits++
		c.sendSYN()
	} else if c.state == StateSynReceived {
		c.rto = minDur(c.rto*2, c.cfg.MaxRTO)
		c.Stats.Retransmits++
		c.sendSYNACK()
	}
}

// ---- Inbound segment processing ----

func (c *Conn) deliver(seg *packet.Segment) {
	if c.state == StateClosed {
		// TIME-WAIT-lite: a FIN from the peer (our final ACK was lost,
		// or we tore down first while the peer's FIN was in flight)
		// deserves one more ACK so the peer can finish too. Register
		// the FIN so ackOf covers its sequence number. Anything else
		// is ignored.
		if seg.HasFlag(packet.FlagFIN) && !seg.HasFlag(packet.FlagRST) {
			if segOff := int64(int32(seg.Seq - (c.irs + 1))); !c.remoteFin && segOff <= c.rcvNxt {
				c.remoteFin = true
				if c.cb.OnRemoteClose != nil {
					c.cb.OnRemoteClose()
				}
			}
			reply := c.host.newSeg()
			reply.Flow = packet.Flow{Src: c.local, Dst: c.peer}
			reply.Seq = c.seqOf(c.sndNxt)
			reply.Ack = c.ackOf()
			reply.Flags = packet.FlagACK
			reply.Window = c.advWindow()
			c.host.send(reply)
		}
		return
	}
	if seg.HasFlag(packet.FlagRST) {
		c.teardown()
		return
	}
	switch c.state {
	case StateSynSent:
		if seg.HasFlag(packet.FlagSYN) && seg.HasFlag(packet.FlagACK) && seg.Ack == c.iss+1 {
			c.irs = seg.Seq
			c.HandshakeRTT = c.host.sch.Now() - c.synSentAt
			c.seedRTT(c.HandshakeRTT)
			c.sndWnd = seg.Window
			c.state = StateEstablished
			c.stopTimer(&c.synTimer)
			c.sendAck() // completes the handshake
			if c.cb.OnConnected != nil {
				c.cb.OnConnected()
			}
			c.trySend()
		}
		return
	case StateSynReceived:
		if seg.HasFlag(packet.FlagSYN) && !seg.HasFlag(packet.FlagACK) {
			// Duplicate SYN: re-answer.
			c.sendSYNACK()
			return
		}
		if seg.HasFlag(packet.FlagACK) && seg.Ack == c.iss+1 {
			c.state = StateEstablished
			c.stopTimer(&c.synTimer)
			c.sndWnd = seg.Window
			c.HandshakeRTT = c.host.sch.Now() - c.synSentAt
			c.seedRTT(c.HandshakeRTT)
			if c.cb.OnConnected != nil {
				c.cb.OnConnected()
			}
			// Fall through: the ACK may carry data.
		} else {
			return
		}
	}

	// Established (or later) processing: ACK side then data side.
	if seg.HasFlag(packet.FlagACK) {
		c.processAck(seg)
	}
	if n := seg.Len(); n > 0 || seg.HasFlag(packet.FlagFIN) {
		c.processData(seg)
	}
	if c.state != StateClosed {
		c.trySend()
	}
}

func (c *Conn) seedRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	c.srtt = rtt
	c.rttvar = rtt / 2
	c.updateRTO()
}

func (c *Conn) sampleRTT(rtt time.Duration) {
	if c.srtt == 0 {
		c.seedRTT(rtt)
		return
	}
	diff := c.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + rtt) / 8
	c.updateRTO()
}

func (c *Conn) updateRTO() {
	c.rto = c.srtt + maxDur(10*time.Millisecond, 4*c.rttvar)
	c.rto = maxDur(c.rto, c.cfg.MinRTO)
	c.rto = minDur(c.rto, c.cfg.MaxRTO)
}

// ackedOffset converts a wire ACK number to a stream offset.
func (c *Conn) ackedOffset(ack uint32) int64 {
	// ack acknowledges everything below iss+1+off (+1 more if our FIN
	// was consumed). Compute off = ack - (iss+1) in sequence space.
	off := int64(int32(ack - (c.iss + 1)))
	// Sessions are far below 2^31 bytes; int32 diff keeps wraparound
	// correct near the ISS.
	return off
}

func (c *Conn) processAck(seg *packet.Segment) {
	ackOff := c.ackedOffset(seg.Ack)
	finConsumed := false
	if c.finSent && ackOff == c.finAt+1 {
		ackOff = c.finAt
		finConsumed = true
	}
	if ackOff > c.maxSent || ackOff < 0 {
		return // nonsense ack
	}
	oldWnd := c.sndWnd
	c.sndWnd = seg.Window
	if c.sndWnd > 0 {
		c.stopTimer(&c.persistTimer)
	}

	switch {
	case ackOff > c.sndUna:
		acked := int(ackOff - c.sndUna)
		c.sndUna = ackOff
		if c.sndNxt < c.sndUna {
			// After an RTO rollback, the receiver's out-of-order queue
			// can acknowledge past our send point; jump forward.
			c.sndNxt = c.sndUna
		}
		c.sndBuf.Release(c.sndUna)
		c.Stats.BytesAcked += int64(acked)
		c.rtoBackoff = 0
		// RTT sample (Karn: only if the sampled range was not
		// retransmitted; retransmission clears rttSampleOff).
		if c.rttSampleOff >= 0 && ackOff >= c.rttSampleOff {
			c.sampleRTT(c.host.sch.Now() - c.rttSampleAt)
			c.rttSampleOff = -1
		}
		if c.cc.OnAck(c.ccEvent(acked, ackOff)) == CcRetransmit {
			// Partial ack during recovery: retransmit the next hole
			// (NewReno).
			c.retransmitOne()
		}
		c.restartRTO()
		if c.cb.OnAcked != nil {
			c.cb.OnAcked(acked)
		}
	case ackOff == c.sndUna && c.sndNxt > c.sndUna && seg.Len() == 0 &&
		seg.Window == oldWnd && c.sndWnd > 0:
		// Duplicate ACK: data outstanding, no payload, no window
		// change, window open (zero-window probe replies must not
		// masquerade as loss signals).
		c.Stats.DupAcksSeen++
		if c.cc.OnDupAck(c.ccEvent(0, ackOff)) == CcRetransmit {
			c.Stats.FastRetransmit++
			c.retransmitOne()
			c.restartRTO()
		}
	}
	if finConsumed && c.finSent && c.sndUna == c.finAt && c.state != StateClosed {
		c.stopTimer(&c.rtoTimer)
		c.teardown()
	}
}

// retransmitOne resends the segment at sndUna.
func (c *Conn) retransmitOne() {
	if c.finSent && c.sndUna == c.finAt && c.sndBuf.Unsent(c.sndUna) == 0 {
		c.transmitFIN()
		return
	}
	n := minInt(c.cfg.MSS, int(c.maxSent-c.sndUna))
	if n <= 0 {
		return
	}
	c.transmitData(c.sndUna, n)
}

// ---- Outbound data path ----

func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateFinWait {
		return
	}
	// RFC 5681 idle restart, when enabled: collapse cwnd after the
	// connection has been idle longer than one RTO. Streaming servers
	// in the paper demonstrably skip this — the Figure 9 ablation.
	if c.cfg.IdleReset && c.sndNxt == c.sndUna && c.lastSendAt > 0 {
		if idle := c.host.sch.Now() - c.lastSendAt; idle > c.rto {
			c.cc.OnIdle(c.host.sch.Now())
		}
	}
	wnd := minInt(c.cc.Cwnd(), c.sndWnd)
	for {
		flight := int(c.sndNxt - c.sndUna)
		avail := c.sndBuf.Len() - c.sndNxt
		if avail <= 0 {
			break
		}
		room := wnd - flight
		if room <= 0 {
			break
		}
		n := minInt(c.cfg.MSS, int(avail))
		n = minInt(n, room)
		if n <= 0 {
			break
		}
		c.transmitData(c.sndNxt, n)
		c.sndNxt += int64(n)
	}
	// FIN when everything written has been sent.
	if c.finAt >= 0 && !c.finSent && c.sndNxt == c.finAt && c.sndBuf.Unsent(c.sndNxt) == 0 {
		c.transmitFIN()
		c.finSent = true
		c.state = StateFinWait
		c.restartRTO()
	}
	// Persist: data waiting but window closed.
	if c.sndWnd == 0 && c.sndBuf.Len() > c.sndNxt && !c.persistTimer.Active() {
		c.armPersist()
	}
}

// transmitData sends [off, off+n). Whether it is a retransmission is
// derived from the maxSent high-water mark (an RTO rollback replays
// offsets below it through the normal send path).
func (c *Conn) transmitData(off int64, n int) {
	payload, ok := c.sndBuf.Slice(off, n)
	if !ok {
		return
	}
	isRetransmit := off < c.maxSent
	flags := packet.FlagACK
	// PSH on what is likely the last segment of an application write.
	if off+int64(n) == c.sndBuf.Len() {
		flags |= packet.FlagPSH
	}
	var seg *packet.Segment
	if isZero(payload) {
		seg = c.mkSegment(flags, off, nil, len(payload))
	} else {
		seg = c.mkSegment(flags, off, payload, 0)
	}
	c.host.send(seg)
	c.Stats.SegmentsSent++
	c.Stats.BytesSent += int64(n)
	c.lastSendAt = c.host.sch.Now()
	if end := off + int64(n); end > c.maxSent {
		c.maxSent = end
	}
	if isRetransmit {
		c.Stats.Retransmits++
		if c.rttSampleOff >= 0 && off <= c.rttSampleOff {
			c.rttSampleOff = -1 // Karn: invalidate sample
		}
	} else if c.rttSampleOff < 0 {
		c.rttSampleOff = off + int64(n)
		c.rttSampleAt = c.host.sch.Now()
	}
	if !c.rtoTimer.Active() {
		c.restartRTO()
	}
	// Receiving a piggybacked ACK resets the delayed-ack debt.
	c.unacked = 0
	c.stopTimer(&c.ackTimer)
}

func (c *Conn) transmitFIN() {
	seg := c.mkSegment(packet.FlagFIN|packet.FlagACK, c.finAt, nil, 0)
	c.host.send(seg)
	c.Stats.SegmentsSent++
	c.lastSendAt = c.host.sch.Now()
}

func isZero(p []byte) bool {
	// Fast check: bulk media slices point into zeroPage.
	if len(p) == 0 {
		return false
	}
	return &p[0] == &zeroPage[0] || len(p) <= zeroPageSize && sameBacking(p)
}

func sameBacking(p []byte) bool {
	// Conservative: only recognize slices of zeroPage itself.
	if cap(p) == 0 {
		return false
	}
	base := &zeroPage[0]
	first := &p[:1][0]
	// Pointer arithmetic without unsafe: compare against the page
	// bounds by scanning would be O(n); instead, accept only the exact
	// base (handled above) or fall back to a content check capped at
	// 64 bytes for slices that merely look zero.
	if first == base {
		return true
	}
	if len(p) > 64 {
		return false
	}
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// ---- RTO ----

func (c *Conn) restartRTO() {
	c.stopTimer(&c.rtoTimer)
	// Outstanding data is anything transmitted beyond the cumulative
	// ack. sndNxt is NOT that test: a go-back-N rollback drags sndNxt
	// to sndUna while retransmissions are in flight, and an ack that
	// jumps past the rolled-back sndNxt clamps them equal again — in
	// both states a lost segment must still fire the timer, or the
	// connection deadlocks with an empty event queue (found by the
	// shuffled property tests).
	if c.maxSent == c.sndUna && !(c.finSent && c.sndUna == c.finAt) {
		return // nothing outstanding
	}
	backoff := c.rto << c.rtoBackoff
	backoff = minDur(backoff, c.cfg.MaxRTO)
	c.rtoTimer = c.host.sch.TimerAfterTask(backoff, c, connOpRTO)
}

func (c *Conn) onRTO() {
	c.rtoTimer = sim.Timer{}
	if c.state == StateClosed {
		return
	}
	c.Stats.Timeouts++
	c.cc.OnRTO(c.ccEvent(0, c.sndUna))
	c.rtoBackoff++
	if c.rtoBackoff > 10 {
		// Give up as a real stack eventually would.
		c.teardown()
		return
	}
	// Go-back-N: replay from the hole. The receiver's out-of-order
	// queue makes its cumulative ACKs jump over whatever already
	// arrived, so only genuinely lost bytes consume round trips —
	// this is what keeps burst loss (slow-start overshoot into a
	// drop-tail queue) from degenerating into one-segment-per-RTO.
	c.sndNxt = c.sndUna
	if c.sndBuf.Unsent(c.sndNxt) > 0 || c.maxSent > c.sndUna {
		c.trySend()
		if c.sndNxt == c.sndUna {
			c.retransmitOne() // window may be closed; force the probe
		}
	} else {
		c.retransmitOne() // FIN-only case
	}
	c.restartRTO()
}

func (c *Conn) armPersist() {
	interval := maxDur(c.rto, time.Second)
	c.persistTimer = c.host.sch.TimerAfterTask(interval, c, connOpPersist)
}

func (c *Conn) onPersist() {
	c.persistTimer = sim.Timer{}
	if c.state == StateClosed || c.sndWnd > 0 {
		return
	}
	// Zero-window probe in the classic keepalive style: one
	// already-acknowledged byte at snd.una-1. The receiver treats
	// it as a duplicate and replies with an ACK carrying its
	// current window, reviving the transfer even when the real
	// window update was lost.
	seg := c.mkSegment(packet.FlagACK, c.sndUna-1, zeroPage[:1], 0)
	c.host.send(seg)
	c.armPersist()
}

// ---- Receive path ----

func (c *Conn) processData(seg *packet.Segment) {
	segOff := int64(int32(seg.Seq - (c.irs + 1)))
	n := seg.Len()
	fin := seg.HasFlag(packet.FlagFIN)
	end := segOff + int64(n)

	switch {
	case end < c.rcvNxt || (end == c.rcvNxt && !fin):
		// Entirely duplicate data (window probes land here too):
		// re-ACK immediately so the peer learns the current window.
		c.sendAck()
	case segOff <= c.rcvNxt:
		// In-order, possibly overlapping the front or exceeding the
		// buffer; trim both ends. Trimmed tail bytes are dropped and
		// will be retransmitted once the window reopens.
		skip := int(c.rcvNxt - segOff)
		space := c.cfg.RecvBuf - c.rcvBuf.Len()
		take := minInt(n-skip, space)
		if take < 0 {
			take = 0
		}
		c.acceptPayload(seg, skip, take)
		c.rcvNxt += int64(take)
		complete := skip+take == n
		if complete {
			// Drain contiguous out-of-order segments (space was
			// reserved by the advertised window).
			for {
				next, ok := c.ooo.take(c.rcvNxt)
				if !ok {
					break
				}
				c.acceptPayload(next, 0, next.Len())
				c.rcvNxt += int64(next.Len())
				if next.HasFlag(packet.FlagFIN) {
					fin = true
				}
				c.host.putSeg(next) // drained: only the payload lives on
			}
		}
		if fin && complete && !c.remoteFin {
			c.remoteFin = true
			c.sendAck()
			if c.cb.OnRemoteClose != nil {
				c.cb.OnRemoteClose()
			}
		} else {
			c.scheduleAck(seg)
		}
		if take > 0 && c.cb.OnReadable != nil {
			c.cb.OnReadable()
		}
	default: // segOff > c.rcvNxt
		// Out of order: hold (bounded) and send an immediate dup ACK.
		if c.ooo.len() < 4096 {
			c.ooo.put(segOff, seg)
			c.host.retained = true // survives Deliver; recycled on drain
		}
		c.sendAck()
	}
}

// acceptPayload pushes take bytes of the segment payload starting at
// skip into the receive buffer.
func (c *Conn) acceptPayload(seg *packet.Segment, skip, take int) {
	if take <= 0 {
		return
	}
	c.Stats.BytesReceived += int64(take)
	if seg.Payload != nil {
		c.rcvBuf.Push(seg.Payload[skip : skip+take])
	} else {
		c.rcvBuf.PushZero(take)
	}
}

func (c *Conn) scheduleAck(seg *packet.Segment) {
	if seg.Len() == 0 {
		return
	}
	if c.cfg.NoDelayedAck {
		c.sendAck()
		return
	}
	c.unacked++
	if c.unacked >= 2 || seg.HasFlag(packet.FlagPSH) {
		c.sendAck()
		return
	}
	if !c.ackTimer.Active() {
		c.ackTimer = c.host.sch.TimerAfterTask(c.cfg.AckDelay, c, connOpDelAck)
	}
}

func (c *Conn) sendAck() {
	c.unacked = 0
	c.stopTimer(&c.ackTimer)
	if c.state == StateClosed {
		return
	}
	seg := c.mkSegment(packet.FlagACK, c.sndNxt, nil, 0)
	c.host.send(seg)
}

// maybeWindowUpdate sends a window-update ACK after application reads,
// following receiver-side SWS avoidance: update when the window grew
// from (near) closed, or by at least half the buffer or 2 MSS.
func (c *Conn) maybeWindowUpdate() {
	if c.state != StateEstablished && c.state != StateFinWait {
		return
	}
	w := c.advWindow()
	grew := w - c.lastAdvW
	if grew <= 0 {
		return
	}
	if c.lastAdvW < c.cfg.MSS || grew >= c.cfg.RecvBuf/2 || grew >= 2*c.cfg.MSS {
		c.sendAck()
	}
}
