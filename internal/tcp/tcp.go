// Package tcp implements a TCP stack over the simulated network:
// three-way handshake, cumulative and delayed ACKs, flow control with
// a finite receive buffer and advertised windows, slow start,
// congestion avoidance, NewReno-style fast retransmit/fast recovery,
// RFC 6298 retransmission timeouts with exponential backoff, persist
// probes against zero windows, and an optional RFC 5681 idle-window
// reset.
//
// The stack is event-driven and single-threaded on a sim.Scheduler:
// applications interact through non-blocking reads/writes plus
// callbacks, which is what lets the player models in internal/player
// express "pull" pacing (reading slowly so the advertised window
// closes) exactly the way the paper observed Internet Explorer and
// Chrome doing it.
package tcp

import (
	"time"

	"repro/internal/packet"
)

// Config carries per-connection tunables. Zero fields take defaults.
type Config struct {
	// MSS is the maximum segment payload size. Default 1460.
	MSS int
	// RecvBuf is the receive buffer capacity in bytes, which bounds
	// the advertised window. Default 256 KiB.
	RecvBuf int
	// InitCwndSegs is the initial congestion window in segments.
	// Default 4 (typical for 2011-era server stacks).
	InitCwndSegs int
	// MinRTO and MaxRTO bound the retransmission timeout.
	// Defaults 120 ms and 60 s (a slightly sub-RFC minimum keeps
	// single-RTO silences below the analyzer's OFF threshold, the
	// same loss sensitivity the paper reports in Section 5.1.1).
	MinRTO, MaxRTO time.Duration
	// NoDelayedAck disables the every-other-segment delayed ACK policy
	// (the zero value keeps delayed ACKs on, matching real stacks).
	NoDelayedAck bool
	// AckDelay is the delayed-ACK timer. Default 40 ms.
	AckDelay time.Duration
	// IdleReset, when true, applies the RFC 5681 restart: after an
	// idle period longer than one RTO the congestion window collapses
	// back to the initial window. The paper observes that streaming
	// servers do NOT do this (Section 5.1.5), so the default is false;
	// the ablation benches flip it.
	IdleReset bool
	// CC selects the congestion controller: "reno" (default, also the
	// empty string), "cubic" or "bbr". Validate names with ValidCC;
	// an unknown name panics at connection creation.
	CC string
}

// Defaults returns the configuration used unless a player or service
// overrides specific fields.
func Defaults() Config {
	return Config{
		MSS:          1460,
		RecvBuf:      256 << 10,
		InitCwndSegs: 4,
		MinRTO:       120 * time.Millisecond,
		MaxRTO:       60 * time.Second,
		AckDelay:     40 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.RecvBuf <= 0 {
		c.RecvBuf = d.RecvBuf
	}
	if c.InitCwndSegs <= 0 {
		c.InitCwndSegs = d.InitCwndSegs
	}
	if c.MinRTO <= 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.AckDelay <= 0 {
		c.AckDelay = d.AckDelay
	}
	return c
}

// State is the lifecycle state of a connection.
type State int

// Connection states. The simulator collapses the TIME-WAIT family into
// StateClosed because nothing reuses flows within a session.
const (
	StateSynSent State = iota
	StateSynReceived
	StateEstablished
	StateFinWait // our FIN sent, not yet acked
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateSynSent:
		return "SYN-SENT"
	case StateSynReceived:
		return "SYN-RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN-WAIT"
	case StateClosed:
		return "CLOSED"
	default:
		return "UNKNOWN"
	}
}

// Stats aggregates per-connection counters used by tests and analysis.
type Stats struct {
	BytesSent      int64 // payload bytes handed to the network (incl. retransmits)
	BytesAcked     int64
	BytesReceived  int64 // in-order payload bytes accepted
	SegmentsSent   int
	Retransmits    int
	Timeouts       int
	FastRetransmit int
	DupAcksSeen    int
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

var _ = packet.FlagACK // keep the import anchored for documentation links
