package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
)

// Property: transfers complete with the correct byte count for any
// combination of loss rate (< 10%), receive buffer and transfer size.
// This is the stack's core integrity invariant under adversity.
func TestPropertyTransferCompletes(t *testing.T) {
	f := func(seedRaw uint32, lossRaw, bufRaw, sizeRaw uint16) bool {
		loss := float64(lossRaw%80) / 1000 // 0 - 7.9%
		recvBuf := 64<<10 + int(bufRaw%8)*128<<10
		size := 64<<10 + int(sizeRaw%16)*64<<10
		p := newPair(int64(seedRaw)+1, noLossProfile())
		p.path.Down.SetLoss(netem.RandomLoss{Rate: loss})
		p.server.Listen(80, Config{}, func(c *Conn) {
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(size) }})
		})
		c := p.client.Dial(Config{RecvBuf: recvBuf}, packet.EP(203, 0, 113, 10, 80))
		got := 0
		c.SetCallbacks(Callbacks{OnReadable: func() { got += c.Discard(1 << 30) }})
		p.sch.RunUntil(5 * time.Minute)
		return got == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTailSegmentLossDeadlock is the deterministic regression for a
// stall the property above caught: after an RTO rollback clamps sndNxt
// to sndUna, an ack jumping past the rolled-back sndNxt made
// restartRTO believe nothing was outstanding and disarm the timer;
// the lone retransmitted tail segment then armed nothing either
// (transmitData checks before sndNxt advances). If that segment was
// lost, the connection sat forever with an empty event queue. The
// inputs replay the exact quick.Check counterexample.
func TestTailSegmentLossDeadlock(t *testing.T) {
	for _, tc := range []struct {
		seed      int64
		loss      float64
		buf, size int
	}{
		{0xc0930f7b + 1, 0.060, 64<<10 + 5*128<<10, 64<<10 + 3*64<<10},
		{0xe4097634 + 1, 0.075, 64<<10 + 3*128<<10, 64<<10 + 12*64<<10},
	} {
		p := newPair(tc.seed, noLossProfile())
		p.path.Down.SetLoss(netem.RandomLoss{Rate: tc.loss})
		p.server.Listen(80, Config{}, func(c *Conn) {
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(tc.size) }})
		})
		c := p.client.Dial(Config{RecvBuf: tc.buf}, packet.EP(203, 0, 113, 10, 80))
		got := 0
		c.SetCallbacks(Callbacks{OnReadable: func() { got += c.Discard(1 << 30) }})
		p.sch.RunUntil(5 * time.Minute)
		if got != tc.size {
			t.Fatalf("seed %#x: transfer stalled at %d/%d bytes (RTO timer lost)", tc.seed, got, tc.size)
		}
	}
}

// Property: the receive buffer never exceeds its capacity no matter
// how the reader paces, and the advertised window is never negative.
func TestPropertyFlowControlInvariant(t *testing.T) {
	f := func(seedRaw uint32, pullRaw uint16) bool {
		p := newPair(int64(seedRaw)+7, noLossProfile())
		p.path.Down.SetLoss(netem.RandomLoss{Rate: 0.01})
		const cap = 256 << 10
		p.server.Listen(80, Config{}, func(c *Conn) {
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(2 << 20) }})
		})
		c := p.client.Dial(Config{RecvBuf: cap}, packet.EP(203, 0, 113, 10, 80))
		ok := true
		pull := int(pullRaw%64)*1024 + 512
		var tick func()
		tick = func() {
			if c.Buffered() > cap {
				ok = false
			}
			c.Discard(pull)
			p.sch.After(50*time.Millisecond, tick)
		}
		p.sch.After(0, tick)
		p.sch.RunUntil(30 * time.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every advertised window observed on the wire is between 0
// and the receive buffer capacity, under loss and slow reading.
func TestPropertyAdvertisedWindowBounds(t *testing.T) {
	p := newPair(99, noLossProfile())
	p.path.Down.SetLoss(netem.RandomLoss{Rate: 0.02})
	const cap = 192 << 10
	type capture struct{ bad int }
	cp := &capture{}
	p.path.Up.AddTap(tapFn(func(_ time.Duration, seg *packet.Segment) {
		if seg.Window < 0 || seg.Window > cap {
			cp.bad++
		}
	}))
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(4 << 20) }})
	})
	c := p.client.Dial(Config{RecvBuf: cap}, packet.EP(203, 0, 113, 10, 80))
	var tick func()
	tick = func() {
		c.Discard(32 << 10)
		p.sch.After(100*time.Millisecond, tick)
	}
	p.sch.After(0, tick)
	p.sch.RunUntil(time.Minute)
	if cp.bad != 0 {
		t.Fatalf("%d advertised windows out of [0, cap]", cp.bad)
	}
}

type tapFn func(time.Duration, *packet.Segment)

func (f tapFn) Capture(at time.Duration, s *packet.Segment) { f(at, s) }

// Property: Stats counters are internally consistent after arbitrary
// lossy transfers — acked bytes never exceed sent bytes, and received
// never exceeds what the peer sent.
func TestPropertyStatsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p := newPair(int64(trial)+100, noLossProfile())
		p.path.Down.SetLoss(netem.RandomLoss{Rate: rng.Float64() * 0.05})
		var srv *Conn
		size := 128<<10 + rng.Intn(1<<20)
		p.server.Listen(80, Config{}, func(c *Conn) {
			srv = c
			c.SetCallbacks(Callbacks{OnConnected: func() { c.WriteZero(size) }})
		})
		c := p.client.Dial(Config{RecvBuf: 512 << 10}, packet.EP(203, 0, 113, 10, 80))
		c.SetCallbacks(Callbacks{OnReadable: func() { c.Discard(1 << 30) }})
		p.sch.RunUntil(3 * time.Minute)
		if srv.Stats.BytesAcked > srv.Stats.BytesSent {
			t.Fatalf("trial %d: acked %d > sent %d", trial, srv.Stats.BytesAcked, srv.Stats.BytesSent)
		}
		if c.Stats.BytesReceived > srv.Stats.BytesSent {
			t.Fatalf("trial %d: received %d > sent %d", trial, c.Stats.BytesReceived, srv.Stats.BytesSent)
		}
		if srv.Stats.BytesAcked != int64(size) {
			t.Fatalf("trial %d: transfer incomplete: acked %d/%d", trial, srv.Stats.BytesAcked, size)
		}
		if srv.Stats.Retransmits > 0 && srv.Stats.FastRetransmit == 0 && srv.Stats.Timeouts == 0 {
			t.Fatalf("trial %d: retransmits without a recovery mechanism firing", trial)
		}
	}
}

// Reordering resilience: segments delivered out of order (via a jitter
// link) must still reassemble exactly.
func TestReorderingResilience(t *testing.T) {
	p := newPair(11, noLossProfile())
	// Simulate reordering by dropping, which forces retransmission
	// interleaving with newer data (our FIFO links cannot reorder
	// directly; loss-induced retransmits land "late" like reordered
	// segments do).
	p.path.Down.SetLoss(netem.RandomLoss{Rate: 0.05})
	payload := make([]byte, 300<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p.server.Listen(80, Config{}, func(c *Conn) {
		c.SetCallbacks(Callbacks{OnConnected: func() { c.Write(payload) }})
	})
	c := p.client.Dial(Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
	var got []byte
	c.SetCallbacks(Callbacks{OnReadable: func() {
		buf := make([]byte, 64<<10)
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
	}})
	p.sch.RunUntil(3 * time.Minute)
	if len(got) != len(payload) {
		t.Fatalf("got %d/%d bytes", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}
