package tcp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSendBufferSliceWithinChunk(t *testing.T) {
	var b sendBuffer
	b.Append([]byte("hello world"))
	got, ok := b.Slice(6, 5)
	if !ok || string(got) != "world" {
		t.Fatalf("Slice(6,5) = %q, %v", got, ok)
	}
}

func TestSendBufferSliceSpansChunks(t *testing.T) {
	var b sendBuffer
	b.Append([]byte("abc"))
	b.Append([]byte("def"))
	b.Append([]byte("ghi"))
	got, ok := b.Slice(1, 7)
	if !ok || string(got) != "bcdefgh" {
		t.Fatalf("spanning slice = %q, %v", got, ok)
	}
}

func TestSendBufferSliceClampsAtEnd(t *testing.T) {
	var b sendBuffer
	b.Append([]byte("abcdef"))
	got, ok := b.Slice(4, 100)
	if !ok || string(got) != "ef" {
		t.Fatalf("clamped slice = %q, %v", got, ok)
	}
}

func TestSendBufferRelease(t *testing.T) {
	var b sendBuffer
	b.Append([]byte("abc"))
	b.Append([]byte("def"))
	b.Release(3)
	if _, ok := b.Slice(0, 3); ok {
		t.Fatal("released range must not be sliceable")
	}
	got, ok := b.Slice(3, 3)
	if !ok || string(got) != "def" {
		t.Fatalf("post-release slice = %q, %v", got, ok)
	}
	// Partial-chunk release keeps the chunk.
	b.Release(4)
	got, ok = b.Slice(4, 2)
	if !ok || string(got) != "ef" {
		t.Fatalf("partial-release slice = %q, %v", got, ok)
	}
}

func TestSendBufferAppendZero(t *testing.T) {
	var b sendBuffer
	b.AppendZero(3 * zeroPageSize / 2)
	if b.Len() != int64(3*zeroPageSize/2) {
		t.Fatalf("Len = %d", b.Len())
	}
	got, ok := b.Slice(int64(zeroPageSize)-10, 20)
	if !ok || len(got) != 20 {
		t.Fatalf("zero slice across pages: %d bytes, %v", len(got), ok)
	}
	for _, by := range got {
		if by != 0 {
			t.Fatal("zero buffer contains nonzero byte")
		}
	}
}

func TestRecvBufferReadDiscardPeek(t *testing.T) {
	var b recvBuffer
	b.Push([]byte("one"))
	b.Push([]byte("two"))
	b.PushZero(4)
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	peek := make([]byte, 4)
	if n := b.Peek(peek); n != 4 || string(peek) != "onet" {
		t.Fatalf("Peek = %q (%d)", peek[:n], n)
	}
	if b.Len() != 10 {
		t.Fatal("Peek must not consume")
	}
	p := make([]byte, 5)
	if n := b.Read(p); n != 5 || string(p) != "onetw" {
		t.Fatalf("Read = %q (%d)", p[:n], n)
	}
	if got := b.Discard(100); got != 5 {
		t.Fatalf("Discard = %d, want 5", got)
	}
	if b.Len() != 0 {
		t.Fatalf("Len after drain = %d", b.Len())
	}
	if b.Discard(10) != 0 {
		t.Fatal("Discard on empty must return 0")
	}
}

// Property: interleaved Append/Slice behaves like one flat []byte.
func TestPropertySendBufferMatchesFlat(t *testing.T) {
	f := func(chunks [][]byte, offs []uint16) bool {
		var b sendBuffer
		var flat []byte
		for _, ch := range chunks {
			if len(ch) == 0 {
				continue
			}
			cp := append([]byte(nil), ch...)
			b.Append(cp)
			flat = append(flat, cp...)
		}
		for _, o := range offs {
			if len(flat) == 0 {
				return true
			}
			off := int(o) % len(flat)
			n := int(o)%37 + 1
			got, ok := b.Slice(int64(off), n)
			if !ok {
				return false
			}
			want := flat[off:]
			if len(want) > n {
				want = want[:n]
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: recvBuffer Read returns exactly what was pushed, in order.
func TestPropertyRecvBufferFIFO(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var b recvBuffer
		var flat []byte
		for _, ch := range chunks {
			cp := append([]byte(nil), ch...)
			b.Push(cp)
			flat = append(flat, cp...)
		}
		out := make([]byte, len(flat))
		got := 0
		for got < len(flat) {
			n := b.Read(out[got:min(got+7, len(out))])
			if n == 0 {
				return false
			}
			got += n
		}
		return bytes.Equal(out, flat) && b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRecvBufferCompactsUnderBacklog: a connection that never fully
// drains (fast sender, slow reader) must not grow a dead-slot prefix —
// the chunk array stays proportional to the live backlog.
func TestRecvBufferCompactsUnderBacklog(t *testing.T) {
	var b recvBuffer
	payload := make([]byte, 1000)
	for i := 0; i < 50000; i++ {
		b.Push(payload)
		if i%2 == 1 {
			b.Discard(1500) // consume less than was pushed: backlog grows
		}
	}
	live := len(b.chunks) - b.head
	if cap(b.chunks) > 4*live+64 {
		t.Fatalf("chunk array cap %d for %d live chunks: dead prefix not compacted", cap(b.chunks), live)
	}
	// FIFO integrity survives compaction.
	if b.Len() != 50000*1000-25000*1500 {
		t.Fatalf("buffered = %d", b.Len())
	}
}
