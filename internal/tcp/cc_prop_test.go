package tcp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// Property tests drive the controllers directly with synthetic
// AckEvent streams — no network — so the window laws can be asserted
// against hand-built scenarios: CUBIC may never shrink without a loss
// signal and must trace the concave/convex cubic profile around its
// epoch, and BBR-lite's PROBE_BW gain cycle must be exactly periodic
// in RTprop under a steady model.

// propConfig is the defaulted config the synthetic streams use.
func propConfig() Config { return Config{}.withDefaults() }

// TestCubicNeverShrinksWithoutLoss: across seeded random ack streams
// (variable acked sizes, inter-ack gaps and RTT estimates, spanning
// slow start and congestion avoidance) the window is monotone
// non-decreasing as long as no dup-ack threshold or RTO fires.
func TestCubicNeverShrinksWithoutLoss(t *testing.T) {
	cfg := propConfig()
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cu := &cubic{}
			cu.Init(cfg, 0)
			// Half the streams start in congestion avoidance.
			if seed%2 == 0 {
				cu.ssthresh = cu.cwnd
			}
			now := time.Duration(0)
			off := int64(0)
			prev := cu.Cwnd()
			for i := 0; i < 5000; i++ {
				now += time.Duration(1+rng.Intn(50)) * time.Millisecond
				acked := 1 + rng.Intn(cfg.MSS)
				off += int64(acked)
				cu.OnAck(AckEvent{
					Now: now, Acked: acked, AckOff: off, SndNxt: off + int64(cu.Cwnd()),
					Flight: cu.Cwnd(), SRTT: time.Duration(20+rng.Intn(200)) * time.Millisecond,
				})
				if w := cu.Cwnd(); w < prev {
					t.Fatalf("ack %d: window shrank %d -> %d with no loss signal", i, prev, w)
				} else {
					prev = w
				}
			}
		})
	}
}

// TestCubicConcaveConvexProfile pins the shape of the post-loss curve:
// anchored below W_max the window first climbs steeply (concave
// region), flattens into the plateau around K, then accelerates again
// past W_max (convex max-probing). The assertion compares mean growth
// rates over the three regions — plateau growth must be the slowest.
func TestCubicConcaveConvexProfile(t *testing.T) {
	cfg := propConfig()
	const srtt = 200 * time.Millisecond
	cu := &cubic{}
	cu.Init(cfg, 0)
	cu.cwnd = 60 * cfg.MSS

	// One loss episode: three dup acks, then the full ack that exits
	// recovery and re-anchors the curve at W_max = 60 segments.
	off := int64(1 << 20)
	flight := cu.cwnd
	for i := 0; i < 3; i++ {
		cu.OnDupAck(AckEvent{Now: 0, AckOff: off, SndNxt: off + int64(flight), Flight: flight, SRTT: srtt})
	}
	if !cu.InRecovery() {
		t.Fatal("three dup acks did not enter recovery")
	}
	cu.OnAck(AckEvent{Now: 0, Acked: flight, AckOff: off + int64(flight),
		SndNxt: off + int64(flight), Flight: 0, SRTT: srtt})
	if cu.InRecovery() {
		t.Fatal("full ack did not exit recovery")
	}
	if cu.wMax != 60 {
		t.Fatalf("wMax = %v segments after loss at 60, want 60", cu.wMax)
	}

	// Steady ack clock: one MSS every 10 ms. K = cbrt((60-42)/0.4) ~
	// 3.56 s; sample the window every 100 ms out past 2K.
	type sample struct {
		at time.Duration
		w  int
	}
	var samples []sample
	now := time.Duration(0)
	ackOff := off + int64(flight)
	for now < 8*time.Second {
		now += 10 * time.Millisecond
		ackOff += int64(cfg.MSS)
		cu.OnAck(AckEvent{Now: now, Acked: cfg.MSS, AckOff: ackOff,
			SndNxt: ackOff + int64(cu.Cwnd()), Flight: cu.Cwnd(), SRTT: srtt})
		if now%(100*time.Millisecond) == 0 {
			samples = append(samples, sample{at: now, w: cu.Cwnd()})
		}
	}
	k := time.Duration(math.Cbrt((cu.wMax-42)/cubicC) * float64(time.Second))
	rate := func(from, to time.Duration) float64 {
		var first, last sample
		for _, s := range samples {
			if s.at >= from && first.at == 0 {
				first = s
			}
			if s.at <= to {
				last = s
			}
		}
		return float64(last.w-first.w) / (last.at - first.at).Seconds()
	}
	early := rate(0, 1*time.Second)                                  // concave climb
	plateau := rate(k-500*time.Millisecond, k+500*time.Millisecond)  // around K
	late := rate(2*k-500*time.Millisecond, 2*k+500*time.Millisecond) // convex probe
	if !(plateau < early) || !(plateau < late) {
		t.Fatalf("cubic profile broken: early %.0f B/s, plateau %.0f B/s, late %.0f B/s (K=%v)",
			early, plateau, late, k)
	}
	// And the whole trajectory is monotone — concave/convex shaping
	// never implies shrinking.
	for i := 1; i < len(samples); i++ {
		if samples[i].w < samples[i-1].w {
			t.Fatalf("window shrank %d -> %d at %v with no loss", samples[i-1].w, samples[i].w, samples[i].at)
		}
	}
}

// TestBbrProbeCyclePeriodicity pins PROBE_BW: under a steady delivery
// model (constant measured bandwidth, constant RTT) the window follows
// the 8-slot gain cycle — probe at 1.25x BDP, drain at 0.75x, cruise
// at 1x — with period exactly 8 x RTprop, repeating cycle after cycle.
func TestBbrProbeCyclePeriodicity(t *testing.T) {
	cfg := propConfig()
	const rtProp = 50 * time.Millisecond
	const bw = 1e6 // bytes/sec
	b := &bbrLite{}
	b.Init(cfg, 0)
	b.phase = bbrProbeBW
	b.rtProp = rtProp
	b.bwWin[0] = bw
	b.bwN = 1
	b.bwIdx = 1
	// Anchor the measurement round at t=0 so each round window holds
	// exactly one RTprop's worth of the ack clock below.
	b.roundStart = 0
	bdp := int(bw * rtProp.Seconds()) // 50000 bytes

	// Ack clock that reproduces exactly bw: 5000 bytes every 5 ms, so
	// every RTprop-round sample the filter folds in equals bw and the
	// model never drifts.
	const tick = 5 * time.Millisecond
	const ackedPerTick = 5000
	period := bbrCycleLen * rtProp
	var cwnds []int
	now := time.Duration(0)
	off := int64(0)
	for now < 3*period {
		now += tick
		off += ackedPerTick
		b.OnAck(AckEvent{Now: now, Acked: ackedPerTick, AckOff: off,
			SndNxt: off + int64(b.Cwnd()), Flight: b.Cwnd(), SRTT: rtProp})
		cwnds = append(cwnds, b.Cwnd())
		// Phase check: the window must be the slot gain times BDP.
		slot := int(now/rtProp) % bbrCycleLen
		want := int(bbrCycleGains[slot] * float64(bdp))
		if b.Cwnd() != want {
			t.Fatalf("at %v (slot %d): cwnd %d, want gain %.2f x bdp %d = %d",
				now, slot, b.Cwnd(), bbrCycleGains[slot], bdp, want)
		}
	}
	// Exact periodicity across cycles.
	perCycle := int(period / tick)
	for i := perCycle; i < len(cwnds); i++ {
		if cwnds[i] != cwnds[i-perCycle] {
			t.Fatalf("probe cycle not periodic: tick %d cwnd %d != tick %d cwnd %d",
				i, cwnds[i], i-perCycle, cwnds[i-perCycle])
		}
	}
	// All three gain levels were actually visited.
	min, max := cwnds[0], cwnds[0]
	for _, w := range cwnds {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if min != int(0.75*float64(bdp)) || max != int(1.25*float64(bdp)) {
		t.Fatalf("gain cycle never hit probe/drain levels: min %d max %d bdp %d", min, max, bdp)
	}
}

// TestBbrStartupExitsOnPlateau: a delivery rate that stops growing
// must move STARTUP to DRAIN within bbrFullBwCount rounds, and a loss
// burst in PROBE_BW must not collapse the window below the model —
// the defining difference from the loss-based controllers.
func TestBbrStartupExitsOnPlateau(t *testing.T) {
	cfg := propConfig()
	const rtProp = 50 * time.Millisecond
	b := &bbrLite{}
	b.Init(cfg, 0)
	if b.phase != bbrStartup {
		t.Fatal("fresh bbrLite not in startup")
	}
	// Constant-rate acks: every round measures the same bandwidth, so
	// the plateau detector must fire after bbrFullBwCount rounds.
	now := time.Duration(0)
	off := int64(0)
	for i := 0; i < 200 && b.phase == bbrStartup; i++ {
		now += 5 * time.Millisecond
		off += 5000
		b.OnAck(AckEvent{Now: now, Acked: 5000, AckOff: off,
			SndNxt: off + int64(b.Cwnd()), Flight: b.Cwnd() / 2, SRTT: rtProp})
	}
	if b.phase == bbrStartup {
		t.Fatal("startup never exited on a flat delivery rate")
	}

	// Drive into PROBE_BW, then hit it with a dup-ack loss episode:
	// the window must stay model-sized (>= 0.75 x BDP), not collapse.
	for i := 0; i < 400 && b.phase != bbrProbeBW; i++ {
		now += 5 * time.Millisecond
		off += 5000
		b.OnAck(AckEvent{Now: now, Acked: 5000, AckOff: off,
			SndNxt: off + int64(b.Cwnd()), Flight: b.bdp(), SRTT: rtProp})
	}
	if b.phase != bbrProbeBW {
		t.Fatal("never reached PROBE_BW")
	}
	bdp := b.bdp()
	flight := b.Cwnd()
	for i := 0; i < 3; i++ {
		b.OnDupAck(AckEvent{Now: now, AckOff: off, SndNxt: off + int64(flight), Flight: flight, SRTT: rtProp})
	}
	if !b.InRecovery() {
		t.Fatal("three dup acks did not mark recovery")
	}
	if b.Cwnd() < int(0.75*float64(bdp)) {
		t.Fatalf("loss collapsed the BBR window: cwnd %d < 0.75 x bdp %d", b.Cwnd(), bdp)
	}
}
