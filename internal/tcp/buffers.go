package tcp

import "repro/internal/packet"

// Byte buffers shared by sender and receiver sides. Bulk media bytes
// are zero-filled: WriteZero appends windows onto a shared read-only
// zero page, so a 200 MB simulated video costs a few dozen slice
// headers rather than 200 MB of heap.

const zeroPageSize = 256 << 10

var zeroPage = make([]byte, zeroPageSize)

// sendBuffer stores the outgoing byte stream indexed by absolute
// stream offset so retransmissions can re-slice any unacknowledged
// range. Chunks below the acknowledged offset are released.
type sendBuffer struct {
	chunks []sendChunk
	start  int64 // stream offset of chunks[0][0]
	end    int64 // stream offset one past the last byte
}

type sendChunk struct {
	off  int64
	data []byte
}

// Len returns the total stream length appended so far.
func (b *sendBuffer) Len() int64 { return b.end }

// Unsent returns bytes at or beyond offset off.
func (b *sendBuffer) Unsent(off int64) int64 { return b.end - off }

// Append adds data (not copied; callers must not mutate it).
func (b *sendBuffer) Append(data []byte) {
	if len(data) == 0 {
		return
	}
	b.chunks = append(b.chunks, sendChunk{off: b.end, data: data})
	b.end += int64(len(data))
}

// AppendZero adds n zero bytes backed by the shared zero page.
func (b *sendBuffer) AppendZero(n int) {
	for n > 0 {
		take := n
		if take > zeroPageSize {
			take = zeroPageSize
		}
		b.Append(zeroPage[:take])
		n -= take
	}
}

// Release drops storage for bytes below offset off (they were acked).
func (b *sendBuffer) Release(off int64) {
	i := 0
	for i < len(b.chunks) && b.chunks[i].off+int64(len(b.chunks[i].data)) <= off {
		i++
	}
	if i > 0 {
		b.chunks = b.chunks[i:]
	}
	b.start = off
}

// Slice returns up to n bytes starting at absolute offset off. The
// returned slice aliases buffer storage when the range lies in one
// chunk (the common case) and is copied when it spans chunks. ok is
// false when off is out of range.
func (b *sendBuffer) Slice(off int64, n int) ([]byte, bool) {
	if off < b.start || off >= b.end || n <= 0 {
		return nil, false
	}
	if avail := b.end - off; int64(n) > avail {
		n = int(avail)
	}
	// Binary search for the chunk containing off.
	lo, hi := 0, len(b.chunks)
	for lo < hi {
		mid := (lo + hi) / 2
		c := b.chunks[mid]
		if off < c.off {
			hi = mid
		} else if off >= c.off+int64(len(c.data)) {
			lo = mid + 1
		} else {
			lo = mid
			break
		}
	}
	c := b.chunks[lo]
	rel := int(off - c.off)
	if rel+n <= len(c.data) {
		return c.data[rel : rel+n], true
	}
	// Spans chunks. Bulk media spans zero-page chunks on both sides:
	// the copy would be all zeros, so alias the shared zero page
	// instead of allocating one (the dominant allocation of a fleet
	// run otherwise).
	if n <= zeroPageSize {
		zero := true
		for i := lo; i < len(b.chunks) && b.chunks[i].off < off+int64(n); i++ {
			if d := b.chunks[i].data; len(d) == 0 || &d[0] != &zeroPage[0] {
				zero = false
				break
			}
		}
		if zero {
			return zeroPage[:n], true
		}
	}
	out := make([]byte, 0, n)
	out = append(out, c.data[rel:]...)
	for i := lo + 1; i < len(b.chunks) && len(out) < n; i++ {
		take := minInt(n-len(out), len(b.chunks[i].data))
		out = append(out, b.chunks[i].data[:take]...)
	}
	return out, true
}

// oooQueue holds out-of-order segments keyed by stream offset, sorted
// ascending. A reassembly queue is almost always a handful of entries
// (one loss event's flight), so a sorted slice with binary search
// replaces the per-connection map: inserts reuse the backing array
// across the connection's whole life instead of growing bucket chains,
// which removes the second-largest allocation of a fleet run.
type oooQueue struct {
	entries []oooEntry
}

type oooEntry struct {
	off int64
	seg *packet.Segment
}

func (q *oooQueue) len() int { return len(q.entries) }

// search returns the index of the first entry with offset >= off.
func (q *oooQueue) search(off int64) int {
	lo, hi := 0, len(q.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.entries[mid].off < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// put inserts seg at off, replacing any existing entry at the same
// offset (matching the map semantics it replaces).
func (q *oooQueue) put(off int64, seg *packet.Segment) {
	i := q.search(off)
	if i < len(q.entries) && q.entries[i].off == off {
		q.entries[i].seg = seg
		return
	}
	q.entries = append(q.entries, oooEntry{})
	copy(q.entries[i+1:], q.entries[i:])
	q.entries[i] = oooEntry{off: off, seg: seg}
}

// take removes and returns the entry at exactly off.
func (q *oooQueue) take(off int64) (*packet.Segment, bool) {
	i := q.search(off)
	if i >= len(q.entries) || q.entries[i].off != off {
		return nil, false
	}
	seg := q.entries[i].seg
	copy(q.entries[i:], q.entries[i+1:])
	q.entries[len(q.entries)-1] = oooEntry{}
	q.entries = q.entries[:len(q.entries)-1]
	return seg, true
}

// recvBuffer stores in-order received bytes until the application
// reads them. Capacity is enforced by the advertised window, not here.
// Consumed chunk slots are reclaimed by index so the backing array is
// reused across the whole connection instead of growing behind a
// marching front (a steady 180 s session pushes tens of thousands of
// chunks through here).
type recvBuffer struct {
	chunks   [][]byte
	head     int // index of the first unconsumed chunk
	headOff  int // bytes of chunks[head] already consumed
	buffered int
}

// Len returns the number of readable bytes.
func (b *recvBuffer) Len() int { return b.buffered }

// Push appends received payload (aliased, not copied).
func (b *recvBuffer) Push(data []byte) {
	if len(data) == 0 {
		return
	}
	if b.head > 0 && b.head*2 >= len(b.chunks) {
		// At least half the slots are consumed: compact the live tail
		// to the front and reuse the array. Amortized O(1) — each
		// compaction copies fewer slots than were consumed since the
		// last one — and it keeps a permanently backlogged connection
		// (slow reader, fast sender) from growing a dead-slot prefix.
		n := copy(b.chunks, b.chunks[b.head:])
		for i := n; i < len(b.chunks); i++ {
			b.chunks[i] = nil
		}
		b.chunks = b.chunks[:n]
		b.head = 0
	}
	b.chunks = append(b.chunks, data)
	b.buffered += len(data)
}

// PushZero appends n zero bytes.
func (b *recvBuffer) PushZero(n int) {
	for n > 0 {
		take := minInt(n, zeroPageSize)
		b.Push(zeroPage[:take])
		n -= take
	}
}

// Discard consumes up to n bytes without materializing them, returning
// the number consumed. Players use this for bulk media bytes.
func (b *recvBuffer) Discard(n int) int {
	consumed := 0
	for n > 0 && b.head < len(b.chunks) {
		head := b.chunks[b.head]
		avail := len(head) - b.headOff
		take := minInt(avail, n)
		b.headOff += take
		consumed += take
		n -= take
		if b.headOff == len(head) {
			b.chunks[b.head] = nil
			b.head++
			b.headOff = 0
		}
	}
	b.buffered -= consumed
	return consumed
}

// Read copies up to len(p) bytes into p. HTTP header parsing uses this.
func (b *recvBuffer) Read(p []byte) int {
	read := 0
	for read < len(p) && b.head < len(b.chunks) {
		head := b.chunks[b.head]
		n := copy(p[read:], head[b.headOff:])
		b.headOff += n
		read += n
		if b.headOff == len(head) {
			b.chunks[b.head] = nil
			b.head++
			b.headOff = 0
		}
	}
	b.buffered -= read
	return read
}

// Peek copies up to len(p) bytes without consuming them.
func (b *recvBuffer) Peek(p []byte) int {
	read := 0
	off := b.headOff
	for i := b.head; read < len(p) && i < len(b.chunks); i++ {
		head := b.chunks[i]
		n := copy(p[read:], head[off:])
		read += n
		off = 0
	}
	return read
}
