package tcp

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Host owns one side of a path: it demultiplexes inbound segments to
// connections and provides Listen/Dial. A Host implements
// netem.Receiver and transmits on the egress link set via SetLink.
type Host struct {
	sch       *sim.Scheduler
	addr      [4]byte
	out       *netem.Link
	conns     map[packet.Flow]*Conn
	listeners map[uint16]listener
	nextPort  uint16
	nextISS   uint32

	// Segment pooling (streaming-capture sessions only; see
	// SetSegmentPool). retained marks the in-delivery segment as held
	// beyond Deliver (out-of-order queue).
	pool     *packet.Pool
	retained bool

	// acceptCfg, when set, rewrites the listener config per accepted
	// connection (see SetAcceptConfig).
	acceptCfg func(peer packet.Endpoint, cfg Config) Config

	// Conn recycling (see SetConnPool). created tracks every conn drawn
	// while a pool is attached, in creation order, so Reset returns
	// them deterministically.
	connPool *ConnPool
	created  []*Conn
}

type listener struct {
	cfg    Config
	accept func(*Conn)
}

// NewHost creates a host with the given IPv4 address.
func NewHost(sch *sim.Scheduler, a, b, c, d byte) *Host {
	return &Host{
		sch:       sch,
		addr:      [4]byte{a, b, c, d},
		conns:     make(map[packet.Flow]*Conn),
		listeners: make(map[uint16]listener),
		nextPort:  40000,
		nextISS:   10000,
	}
}

// Addr returns the host address as an endpoint with port 0.
func (h *Host) Addr() packet.Endpoint { return packet.Endpoint{Addr: h.addr} }

// SetLink wires the egress link (toward the peer side of the path).
func (h *Host) SetLink(l *netem.Link) { h.out = l }

// SetSegmentPool enables segment recycling: outbound segments are
// allocated from p and inbound ones returned to it once consumed.
// Only valid when every capture sink on the path is streaming (reads
// packets synchronously at the tap) — a buffering sink like
// trace.Trace retains segment pointers and must run without a pool.
// Both ends of a path should share one pool; the simulation is
// single-threaded, so the pool needs no locking.
func (h *Host) SetSegmentPool(p *packet.Pool) { h.pool = p }

// newSeg allocates an outbound segment, reusing a pooled one when
// recycling is enabled. All fields are zero.
func (h *Host) newSeg() *packet.Segment {
	if h.pool != nil {
		return h.pool.Get()
	}
	return &packet.Segment{}
}

// putSeg recycles a fully consumed inbound segment.
func (h *Host) putSeg(s *packet.Segment) {
	if h.pool != nil {
		h.pool.Put(s)
	}
}

// Scheduler exposes the event loop for applications built on the host.
func (h *Host) Scheduler() *sim.Scheduler { return h.sch }

func (h *Host) send(seg *packet.Segment) {
	if h.out == nil {
		panic("tcp: host has no egress link")
	}
	h.out.Send(seg)
}

// ConnCount returns the number of live (not closed) connections.
func (h *Host) ConnCount() int {
	n := 0
	for _, c := range h.conns {
		if c.state != StateClosed {
			n++
		}
	}
	return n
}

// SetAcceptConfig installs a hook that rewrites the listener's Config
// for each accepted connection, keyed by the connecting peer. It is
// how a fleet serves different congestion controllers to different
// clients from one listener (the peer address encodes the client
// index). The hook runs before the Conn is created, so every field —
// including CC — takes effect from the SYN-ACK on.
func (h *Host) SetAcceptConfig(hook func(peer packet.Endpoint, cfg Config) Config) {
	h.acceptCfg = hook
}

// Listen registers an accept callback for a local port. The callback
// runs when a SYN arrives, before the handshake completes, so the
// application can install Callbacks in time for OnConnected.
func (h *Host) Listen(port uint16, cfg Config, accept func(*Conn)) {
	h.listeners[port] = listener{cfg: cfg, accept: accept}
}

// Dial opens a client connection to remote and sends the SYN. The
// returned Conn is in SYN-SENT; install callbacks immediately.
func (h *Host) Dial(cfg Config, remote packet.Endpoint) *Conn {
	local := packet.Endpoint{Addr: h.addr, Port: h.allocPort()}
	c := newConn(h, cfg, local, remote)
	c.iss = h.iss()
	c.state = StateSynSent
	h.conns[packet.Flow{Src: local, Dst: remote}] = c
	c.sendSYN()
	return c
}

func (h *Host) allocPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort < 40000 {
		h.nextPort = 40000
	}
	return p
}

func (h *Host) iss() uint32 {
	h.nextISS += 64019 // arbitrary odd stride keeps ISS values distinct
	return h.nextISS
}

// Deliver implements netem.Receiver: demultiplex to an existing
// connection, or to a listener for new SYNs. With a segment pool
// attached, the segment is recycled afterwards unless the connection
// parked it in its out-of-order queue.
func (h *Host) Deliver(seg *packet.Segment) {
	h.retained = false
	h.dispatch(seg)
	if h.pool != nil && !h.retained {
		h.pool.Put(seg)
	}
}

func (h *Host) dispatch(seg *packet.Segment) {
	key := seg.Flow.Reverse()
	if c, ok := h.conns[key]; ok {
		c.deliver(seg)
		return
	}
	if seg.HasFlag(packet.FlagSYN) && !seg.HasFlag(packet.FlagACK) {
		l, ok := h.listeners[seg.Dst.Port]
		if !ok {
			return // no RST machinery needed for the simulations
		}
		cfg := l.cfg
		if h.acceptCfg != nil {
			cfg = h.acceptCfg(seg.Src, cfg)
		}
		c := newConn(h, cfg, seg.Dst, seg.Src)
		c.iss = h.iss()
		c.irs = seg.Seq
		c.sndWnd = seg.Window
		c.state = StateSynReceived
		c.synSentAt = h.sch.Now()
		h.conns[key] = c
		if l.accept != nil {
			l.accept(c)
		}
		c.sendSYNACK()
	}
}

// String aids debugging.
func (h *Host) String() string {
	return fmt.Sprintf("host %d.%d.%d.%d (%d conns)", h.addr[0], h.addr[1], h.addr[2], h.addr[3], len(h.conns))
}
