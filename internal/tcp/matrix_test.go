package tcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// The matrix suite runs the invariant laws across the full cross
// product of congestion controller × queue policy × loss model — the
// combinations fleet specs can now express — so no (CC, AQM) pairing
// can quietly violate conservation, completion or window sanity. Like
// the invariant suite it runs across seeds and both memory regimes;
// CI runs it under -race.

// matrixLoss names a loss regime and how to install it.
type matrixLoss struct {
	name string
	loss float64               // independent random loss (0 = none)
	ge   *netem.GilbertElliott // bursty model, overrides loss when set
}

func matrixLosses() []matrixLoss {
	return []matrixLoss{
		{name: "noloss"},
		{name: "random2pct", loss: 0.02},
		{name: "gilbert", ge: &netem.GilbertElliott{PGoodToBad: 0.02, PBadToGood: 0.3, PGood: 0.0005, PBad: 0.3}},
	}
}

// matrixAqm builds the policy config for one cell. Thresholds are set
// low enough that the policies genuinely engage at the suite's
// transfer size: RED starts marking at an 8 KiB average backlog (with
// a faster-than-default EWMA so the short transfer reaches it), and
// 8 KiB at 8 Mbps already serializes for 8 ms > CoDel's 5 ms target.
func matrixAqm(kind string) netem.AqmConfig {
	switch kind {
	case netem.AqmRED:
		return netem.AqmConfig{Kind: kind, MinTh: 8 << 10, MaxTh: 32 << 10, MaxP: 0.1, Weight: 0.05}
	case netem.AqmCoDel:
		return netem.AqmConfig{Kind: kind}
	default:
		return netem.AqmConfig{}
	}
}

// matrixTransfer is runTransfer generalized over the congestion
// controller, queue policy and loss model. The queue is uncapped so
// every drop is attributable: the loss model or the AQM, never the
// hard cap.
func matrixTransfer(t *testing.T, seed int64, cc, aqm string, ml matrixLoss, total int, pooled bool, horizon time.Duration) (*invariantRun, *netem.Path) {
	t.Helper()
	sch := sim.NewScheduler(seed)
	client := NewHost(sch, 10, 0, 0, 1)
	server := NewHost(sch, 203, 0, 113, 10)
	prof := netem.Profile{Name: "matrix", Down: 8 * netem.Mbps, Up: 2 * netem.Mbps,
		RTT: 40 * time.Millisecond, Loss: ml.loss, UpLoss: -1, AQM: matrixAqm(aqm)}
	path := netem.NewPath(sch, prof, client, server)
	if ml.ge != nil {
		path.Down.SetLoss(ml.ge)
	}
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	if pooled {
		pool := &packet.Pool{}
		client.SetSegmentPool(pool)
		server.SetSegmentPool(pool)
	}

	run := &invariantRun{sch: sch, total: total}
	server.Listen(80, Config{CC: cc}, func(c *Conn) {
		run.snd = c
		c.SetCallbacks(Callbacks{OnConnected: func() {
			c.WriteZero(total)
			c.Close()
		}})
	})
	cl := client.Dial(Config{CC: cc}, packet.EP(203, 0, 113, 10, 80))
	run.rcv = cl
	cl.SetCallbacks(Callbacks{OnReadable: func() {
		got := int64(cl.Discard(1 << 20))
		run.delivered += got
		if run.delivered > int64(total) {
			t.Fatalf("receiver drained %d bytes, more than the %d ever written", run.delivered, total)
		}
		if run.delivered != cl.Stats.BytesReceived-int64(cl.Buffered()) {
			t.Fatalf("drained %d != accepted %d - buffered %d: receive offsets not monotone/consistent",
				run.delivered, cl.Stats.BytesReceived, cl.Buffered())
		}
	}})
	sch.RunUntil(horizon)
	if run.snd == nil {
		t.Fatal("connection never established")
	}
	return run, path
}

// TestInvariantsMatrix: 3 controllers × 3 queue policies × 3 loss
// models × seeds × pooling. Every cell must conserve bytes, deliver
// the whole stream inside the horizon and end with a sane window; the
// clean drop-tail cells must additionally be exactly retransmission
// free, and drop accounting must attribute AQM drops correctly.
func TestInvariantsMatrix(t *testing.T) {
	// Big enough that the sender's window overshoots the 40 KB BDP and
	// stands a queue — the regime where the policies differ.
	const total = 512 << 10
	const horizon = 120 * time.Second
	for _, cc := range CCKinds() {
		for _, aqm := range netem.AqmKinds() {
			for _, ml := range matrixLosses() {
				for seed := int64(1); seed <= 2; seed++ {
					pooled := seed%2 == 0
					name := fmt.Sprintf("%s/%s/%s/seed=%d", cc, aqm, ml.name, seed)
					t.Run(name, func(t *testing.T) {
						r, path := matrixTransfer(t, seed, cc, aqm, ml, total, pooled, horizon)
						checkConservation(t, r)
						if r.delivered != total {
							t.Fatalf("stream incomplete: %d of %d bytes (sender %+v)",
								r.delivered, total, r.snd.Stats)
						}
						// Window sanity: never below one MSS, and the Conn
						// must actually be running the requested controller.
						if got := r.snd.CC().Name(); got != cc {
							t.Fatalf("sender runs %q, cell asked for %q", got, cc)
						}
						if w := r.snd.Cwnd(); w < Defaults().MSS {
							t.Fatalf("cwnd %d below one MSS at the horizon", w)
						}
						// Drop attribution.
						if aqm == netem.AqmDropTail {
							if path.Down.AqmDrops != 0 || path.Up.AqmDrops != 0 {
								t.Fatalf("drop-tail link counted AQM drops: down %d up %d",
									path.Down.AqmDrops, path.Up.AqmDrops)
							}
						}
						if path.Down.AqmDrops > path.Down.Dropped {
							t.Fatalf("AqmDrops %d exceeds Dropped %d", path.Down.AqmDrops, path.Down.Dropped)
						}
						if ml.name == "noloss" {
							if aqm == netem.AqmDropTail {
								// The only fully clean pipe in the matrix:
								// nothing may be retransmitted on it.
								s := r.snd.Stats
								if s.Retransmits != 0 || s.Timeouts != 0 || s.FastRetransmit != 0 {
									t.Fatalf("retransmissions on a clean drop-tail pipe: %+v", s)
								}
								if s.BytesSent != int64(total) {
									t.Fatalf("sender transmitted %d payload bytes for a %d-byte stream",
										s.BytesSent, total)
								}
							} else if path.Down.Dropped != path.Down.AqmDrops {
								// No loss model and no hard cap: every drop
								// must be the AQM's.
								t.Fatalf("unattributed drops: Dropped %d != AqmDrops %d",
									path.Down.Dropped, path.Down.AqmDrops)
							}
						}
					})
				}
			}
		}
	}
}

// TestMatrixAqmEngages pins that the matrix is not vacuous: on the
// strained no-loss cell both RED and CoDel actually drop packets for
// the loss-based controllers — the queue the clean cell builds is
// exactly what AQM exists to cut — so the matrix genuinely exercises
// the recovery × policy interactions.
func TestMatrixAqmEngages(t *testing.T) {
	for _, aqm := range []string{netem.AqmRED, netem.AqmCoDel} {
		t.Run(aqm, func(t *testing.T) {
			_, path := matrixTransfer(t, 1, CCReno, aqm, matrixLoss{name: "noloss"},
				512<<10, false, 120*time.Second)
			if path.Down.AqmDrops == 0 {
				t.Fatalf("%s never dropped on the strained clean cell", aqm)
			}
		})
	}
}
