// Package player implements the client applications whose read/pull
// behaviour determines the streaming strategy (Table 1): browser
// players (Flash plugin, IE/Firefox/Chrome HTML5), the native YouTube
// apps (Android, iPad) and the Netflix clients (Silverlight on PCs,
// native iPad and Android apps).
//
// The central mechanism is read pacing: a player that stops reading
// lets the TCP receive buffer fill, the advertised window closes, and
// the server stalls — producing the OFF periods of Section 3 without
// any server cooperation. Server-paced strategies (Flash) read
// continuously and inherit the server's ON-OFF schedule instead.
package player

import (
	"math/rand"
	"time"

	"repro/internal/httpx"
	"repro/internal/media"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Env is everything a player needs to stream one video.
type Env struct {
	Sch    *sim.Scheduler
	Host   *tcp.Host       // client-side host
	Server packet.Endpoint // service address (port 80)
}

// Rand returns the deterministic per-run random source.
func (e *Env) Rand() *rand.Rand { return e.Sch.Rand() }

// Player is a client application model.
type Player interface {
	// Name identifies the application (Table 1 row labels).
	Name() string
	// Start begins streaming the video; it returns immediately and
	// drives itself with scheduler callbacks.
	Start(env *Env, v media.Video)
	// Downloaded reports total media bytes consumed so far.
	Downloaded() int64
}

// puller implements read pacing over one ClientConn: an initial
// continuous phase until bufferingTarget bytes, then fixed-size pulls
// on a timer calibrated to accumulation ratio accum.
type puller struct {
	env    *Env
	cc     *httpx.ClientConn
	video  media.Video
	target int64 // buffering phase bytes (0 = read everything)
	pullB  int64 // steady-state pull size (0 = always continuous)
	accum  float64

	downloaded int64
	allowance  int64 // bytes currently allowed to be consumed
	buffering  bool
	done       bool
}

// startPulling wires the puller to the connection and begins the
// buffering phase.
func (p *puller) startPulling() {
	p.buffering = true
	p.allowance = 1<<62 - 1 // unconstrained during buffering
	p.cc.OnBody(func(int) { p.drain() })
}

func (p *puller) drain() {
	if p.done {
		return
	}
	for {
		want := p.allowance
		if want <= 0 {
			break
		}
		if want > 1<<30 {
			want = 1 << 30
		}
		n := p.cc.DiscardBody(int(want))
		if n == 0 {
			break
		}
		p.downloaded += int64(n)
		if !p.buffering {
			p.allowance -= int64(n)
		}
		if p.buffering && p.pullB > 0 && p.target > 0 && p.downloaded >= p.target {
			p.enterSteadyState()
			break
		}
	}
	if p.cc.BodyRemaining() == 0 && p.downloaded > 0 {
		p.done = true
	}
}

func (p *puller) enterSteadyState() {
	p.buffering = false
	p.allowance = 0
	period := time.Duration(float64(p.pullB) * 8 / (p.accum * p.video.EncodingRate) * float64(time.Second))
	var tick func()
	tick = func() {
		if p.done {
			return
		}
		p.allowance += p.pullB
		p.drain()
		if !p.done {
			p.env.Sch.After(period, tick)
		}
	}
	p.env.Sch.After(period, tick)
}

// openConn dials the service and returns a ClientConn.
func openConn(env *Env, cfg tcp.Config) *httpx.ClientConn {
	return httpx.NewClientConn(env.Host.Dial(cfg, env.Server))
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
