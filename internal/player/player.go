// Package player implements the client applications whose read/pull
// behaviour determines the streaming strategy (Table 1): browser
// players (Flash plugin, IE/Firefox/Chrome HTML5), the native YouTube
// apps (Android, iPad), the Netflix clients (Silverlight on PCs,
// native iPad and Android apps), and the segmented adaptive-bitrate
// player (ABRPlayer) that switches rendition-ladder rungs via an
// abr.Controller.
//
// The package is built from three orthogonal parts:
//
//   - the read-pacing engine (pacer): a player that stops reading lets
//     the TCP receive buffer fill, the advertised window closes, and
//     the server stalls — producing the OFF periods of Section 3
//     without any server cooperation;
//   - the playback-buffer model (PlaybackBuffer): an analytic account
//     of the client's media buffer — fill on download, drain at the
//     encoded bitrate, startup threshold, stall/resume bookkeeping —
//     that yields the QoE metrics (startup delay, rebuffering, rung
//     occupancy) without scheduling a single event, so wire traces
//     are byte-identical with or without it;
//   - the ABR decision loop (ABRPlayer + abr.Controller): which rung
//     of the rendition ladder the next chunk is fetched at.
package player

import (
	"math/rand"
	"time"

	"repro/internal/httpx"
	"repro/internal/media"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Env is everything a player needs to stream one video.
type Env struct {
	Sch    *sim.Scheduler
	Host   *tcp.Host       // client-side host
	Server packet.Endpoint // service address (port 80)
}

// Rand returns the deterministic per-run random source.
func (e *Env) Rand() *rand.Rand { return e.Sch.Rand() }

// Player is a client application model.
type Player interface {
	// Name identifies the application (Table 1 row labels).
	Name() string
	// Start begins streaming the video; it returns immediately and
	// drives itself with scheduler callbacks.
	Start(env *Env, v media.Video)
	// Downloaded reports total media bytes consumed so far.
	Downloaded() int64
	// QoE reports the playback-buffer metrics accumulated up to time
	// at (typically the capture horizon). A player that never started
	// returns the zero Metrics.
	QoE(at time.Duration) Metrics
}

// LegacyStartupSec is the playback threshold the single-bitrate
// players' buffer models use: playback begins once this many media
// seconds are buffered.
const LegacyStartupSec = 2.0

// puller is the read-pacing engine behind the single-connection
// players: an initial continuous phase until target bytes, then
// fixed-size pulls on a timer calibrated to accumulation ratio accum.
// It owns the wire behaviour only; the attached PlaybackBuffer is a
// pure observer and never schedules events, so the packet trace is
// exactly what the pre-decomposition monolith produced.
type puller struct {
	env    *Env
	cc     *httpx.ClientConn
	video  media.Video
	target int64 // buffering phase bytes (0 = read everything)
	pullB  int64 // steady-state pull size (0 = always continuous)
	accum  float64

	downloaded int64
	allowance  int64 // bytes currently allowed to be consumed
	buffering  bool
	done       bool

	buf *PlaybackBuffer // playback bookkeeping (observer only)
}

// startPulling wires the puller to the connection and begins the
// buffering phase.
func (p *puller) startPulling() {
	p.buffering = true
	p.allowance = 1<<62 - 1 // unconstrained during buffering
	p.buf = NewPlaybackBuffer(p.env.Sch.Now(), LegacyStartupSec, p.video.EncodingRate)
	p.cc.OnBody(func(int) { p.drain() })
}

func (p *puller) drain() {
	if p.done {
		return
	}
	for {
		want := p.allowance
		if want <= 0 {
			break
		}
		if want > 1<<30 {
			want = 1 << 30
		}
		n := p.cc.DiscardBody(int(want))
		if n == 0 {
			break
		}
		p.downloaded += int64(n)
		p.buf.AddBytes(p.env.Sch.Now(), int64(n))
		if !p.buffering {
			p.allowance -= int64(n)
		}
		if p.buffering && p.pullB > 0 && p.target > 0 && p.downloaded >= p.target {
			p.enterSteadyState()
			break
		}
	}
	if p.cc.BodyRemaining() == 0 && p.downloaded > 0 {
		p.done = true
		p.buf.MarkEnded()
	}
}

func (p *puller) enterSteadyState() {
	p.buffering = false
	p.allowance = 0
	period := time.Duration(float64(p.pullB) * 8 / (p.accum * p.video.EncodingRate) * float64(time.Second))
	var tick func()
	tick = func() {
		if p.done {
			return
		}
		p.allowance += p.pullB
		p.drain()
		if !p.done {
			p.env.Sch.After(period, tick)
		}
	}
	p.env.Sch.After(period, tick)
}

// qoe reports the puller's playback metrics (zero before Start).
func (p *puller) qoe(at time.Duration) Metrics {
	if p == nil || p.buf == nil {
		return Metrics{}
	}
	return p.buf.QoE(at)
}

// openConn dials the service and returns a ClientConn.
func openConn(env *Env, cfg tcp.Config) *httpx.ClientConn {
	return httpx.NewClientConn(env.Host.Dial(cfg, env.Server))
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
