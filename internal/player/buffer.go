package player

import "time"

// Metrics is the playback QoE a session accumulated: what the viewer
// experienced, as opposed to what the wire carried. All values are
// derived analytically from the download timeline, so computing them
// perturbs nothing.
type Metrics struct {
	// Started reports whether playback ever began.
	Started bool
	// StartupDelay is the time from player start to first play — the
	// buffer reaching its startup threshold.
	StartupDelay time.Duration
	// Rebuffers counts playback stalls (buffer exhaustion mid-play);
	// RebufferTime is their total duration, including a stall still
	// open at the evaluation time.
	Rebuffers    int
	RebufferTime time.Duration
	// Switches counts rendition-rung changes between consecutive
	// fetches (0 for single-bitrate players).
	Switches int
	// PlayedSec is media seconds actually played.
	PlayedSec float64
	// FetchedSec is media seconds downloaded; FetchedBits is their
	// encoded size in bits, so FetchedBits/FetchedSec is the
	// duration-weighted mean fetched bitrate.
	FetchedSec  float64
	FetchedBits float64
	// RungSec is media seconds fetched per ladder rung (ladder order);
	// nil for single-bitrate players.
	RungSec []float64
}

// MeanFetchedBps returns the duration-weighted mean fetched bitrate,
// 0 when nothing was fetched.
func (m Metrics) MeanFetchedBps() float64 {
	if m.FetchedSec <= 0 {
		return 0
	}
	return m.FetchedBits / m.FetchedSec
}

// PlaybackBuffer models the client's media buffer analytically: media
// seconds are added as bytes (or chunks) arrive and drain at exactly
// one media second per wall second while playing. Every state change
// happens lazily inside the caller's own event — the model schedules
// nothing — so attaching it to a player cannot move a single packet.
// Stall instants that fall between downloads are reconstructed exactly
// from the drain equation (the buffer that had s seconds at time t ran
// dry at t+s).
type PlaybackBuffer struct {
	startupSec float64 // media seconds needed to start or resume play
	rate       float64 // encoded bitrate for byte→seconds conversion

	startAt   time.Duration // player start (t0 of the startup delay)
	lastAt    time.Duration // last observation
	level     float64       // buffered media seconds
	playing   bool
	stalled   bool
	stalledAt time.Duration
	ended     bool // all content fetched: exhaustion is the credits, not a stall

	m Metrics
}

// NewPlaybackBuffer returns a buffer model for a player starting at
// `start`, with the given startup threshold (media seconds) and
// encoded bitrate (bps) used to convert downloaded bytes to media
// seconds.
func NewPlaybackBuffer(start time.Duration, startupSec, bitrate float64) *PlaybackBuffer {
	return &PlaybackBuffer{
		startupSec: startupSec,
		rate:       bitrate,
		startAt:    start,
		lastAt:     start,
	}
}

// SetRate updates the byte→seconds conversion rate (a player whose
// steady-state bitrate differs from the probe's calls this once the
// choice is made).
func (b *PlaybackBuffer) SetRate(bitrate float64) {
	if bitrate > 0 {
		b.rate = bitrate
	}
}

// advance drains the buffer from lastAt to at. A mid-interval
// exhaustion is located exactly and recorded as a stall (unless the
// content has ended).
func (b *PlaybackBuffer) advance(at time.Duration) {
	if at < b.lastAt {
		at = b.lastAt
	}
	if b.playing {
		elapsed := (at - b.lastAt).Seconds()
		if elapsed < b.level {
			b.level -= elapsed
			b.m.PlayedSec += elapsed
		} else {
			b.m.PlayedSec += b.level
			exhaustAt := b.lastAt + time.Duration(b.level*float64(time.Second))
			b.level = 0
			b.playing = false
			if !b.ended {
				b.stalled = true
				b.stalledAt = exhaustAt
				b.m.Rebuffers++
			}
		}
	}
	b.lastAt = at
}

// AddMedia credits sec media seconds (bits encoded bits) fetched at
// rung (-1 for single-bitrate content) at time at, starting or
// resuming playback when the threshold is reached.
func (b *PlaybackBuffer) AddMedia(at time.Duration, sec, bits float64, rung int) {
	if sec <= 0 {
		return
	}
	b.advance(at)
	b.level += sec
	b.m.FetchedSec += sec
	b.m.FetchedBits += bits
	if rung >= 0 {
		for len(b.m.RungSec) <= rung {
			b.m.RungSec = append(b.m.RungSec, 0)
		}
		b.m.RungSec[rung] += sec
	}
	if !b.playing && b.level >= b.startupSec {
		b.playing = true
		if b.stalled {
			b.m.RebufferTime += at - b.stalledAt
			b.stalled = false
		}
		if !b.m.Started {
			b.m.Started = true
			b.m.StartupDelay = at - b.startAt
		}
	}
}

// AddBytes credits n downloaded bytes at the buffer's current encoded
// bitrate — the single-bitrate players' fill path.
func (b *PlaybackBuffer) AddBytes(at time.Duration, n int64) {
	if b.rate <= 0 {
		return
	}
	b.AddMedia(at, float64(n)*8/b.rate, float64(n)*8, -1)
}

// Level returns the buffered media seconds at time at.
func (b *PlaybackBuffer) Level(at time.Duration) float64 {
	b.advance(at)
	return b.level
}

// NoteSwitch records one rendition-rung change.
func (b *PlaybackBuffer) NoteSwitch() { b.m.Switches++ }

// MarkEnded declares the content fully fetched: subsequent buffer
// exhaustion is the end of playback, not a rebuffer.
func (b *PlaybackBuffer) MarkEnded() { b.ended = true }

// QoE evaluates the metrics at time at without mutating the model: a
// stall still open at `at` contributes its elapsed time.
func (b *PlaybackBuffer) QoE(at time.Duration) Metrics {
	c := *b
	c.m.RungSec = append([]float64(nil), b.m.RungSec...)
	c.advance(at)
	m := c.m
	if c.stalled {
		m.RebufferTime += at - c.stalledAt
	}
	return m
}
