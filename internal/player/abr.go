package player

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/media"
	"repro/internal/service"
	"repro/internal/tcp"
)

// Source selects where an ABRPlayer's chunks come from.
type Source int

// The two chunk sources the services offer.
const (
	// Fragments fetches Netflix-style MP4 fragments at the chosen
	// ladder rung (/frag/<id>/<kbps>/<idx>), each carrying a fragment
	// header the analyzer recovers the rendition from.
	Fragments Source = iota
	// Ranges fetches byte ranges of the per-rendition YouTube resource
	// (/videoplayback/<id>/<kbps> with a Range header) — DASH-over-
	// ranges, the iPad mechanism generalized across the ladder.
	Ranges
)

// Defaults of the ABR player.
const (
	// DefaultMaxBufferSec caps the playback buffer: the fetch loop
	// sleeps until the drain makes room — client-driven ON-OFF.
	DefaultMaxBufferSec = 30.0
	// DefaultAbrStartupSec is the startup/resume threshold.
	DefaultAbrStartupSec = 4.0
)

// ABRConfig parameterizes an ABRPlayer.
type ABRConfig struct {
	Controller abr.Controller
	Source     Source
	// ChunkDur is the media duration per chunk; 0 means the service
	// fragment duration (4 s). Only honoured by the Ranges source —
	// fragments come in the CDN's fixed duration.
	ChunkDur time.Duration
	// MaxBufferSec caps the buffer (0 = DefaultMaxBufferSec);
	// StartupSec is the play threshold (0 = DefaultAbrStartupSec).
	MaxBufferSec float64
	StartupSec   float64
	RecvBuf      int // 0 = 1 MiB
}

// ABRPlayer is the composable adaptive player: a sequential chunk
// fetch loop (one fresh connection per chunk, like the iPad and
// Netflix PC clients) whose rung each iteration is chosen by the
// configured abr.Controller, feeding the explicit PlaybackBuffer. The
// buffer cap makes it self-pacing: once full, fetches wait for drain,
// producing the ON-OFF wire pattern from the client side.
type ABRPlayer struct {
	cfg    ABRConfig
	env    *Env
	video  media.Video
	ladder []float64
	buf    *PlaybackBuffer

	downloaded int64
	next       int // next chunk index
	total      int
	rung       int
	lastBps    float64 // throughput of the most recent chunk fetch
	fetched    bool    // at least one chunk completed
	done       bool
}

// NewABRPlayer builds an adaptive player driven by the controller.
func NewABRPlayer(cfg ABRConfig) *ABRPlayer {
	if cfg.Controller == nil {
		cfg.Controller = abr.NewBufferBased()
	}
	if cfg.ChunkDur <= 0 || cfg.Source == Fragments {
		// Fragments are served at the CDN's fixed duration; a diverging
		// ChunkDur would miscount fragments and mis-credit media time,
		// so the override only applies to the Ranges source.
		cfg.ChunkDur = service.FragmentDuration
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = DefaultMaxBufferSec
	}
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = DefaultAbrStartupSec
	}
	if limit := cfg.MaxBufferSec - cfg.ChunkDur.Seconds(); cfg.StartupSec > limit {
		// The fetch loop stops one chunk short of the cap, so a
		// threshold above cap-chunk could never be reached before
		// playback starts draining: the loop would park at the full
		// buffer with playback never starting. Clamp so every
		// configuration makes progress.
		cfg.StartupSec = limit
	}
	if cfg.RecvBuf <= 0 {
		cfg.RecvBuf = 1 << 20
	}
	return &ABRPlayer{cfg: cfg}
}

// Name implements Player.
func (p *ABRPlayer) Name() string {
	src := "frag"
	if p.cfg.Source == Ranges {
		src = "range"
	}
	return fmt.Sprintf("ABR (%s, %s)", p.cfg.Controller.Name(), src)
}

// Downloaded implements Player.
func (p *ABRPlayer) Downloaded() int64 { return p.downloaded }

// QoE implements Player.
func (p *ABRPlayer) QoE(at time.Duration) Metrics {
	if p.buf == nil {
		return Metrics{}
	}
	return p.buf.QoE(at)
}

// Start implements Player.
func (p *ABRPlayer) Start(env *Env, v media.Video) {
	p.env = env
	p.video = v
	p.ladder = v.Ladder()
	p.total = int(v.Duration / p.cfg.ChunkDur)
	p.buf = NewPlaybackBuffer(env.Sch.Now(), p.cfg.StartupSec, p.ladder[0])
	p.fetch()
}

// snapshot is what the controller sees right now.
func (p *ABRPlayer) snapshot(level float64) abr.Snapshot {
	return abr.Snapshot{
		BufferSec:    level,
		LastChunkBps: p.lastBps,
		CurrentRung:  p.rung,
		Ladder:       p.ladder,
	}
}

// fetch runs one iteration of the chunk loop: wait for buffer room,
// consult the controller, download the chunk, account it, repeat.
func (p *ABRPlayer) fetch() {
	if p.done {
		return
	}
	if p.next >= p.total {
		p.done = true
		p.buf.MarkEnded()
		return
	}
	now := p.env.Sch.Now()
	level := p.buf.Level(now)
	chunkSec := p.cfg.ChunkDur.Seconds()
	if level+chunkSec > p.cfg.MaxBufferSec {
		// Full: sleep until the drain makes room for one chunk. The
		// floor keeps float rounding from producing a zero-duration
		// timer (which would re-enter fetch at the same instant
		// forever).
		wait := time.Duration((level + chunkSec - p.cfg.MaxBufferSec) * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		p.env.Sch.After(wait, p.fetch)
		return
	}
	rung := p.cfg.Controller.Next(p.snapshot(level))
	if rung < 0 {
		rung = 0
	}
	if rung >= len(p.ladder) {
		rung = len(p.ladder) - 1
	}
	if p.fetched && rung != p.rung {
		p.buf.NoteSwitch()
	}
	p.rung = rung
	idx := p.next
	p.next++
	p.fetchChunk(idx, rung, now)
}

// fetchChunk downloads chunk idx at ladder rung on a fresh connection,
// then accounts the media and loops.
func (p *ABRPlayer) fetchChunk(idx, rung int, started time.Duration) {
	rate := p.ladder[rung]
	cc := openConn(p.env, tcp.Config{RecvBuf: p.cfg.RecvBuf})
	var want int64
	var headers map[string]string
	var path string
	if p.cfg.Source == Fragments {
		path = service.FragPath(p.video.ID, rate, idx)
		want = service.FragmentBytes(rate)
	} else {
		// Byte range of the per-rendition resource. Chunk 0 includes
		// the container header so the stream prefix stays parseable.
		rv := p.video.AtRung(rung)
		hdr := int64(len(media.HeaderFor(rv)))
		fileSize := hdr + rv.Size()
		mb := int64(rate / 8 * p.cfg.ChunkDur.Seconds())
		start := hdr + int64(idx)*mb
		end := start + mb - 1
		if idx == 0 {
			start = 0
		}
		if end >= fileSize {
			end = fileSize - 1
		}
		path = service.RenditionPath(p.video.ID, rate)
		headers = map[string]string{"Range": fmt.Sprintf("bytes=%d-%d", start, end)}
		want = end - start + 1
	}
	var got int64
	fired := false
	cc.OnBody(func(avail int) {
		n := cc.DiscardBody(avail)
		p.downloaded += int64(n)
		got += int64(n)
		if !fired && got >= want {
			fired = true
			cc.Conn.Close()
			p.completeChunk(rung, got, started)
		}
	})
	cc.Get(path, headers)
}

// completeChunk accounts one finished chunk and continues the loop.
func (p *ABRPlayer) completeChunk(rung int, got int64, started time.Duration) {
	now := p.env.Sch.Now()
	if dt := (now - started).Seconds(); dt > 0 {
		p.lastBps = float64(got) * 8 / dt
	}
	p.fetched = true
	chunkSec := p.cfg.ChunkDur.Seconds()
	p.buf.AddMedia(now, chunkSec, p.ladder[rung]*chunkSec, rung)
	p.fetch()
}

// Compile-time interface check.
var _ Player = (*ABRPlayer)(nil)
