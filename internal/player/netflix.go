package player

import (
	"time"

	"repro/internal/httpx"
	"repro/internal/media"
	"repro/internal/service"
	"repro/internal/tcp"
)

// netflixBase carries the machinery shared by the three Netflix
// clients: fragment fetching over fresh or reused connections and the
// periodic steady-state request schedule. Per the paper (Section 5.2),
// the differences between PC, iPad and Android are (a) how many ladder
// bitrates the buffering phase downloads, (b) the per-request block
// size, and (c) whether connections are churned (PC/iPad, giving ACK
// clocks on fresh connections) or kept (Android).
type netflixBase struct {
	env        *Env
	video      media.Video
	downloaded int64
	done       bool
	buf        *PlaybackBuffer

	// configuration
	ladder     []float64 // bitrates fetched during buffering
	chosen     float64   // steady-state bitrate
	bufFrags   int       // fragments per ladder rung during buffering
	steadySecs float64   // extra seconds of chosen rate in buffering
	fragsPerGo int       // fragments per steady-state request burst
	newConnPer bool      // fresh TCP connection per request
	adaptive   bool      // re-pick the steady bitrate from measured throughput
	recvBuf    int

	nextFrag   int
	totalFrags int
	busy       bool              // a fetch group is still in flight
	conn       *httpx.ClientConn // persistent connection when !newConnPer
}

// Downloaded implements part of Player.
func (nb *netflixBase) Downloaded() int64 { return nb.downloaded }

// QoE implements part of Player.
func (nb *netflixBase) QoE(at time.Duration) Metrics {
	if nb.buf == nil {
		return Metrics{}
	}
	return nb.buf.QoE(at)
}

func (nb *netflixBase) start(env *Env, v media.Video) {
	nb.env = env
	nb.video = v
	nb.totalFrags = int(v.Duration / service.FragmentDuration)
	// A video carrying its own rendition ladder only serves those
	// rungs: snap the client's configured rates (defined against the
	// default NetflixLadder) onto it, or every request would 404.
	// Videos without explicit renditions — every legacy catalog —
	// take the historical path untouched.
	if len(v.Renditions) > 0 && len(nb.ladder) > 0 {
		full := v.Ladder()
		snapped := make([]float64, 0, len(nb.ladder))
		for _, r := range nb.ladder {
			s := nearestRung(full, r)
			if len(snapped) == 0 || snapped[len(snapped)-1] != s {
				snapped = append(snapped, s)
			}
		}
		nb.ladder = snapped
		nb.chosen = nearestRung(full, nb.chosen)
	}
	// Playback bookkeeping: bytes convert to media seconds at the
	// steady-state bitrate; re-pinned after the adaptive probe.
	nb.buf = NewPlaybackBuffer(env.Sch.Now(), LegacyStartupSec, nb.chosen)
	// Buffering runs in two pipelined groups on one connection:
	// first the ladder probe (fragments of every configured rung —
	// Akhshabi et al. observed all encoding rates being fetched at
	// session start), then a stretch of the chosen rate. Between the
	// two, an adaptive client re-picks the steady-state bitrate from
	// the throughput the probe measured — the bandwidth dependence of
	// Netflix encoding rates the paper notes in Section 5 [11].
	var probe []fragJob
	for f := 0; f < nb.bufFrags; f++ {
		for _, rate := range nb.ladder {
			probe = append(probe, fragJob{rate, f})
		}
	}
	cc := openConn(env, tcp.Config{RecvBuf: nb.recvBuf})
	if !nb.newConnPer {
		nb.conn = cc
	}
	t0 := env.Sch.Now()
	nb.fetchGroup(cc, probe, false, func() {
		if nb.adaptive && nb.downloaded > 0 {
			if elapsed := env.Sch.Now() - t0; elapsed > 0 {
				thr := float64(nb.downloaded) * 8 / elapsed.Seconds()
				nb.chosen = sustainableRung(nb.ladder, thr)
				nb.buf.SetRate(nb.chosen)
			}
		}
		var fill []fragJob
		extra := int(nb.steadySecs / service.FragmentDuration.Seconds())
		for f := nb.bufFrags; f < nb.bufFrags+extra && f < nb.totalFrags; f++ {
			fill = append(fill, fragJob{nb.chosen, f})
		}
		nb.nextFrag = nb.bufFrags + extra
		nb.fetchGroup(cc, fill, nb.newConnPer, func() { nb.steadyState() })
	})
}

// nearestRung returns the ladder rung closest to rate.
func nearestRung(ladder []float64, rate float64) float64 {
	best := ladder[0]
	for _, r := range ladder {
		d, bd := r-rate, best-rate
		if d < 0 {
			d = -d
		}
		if bd < 0 {
			bd = -bd
		}
		if d < bd {
			best = r
		}
	}
	return best
}

// sustainableRung picks the highest ladder bitrate that fits within
// 80% of the measured throughput, falling back to the lowest rung.
func sustainableRung(ladder []float64, throughput float64) float64 {
	best := ladder[0]
	for _, r := range ladder {
		if r <= 0.8*throughput && r > best {
			best = r
		}
	}
	return best
}

// fragJob names one fragment to fetch.
type fragJob struct {
	bitrate float64
	index   int
}

// fetchGroup pipelines the jobs' requests on cc, reads all bodies
// greedily, optionally closes the connection, then calls done.
func (nb *netflixBase) fetchGroup(cc *httpx.ClientConn, jobs []fragJob, closeAfter bool, done func()) {
	if len(jobs) == 0 {
		done()
		return
	}
	var expect int64
	for _, j := range jobs {
		expect += service.FragmentBytes(j.bitrate)
	}
	var got int64
	fired := false
	nb.busy = true
	cc.OnBody(func(avail int) {
		n := cc.DiscardBody(avail)
		nb.downloaded += int64(n)
		nb.buf.AddBytes(nb.env.Sch.Now(), int64(n))
		got += int64(n)
		if !fired && got >= expect {
			fired = true
			nb.busy = false
			if closeAfter {
				cc.Conn.Close()
			}
			done()
		}
	})
	for _, j := range jobs {
		cc.Get(service.FragPath(nb.video.ID, j.bitrate, j.index), nil)
	}
}

// steadyState requests fragsPerGo fragments of the chosen bitrate
// every fragsPerGo*FragmentDuration — real-time pacing with a small
// accumulation margin. PC and iPad use a fresh connection per burst
// (the paper observed heavy connection churn and ACK clocks on new
// connections); Android reuses its single connection.
func (nb *netflixBase) steadyState() {
	if nb.nextFrag >= nb.totalFrags {
		nb.done = true
		nb.buf.MarkEnded()
		return
	}
	const accum = 1.1
	period := time.Duration(float64(nb.fragsPerGo) * float64(service.FragmentDuration) / accum)
	var tick func()
	tick = func() {
		if nb.done || nb.nextFrag >= nb.totalFrags {
			if nb.nextFrag >= nb.totalFrags {
				nb.buf.MarkEnded()
			}
			nb.done = true
			return
		}
		if nb.busy {
			// The previous fetch overran its period (loss, congestion):
			// back off one period instead of stacking requests, the way
			// a real player limits its buffer level.
			nb.env.Sch.After(period, tick)
			return
		}
		var jobs []fragJob
		for i := 0; i < nb.fragsPerGo && nb.nextFrag < nb.totalFrags; i++ {
			jobs = append(jobs, fragJob{nb.chosen, nb.nextFrag})
			nb.nextFrag++
		}
		cc := nb.conn
		if nb.newConnPer || cc == nil {
			cc = openConn(nb.env, tcp.Config{RecvBuf: nb.recvBuf})
		}
		nb.fetchGroup(cc, jobs, nb.newConnPer, func() {})
		nb.env.Sch.After(period, tick)
	}
	nb.env.Sch.After(period, tick)
}

// SilverlightPC is Netflix in a browser via Silverlight: buffering
// downloads every ladder rung (~50 MB, Figure 11a), steady state
// fetches one fragment at a time over fresh connections (short ON-OFF,
// blocks < 2.5 MB, Figure 12a). The browser name is a label only —
// the paper found the strategy browser-independent.
type SilverlightPC struct {
	Browser string
	netflixBase
}

// NewSilverlightPC builds the PC client model.
func NewSilverlightPC(browser string) *SilverlightPC {
	s := &SilverlightPC{Browser: browser}
	s.ladder = media.NetflixLadder
	s.chosen = media.NetflixLadder[len(media.NetflixLadder)-1]
	s.bufFrags = 4
	s.steadySecs = 60
	s.fragsPerGo = 1
	s.newConnPer = true
	s.adaptive = true
	s.recvBuf = 2 << 20
	return s
}

// Name implements Player.
func (s *SilverlightPC) Name() string { return "Silverlight (" + s.Browser + ")" }

// Start implements Player.
func (s *SilverlightPC) Start(env *Env, v media.Video) { s.start(env, v) }

// NetflixIPad is the native iPad app: it buffers only a subset of the
// ladder (~10 MB, Figure 11a) and then behaves like the PC client
// (short ON-OFF over fresh connections).
type NetflixIPad struct{ netflixBase }

// NewNetflixIPad builds the iPad client model.
func NewNetflixIPad() *NetflixIPad {
	n := &NetflixIPad{}
	n.ladder = media.NetflixLadder[2:4] // mid rungs only
	n.chosen = media.NetflixLadder[3]
	n.bufFrags = 2
	n.steadySecs = 16
	n.fragsPerGo = 1
	n.newConnPer = true
	n.adaptive = true
	n.recvBuf = 1 << 20
	return n
}

// Name implements Player.
func (n *NetflixIPad) Name() string { return "Netflix app (iPad)" }

// Start implements Player.
func (n *NetflixIPad) Start(env *Env, v media.Video) { n.start(env, v) }

// NetflixAndroid is the native Android app: a large single-rate
// buffering phase (~40 MB, Figure 11b) and long ON-OFF cycles — four
// fragments per request burst on one persistent connection
// (Figure 10b/12b).
type NetflixAndroid struct{ netflixBase }

// NewNetflixAndroid builds the Android client model.
func NewNetflixAndroid() *NetflixAndroid {
	n := &NetflixAndroid{}
	n.ladder = media.NetflixLadder[3:4]
	n.chosen = media.NetflixLadder[3]
	n.bufFrags = 0
	n.steadySecs = 120
	n.fragsPerGo = 4
	n.newConnPer = false
	n.recvBuf = 2 << 20
	return n
}

// Name implements Player.
func (n *NetflixAndroid) Name() string { return "Netflix app (Android)" }

// Start implements Player.
func (n *NetflixAndroid) Start(env *Env, v media.Video) { n.start(env, v) }

// Compile-time interface checks.
var _ = []Player{(*SilverlightPC)(nil), (*NetflixIPad)(nil), (*NetflixAndroid)(nil)}
