package player

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/service"
	"repro/internal/tcp"
)

// FlashPlayer is the Flash plugin inside any browser: it reads
// greedily, so the wire pattern is entirely the server's pacing
// (short ON-OFF at default resolutions, bulk for HD). The browser
// name only labels the results — the paper found the strategy
// independent of the browser for Flash (Table 1).
type FlashPlayer struct {
	Browser string
	p       *puller
}

// NewFlashPlayer builds the plugin model hosted by the given browser.
func NewFlashPlayer(browser string) *FlashPlayer { return &FlashPlayer{Browser: browser} }

// Name implements Player.
func (f *FlashPlayer) Name() string { return "Flash (" + f.Browser + ")" }

// Downloaded implements Player.
func (f *FlashPlayer) Downloaded() int64 {
	if f.p == nil {
		return 0
	}
	return f.p.downloaded
}

// QoE implements Player.
func (f *FlashPlayer) QoE(at time.Duration) Metrics { return f.p.qoe(at) }

// Start implements Player.
func (f *FlashPlayer) Start(env *Env, v media.Video) {
	cc := openConn(env, tcp.Config{RecvBuf: 512 << 10})
	f.p = &puller{env: env, cc: cc, video: v}
	f.p.startPulling()
	cc.Get(service.VideoPath(v.ID), nil)
}

// IEHtml5 is Internet Explorer's HTML5 player: a 10–15 MB buffering
// phase (independent of the encoding rate, Figure 3b), then 256 kB
// pulls from the TCP buffer (Figure 5a) at accumulation ratio ~1.06.
// Its small receive buffer is what makes the receive window oscillate
// to zero in Figure 2b.
type IEHtml5 struct{ p *puller }

// NewIEHtml5 builds the model.
func NewIEHtml5() *IEHtml5 { return &IEHtml5{} }

// Name implements Player.
func (ie *IEHtml5) Name() string { return "HTML5 (Internet Explorer)" }

// Downloaded implements Player.
func (ie *IEHtml5) Downloaded() int64 {
	if ie.p == nil {
		return 0
	}
	return ie.p.downloaded
}

// QoE implements Player.
func (ie *IEHtml5) QoE(at time.Duration) Metrics { return ie.p.qoe(at) }

// Start implements Player.
func (ie *IEHtml5) Start(env *Env, v media.Video) {
	cc := openConn(env, tcp.Config{RecvBuf: 384 << 10})
	target := int64(10<<20) + int64(env.Rand().Float64()*float64(5<<20))
	ie.p = &puller{
		env: env, cc: cc, video: v,
		target: minI64(target, v.Size()),
		pullB:  256 << 10,
		accum:  1.06,
	}
	ie.p.startPulling()
	cc.Get(service.VideoPath(v.ID), nil)
}

// FirefoxHtml5 is Firefox 4's HTML5 player, which applied no client
// throttling at all: with the server also not pacing WebM, the result
// is a bulk TCP transfer (no ON-OFF cycles, Section 5.1.4).
type FirefoxHtml5 struct{ p *puller }

// NewFirefoxHtml5 builds the model.
func NewFirefoxHtml5() *FirefoxHtml5 { return &FirefoxHtml5{} }

// Name implements Player.
func (ff *FirefoxHtml5) Name() string { return "HTML5 (Mozilla Firefox)" }

// Downloaded implements Player.
func (ff *FirefoxHtml5) Downloaded() int64 {
	if ff.p == nil {
		return 0
	}
	return ff.p.downloaded
}

// QoE implements Player.
func (ff *FirefoxHtml5) QoE(at time.Duration) Metrics { return ff.p.qoe(at) }

// Start implements Player.
func (ff *FirefoxHtml5) Start(env *Env, v media.Video) {
	cc := openConn(env, tcp.Config{RecvBuf: 16 << 20})
	ff.p = &puller{env: env, cc: cc, video: v}
	ff.p.startPulling()
	cc.Get(service.VideoPath(v.ID), nil)
}

// ChromeHtml5 is Chrome 10's HTML5 player: 10–15 MB buffering, then
// large pulls (> 2.5 MB) tens of seconds apart — the long ON-OFF
// cycles of Figure 6 — at accumulation ratio ~1.34.
type ChromeHtml5 struct{ p *puller }

// NewChromeHtml5 builds the model.
func NewChromeHtml5() *ChromeHtml5 { return &ChromeHtml5{} }

// Name implements Player.
func (ch *ChromeHtml5) Name() string { return "HTML5 (Google Chrome)" }

// Downloaded implements Player.
func (ch *ChromeHtml5) Downloaded() int64 {
	if ch.p == nil {
		return 0
	}
	return ch.p.downloaded
}

// QoE implements Player.
func (ch *ChromeHtml5) QoE(at time.Duration) Metrics { return ch.p.qoe(at) }

// Start implements Player.
func (ch *ChromeHtml5) Start(env *Env, v media.Video) {
	cc := openConn(env, tcp.Config{RecvBuf: 1 << 20})
	target := int64(10<<20) + int64(env.Rand().Float64()*float64(5<<20))
	pull := int64(4<<20) + int64(env.Rand().Float64()*float64(6<<20))
	ch.p = &puller{
		env: env, cc: cc, video: v,
		target: minI64(target, v.Size()),
		pullB:  pull,
		accum:  1.34,
	}
	ch.p.startPulling()
	cc.Get(service.VideoPath(v.ID), nil)
}

// AndroidYouTube is the native Android YouTube app: a smaller 4–8 MB
// buffering phase, then long pulls (> 2.5 MB) at accumulation ratio
// ~1.24 over a single connection (Figure 6b, "Rsrch. (And.)").
type AndroidYouTube struct{ p *puller }

// NewAndroidYouTube builds the model.
func NewAndroidYouTube() *AndroidYouTube { return &AndroidYouTube{} }

// Name implements Player.
func (a *AndroidYouTube) Name() string { return "YouTube app (Android)" }

// Downloaded implements Player.
func (a *AndroidYouTube) Downloaded() int64 {
	if a.p == nil {
		return 0
	}
	return a.p.downloaded
}

// QoE implements Player.
func (a *AndroidYouTube) QoE(at time.Duration) Metrics { return a.p.qoe(at) }

// Start implements Player.
func (a *AndroidYouTube) Start(env *Env, v media.Video) {
	cc := openConn(env, tcp.Config{RecvBuf: 1 << 20})
	target := int64(4<<20) + int64(env.Rand().Float64()*float64(4<<20))
	pull := int64(3<<20) + int64(env.Rand().Float64()*float64(3<<20))
	a.p = &puller{
		env: env, cc: cc, video: v,
		target: minI64(target, v.Size()),
		pullB:  pull,
		accum:  1.24,
	}
	a.p.startPulling()
	cc.Get(service.VideoPath(v.ID), nil)
}

// IPadYouTube is the native iOS app on an iPad, the "Multiple"
// strategy of Table 1 / Section 5.1.3: successive TCP connections
// fetching byte ranges, block sizes that grow with the encoding rate
// (Figure 7b), and periodic re-buffering bursts between stretches of
// short cycles (Figure 7a, Video1).
type IPadYouTube struct {
	downloaded int64
	env        *Env
	video      media.Video
	fileSize   int64
	offset     int64
	done       bool
	buf        *PlaybackBuffer
}

// NewIPadYouTube builds the model.
func NewIPadYouTube() *IPadYouTube { return &IPadYouTube{} }

// Name implements Player.
func (ip *IPadYouTube) Name() string { return "YouTube app (iPad)" }

// Downloaded implements Player.
func (ip *IPadYouTube) Downloaded() int64 { return ip.downloaded }

// QoE implements Player.
func (ip *IPadYouTube) QoE(at time.Duration) Metrics {
	if ip.buf == nil {
		return Metrics{}
	}
	return ip.buf.QoE(at)
}

// blockBytes is the rate-dependent request size of Figure 7b: roughly
// linear in the encoding rate, from 64 kB up to 8 MB.
func (ip *IPadYouTube) blockBytes() int64 {
	b := int64(64<<10) + int64(0.45*float64(1<<20)*ip.video.EncodingRate/1e6)
	if b > 8<<20 {
		b = 8 << 20
	}
	return b
}

// Start implements Player.
func (ip *IPadYouTube) Start(env *Env, v media.Video) {
	ip.env = env
	ip.video = v
	ip.fileSize = v.Size() + int64(media.WebMHeaderSize)
	ip.buf = NewPlaybackBuffer(env.Sch.Now(), LegacyStartupSec, v.EncodingRate)
	// Initial buffering: a burst of back-to-back range requests.
	burst := minI64(int64(4<<20)+int64(env.Rand().Float64()*float64(2<<20)), ip.fileSize)
	ip.fetchSequence(burst, func() { ip.steadyCycle() })
}

// fetchSequence downloads total bytes via consecutive range requests
// on fresh connections (the paper saw 37 connections in 60 s), then
// calls done.
func (ip *IPadYouTube) fetchSequence(total int64, done func()) {
	if ip.done || ip.offset >= ip.fileSize || total <= 0 {
		if ip.offset >= ip.fileSize {
			ip.done = true
			ip.buf.MarkEnded()
		}
		done()
		return
	}
	n := minI64(ip.blockBytes(), minI64(total, ip.fileSize-ip.offset))
	start := ip.offset
	ip.offset += n
	cc := openConn(ip.env, tcp.Config{RecvBuf: 1 << 20})
	got := int64(0)
	cc.OnBody(func(avail int) {
		m := cc.DiscardBody(avail)
		got += int64(m)
		ip.downloaded += int64(m)
		ip.buf.AddBytes(ip.env.Sch.Now(), int64(m))
		if cc.BodyRemaining() == 0 {
			cc.Conn.Close()
			ip.fetchSequence(total-n, done)
		}
	})
	cc.Get(service.VideoPath(ip.video.ID), map[string]string{
		"Range": fmt.Sprintf("bytes=%d-%d", start, start+n-1),
	})
}

// steadyCycle alternates short paced range fetches with periodic
// re-buffering bursts, reproducing the Video1 pattern of Figure 7a.
func (ip *IPadYouTube) steadyCycle() {
	if ip.done || ip.offset >= ip.fileSize {
		return
	}
	const accum = 1.15
	block := ip.blockBytes()
	period := time.Duration(float64(block) * 8 / (accum * ip.video.EncodingRate) * float64(time.Second))
	cycles := 0
	var tick func()
	tick = func() {
		if ip.done || ip.offset >= ip.fileSize {
			return
		}
		cycles++
		if cycles%5 == 0 {
			// Periodic re-buffering burst: several blocks back to
			// back (the Figure 7a Video1 pattern), large enough to
			// land above the 2.5 MB long-cycle boundary.
			burst := 5 * block
			if burst < 3<<20 {
				burst = 3 << 20
			}
			ip.fetchSequence(burst, func() { ip.env.Sch.After(period, tick) })
			return
		}
		ip.fetchSequence(block, func() { ip.env.Sch.After(period, tick) })
	}
	ip.env.Sch.After(period, tick)
}

// Compile-time interface checks.
var _ = []Player{
	(*FlashPlayer)(nil), (*IEHtml5)(nil), (*FirefoxHtml5)(nil),
	(*ChromeHtml5)(nil), (*AndroidYouTube)(nil), (*IPadYouTube)(nil),
}
