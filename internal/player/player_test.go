package player

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// rig wires a client host, a YouTube or Netflix service and an Env.
type rig struct {
	sch *sim.Scheduler
	env *Env
}

func newRig(seed int64, videos []media.Video, netflix bool) *rig {
	sch := sim.NewScheduler(seed)
	client := tcp.NewHost(sch, 10, 0, 0, 1)
	server := tcp.NewHost(sch, 203, 0, 113, 10)
	path := netem.NewPath(sch, netem.Research, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	if netflix {
		service.NewNetflix(server, tcp.Config{}, videos)
	} else {
		service.NewYouTube(server, tcp.Config{}, videos)
	}
	return &rig{sch: sch, env: &Env{Sch: sch, Host: client, Server: packet.EP(203, 0, 113, 10, 80)}}
}

func htmlVideo() media.Video {
	return media.Video{ID: 1, EncodingRate: 1e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
}

func TestPlayerNames(t *testing.T) {
	players := []Player{
		NewFlashPlayer("Internet Explorer"), NewIEHtml5(), NewFirefoxHtml5(),
		NewChromeHtml5(), NewAndroidYouTube(), NewIPadYouTube(),
		NewSilverlightPC("Google Chrome"), NewNetflixIPad(), NewNetflixAndroid(),
	}
	seen := map[string]bool{}
	for _, p := range players {
		name := p.Name()
		if name == "" || seen[name] {
			t.Fatalf("duplicate or empty player name %q", name)
		}
		seen[name] = true
		if p.Downloaded() != 0 {
			t.Fatalf("%s: nonzero Downloaded before Start", name)
		}
	}
}

func TestFlashPlayerConsumesEverythingOffered(t *testing.T) {
	v := media.Video{ID: 1, EncodingRate: 1e6, Duration: 60 * time.Second, Container: media.Flash, Resolution: "360p"}
	r := newRig(1, []media.Video{v}, false)
	p := NewFlashPlayer("x")
	p.Start(r.env, v)
	r.sch.RunUntil(3 * time.Minute)
	want := v.Size() + int64(media.FLVHeaderSize)
	if p.Downloaded() != want {
		t.Fatalf("downloaded %d, want %d", p.Downloaded(), want)
	}
}

func TestIEHtml5RateLimits(t *testing.T) {
	v := htmlVideo()
	r := newRig(2, []media.Video{v}, false)
	p := NewIEHtml5()
	p.Start(r.env, v)
	r.sch.RunUntil(30 * time.Second)
	afterBuffering := p.Downloaded()
	// Buffering target is 10-15 MB; the whole 50 MB must NOT be here.
	if afterBuffering < 10<<20 || afterBuffering > 17<<20 {
		t.Fatalf("downloaded %d after buffering, want 10-15 MB", afterBuffering)
	}
	r.sch.RunUntil(90 * time.Second)
	// Steady state: ~1.06x encoding rate = ~8 MB per minute.
	delta := p.Downloaded() - afterBuffering
	rate := float64(delta) * 8 / 60
	if rate < 0.8e6 || rate > 1.4e6 {
		t.Fatalf("steady consumption %.2f Mbps, want ~1.06", rate/1e6)
	}
}

func TestFirefoxDownloadsEverythingFast(t *testing.T) {
	v := htmlVideo() // 50 MB
	r := newRig(3, []media.Video{v}, false)
	p := NewFirefoxHtml5()
	p.Start(r.env, v)
	r.sch.RunUntil(30 * time.Second)
	want := v.Size() + int64(media.WebMHeaderSize)
	if p.Downloaded() != want {
		t.Fatalf("downloaded %d/%d in 30 s; Firefox must be a bulk transfer", p.Downloaded(), want)
	}
}

func TestChromeLongPullCadence(t *testing.T) {
	v := htmlVideo()
	r := newRig(4, []media.Video{v}, false)
	p := NewChromeHtml5()
	p.Start(r.env, v)
	r.sch.RunUntil(20 * time.Second)
	buffered := p.Downloaded()
	if buffered < 10<<20 || buffered > 17<<20 {
		t.Fatalf("buffered %d, want 10-15 MB", buffered)
	}
	// Immediately after buffering there is a quiet period much longer
	// than any short-cycle OFF.
	r.sch.RunUntil(25 * time.Second)
	if p.Downloaded()-buffered > 2<<20 {
		t.Fatalf("Chrome kept downloading right after buffering; long OFF expected")
	}
}

func TestIPadUsesManyConnections(t *testing.T) {
	v := media.Video{ID: 1, EncodingRate: 2e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	r := newRig(5, []media.Video{v}, false)
	p := NewIPadYouTube()
	p.Start(r.env, v)
	r.sch.RunUntil(60 * time.Second)
	if p.Downloaded() == 0 {
		t.Fatal("no data downloaded")
	}
	// blockBytes grows with rate.
	low := NewIPadYouTube()
	low.video = media.Video{EncodingRate: 0.3e6}
	high := NewIPadYouTube()
	high.video = media.Video{EncodingRate: 2.5e6}
	if low.blockBytes() >= high.blockBytes() {
		t.Fatalf("block size must grow with rate: %d vs %d", low.blockBytes(), high.blockBytes())
	}
	if low.blockBytes() < 64<<10 {
		t.Fatal("block floor is 64 kB")
	}
}

func TestNetflixPCBuffersAllRungs(t *testing.T) {
	v := media.Video{ID: 2, EncodingRate: 3800e3, Duration: 30 * time.Minute, Container: media.Silverlight}
	r := newRig(6, []media.Video{v}, true)
	p := NewSilverlightPC("x")
	p.Start(r.env, v)
	r.sch.RunUntil(60 * time.Second)
	// Buffering fetches 4 fragments of each rung + 60 s of the top
	// rate: ~47 MB.
	if got := p.Downloaded(); got < 35<<20 || got > 60<<20 {
		t.Fatalf("PC buffering downloaded %d, want ~47 MB", got)
	}
}

func TestNetflixAndroidSingleConnection(t *testing.T) {
	v := media.Video{ID: 3, EncodingRate: 3800e3, Duration: 30 * time.Minute, Container: media.Silverlight}
	r := newRig(7, []media.Video{v}, true)
	p := NewNetflixAndroid()
	p.Start(r.env, v)
	r.sch.RunUntil(2 * time.Minute)
	if r.env.Host.ConnCount() != 1 {
		t.Fatalf("Android must keep one connection, has %d", r.env.Host.ConnCount())
	}
	if p.Downloaded() < 30<<20 {
		t.Fatalf("Android buffering = %d, want ~40 MB", p.Downloaded())
	}
}

func TestNetflixIPadSubsetLadder(t *testing.T) {
	n := NewNetflixIPad()
	if len(n.ladder) >= len(media.NetflixLadder) {
		t.Fatal("iPad must buffer a ladder subset")
	}
	pc := NewSilverlightPC("x")
	if len(pc.ladder) != len(media.NetflixLadder) {
		t.Fatal("PC must buffer every rung")
	}
}

func TestPullerStopsAtVideoEnd(t *testing.T) {
	// A short video: the puller must terminate rather than keep
	// scheduling pulls forever.
	v := media.Video{ID: 1, EncodingRate: 1e6, Duration: 30 * time.Second, Container: media.HTML5, Resolution: "360p"}
	r := newRig(8, []media.Video{v}, false)
	p := NewIEHtml5()
	p.Start(r.env, v)
	r.sch.RunUntil(2 * time.Minute)
	want := v.Size() + int64(media.WebMHeaderSize)
	if p.Downloaded() != want {
		t.Fatalf("downloaded %d, want %d", p.Downloaded(), want)
	}
	if p.p == nil || !p.p.done {
		t.Fatal("puller must mark itself done at body end")
	}
}
