package player

import (
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func abrVideo(c media.Container) media.Video {
	return media.Video{
		ID: 11, Duration: 300 * time.Second, Container: c, Resolution: "adaptive",
	}.WithLadder(media.NetflixLadder...)
}

// abrRig wires a client against a service over a link of the given
// downstream rate.
func abrRig(seed int64, downMbps float64, v media.Video, netflix bool) *rig {
	sch := sim.NewScheduler(seed)
	client := tcp.NewHost(sch, 10, 0, 0, 1)
	server := tcp.NewHost(sch, 203, 0, 113, 10)
	prof := netem.Profile{
		Name: "abr", Down: netem.Bandwidth(downMbps) * netem.Mbps,
		Up: 5 * netem.Mbps, RTT: 40 * time.Millisecond, Queue: 128 << 10,
	}
	path := netem.NewPath(sch, prof, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	if netflix {
		service.NewNetflix(server, tcp.Config{}, []media.Video{v})
	} else {
		service.NewYouTube(server, tcp.Config{}, []media.Video{v})
	}
	return &rig{sch: sch, env: &Env{Sch: sch, Host: client, Server: packet.EP(203, 0, 113, 10, 80)}}
}

func TestABRFragmentsAdaptsToSlowLink(t *testing.T) {
	// 1.2 Mbps link, ladder 0.5–3.8 Mbps: the rate controller must
	// settle on a sustainable rung and keep rebuffering near zero.
	v := abrVideo(media.Silverlight)
	r := abrRig(1, 1.2, v, true)
	p := NewABRPlayer(ABRConfig{Controller: abr.NewRateBased()})
	p.Start(r.env, v)
	r.sch.RunUntil(2 * time.Minute)
	m := p.QoE(r.sch.Now())
	if !m.Started {
		t.Fatal("playback never started")
	}
	if m.RebufferTime > sec(5) {
		t.Fatalf("rate controller stalled %.1f s on a sustainable link", m.RebufferTime.Seconds())
	}
	if mean := m.MeanFetchedBps(); mean <= 0 || mean > 1.2e6 {
		t.Fatalf("mean fetched bitrate %.2f Mbps not in (0, link rate]", mean/1e6)
	}
	if len(m.RungSec) == 0 || m.RungSec[len(m.RungSec)-1] > 0 && m.RungSec[0] == 0 {
		t.Fatalf("rung occupancy not tracking the slow link: %v", m.RungSec)
	}
}

func TestABRFixedTopStallsWhereBufferBasedDoesNot(t *testing.T) {
	// The headline mechanism at single-session scale: on a 1.2 Mbps
	// link, pinning the 3.8 Mbps top rung starves playback; the
	// buffer-based controller keeps stalls an order of magnitude
	// lower by walking down the ladder.
	v := abrVideo(media.Silverlight)
	run := func(c abr.Controller) Metrics {
		r := abrRig(2, 1.2, v, true)
		p := NewABRPlayer(ABRConfig{Controller: c})
		p.Start(r.env, v)
		r.sch.RunUntil(2 * time.Minute)
		return p.QoE(r.sch.Now())
	}
	fixed := run(abr.NewFixed(-1))
	bba := run(abr.NewBufferBased())
	if fixed.RebufferTime < sec(30) {
		t.Fatalf("fixed top rung stalled only %.1f s; the link should starve it", fixed.RebufferTime.Seconds())
	}
	if bba.RebufferTime > fixed.RebufferTime/10 {
		t.Fatalf("buffer-based stalled %.1f s vs fixed %.1f s; want 10x less",
			bba.RebufferTime.Seconds(), fixed.RebufferTime.Seconds())
	}
	if bba.Switches == 0 {
		t.Fatal("buffer-based controller never switched")
	}
	if bba.MeanFetchedBps() >= fixed.MeanFetchedBps() {
		t.Fatalf("the trade must cost bitrate: bba %.2f vs fixed %.2f Mbps",
			bba.MeanFetchedBps()/1e6, fixed.MeanFetchedBps()/1e6)
	}
}

func TestABRRangesFetchesPerRenditionResources(t *testing.T) {
	// DASH-over-ranges against the YouTube per-rendition resources.
	v := abrVideo(media.HTML5)
	r := abrRig(3, 2.0, v, false)
	p := NewABRPlayer(ABRConfig{Controller: abr.NewBufferBased(), Source: Ranges})
	p.Start(r.env, v)
	r.sch.RunUntil(2 * time.Minute)
	m := p.QoE(r.sch.Now())
	if !m.Started || p.Downloaded() == 0 {
		t.Fatalf("range-based ABR streamed nothing: %+v", m)
	}
	if m.RebufferTime > sec(10) {
		t.Fatalf("range-based ABR stalled %.1f s on a 2 Mbps link", m.RebufferTime.Seconds())
	}
}

func TestABRBufferRespectsCap(t *testing.T) {
	// On a fast link the buffer must sit at (cap-chunk, cap], never
	// beyond: the fetch loop is self-pacing.
	v := abrVideo(media.Silverlight)
	r := abrRig(4, 50, v, true)
	p := NewABRPlayer(ABRConfig{Controller: abr.NewFixed(0), MaxBufferSec: 20})
	p.Start(r.env, v)
	for s := 30; s <= 120; s += 30 {
		r.sch.RunUntil(time.Duration(s) * time.Second)
		if lvl := p.buf.Level(r.sch.Now()); lvl > 20.5 {
			t.Fatalf("buffer level %.1f s exceeds the 20 s cap", lvl)
		}
	}
	if p.Downloaded() == 0 {
		t.Fatal("nothing downloaded")
	}
}

func TestLegacyNetflixSnapsToCustomLadder(t *testing.T) {
	// A video carrying its own rendition ladder only serves those
	// rungs; the legacy clients (configured against the default
	// NetflixLadder) must snap onto it instead of silently 404ing
	// every fragment.
	v := media.Video{
		ID: 12, Duration: 10 * time.Minute, Container: media.Silverlight,
		Resolution: "adaptive",
	}.WithLadder(1e6, 2e6)
	r := abrRig(5, 20, v, true)
	p := NewSilverlightPC("x")
	p.Start(r.env, v)
	r.sch.RunUntil(60 * time.Second)
	if p.Downloaded() == 0 {
		t.Fatal("legacy client downloaded nothing from a custom-laddered title")
	}
	for _, rate := range p.ladder {
		if v.RungIndex(rate) < 0 {
			t.Fatalf("client ladder holds off-ladder rate %v", rate)
		}
	}
	if v.RungIndex(p.chosen) < 0 {
		t.Fatalf("chosen rate %v not on the video ladder", p.chosen)
	}
}

func TestABRStartupClampedToCap(t *testing.T) {
	// A startup threshold above the buffer cap could never fill:
	// NewABRPlayer must clamp it so playback starts.
	v := abrVideo(media.Silverlight)
	r := abrRig(6, 20, v, true)
	p := NewABRPlayer(ABRConfig{Controller: abr.NewFixed(0), StartupSec: 40, MaxBufferSec: 10})
	p.Start(r.env, v)
	r.sch.RunUntil(time.Minute)
	if m := p.QoE(r.sch.Now()); !m.Started {
		t.Fatalf("playback never started with StartupSec > MaxBufferSec: %+v", m)
	}
}
