package player

import (
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestBufferStartupDelay(t *testing.T) {
	b := NewPlaybackBuffer(0, 4, 1e6)
	// 1 Mbps content arriving: 4 media seconds = 500 kB.
	b.AddBytes(sec(1), 250_000) // 2 s buffered
	m := b.QoE(sec(1))
	if m.Started {
		t.Fatal("playback started below the threshold")
	}
	b.AddBytes(sec(3), 250_000) // 4 s buffered → start
	m = b.QoE(sec(3))
	if !m.Started || m.StartupDelay != sec(3) {
		t.Fatalf("startup = %+v", m)
	}
	if m.Rebuffers != 0 {
		t.Fatal("no stall yet")
	}
}

func TestBufferStallAndResume(t *testing.T) {
	b := NewPlaybackBuffer(0, 2, 1e6)
	b.AddMedia(sec(0), 4, 4e6, -1) // start with 4 s
	// Nothing arrives until t=10: the buffer ran dry at t=4.
	b.AddMedia(sec(10), 1, 1e6, -1) // 1 s < threshold: still stalled
	m := b.QoE(sec(10))
	if m.Rebuffers != 1 {
		t.Fatalf("rebuffers = %d, want 1", m.Rebuffers)
	}
	if m.RebufferTime != sec(6) {
		t.Fatalf("open stall at eval = %v, want 6s", m.RebufferTime)
	}
	b.AddMedia(sec(12), 2, 2e6, -1) // 3 s buffered → resume at t=12
	m = b.QoE(sec(12))
	if m.Rebuffers != 1 || m.RebufferTime != sec(8) {
		t.Fatalf("after resume: %+v", m)
	}
	if m.PlayedSec != 4 {
		t.Fatalf("played %.1f s, want 4", m.PlayedSec)
	}
}

func TestBufferEndOfContentIsNotAStall(t *testing.T) {
	b := NewPlaybackBuffer(0, 1, 1e6)
	b.AddMedia(sec(0), 5, 5e6, -1)
	b.MarkEnded()
	m := b.QoE(sec(60))
	if m.Rebuffers != 0 || m.RebufferTime != 0 {
		t.Fatalf("credits counted as stall: %+v", m)
	}
	if m.PlayedSec != 5 {
		t.Fatalf("played %.1f s, want 5", m.PlayedSec)
	}
}

func TestBufferRungAccounting(t *testing.T) {
	b := NewPlaybackBuffer(0, 1, 1e6)
	b.AddMedia(sec(0), 4, 4*500e3, 0)
	b.AddMedia(sec(1), 4, 4*1600e3, 2)
	b.NoteSwitch()
	m := b.QoE(sec(1))
	if len(m.RungSec) != 3 || m.RungSec[0] != 4 || m.RungSec[2] != 4 {
		t.Fatalf("rung seconds = %v", m.RungSec)
	}
	if m.Switches != 1 {
		t.Fatalf("switches = %d", m.Switches)
	}
	if want := (4*500e3 + 4*1600e3) / 8.0; m.MeanFetchedBps() != want {
		t.Fatalf("mean fetched = %v, want %v", m.MeanFetchedBps(), want)
	}
}

func TestBufferQoEIsNonMutating(t *testing.T) {
	b := NewPlaybackBuffer(0, 2, 1e6)
	b.AddMedia(sec(0), 3, 3e6, 1)
	m1 := b.QoE(sec(30))
	m2 := b.QoE(sec(30))
	if m1.Rebuffers != m2.Rebuffers || m1.RebufferTime != m2.RebufferTime || m1.PlayedSec != m2.PlayedSec {
		t.Fatalf("repeated QoE evaluation drifted: %+v vs %+v", m1, m2)
	}
	// The model itself must still be usable afterwards.
	b.AddMedia(sec(31), 4, 4e6, 1)
	if got := b.QoE(sec(31)); got.FetchedSec != 7 {
		t.Fatalf("fetched %.1f s, want 7", got.FetchedSec)
	}
}
