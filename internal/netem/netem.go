// Package netem emulates network paths: rate-limited links with
// propagation delay, finite drop-tail queues and stochastic loss, plus
// the four vantage-network profiles used in the paper (Research,
// Residence, Academic, Home). Capture taps observe packets at the
// client side of the path, which is where tcpdump ran in the paper's
// methodology.
package netem

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Bandwidth is a link rate in bits per second.
type Bandwidth float64

const (
	Kbps Bandwidth = 1e3
	Mbps Bandwidth = 1e6
	Gbps Bandwidth = 1e9
)

// TxTime returns the serialization time of n bytes at rate b.
func (b Bandwidth) TxTime(n int) time.Duration {
	if b <= 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / float64(b) * float64(time.Second))
}

// BytesIn returns how many bytes the link can carry in d, rounded
// down to whole bytes. Non-positive durations (and non-positive
// rates) carry nothing.
func (b Bandwidth) BytesIn(d time.Duration) int {
	if b <= 0 || d <= 0 {
		return 0
	}
	return int(math.Floor(float64(b) / 8 * d.Seconds()))
}

// Receiver consumes packets delivered by a link.
type Receiver interface {
	Deliver(seg *packet.Segment)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(*packet.Segment)

// Deliver implements Receiver.
func (f ReceiverFunc) Deliver(seg *packet.Segment) { f(seg) }

// LossModel decides whether a packet entering a link is dropped.
type LossModel interface {
	Drop(rng *rand.Rand) bool
}

// NoLoss never drops.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*rand.Rand) bool { return false }

// RandomLoss drops each packet independently with probability Rate.
type RandomLoss struct{ Rate float64 }

// Drop implements LossModel.
func (l RandomLoss) Drop(rng *rand.Rand) bool {
	return l.Rate > 0 && rng.Float64() < l.Rate
}

// GilbertElliott is a two-state bursty loss model: in the Bad state
// packets drop with PBad, in Good with PGood; state transitions happen
// per packet with the given probabilities. It exercises the paper's
// observation that correlated losses merge adjacent ON-OFF cycles.
type GilbertElliott struct {
	PGoodToBad, PBadToGood float64
	PGood, PBad            float64
	bad                    bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(rng *rand.Rand) bool {
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	p := g.PGood
	if g.bad {
		p = g.PBad
	}
	return p > 0 && rng.Float64() < p
}

// Tap observes packets traversing a link (after the loss decision, so
// dropped packets are not captured — exactly what tcpdump at the client
// would have seen for the downstream direction).
type Tap interface {
	Capture(at time.Duration, seg *packet.Segment)
}

// Link is a unidirectional path segment: a drop-tail queue drained at
// Rate, followed by propagation Delay. The zero value is not usable.
//
// Event cost: the link schedules no per-packet events. Queue drains are
// settled lazily against the scheduler's execution point (settleDrains)
// and deliveries ride a single pump timer armed for the earliest
// pending arrival (pump/arm). The firing order observed by receivers is
// bit-identical to a scheme with two scheduler entries per packet: Send
// reserves the exact sequence numbers that scheme would have consumed,
// the pump timer borrows the head record's number, and the pump yields
// back to the scheduler whenever any other event orders first.
type Link struct {
	sch       *sim.Scheduler
	rate      Bandwidth
	delay     time.Duration
	queueCap  int // bytes; 0 means unlimited
	queued    int // bytes accepted minus settled drains
	busyUntil time.Duration
	loss      LossModel
	aqm       AQM // nil = drop-tail
	blocked   bool
	dst       Receiver
	taps      []Tap

	drains  ring[drainRec]  // end-of-serialization edges, monotone (at, seq)
	flights ring[flightRec] // in-flight segments, sorted by (deliverAt, seq)
	armed   bool            // a live pump timer is outstanding
	armSeq  uint64          // seq the live pump timer borrowed
	armGen  int32           // op code of the live timer; older arms are stale

	// Counters for tests and diagnostics.
	Sent    int
	Dropped int
	Bytes   int64
	// OutageDrops counts packets dropped because the link was blocked
	// by an outage (a subset of Dropped).
	OutageDrops int
	// AqmDrops counts packets the AQM policy dropped before the hard
	// queue cap would have (a subset of Dropped).
	AqmDrops int
}

// drainRec is one pending queue drain: at the reference scheme's event
// (at, seq), size bytes leave the queue. Serialization completes in
// acceptance order, so the drain ring is always FIFO-monotone.
type drainRec struct {
	at   time.Duration
	seq  uint64
	size int32
}

// flightRec is one in-flight segment: deliverable to dst at the
// reference scheme's event (at, seq).
type flightRec struct {
	at  time.Duration
	seq uint64
	seg *packet.Segment
}

// settleDrains applies every drain whose reference event (at, seq)
// orders before the scheduler's current execution point, bringing
// queued up to exactly the value the per-event scheme would show here.
func (l *Link) settleDrains() {
	if l.drains.n == 0 {
		return
	}
	now, cur := l.sch.Now(), l.sch.EventSeq()
	for l.drains.n > 0 {
		d := l.drains.front()
		if d.at < now || (d.at == now && d.seq < cur) {
			l.queued -= int(d.size)
			l.drains.popFront()
			continue
		}
		break
	}
}

// RunTask implements sim.Task: the pump timer fired. Stale arms
// (superseded when an earlier arrival re-armed the pump) are ignored by
// generation.
func (l *Link) RunTask(op int32) {
	if op != l.armGen {
		return
	}
	l.armed = false
	l.pump()
}

// pump retires every head record whose delivery point has been reached,
// yielding whenever another pending event orders before the head's
// reserved (at, seq) so cross-link interleaving stays exact, then
// re-arms for the next edge.
func (l *Link) pump() {
	now := l.sch.Now()
	for l.flights.n > 0 {
		f := l.flights.front()
		if f.at > now || l.sch.PendingBefore(f.at, f.seq) {
			break
		}
		l.sch.AdoptSeq(f.seq)
		seg := f.seg
		f.seg = nil
		l.flights.popFront()
		l.dst.Deliver(seg)
		if l.armed {
			// A reentrant Send routed back into this link and re-armed
			// the pump; that timer now owns the remaining records.
			return
		}
	}
	l.arm()
}

// arm schedules the pump timer at the head record's reserved (at, seq),
// superseding any stale outstanding timer.
func (l *Link) arm() {
	if l.armed || l.flights.n == 0 {
		return
	}
	f := l.flights.front()
	l.armGen++
	l.sch.AtTaskSeq(f.at, f.seq, l, l.armGen)
	l.armed = true
	l.armSeq = f.seq
}

// addFlight inserts a new in-flight record. Arrivals are FIFO-monotone
// unless SetDelay shrank the propagation delay mid-flight; the
// non-monotone case falls back to a sorted insert (ties go after
// existing records, which carry smaller seqs). If the new record
// becomes the head, the pump re-arms for the earlier edge.
func (l *Link) addFlight(f flightRec) {
	if l.flights.n == 0 || !(f.at < l.flights.back().at) {
		l.flights.pushBack(f)
	} else {
		lo, hi := 0, l.flights.n
		for lo < hi {
			mid := (lo + hi) / 2
			if l.flights.at(mid).at <= f.at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		l.flights.insert(lo, f)
	}
	if head := l.flights.front(); !l.armed || head.seq != l.armSeq {
		l.armed = false
		l.arm()
	}
}

// NewLink builds a link delivering to dst.
func NewLink(sch *sim.Scheduler, rate Bandwidth, delay time.Duration, queueBytes int, loss LossModel, dst Receiver) *Link {
	if loss == nil {
		loss = NoLoss{}
	}
	return &Link{sch: sch, rate: rate, delay: delay, queueCap: queueBytes, loss: loss, dst: dst}
}

// AddTap registers a capture tap on the link.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// Reset returns the link to the state NewLink produces with the given
// parameters, keeping the ring buffers and tap slice backing storage.
// Queued and in-flight packets are discarded, counters zeroed, taps
// removed, and any Dynamics-applied mutations (rate, delay, loss,
// AQM, outage) overwritten. The destination receiver is kept — wiring
// is topology, not state; callers that re-wire set it separately. The
// scheduler the link schedules on must be Reset in the same pass:
// a stale pump timer surviving in the scheduler would misfire.
func (l *Link) Reset(rate Bandwidth, delay time.Duration, queueBytes int, loss LossModel, aqm AQM) {
	if loss == nil {
		loss = NoLoss{}
	}
	l.rate = rate
	l.delay = delay
	l.queueCap = queueBytes
	l.queued = 0
	l.busyUntil = 0
	l.loss = loss
	l.aqm = aqm
	l.blocked = false
	clear(l.taps)
	l.taps = l.taps[:0]
	l.drains.reset()
	l.flights.reset()
	l.armed = false
	l.armSeq = 0
	l.armGen = 0
	l.Sent = 0
	l.Dropped = 0
	l.Bytes = 0
	l.OutageDrops = 0
	l.AqmDrops = 0
}

// SetLoss replaces the loss model (used by failure-injection tests and
// Dynamics timelines).
func (l *Link) SetLoss(m LossModel) {
	if m == nil {
		m = NoLoss{}
	}
	l.loss = m
}

// Loss returns the current loss model.
func (l *Link) Loss() LossModel { return l.loss }

// SetAQM installs (or, with nil, removes) the queue policy. The
// instance must be private to this link — policies are stateful.
func (l *Link) SetAQM(a AQM) { l.aqm = a }

// AQM returns the current queue policy (nil = drop-tail).
func (l *Link) AQM() AQM { return l.aqm }

// QueueCap returns the hard queue capacity in bytes (0 = uncapped).
func (l *Link) QueueCap() int { return l.queueCap }

// Rate returns the current link rate.
func (l *Link) Rate() Bandwidth { return l.rate }

// SetRate changes the link rate. The change applies to packets
// accepted (Send) after the call: bytes already accepted keep the
// departure times they were committed to at entry, and a later packet
// starts serialization no earlier than that committed backlog's
// completion (busyUntil). This keeps the link's FIFO invariant intact
// across arbitrary rate timelines.
func (l *Link) SetRate(r Bandwidth) { l.rate = r }

// Delay returns the current propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// SetDelay changes the propagation delay for packets sent after the
// call. A decrease can reorder in-flight packets relative to later
// ones — exactly what a route change does on a real path; TCP absorbs
// it as any other reordering.
func (l *Link) SetDelay(d time.Duration) { l.delay = d }

// SetBlocked starts or ends an outage: a blocked link drops every
// packet at entry (counted in Dropped and OutageDrops). In-flight
// packets already serialized are still delivered, matching a cut that
// happens behind the propagation segment.
func (l *Link) SetBlocked(blocked bool) { l.blocked = blocked }

// Blocked reports whether the link is in an outage.
func (l *Link) Blocked() bool { return l.blocked }

// QueueDepth returns the bytes currently enqueued or in serialization.
func (l *Link) QueueDepth() int {
	l.settleDrains()
	return l.queued
}

// Send enqueues a segment. Loss and queue overflow silently drop it,
// as a real network would.
func (l *Link) Send(seg *packet.Segment) {
	size := seg.WireLen()
	if l.blocked {
		l.Dropped++
		l.OutageDrops++
		return
	}
	if l.loss.Drop(l.sch.Rand()) {
		l.Dropped++
		return
	}
	l.settleDrains()
	if l.queueCap > 0 && l.queued+size > l.queueCap {
		l.Dropped++
		return
	}
	now := l.sch.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	done := start + l.rate.TxTime(size)
	if l.aqm != nil {
		// The packet's exact queueing delay (wait + serialization) is
		// known at enqueue on a work-conserving FIFO; sojourn-based
		// policies use it directly, no dequeue event needed.
		if !l.aqm.Admit(now, l.queued, size, done-now, l.sch.Rand()) {
			l.Dropped++
			l.AqmDrops++
			return
		}
	}
	for _, t := range l.taps {
		t.Capture(now, seg)
	}
	l.queued += size
	l.Sent++
	l.Bytes += int64(size)
	l.busyUntil = done
	arrive := done + l.delay
	// Reserve the two consecutive sequence numbers the per-event scheme
	// would have consumed (drain before deliver at equal timestamps);
	// the drain settles lazily and the deliver rides the pump timer.
	drainSeq := l.sch.ReserveSeq()
	deliverSeq := l.sch.ReserveSeq()
	l.drains.pushBack(drainRec{at: done, seq: drainSeq, size: int32(size)})
	l.addFlight(flightRec{at: arrive, seq: deliverSeq, seg: seg})
}

// Deliver implements Receiver by forwarding to Send, so links chain
// into multi-hop paths: a packet leaving one tier's link enters the
// next tier's queue, which is how the Tree topology stacks access,
// aggregation and core hops.
func (l *Link) Deliver(seg *packet.Segment) { l.Send(seg) }

// Path is a bidirectional network between a client and a server,
// composed of one link per direction. By the paper's conventions the
// client is the measurement vantage point.
type Path struct {
	Down *Link // server -> client
	Up   *Link // client -> server
}

// AddTaps attaches one capture tap per direction — the duplex
// attachment point a capture sink fan-out plugs into (each link still
// fans out to any number of taps).
func (p *Path) AddTaps(down, up Tap) {
	p.Down.AddTap(down)
	p.Up.AddTap(up)
}

// Profile describes a vantage network. Rates are the observed
// bottleneck rates from Section 4.2; RTT and loss are chosen to match
// the paper's reported retransmission medians (Residence 1.02%,
// Academic 0.76%, others low).
type Profile struct {
	Name     string
	Down, Up Bandwidth
	RTT      time.Duration
	Loss     float64
	Queue    int // bytes of bottleneck buffering per direction
	// UpLoss is the upstream (ACK-direction) loss rate. Zero keeps the
	// historical default of Loss/10 — ACK loss was not a reported
	// artefact in the paper — and a negative value disables upstream
	// loss entirely, so scenario specs can model asymmetric paths.
	UpLoss float64
	// AQM selects the queue policy on both directions' links (the
	// zero value keeps drop-tail). It only bites where a queue
	// actually builds, so ACK-direction policies are harmless.
	AQM AqmConfig
}

// UpLossRate resolves the effective upstream loss rate.
func (p Profile) UpLossRate() float64 {
	switch {
	case p.UpLoss < 0:
		return 0
	case p.UpLoss > 0:
		return p.UpLoss
	default:
		return p.Loss / 10
	}
}

// The four vantage networks of Section 4.2.
var (
	// Research: 100 Mbps wired behind a 500 Mbps uplink, in France.
	Research = Profile{Name: "Research", Down: 100 * Mbps, Up: 100 * Mbps, RTT: 30 * time.Millisecond, Loss: 0.00005, Queue: 1536 << 10}
	// Residence: 54 Mbps Wi-Fi behind ADSL, 7.7 down / 1.2 up Mbps.
	Residence = Profile{Name: "Residence", Down: 7.7 * Mbps, Up: 1.2 * Mbps, RTT: 60 * time.Millisecond, Loss: 0.004, Queue: 192 << 10}
	// Academic: 100 Mbps wired behind 1 Gbps, in the USA.
	Academic = Profile{Name: "Academic", Down: 100 * Mbps, Up: 100 * Mbps, RTT: 80 * time.Millisecond, Loss: 0.0005, Queue: 1536 << 10}
	// Home: cable modem on Comcast, ~20 down / 3 up Mbps. The deep
	// queue reflects the notoriously bufferbloated 2011 DOCSIS gear.
	Home = Profile{Name: "Home", Down: 20 * Mbps, Up: 3 * Mbps, RTT: 45 * time.Millisecond, Loss: 0.00005, Queue: 3072 << 10}
)

// Profiles lists the vantage networks in the paper's presentation order.
func Profiles() []Profile { return []Profile{Research, Residence, Academic, Home} }

// ProfileByName looks a profile up; ok is false for unknown names.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// NewPath wires a duplex path with the profile's characteristics.
// Propagation delay is split evenly per direction; loss applies to the
// downstream (data) direction and UpLossRate (default Loss/10)
// upstream, since ACK loss was not a reported artefact.
func NewPath(sch *sim.Scheduler, p Profile, client, server Receiver) *Path {
	half := p.RTT / 2
	path := &Path{
		Down: NewLink(sch, p.Down, half, p.Queue, RandomLoss{Rate: p.Loss}, client),
		Up:   NewLink(sch, p.Up, half, p.Queue, RandomLoss{Rate: p.UpLossRate()}, server),
	}
	path.Down.SetAQM(p.AQM.New(p.Queue))
	path.Up.SetAQM(p.AQM.New(p.Queue))
	return path
}
