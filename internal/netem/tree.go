package netem

import (
	"time"

	"repro/internal/sim"
)

// Tier describes one level of a Tree topology: the rates, one-way
// propagation delay, queue depth and downstream loss its links get.
// Upstream (ACK-direction) links of a tier are loss-free — exactly the
// UpLoss<0 convention profiles use for asymmetric paths — because
// upstream loss was never a reported artefact and fleet runs care
// about downstream aggregation behaviour.
type Tier struct {
	Down, Up Bandwidth
	Delay    time.Duration // one-way propagation per direction
	Queue    int           // bytes of buffering per link per direction
	Loss     float64       // downstream random loss per link
	// AQM selects the queue policy on this tier's downstream links
	// (the data direction, where queues build). Zero = drop-tail.
	AQM AqmConfig
}

// TreeConfig sizes a Tree. The zero value yields a plausible ISP-ish
// shape: 6/1 Mbps access links, 32 clients per 200 Mbps aggregation
// link, and a 2 Gbps core uplink — enough headroom that burstiness,
// not starvation, is what aggregation links exhibit.
type TreeConfig struct {
	Access Tier
	Agg    Tier
	Core   Tier
	// ClientsPerAgg is how many access links share one aggregation
	// link. Default 32.
	ClientsPerAgg int
}

// WithDefaults fills zero fields with the default shape.
func (c TreeConfig) WithDefaults() TreeConfig {
	if c.ClientsPerAgg <= 0 {
		c.ClientsPerAgg = 32
	}
	if c.Access.Down == 0 {
		c.Access.Down = 6 * Mbps
	}
	if c.Access.Up == 0 {
		c.Access.Up = 1 * Mbps
	}
	if c.Access.Delay == 0 {
		c.Access.Delay = 2 * time.Millisecond
	}
	if c.Access.Queue == 0 {
		c.Access.Queue = 64 << 10
	}
	if c.Agg.Down == 0 {
		c.Agg.Down = 200 * Mbps
	}
	if c.Agg.Up == 0 {
		c.Agg.Up = 200 * Mbps
	}
	if c.Agg.Delay == 0 {
		c.Agg.Delay = 1 * time.Millisecond
	}
	if c.Agg.Queue == 0 {
		c.Agg.Queue = 512 << 10
	}
	if c.Core.Down == 0 {
		c.Core.Down = 2 * Gbps
	}
	if c.Core.Up == 0 {
		c.Core.Up = 2 * Gbps
	}
	if c.Core.Delay == 0 {
		c.Core.Delay = 5 * time.Millisecond
	}
	if c.Core.Queue == 0 {
		c.Core.Queue = 4 << 20
	}
	return c
}

// BaseRTT returns the no-queueing round-trip time of the full tree
// path (twice the summed one-way delays).
func (c TreeConfig) BaseRTT() time.Duration {
	return 2 * (c.Access.Delay + c.Agg.Delay + c.Core.Delay)
}

// Tree is the fleet-scale multi-tier topology: every client sits
// behind its own access link, groups of ClientsPerAgg access links
// share one aggregation link, and all aggregation links share one
// core uplink to the server — the shape at which the paper argues
// streaming strategies matter in aggregate, because thousands of
// ON-OFF sources synchronize into bursts precisely at the aggregation
// and core tiers.
//
// Downstream a packet takes core → aggregation(group) → access(client);
// upstream the reverse. Every hop is an ordinary Link, so capture taps
// (Link.AddTap) and Dynamics timelines attach at any tier.
type Tree struct {
	// CoreDown and CoreUp are the shared core links (server side).
	CoreDown, CoreUp *Link
	// AggDown and AggUp are the per-group aggregation links, indexed
	// by group; they grow as clients attach. After a Reset the slices
	// may be longer than the active population — Groups() bounds the
	// live prefix.
	AggDown, AggUp []*Link
	// AccessDown and AccessUp are the per-client last-mile links,
	// indexed by attach order; Clients() bounds the live prefix.
	AccessDown, AccessUp []*Link

	cfg      TreeConfig
	sch      *sim.Scheduler
	coreSW   *Switch   // routes client addresses to their agg down link
	groupSW  []*Switch // routes client addresses to their access down link
	nClients int       // attached clients; link slots beyond are recycled spares
	nGroups  int       // active aggregation groups
}

// NewTree builds the core tier; aggregation and access links are
// created on demand by Attach. The server receives everything sent up
// the core; it must transmit on CoreDown (server.SetLink(t.CoreDown)).
func NewTree(sch *sim.Scheduler, cfg TreeConfig, server Receiver) *Tree {
	cfg = cfg.WithDefaults()
	t := &Tree{cfg: cfg, sch: sch, coreSW: NewSwitch()}
	t.CoreDown = NewLink(sch, cfg.Core.Down, cfg.Core.Delay, cfg.Core.Queue, RandomLoss{Rate: cfg.Core.Loss}, t.coreSW)
	t.CoreDown.SetAQM(cfg.Core.AQM.New(cfg.Core.Queue))
	t.CoreUp = NewLink(sch, cfg.Core.Up, cfg.Core.Delay, cfg.Core.Queue, nil, server)
	return t
}

// Config returns the effective (defaulted) configuration.
func (t *Tree) Config() TreeConfig { return t.cfg }

// Clients returns how many clients have been attached.
func (t *Tree) Clients() int { return t.nClients }

// Groups returns how many aggregation links are active.
func (t *Tree) Groups() int { return t.nGroups }

// Group returns the aggregation group of client i (attach order).
func (t *Tree) Group(i int) int { return i / t.cfg.ClientsPerAgg }

// Attach wires a new client under the tree: it creates (or, after a
// Reset, recycles) the client's access link pair, lazily creates the
// aggregation group it falls into (attach order fills groups
// sequentially, ClientsPerAgg at a time), routes the address at both
// switch levels, and returns the access uplink the client must
// transmit on (client.SetLink).
func (t *Tree) Attach(addr [4]byte, client Receiver) *Link {
	g := t.Group(t.nClients)
	if g == t.nGroups {
		if g == len(t.AggDown) {
			gsw := NewSwitch()
			aggDown := NewLink(t.sch, t.cfg.Agg.Down, t.cfg.Agg.Delay, t.cfg.Agg.Queue, RandomLoss{Rate: t.cfg.Agg.Loss}, gsw)
			aggDown.SetAQM(t.cfg.Agg.AQM.New(t.cfg.Agg.Queue))
			aggUp := NewLink(t.sch, t.cfg.Agg.Up, t.cfg.Agg.Delay, t.cfg.Agg.Queue, nil, t.CoreUp)
			t.groupSW = append(t.groupSW, gsw)
			t.AggDown = append(t.AggDown, aggDown)
			t.AggUp = append(t.AggUp, aggUp)
		}
		t.nGroups++
	}
	j := t.nClients
	var accessUp *Link
	if j == len(t.AccessDown) {
		accessDown := NewLink(t.sch, t.cfg.Access.Down, t.cfg.Access.Delay, t.cfg.Access.Queue, RandomLoss{Rate: t.cfg.Access.Loss}, client)
		accessDown.SetAQM(t.cfg.Access.AQM.New(t.cfg.Access.Queue))
		accessUp = NewLink(t.sch, t.cfg.Access.Up, t.cfg.Access.Delay, t.cfg.Access.Queue, nil, t.AggUp[g])
		t.AccessDown = append(t.AccessDown, accessDown)
		t.AccessUp = append(t.AccessUp, accessUp)
	} else {
		t.AccessDown[j].dst = client
		accessUp = t.AccessUp[j]
	}
	t.nClients++
	t.groupSW[g].Route(addr, t.AccessDown[j])
	t.coreSW.Route(addr, t.AggDown[g])
	return accessUp
}

// Reset returns the tree to its just-built state while keeping every
// link, switch and ring allocation: the core pair and every link ever
// created are Reset (fresh AQM instances, Dynamics mutations undone,
// taps and counters cleared), routes dropped, and the attach cursors
// rewound, so the next population attaches into recycled link slots.
// The shared scheduler must be Reset in the same pass.
func (t *Tree) Reset() {
	cfg := t.cfg
	t.CoreDown.Reset(cfg.Core.Down, cfg.Core.Delay, cfg.Core.Queue, RandomLoss{Rate: cfg.Core.Loss}, cfg.Core.AQM.New(cfg.Core.Queue))
	t.CoreUp.Reset(cfg.Core.Up, cfg.Core.Delay, cfg.Core.Queue, nil, nil)
	for g := range t.AggDown {
		t.AggDown[g].Reset(cfg.Agg.Down, cfg.Agg.Delay, cfg.Agg.Queue, RandomLoss{Rate: cfg.Agg.Loss}, cfg.Agg.AQM.New(cfg.Agg.Queue))
		t.AggUp[g].Reset(cfg.Agg.Up, cfg.Agg.Delay, cfg.Agg.Queue, nil, nil)
		t.groupSW[g].Reset()
	}
	for j := range t.AccessDown {
		t.AccessDown[j].Reset(cfg.Access.Down, cfg.Access.Delay, cfg.Access.Queue, RandomLoss{Rate: cfg.Access.Loss}, cfg.Access.AQM.New(cfg.Access.Queue))
		t.AccessUp[j].Reset(cfg.Access.Up, cfg.Access.Delay, cfg.Access.Queue, nil, nil)
	}
	t.coreSW.Reset()
	t.nClients = 0
	t.nGroups = 0
}

// Unrouted sums the unrouted-packet counters across every switch in
// the tree (0 in a healthy run).
func (t *Tree) Unrouted() int {
	n := t.coreSW.Unrouted
	for _, sw := range t.groupSW[:t.nGroups] {
		n += sw.Unrouted
	}
	return n
}

// DroppedAtTier sums drop counters per tier (downstream direction),
// the aggregate loss accounting fleet results report.
func (t *Tree) DroppedAtTier() (core, agg, access int) {
	core = t.CoreDown.Dropped
	for _, l := range t.AggDown[:t.nGroups] {
		agg += l.Dropped
	}
	for _, l := range t.AccessDown[:t.nClients] {
		access += l.Dropped
	}
	return core, agg, access
}

// AqmDroppedAtTier sums the AQM-attributed drops per tier (downstream
// direction) — the OutageDrops-style breakdown of DroppedAtTier that
// separates policy drops from loss-model and hard-cap drops.
func (t *Tree) AqmDroppedAtTier() (core, agg, access int) {
	core = t.CoreDown.AqmDrops
	for _, l := range t.AggDown[:t.nGroups] {
		agg += l.AqmDrops
	}
	for _, l := range t.AccessDown[:t.nClients] {
		access += l.AqmDrops
	}
	return core, agg, access
}
