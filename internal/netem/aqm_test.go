package netem

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// The AQM unit suite checks the two policies against hand-computed
// values — the RED mark-probability curve and EWMA trajectory, the
// CoDel drop schedule under a square-wave sojourn — and pins the drop
// accounting: every policy drop lands in the link's AqmDrops counter
// and rolls up through the tree's per-tier breakdown, exactly like
// OutageDrops does for outages.

// TestRedMarkProbCurve compares the linear drop-probability ramp
// against hand-computed points: 0 below MinTh, MaxP x (avg-MinTh) /
// (MaxTh-MinTh) between the thresholds, 1 at and above MaxTh.
func TestRedMarkProbCurve(t *testing.T) {
	r := &RED{MinTh: 1000, MaxTh: 4000, MaxP: 0.1}
	cases := []struct {
		avg  float64
		want float64
	}{
		{0, 0},
		{999.99, 0},
		{1000, 0},    // ramp starts at zero
		{1600, 0.02}, // 0.1 * 600/3000
		{2500, 0.05}, // midpoint: half of MaxP
		{3400, 0.08}, // 0.1 * 2400/3000
		{3999, 0.1 * 2999.0 / 3000.0},
		{4000, 1}, // hard region
		{9999, 1},
	}
	for _, c := range cases {
		if got := r.MarkProb(c.avg); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("MarkProb(%v) = %v, want %v", c.avg, got, c.want)
		}
	}
}

// TestRedEwmaTrajectory feeds a fixed backlog sequence and checks the
// averaged queue tracks the hand-computed EWMA recurrence
// avg' = avg + w x (q - avg), seeded with the first observation.
func TestRedEwmaTrajectory(t *testing.T) {
	const w = 0.25
	r := &RED{MinTh: 1 << 30, MaxTh: 1 << 31, MaxP: 0.1, Weight: w} // thresholds out of reach
	rng := rand.New(rand.NewSource(1))
	backlogs := []int{4000, 8000, 2000, 0, 6000}
	want := 0.0
	for i, q := range backlogs {
		if !r.Admit(0, q, 1500, 0, rng) {
			t.Fatalf("admit %d: dropped below MinTh", i)
		}
		if i == 0 {
			want = float64(q)
		} else {
			want += w * (float64(q) - want)
		}
		if math.Abs(r.Avg()-want) > 1e-9 {
			t.Fatalf("after backlog %d: avg %v, want %v", q, r.Avg(), want)
		}
	}
}

// TestRedRegions pins the three operating regions: certain admission
// below MinTh, probabilistic drops between the thresholds (the seeded
// rng makes the count exact), certain drops at and above MaxTh.
func TestRedRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Weight 1 makes avg == instantaneous backlog: regions are exact.
	below := &RED{MinTh: 10000, MaxTh: 30000, MaxP: 0.1, Weight: 1}
	for i := 0; i < 1000; i++ {
		if !below.Admit(0, 5000, 1500, 0, rng) {
			t.Fatal("drop below MinTh")
		}
	}
	above := &RED{MinTh: 10000, MaxTh: 30000, MaxP: 0.1, Weight: 1}
	for i := 0; i < 1000; i++ {
		if above.Admit(0, 40000, 1500, 0, rng) {
			t.Fatal("admit at avg >= MaxTh")
		}
	}
	mid := &RED{MinTh: 10000, MaxTh: 30000, MaxP: 0.1, Weight: 1}
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !mid.Admit(0, 20000, 1500, 0, rng) {
			drops++
		}
	}
	// At the midpoint pb = 0.05; the count correction raises the
	// effective rate above pb but it stays well under 3x.
	if drops == 0 || drops < n/40 || drops > n/4 {
		t.Fatalf("midpoint drop count %d of %d implausible for pb=0.05", drops, n)
	}
}

// TestCodelSquareWaveSchedule drives CoDel with a square-wave sojourn
// — 10 ms (above the 5 ms target) during bursts, 1 ms between them —
// at a 10 ms packet clock, and checks the exact drop instants of the
// control law: first drop after one full 100 ms interval above
// target, then dropNext += Interval/sqrt(count), and clean recovery
// when the sojourn falls below target.
func TestCodelSquareWaveSchedule(t *testing.T) {
	c := &CoDel{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	high := 10 * time.Millisecond
	var drops []time.Duration
	// Phase 1: high sojourn from t=0 to t=400ms, one packet per 10ms.
	for ms := 0; ms <= 400; ms += 10 {
		now := time.Duration(ms) * time.Millisecond
		if !c.Admit(now, 0, 1500, high, nil) {
			drops = append(drops, now)
		}
	}
	// Hand-computed: above since t=0; first drop at the first arrival
	// with now-aboveSince >= 100ms -> t=100ms, count=1, dropNext =
	// 100 + 100/sqrt(1) = 200ms -> drop at 200ms, count=2, dropNext =
	// 200 + 100/sqrt(2) = 270.71ms -> next arrival past it is 280ms,
	// count=3. The schedule then advances from its own previous value
	// (not from the arrival): dropNext = 270.71 + 100/sqrt(3) =
	// 328.45ms -> drop at 330ms, count=4, dropNext = 328.45 + 50 =
	// 378.45ms -> drop at 380ms, count=5, dropNext = 378.45 +
	// 100/sqrt(5) = 423.17ms (past the phase).
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		280 * time.Millisecond,
		330 * time.Millisecond,
		380 * time.Millisecond,
	}
	if len(drops) != len(want) {
		t.Fatalf("drop instants %v, want %v", drops, want)
	}
	for i := range want {
		if drops[i] != want[i] {
			t.Fatalf("drop %d at %v, want %v (all: %v)", i, drops[i], want[i], drops)
		}
	}
	if c.Drops != len(want) {
		t.Fatalf("Drops counter %d, want %d", c.Drops, len(want))
	}

	// Phase 2: the wave goes low — a single under-target sojourn ends
	// the dropping episode immediately.
	if !c.Admit(410*time.Millisecond, 0, 1500, time.Millisecond, nil) {
		t.Fatal("dropped an under-target packet")
	}

	// Phase 3: the wave goes high again right away. Re-entry inside
	// 8 x Interval of the last schedule restarts with count-2 (RFC 8289
	// §5.4), so the second episode's drop clock starts tighter than a
	// fresh episode's would.
	var again []time.Duration
	for ms := 420; ms <= 600; ms += 10 {
		now := time.Duration(ms) * time.Millisecond
		if !c.Admit(now, 0, 1500, high, nil) {
			again = append(again, now)
		}
	}
	// Above since 420ms; first drop at 520ms with count = 5-2 = 3,
	// dropNext = 520 + 100/sqrt(3) = 577.74ms -> drop at 580ms.
	wantAgain := []time.Duration{520 * time.Millisecond, 580 * time.Millisecond}
	if len(again) != len(wantAgain) || again[0] != wantAgain[0] || again[1] != wantAgain[1] {
		t.Fatalf("re-entry drops %v, want %v", again, wantAgain)
	}
}

// TestCodelBelowTargetNeverDrops: a sojourn permanently under target
// never drops, however long it persists.
func TestCodelBelowTargetNeverDrops(t *testing.T) {
	c := &CoDel{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	for ms := 0; ms < 10000; ms += 10 {
		if !c.Admit(time.Duration(ms)*time.Millisecond, 0, 1500, 4*time.Millisecond, nil) {
			t.Fatalf("dropped at %dms with sojourn under target", ms)
		}
	}
	if c.Drops != 0 {
		t.Fatalf("Drops = %d, want 0", c.Drops)
	}
}

// TestLinkAqmDropAccounting overloads a slow CoDel link and checks the
// policy's drops land in Dropped and AqmDrops — and nowhere else: no
// loss model and no hard cap are configured, so the two counters must
// match exactly, with OutageDrops untouched.
func TestLinkAqmDropAccounting(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 1*Mbps, time.Millisecond, 0, nil, c)
	l.SetAQM(AqmConfig{Kind: AqmCoDel}.New(0))
	// 200 packets of 1000 wire bytes = 8 ms serialization each: the
	// standing queue's sojourn blows through 5 ms immediately and stays
	// there, so CoDel must shed.
	for i := 0; i < 200; i++ {
		sch.At(time.Duration(i)*time.Millisecond, func() { l.Send(seg(960)) })
	}
	sch.Run()
	if l.AqmDrops == 0 {
		t.Fatal("overloaded CoDel link dropped nothing")
	}
	if l.AqmDrops != l.Dropped {
		t.Fatalf("AqmDrops %d != Dropped %d on a link whose only drop source is the AQM",
			l.AqmDrops, l.Dropped)
	}
	if l.OutageDrops != 0 {
		t.Fatalf("OutageDrops %d, want 0", l.OutageDrops)
	}
	if l.Sent != 200-l.Dropped {
		t.Fatalf("Sent %d + Dropped %d != 200 offered", l.Sent, l.Dropped)
	}
}

// TestTreeAqmDroppedAtTier attaches clients under a tree whose
// aggregation tier runs RED and checks the per-tier rollup separates
// policy drops from the rest, mirroring DroppedAtTier.
func TestTreeAqmDroppedAtTier(t *testing.T) {
	sch := sim.NewScheduler(1)
	sink := &collector{sch: sch}
	cfg := TreeConfig{
		Access:        Tier{Down: 100 * Mbps, Up: 100 * Mbps, Delay: time.Millisecond, Queue: 1 << 20},
		Agg:           Tier{Down: 2 * Mbps, Up: 100 * Mbps, Delay: time.Millisecond, Queue: 1 << 20, AQM: AqmConfig{Kind: AqmRED, MinTh: 4 << 10, MaxTh: 16 << 10, MaxP: 0.2, Weight: 0.1}},
		Core:          Tier{Down: 1000 * Mbps, Up: 1000 * Mbps, Delay: time.Millisecond, Queue: 1 << 20},
		ClientsPerAgg: 4,
	}
	tree := NewTree(sch, cfg, sink)
	addr := [4]byte{10, 0, 0, 1}
	tree.Attach(addr, sink)
	// Hammer the aggregation downstream directly: 2 Mbps drains 250
	// bytes/ms, offering 1000 wire bytes per ms stands a queue fast.
	for i := 0; i < 2000; i++ {
		sch.At(time.Duration(i)*time.Millisecond, func() {
			s := seg(960)
			s.Dst.Addr = addr
			tree.AggDown[0].Send(s)
		})
	}
	sch.Run()
	core, agg, access := tree.AqmDroppedAtTier()
	if core != 0 || access != 0 {
		t.Fatalf("AQM drops on policy-free tiers: core %d access %d", core, access)
	}
	if agg == 0 {
		t.Fatal("RED aggregation tier never dropped under sustained overload")
	}
	if agg != tree.AggDown[0].AqmDrops {
		t.Fatalf("tier rollup %d != link counter %d", agg, tree.AggDown[0].AqmDrops)
	}
	dCore, dAgg, dAccess := tree.DroppedAtTier()
	if agg > dAgg {
		t.Fatalf("AQM drops %d exceed total drops %d at the aggregation tier", agg, dAgg)
	}
	_ = dCore
	_ = dAccess
}
