package netem

// ring is a growable circular buffer backing the link pump's drain and
// flight queues. Capacity is kept a power of two so index wrap is a
// mask; the buffer is reused across the whole simulation, so steady
// state pushes allocate nothing.
type ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // live element count
}

// grow doubles the buffer when full, unwrapping the live elements to
// the start of the new slice.
func (r *ring[T]) grow() {
	if r.n < len(r.buf) {
		return
	}
	size := 2 * len(r.buf)
	if size == 0 {
		size = 8
	}
	nb := make([]T, size)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&mask]
	}
	r.buf = nb
	r.head = 0
}

// reset empties the ring in place, zeroing the live slots so pointer
// fields do not pin garbage; the buffer is kept for reuse.
func (r *ring[T]) reset() {
	var zero T
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&mask] = zero
	}
	r.head = 0
	r.n = 0
}

// front returns a pointer to the first element; r must be non-empty.
func (r *ring[T]) front() *T { return &r.buf[r.head] }

// back returns a pointer to the last element; r must be non-empty.
func (r *ring[T]) back() *T { return r.at(r.n - 1) }

// at returns a pointer to the i-th element from the front.
func (r *ring[T]) at(i int) *T { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

// pushBack appends v.
func (r *ring[T]) pushBack(v T) {
	r.grow()
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// popFront removes the first element, zeroing its slot so pointer
// fields do not pin garbage.
func (r *ring[T]) popFront() {
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// insert places v before the i-th element (i == n appends), shifting
// the tail one slot back. Only the non-monotone SetDelay fallback pays
// this O(n-i) cost.
func (r *ring[T]) insert(i int, v T) {
	r.grow()
	mask := len(r.buf) - 1
	for j := r.n; j > i; j-- {
		r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
	}
	r.buf[(r.head+i)&mask] = v
	r.n++
}
