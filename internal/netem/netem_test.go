package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

func seg(n int) *packet.Segment {
	return &packet.Segment{
		Flow:       packet.Flow{Src: packet.EP(1, 1, 1, 1, 1), Dst: packet.EP(2, 2, 2, 2, 2)},
		PayloadLen: n,
	}
}

type collector struct {
	at   []time.Duration
	segs []*packet.Segment
	sch  *sim.Scheduler
}

func (c *collector) Deliver(s *packet.Segment) {
	c.at = append(c.at, c.sch.Now())
	c.segs = append(c.segs, s)
}

func TestBandwidthMath(t *testing.T) {
	if got := (8 * Mbps).TxTime(1000); got != time.Millisecond {
		t.Fatalf("TxTime(1000B @ 8Mbps) = %v, want 1ms", got)
	}
	if got := (8 * Mbps).BytesIn(time.Second); got != 1000000 {
		t.Fatalf("BytesIn = %d, want 1e6", got)
	}
	if got := Bandwidth(0).TxTime(1000); got != 0 {
		t.Fatalf("zero-rate TxTime = %v, want 0", got)
	}
}

func TestLinkDelayAndSerialization(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	// 8 Mbps, 10 ms delay: a 1000B packet takes 1ms tx + 10ms prop.
	l := NewLink(sch, 8*Mbps, 10*time.Millisecond, 0, nil, c)
	l.Send(seg(960)) // 960+40 = 1000 wire bytes
	sch.Run()
	if len(c.at) != 1 {
		t.Fatal("packet not delivered")
	}
	if c.at[0] != 11*time.Millisecond {
		t.Fatalf("arrival at %v, want 11ms", c.at[0])
	}
}

func TestLinkBackToBackQueueing(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 0, 0, nil, c)
	for i := 0; i < 3; i++ {
		l.Send(seg(960))
	}
	sch.Run()
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	for i, w := range want {
		if c.at[i] != w {
			t.Fatalf("packet %d delivered at %v, want %v", i, c.at[i], w)
		}
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 0, 2500, nil, c) // room for 2.5 packets
	for i := 0; i < 5; i++ {
		l.Send(seg(960))
	}
	sch.Run()
	if l.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", l.Dropped)
	}
	if len(c.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(c.at))
	}
}

func TestQueueDrainsAllowsLaterTraffic(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 0, 1500, nil, c)
	l.Send(seg(960))
	sch.After(5*time.Millisecond, func() { l.Send(seg(960)) })
	sch.Run()
	if len(c.at) != 2 {
		t.Fatalf("delivered %d, want 2 (queue must drain)", len(c.at))
	}
	if l.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after drain, want 0", l.QueueDepth())
	}
}

func TestRandomLossRate(t *testing.T) {
	sch := sim.NewScheduler(42)
	c := &collector{sch: sch}
	l := NewLink(sch, Gbps, 0, 0, RandomLoss{Rate: 0.1}, c)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(seg(100))
	}
	sch.Run()
	rate := float64(l.Dropped) / n
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("observed loss %.3f, want ~0.1", rate)
	}
	if l.Sent+l.Dropped != n {
		t.Fatalf("sent+dropped = %d, want %d", l.Sent+l.Dropped, n)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := &GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.2, PGood: 0.0, PBad: 0.5}
	drops := 0
	burst, maxBurst := 0, 0
	for i := 0; i < 100000; i++ {
		if g.Drop(rng) {
			drops++
			burst++
			if burst > maxBurst {
				maxBurst = burst
			}
		} else {
			burst = 0
		}
	}
	if drops == 0 {
		t.Fatal("GE model never dropped")
	}
	if maxBurst < 2 {
		t.Fatal("GE model should produce loss bursts")
	}
}

type countTap struct{ n int }

func (ct *countTap) Capture(time.Duration, *packet.Segment) { ct.n++ }

func TestTapSeesOnlySurvivors(t *testing.T) {
	sch := sim.NewScheduler(3)
	c := &collector{sch: sch}
	l := NewLink(sch, Gbps, 0, 0, RandomLoss{Rate: 0.5}, c)
	tap := &countTap{}
	l.AddTap(tap)
	for i := 0; i < 1000; i++ {
		l.Send(seg(100))
	}
	sch.Run()
	if tap.n != l.Sent {
		t.Fatalf("tap saw %d, link sent %d; taps must be after the loss decision", tap.n, l.Sent)
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("want 4 vantage networks, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Down <= 0 || p.Up <= 0 || p.RTT <= 0 {
			t.Errorf("profile %s has non-positive parameters", p.Name)
		}
	}
	for _, want := range []string{"Research", "Residence", "Academic", "Home"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
	if _, ok := ProfileByName("Residence"); !ok {
		t.Error("ProfileByName failed for Residence")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName matched unknown name")
	}
	// The paper's asymmetric profiles.
	if Residence.Down >= 54*Mbps || Residence.Up >= Residence.Down {
		t.Error("Residence must be asymmetric ADSL")
	}
	if Home.Down != 20*Mbps || Home.Up != 3*Mbps {
		t.Error("Home must be 20/3 Mbps cable")
	}
}

func TestNewPathDirections(t *testing.T) {
	sch := sim.NewScheduler(1)
	cl := &collector{sch: sch}
	sv := &collector{sch: sch}
	path := NewPath(sch, Research, cl, sv)
	path.Down.Send(seg(100))
	path.Up.Send(seg(50))
	sch.Run()
	if len(cl.at) != 1 || len(sv.at) != 1 {
		t.Fatalf("client got %d, server got %d; want 1 and 1", len(cl.at), len(sv.at))
	}
	// RTT split: one-way delay should be RTT/2 (plus tiny tx time).
	if cl.at[0] < Research.RTT/2 || cl.at[0] > Research.RTT/2+time.Millisecond {
		t.Fatalf("one-way delay %v, want ~%v", cl.at[0], Research.RTT/2)
	}
}

// Property: FIFO ordering — packets sent in order arrive in order on a
// lossless link, for any packet sizes and send times.
func TestPropertyFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		sch := sim.NewScheduler(11)
		c := &collector{sch: sch}
		l := NewLink(sch, 10*Mbps, 5*time.Millisecond, 0, nil, c)
		for i, s := range sizes {
			n := int(s)%1460 + 1
			seg := seg(n)
			seg.Seq = uint32(i)
			l.Send(seg)
		}
		sch.Run()
		if len(c.segs) != len(sizes) {
			return false
		}
		for i := 1; i < len(c.segs); i++ {
			if c.segs[i].Seq != c.segs[i-1].Seq+1 {
				return false
			}
			if c.at[i] < c.at[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: throughput on a saturated link approaches the configured
// rate regardless of packet size.
func TestPropertyThroughputMatchesRate(t *testing.T) {
	for _, size := range []int{200, 960, 1460} {
		sch := sim.NewScheduler(1)
		c := &collector{sch: sch}
		l := NewLink(sch, 8*Mbps, 0, 0, nil, c)
		total := 0
		for total < 1_000_000 {
			l.Send(seg(size))
			total += size + 40
		}
		sch.Run()
		elapsed := sch.Now().Seconds()
		gotRate := float64(total) * 8 / elapsed
		if gotRate < 7.9e6 || gotRate > 8.1e6 {
			t.Fatalf("size %d: rate %.0f, want ~8e6", size, gotRate)
		}
	}
}

func BenchmarkLinkSend(b *testing.B) {
	sch := sim.NewScheduler(1)
	sink := ReceiverFunc(func(*packet.Segment) {})
	l := NewLink(sch, Gbps, time.Millisecond, 0, nil, sink)
	s := seg(1460)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Send(s)
		if i%1024 == 0 {
			sch.Run()
		}
	}
	sch.Run()
}
