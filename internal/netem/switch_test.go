package netem

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// segTo builds a payload segment addressed to dst.
func segTo(dst [4]byte, n int) *packet.Segment {
	return &packet.Segment{
		Flow: packet.Flow{
			Src: packet.EP(203, 0, 113, 10, 80),
			Dst: packet.Endpoint{Addr: dst, Port: 4000},
		},
		PayloadLen: n,
	}
}

func TestSwitchRoutesByDestination(t *testing.T) {
	sch := sim.NewScheduler(1)
	a := &collector{sch: sch}
	b := &collector{sch: sch}
	sw := NewSwitch()
	addrA, addrB := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	sw.Route(addrA, a)
	sw.Route(addrB, b)
	sw.Deliver(segTo(addrA, 100))
	sw.Deliver(segTo(addrB, 100))
	sw.Deliver(segTo(addrA, 100))
	if len(a.segs) != 2 || len(b.segs) != 1 {
		t.Fatalf("a got %d, b got %d; want 2 and 1", len(a.segs), len(b.segs))
	}
	if sw.Unrouted != 0 {
		t.Fatalf("Unrouted = %d for fully routed traffic", sw.Unrouted)
	}
}

func TestSwitchCountsUnrouted(t *testing.T) {
	sch := sim.NewScheduler(1)
	a := &collector{sch: sch}
	sw := NewSwitch()
	sw.Route([4]byte{10, 0, 0, 1}, a)
	for i := 0; i < 3; i++ {
		sw.Deliver(segTo([4]byte{10, 9, 9, 9}, 100))
	}
	if sw.Unrouted != 3 {
		t.Fatalf("Unrouted = %d, want 3", sw.Unrouted)
	}
	if len(a.segs) != 0 {
		t.Fatalf("routed receiver got %d stray packets", len(a.segs))
	}
}

// TestSwitchRouteOverwrite: re-registering an address replaces the
// receiver — the last route wins, with no duplicate delivery.
func TestSwitchRouteOverwrite(t *testing.T) {
	sch := sim.NewScheduler(1)
	oldR := &collector{sch: sch}
	newR := &collector{sch: sch}
	sw := NewSwitch()
	addr := [4]byte{10, 0, 0, 7}
	sw.Route(addr, oldR)
	sw.Route(addr, newR)
	sw.Deliver(segTo(addr, 100))
	if len(oldR.segs) != 0 {
		t.Fatal("overwritten route still delivered")
	}
	if len(newR.segs) != 1 {
		t.Fatalf("new route got %d packets, want 1", len(newR.segs))
	}
}

// TestDumbbellSharedQueue: clients attached to a dumbbell share the
// downstream link's queue and counters, and detached destinations are
// accounted as unrouted.
func TestDumbbellSharedQueue(t *testing.T) {
	sch := sim.NewScheduler(1)
	server := &collector{sch: sch}
	a := &collector{sch: sch}
	b := &collector{sch: sch}
	prof := Profile{Name: "test", Down: 8 * Mbps, Up: 8 * Mbps, RTT: 10 * time.Millisecond}
	db := NewDumbbell(sch, prof, server)
	addrA, addrB := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	upA := db.Attach(addrA, a)
	if upA != db.Up {
		t.Fatal("Attach must hand back the shared up link")
	}
	db.Attach(addrB, b)
	db.Down.Send(segTo(addrA, 960))
	db.Down.Send(segTo(addrB, 960))
	db.Down.Send(segTo([4]byte{10, 0, 0, 3}, 960)) // never attached
	sch.Run()
	if len(a.segs) != 1 || len(b.segs) != 1 {
		t.Fatalf("a=%d b=%d, want 1 each", len(a.segs), len(b.segs))
	}
	if db.Unrouted() != 1 {
		t.Fatalf("Unrouted = %d, want 1", db.Unrouted())
	}
	// Shared serialization: b's packet queued behind a's (1 ms each at
	// 8 Mbps) before the common 5 ms propagation.
	if server.at != nil {
		t.Fatal("server must see nothing on the down link")
	}
	if a.at[0] != 6*time.Millisecond || b.at[0] != 7*time.Millisecond {
		t.Fatalf("arrivals %v / %v, want 6ms / 7ms (shared queue)", a.at[0], b.at[0])
	}
}
