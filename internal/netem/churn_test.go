package netem

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Deterministic accounting checks under dynamics churn: queue occupancy
// and committed departure times (busyUntil) across rate ramps and
// outages, and delivery/tap ordering when a delay shrink forces the
// pump's non-monotone sorted-insert fallback. The randomized
// equivalence suite (pump_test.go) covers the same territory
// statistically; these pin the exact arithmetic.

// TestRateRampMidSerialization changes the rate while a packet is on
// the wire: committed departures keep their entry-time schedule, the
// next packet starts at the committed backlog's completion and pays the
// new rate, and QueueDepth reflects drains at exact serialization ends.
func TestRateRampMidSerialization(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 0, 0, nil, c) // 1000B wire = 1ms
	l.Send(seg(960))
	l.Send(seg(960)) // committed: done at 1ms and 2ms
	sch.At(500*time.Microsecond, func() {
		l.SetRate(4 * Mbps) // mid-serialization of packet 1
		if got := l.QueueDepth(); got != 2000 {
			t.Fatalf("QueueDepth at 0.5ms = %d, want 2000", got)
		}
	})
	sch.At(1500*time.Microsecond, func() {
		if got := l.QueueDepth(); got != 1000 {
			t.Fatalf("QueueDepth at 1.5ms = %d, want 1000 (first drain at 1ms)", got)
		}
		l.Send(seg(960)) // starts at busyUntil=2ms, 2ms tx at 4 Mbps
	})
	sch.At(2500*time.Microsecond, func() {
		if got := l.QueueDepth(); got != 1000 {
			t.Fatalf("QueueDepth at 2.5ms = %d, want 1000 (second drain at 2ms)", got)
		}
	})
	sch.Run()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(c.at) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(c.at), len(want))
	}
	for i, w := range want {
		if c.at[i] != w {
			t.Fatalf("packet %d delivered at %v, want %v", i, c.at[i], w)
		}
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("final QueueDepth = %d, want 0", got)
	}
}

// TestOutageMidFlight blocks the link while a packet is in flight: the
// in-flight packet still arrives, sends during the outage drop into
// OutageDrops, and the committed backlog (busyUntil) survives the
// outage, delaying the first post-outage packet.
func TestOutageMidFlight(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 5*time.Millisecond, 0, nil, c)
	l.Send(seg(960)) // done 1ms, arrive 6ms
	sch.At(200*time.Microsecond, func() { l.SetBlocked(true) })
	sch.At(400*time.Microsecond, func() { l.Send(seg(960)) }) // dropped
	sch.At(600*time.Microsecond, func() { l.SetBlocked(false) })
	sch.At(700*time.Microsecond, func() { l.Send(seg(960)) }) // starts at 1ms
	sch.Run()
	if l.Dropped != 1 || l.OutageDrops != 1 {
		t.Fatalf("Dropped=%d OutageDrops=%d, want 1 and 1", l.Dropped, l.OutageDrops)
	}
	want := []time.Duration{6 * time.Millisecond, 7 * time.Millisecond}
	if len(c.at) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(c.at), len(want))
	}
	for i, w := range want {
		if c.at[i] != w {
			t.Fatalf("packet %d delivered at %v, want %v", i, c.at[i], w)
		}
	}
}

type orderTap struct {
	sch *sim.Scheduler
	at  []time.Duration
	ids []uint32
}

func (o *orderTap) Capture(at time.Duration, s *packet.Segment) {
	o.at = append(o.at, at)
	o.ids = append(o.ids, s.Seq)
}

// TestDelayShrinkReordersInFlight shrinks the propagation delay while a
// packet is mid-flight: the later packet overtakes it (the pump's
// sorted-insert fallback plus a re-arm at the now-earlier edge), taps
// still capture in send order, and queue accounting stays exact.
func TestDelayShrinkReordersInFlight(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 5*time.Millisecond, 0, nil, c)
	tap := &orderTap{sch: sch}
	l.AddTap(tap)
	p1, p2 := seg(960), seg(960)
	p1.Seq, p2.Seq = 1, 2
	l.Send(p1) // done 1ms, arrive 6ms
	sch.At(1200*time.Microsecond, func() { l.SetDelay(0) })
	sch.At(1300*time.Microsecond, func() { l.Send(p2) }) // done 2.3ms, arrive 2.3ms
	sch.Run()
	if len(c.segs) != 2 || c.segs[0].Seq != 2 || c.segs[1].Seq != 1 {
		t.Fatalf("delivery order = %v, want packet 2 before packet 1", []uint32{c.segs[0].Seq, c.segs[1].Seq})
	}
	if c.at[0] != 2300*time.Microsecond || c.at[1] != 6*time.Millisecond {
		t.Fatalf("delivery times = %v, want [2.3ms 6ms]", c.at)
	}
	if len(tap.ids) != 2 || tap.ids[0] != 1 || tap.ids[1] != 2 {
		t.Fatalf("tap order = %v, want send order [1 2]", tap.ids)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("final QueueDepth = %d, want 0", got)
	}
}

// TestDelayShrinkEqualArrivalKeepsSendOrder shrinks the delay so a
// later packet's arrival lands at exactly an in-flight packet's
// timestamp: equal-time deliveries must keep send order (the fallback
// inserts ties after existing records).
func TestDelayShrinkEqualArrivalKeepsSendOrder(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 5*time.Millisecond, 0, nil, c)
	p1, p2 := seg(960), seg(960)
	p1.Seq, p2.Seq = 1, 2
	l.Send(p1) // done 1ms, arrive 6ms
	sch.At(1000*time.Microsecond, func() {
		l.SetDelay(4 * time.Millisecond)
		l.Send(p2) // done 2ms, arrive 6ms: exact tie
	})
	sch.Run()
	if len(c.segs) != 2 || c.segs[0].Seq != 1 || c.segs[1].Seq != 2 {
		t.Fatalf("equal-arrival order = [%d %d], want send order [1 2]", c.segs[0].Seq, c.segs[1].Seq)
	}
	if c.at[0] != 6*time.Millisecond || c.at[1] != 6*time.Millisecond {
		t.Fatalf("delivery times = %v, want both 6ms", c.at)
	}
}
