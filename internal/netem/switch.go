package netem

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Switch routes delivered packets to receivers by destination address,
// letting many client hosts share one bottleneck link — the topology
// needed to study how concurrent streaming sessions interact (the
// aggregate-traffic experiments and the paper's future-work question
// about strategy-induced loss).
type Switch struct {
	routes map[[4]byte]Receiver
	// Unrouted counts packets with no matching destination.
	Unrouted int
}

// NewSwitch returns an empty switch.
func NewSwitch() *Switch {
	return &Switch{routes: make(map[[4]byte]Receiver)}
}

// Reset drops every route and zeroes the unrouted counter, keeping
// the map's backing storage for reuse.
func (s *Switch) Reset() {
	clear(s.routes)
	s.Unrouted = 0
}

// Route registers the receiver for a destination address.
func (s *Switch) Route(addr [4]byte, r Receiver) { s.routes[addr] = r }

// Deliver implements Receiver.
func (s *Switch) Deliver(seg *packet.Segment) {
	if r, ok := s.routes[seg.Dst.Addr]; ok {
		r.Deliver(seg)
		return
	}
	s.Unrouted++
}

// Dumbbell is a shared-bottleneck topology: every client reaches the
// server through one downstream/upstream link pair, so concurrent
// sessions compete for the same drop-tail queue — where strategy
// burstiness turns into loss.
type Dumbbell struct {
	Down *Link // server -> clients (shared)
	Up   *Link // clients -> server (shared)
	sw   *Switch
}

// NewDumbbell builds the topology with the profile's rates, queue and
// loss. Clients are attached with Attach; the server receives
// everything sent on Up.
func NewDumbbell(sch *sim.Scheduler, p Profile, server Receiver) *Dumbbell {
	sw := NewSwitch()
	half := p.RTT / 2
	d := &Dumbbell{
		sw:   sw,
		Down: NewLink(sch, p.Down, half, p.Queue, RandomLoss{Rate: p.Loss}, sw),
		Up:   NewLink(sch, p.Up, half, p.Queue, RandomLoss{Rate: p.UpLossRate()}, server),
	}
	d.Down.SetAQM(p.AQM.New(p.Queue))
	d.Up.SetAQM(p.AQM.New(p.Queue))
	return d
}

// Attach registers a client receiver for its address and returns the
// link it must transmit on (the shared Up link).
func (d *Dumbbell) Attach(addr [4]byte, client Receiver) *Link {
	d.sw.Route(addr, client)
	return d.Up
}

// AddTaps attaches one capture tap per direction on the shared links,
// mirroring Path.AddTaps.
func (d *Dumbbell) AddTaps(down, up Tap) {
	d.Down.AddTap(down)
	d.Up.AddTap(up)
}

// Unrouted exposes the switch's unrouted-packet counter.
func (d *Dumbbell) Unrouted() int { return d.sw.Unrouted }
