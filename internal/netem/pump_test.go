package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// The drain pump must be invisible: receivers, taps and queue-depth
// reads must observe exactly the sequence a link scheduling two events
// per packet produces. refLink below IS that link — the pre-pump
// implementation, kept verbatim as an executable spec — and
// runLinkWorkload drives both through identical randomized scripts over
// a shared two-uplinks-into-one topology with dynamics churn (rate
// ramps mid-serialization, outages mid-flight, delay shrinks forcing
// the sorted-insert fallback). Traces diverge at the first ordering
// difference, because every later loss decision draws from an rng whose
// state depends on the exact call sequence.

type refDelivery struct {
	link *refLink
	seg  *packet.Segment
	size int32
}

const (
	refOpDrain int32 = iota
	refOpDeliver
)

type refLink struct {
	sch       *sim.Scheduler
	rate      Bandwidth
	delay     time.Duration
	queueCap  int
	queued    int
	busyUntil time.Duration
	loss      LossModel
	blocked   bool
	dst       Receiver
	taps      []Tap
	pool      []*refDelivery

	sent, dropped, outageDrops int
	bytes                      int64
}

func (d *refDelivery) RunTask(op int32) {
	l := d.link
	if op == refOpDrain {
		l.queued -= int(d.size)
		return
	}
	seg := d.seg
	d.seg = nil
	l.pool = append(l.pool, d)
	l.dst.Deliver(seg)
}

func (l *refLink) Send(seg *packet.Segment) {
	size := seg.WireLen()
	if l.blocked {
		l.dropped++
		l.outageDrops++
		return
	}
	if l.loss.Drop(l.sch.Rand()) {
		l.dropped++
		return
	}
	if l.queueCap > 0 && l.queued+size > l.queueCap {
		l.dropped++
		return
	}
	for _, t := range l.taps {
		t.Capture(l.sch.Now(), seg)
	}
	l.queued += size
	l.sent++
	l.bytes += int64(size)
	start := l.busyUntil
	if now := l.sch.Now(); start < now {
		start = now
	}
	done := start + l.rate.TxTime(size)
	l.busyUntil = done
	arrive := done + l.delay
	var d *refDelivery
	if n := len(l.pool); n > 0 {
		d = l.pool[n-1]
		l.pool = l.pool[:n-1]
		d.seg, d.size = seg, int32(size)
	} else {
		d = &refDelivery{link: l, seg: seg, size: int32(size)}
	}
	l.sch.AtTask(done, d, refOpDrain)
	l.sch.AtTask(arrive, d, refOpDeliver)
}

func (l *refLink) Deliver(seg *packet.Segment) { l.Send(seg) }
func (l *refLink) SetRate(r Bandwidth)         { l.rate = r }
func (l *refLink) SetDelay(d time.Duration)    { l.delay = d }
func (l *refLink) SetBlocked(b bool)           { l.blocked = b }
func (l *refLink) SetLoss(m LossModel)         { l.loss = m }
func (l *refLink) AddTap(t Tap)                { l.taps = append(l.taps, t) }
func (l *refLink) QueueDepth() int             { return l.queued }
func (l *refLink) stats() (int, int, int, int64) {
	return l.sent, l.dropped, l.outageDrops, l.bytes
}

func (l *Link) stats() (int, int, int, int64) {
	return l.Sent, l.Dropped, l.OutageDrops, l.Bytes
}

// testLink is the surface the workload script drives, implemented by
// both the pump Link and the reference.
type testLink interface {
	Receiver
	Send(*packet.Segment)
	SetRate(Bandwidth)
	SetDelay(time.Duration)
	SetBlocked(bool)
	SetLoss(LossModel)
	AddTap(Tap)
	QueueDepth() int
	stats() (int, int, int, int64)
}

func newRefLink(sch *sim.Scheduler, rate Bandwidth, delay time.Duration, q int, loss LossModel, dst Receiver) testLink {
	if loss == nil {
		loss = NoLoss{}
	}
	return &refLink{sch: sch, rate: rate, delay: delay, queueCap: q, loss: loss, dst: dst}
}

func newPumpLink(sch *sim.Scheduler, rate Bandwidth, delay time.Duration, q int, loss LossModel, dst Receiver) testLink {
	return NewLink(sch, rate, delay, q, loss, dst)
}

// pumpEvt is one observable: kind 0 = delivery at the sink, 1 = tap
// capture, 2 = queue-depth sample, 3 = final stats line.
type pumpEvt struct {
	kind int8
	link int8
	at   time.Duration
	a, b int64
}

type traceTap struct {
	link  int8
	trace *[]pumpEvt
	sch   *sim.Scheduler
}

func (t *traceTap) Capture(at time.Duration, seg *packet.Segment) {
	*t.trace = append(*t.trace, pumpEvt{kind: 1, link: t.link, at: at, a: int64(seg.Seq)})
}

// runLinkWorkload builds two access links feeding a shared bottleneck
// (the cross-link tie-break case: default-profile txtime==delay
// coincidences make same-timestamp drains and delivers across links the
// common case, and the shared queue's overflow decisions observe them)
// and replays a seed-derived script of sends and dynamics against it.
func runLinkWorkload(mk func(*sim.Scheduler, Bandwidth, time.Duration, int, LossModel, Receiver) testLink, seed int64, n int) []pumpEvt {
	sch := sim.NewScheduler(7)
	rng := rand.New(rand.NewSource(seed))
	var trace []pumpEvt

	sink := ReceiverFunc(func(s *packet.Segment) {
		trace = append(trace, pumpEvt{kind: 0, at: sch.Now(), a: int64(s.Seq)})
	})
	// Shared bottleneck with a shallow queue so overflow decisions (which
	// read lazily settled occupancy) are frequent.
	shared := mk(sch, 6*Mbps, 2*time.Millisecond, 6000, nil, sink)
	up := [3]testLink{
		mk(sch, 6*Mbps, 2*time.Millisecond, 9000, nil, shared),
		mk(sch, 12*Mbps, time.Millisecond, 9000, nil, shared),
		shared,
	}
	for i := range up {
		up[i].AddTap(&traceTap{link: int8(i), trace: &trace, sch: sch})
	}

	id := uint32(0)
	send := func(l testLink, payload int) {
		id++
		s := seg(payload)
		s.Seq = id
		l.Send(s)
	}
	rates := []Bandwidth{1500 * Kbps, 3 * Mbps, 6 * Mbps, 12 * Mbps}
	delays := []time.Duration{0, 500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(40 * time.Millisecond)))
		li := rng.Intn(3)
		action := rng.Intn(10)
		sch.At(at, func() {
			l := up[li]
			switch {
			case action < 4: // burst of sends; 1460 forces txtime==delay ties
				for k := rng.Intn(3); k >= 0; k-- {
					if rng.Intn(2) == 0 {
						send(l, 1460)
					} else {
						send(l, rng.Intn(1460)+1)
					}
				}
			case action < 5: // rate ramp mid-serialization
				l.SetRate(rates[rng.Intn(len(rates))])
			case action < 6: // delay change; shrinks force the fallback
				l.SetDelay(delays[rng.Intn(len(delays))])
			case action < 7: // outage mid-flight
				l.SetBlocked(rng.Intn(2) == 0)
			case action < 8:
				if rng.Intn(2) == 0 {
					l.SetLoss(RandomLoss{Rate: 0.2})
				} else {
					l.SetLoss(NoLoss{})
				}
			default: // observe lazily settled occupancy
				trace = append(trace, pumpEvt{kind: 2, link: int8(li), at: sch.Now(), a: int64(l.QueueDepth())})
			}
		})
	}
	sch.RunUntil(20 * time.Millisecond)
	for i := range up {
		trace = append(trace, pumpEvt{kind: 2, link: int8(i), at: sch.Now(), a: int64(up[i].QueueDepth())})
	}
	sch.Run()
	for i := range up {
		sent, dropped, outage, bytes := up[i].stats()
		trace = append(trace, pumpEvt{kind: 3, link: int8(i), at: sch.Now(),
			a: int64(sent)<<32 | int64(dropped)<<16 | int64(outage), b: bytes})
		trace = append(trace, pumpEvt{kind: 2, link: int8(i), a: int64(up[i].QueueDepth())})
	}
	trace = append(trace, pumpEvt{kind: 3, link: -1, at: sch.Now(), a: int64(sch.Pending())})
	return trace
}

func diffPumpTraces(t *testing.T, seed int64, ref, got []pumpEvt) {
	t.Helper()
	for i := 0; i < len(ref) && i < len(got); i++ {
		if ref[i] != got[i] {
			t.Fatalf("seed %d: traces diverge at %d:\n  ref  %+v\n  pump %+v", seed, i, ref[i], got[i])
		}
	}
	if len(ref) != len(got) {
		t.Fatalf("seed %d: trace lengths differ: ref %d vs pump %d", seed, len(ref), len(got))
	}
}

// TestPumpEquivalence pins the tentpole invariant: the one-timer-per-
// link pump delivers randomized churn workloads in exactly the order
// the two-events-per-packet reference link does.
func TestPumpEquivalence(t *testing.T) {
	n := 160
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		ref := runLinkWorkload(newRefLink, seed, n)
		got := runLinkWorkload(newPumpLink, seed, n)
		diffPumpTraces(t, seed, ref, got)
	}
}

// FuzzPumpEquivalence lets the fuzzer hunt for script shapes where the
// pump's observable order deviates from the reference link.
func FuzzPumpEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(64))
	f.Add(int64(42), uint8(200))
	f.Add(int64(-7), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		size := int(n)%200 + 1
		ref := runLinkWorkload(newRefLink, seed, size)
		got := runLinkWorkload(newPumpLink, seed, size)
		diffPumpTraces(t, seed, ref, got)
	})
}
