package netem

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestBytesInFloorAndNegativeGuard(t *testing.T) {
	if got := Bandwidth(1).BytesIn(time.Second); got != 0 {
		t.Fatalf("1 bps over 1s = %d bytes, want 0 (floor of 0.125)", got)
	}
	if got := (8 * Mbps).BytesIn(-time.Second); got != 0 {
		t.Fatalf("negative duration carried %d bytes, want 0", got)
	}
	if got := Bandwidth(-8e6).BytesIn(time.Second); got != 0 {
		t.Fatalf("negative rate carried %d bytes, want 0", got)
	}
	// 999.999... bytes must floor to 999, never round up.
	if got := Bandwidth(7999.992).BytesIn(time.Second); got != 999 {
		t.Fatalf("fractional budget = %d bytes, want 999", got)
	}
}

// TestBytesInTxTimeRoundTrip: the byte budget of a packet's own
// serialization time must never exceed the packet (TxTime truncates to
// whole nanoseconds, so the round trip may lose at most one byte).
func TestBytesInTxTimeRoundTrip(t *testing.T) {
	for _, b := range []Bandwidth{56 * Kbps, 3 * Mbps, 7.7 * Mbps, 100 * Mbps, Gbps} {
		for _, n := range []int{1, 40, 999, 1000, 1460, 1 << 20} {
			got := b.BytesIn(b.TxTime(n))
			if got > n {
				t.Fatalf("%v: BytesIn(TxTime(%d)) = %d, overshoots", b, n, got)
			}
			if n-got > 1 {
				t.Fatalf("%v: BytesIn(TxTime(%d)) = %d, loses more than 1 byte", b, n, got)
			}
		}
	}
}

func TestProfileUpLossRate(t *testing.T) {
	p := Profile{Loss: 0.01}
	if got := p.UpLossRate(); got != 0.001 {
		t.Fatalf("default UpLossRate = %v, want Loss/10 = 0.001", got)
	}
	p.UpLoss = 0.05
	if got := p.UpLossRate(); got != 0.05 {
		t.Fatalf("explicit UpLossRate = %v, want 0.05", got)
	}
	p.UpLoss = -1
	if got := p.UpLossRate(); got != 0 {
		t.Fatalf("disabled UpLossRate = %v, want 0", got)
	}
}

// TestRateStepRespectsInFlightSerialization pins the documented
// semantics: a rate change between two sends leaves the first packet's
// committed departure alone, and the second packet serializes at the
// new rate starting from the committed backlog's completion.
func TestRateStepRespectsInFlightSerialization(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 0, 0, nil, c) // 1000B = 1ms at 8 Mbps
	Dynamics{Steps: []Step{RateStep(500*time.Microsecond, 4*Mbps)}}.Apply(sch, l)
	l.Send(seg(960))
	sch.After(600*time.Microsecond, func() { l.Send(seg(960)) })
	sch.Run()
	if len(c.at) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(c.at))
	}
	if c.at[0] != time.Millisecond {
		t.Fatalf("first packet at %v, want 1ms (old rate committed)", c.at[0])
	}
	// Second: queued behind busyUntil=1ms, then 2ms at 4 Mbps.
	if c.at[1] != 3*time.Millisecond {
		t.Fatalf("second packet at %v, want 3ms (new rate from backlog end)", c.at[1])
	}
}

func TestDynamicsOutageBlocksAndRestores(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 0, 0, nil, c)
	Dynamics{Steps: []Step{OutageStep(10*time.Millisecond, 5*time.Millisecond)}}.Apply(sch, l)
	// Before, during and after the outage window.
	sch.After(9*time.Millisecond, func() { l.Send(seg(960)) })
	sch.After(12*time.Millisecond, func() { l.Send(seg(960)) })
	sch.After(16*time.Millisecond, func() { l.Send(seg(960)) })
	sch.Run()
	if len(c.at) != 2 {
		t.Fatalf("delivered %d packets, want 2 (one dropped in outage)", len(c.at))
	}
	if l.OutageDrops != 1 || l.Dropped != 1 {
		t.Fatalf("OutageDrops=%d Dropped=%d, want 1 and 1", l.OutageDrops, l.Dropped)
	}
}

// TestOutageDeliversInFlight: a packet fully accepted before the cut
// still arrives — the outage blocks entry, not propagation.
func TestOutageDeliversInFlight(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, 8*Mbps, 20*time.Millisecond, 0, nil, c)
	Dynamics{Steps: []Step{OutageStep(5*time.Millisecond, 30*time.Millisecond)}}.Apply(sch, l)
	l.Send(seg(960)) // done 1ms, arrives 21ms — mid-outage
	sch.Run()
	if len(c.at) != 1 || c.at[0] != 21*time.Millisecond {
		t.Fatalf("in-flight packet not delivered through outage: %v", c.at)
	}
}

func TestDynamicsRampInterpolates(t *testing.T) {
	sch := sim.NewScheduler(1)
	l := NewLink(sch, 8*Mbps, 0, 0, nil, ReceiverFunc(func(*packet.Segment) {}))
	Dynamics{Steps: []Step{RateRamp(10*time.Millisecond, 8*time.Millisecond, 16*Mbps)}}.Apply(sch, l)
	var mid, end Bandwidth
	sch.After(14*time.Millisecond+time.Microsecond, func() { mid = l.Rate() })
	sch.After(18*time.Millisecond+time.Microsecond, func() { end = l.Rate() })
	sch.Run()
	// Halfway through the ramp (4 of 8 ticks) the rate is halfway.
	if mid != 12*Mbps {
		t.Fatalf("mid-ramp rate %v, want 12 Mbps", float64(mid))
	}
	if end != 16*Mbps {
		t.Fatalf("post-ramp rate %v, want exactly the target 16 Mbps", float64(end))
	}
}

// TestRampYieldsToLaterStep: a rate step landing inside a ramp window
// must win — the ramp's remaining ticks are cancelled, not replayed
// over the newer value.
func TestRampYieldsToLaterStep(t *testing.T) {
	sch := sim.NewScheduler(1)
	l := NewLink(sch, 8*Mbps, 0, 0, nil, ReceiverFunc(func(*packet.Segment) {}))
	Dynamics{Steps: []Step{
		RateRamp(10*time.Millisecond, 8*time.Millisecond, 16*Mbps),
		RateStep(13*time.Millisecond, 2*Mbps), // mid-ramp
	}}.Apply(sch, l)
	sch.Run()
	if l.Rate() != 2*Mbps {
		t.Fatalf("final rate %v, want 2 Mbps (later step must cancel the ramp)", float64(l.Rate()))
	}
}

func TestDynamicsDelayAndLossSteps(t *testing.T) {
	sch := sim.NewScheduler(1)
	c := &collector{sch: sch}
	l := NewLink(sch, Gbps, 10*time.Millisecond, 0, nil, c)
	Dynamics{Steps: []Step{
		DelayStep(5*time.Millisecond, 50*time.Millisecond),
		LossStep(20*time.Millisecond, 1.0),
	}}.Apply(sch, l)
	l.Send(seg(100))                                            // old delay: ~10ms
	sch.After(6*time.Millisecond, func() { l.Send(seg(100)) })  // new delay: ~56ms
	sch.After(21*time.Millisecond, func() { l.Send(seg(100)) }) // loss=1: dropped
	sch.Run()
	if len(c.at) != 2 {
		t.Fatalf("delivered %d, want 2 (third lost)", len(c.at))
	}
	if c.at[0] < 10*time.Millisecond || c.at[0] > 11*time.Millisecond {
		t.Fatalf("first arrival %v, want ~10ms", c.at[0])
	}
	if c.at[1] < 56*time.Millisecond || c.at[1] > 57*time.Millisecond {
		t.Fatalf("second arrival %v, want ~56ms", c.at[1])
	}
	if l.Dropped != 1 {
		t.Fatalf("Dropped=%d, want 1", l.Dropped)
	}
}

// TestDynamicsApplySortsSteps: spec authors may list steps in any
// order; the realized timeline is time-sorted.
func TestDynamicsApplySortsSteps(t *testing.T) {
	sch := sim.NewScheduler(1)
	l := NewLink(sch, 8*Mbps, 0, 0, nil, ReceiverFunc(func(*packet.Segment) {}))
	Dynamics{Steps: []Step{
		RateStep(20*time.Millisecond, 2*Mbps),
		RateStep(10*time.Millisecond, 4*Mbps),
	}}.Apply(sch, l)
	var at15 Bandwidth
	sch.After(15*time.Millisecond, func() { at15 = l.Rate() })
	sch.Run()
	if at15 != 4*Mbps {
		t.Fatalf("rate at 15ms = %v, want 4 Mbps (earlier step must fire first)", float64(at15))
	}
	if l.Rate() != 2*Mbps {
		t.Fatalf("final rate %v, want 2 Mbps", float64(l.Rate()))
	}
}

func TestDynamicsValidate(t *testing.T) {
	bad := []Dynamics{
		{Steps: []Step{{At: -time.Second}}},
		{Steps: []Step{{At: 0, Ramp: -1}}},
		{Steps: []Step{{At: 0, SetRate: true, Rate: -1}}},
		// Rate 0 would be an infinitely fast link, not a dead one.
		{Steps: []Step{RateStep(time.Second, 0)}},
		{Steps: []Step{{At: 0, SetDelay: true, Delay: -1}}},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Fatalf("case %d: invalid timeline passed Validate", i)
		}
	}
	ok := Dynamics{}.Then(RateStep(time.Second, Mbps), OutageStep(2*time.Second, time.Second))
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	if len(ok.Steps) != 2 || ok.Empty() {
		t.Fatalf("Then composed %d steps", len(ok.Steps))
	}
}
