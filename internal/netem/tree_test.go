package netem

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// treeAddr numbers tree-test clients 10.0.0.1 upward.
func treeAddr(i int) [4]byte { return [4]byte{10, 0, 0, byte(i + 1)} }

// buildTestTree attaches n collector clients under a lossless tree
// with 2 clients per aggregation link and round rates for exact
// timing math.
func buildTestTree(sch *sim.Scheduler, n int) (*Tree, *collector, []*collector) {
	server := &collector{sch: sch}
	cfg := TreeConfig{
		Access:        Tier{Down: 8 * Mbps, Up: 8 * Mbps, Delay: 2 * time.Millisecond, Queue: 1 << 20},
		Agg:           Tier{Down: 80 * Mbps, Up: 80 * Mbps, Delay: 1 * time.Millisecond, Queue: 1 << 20},
		Core:          Tier{Down: 800 * Mbps, Up: 800 * Mbps, Delay: 5 * time.Millisecond, Queue: 1 << 20},
		ClientsPerAgg: 2,
	}
	tr := NewTree(sch, cfg, server)
	clients := make([]*collector, n)
	for i := range clients {
		clients[i] = &collector{sch: sch}
		tr.Attach(treeAddr(i), clients[i])
	}
	return tr, server, clients
}

// TestTreeRoutesDownstreamPerClient: a packet injected at the core
// reaches exactly the addressed client, traversing that client's
// aggregation group and access link (counters prove the path).
func TestTreeRoutesDownstreamPerClient(t *testing.T) {
	sch := sim.NewScheduler(1)
	tr, _, clients := buildTestTree(sch, 5)
	if tr.Groups() != 3 {
		t.Fatalf("5 clients at 2/agg: groups = %d, want 3", tr.Groups())
	}
	for i, want := range []int{0, 0, 1, 1, 2} {
		if g := tr.Group(i); g != want {
			t.Fatalf("Group(%d) = %d, want %d", i, g, want)
		}
	}
	tr.CoreDown.Send(segTo(treeAddr(2), 1000))
	sch.Run()
	for i, c := range clients {
		want := 0
		if i == 2 {
			want = 1
		}
		if len(c.segs) != want {
			t.Fatalf("client %d got %d packets, want %d", i, len(c.segs), want)
		}
	}
	if tr.CoreDown.Sent != 1 || tr.AggDown[1].Sent != 1 || tr.AccessDown[2].Sent != 1 {
		t.Fatalf("tier counters core=%d agg1=%d access2=%d, want 1/1/1",
			tr.CoreDown.Sent, tr.AggDown[1].Sent, tr.AccessDown[2].Sent)
	}
	if tr.AggDown[0].Sent != 0 || tr.AccessDown[0].Sent != 0 {
		t.Fatal("packet leaked into a foreign aggregation group")
	}
	if tr.Unrouted() != 0 {
		t.Fatalf("Unrouted = %d", tr.Unrouted())
	}
}

// TestTreeDownstreamTiming: end-to-end latency is the sum of the three
// serialization times plus the three propagation delays — the hops
// genuinely chain rather than short-circuit.
func TestTreeDownstreamTiming(t *testing.T) {
	sch := sim.NewScheduler(1)
	tr, _, clients := buildTestTree(sch, 1)
	seg := segTo(treeAddr(0), 960) // WireLen 1000 bytes
	tr.CoreDown.Send(seg)
	sch.Run()
	if len(clients[0].at) != 1 {
		t.Fatalf("client got %d packets", len(clients[0].at))
	}
	wire := seg.WireLen()
	want := (800 * Mbps).TxTime(wire) + 5*time.Millisecond +
		(80 * Mbps).TxTime(wire) + 1*time.Millisecond +
		(8 * Mbps).TxTime(wire) + 2*time.Millisecond
	if got := clients[0].at[0]; got != want {
		t.Fatalf("arrival at %v, want %v", got, want)
	}
	if rtt := tr.Config().BaseRTT(); rtt != 16*time.Millisecond {
		t.Fatalf("BaseRTT = %v, want 16ms", rtt)
	}
}

// TestTreeUpstreamReachesServer: a client transmitting on its access
// uplink reaches the server through its aggregation and core uplinks.
func TestTreeUpstreamReachesServer(t *testing.T) {
	sch := sim.NewScheduler(1)
	server := &collector{sch: sch}
	tr := NewTree(sch, TreeConfig{ClientsPerAgg: 2}, server)
	client := &collector{sch: sch}
	up := tr.Attach(treeAddr(0), client)
	seg := &packet.Segment{Flow: packet.Flow{
		Src: packet.Endpoint{Addr: treeAddr(0), Port: 4000},
		Dst: packet.EP(203, 0, 113, 10, 80),
	}}
	up.Send(seg)
	sch.Run()
	if len(server.segs) != 1 {
		t.Fatalf("server got %d packets, want 1", len(server.segs))
	}
	if tr.AggUp[0].Sent != 1 || tr.CoreUp.Sent != 1 {
		t.Fatalf("uplink counters agg=%d core=%d, want 1/1", tr.AggUp[0].Sent, tr.CoreUp.Sent)
	}
}

// TestTreeUnroutedAccounting: packets to unattached addresses are
// counted, not delivered, at whichever switch dead-ends them.
func TestTreeUnroutedAccounting(t *testing.T) {
	sch := sim.NewScheduler(1)
	tr, _, clients := buildTestTree(sch, 2)
	tr.CoreDown.Send(segTo([4]byte{10, 9, 9, 9}, 100))
	sch.Run()
	if tr.Unrouted() != 1 {
		t.Fatalf("Unrouted = %d, want 1", tr.Unrouted())
	}
	if len(clients[0].segs)+len(clients[1].segs) != 0 {
		t.Fatal("unrouted packet was delivered")
	}
}

// TestTreeTapsAttachAtEveryTier: the same capture tap machinery the
// flat topologies use observes any tree hop.
func TestTreeTapsAttachAtEveryTier(t *testing.T) {
	sch := sim.NewScheduler(1)
	tr, _, _ := buildTestTree(sch, 3)
	var core, agg0, acc2 int
	tr.CoreDown.AddTap(tapFunc(func(time.Duration, *packet.Segment) { core++ }))
	tr.AggDown[0].AddTap(tapFunc(func(time.Duration, *packet.Segment) { agg0++ }))
	tr.AccessDown[2].AddTap(tapFunc(func(time.Duration, *packet.Segment) { acc2++ }))
	tr.CoreDown.Send(segTo(treeAddr(0), 100)) // group 0
	tr.CoreDown.Send(segTo(treeAddr(2), 100)) // group 1
	sch.Run()
	if core != 2 || agg0 != 1 || acc2 != 1 {
		t.Fatalf("taps saw core=%d agg0=%d access2=%d, want 2/1/1", core, agg0, acc2)
	}
}

// tapFunc adapts a function to the Tap interface for tests.
type tapFunc func(time.Duration, *packet.Segment)

func (f tapFunc) Capture(at time.Duration, seg *packet.Segment) { f(at, seg) }

// TestTreeDroppedAtTier: an undersized access queue drops there and
// only there, and the per-tier accounting attributes it correctly.
func TestTreeDroppedAtTier(t *testing.T) {
	sch := sim.NewScheduler(1)
	server := &collector{sch: sch}
	cfg := TreeConfig{
		Access: Tier{Down: 1 * Mbps, Up: 1 * Mbps, Delay: time.Millisecond, Queue: 1500},
	}
	tr := NewTree(sch, cfg, server)
	client := &collector{sch: sch}
	tr.Attach(treeAddr(0), client)
	for i := 0; i < 10; i++ {
		tr.CoreDown.Send(segTo(treeAddr(0), 1460))
	}
	sch.Run()
	core, agg, access := tr.DroppedAtTier()
	if core != 0 || agg != 0 {
		t.Fatalf("drops above the bottleneck tier: core=%d agg=%d", core, agg)
	}
	if access == 0 {
		t.Fatal("tight access queue dropped nothing")
	}
	if got := len(client.segs) + access; got != 10 {
		t.Fatalf("delivered+dropped = %d, want 10", got)
	}
}
