package netem

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// AQM is an active-queue-management policy on a Link: it may drop a
// packet that the hard queue cap would have admitted, signalling
// congestion before the buffer fills. Admit is evaluated at enqueue
// time — the link is a work-conserving FIFO, so the packet's full
// queueing delay (wait plus serialization) is known analytically the
// moment it arrives, which lets sojourn-based policies like CoDel run
// without per-packet dequeue events and keeps the simulation's
// zero-events-per-packet property intact.
//
// Implementations must be deterministic: any randomness draws from
// the passed rng (the scheduler's seeded stream) and any time from
// the passed virtual-clock instant. One AQM instance serves exactly
// one link — the policies are stateful.
type AQM interface {
	// Admit decides the fate of a packet entering the queue. queued is
	// the backlog in bytes excluding this packet, size its wire size,
	// and sojourn the exact time it would spend queued+serializing.
	// Returning false drops the packet (counted in Dropped and
	// AqmDrops).
	Admit(now time.Duration, queued, size int, sojourn time.Duration, rng *rand.Rand) bool
	// Name returns the policy name ("red", "codel").
	Name() string
}

// AQM policy kinds for AqmConfig.Kind.
const (
	AqmDropTail = "droptail"
	AqmRED      = "red"
	AqmCoDel    = "codel"
)

// AqmKinds lists the policy names in presentation order.
func AqmKinds() []string { return []string{AqmDropTail, AqmRED, AqmCoDel} }

// AqmConfig selects and tunes a queue policy declaratively, so
// profiles, tree tiers and timeline steps can carry it as plain
// comparable data. The zero value is drop-tail (no AQM).
type AqmConfig struct {
	// Kind is "", "droptail", "red" or "codel".
	Kind string

	// RED knobs. Zero values take defaults derived from the link's
	// queue capacity: MinTh = cap/4, MaxTh = 3·MinTh, MaxP = 0.1,
	// Weight = 0.002 (the classic Floyd/Jacobson parameters). On an
	// uncapped link MinTh defaults to 64 KiB.
	MinTh, MaxTh int
	MaxP, Weight float64

	// CoDel knobs. Defaults: Target 5ms, Interval 100ms (RFC 8289).
	Target, Interval time.Duration
}

// Enabled reports whether the config selects an actual AQM policy
// (anything beyond drop-tail).
func (a AqmConfig) Enabled() bool { return a.Kind != "" && a.Kind != AqmDropTail }

// Validate rejects unknown kinds and nonsensical parameters.
func (a AqmConfig) Validate() error {
	switch a.Kind {
	case "", AqmDropTail, AqmCoDel:
	case AqmRED:
		if a.MinTh < 0 || a.MaxTh < 0 || (a.MaxTh > 0 && a.MaxTh <= a.MinTh) {
			return fmt.Errorf("aqm: red thresholds invalid (min %d, max %d)", a.MinTh, a.MaxTh)
		}
		if a.MaxP < 0 || a.MaxP > 1 {
			return fmt.Errorf("aqm: red MaxP %v outside [0,1]", a.MaxP)
		}
		if a.Weight < 0 || a.Weight > 1 {
			return fmt.Errorf("aqm: red Weight %v outside [0,1]", a.Weight)
		}
	default:
		return fmt.Errorf("aqm: unknown kind %q (droptail|red|codel)", a.Kind)
	}
	if a.Target < 0 || a.Interval < 0 {
		return fmt.Errorf("aqm: negative codel target/interval")
	}
	return nil
}

// New builds a fresh policy instance for a link with the given queue
// capacity (bytes; 0 = uncapped), or nil for drop-tail. Each link
// needs its own instance.
func (a AqmConfig) New(queueCap int) AQM {
	switch a.Kind {
	case "", AqmDropTail:
		return nil
	case AqmRED:
		minTh := a.MinTh
		if minTh <= 0 {
			if queueCap > 0 {
				minTh = queueCap / 4
			} else {
				minTh = 64 << 10
			}
		}
		maxTh := a.MaxTh
		if maxTh <= 0 {
			maxTh = 3 * minTh
		}
		maxP := a.MaxP
		if maxP <= 0 {
			maxP = 0.1
		}
		w := a.Weight
		if w <= 0 {
			w = 0.002
		}
		return &RED{MinTh: minTh, MaxTh: maxTh, MaxP: maxP, Weight: w}
	case AqmCoDel:
		target := a.Target
		if target <= 0 {
			target = 5 * time.Millisecond
		}
		interval := a.Interval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		return &CoDel{Target: target, Interval: interval}
	default:
		panic("netem: unknown aqm kind " + a.Kind)
	}
}

// ParseAqm parses a policy name ("droptail", "red", "codel", or ""
// for drop-tail) into a config with default parameters.
func ParseAqm(s string) (AqmConfig, error) {
	a := AqmConfig{Kind: s}
	if err := a.Validate(); err != nil {
		return AqmConfig{}, err
	}
	return a, nil
}

// RED is Random Early Detection (Floyd & Jacobson 1993): an EWMA of
// the queue backlog maps linearly from probability 0 at MinTh to MaxP
// at MaxTh, above which every packet drops. The count-based
// correction spreads drops uniformly instead of clustering them. The
// drop lottery draws from the scheduler's seeded rng, so runs stay
// bit-identical for a seed.
type RED struct {
	MinTh, MaxTh int     // EWMA thresholds, bytes
	MaxP         float64 // drop probability at MaxTh
	Weight       float64 // EWMA weight per arrival

	avg    float64 // averaged backlog, bytes
	count  int     // packets since the last drop (-1 below MinTh)
	inited bool
}

// Admit implements AQM.
func (r *RED) Admit(_ time.Duration, queued, _ int, _ time.Duration, rng *rand.Rand) bool {
	if !r.inited {
		r.avg = float64(queued)
		r.inited = true
	} else {
		r.avg += r.Weight * (float64(queued) - r.avg)
	}
	switch {
	case r.avg < float64(r.MinTh):
		r.count = -1
		return true
	case r.avg >= float64(r.MaxTh):
		r.count = 0
		return false
	}
	r.count++
	pb := r.MarkProb(r.avg)
	// Uniformize inter-drop gaps (the gentle count correction).
	pa := pb
	if d := 1 - float64(r.count)*pb; d > 0 {
		pa = pb / d
	} else {
		pa = 1
	}
	if rng.Float64() < pa {
		r.count = 0
		return false
	}
	return true
}

// MarkProb returns the base drop probability the linear RED curve
// assigns to an averaged backlog of avg bytes (before the count
// correction). Exposed for the hand-computed curve tests.
func (r *RED) MarkProb(avg float64) float64 {
	switch {
	case avg < float64(r.MinTh):
		return 0
	case avg >= float64(r.MaxTh):
		return 1
	}
	return r.MaxP * (avg - float64(r.MinTh)) / float64(r.MaxTh-r.MinTh)
}

// Avg exposes the current EWMA backlog estimate (tests).
func (r *RED) Avg() float64 { return r.avg }

// Name implements AQM.
func (r *RED) Name() string { return AqmRED }

// CoDel is the Controlled Delay policy (RFC 8289) evaluated at
// enqueue: when a packet's known sojourn time has stayed above Target
// for a full Interval, CoDel enters the dropping state and drops on a
// schedule that tightens with the inverse square root of the drop
// count until the sojourn falls back under Target. No randomness —
// the schedule is fully determined by the virtual clock.
type CoDel struct {
	Target   time.Duration // acceptable standing sojourn
	Interval time.Duration // how long sojourn may exceed Target

	above      bool          // sojourn has been above Target…
	aboveSince time.Duration // …continuously since this instant
	dropping   bool
	dropNext   time.Duration // next scheduled drop while dropping
	count      int           // drops in the current dropping episode
	// Drops counts packets this policy dropped (tests).
	Drops int
}

// Admit implements AQM.
func (c *CoDel) Admit(now time.Duration, _, _ int, sojourn time.Duration, _ *rand.Rand) bool {
	if sojourn < c.Target {
		c.above = false
		c.dropping = false
		return true
	}
	if !c.above {
		c.above = true
		c.aboveSince = now
	}
	if !c.dropping {
		if now-c.aboveSince < c.Interval {
			return true
		}
		// Sojourn exceeded Target for a full Interval: start dropping.
		c.dropping = true
		// Restart the schedule where the last episode left off if it
		// ended recently (standing queues rebuild fast), else afresh.
		if c.count > 2 && now-c.dropNext < 8*c.Interval {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.Drops++
		c.dropNext = now + c.controlLaw()
		return false
	}
	if now >= c.dropNext {
		c.count++
		c.Drops++
		c.dropNext += c.controlLaw()
		return false
	}
	return true
}

// controlLaw returns the inter-drop interval Interval/sqrt(count).
func (c *CoDel) controlLaw() time.Duration {
	return time.Duration(float64(c.Interval) / math.Sqrt(float64(c.count)))
}

// Name implements AQM.
func (c *CoDel) Name() string { return AqmCoDel }
