package netem

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// Dynamics is a deterministic timeline of link-condition changes:
// rate/delay/loss steps, linear rate ramps and full outages. It is
// plain data — scenario specs compose timelines declaratively — and is
// realized on a concrete Link with Apply, which schedules every change
// through the simulation's own timer queue so runs stay reproducible
// for any seed and worker count.
//
// The measurement motivation: the paper's captures ran on live access
// networks whose conditions shift mid-session (cross traffic, Wi-Fi
// rate adaptation, DSLAM congestion). A frozen link can never force a
// strategy switch or merge ON-OFF cycles through a bursty-loss episode;
// a timeline can.
type Dynamics struct {
	Steps []Step
}

// Step is one scheduled change. Only the parameters whose Set* flag is
// true are touched, so a step can change rate, delay and loss together
// or independently. Outage > 0 blocks the link over [At, At+Outage)
// regardless of the other fields.
type Step struct {
	At time.Duration
	// Ramp > 0 interpolates the rate linearly from its current value to
	// Rate over [At, At+Ramp], discretized into rampTicks equal steps.
	// Ramping applies to the rate only; delay and loss always step.
	Ramp time.Duration

	SetRate bool
	Rate    Bandwidth

	SetDelay bool
	Delay    time.Duration

	SetLoss bool
	Loss    LossModel

	SetAqm bool
	Aqm    AqmConfig

	Outage time.Duration
}

// rampTicks is the fixed discretization of a ramp. A constant tick
// count (rather than a tick period) keeps the event schedule — and
// therefore every artifact — independent of the ramp duration's
// divisibility.
const rampTicks = 8

// RateStep returns a step changing the rate at t.
func RateStep(t time.Duration, r Bandwidth) Step {
	return Step{At: t, SetRate: true, Rate: r}
}

// RateRamp returns a step ramping the rate linearly to r over
// [t, t+ramp].
func RateRamp(t, ramp time.Duration, r Bandwidth) Step {
	return Step{At: t, Ramp: ramp, SetRate: true, Rate: r}
}

// DelayStep returns a step changing the propagation delay at t.
func DelayStep(t, d time.Duration) Step {
	return Step{At: t, SetDelay: true, Delay: d}
}

// LossStep returns a step switching to independent random loss at
// rate p at t.
func LossStep(t time.Duration, p float64) Step {
	return Step{At: t, SetLoss: true, Loss: RandomLoss{Rate: p}}
}

// LossModelStep returns a step installing an arbitrary loss model at t
// (e.g. a GilbertElliott bursty episode).
func LossModelStep(t time.Duration, m LossModel) Step {
	return Step{At: t, SetLoss: true, Loss: m}
}

// AqmStep returns a step switching the link's queue policy at t (a
// fresh policy instance is built for the link when the step fires;
// AqmConfig{} restores drop-tail).
func AqmStep(t time.Duration, a AqmConfig) Step {
	return Step{At: t, SetAqm: true, Aqm: a}
}

// OutageStep returns a step blocking the link over [t, t+d).
func OutageStep(t, d time.Duration) Step {
	return Step{At: t, Outage: d}
}

// Empty reports whether the timeline has no steps.
func (d Dynamics) Empty() bool { return len(d.Steps) == 0 }

// Then appends steps and returns the extended timeline, for fluent
// composition in scenario specs.
func (d Dynamics) Then(steps ...Step) Dynamics {
	out := Dynamics{Steps: append(append([]Step(nil), d.Steps...), steps...)}
	return out
}

// Validate rejects timelines the scheduler could not realize.
func (d Dynamics) Validate() error {
	for i, st := range d.Steps {
		if st.At < 0 {
			return fmt.Errorf("dynamics step %d: negative time %v", i, st.At)
		}
		if st.Ramp < 0 || st.Outage < 0 {
			return fmt.Errorf("dynamics step %d: negative ramp/outage", i)
		}
		if st.SetRate && st.Rate <= 0 {
			// Rate 0 would make the link infinitely fast (TxTime treats
			// b <= 0 as "no serialization"); a dead link is an Outage.
			return fmt.Errorf("dynamics step %d: rate must be positive (use Outage to kill the link)", i)
		}
		if st.SetDelay && st.Delay < 0 {
			return fmt.Errorf("dynamics step %d: negative delay", i)
		}
		if st.SetAqm {
			if err := st.Aqm.Validate(); err != nil {
				return fmt.Errorf("dynamics step %d: %v", i, err)
			}
		}
	}
	return nil
}

// Apply schedules the timeline on l. Steps are sorted by time first so
// spec authors may list them in any order; ties keep their listed
// order. Steps whose time has already passed fire immediately.
// Apply panics on an invalid timeline — a spec bug, not a runtime
// condition.
func (d Dynamics) Apply(sch *sim.Scheduler, l *Link) {
	if err := d.Validate(); err != nil {
		panic("netem: " + err.Error())
	}
	steps := append([]Step(nil), d.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	ap := &applier{}
	for _, st := range steps {
		st := st
		at := st.At
		if now := sch.Now(); at < now {
			at = now
		}
		sch.At(at, func() { ap.applyStep(sch, l, st) })
	}
}

// applier carries the shared state of one realized timeline: rateEpoch
// counts rate events so that a ramp in progress yields to any later
// rate step instead of dragging the rate back with its queued ticks.
type applier struct {
	rateEpoch int
}

// applyStep realizes one step at its scheduled time.
func (ap *applier) applyStep(sch *sim.Scheduler, l *Link, st Step) {
	if st.Outage > 0 {
		l.SetBlocked(true)
		sch.After(st.Outage, func() { l.SetBlocked(false) })
	}
	if st.SetDelay {
		l.SetDelay(st.Delay)
	}
	if st.SetLoss {
		l.SetLoss(st.Loss)
	}
	if st.SetAqm {
		l.SetAQM(st.Aqm.New(l.QueueCap()))
	}
	if !st.SetRate {
		return
	}
	ap.rateEpoch++
	if st.Ramp <= 0 {
		l.SetRate(st.Rate)
		return
	}
	// Ramp: read the rate the link actually has when the ramp begins
	// (an earlier step may have changed it since Apply) and interpolate
	// in rampTicks equal increments, landing exactly on the target.
	// Each tick re-checks the epoch so a later rate event cancels the
	// remainder of the ramp.
	epoch := ap.rateEpoch
	from := l.Rate()
	for i := 1; i <= rampTicks; i++ {
		frac := float64(i) / rampTicks
		r := from + Bandwidth(frac)*(st.Rate-from)
		sch.After(time.Duration(frac*float64(st.Ramp)), func() {
			if ap.rateEpoch == epoch {
				l.SetRate(r)
			}
		})
	}
}
