// Package session orchestrates one streaming measurement exactly like
// the paper's methodology (Section 4.2): set up a vantage network,
// start the capture, start the player, stream for 180 seconds, stop,
// and analyze. The capture is a sink fan-out: by default only the
// online analyzer (analysis.Streaming) observes the packets — O(flows)
// state, with segment structs recycled through a pool — while Buffered
// retains the full trace.Trace for pcap export and offline tooling.
package session

import (
	"errors"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/player"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// ServiceKind selects which service backend serves the video.
type ServiceKind int

// The two services.
const (
	YouTube ServiceKind = iota
	Netflix
)

func (k ServiceKind) String() string {
	if k == YouTube {
		return "YouTube"
	}
	return "Netflix"
}

// DefaultDuration is the paper's per-video capture time.
const DefaultDuration = 180 * time.Second

// Config describes one streaming session.
type Config struct {
	Video   media.Video
	Service ServiceKind
	Player  player.Player
	Network netem.Profile
	// Duration bounds the capture; 0 means DefaultDuration (180 s).
	// It is an absolute horizon: a session with StartAt > 0 streams
	// for Duration - StartAt before the capture stops.
	Duration time.Duration
	// StartAt delays the player start — the arrival offset used by
	// scenario batches where sessions join over time. The capture
	// still begins at t=0, like tcpdump started before the player.
	StartAt time.Duration
	// Seed makes the run reproducible.
	Seed int64
	// ServerTCP overrides the server-side TCP configuration (the
	// IdleReset ablation flips a field here).
	ServerTCP tcp.Config
	// DownDynamics and UpDynamics schedule mid-session network changes
	// (rate steps/ramps, delay and loss changes, outages) on the
	// respective link. Empty timelines leave the link frozen, which is
	// the historical behaviour.
	DownDynamics netem.Dynamics
	UpDynamics   netem.Dynamics
	// Buffered additionally retains the full capture in Result.Trace
	// (tcpdump-then-analyze mode) for pcap export and offline flow
	// inspection. It disables segment pooling, since the trace pins
	// every segment.
	Buffered bool
	// Series additionally collects the exact per-packet download and
	// receive-window series (Result.Download/Windows) that the figure
	// experiments plot — points only, no segments.
	Series bool
	// SeriesBin, when positive, makes the analyzer aggregate the
	// capture into fixed-width bins (Result.Analysis.Bins): the
	// constant-memory form of the series.
	SeriesBin time.Duration
}

// Result carries everything a measurement produced.
type Result struct {
	Config   Config
	Analysis *analysis.Result
	// Trace is the buffered capture; nil unless Config.Buffered.
	Trace *trace.Trace
	// Download and Windows are the exact figure series; nil unless
	// Config.Series.
	Download []trace.DownloadPoint
	Windows  []trace.WindowPoint
	// Packets is the captured packet count (both directions).
	Packets int
	// Downloaded is the player-side consumed byte count.
	Downloaded int64
	// QoE is the player's playback-buffer outcome (startup delay,
	// rebuffering, rung occupancy), evaluated at the capture horizon.
	QoE     player.Metrics
	Elapsed time.Duration
}

// ClientAddr is the measurement vantage address used in captures.
var ClientAddr = [4]byte{10, 0, 0, 1}

// ServerAddr is the service address.
var ServerAddr = [4]byte{203, 0, 113, 10}

// AnalysisConfig returns the analyzer configuration a session derives
// from its video metadata (also used by the equivalence tests to
// re-analyze buffered captures).
func (cfg Config) AnalysisConfig() analysis.Config {
	return analysis.Config{
		KnownDuration: cfg.Video.Duration,
		KnownRate:     cfg.Video.EncodingRate,
		SeriesBin:     cfg.SeriesBin,
	}
}

// Run executes the session and analyzes the capture.
func Run(cfg Config) *Result {
	if cfg.Duration <= 0 {
		cfg.Duration = DefaultDuration
	}
	sch := sim.NewScheduler(cfg.Seed)
	client := tcp.NewHost(sch, ClientAddr[0], ClientAddr[1], ClientAddr[2], ClientAddr[3])
	server := tcp.NewHost(sch, ServerAddr[0], ServerAddr[1], ServerAddr[2], ServerAddr[3])
	path := netem.NewPath(sch, cfg.Network, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	cfg.DownDynamics.Apply(sch, path.Down)
	cfg.UpDynamics.Apply(sch, path.Up)

	// tcpdump at the client vantage point: a fan-out of streaming
	// sinks, plus the buffered trace when asked for.
	stream := analysis.NewStreaming(cfg.AnalysisConfig())
	sinks := []trace.Sink{stream}
	var series *trace.Series
	if cfg.Series {
		series = &trace.Series{}
		sinks = append(sinks, series)
	}
	var tr *trace.Trace
	if cfg.Buffered {
		tr = &trace.Trace{}
		sinks = append(sinks, tr)
	} else {
		// Streaming-only capture: nothing retains segments past the
		// tap, so both stacks can recycle them through one pool.
		pool := &packet.Pool{}
		client.SetSegmentPool(pool)
		server.SetSegmentPool(pool)
	}
	sink := trace.Fanout(sinks...)
	path.AddTaps(trace.SinkTap(sink, trace.Down), trace.SinkTap(sink, trace.Up))

	switch cfg.Service {
	case YouTube:
		service.NewYouTube(server, cfg.ServerTCP, []media.Video{cfg.Video})
	case Netflix:
		service.NewNetflix(server, cfg.ServerTCP, []media.Video{cfg.Video})
	}

	env := &player.Env{Sch: sch, Host: client, Server: packet.Endpoint{Addr: ServerAddr, Port: 80}}
	if cfg.StartAt > 0 {
		sch.At(cfg.StartAt, func() { cfg.Player.Start(env, cfg.Video) })
	} else {
		cfg.Player.Start(env, cfg.Video)
	}
	sch.RunUntil(cfg.Duration)
	_ = sink.Close()

	res := &Result{
		Config:     cfg,
		Analysis:   stream.Result(),
		Trace:      tr,
		Downloaded: cfg.Player.Downloaded(),
		QoE:        cfg.Player.QoE(sch.Now()),
		Elapsed:    sch.Now(),
	}
	res.Packets = res.Analysis.Packets
	if series != nil {
		res.Download = series.Download
		res.Windows = series.Windows
	}
	return res
}

// ErrNotBuffered is returned when pcap export is requested from a
// streaming-only session.
var ErrNotBuffered = errors.New("session: capture not buffered (set Config.Buffered for pcap export)")

// WritePcap saves the capture with a payload-preserving snaplen so
// container headers survive for offline analysis. The session must
// have run with Config.Buffered.
func (r *Result) WritePcap(w io.Writer) error {
	if r.Trace == nil {
		return ErrNotBuffered
	}
	return r.Trace.WritePcap(w, 0)
}
