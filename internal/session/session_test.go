package session

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/trace"
)

func flashVideo() media.Video {
	return media.Video{ID: 1, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
}

func html5Video() media.Video {
	return media.Video{ID: 2, EncodingRate: 1e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
}

func hdVideo() media.Video {
	return media.Video{ID: 3, EncodingRate: 4e6, Duration: 240 * time.Second, Container: media.Flash, Resolution: "720p"}
}

func netflixVideo() media.Video {
	return media.Video{ID: 4, EncodingRate: 3800e3, Duration: 40 * time.Minute, Container: media.Silverlight, Resolution: "adaptive"}
}

func TestFlashShortOnOff(t *testing.T) {
	r := Run(Config{
		Video: flashVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("Internet Explorer"), Network: netem.Research, Seed: 1,
	})
	a := r.Analysis
	if a.Strategy != analysis.ShortOnOff {
		t.Fatalf("strategy = %v, want Short ON-OFF\n%s", a.Strategy, a)
	}
	// 64 kB dominant block (Figure 4a).
	if mb := a.MedianBlock(); mb < 56<<10 || mb > 80<<10 {
		t.Fatalf("median block = %d, want ~64k", mb)
	}
	// ~40 s of playback buffered (Figure 3a).
	if pb := a.PlaybackBuffered(); pb < 30 || pb > 50 {
		t.Fatalf("playback buffered = %.1f s, want ~40", pb)
	}
	// Accumulation ratio ~1.25 (Figure 4b).
	if a.AccumulationRatio < 1.1 || a.AccumulationRatio > 1.4 {
		t.Fatalf("accumulation = %.3f, want ~1.25", a.AccumulationRatio)
	}
	// Encoding rate recovered from the FLV header on the wire.
	if a.Media.RateSource != "header" || a.Media.EncodingRate != 1e6 {
		t.Fatalf("media = %+v", a.Media)
	}
	if a.ConnCount != 1 {
		t.Fatalf("conns = %d, want 1", a.ConnCount)
	}
}

func TestIEHtml5ShortOnOff(t *testing.T) {
	r := Run(Config{
		Video: html5Video(), Service: YouTube,
		Player: player.NewIEHtml5(), Network: netem.Research, Seed: 2,
		Series: true,
	})
	a := r.Analysis
	if a.Strategy != analysis.ShortOnOff {
		t.Fatalf("strategy = %v, want Short ON-OFF\n%s", a.Strategy, a)
	}
	// 256 kB dominant block (Figure 5a).
	if mb := a.MedianBlock(); mb < 200<<10 || mb > 360<<10 {
		t.Fatalf("median block = %d, want ~256k", mb)
	}
	// Buffering 10-15 MB (Section 5.1.1).
	if a.BufferedBytes < 9<<20 || a.BufferedBytes > 17<<20 {
		t.Fatalf("buffered = %d, want 10-15 MB", a.BufferedBytes)
	}
	// WebM header is broken, so the rate comes from Content-Length.
	if a.Media.RateSource != "content-length" {
		t.Fatalf("rate source = %q", a.Media.RateSource)
	}
	// The receive window must oscillate to (near) zero (Figure 2b).
	sawZero := false
	for _, wp := range r.Windows {
		if wp.TS > a.BufferingEnd && wp.Window == 0 {
			sawZero = true
			break
		}
	}
	if !sawZero {
		t.Fatal("receive window never reached zero; IE pull pacing is not closing the window")
	}
}

func TestFirefoxNoOnOff(t *testing.T) {
	r := Run(Config{
		Video: html5Video(), Service: YouTube,
		Player: player.NewFirefoxHtml5(), Network: netem.Research, Seed: 3,
	})
	a := r.Analysis
	if a.Strategy != analysis.NoOnOff {
		t.Fatalf("strategy = %v, want No ON-OFF\n%s", a.Strategy, a)
	}
	// The whole video must arrive during the buffering phase.
	want := html5Video().Size()
	if a.TotalBytes < want {
		t.Fatalf("downloaded %d < video size %d", a.TotalBytes, want)
	}
}

func TestFlashHDNoOnOff(t *testing.T) {
	r := Run(Config{
		Video: hdVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("Mozilla Firefox"), Network: netem.Research, Seed: 4,
	})
	a := r.Analysis
	if a.Strategy != analysis.NoOnOff {
		t.Fatalf("strategy = %v, want No ON-OFF (HD is unpaced)\n%s", a.Strategy, a)
	}
}

func TestChromeLongOnOff(t *testing.T) {
	r := Run(Config{
		Video: html5Video(), Service: YouTube,
		Player: player.NewChromeHtml5(), Network: netem.Research, Seed: 5,
	})
	a := r.Analysis
	if a.Strategy != analysis.LongOnOff {
		t.Fatalf("strategy = %v, want Long ON-OFF\n%s", a.Strategy, a)
	}
	if mb := a.MedianBlock(); mb < analysis.LongCycleBytes {
		t.Fatalf("median block = %d, want > 2.5 MB", mb)
	}
	if a.BufferedBytes < 9<<20 || a.BufferedBytes > 17<<20 {
		t.Fatalf("buffered = %d, want 10-15 MB", a.BufferedBytes)
	}
}

func TestAndroidYouTubeLongOnOff(t *testing.T) {
	r := Run(Config{
		Video: html5Video(), Service: YouTube,
		Player: player.NewAndroidYouTube(), Network: netem.Research, Seed: 6,
	})
	a := r.Analysis
	if a.Strategy != analysis.LongOnOff {
		t.Fatalf("strategy = %v, want Long ON-OFF\n%s", a.Strategy, a)
	}
	// Android buffers 4-8 MB (Section 5.1.2).
	if a.BufferedBytes < 3<<20 || a.BufferedBytes > 10<<20 {
		t.Fatalf("buffered = %d, want 4-8 MB", a.BufferedBytes)
	}
}

func TestIPadYouTubeMultiple(t *testing.T) {
	v := media.Video{ID: 5, EncodingRate: 2e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	r := Run(Config{
		Video: v, Service: YouTube,
		Player: player.NewIPadYouTube(), Network: netem.Research, Seed: 7,
	})
	a := r.Analysis
	// Many successive TCP connections (the paper saw 37 in 60 s).
	if a.ConnCount < 10 {
		t.Fatalf("connections = %d, want many (range-request churn)", a.ConnCount)
	}
	if a.Strategy != analysis.MultipleOnOff && a.Strategy != analysis.ShortOnOff {
		t.Fatalf("strategy = %v, want Multiple or Short\n%s", a.Strategy, a)
	}
	if !a.HasSteadyState {
		t.Fatal("iPad sessions must show ON-OFF structure")
	}
}

func TestNetflixPCShortOnOff(t *testing.T) {
	// The buffering-amount measurement ends at the first OFF period
	// and is therefore loss-sensitive (the paper says so in Section
	// 5.1.1); use the best of three seeds for the amount while the
	// strategy must hold for every seed.
	var bestBuffered int64
	var a *analysis.Result
	for seed := int64(8); seed <= 10; seed++ {
		r := Run(Config{
			Video: netflixVideo(), Service: Netflix,
			Player: player.NewSilverlightPC("Internet Explorer"), Network: netem.Academic, Seed: seed,
		})
		a = r.Analysis
		if a.Strategy != analysis.ShortOnOff {
			t.Fatalf("seed %d: strategy = %v, want Short ON-OFF\n%s", seed, a.Strategy, a)
		}
		if a.BufferedBytes > bestBuffered {
			bestBuffered = a.BufferedBytes
		}
	}
	// Buffering ~50 MB (Figure 11a).
	if bestBuffered < 30<<20 || bestBuffered > 70<<20 {
		t.Fatalf("buffered = %d, want ~50 MB", bestBuffered)
	}
	// Blocks below 2.5 MB but bigger than YouTube's (Figure 12a).
	if mb := a.MedianBlock(); mb < 500<<10 || mb >= analysis.LongCycleBytes {
		t.Fatalf("median block = %d, want ~1.9 MB", mb)
	}
	// Many connections (one per fragment).
	if a.ConnCount < 10 {
		t.Fatalf("connections = %d, want many", a.ConnCount)
	}
}

func TestNetflixIPadShortOnOffSmallBuffer(t *testing.T) {
	r := Run(Config{
		Video: netflixVideo(), Service: Netflix,
		Player: player.NewNetflixIPad(), Network: netem.Academic, Seed: 9,
	})
	a := r.Analysis
	if a.Strategy != analysis.ShortOnOff {
		t.Fatalf("strategy = %v, want Short ON-OFF\n%s", a.Strategy, a)
	}
	// ~10 MB buffering (Figure 11a).
	if a.BufferedBytes < 5<<20 || a.BufferedBytes > 20<<20 {
		t.Fatalf("buffered = %d, want ~10 MB", a.BufferedBytes)
	}
}

func TestNetflixAndroidLongOnOff(t *testing.T) {
	r := Run(Config{
		Video: netflixVideo(), Service: Netflix,
		Player: player.NewNetflixAndroid(), Network: netem.Academic, Seed: 10,
	})
	a := r.Analysis
	if a.Strategy != analysis.LongOnOff {
		t.Fatalf("strategy = %v, want Long ON-OFF\n%s", a.Strategy, a)
	}
	// ~40 MB buffering (Figure 11b).
	if a.BufferedBytes < 25<<20 || a.BufferedBytes > 55<<20 {
		t.Fatalf("buffered = %d, want ~40 MB", a.BufferedBytes)
	}
	// Single persistent connection.
	if a.ConnCount != 1 {
		t.Fatalf("connections = %d, want 1", a.ConnCount)
	}
}

func TestSessionDeterministic(t *testing.T) {
	run := func() (int64, int) {
		r := Run(Config{
			Video: flashVideo(), Service: YouTube,
			Player: player.NewFlashPlayer("x"), Network: netem.Residence, Seed: 42,
			Duration: 60 * time.Second,
		})
		return r.Analysis.TotalBytes, r.Packets
	}
	b1, l1 := run()
	b2, l2 := run()
	if b1 != b2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", b1, l1, b2, l2)
	}
}

func TestSessionPcapExport(t *testing.T) {
	r := Run(Config{
		Video: flashVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("x"), Network: netem.Research, Seed: 11,
		Duration: 30 * time.Second, Buffered: true,
	})
	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadPcap(&buf, ClientAddr)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Trace.Len() {
		t.Fatalf("pcap round trip: %d vs %d records", back.Len(), r.Trace.Len())
	}
	// The re-read capture must analyze identically.
	a := analysis.Analyze(back, analysis.Config{})
	if a.Strategy != r.Analysis.Strategy {
		t.Fatalf("strategy from pcap = %v, direct = %v", a.Strategy, r.Analysis.Strategy)
	}
	if a.Media.EncodingRate != 1e6 {
		t.Fatalf("rate from pcap payload = %v", a.Media.EncodingRate)
	}
}

func TestLossyNetworkStillClassifies(t *testing.T) {
	// Residence has real loss; Flash must still classify as short
	// ON-OFF and show retransmissions (Section 5.1.1's artefacts).
	r := Run(Config{
		Video: flashVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("x"), Network: netem.Residence, Seed: 12,
	})
	a := r.Analysis
	if a.Strategy != analysis.ShortOnOff {
		t.Fatalf("strategy = %v under loss\n%s", a.Strategy, a)
	}
	if a.Retrans == 0 {
		t.Fatal("Residence loss must produce retransmissions")
	}
}

// TestStartAtDelaysPlayer: the capture starts at t=0 but the player
// joins at StartAt, so the first record cannot predate the arrival and
// the download is bounded by the remaining horizon.
func TestStartAtDelaysPlayer(t *testing.T) {
	base := Run(Config{
		Video: flashVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("x"), Network: netem.Research, Seed: 5,
		Duration: 60 * time.Second,
	})
	late := Run(Config{
		Video: flashVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("x"), Network: netem.Research, Seed: 5,
		Duration: 60 * time.Second, StartAt: 30 * time.Second, Buffered: true,
	})
	if late.Trace.Len() == 0 {
		t.Fatal("delayed session captured nothing")
	}
	if first := late.Trace.Records[0].TS; first < 30*time.Second {
		t.Fatalf("first packet at %v, before the 30s arrival", first)
	}
	if late.Downloaded >= base.Downloaded {
		t.Fatalf("30s-late session downloaded %d >= full session's %d", late.Downloaded, base.Downloaded)
	}
}

// TestDynamicsReachSession: a session-level outage must show up in the
// trace as a silent window on an otherwise continuously busy transfer.
func TestDynamicsReachSession(t *testing.T) {
	cfg := Config{
		Video: hdVideo(), Service: YouTube,
		Player: player.NewFlashPlayer("x"), Network: netem.Research, Seed: 9,
		Duration: 60 * time.Second, Buffered: true,
	}
	cfg.DownDynamics = netem.Dynamics{}.Then(netem.OutageStep(20*time.Second, 5*time.Second))
	r := Run(cfg)
	var inWindow int
	for _, rec := range r.Trace.Records {
		if rec.Dir == trace.Down && rec.TS > 21*time.Second && rec.TS < 24*time.Second {
			inWindow++
		}
	}
	if inWindow != 0 {
		t.Fatalf("%d downstream packets captured inside the outage window", inWindow)
	}
	if r.Downloaded == 0 {
		t.Fatal("transfer must resume after the outage")
	}
}

func TestServiceKindString(t *testing.T) {
	if YouTube.String() != "YouTube" || Netflix.String() != "Netflix" {
		t.Fatal("kind strings")
	}
}

func TestSessionSurfacesQoEAndRenditionCycles(t *testing.T) {
	// An adaptive session through the full stack: the playback-buffer
	// QoE must surface on the Result and the analyzer must segment
	// per-rendition request cycles from the fragment headers alone.
	v := media.Video{
		ID: 9, Duration: 300 * time.Second, Container: media.Silverlight,
		Resolution: "adaptive",
	}.WithLadder(media.NetflixLadder...)
	prof := netem.Profile{
		Name: "tight", Down: 1200 * netem.Kbps, Up: 2 * netem.Mbps,
		RTT: 40 * time.Millisecond, Queue: 128 << 10,
	}
	res := Run(Config{
		Video: v, Service: Netflix,
		Player:  player.NewABRPlayer(player.ABRConfig{}),
		Network: prof, Seed: 12, Duration: 90 * time.Second,
	})
	if !res.QoE.Started {
		t.Fatalf("QoE not surfaced: %+v", res.QoE)
	}
	if res.QoE.FetchedSec <= 0 || len(res.QoE.RungSec) == 0 {
		t.Fatalf("no rung accounting: %+v", res.QoE)
	}
	a := res.Analysis
	if len(a.Rungs) == 0 {
		t.Fatal("analyzer recovered no rendition cycles")
	}
	if res.QoE.Switches > 0 && a.RungSwitches == 0 {
		t.Fatalf("player switched %d times but the analyzer saw none", res.QoE.Switches)
	}
	var wire int64
	for _, r := range a.Rungs {
		if r.Bitrate <= 0 || r.Fragments <= 0 || r.End < r.Start {
			t.Fatalf("malformed rung span %+v", r)
		}
		if v.RungIndex(r.Bitrate) < 0 {
			t.Fatalf("rung span at off-ladder bitrate %v", r.Bitrate)
		}
		wire += r.Bytes
	}
	if wire <= 0 || wire > a.TotalBytes {
		t.Fatalf("rung bytes %d outside (0, total %d]", wire, a.TotalBytes)
	}
	// Legacy sessions expose QoE too: the Flash capture has a playback
	// buffer even though its wire behaviour is untouched.
	legacy := Run(Config{
		Video: flashVideo(), Service: YouTube,
		Player:  player.NewFlashPlayer("Internet Explorer"),
		Network: netem.Research, Seed: 13, Duration: 60 * time.Second,
	})
	if !legacy.QoE.Started || legacy.QoE.StartupDelay <= 0 {
		t.Fatalf("legacy QoE missing: %+v", legacy.QoE)
	}
	if len(legacy.QoE.RungSec) != 0 {
		t.Fatal("single-bitrate session must not report rung occupancy")
	}
}
