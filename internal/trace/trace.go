// Package trace is the measurement substrate: it records packets
// observed at the client vantage point (like tcpdump in the paper's
// methodology) and offers flow-level views plus TCP payload
// reassembly, so internal/analysis can recompute the paper's metrics
// from the captured segments alone. Trace is the buffering Sink; see
// sink.go for the streaming counterparts that avoid holding packets.
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
)

// Dir is the packet direction relative to the measured client.
type Dir int

// Directions.
const (
	Down Dir = iota // server -> client (data)
	Up              // client -> server (acks, requests)
)

func (d Dir) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Record is one captured packet.
type Record struct {
	TS  time.Duration
	Dir Dir
	Seg *packet.Segment
}

// Trace is an append-only capture: the Sink that buffers everything,
// retained for pcap export and offline flow inspection. Flow-level
// accessors are backed by an incrementally built per-flow index, so
// repeated Flows/FlowRecords/DownBytes calls do not rescan Records.
//
// Records must be treated as append-only once any flow accessor has
// run: the staleness check only detects a shrunken slice, so
// truncating and refilling Records back to (or past) its indexed
// length would silently serve the old index. Replace the Trace, don't
// recycle it.
type Trace struct {
	Records []Record
	idx     flowIndex
}

// flowIndex accelerates the flow-level accessors. It is (re)built
// lazily: records appended since the last accessor call are folded in,
// and a shrunken Records slice triggers a full rebuild.
type flowIndex struct {
	n         int // Records[:n] have been indexed
	flows     []packet.Flow
	byFlow    map[packet.Flow]*flowLists
	downBytes int64
}

// flowLists holds the record indices of one Down flow and its reverse.
type flowLists struct {
	down, up []int32
}

func (t *Trace) reindex() {
	if t.idx.n > len(t.Records) {
		t.idx = flowIndex{} // Records were truncated; start over
	}
	if t.idx.byFlow == nil {
		t.idx.byFlow = make(map[packet.Flow]*flowLists)
	}
	for i := t.idx.n; i < len(t.Records); i++ {
		r := t.Records[i]
		if r.Dir == Down {
			f := r.Seg.Flow
			l := t.idx.byFlow[f]
			if l == nil {
				l = &flowLists{}
				t.idx.byFlow[f] = l
			}
			if len(l.down) == 0 {
				// First Down record of the flow (its reverse may have
				// been indexed already): enters the first-seen order.
				t.idx.flows = append(t.idx.flows, f)
			}
			l.down = append(l.down, int32(i))
			t.idx.downBytes += int64(r.Seg.Len())
			continue
		}
		// Up records are indexed under the Down flow they acknowledge.
		f := r.Seg.Flow.Reverse()
		l := t.idx.byFlow[f]
		if l == nil {
			l = &flowLists{}
			t.idx.byFlow[f] = l
			// Not appended to flows: Flows() lists Down flows only.
		}
		l.up = append(l.up, int32(i))
	}
	t.idx.n = len(t.Records)
}

// Capture implements Sink: it appends one record.
func (t *Trace) Capture(at time.Duration, d Dir, seg *packet.Segment) {
	t.Records = append(t.Records, Record{TS: at, Dir: d, Seg: seg})
}

// Close implements Sink.
func (t *Trace) Close() error { return nil }

// Tap returns a capture tap for the given direction, to be attached to
// the corresponding netem link.
func (t *Trace) Tap(d Dir) TapDir { return SinkTap(t, d) }

// Len returns the number of captured packets.
func (t *Trace) Len() int { return len(t.Records) }

// Duration returns the timestamp of the last record.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].TS
}

// DownBytes sums payload bytes in the Down direction.
func (t *Trace) DownBytes() int64 {
	t.reindex()
	return t.idx.downBytes
}

// Flows returns the distinct Down-direction flows in first-seen order.
func (t *Trace) Flows() []packet.Flow {
	t.reindex()
	if len(t.idx.flows) == 0 {
		return nil
	}
	out := make([]packet.Flow, len(t.idx.flows))
	copy(out, t.idx.flows)
	return out
}

// FlowRecords returns the records of one Down flow (data) or its
// reverse (acks), in capture order.
func (t *Trace) FlowRecords(f packet.Flow, d Dir) []Record {
	t.reindex()
	l := t.idx.byFlow[f]
	if l == nil {
		return nil
	}
	ids := l.down
	if d == Up {
		ids = l.up
	}
	if len(ids) == 0 {
		return nil
	}
	out := make([]Record, len(ids))
	for i, id := range ids {
		out[i] = t.Records[id]
	}
	return out
}

// WritePcap serializes the capture as a libpcap file.
func (t *Trace) WritePcap(w io.Writer, snaplen int) error {
	pw, err := pcap.NewWriter(w, snaplen)
	if err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := pw.WritePacket(r.TS, r.Seg); err != nil {
			return fmt.Errorf("trace: record at %v: %w", r.TS, err)
		}
	}
	return nil
}

// ReadPcap loads a capture produced by WritePcap (or tcpdump with raw
// IP linktype). clientAddr identifies the measurement vantage point so
// directions can be restored.
func ReadPcap(r io.Reader, clientAddr [4]byte) (*Trace, error) {
	t := &Trace{}
	if err := StreamPcap(r, clientAddr, t); err != nil {
		return nil, err
	}
	return t, nil
}

// Reassemble rebuilds the in-order payload byte stream of one Down
// flow up to maxBytes, using sequence numbers (duplicates collapse,
// gaps stop reassembly). Snaplen-truncated payloads contribute the
// bytes that were captured; missing tails render as zeros, mirroring
// what a real trace analyzer can recover.
func (t *Trace) Reassemble(f packet.Flow, maxBytes int) []byte {
	type piece struct {
		seq     uint32
		payload []byte
		length  int
	}
	var pieces []piece
	var base uint32
	haveBase := false
	for _, r := range t.FlowRecords(f, Down) {
		if r.Seg.HasFlag(packet.FlagSYN) {
			base = r.Seg.Seq + 1
			haveBase = true
			continue
		}
		if r.Seg.Len() == 0 {
			continue
		}
		if !haveBase {
			base = r.Seg.Seq
			haveBase = true
		}
		pieces = append(pieces, piece{seq: r.Seg.Seq, payload: r.Seg.Payload, length: r.Seg.Len()})
	}
	if len(pieces) == 0 {
		return nil
	}
	sort.SliceStable(pieces, func(i, j int) bool {
		return int32(pieces[i].seq-pieces[j].seq) < 0
	})
	out := make([]byte, 0, maxBytes)
	next := base
	for _, p := range pieces {
		off := int32(p.seq - next)
		if off+int32(p.length) <= 0 {
			continue // fully duplicate
		}
		if off > 0 {
			break // gap: cannot reassemble past it
		}
		skip := int(-off)
		take := p.length - skip
		if take <= 0 {
			continue
		}
		chunk := make([]byte, take)
		if p.payload != nil && skip < len(p.payload) {
			copy(chunk, p.payload[skip:])
		}
		out = append(out, chunk...)
		next += uint32(take)
		if len(out) >= maxBytes {
			return out[:maxBytes]
		}
	}
	return out
}

// DownloadPoint is one step of the cumulative download curve.
type DownloadPoint struct {
	TS    time.Duration
	Bytes int64
}

// DownloadSeries returns the cumulative payload bytes over time across
// all Down flows — the "Download Amount" axis of Figures 2, 6, 7, 10.
func (t *Trace) DownloadSeries() []DownloadPoint {
	var out []DownloadPoint
	var total int64
	for _, r := range t.Records {
		if r.Dir != Down || r.Seg.Len() == 0 {
			continue
		}
		total += int64(r.Seg.Len())
		out = append(out, DownloadPoint{TS: r.TS, Bytes: total})
	}
	return out
}

// WindowPoint is one advertised-window observation from a client ACK.
type WindowPoint struct {
	TS     time.Duration
	Window int
}

// ReceiveWindowSeries extracts the client's advertised receive window
// over time (Figures 2(b) and 6(a)): the Window field of Up packets.
func (t *Trace) ReceiveWindowSeries() []WindowPoint {
	var out []WindowPoint
	for _, r := range t.Records {
		if r.Dir != Up {
			continue
		}
		out = append(out, WindowPoint{TS: r.TS, Window: r.Seg.Window})
	}
	return out
}

// Retransmissions counts Down-direction data segments that are
// retransmissions from the client vantage point: their sequence range
// ends at or below the highest byte already seen on the flow (the
// lost original never reached the capture point, so sequence
// regression is the observable signal — the same heuristic wireshark
// uses). Exact duplicates (spurious retransmits) also count.
func (t *Trace) Retransmissions() (retrans, data int) {
	high := map[packet.Flow]uint32{} // highest end-seq seen per flow
	started := map[packet.Flow]bool{}
	for _, r := range t.Records {
		if r.Dir != Down || r.Seg.Len() == 0 {
			continue
		}
		data++
		f := r.Seg.Flow
		end := r.Seg.Seq + uint32(r.Seg.Len())
		if !started[f] {
			started[f] = true
			high[f] = end
			continue
		}
		if int32(end-high[f]) <= 0 {
			retrans++
		} else {
			high[f] = end
		}
	}
	return retrans, data
}
