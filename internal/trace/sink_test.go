package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/packet"
)

// countSink counts captures per direction and Close calls.
type countSink struct {
	down, up, closed int
}

func (c *countSink) Capture(_ time.Duration, d Dir, _ *packet.Segment) {
	if d == Down {
		c.down++
	} else {
		c.up++
	}
}

func (c *countSink) Close() error { c.closed++; return nil }

func TestFanoutReplicatesAndCloses(t *testing.T) {
	a, b := &countSink{}, &countSink{}
	s := Fanout(a, b)
	tap := SinkTap(s, Down)
	tap.Capture(0, dataSeg(1, nil, 10))
	SinkTap(s, Up).Capture(1, ackSeg(100))
	if a.down != 1 || a.up != 1 || b.down != 1 || b.up != 1 {
		t.Fatalf("fanout counts: %+v %+v", a, b)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if a.closed != 1 || b.closed != 1 {
		t.Fatal("fanout must close every sink")
	}
	if Fanout(a) != Sink(a) {
		t.Fatal("single-sink fanout must unwrap")
	}
}

func TestSeriesSinkMatchesTraceSeries(t *testing.T) {
	tr := mkTrace()
	s := &Series{}
	for _, r := range tr.Records {
		s.Capture(r.TS, r.Dir, r.Seg)
	}
	want := tr.DownloadSeries()
	if len(s.Download) != len(want) {
		t.Fatalf("download series %d vs %d points", len(s.Download), len(want))
	}
	for i := range want {
		if s.Download[i] != want[i] {
			t.Fatalf("download point %d: %+v vs %+v", i, s.Download[i], want[i])
		}
	}
	wantW := tr.ReceiveWindowSeries()
	if len(s.Windows) != len(wantW) {
		t.Fatalf("window series %d vs %d points", len(s.Windows), len(wantW))
	}
	for i := range wantW {
		if s.Windows[i] != wantW[i] {
			t.Fatalf("window point %d differs", i)
		}
	}
}

func TestStreamPcapMatchesReadPcap(t *testing.T) {
	tr := mkTrace()
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got := &Trace{}
	if err := StreamPcap(bytes.NewReader(buf.Bytes()), [4]byte{10, 0, 0, 1}, got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("streamed %d records, want %d", got.Len(), tr.Len())
	}
	for i := range got.Records {
		if got.Records[i].Dir != tr.Records[i].Dir || got.Records[i].TS != tr.Records[i].TS {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestPcapSinkStreamsRecords(t *testing.T) {
	tr := mkTrace()
	var direct, streamed bytes.Buffer
	if err := tr.WritePcap(&direct, 0); err != nil {
		t.Fatal(err)
	}
	ps, err := NewPcapSink(&streamed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records {
		ps.Capture(r.TS, r.Dir, r.Seg)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
		t.Fatal("streamed pcap differs from buffered WritePcap output")
	}
}

// TestFlowIndexIncremental: accessors must stay correct as records are
// appended after earlier accessor calls, and survive truncation.
func TestFlowIndexIncremental(t *testing.T) {
	tr := &Trace{}
	dt, ut := tr.Tap(Down), tr.Tap(Up)
	ut.Capture(0, &packet.Segment{Flow: up, Seq: 9, Flags: packet.FlagSYN, Window: 65536})
	dt.Capture(1, dataSeg(100, nil, 50))
	if got := tr.DownBytes(); got != 50 {
		t.Fatalf("DownBytes = %d", got)
	}
	// Append after the index was built.
	dt.Capture(2, dataSeg(150, nil, 70))
	ut.Capture(3, ackSeg(1000))
	if got := tr.DownBytes(); got != 120 {
		t.Fatalf("DownBytes after append = %d", got)
	}
	if got := len(tr.FlowRecords(down, Down)); got != 2 {
		t.Fatalf("down records = %d", got)
	}
	if got := len(tr.FlowRecords(down, Up)); got != 2 {
		t.Fatalf("up records = %d", got)
	}
	if flows := tr.Flows(); len(flows) != 1 || flows[0] != down {
		t.Fatalf("Flows = %v", flows)
	}
	// Truncation forces a rebuild.
	tr.Records = tr.Records[:1]
	if got := tr.DownBytes(); got != 0 {
		t.Fatalf("DownBytes after truncation = %d", got)
	}
	if flows := tr.Flows(); len(flows) != 0 {
		t.Fatalf("Flows after truncation = %v", flows)
	}
}
