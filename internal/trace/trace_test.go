package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/packet"
)

var (
	client = packet.EP(10, 0, 0, 1, 40000)
	server = packet.EP(203, 0, 113, 10, 80)
	down   = packet.Flow{Src: server, Dst: client}
	up     = packet.Flow{Src: client, Dst: server}
)

func dataSeg(seq uint32, payload []byte, n int) *packet.Segment {
	return &packet.Segment{Flow: down, Seq: seq, Flags: packet.FlagACK, Window: 65536, Payload: payload, PayloadLen: n}
}

func ackSeg(win int) *packet.Segment {
	return &packet.Segment{Flow: up, Flags: packet.FlagACK, Window: win}
}

func mkTrace() *Trace {
	t := &Trace{}
	dt := t.Tap(Down)
	ut := t.Tap(Up)
	// handshake
	ut.Capture(0, &packet.Segment{Flow: up, Seq: 99, Flags: packet.FlagSYN, Window: 65536})
	dt.Capture(20*time.Millisecond, &packet.Segment{Flow: down, Seq: 499, Ack: 100, Flags: packet.FlagSYN | packet.FlagACK, Window: 65536})
	// data
	dt.Capture(40*time.Millisecond, dataSeg(500, []byte("HTTP"), 0))
	dt.Capture(45*time.Millisecond, dataSeg(504, nil, 1000))
	ut.Capture(46*time.Millisecond, ackSeg(64000))
	dt.Capture(50*time.Millisecond, dataSeg(1504, nil, 1000))
	return t
}

func TestTraceBasics(t *testing.T) {
	tr := mkTrace()
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Duration() != 50*time.Millisecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if got := tr.DownBytes(); got != 2004 {
		t.Fatalf("DownBytes = %d", got)
	}
	flows := tr.Flows()
	if len(flows) != 1 || flows[0] != down {
		t.Fatalf("Flows = %v", flows)
	}
	if got := len(tr.FlowRecords(down, Down)); got != 4 {
		t.Fatalf("down flow records = %d", got)
	}
	if got := len(tr.FlowRecords(down, Up)); got != 2 {
		t.Fatalf("up flow records = %d", got)
	}
}

func TestDownloadSeries(t *testing.T) {
	tr := mkTrace()
	pts := tr.DownloadSeries()
	if len(pts) != 3 {
		t.Fatalf("series len = %d", len(pts))
	}
	if pts[len(pts)-1].Bytes != 2004 {
		t.Fatalf("final cumulative = %d", pts[len(pts)-1].Bytes)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes < pts[i-1].Bytes || pts[i].TS < pts[i-1].TS {
			t.Fatal("series must be nondecreasing")
		}
	}
}

func TestReceiveWindowSeries(t *testing.T) {
	tr := mkTrace()
	pts := tr.ReceiveWindowSeries()
	if len(pts) != 2 {
		t.Fatalf("window series = %d", len(pts))
	}
	if pts[1].Window != 64000 {
		t.Fatalf("window = %d", pts[1].Window)
	}
}

func TestReassembleInOrder(t *testing.T) {
	tr := &Trace{}
	dt := tr.Tap(Down)
	dt.Capture(0, &packet.Segment{Flow: down, Seq: 999, Flags: packet.FlagSYN | packet.FlagACK})
	dt.Capture(1*time.Millisecond, dataSeg(1000, []byte("hello "), 0))
	dt.Capture(2*time.Millisecond, dataSeg(1006, []byte("world"), 0))
	got := tr.Reassemble(down, 100)
	if string(got) != "hello world" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestReassembleDuplicatesAndReordering(t *testing.T) {
	tr := &Trace{}
	dt := tr.Tap(Down)
	dt.Capture(0, &packet.Segment{Flow: down, Seq: 999, Flags: packet.FlagSYN | packet.FlagACK})
	dt.Capture(2*time.Millisecond, dataSeg(1006, []byte("world"), 0))  // arrives early
	dt.Capture(3*time.Millisecond, dataSeg(1000, []byte("hello "), 0)) // the hole
	dt.Capture(4*time.Millisecond, dataSeg(1000, []byte("hello "), 0)) // retransmit
	dt.Capture(5*time.Millisecond, dataSeg(1003, []byte("lo wor"), 0)) // partial overlap
	got := tr.Reassemble(down, 100)
	if string(got) != "hello world" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestReassembleStopsAtGap(t *testing.T) {
	tr := &Trace{}
	dt := tr.Tap(Down)
	dt.Capture(0, &packet.Segment{Flow: down, Seq: 999, Flags: packet.FlagSYN | packet.FlagACK})
	dt.Capture(1*time.Millisecond, dataSeg(1000, []byte("abc"), 0))
	dt.Capture(2*time.Millisecond, dataSeg(1010, []byte("xyz"), 0)) // gap at 1003
	got := tr.Reassemble(down, 100)
	if string(got) != "abc" {
		t.Fatalf("reassembled %q, want stop at gap", got)
	}
}

func TestReassembleMaxBytes(t *testing.T) {
	tr := &Trace{}
	dt := tr.Tap(Down)
	dt.Capture(0, &packet.Segment{Flow: down, Seq: 999, Flags: packet.FlagSYN | packet.FlagACK})
	dt.Capture(1*time.Millisecond, dataSeg(1000, bytes.Repeat([]byte{7}, 100), 0))
	got := tr.Reassemble(down, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
}

func TestRetransmissions(t *testing.T) {
	tr := &Trace{}
	dt := tr.Tap(Down)
	dt.Capture(1*time.Millisecond, dataSeg(1000, nil, 1000))
	dt.Capture(2*time.Millisecond, dataSeg(2000, nil, 1000))
	dt.Capture(3*time.Millisecond, dataSeg(1000, nil, 1000)) // retransmit
	re, data := tr.Retransmissions()
	if re != 1 || data != 3 {
		t.Fatalf("retrans = %d/%d, want 1/3", re, data)
	}
}

func TestPcapRoundTripPreservesDirections(t *testing.T) {
	tr := mkTrace()
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, [4]byte{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), tr.Len())
	}
	for i, r := range got.Records {
		want := tr.Records[i]
		if r.Dir != want.Dir {
			t.Fatalf("record %d direction %v, want %v", i, r.Dir, want.Dir)
		}
		if r.TS != want.TS || r.Seg.Seq != want.Seg.Seq {
			t.Fatalf("record %d mismatch", i)
		}
		if r.Seg.Len() != want.Seg.Len() {
			t.Fatalf("record %d len %d, want %d", i, r.Seg.Len(), want.Seg.Len())
		}
	}
	if got.DownBytes() != tr.DownBytes() {
		t.Fatal("byte accounting differs after round trip")
	}
}

func TestDirString(t *testing.T) {
	if Down.String() != "down" || Up.String() != "up" {
		t.Fatal("Dir strings wrong")
	}
}
