// Streaming capture sinks. The paper's methodology is
// tcpdump-then-analyze; a Sink is the tcpdump-less alternative: it
// observes each packet once, at capture time, so consumers that only
// need derived metrics (internal/analysis.Streaming, series binning,
// live pcap writing) never hold the packets themselves. A buffered
// Trace is just one more Sink — the one that remembers everything.
package trace

import (
	"io"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
)

// Sink consumes captured packets of both directions in capture order.
// Capture must not retain seg beyond the call unless the sink is a
// buffering sink (like Trace), in which case segment pooling must stay
// disabled for the session. Close flushes whatever the sink buffers.
type Sink interface {
	Capture(at time.Duration, dir Dir, seg *packet.Segment)
	Close() error
}

// TapDir adapts one direction of a Sink to the netem.Tap interface.
type TapDir struct {
	s Sink
	d Dir
}

// SinkTap returns a single-direction capture tap feeding s, suitable
// for netem's AddTap/AddTaps attachment points.
func SinkTap(s Sink, d Dir) TapDir { return TapDir{s: s, d: d} }

// Capture implements netem.Tap.
func (td TapDir) Capture(at time.Duration, seg *packet.Segment) {
	td.s.Capture(at, td.d, seg)
}

// fanout replicates a capture stream to several sinks in order.
type fanout []Sink

// Fanout combines sinks into one. Zero sinks yield a discard sink; a
// single sink is returned unwrapped.
func Fanout(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return fanout(sinks)
}

// Capture implements Sink.
func (f fanout) Capture(at time.Duration, dir Dir, seg *packet.Segment) {
	for _, s := range f {
		s.Capture(at, dir, seg)
	}
}

// Close implements Sink, returning the first error.
func (f fanout) Close() error {
	var first error
	for _, s := range f {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Series is a streaming sink collecting the two per-packet series the
// figures plot: the cumulative download curve (one point per Down data
// segment) and the advertised receive window (one point per Up
// packet). It holds two machine words per point — no segments — and
// produces exactly what Trace.DownloadSeries/ReceiveWindowSeries
// return for the same capture.
type Series struct {
	Download []DownloadPoint
	Windows  []WindowPoint
	total    int64
}

// Capture implements Sink.
func (s *Series) Capture(at time.Duration, dir Dir, seg *packet.Segment) {
	if dir == Up {
		s.Windows = append(s.Windows, WindowPoint{TS: at, Window: seg.Window})
		return
	}
	if n := seg.Len(); n > 0 {
		s.total += int64(n)
		s.Download = append(s.Download, DownloadPoint{TS: at, Bytes: s.total})
	}
}

// Close implements Sink.
func (s *Series) Close() error { return nil }

// PcapSink writes each captured packet straight to a libpcap stream,
// so exporting a capture does not require buffering it first.
type PcapSink struct {
	w   *pcap.Writer
	err error
}

// NewPcapSink starts a pcap stream on w (snaplen 0 keeps full
// payloads, like session captures).
func NewPcapSink(w io.Writer, snaplen int) (*PcapSink, error) {
	pw, err := pcap.NewWriter(w, snaplen)
	if err != nil {
		return nil, err
	}
	return &PcapSink{w: pw}, nil
}

// Capture implements Sink; the first write error sticks and is
// reported by Close.
func (p *PcapSink) Capture(at time.Duration, _ Dir, seg *packet.Segment) {
	if p.err == nil {
		p.err = p.w.WritePacket(at, seg)
	}
}

// Close implements Sink.
func (p *PcapSink) Close() error { return p.err }

// StreamPcap replays a libpcap capture (ours, or tcpdump's with the
// raw-IP linktype) through a sink without materializing a Trace.
// clientAddr identifies the vantage point so directions can be
// restored. The sink is not closed; the caller finalizes it.
func StreamPcap(r io.Reader, clientAddr [4]byte, s Sink) error {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return err
	}
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		seg, err := packet.Parse(rec.Data)
		if err != nil {
			continue // non-TCP noise in a real capture
		}
		d := Up
		if seg.Dst.Addr == clientAddr {
			d = Down
		}
		s.Capture(rec.TS, d, seg)
	}
}
