// Package runner executes batches of independent simulation jobs on a
// worker pool. Every session is a fully seeded, single-threaded
// discrete-event simulation, so sessions are embarrassingly parallel:
// the pool fans jobs out across cores and returns results in
// submission order, which keeps experiment artifacts byte-identical to
// a sequential run regardless of the worker count.
package runner

import (
	"runtime"
	"sync"

	"repro/internal/session"
)

// Options configures a pool.
type Options struct {
	// Workers is the number of concurrent jobs; <= 0 means
	// runtime.NumCPU().
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Map applies fn to every item on a pool of workers and returns the
// results indexed exactly like items. fn must be safe to call
// concurrently for distinct items; determinism is the caller's
// responsibility and in this repository comes from per-job seeds.
func Map[T, R any](o Options, items []T, fn func(i int, item T) R) []R {
	n := len(items)
	out := make([]R, n)
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, item := range items {
			out[i] = fn(i, item)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i, items[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Sessions runs every session.Config on the pool and returns the
// results in submission order. Each config carries its own seed, so
// the outcome is bit-identical for any worker count.
func Sessions(o Options, cfgs []session.Config) []*session.Result {
	return Map(o, cfgs, func(_ int, cfg session.Config) *session.Result {
		return session.Run(cfg)
	})
}
