// Package runner executes batches of independent simulation jobs on a
// worker pool. Every session is a fully seeded, single-threaded
// discrete-event simulation, so sessions are embarrassingly parallel:
// the pool fans jobs out across cores and returns results in
// submission order, which keeps experiment artifacts byte-identical to
// a sequential run regardless of the worker count.
package runner

import (
	"runtime"
	"sync"

	"repro/internal/session"
)

// Options configures a pool.
type Options struct {
	// Workers is the number of concurrent jobs; <= 0 means
	// runtime.NumCPU().
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// NumWorkers reports the resolved worker count Map and MapN run with —
// the upper bound on the worker indexes MapN passes to fn, so callers
// can size per-worker state up front.
func (o Options) NumWorkers() int { return o.workers() }

// Map applies fn to every item on a pool of workers and returns the
// results indexed exactly like items. fn must be safe to call
// concurrently for distinct items; determinism is the caller's
// responsibility and in this repository comes from per-job seeds.
func Map[T, R any](o Options, items []T, fn func(i int, item T) R) []R {
	n := len(items)
	out := make([]R, n)
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, item := range items {
			out[i] = fn(i, item)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i, items[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// MapN applies fn to every index in [0, n) on a pool of workers,
// passing the stable worker index the call runs on. Workers own
// disjoint index sets at any instant, so fn may reuse per-worker state
// (a recycled simulation world) keyed by the worker index without
// locking. Like Map, indexes are handed out in order; result placement
// and determinism are the caller's responsibility.
func MapN(o Options, n int, fn func(worker, i int)) {
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				fn(worker, i)
			}
		}(k)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Sessions runs every session.Config on the pool and returns the
// results in submission order. Each config carries its own seed, so
// the outcome is bit-identical for any worker count.
func Sessions(o Options, cfgs []session.Config) []*session.Result {
	return Map(o, cfgs, func(_ int, cfg session.Config) *session.Result {
		return session.Run(cfg)
	})
}
