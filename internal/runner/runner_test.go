package runner_test

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/runner"
	"repro/internal/session"
)

// TestMapOrderAndCoverage exercises batch sizes below, equal to and
// above the worker count: results must come back in submission order
// with every item processed exactly once.
func TestMapOrderAndCoverage(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{2, 4},  // fewer jobs than workers
		{4, 4},  // equal
		{13, 4}, // more jobs than workers
		{5, 1},  // sequential fallback
		{0, 4},  // empty batch
	} {
		items := make([]int, tc.n)
		for i := range items {
			items[i] = i * 10
		}
		out := runner.Map(runner.Options{Workers: tc.workers}, items, func(i int, item int) int {
			return item + i
		})
		if len(out) != tc.n {
			t.Fatalf("n=%d workers=%d: got %d results", tc.n, tc.workers, len(out))
		}
		for i, v := range out {
			if v != i*10+i {
				t.Fatalf("n=%d workers=%d: out[%d] = %d, want %d", tc.n, tc.workers, i, v, i*10+i)
			}
		}
	}
}

// TestSessionsDeterministicAcrossWorkerCounts runs the same seeded
// batch on pools of different sizes; every session result must be
// bit-identical because each config carries its own seed.
func TestSessionsDeterministicAcrossWorkerCounts(t *testing.T) {
	videos := []media.Video{
		{ID: 1, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"},
		{ID: 2, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.HTML5, Resolution: "360p"},
		{ID: 3, EncodingRate: 2e6, Duration: 240 * time.Second, Container: media.Flash, Resolution: "360p"},
	}
	build := func() []session.Config {
		return []session.Config{
			{Video: videos[0], Service: session.YouTube, Player: player.NewFlashPlayer("Internet Explorer"), Network: netem.Research, Seed: 11, Duration: 45 * time.Second},
			{Video: videos[1], Service: session.YouTube, Player: player.NewIEHtml5(), Network: netem.Residence, Seed: 12, Duration: 45 * time.Second},
			{Video: videos[2], Service: session.YouTube, Player: player.NewChromeHtml5(), Network: netem.Home, Seed: 13, Duration: 45 * time.Second},
		}
	}
	seq := runner.Sessions(runner.Options{Workers: 1}, build())
	par := runner.Sessions(runner.Options{Workers: 8}, build())
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Downloaded != b.Downloaded {
			t.Fatalf("session %d: downloaded %d (1 worker) vs %d (8 workers)", i, a.Downloaded, b.Downloaded)
		}
		if a.Packets != b.Packets {
			t.Fatalf("session %d: packet count %d vs %d", i, a.Packets, b.Packets)
		}
		if a.Analysis.Strategy != b.Analysis.Strategy {
			t.Fatalf("session %d: strategy %v vs %v", i, a.Analysis.Strategy, b.Analysis.Strategy)
		}
		if a.Analysis.TotalBytes != b.Analysis.TotalBytes {
			t.Fatalf("session %d: bytes %d vs %d", i, a.Analysis.TotalBytes, b.Analysis.TotalBytes)
		}
	}
}

// testOpts builds experiment options sized for a fast but meaningful
// byte-identity check.
func testOpts(workers int) experiments.Options {
	return experiments.Options{N: 2, Seed: 3, Duration: 40 * time.Second, Workers: workers}
}

// TestTable1ArtifactByteIdentical is the tentpole's hard constraint:
// the printable Table 1 artifact must not change with the pool size.
func TestTable1ArtifactByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq := experiments.Table1(testOpts(1)).Artifact.String()
	par := experiments.Table1(testOpts(8)).Artifact.String()
	if seq != par {
		t.Fatalf("Table1 artifact differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestFigure2ArtifactByteIdentical covers a figure with interleaved
// series output.
func TestFigure2ArtifactByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq := experiments.Figure2(testOpts(1)).Artifact.String()
	par := experiments.Figure2(testOpts(8)).Artifact.String()
	if seq != par {
		t.Fatalf("Figure2 artifact differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestScenarioRateDropArtifactByteIdentical extends the worker-count
// invariant to the dynamics scenarios: timelines fire through the same
// per-session schedulers, so the artifact must not depend on the pool.
func TestScenarioRateDropArtifactByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq := experiments.ScenarioRateDrop(testOpts(1)).Artifact.String()
	par := experiments.ScenarioRateDrop(testOpts(8)).Artifact.String()
	if seq != par {
		t.Fatalf("ScenarioRateDrop artifact differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestScenarioFlashCrowdArtifactByteIdentical covers the
// shared-bottleneck (netem.Dumbbell) path: each strategy is one
// single-threaded simulation, fanned out per strategy, so the crowd
// artifact must also be pool-size independent.
func TestScenarioFlashCrowdArtifactByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq := experiments.ScenarioFlashCrowd(testOpts(1)).Artifact.String()
	par := experiments.ScenarioFlashCrowd(testOpts(8)).Artifact.String()
	if seq != par {
		t.Fatalf("ScenarioFlashCrowd artifact differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestAggregateLossArtifactByteIdentical closes the Dumbbell coverage
// gap: before this PR only flat-link experiments were diffed across
// worker counts.
func TestAggregateLossArtifactByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq := experiments.AggregateLoss(testOpts(1)).Artifact.String()
	par := experiments.AggregateLoss(testOpts(8)).Artifact.String()
	if seq != par {
		t.Fatalf("AggregateLoss artifact differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
