package service

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

type world struct {
	sch            *sim.Scheduler
	client, server *tcp.Host
}

func newWorld(seed int64) *world {
	sch := sim.NewScheduler(seed)
	client := tcp.NewHost(sch, 10, 0, 0, 1)
	server := tcp.NewHost(sch, 203, 0, 113, 10)
	prof := netem.Profile{Name: "t", Down: 50 * netem.Mbps, Up: 50 * netem.Mbps, RTT: 20 * time.Millisecond}
	path := netem.NewPath(sch, prof, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	return &world{sch: sch, client: client, server: server}
}

func (w *world) get(path string, headers map[string]string, recvBuf int) (*httpx.Response, int, []byte) {
	cc := httpx.NewClientConn(w.client.Dial(tcp.Config{RecvBuf: recvBuf}, packet.EP(203, 0, 113, 10, 80)))
	var resp *httpx.Response
	var first []byte
	got := 0
	cc.OnResponse(func(r *httpx.Response) { resp = r })
	cc.OnBody(func(avail int) {
		if len(first) < 64 {
			buf := make([]byte, 64-len(first))
			n := cc.ReadBody(buf)
			first = append(first, buf[:n]...)
		}
		got += cc.DiscardBody(1 << 30)
	})
	cc.Get(path, headers)
	w.sch.RunUntil(w.sch.Now() + 3*time.Minute)
	return resp, got + len(first), first
}

func flashVideo() media.Video {
	return media.Video{ID: 5, EncodingRate: 1e6, Duration: 60 * time.Second, Container: media.Flash, Resolution: "360p"}
}

func TestYouTubeServesFullFlashVideo(t *testing.T) {
	w := newWorld(1)
	v := flashVideo()
	NewYouTube(w.server, tcp.Config{}, []media.Video{v})
	resp, got, first := w.get(VideoPath(v.ID), nil, 1<<20)
	if resp == nil || resp.Status != 200 {
		t.Fatalf("resp = %+v", resp)
	}
	want := v.Size() + int64(media.FLVHeaderSize)
	if resp.ContentLength != want {
		t.Fatalf("content length %d, want %d", resp.ContentLength, want)
	}
	if int64(got) != want {
		t.Fatalf("received %d, want %d (pacing must finish within 3 min for a 60 s video)", got, want)
	}
	info, err := media.ParseHeader(first)
	if err != nil || info.Container != media.Flash || info.EncodingRate != 1e6 {
		t.Fatalf("body header = %+v, %v", info, err)
	}
	if resp.Headers["content-type"] != "video/x-flv" {
		t.Fatalf("content type %q", resp.Headers["content-type"])
	}
}

func TestYouTubeRangeRequests(t *testing.T) {
	w := newWorld(2)
	v := flashVideo()
	v.Container = media.HTML5
	NewYouTube(w.server, tcp.Config{}, []media.Video{v})
	resp, got, first := w.get(VideoPath(v.ID), map[string]string{"Range": "bytes=0-65535"}, 1<<20)
	if resp == nil || resp.Status != 206 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.ContentLength != 65536 || got != 65536 {
		t.Fatalf("range response %d bytes, got %d", resp.ContentLength, got)
	}
	if info, err := media.ParseHeader(first); err != nil || info.Container != media.HTML5 {
		t.Fatalf("range at 0 must include the container header: %+v %v", info, err)
	}
	// Mid-file range carries no header, just media bytes.
	resp2, got2, _ := w.get(VideoPath(v.ID), map[string]string{"Range": "bytes=100000-165535"}, 1<<20)
	if resp2 == nil || resp2.Status != 206 || got2 != 65536 {
		t.Fatalf("mid range: %+v got %d", resp2, got2)
	}
	// Open-ended range.
	resp3, _, _ := w.get(VideoPath(v.ID), map[string]string{"Range": "bytes=7000000-"}, 1<<20)
	fileSize := v.Size() + int64(media.WebMHeaderSize)
	if resp3 == nil || resp3.ContentLength != fileSize-7000000 {
		t.Fatalf("open range: %+v", resp3)
	}
}

func TestYouTube404s(t *testing.T) {
	w := newWorld(3)
	NewYouTube(w.server, tcp.Config{}, nil)
	resp, _, _ := w.get("/videoplayback/999", nil, 1<<20)
	if resp == nil || resp.Status != 404 {
		t.Fatalf("missing video: %+v", resp)
	}
	resp2, _, _ := w.get("/bogus", nil, 1<<20)
	if resp2 == nil || resp2.Status != 404 {
		t.Fatalf("bogus path: %+v", resp2)
	}
	// Invalid range on an existing video.
	y := NewYouTube(w.server, tcp.Config{}, nil)
	_ = y
}

func TestYouTubePacingRate(t *testing.T) {
	// A 1 Mbps Flash video must arrive at ~1.25 Mbps after the burst,
	// NOT at line rate.
	w := newWorld(4)
	v := media.Video{ID: 6, EncodingRate: 1e6, Duration: 600 * time.Second, Container: media.Flash, Resolution: "360p"}
	NewYouTube(w.server, tcp.Config{}, []media.Video{v})
	cc := httpx.NewClientConn(w.client.Dial(tcp.Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80)))
	got := 0
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	cc.Get(VideoPath(v.ID), nil)
	// The burst completes within ~2 s at 50 Mbps; measure it early so
	// steady-state blocks don't blur it.
	w.sch.RunUntil(3 * time.Second)
	atBurst := got
	w.sch.RunUntil(103 * time.Second)
	rate := float64(got-atBurst) * 8 / 100
	if rate < 1.0e6 || rate > 1.5e6 {
		t.Fatalf("steady rate %.2f Mbps, want ~1.25", rate/1e6)
	}
	// The burst itself is ~40 s of playback (plus ~2 s of blocks).
	if pb := float64(atBurst) * 8 / 1e6; pb < 30 || pb > 55 {
		t.Fatalf("burst = %.0f s of playback, want ~40", pb)
	}
}

func TestYouTubeHDUnpaced(t *testing.T) {
	w := newWorld(5)
	v := media.Video{ID: 7, EncodingRate: 4e6, Duration: 120 * time.Second, Container: media.Flash, Resolution: "720p"}
	NewYouTube(w.server, tcp.Config{}, []media.Video{v})
	cc := httpx.NewClientConn(w.client.Dial(tcp.Config{RecvBuf: 4 << 20}, packet.EP(203, 0, 113, 10, 80)))
	got := 0
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	cc.Get(VideoPath(v.ID), nil)
	w.sch.RunUntil(20 * time.Second)
	// 60 MB at 50 Mbps line rate ≈ 10 s; a paced server would need 2 min.
	if int64(got) < v.Size() {
		t.Fatalf("HD download incomplete after 20 s: %d/%d (must be unpaced)", got, v.Size())
	}
}

func TestNetflixFragments(t *testing.T) {
	w := newWorld(6)
	v := media.Video{ID: 8, EncodingRate: 3800e3, Duration: 10 * time.Minute, Container: media.Silverlight}
	NewNetflix(w.server, tcp.Config{}, []media.Video{v})
	rate := media.NetflixLadder[2]
	resp, got, first := w.get(FragPath(v.ID, rate, 0), nil, 1<<20)
	if resp == nil || resp.Status != 200 {
		t.Fatalf("resp = %+v", resp)
	}
	want := FragmentBytes(rate)
	if resp.ContentLength != want || int64(got) != want {
		t.Fatalf("fragment %d bytes (CL %d), want %d", got, resp.ContentLength, want)
	}
	info, err := media.ParseHeader(first)
	if err != nil || info.Container != media.Silverlight || info.EncodingRate != rate {
		t.Fatalf("fragment header: %+v %v", info, err)
	}
	if info.Duration != FragmentDuration {
		t.Fatalf("fragment duration %v", info.Duration)
	}
}

func TestNetflixFragment404s(t *testing.T) {
	w := newWorld(7)
	v := media.Video{ID: 9, EncodingRate: 3800e3, Duration: 1 * time.Minute, Container: media.Silverlight}
	NewNetflix(w.server, tcp.Config{}, []media.Video{v})
	// Index beyond the movie.
	if resp, _, _ := w.get(FragPath(v.ID, 1600e3, 9999), nil, 1<<20); resp == nil || resp.Status != 404 {
		t.Fatalf("beyond-end fragment: %+v", resp)
	}
	if resp, _, _ := w.get("/frag/9/abc/0", nil, 1<<20); resp == nil || resp.Status != 404 {
		t.Fatalf("bad bitrate: %+v", resp)
	}
	if resp, _, _ := w.get("/frag/777/1600/0", nil, 1<<20); resp == nil || resp.Status != 404 {
		t.Fatalf("unknown video: %+v", resp)
	}
	if resp, _, _ := w.get("/frag/9/1600", nil, 1<<20); resp == nil || resp.Status != 404 {
		t.Fatalf("short path: %+v", resp)
	}
}

func TestPathBuilders(t *testing.T) {
	if VideoPath(42) != "/videoplayback/42" {
		t.Fatal(VideoPath(42))
	}
	if FragPath(7, 1600e3, 3) != "/frag/7/1600/3" {
		t.Fatal(FragPath(7, 1600e3, 3))
	}
	if FragmentBytes(1600e3) != int64(1600e3/8*4)+media.MP4FragHeader {
		t.Fatal("FragmentBytes")
	}
}

func TestAddVideo(t *testing.T) {
	w := newWorld(8)
	y := NewYouTube(w.server, tcp.Config{}, nil)
	v := flashVideo()
	y.AddVideo(v)
	resp, _, _ := w.get(VideoPath(v.ID), nil, 1<<20)
	if resp == nil || resp.Status != 200 {
		t.Fatalf("added video not served: %+v", resp)
	}
}

func ladderVideo() media.Video {
	return media.Video{
		ID: 7, Duration: 120 * time.Second, Container: media.Silverlight,
		Resolution: "adaptive",
	}.WithLadder(media.NetflixLadder...)
}

func TestYouTubeRenditionResource(t *testing.T) {
	w := newWorld(21)
	v := ladderVideo()
	v.Container = media.HTML5
	NewYouTube(w.server, tcp.Config{}, []media.Video{v})

	// Full fetch of the bottom rung: size must reflect that rung's
	// bitrate, not the top one's.
	rung0 := v.AtRung(0)
	wantSize := int64(media.WebMHeaderSize) + rung0.Size()
	resp, got, _ := w.get(RenditionPath(v.ID, rung0.EncodingRate), nil, 1<<20)
	if resp == nil || resp.Status != 200 {
		t.Fatalf("rendition fetch: %+v", resp)
	}
	if int64(got) != wantSize {
		t.Fatalf("rendition body = %d bytes, want %d", got, wantSize)
	}

	// A byte range on a rung.
	resp, got, _ = w.get(RenditionPath(v.ID, rung0.EncodingRate),
		map[string]string{"Range": "bytes=100-1123"}, 1<<20)
	if resp == nil || resp.Status != 206 || got != 1024 {
		t.Fatalf("range on rendition: %+v, %d bytes", resp, got)
	}
	if cr := resp.Headers["content-range"]; cr == "" {
		t.Fatal("206 without Content-Range")
	}

	// Suffix range: the last 512 bytes.
	resp, got, _ = w.get(RenditionPath(v.ID, rung0.EncodingRate),
		map[string]string{"Range": "bytes=-512"}, 1<<20)
	if resp == nil || resp.Status != 206 || got != 512 {
		t.Fatalf("suffix range: %+v, %d bytes", resp, got)
	}

	// Range past EOF: 416 with an empty body.
	resp, got, _ = w.get(RenditionPath(v.ID, rung0.EncodingRate),
		map[string]string{"Range": fmt.Sprintf("bytes=%d-", wantSize)}, 1<<20)
	if resp == nil || resp.Status != 416 || got != 0 {
		t.Fatalf("past-EOF range: %+v, %d bytes", resp, got)
	}

	// A bitrate off the ladder is not a resource.
	resp, _, _ = w.get(RenditionPath(v.ID, 777e3), nil, 1<<20)
	if resp == nil || resp.Status != 404 {
		t.Fatalf("off-ladder rendition: %+v", resp)
	}
}

func TestNetflixLadderValidation(t *testing.T) {
	w := newWorld(22)
	v := ladderVideo()
	NewNetflix(w.server, tcp.Config{}, []media.Video{v})

	// Every ladder rung serves fragments.
	resp, got, first := w.get(FragPath(v.ID, v.Renditions[0], 0), nil, 1<<20)
	if resp == nil || resp.Status != 200 {
		t.Fatalf("ladder fragment: %+v", resp)
	}
	if int64(got) != FragmentBytes(v.Renditions[0]) {
		t.Fatalf("fragment size %d, want %d", got, FragmentBytes(v.Renditions[0]))
	}
	if rate := media.FragHeaderRate(first); rate != v.Renditions[0] {
		t.Fatalf("fragment header announces %v bps, want %v", rate, v.Renditions[0])
	}

	// An off-ladder rate is rejected for ladder-carrying videos.
	resp, _, _ = w.get(FragPath(v.ID, 777e3, 0), nil, 1<<20)
	if resp == nil || resp.Status != 404 {
		t.Fatalf("off-ladder fragment: %+v", resp)
	}

	// Legacy single-bitrate entries keep accepting any rate (the
	// Table-1 Netflix clients request NetflixLadder rates against
	// catalog entries that carry no explicit ladder).
	legacy := media.Video{ID: 8, EncodingRate: 3.8e6, Duration: 60 * time.Second, Container: media.Silverlight}
	w2 := newWorld(23)
	NewNetflix(w2.server, tcp.Config{}, []media.Video{legacy})
	resp, _, _ = w2.get(FragPath(legacy.ID, 1600e3, 0), nil, 1<<20)
	if resp == nil || resp.Status != 200 {
		t.Fatalf("legacy any-rate fragment: %+v", resp)
	}
}

func TestCatalogRendition(t *testing.T) {
	c := NewCatalog([]media.Video{ladderVideo()})
	if _, ok := c.Rendition(7, 1600e3); !ok {
		t.Fatal("ladder rung not resolvable")
	}
	if rv, ok := c.Rendition(7, 500e3); !ok || rv.EncodingRate != 500e3 {
		t.Fatalf("rendition view = %+v, %v", rv, ok)
	}
	if _, ok := c.Rendition(7, 123e3); ok {
		t.Fatal("off-ladder rate resolved")
	}
	if _, ok := c.Rendition(99, 500e3); ok {
		t.Fatal("unknown id resolved")
	}
}
