// Package service implements the server side of the two streaming
// services as the paper characterizes them (Section 5):
//
//   - YouTube, Flash container at default resolutions: the SERVER
//     paces the transfer — a burst worth ~40 s of playback, then 64 kB
//     blocks at 1.25x the encoding rate (Figures 3a and 4).
//   - YouTube, Flash HD (720p): no server pacing at all (Figure 8).
//   - YouTube, HTML5/WebM: no server pacing — "the YouTube servers do
//     not explicitly control the data transfer rate" — so the traffic
//     shape is whatever the client's read behaviour produces.
//   - Netflix: a CDN serving MP4-style fragments of every ladder
//     bitrate; all pacing comes from the client's fragment requests.
package service

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpx"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// YouTube server-pacing parameters measured by the paper.
const (
	// FlashBlockBytes is the dominant steady-state block (Figure 4a).
	FlashBlockBytes = 64 << 10
	// FlashAccumulation is the target accumulation ratio (Figure 4b).
	FlashAccumulation = 1.25
	// FlashBurstSeconds is the playback time pushed during the
	// buffering phase (Figure 3a).
	FlashBurstSeconds = 40.0
)

// FragmentDuration is the Netflix fragment length.
const FragmentDuration = 4 * time.Second

// Catalog is the id→video lookup both services share: one map from
// video IDs to their metadata, independent of which front end serves
// the bytes.
type Catalog struct {
	vids map[int]media.Video
}

// NewCatalog builds a catalog over the given videos.
func NewCatalog(videos []media.Video) *Catalog {
	c := &Catalog{vids: make(map[int]media.Video, len(videos))}
	for _, v := range videos {
		c.vids[v.ID] = v
	}
	return c
}

// Add registers one more entry.
func (c *Catalog) Add(v media.Video) { c.vids[v.ID] = v }

// Reset empties the catalog, keeping the map's capacity. Recycled cell
// worlds refill per cell because video IDs encode the global client
// index.
func (c *Catalog) Reset() { clear(c.vids) }

// Get looks an entry up.
func (c *Catalog) Get(id int) (media.Video, bool) {
	v, ok := c.vids[id]
	return v, ok
}

// Rendition resolves id at the given bitrate (bps): the per-rendition
// view of the entry when the rate is a ladder rung, ok=false
// otherwise.
func (c *Catalog) Rendition(id int, rate float64) (media.Video, bool) {
	v, ok := c.vids[id]
	if !ok {
		return media.Video{}, false
	}
	i := v.RungIndex(rate)
	if i < 0 {
		return media.Video{}, false
	}
	return v.AtRung(i), true
}

// YouTube is the simulated YouTube front end.
type YouTube struct {
	sch *sim.Scheduler
	cat *Catalog
}

// NewYouTube registers the service on host:80 and returns it. The
// catalog maps video IDs to their metadata.
func NewYouTube(host *tcp.Host, cfg tcp.Config, videos []media.Video) *YouTube {
	y := &YouTube{sch: host.Scheduler(), cat: NewCatalog(videos)}
	httpx.NewServer(host, 80, cfg, y.handle)
	return y
}

// AddVideo registers one more catalog entry.
func (y *YouTube) AddVideo(v media.Video) { y.cat.Add(v) }

// ResetCatalog empties the catalog for the next population. The
// listener registration survives — it lives on the host.
func (y *YouTube) ResetCatalog() { y.cat.Reset() }

// handle serves /videoplayback/<id> (the legacy single-bitrate
// resource, server-paced for Flash at default resolutions) and
// /videoplayback/<id>/<kbps> (a per-rendition resource at one ladder
// rung, always client-driven — the DASH-over-ranges surface the ABR
// player pulls byte ranges from).
func (y *YouTube) handle(req *httpx.Request, w httpx.ResponseWriter) {
	rest := strings.TrimPrefix(req.Path, "/videoplayback/")
	if idStr, kbpsStr, isRendition := strings.Cut(rest, "/"); isRendition {
		y.handleRendition(req, w, idStr, kbpsStr)
		return
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	v, ok := y.cat.Get(id)
	if !ok {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	header := media.HeaderFor(v)
	fileSize := int64(len(header)) + v.Size()

	start, end, hasRange := req.Range()
	if hasRange {
		if end < 0 || end >= fileSize {
			end = fileSize - 1
		}
		if start < 0 || start > end {
			w.WriteHeader(404, map[string]string{"Content-Length": "0"})
			return
		}
		n := end - start + 1
		w.WriteHeader(206, map[string]string{
			"Content-Length": strconv.FormatInt(n, 10),
			"Content-Range":  fmt.Sprintf("bytes %d-%d/%d", start, end, fileSize),
			"Content-Type":   contentType(v),
		})
		writeFileSlice(w, header, start, n)
		return
	}

	w.WriteHeader(200, map[string]string{
		"Content-Length": strconv.FormatInt(fileSize, 10),
		"Content-Type":   contentType(v),
	})
	if v.Container == media.Flash && v.Resolution != "720p" {
		y.servePaced(w, v, header, fileSize)
		return
	}
	// HD and WebM: dump the whole file; any rate limiting is the
	// client's problem (or nobody's — Figure 8).
	w.Write(header)
	w.WriteZero(int(fileSize) - len(header))
}

// handleRendition serves one rung of the rendition ladder as its own
// byte-addressable resource. No server pacing ever applies — rate
// control at a rendition endpoint is the client's request schedule —
// and the full Range grammar is honoured: suffix ranges, ranges
// clamped at EOF, 416 for unsatisfiable ones.
func (y *YouTube) handleRendition(req *httpx.Request, w httpx.ResponseWriter, idStr, kbpsStr string) {
	id, err1 := strconv.Atoi(idStr)
	kbps, err2 := strconv.Atoi(kbpsStr)
	if err1 != nil || err2 != nil {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	rv, ok := y.cat.Rendition(id, float64(kbps)*1000)
	if !ok {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	header := media.HeaderFor(rv)
	fileSize := int64(len(header)) + rv.Size()
	start, n, hasRange, rangeOK := req.ResolveRange(fileSize)
	if hasRange && !rangeOK {
		w.WriteHeader(416, map[string]string{
			"Content-Length": "0",
			"Content-Range":  fmt.Sprintf("bytes */%d", fileSize),
		})
		return
	}
	if hasRange {
		w.WriteHeader(206, map[string]string{
			"Content-Length": strconv.FormatInt(n, 10),
			"Content-Range":  fmt.Sprintf("bytes %d-%d/%d", start, start+n-1, fileSize),
			"Content-Type":   contentType(rv),
		})
		writeFileSlice(w, header, start, n)
		return
	}
	w.WriteHeader(200, map[string]string{
		"Content-Length": strconv.FormatInt(fileSize, 10),
		"Content-Type":   contentType(rv),
	})
	w.Write(header)
	w.WriteZero(int(fileSize) - len(header))
}

// servePaced implements the Flash strategy: initial burst then 64 kB
// blocks on a timer, targeting accumulation ratio 1.25.
func (y *YouTube) servePaced(w httpx.ResponseWriter, v media.Video, header []byte, fileSize int64) {
	// Burst: ~40 s of playback (small jitter keeps the correlation
	// with the encoding rate at ~0.85 rather than exactly 1).
	jitter := 0.95 + 0.1*y.sch.Rand().Float64()
	burst := int64(FlashBurstSeconds * jitter * v.EncodingRate / 8)
	if burst > fileSize {
		burst = fileSize
	}
	w.Write(header)
	w.WriteZero(int(burst) - len(header))
	sent := burst
	if sent >= fileSize {
		return
	}
	period := time.Duration(float64(FlashBlockBytes) * 8 / (FlashAccumulation * v.EncodingRate) * float64(time.Second))
	conn := w.Conn()
	var tick func()
	tick = func() {
		if conn.ConnState() == tcp.StateClosed {
			return
		}
		n := int64(FlashBlockBytes)
		if n > fileSize-sent {
			n = fileSize - sent
		}
		w.WriteZero(int(n))
		sent += n
		if sent < fileSize {
			y.sch.After(period, tick)
		}
	}
	y.sch.After(period, tick)
}

func contentType(v media.Video) string {
	switch v.Container {
	case media.Flash:
		return "video/x-flv"
	case media.HTML5:
		return "video/webm"
	default:
		return "video/mp4"
	}
}

// writeFileSlice emits bytes [start, start+n) of the virtual file
// (container header followed by zero media bytes).
func writeFileSlice(w httpx.ResponseWriter, header []byte, start, n int64) {
	if start < int64(len(header)) {
		take := int64(len(header)) - start
		if take > n {
			take = n
		}
		w.Write(header[start : start+take])
		n -= take
	}
	if n > 0 {
		w.WriteZero(int(n))
	}
}

// Netflix is the simulated Netflix CDN.
type Netflix struct {
	cat *Catalog
}

// NewNetflix registers the CDN on host:80.
func NewNetflix(host *tcp.Host, cfg tcp.Config, videos []media.Video) *Netflix {
	n := &Netflix{cat: NewCatalog(videos)}
	httpx.NewServer(host, 80, cfg, n.handle)
	return n
}

// AddVideo registers one more catalog entry.
func (n *Netflix) AddVideo(v media.Video) { n.cat.Add(v) }

// ResetCatalog empties the catalog for the next population. The
// listener registration survives — it lives on the host.
func (n *Netflix) ResetCatalog() { n.cat.Reset() }

// FragmentBytes returns the byte size of one fragment at the given
// ladder bitrate (bps), including its header.
func FragmentBytes(bitrate float64) int64 {
	return int64(bitrate/8*FragmentDuration.Seconds()) + media.MP4FragHeader
}

// handle serves /frag/<id>/<bitrateKbps>/<index>. The whole fragment
// is written at once — Netflix's rate control lives in the client's
// request schedule (Akhshabi et al. [11]). A video carrying an
// explicit rendition ladder only serves fragments at its rungs;
// legacy single-bitrate entries accept any rate, the historical
// behaviour the Table-1 clients rely on.
func (n *Netflix) handle(req *httpx.Request, w httpx.ResponseWriter) {
	parts := strings.Split(strings.TrimPrefix(req.Path, "/frag/"), "/")
	if len(parts) != 3 {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	id, err1 := strconv.Atoi(parts[0])
	kbps, err2 := strconv.Atoi(parts[1])
	idx, err3 := strconv.Atoi(parts[2])
	v, ok := n.cat.Get(id)
	if err1 != nil || err2 != nil || err3 != nil || !ok {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	bitrate := float64(kbps) * 1000
	if len(v.Renditions) > 0 && v.RungIndex(bitrate) < 0 {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	total := int(v.Duration / FragmentDuration)
	if idx >= total {
		w.WriteHeader(404, map[string]string{"Content-Length": "0"})
		return
	}
	size := FragmentBytes(bitrate)
	w.WriteHeader(200, map[string]string{
		"Content-Length": strconv.FormatInt(size, 10),
		"Content-Type":   "video/mp4",
	})
	hdr := media.EncodeMP4FragHeader(v, bitrate, FragmentDuration)
	w.Write(hdr)
	w.WriteZero(int(size) - len(hdr))
}

// FragPath builds the request path for a fragment.
func FragPath(videoID int, bitrate float64, index int) string {
	return fmt.Sprintf("/frag/%d/%d/%d", videoID, int(bitrate/1000), index)
}

// VideoPath builds the request path for a YouTube video.
func VideoPath(videoID int) string {
	return fmt.Sprintf("/videoplayback/%d", videoID)
}

// RenditionPath builds the request path for one rung of a YouTube
// video's rendition ladder.
func RenditionPath(videoID int, bitrate float64) string {
	return fmt.Sprintf("/videoplayback/%d/%d", videoID, int(bitrate/1000))
}
