package model

import (
	"math"
	"testing"
	"testing/quick"
)

func params() Params {
	return Params{
		Lambda:       0.2,  // sessions/s
		MeanRate:     1e6,  // 1 Mbps
		MeanDuration: 240,  // 4 min
		MeanDownRate: 10e6, // 10 Mbps during ON periods
	}
}

func TestClosedForms(t *testing.T) {
	p := params()
	if m := MeanAggregate(p); m != 0.2*1e6*240 {
		t.Fatalf("E[R] = %v", m)
	}
	if v := VarAggregate(p); v != 0.2*1e6*240*10e6 {
		t.Fatalf("Var[R] = %v", v)
	}
	d := Dimension(p, 2)
	if d <= MeanAggregate(p) {
		t.Fatal("dimensioning must exceed the mean")
	}
	want := MeanAggregate(p) + 2*math.Sqrt(VarAggregate(p))
	if math.Abs(d-want) > 1e-6 {
		t.Fatalf("Dimension = %v, want %v", d, want)
	}
}

func TestCoVDecreasesWithEncodingRate(t *testing.T) {
	// The paper's smoothness claim: raising E[e] raises the mean
	// linearly but the std only by sqrt, so CoV falls.
	lo, hi := params(), params()
	hi.MeanRate = 4 * lo.MeanRate
	if !(CoV(hi) < CoV(lo)) {
		t.Fatalf("CoV(4x rate) = %v, CoV(1x) = %v; want smoother", CoV(hi), CoV(lo))
	}
	// Specifically, 4x the rate halves the CoV.
	if r := CoV(hi) / CoV(lo); math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("CoV ratio = %v, want 0.5", r)
	}
}

func TestInterruptionThresholdWorkedExample(t *testing.T) {
	// Section 6.2's worked example: B' = 40 s, k = 1.25, β = 0.2
	// gives L = 53.3 s.
	got := InterruptionThreshold(40, 1.25, 0.2)
	if math.Abs(got-53.333) > 0.01 {
		t.Fatalf("threshold = %v, want 53.33", got)
	}
	if !math.IsInf(InterruptionThreshold(40, 5, 0.25), 1) {
		t.Fatal("k*beta >= 1 must give +Inf")
	}
}

func TestUnusedBytes(t *testing.T) {
	// A short video fully downloaded before the user quits at 20%.
	s := Session{Rate: 1e6, Duration: 50, Buffer: 40, Accum: 1.25, Beta: 0.2}
	// Downloaded = min(40·e + 1.25·e·10, e·50) = e·50 (whole video);
	// used = e·10; unused = e·40.
	if got, want := UnusedBytes(s), 1e6*40.0; math.Abs(got-want) > 1 {
		t.Fatalf("unused = %v, want %v", got, want)
	}
	// A long video: download truncated at interruption.
	s.Duration = 1000
	// Downloaded = e·(40 + 1.25·200) = e·290, used = e·200 -> e·90.
	if got, want := UnusedBytes(s), 1e6*90.0; math.Abs(got-want) > 1 {
		t.Fatalf("unused = %v, want %v", got, want)
	}
	// Watching everything wastes nothing beyond... beta→1 with k=1:
	s = Session{Rate: 1e6, Duration: 100, Buffer: 0, Accum: 1, Beta: 0.999}
	if got := UnusedBytes(s); got > 1e6*0.2 {
		t.Fatalf("near-full watch should waste ~0, got %v", got)
	}
}

func TestWasteRate(t *testing.T) {
	draw := func(i int) Session {
		return Session{Rate: 1e6, Duration: 1000, Buffer: 40, Accum: 1.25, Beta: 0.2}
	}
	got := WasteRate(0.1, 100, draw)
	want := 0.1 * 1e6 * 90 // λ·E[unused]
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("waste = %v, want %v", got, want)
	}
	if WasteRate(0.1, 0, draw) != 0 {
		t.Fatal("empty population must waste 0")
	}
}

func simCfg(s Strategy) SimConfig {
	return SimConfig{
		Params:     params(),
		Strategy:   s,
		BlockBits:  64 << 13, // 64 kB in bits
		Accum:      1.25,
		Horizon:    12000,
		Step:       1,
		Seed:       7,
		RateJitter: 0.3,
		DurJitter:  0.3,
	}
}

func TestSimulateMatchesMeanFormula(t *testing.T) {
	for _, s := range []Strategy{Bulk, ShortCycles, LongCycles} {
		cfg := simCfg(s)
		if s == LongCycles {
			cfg.BlockBits = 4 << 23 // 4 MB in bits
		}
		res := Simulate(cfg)
		want := MeanAggregate(cfg.Params)
		if rel := math.Abs(res.Mean-want) / want; rel > 0.08 {
			t.Errorf("%v: mean %.3g vs formula %.3g (%.1f%% off)", s, res.Mean, want, rel*100)
		}
	}
}

func TestSimulateVarianceStrategyIndependent(t *testing.T) {
	// Section 6.1's main claim: mean AND variance do not depend on the
	// streaming strategy.
	var got []SimResult
	for _, s := range []Strategy{Bulk, ShortCycles, LongCycles} {
		cfg := simCfg(s)
		if s == LongCycles {
			cfg.BlockBits = 4 << 23
		}
		got = append(got, Simulate(cfg))
	}
	want := VarAggregate(params())
	for i, r := range got {
		if rel := math.Abs(r.Var-want) / want; rel > 0.25 {
			t.Errorf("strategy %d: variance %.3g vs formula %.3g (%.1f%% off)", i, r.Var, want, rel*100)
		}
	}
	// Cross-strategy agreement should be tighter than agreement with
	// the formula (same seed, same arrivals).
	for i := 1; i < len(got); i++ {
		if rel := math.Abs(got[i].Var-got[0].Var) / got[0].Var; rel > 0.2 {
			t.Errorf("variance differs across strategies: %.3g vs %.3g", got[i].Var, got[0].Var)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(simCfg(ShortCycles))
	b := Simulate(simCfg(ShortCycles))
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestStrategyString(t *testing.T) {
	if Bulk.String() == "" || ShortCycles.String() == "" || LongCycles.String() == "" || Strategy(9).String() != "unknown" {
		t.Fatal("strategy names")
	}
	if params().String() == "" {
		t.Fatal("params string")
	}
}

// Property: unused bytes are never negative and never exceed the video
// size.
func TestPropertyUnusedBounded(t *testing.T) {
	f := func(rate, dur, buf, accumRaw, betaRaw uint16) bool {
		s := Session{
			Rate:     float64(rate%5000)*1e3 + 1e5,
			Duration: float64(dur%3600) + 10,
			Buffer:   float64(buf % 120),
			Accum:    1 + float64(accumRaw%100)/100,
			Beta:     float64(betaRaw%99+1) / 100,
		}
		u := UnusedBytes(s)
		return u >= 0 && u <= s.Rate*s.Duration+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the dimensioning rule is monotone in α and in λ.
func TestPropertyDimensionMonotone(t *testing.T) {
	f := func(l1, l2, a1, a2 uint8) bool {
		p1, p2 := params(), params()
		p1.Lambda = float64(l1%100)/10 + 0.1
		p2.Lambda = p1.Lambda + float64(l2%100)/10
		alpha1 := float64(a1%50) / 10
		alpha2 := alpha1 + float64(a2%50)/10
		return Dimension(p2, alpha1) >= Dimension(p1, alpha1) &&
			Dimension(p1, alpha2) >= Dimension(p1, alpha1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulate(b *testing.B) {
	cfg := simCfg(ShortCycles)
	cfg.Horizon = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(cfg)
	}
}
