// Package model implements the Section 6 analytical model for the
// aggregate rate of many concurrent streaming sessions, plus a
// Monte-Carlo fluid simulator used to validate it:
//
//   - sessions arrive as a homogeneous Poisson process with rate λ;
//   - video n has encoding rate e_n, duration L_n, size S_n = e_n·L_n;
//   - without interruptions, E[R] = λ·E[S] (eq. 1/3) and
//     Var[R] = λ·E[e]·E[L]·E[G] (eq. 2/4), where G is the download
//     rate during ON periods — independent of the streaming strategy;
//   - with interruptions after a fraction β of the video, eq. 7 bounds
//     the buffering playback B' that avoids full downloads, and
//     eqs. 8–9 give the wasted bandwidth E[R'].
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params carries the model inputs. Rates are bits/second, durations
// seconds, sizes bits (the paper's formulas are unit-agnostic; we fix
// bits and seconds).
type Params struct {
	// Lambda is the session arrival rate (sessions/second).
	Lambda float64
	// MeanRate is E[e_n], the mean encoding rate (bps).
	MeanRate float64
	// MeanDuration is E[L_n] in seconds.
	MeanDuration float64
	// MeanDownRate is E[G_n], the mean ON-period download rate (bps).
	MeanDownRate float64
}

// MeanAggregate returns E[R(t)] = λ·E[e]·E[L] in bps (eq. 3).
func MeanAggregate(p Params) float64 {
	return p.Lambda * p.MeanRate * p.MeanDuration
}

// VarAggregate returns Var[R(t)] = λ·E[e]·E[L]·E[G] in bps² (eq. 4).
func VarAggregate(p Params) float64 {
	return p.Lambda * p.MeanRate * p.MeanDuration * p.MeanDownRate
}

// Dimension returns the provisioning rule of Section 6.1:
// E[R] + α·sqrt(Var[R]).
func Dimension(p Params, alpha float64) float64 {
	return MeanAggregate(p) + alpha*math.Sqrt(VarAggregate(p))
}

// CoV returns the coefficient of variation sqrt(Var)/Mean — the
// "smoothness" measure behind the paper's claim that higher encoding
// rates yield relatively smoother aggregate traffic.
func CoV(p Params) float64 {
	m := MeanAggregate(p)
	if m == 0 {
		return math.NaN()
	}
	return math.Sqrt(VarAggregate(p)) / m
}

// InterruptionThreshold solves eq. 7 for the video duration below
// which the whole video downloads before the viewer gives up:
// B' < L·(1-k·β)  ⇔  L > B'/(1-k·β). bufferPlayback is B' in seconds,
// accum is k, beta the watched fraction. It returns +Inf when k·β >= 1
// (the download never outruns an always-watching viewer).
func InterruptionThreshold(bufferPlayback, accum, beta float64) float64 {
	d := 1 - accum*beta
	if d <= 0 {
		return math.Inf(1)
	}
	return bufferPlayback / d
}

// Session describes one video for the interruption model.
type Session struct {
	Rate     float64 // e_n, bps
	Duration float64 // L_n, seconds
	Buffer   float64 // B'_n, seconds of playback downloaded up front
	Accum    float64 // k_n >= 1
	Beta     float64 // watched fraction before interruption, < 1
}

// UnusedBytes returns the unused bits for one interrupted session:
// min(B_n + G_n·τ_n, e_n·L_n) − e_n·τ_n with τ_n = β_n·L_n (eq. 8's
// integrand, in bits).
func UnusedBytes(s Session) float64 {
	tau := s.Beta * s.Duration
	downloaded := math.Min(s.Rate*s.Buffer+s.Accum*s.Rate*tau, s.Rate*s.Duration)
	used := s.Rate * tau
	if downloaded < used {
		return 0
	}
	return downloaded - used
}

// WasteRate returns E[R'(t)] = λ·E[unused bits] (eqs. 8–9) for a
// population of sessions sampled by draw.
func WasteRate(lambda float64, n int, draw func(i int) Session) float64 {
	if n <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += UnusedBytes(draw(i))
	}
	return lambda * sum / float64(n)
}

// Strategy selects the download shape for the Monte-Carlo simulator.
type Strategy int

// Fluid download shapes: bulk (no ON-OFF), short cycles, long cycles.
const (
	Bulk Strategy = iota
	ShortCycles
	LongCycles
)

func (s Strategy) String() string {
	switch s {
	case Bulk:
		return "no ON-OFF"
	case ShortCycles:
		return "short ON-OFF"
	case LongCycles:
		return "long ON-OFF"
	default:
		return "unknown"
	}
}

// SimConfig drives the Monte-Carlo aggregate simulator.
type SimConfig struct {
	Params
	Strategy Strategy
	// BlockBits is the per-cycle block size in bits for ON-OFF
	// strategies (64 kB for short, >2.5 MB for long).
	BlockBits float64
	// Accum is the steady-state accumulation ratio for ON-OFF
	// strategies (download rate during steady state = Accum·e).
	Accum float64
	// Horizon is the simulated time span in seconds.
	Horizon float64
	// Step is the sampling interval in seconds.
	Step float64
	// Seed fixes the random draws.
	Seed int64
	// RateJitter spreads e_n uniformly in
	// [MeanRate·(1−j), MeanRate·(1+j)].
	RateJitter float64
	// DurJitter spreads L_n the same way.
	DurJitter float64
}

// SimResult summarizes one Monte-Carlo run.
type SimResult struct {
	Mean, Var float64 // measured aggregate mean (bps) and variance
	Samples   int
	Sessions  int
}

// Simulate draws Poisson arrivals and integrates the aggregate fluid
// rate R(t) over the horizon, sampling every Step. Each session
// downloads with the configured strategy's shape:
//
//   - Bulk: rate G until S bits are done;
//   - Short/Long cycles: G during ON periods of BlockBits, idle
//     between them so the average is Accum·e.
//
// Warm-up and cool-down margins of one max session length are
// excluded from the statistics so the process is stationary.
func Simulate(cfg SimConfig) SimResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	type interval struct{ a, b float64 } // [a,b) at rate G
	var spans []interval
	var G float64 = cfg.MeanDownRate

	margin := cfg.MeanDuration * 4
	start := -margin
	endArrivals := cfg.Horizon + margin
	sessions := 0
	for t := start; t < endArrivals; {
		t += rng.ExpFloat64() / cfg.Lambda
		if t >= endArrivals {
			break
		}
		sessions++
		e := jitter(rng, cfg.MeanRate, cfg.RateJitter)
		L := jitter(rng, cfg.MeanDuration, cfg.DurJitter)
		S := e * L
		switch cfg.Strategy {
		case Bulk:
			spans = append(spans, interval{t, t + S/G})
		default:
			// ON-OFF: blocks of BlockBits at G, spaced so that the
			// average rate is Accum·e, until S bits are transferred.
			period := cfg.BlockBits / (cfg.Accum * e)
			sent := 0.0
			at := t
			for sent < S {
				blk := math.Min(cfg.BlockBits, S-sent)
				spans = append(spans, interval{at, at + blk/G})
				sent += blk
				at += period
			}
		}
	}

	// Exact time-weighted statistics via an event sweep: R(t) is
	// piecewise constant between span edges, so mean and variance
	// integrate exactly — no sampling error beyond the finite horizon.
	type edge struct {
		at float64
		d  float64
	}
	edges := make([]edge, 0, 2*len(spans))
	for _, sp := range spans {
		a, b := sp.a, sp.b
		if b <= 0 || a >= cfg.Horizon {
			continue
		}
		if a < 0 {
			a = 0
		}
		if b > cfg.Horizon {
			b = cfg.Horizon
		}
		edges = append(edges, edge{a, G}, edge{b, -G})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	var sum, sumSq, r, prev float64
	for _, e := range edges {
		dt := e.at - prev
		sum += r * dt
		sumSq += r * r * dt
		prev = e.at
		r += e.d
	}
	if prev < cfg.Horizon {
		dt := cfg.Horizon - prev
		sum += r * dt
		sumSq += r * r * dt
	}
	mean := sum / cfg.Horizon
	return SimResult{
		Mean:     mean,
		Var:      sumSq/cfg.Horizon - mean*mean,
		Samples:  len(edges),
		Sessions: sessions,
	}
}

func jitter(rng *rand.Rand, mean, j float64) float64 {
	if j <= 0 {
		return mean
	}
	return mean * (1 - j + 2*j*rng.Float64())
}

// String renders the parameters.
func (p Params) String() string {
	return fmt.Sprintf("λ=%.3g/s E[e]=%.3g bps E[L]=%.3g s E[G]=%.3g bps",
		p.Lambda, p.MeanRate, p.MeanDuration, p.MeanDownRate)
}
