package abr

import "testing"

var ladder = []float64{500e3, 1000e3, 1600e3, 2600e3, 3800e3}

func TestFixedClampsAndCounts(t *testing.T) {
	cases := []struct {
		rung, want int
	}{{0, 0}, {2, 2}, {99, 4}, {-1, 4}, {-5, 0}, {-99, 0}}
	for _, c := range cases {
		f := NewFixed(c.rung)
		if got := f.Next(Snapshot{Ladder: ladder}); got != c.want {
			t.Errorf("Fixed(%d) = %d, want %d", c.rung, got, c.want)
		}
	}
}

func TestRateBasedStartsLowAndConverges(t *testing.T) {
	r := NewRateBased()
	if got := r.Next(Snapshot{Ladder: ladder}); got != 0 {
		t.Fatalf("no measurement: rung %d, want 0", got)
	}
	// Feed a steady 3 Mbps: the EWMA converges and the pick settles on
	// the highest rung under 0.85*3 Mbps = 2.55 Mbps, i.e. 1.6 Mbps.
	var got int
	for i := 0; i < 50; i++ {
		got = r.Next(Snapshot{Ladder: ladder, LastChunkBps: 3e6})
	}
	if ladder[got] != 1600e3 {
		t.Fatalf("steady 3 Mbps: settled on %v bps, want 1.6 Mbps", ladder[got])
	}
	// A collapse to 600 kbps must eventually drop to the bottom rung.
	for i := 0; i < 50; i++ {
		got = r.Next(Snapshot{Ladder: ladder, LastChunkBps: 600e3})
	}
	if got != 0 {
		t.Fatalf("after collapse: rung %d, want 0", got)
	}
}

func TestBufferBasedMap(t *testing.T) {
	b := NewBufferBased()
	// Below the reservoir: bottom rung regardless of history.
	if got := b.Next(Snapshot{Ladder: ladder, BufferSec: 2, CurrentRung: 4}); got != 0 {
		t.Fatalf("reservoir: rung %d, want 0", got)
	}
	// Deep cushion: climbs toward the top, one rung per decision.
	cur := 0
	for i := 0; i < 10; i++ {
		next := b.Next(Snapshot{Ladder: ladder, BufferSec: 40, CurrentRung: cur})
		if next > cur+1 {
			t.Fatalf("climbed %d -> %d in one decision", cur, next)
		}
		cur = next
	}
	if cur != len(ladder)-1 {
		t.Fatalf("full cushion settled on rung %d, want top", cur)
	}
	// Mid-cushion: a middle rung.
	mid := b.Next(Snapshot{Ladder: ladder, BufferSec: 15, CurrentRung: 4})
	if mid == 0 || mid == len(ladder)-1 {
		t.Fatalf("mid cushion picked extreme rung %d", mid)
	}
}

func TestControllersDeterministic(t *testing.T) {
	// Same observation sequence, same decision sequence — the fleet
	// determinism guarantee leans on this.
	obs := []Snapshot{
		{Ladder: ladder, BufferSec: 0},
		{Ladder: ladder, BufferSec: 4, LastChunkBps: 5e6},
		{Ladder: ladder, BufferSec: 9, LastChunkBps: 2e6, CurrentRung: 1},
		{Ladder: ladder, BufferSec: 22, LastChunkBps: 4e6, CurrentRung: 2},
	}
	for _, mk := range []func() Controller{
		func() Controller { return NewFixed(-1) },
		func() Controller { return NewRateBased() },
		func() Controller { return NewBufferBased() },
	} {
		a, b := mk(), mk()
		for i, s := range obs {
			if x, y := a.Next(s), b.Next(s); x != y {
				t.Fatalf("%s: decision %d diverged (%d vs %d)", a.Name(), i, x, y)
			}
		}
	}
}
