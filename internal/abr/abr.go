// Package abr contains the adaptive-bitrate controllers a segmented
// player consults before every chunk request. A controller sees only
// client-side observables — the playback-buffer level and the measured
// download throughput — and picks a rendition-ladder rung, the
// decision loop the paper's Netflix clients run ("the encoding rates
// of the videos streamed were dependent on the available bandwidth",
// Section 5) and that Akhshabi et al. [11] dissect.
//
// Controllers are deterministic, allocation-free state machines: given
// the same observation sequence they return the same rung sequence, so
// fleet experiments stay bit-reproducible for any worker count.
package abr

// Snapshot is what a controller observes at one decision point.
type Snapshot struct {
	// BufferSec is the playback-buffer level in media seconds.
	BufferSec float64
	// LastChunkBps is the wire throughput of the most recent chunk
	// fetch (0 before the first chunk completes).
	LastChunkBps float64
	// CurrentRung is the ladder index of the previous fetch.
	CurrentRung int
	// Ladder is the rendition ladder, ascending bps.
	Ladder []float64
}

// Controller picks the ladder rung for the next chunk. Implementations
// may keep state (throughput smoothing); one Controller drives one
// session.
type Controller interface {
	// Name labels the policy in results and artifacts.
	Name() string
	// Next returns the ladder index to fetch the next chunk at. The
	// returned index is clamped by the caller; controllers should stay
	// within [0, len(Ladder)).
	Next(s Snapshot) int
}

// clamp bounds rung into the ladder.
func clamp(rung, n int) int {
	if rung < 0 {
		return 0
	}
	if rung >= n {
		return n - 1
	}
	return rung
}

// Fixed is the null controller: it pins one ladder rung regardless of
// conditions — the legacy single-bitrate player expressed in controller
// form. Rung < 0 counts from the top (-1 = top rung).
type Fixed struct {
	Rung int
}

// NewFixed returns a controller pinned to rung (negative = from top).
func NewFixed(rung int) *Fixed { return &Fixed{Rung: rung} }

// Name implements Controller.
func (f *Fixed) Name() string { return "fixed" }

// Next implements Controller.
func (f *Fixed) Next(s Snapshot) int {
	r := f.Rung
	if r < 0 {
		r = len(s.Ladder) + r
	}
	return clamp(r, len(s.Ladder))
}

// DefaultSafety is the fraction of the estimated throughput a
// rate-based controller is willing to spend on media.
const DefaultSafety = 0.85

// DefaultEwmaWeight is the weight of the newest throughput sample.
const DefaultEwmaWeight = 0.3

// RateBased picks the highest rung sustainable at a safety fraction of
// an exponentially weighted moving average of per-chunk throughput —
// the classic throughput-rule controller. It starts at the bottom rung
// until the first measurement exists.
type RateBased struct {
	// Safety scales the estimate before comparing to ladder rungs;
	// 0 means DefaultSafety.
	Safety float64
	// Weight is the EWMA weight of the newest sample; 0 means
	// DefaultEwmaWeight.
	Weight float64

	est float64 // current EWMA, 0 until the first sample
}

// NewRateBased returns a throughput-rule controller with defaults.
func NewRateBased() *RateBased { return &RateBased{} }

// Name implements Controller.
func (r *RateBased) Name() string { return "rate" }

// Next implements Controller.
func (r *RateBased) Next(s Snapshot) int {
	w := r.Weight
	if w <= 0 {
		w = DefaultEwmaWeight
	}
	if s.LastChunkBps > 0 {
		if r.est == 0 {
			r.est = s.LastChunkBps
		} else {
			r.est = (1-w)*r.est + w*s.LastChunkBps
		}
	}
	if r.est == 0 {
		return 0 // no measurement yet: start safe at the bottom rung
	}
	safety := r.Safety
	if safety <= 0 {
		safety = DefaultSafety
	}
	budget := safety * r.est
	pick := 0
	for i, rate := range s.Ladder {
		if rate <= budget {
			pick = i
		}
	}
	return pick
}

// Default BBA thresholds (media seconds).
const (
	DefaultReservoirSec = 5
	DefaultCushionSec   = 20
)

// BufferBased is a BBA-style controller (Huang et al.): the rung is a
// function of the buffer level alone. Below the reservoir it streams
// the bottom rung; above reservoir+cushion the top rung; in between it
// maps the buffer linearly across the ladder. A one-rung-per-decision
// hysteresis keeps it from oscillating across the whole ladder when
// the buffer swings.
type BufferBased struct {
	// ReservoirSec and CushionSec shape the map; 0 means the defaults.
	ReservoirSec, CushionSec float64
}

// NewBufferBased returns a BBA controller with default thresholds.
func NewBufferBased() *BufferBased { return &BufferBased{} }

// Name implements Controller.
func (b *BufferBased) Name() string { return "buffer" }

// Next implements Controller.
func (b *BufferBased) Next(s Snapshot) int {
	reservoir := b.ReservoirSec
	if reservoir <= 0 {
		reservoir = DefaultReservoirSec
	}
	cushion := b.CushionSec
	if cushion <= 0 {
		cushion = DefaultCushionSec
	}
	n := len(s.Ladder)
	var want int
	switch {
	case s.BufferSec <= reservoir:
		want = 0
	case s.BufferSec >= reservoir+cushion:
		want = n - 1
	default:
		frac := (s.BufferSec - reservoir) / cushion
		want = int(frac * float64(n))
	}
	want = clamp(want, n)
	// Hysteresis: move at most one rung upward per decision (downward
	// moves are immediate — draining buffers need fast reaction).
	if want > s.CurrentRung+1 {
		want = s.CurrentRung + 1
	}
	return clamp(want, n)
}
