package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/model"
	"repro/internal/netem"
	"repro/internal/session"
)

func video() media.Video {
	return media.Video{ID: 1, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
}

func TestApplicationsAllConstruct(t *testing.T) {
	apps := Applications()
	if len(apps) != 11 {
		t.Fatalf("applications = %d, want 11", len(apps))
	}
	for _, app := range apps {
		p, err := NewPlayer(app)
		if err != nil || p == nil {
			t.Fatalf("NewPlayer(%s): %v", app, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s has empty name", app)
		}
	}
	if _, err := NewPlayer("quicktime"); err == nil {
		t.Fatal("unknown application must error")
	}
}

func TestServiceFor(t *testing.T) {
	if ServiceFor(NetflixPC) != session.Netflix || ServiceFor(NetflixDroid) != session.Netflix {
		t.Fatal("netflix apps must map to Netflix")
	}
	if ServiceFor(FlashIE) != session.YouTube || ServiceFor(YouTubeIPad) != session.YouTube {
		t.Fatal("youtube apps must map to YouTube")
	}
}

func TestStreamEndToEnd(t *testing.T) {
	r, err := Stream(StreamConfig{
		Video: video(), App: FlashIE, Network: netem.Research,
		Seed: 1, DurationSeconds: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Analysis.Strategy != analysis.ShortOnOff {
		t.Fatalf("strategy = %v", r.Analysis.Strategy)
	}
	if r.Elapsed != 90*time.Second {
		t.Fatalf("elapsed = %v", r.Elapsed)
	}
	if _, err := Stream(StreamConfig{Video: video(), App: "bogus", Network: netem.Research}); err == nil {
		t.Fatal("bogus app must error")
	}
}

func TestClassifyPcapRoundTrip(t *testing.T) {
	r, err := Stream(StreamConfig{
		Video: video(), App: FlashIE, Network: netem.Research,
		Seed: 2, DurationSeconds: 60, Buffered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := ClassifyPcap(&buf, session.ClientAddr, analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != r.Analysis.Strategy {
		t.Fatalf("pcap classify %v, live %v", a.Strategy, r.Analysis.Strategy)
	}
	if _, err := ClassifyPcap(bytes.NewReader([]byte("junk....................")), session.ClientAddr, analysis.Config{}); err == nil {
		t.Fatal("junk capture must error")
	}
}

func TestModelHelpers(t *testing.T) {
	p := model.Params{Lambda: 0.1, MeanRate: 1e6, MeanDuration: 100, MeanDownRate: 5e6}
	if AggregateMean(p) != 0.1*1e6*100 {
		t.Fatal("AggregateMean")
	}
	if AggregateVar(p) != 0.1*1e6*100*5e6 {
		t.Fatal("AggregateVar")
	}
	if DimensionLink(p, 1) <= AggregateMean(p) {
		t.Fatal("DimensionLink")
	}
	if th := FullDownloadThreshold(40, 1.25, 0.2); th < 53 || th > 54 {
		t.Fatalf("threshold = %v", th)
	}
}
