// Package core is the library's front door: it ties the substrates
// together behind a small API for the three things a user of this
// reproduction wants to do —
//
//  1. stream a video through a simulated vantage network with a chosen
//     application and get the captured trace plus the paper's metrics
//     (Stream);
//  2. classify an existing capture, ours or tcpdump's (ClassifyPcap);
//  3. evaluate the Section 6 aggregate-traffic model for dimensioning
//     and interruption-waste questions (re-exported helpers).
//
// Everything underneath is importable directly (internal/tcp,
// internal/netem, …) when finer control is needed; the examples under
// examples/ use this package only.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/media"
	"repro/internal/model"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/trace"
)

// Application names the client applications of Table 1.
type Application string

// The applications of Table 1.
const (
	FlashIE        Application = "flash-ie"
	FlashFirefox   Application = "flash-firefox"
	FlashChrome    Application = "flash-chrome"
	HTML5IE        Application = "html5-ie"
	HTML5Firefox   Application = "html5-firefox"
	HTML5Chrome    Application = "html5-chrome"
	YouTubeAndroid Application = "youtube-android"
	YouTubeIPad    Application = "youtube-ipad"
	NetflixPC      Application = "netflix-pc"
	NetflixIPadApp Application = "netflix-ipad"
	NetflixDroid   Application = "netflix-android"
)

// Applications lists every supported application key.
func Applications() []Application {
	return []Application{
		FlashIE, FlashFirefox, FlashChrome,
		HTML5IE, HTML5Firefox, HTML5Chrome,
		YouTubeAndroid, YouTubeIPad,
		NetflixPC, NetflixIPadApp, NetflixDroid,
	}
}

// NewPlayer builds the player model for an application key.
func NewPlayer(app Application) (player.Player, error) {
	switch app {
	case FlashIE:
		return player.NewFlashPlayer("Internet Explorer"), nil
	case FlashFirefox:
		return player.NewFlashPlayer("Mozilla Firefox"), nil
	case FlashChrome:
		return player.NewFlashPlayer("Google Chrome"), nil
	case HTML5IE:
		return player.NewIEHtml5(), nil
	case HTML5Firefox:
		return player.NewFirefoxHtml5(), nil
	case HTML5Chrome:
		return player.NewChromeHtml5(), nil
	case YouTubeAndroid:
		return player.NewAndroidYouTube(), nil
	case YouTubeIPad:
		return player.NewIPadYouTube(), nil
	case NetflixPC:
		return player.NewSilverlightPC("Internet Explorer"), nil
	case NetflixIPadApp:
		return player.NewNetflixIPad(), nil
	case NetflixDroid:
		return player.NewNetflixAndroid(), nil
	default:
		return nil, fmt.Errorf("core: unknown application %q (see Applications)", app)
	}
}

// ServiceFor returns the service an application streams from.
func ServiceFor(app Application) session.ServiceKind {
	switch app {
	case NetflixPC, NetflixIPadApp, NetflixDroid:
		return session.Netflix
	default:
		return session.YouTube
	}
}

// StreamConfig describes one measurement.
type StreamConfig struct {
	Video   media.Video
	App     Application
	Network netem.Profile
	Seed    int64
	// DurationSeconds bounds the capture; 0 means the paper's 180 s.
	DurationSeconds float64
	// Buffered retains the full capture for pcap export; Series
	// collects the exact download/window series. Both default off —
	// the streaming capture pipeline with O(flows) state.
	Buffered bool
	Series   bool
}

// Stream runs one streaming session and returns the session result
// (analysis, counters, and — when asked for — the buffered trace).
func Stream(cfg StreamConfig) (*session.Result, error) {
	p, err := NewPlayer(cfg.App)
	if err != nil {
		return nil, err
	}
	sc := session.Config{
		Video:    cfg.Video,
		Service:  ServiceFor(cfg.App),
		Player:   p,
		Network:  cfg.Network,
		Seed:     cfg.Seed,
		Buffered: cfg.Buffered,
		Series:   cfg.Series,
	}
	if cfg.DurationSeconds > 0 {
		sc.Duration = time.Duration(cfg.DurationSeconds * float64(time.Second))
	}
	return session.Run(sc), nil
}

// ClassifyPcap analyzes a libpcap capture (from this library or from
// tcpdump with raw-IP linktype) taken at clientAddr and returns the
// paper's metrics for it. The records stream straight through the
// online analyzer — the capture is never materialized in memory.
func ClassifyPcap(r io.Reader, clientAddr [4]byte, cfg analysis.Config) (*analysis.Result, error) {
	return ClassifyPcapStream(r, clientAddr, cfg)
}

// ClassifyPcapStream reads a capture once, fanning each packet out to
// the streaming analyzer plus any extra sinks (a trace.Trace for
// re-export, a trace.Series for plotting, ...), and returns the
// analysis.
func ClassifyPcapStream(r io.Reader, clientAddr [4]byte, cfg analysis.Config, extra ...trace.Sink) (*analysis.Result, error) {
	s := analysis.NewStreaming(cfg)
	sink := trace.Fanout(append([]trace.Sink{s}, extra...)...)
	if err := trace.StreamPcap(r, clientAddr, sink); err != nil {
		return nil, fmt.Errorf("core: reading capture: %w", err)
	}
	if err := sink.Close(); err != nil {
		return nil, fmt.Errorf("core: closing capture sinks: %w", err)
	}
	return s.Result(), nil
}

// Re-exported model helpers so dimensioning users need only this
// package.

// AggregateMean returns E[R(t)] = λ·E[e]·E[L] (eq. 3).
func AggregateMean(p model.Params) float64 { return model.MeanAggregate(p) }

// AggregateVar returns Var[R(t)] = λ·E[e]·E[L]·E[G] (eq. 4).
func AggregateVar(p model.Params) float64 { return model.VarAggregate(p) }

// DimensionLink returns the E[R]+α·σ provisioning rule of Section 6.1.
func DimensionLink(p model.Params, alpha float64) float64 { return model.Dimension(p, alpha) }

// FullDownloadThreshold returns the eq. 7 duration threshold.
func FullDownloadThreshold(bufferPlayback, accum, beta float64) float64 {
	return model.InterruptionThreshold(bufferPlayback, accum, beta)
}
