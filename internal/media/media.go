// Package media models the video content: per-video metadata, binary
// container headers (FLV-like for Flash, WebM-like for HTML5, MP4
// fragments for Netflix/Silverlight), and generators for the six
// datasets of Section 4.1 with the paper's encoding-rate ranges.
//
// Container headers matter because the paper's methodology recovers
// the encoding rate from the bytes on the wire: Flash carries the rate
// in the file header, while the WebM header carried an invalid
// frame-rate entry, forcing the authors to estimate the rate as
// Content-Length divided by duration. Our synthetic headers reproduce
// both situations so internal/analysis exercises the same code paths.
package media

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Container identifies the streaming container format.
type Container int

// The containers of Section 2.
const (
	Flash       Container = iota // Adobe Flash (FLV), default on PCs
	HTML5                        // WebM in a HTML5 <video>
	Silverlight                  // Netflix MP4-style fragments
)

func (c Container) String() string {
	switch c {
	case Flash:
		return "Flash"
	case HTML5:
		return "HTML5"
	case Silverlight:
		return "Silverlight"
	default:
		return "Unknown"
	}
}

// Video is one catalog entry.
type Video struct {
	ID           int
	Title        string
	EncodingRate float64 // bits per second (the default/top rendition)
	Duration     time.Duration
	Container    Container
	Resolution   string // e.g. "360p", "720p"
	// Renditions is the bitrate ladder (bps, ascending): the same
	// content encoded at every rung, sharing Duration and Container.
	// Empty means a single-bitrate video at EncodingRate — the legacy
	// shape every Table-1 player streams.
	Renditions []float64
}

// Size returns the total video size in bytes.
func (v Video) Size() int64 {
	return int64(v.EncodingRate / 8 * v.Duration.Seconds())
}

// Ladder returns the rendition ladder: Renditions when present,
// otherwise the one-rung ladder {EncodingRate}. Ladder rungs are
// ascending bps; index len-1 is the top rung.
func (v Video) Ladder() []float64 {
	if len(v.Renditions) > 0 {
		return v.Renditions
	}
	return []float64{v.EncodingRate}
}

// AtRung returns the per-rendition view of the video: the same entry
// with EncodingRate set to ladder rung i (clamped), so Size, headers
// and byte-range math all apply to that rendition's resource.
func (v Video) AtRung(i int) Video {
	ladder := v.Ladder()
	if i < 0 {
		i = 0
	}
	if i >= len(ladder) {
		i = len(ladder) - 1
	}
	v.EncodingRate = ladder[i]
	return v
}

// WithLadder returns the video encoded at the given ascending ladder,
// with EncodingRate pinned to the top rung.
func (v Video) WithLadder(rates ...float64) Video {
	v.Renditions = append([]float64(nil), rates...)
	if len(rates) > 0 {
		v.EncodingRate = rates[len(rates)-1]
	}
	return v
}

// RungIndex returns the ladder index whose bitrate matches rate to
// within 1 kbps, or -1.
func (v Video) RungIndex(rate float64) int {
	for i, r := range v.Ladder() {
		if diff := r - rate; diff < 1000 && diff > -1000 {
			return i
		}
	}
	return -1
}

// String identifies the video in logs.
func (v Video) String() string {
	return fmt.Sprintf("video %d (%s %s, %.2f Mbps, %s)", v.ID, v.Container, v.Resolution, v.EncodingRate/1e6, v.Duration.Round(time.Second))
}

// Header sizes of the synthetic containers.
const (
	FLVHeaderSize  = 16
	WebMHeaderSize = 20
	MP4FragHeader  = 24
)

// Magic numbers for the synthetic headers. FLV and EBML magics match
// the real formats' leading bytes so the analyzer's sniffing logic is
// honest.
var (
	flvMagic  = []byte{'F', 'L', 'V', 0x01}
	ebmlMagic = []byte{0x1A, 0x45, 0xDF, 0xA3}
	moofMagic = []byte{'m', 'o', 'o', 'f'}
)

// invalidFrameRate is the broken field the paper found in YouTube's
// WebM files ("we observed an invalid entry for the frame rate in the
// header of the webM files", Section 5).
const invalidFrameRate = 0xFFFFFFFF

// EncodeFLVHeader produces the first FLVHeaderSize bytes of a Flash
// video stream: magic, encoding rate (bps), duration (ms).
func EncodeFLVHeader(v Video) []byte {
	b := make([]byte, FLVHeaderSize)
	copy(b, flvMagic)
	binary.BigEndian.PutUint32(b[4:], uint32(v.EncodingRate))
	binary.BigEndian.PutUint32(b[8:], uint32(v.Duration/time.Millisecond))
	binary.BigEndian.PutUint32(b[12:], uint32(v.ID))
	return b
}

// EncodeWebMHeader produces the first WebMHeaderSize bytes of an HTML5
// video stream. Deliberately, the frame-rate field is invalid and no
// encoding rate is present — matching what the paper found — so
// consumers must fall back to Content-Length/duration.
func EncodeWebMHeader(v Video) []byte {
	b := make([]byte, WebMHeaderSize)
	copy(b, ebmlMagic)
	binary.BigEndian.PutUint32(b[4:], invalidFrameRate)
	binary.BigEndian.PutUint32(b[8:], uint32(v.Duration/time.Millisecond))
	binary.BigEndian.PutUint32(b[12:], uint32(v.ID))
	return b
}

// EncodeMP4FragHeader produces a Netflix-style fragment header with
// the fragment's encoding rate and duration.
func EncodeMP4FragHeader(v Video, bitrate float64, fragDur time.Duration) []byte {
	b := make([]byte, MP4FragHeader)
	copy(b, moofMagic)
	binary.BigEndian.PutUint32(b[4:], uint32(bitrate))
	binary.BigEndian.PutUint32(b[8:], uint32(fragDur/time.Millisecond))
	binary.BigEndian.PutUint32(b[12:], uint32(v.ID))
	return b
}

// HeaderFor returns the container header bytes a server prepends to
// the byte stream of v.
func HeaderFor(v Video) []byte {
	switch v.Container {
	case Flash:
		return EncodeFLVHeader(v)
	case HTML5:
		return EncodeWebMHeader(v)
	default:
		return EncodeMP4FragHeader(v, v.EncodingRate, 4*time.Second)
	}
}

// FragHeaderRate scans b for a complete MP4 fragment header and
// returns the bitrate (bps) it carries, or 0 when none is present.
// Fragment bodies are media bytes and response headers are ASCII, so
// the moof magic cannot occur except at a true fragment boundary;
// this is how the analyzer segments per-rendition request cycles from
// the wire alone. A header split across a segment boundary is not
// recovered (the span simply continues at the previous rate).
func FragHeaderRate(b []byte) float64 {
	i := bytes.Index(b, moofMagic)
	if i < 0 || i+MP4FragHeader > len(b) {
		return 0
	}
	return float64(binary.BigEndian.Uint32(b[i+4:]))
}

// HeaderInfo is what a trace analyzer can recover from the first bytes
// of a media stream.
type HeaderInfo struct {
	Container    Container
	EncodingRate float64 // bps; 0 when the header does not carry it
	Duration     time.Duration
	RateValid    bool // false for WebM (invalid frame-rate entry)
}

// ErrUnknownContainer marks unrecognized leading bytes.
var ErrUnknownContainer = errors.New("media: unknown container magic")

// ParseHeader sniffs the container from the leading bytes of a media
// stream and extracts what it carries. This is the analyzer-side
// mirror of the Encode functions.
func ParseHeader(b []byte) (HeaderInfo, error) {
	if len(b) >= FLVHeaderSize && string(b[:4]) == string(flvMagic) {
		return HeaderInfo{
			Container:    Flash,
			EncodingRate: float64(binary.BigEndian.Uint32(b[4:])),
			Duration:     time.Duration(binary.BigEndian.Uint32(b[8:])) * time.Millisecond,
			RateValid:    true,
		}, nil
	}
	if len(b) >= WebMHeaderSize && string(b[:4]) == string(ebmlMagic) {
		fr := binary.BigEndian.Uint32(b[4:])
		return HeaderInfo{
			Container: HTML5,
			Duration:  time.Duration(binary.BigEndian.Uint32(b[8:])) * time.Millisecond,
			RateValid: fr != invalidFrameRate && fr != 0,
		}, nil
	}
	if len(b) >= MP4FragHeader && string(b[:4]) == string(moofMagic) {
		return HeaderInfo{
			Container:    Silverlight,
			EncodingRate: float64(binary.BigEndian.Uint32(b[4:])),
			Duration:     time.Duration(binary.BigEndian.Uint32(b[8:])) * time.Millisecond,
			RateValid:    true,
		}, nil
	}
	return HeaderInfo{}, ErrUnknownContainer
}

// NetflixLadder is the bitrate ladder (bps) of a 2011-era Netflix
// title; each video is encoded at every rung and the client chooses
// adaptively (Akhshabi et al. [11]).
var NetflixLadder = []float64{500e3, 1000e3, 1600e3, 2600e3, 3800e3}

// DefaultLadder is the rendition ladder adaptive sessions stream when
// a spec does not supply one: the NetflixLadder rungs, the ladder the
// paper's adaptive clients actually switched across.
func DefaultLadder() []float64 { return append([]float64(nil), NetflixLadder...) }

// durationDist draws a plausible user-generated-content duration:
// log-normal-ish around 3–4 minutes, clamped to [30 s, 60 min].
func durationDist(rng *rand.Rand) time.Duration {
	mins := 0.5 + 3.5*rng.ExpFloat64()
	if mins < 0.5 {
		mins = 0.5
	}
	if mins > 60 {
		mins = 60
	}
	return time.Duration(mins * float64(time.Minute))
}

// movieDuration draws a Netflix-catalog duration: 20 min to 2.5 h.
func movieDuration(rng *rand.Rand) time.Duration {
	mins := 20 + rng.Float64()*130
	return time.Duration(mins * float64(time.Minute))
}

// Dataset is a named collection of videos, mirroring Section 4.1.
type Dataset struct {
	Name   string
	Videos []Video
}

// YouFlash generates n Flash videos with encoding rates 0.2–1.5 Mbps
// at 240p/360p (the paper's YouFlash dataset had 5000).
func YouFlash(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	vids := make([]Video, n)
	for i := range vids {
		res := "240p"
		lo, hi := 0.2e6, 0.7e6
		if rng.Float64() < 0.6 {
			res = "360p"
			lo, hi = 0.4e6, 1.5e6
		}
		vids[i] = Video{
			ID:           100000 + i,
			Title:        fmt.Sprintf("flash-%05d", i),
			EncodingRate: lo + rng.Float64()*(hi-lo),
			Duration:     durationDist(rng),
			Container:    Flash,
			Resolution:   res,
		}
	}
	return Dataset{Name: "YouFlash", Videos: vids}
}

// YouHD generates n HD (720p) Flash videos, 0.2–4.8 Mbps.
func YouHD(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	vids := make([]Video, n)
	for i := range vids {
		vids[i] = Video{
			ID:           200000 + i,
			Title:        fmt.Sprintf("hd-%05d", i),
			EncodingRate: 0.2e6 + rng.Float64()*4.6e6,
			Duration:     durationDist(rng),
			Container:    Flash,
			Resolution:   "720p",
		}
	}
	return Dataset{Name: "YouHD", Videos: vids}
}

// YouHtml generates the HTML5 dataset: the paper built it from 2500
// YouFlash videos plus 500 YouHD videos, all streamed via the HTML5
// player at 360p; rates span 0.2–2.5 Mbps. We mirror the 5:1 mix.
func YouHtml(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	vids := make([]Video, n)
	for i := range vids {
		rate := 0.2e6 + rng.Float64()*1.3e6
		if i%6 == 5 { // the ex-HD sixth, transcoded to <= 2.5 Mbps
			rate = 1.0e6 + rng.Float64()*1.5e6
		}
		vids[i] = Video{
			ID:           300000 + i,
			Title:        fmt.Sprintf("html5-%05d", i),
			EncodingRate: rate,
			Duration:     durationDist(rng),
			Container:    HTML5,
			Resolution:   "360p",
		}
	}
	return Dataset{Name: "YouHtml", Videos: vids}
}

// YouMob generates the mobile dataset (native apps, HTML5 container),
// 0.2–2.7 Mbps.
func YouMob(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	vids := make([]Video, n)
	for i := range vids {
		vids[i] = Video{
			ID:           400000 + i,
			Title:        fmt.Sprintf("mob-%05d", i),
			EncodingRate: 0.2e6 + rng.Float64()*2.5e6,
			Duration:     durationDist(rng),
			Container:    HTML5,
			Resolution:   "360p",
		}
	}
	return Dataset{Name: "YouMob", Videos: vids}
}

// NetPC generates the Netflix PC dataset (the paper sampled 200 from
// the 11208 watch-instantly titles). EncodingRate holds the top ladder
// rung; the client picks its rung adaptively.
func NetPC(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	vids := make([]Video, n)
	for i := range vids {
		vids[i] = Video{
			ID:           500000 + i,
			Title:        fmt.Sprintf("netflix-%05d", i),
			EncodingRate: NetflixLadder[len(NetflixLadder)-1],
			Duration:     movieDuration(rng),
			Container:    Silverlight,
			Resolution:   "adaptive",
		}
	}
	return Dataset{Name: "NetPC", Videos: vids}
}

// NetMob subsets NetPC (the paper used 50 of the 200).
func NetMob(n int, seed int64) Dataset {
	base := NetPC(maxInt(n*4, n), seed)
	vids := make([]Video, n)
	for i := range vids {
		vids[i] = base.Videos[i*len(base.Videos)/maxInt(n, 1)]
	}
	return Dataset{Name: "NetMob", Videos: vids}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
