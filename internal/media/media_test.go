package media

import (
	"reflect"
	"testing"
	"time"
)

func sample() Video {
	return Video{
		ID:           42,
		EncodingRate: 1.2e6,
		Duration:     200 * time.Second,
		Container:    Flash,
		Resolution:   "360p",
	}
}

func TestVideoSize(t *testing.T) {
	v := sample()
	want := int64(1.2e6 / 8 * 200)
	if got := v.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if v.String() == "" {
		t.Fatal("String empty")
	}
}

func TestFLVHeaderRoundTrip(t *testing.T) {
	v := sample()
	h := EncodeFLVHeader(v)
	if len(h) != FLVHeaderSize {
		t.Fatalf("header size %d", len(h))
	}
	info, err := ParseHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if info.Container != Flash || !info.RateValid {
		t.Fatalf("info = %+v", info)
	}
	if info.EncodingRate != 1.2e6 {
		t.Fatalf("rate = %v", info.EncodingRate)
	}
	if info.Duration != 200*time.Second {
		t.Fatalf("duration = %v", info.Duration)
	}
}

func TestWebMHeaderHasInvalidRate(t *testing.T) {
	v := sample()
	v.Container = HTML5
	h := EncodeWebMHeader(v)
	info, err := ParseHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if info.Container != HTML5 {
		t.Fatalf("container = %v", info.Container)
	}
	if info.RateValid {
		t.Fatal("WebM header must report an invalid rate (the paper's broken frame-rate field)")
	}
	if info.EncodingRate != 0 {
		t.Fatalf("rate should be absent, got %v", info.EncodingRate)
	}
	if info.Duration != 200*time.Second {
		t.Fatalf("duration = %v (needed for the Content-Length fallback)", info.Duration)
	}
}

func TestMP4FragHeader(t *testing.T) {
	v := sample()
	h := EncodeMP4FragHeader(v, 1600e3, 4*time.Second)
	info, err := ParseHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if info.Container != Silverlight || info.EncodingRate != 1600e3 {
		t.Fatalf("info = %+v", info)
	}
	if info.Duration != 4*time.Second {
		t.Fatalf("frag duration = %v", info.Duration)
	}
}

func TestHeaderForDispatch(t *testing.T) {
	for _, c := range []Container{Flash, HTML5, Silverlight} {
		v := sample()
		v.Container = c
		info, err := ParseHeader(HeaderFor(v))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if info.Container != c {
			t.Fatalf("HeaderFor(%v) sniffed as %v", c, info.Container)
		}
	}
}

func TestParseHeaderUnknown(t *testing.T) {
	if _, err := ParseHeader([]byte("RIFFxxxxWAVE____________")); err != ErrUnknownContainer {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseHeader([]byte{1, 2}); err == nil {
		t.Fatal("short input must error")
	}
}

func TestContainerString(t *testing.T) {
	if Flash.String() != "Flash" || HTML5.String() != "HTML5" || Silverlight.String() != "Silverlight" {
		t.Fatal("container names wrong")
	}
	if Container(9).String() != "Unknown" {
		t.Fatal("unknown container name")
	}
}

func TestYouFlashDataset(t *testing.T) {
	d := YouFlash(200, 1)
	if d.Name != "YouFlash" || len(d.Videos) != 200 {
		t.Fatalf("dataset %s with %d videos", d.Name, len(d.Videos))
	}
	for _, v := range d.Videos {
		if v.EncodingRate < 0.2e6 || v.EncodingRate > 1.5e6 {
			t.Fatalf("rate %v outside the paper's 0.2-1.5 Mbps", v.EncodingRate)
		}
		if v.Container != Flash {
			t.Fatal("YouFlash videos must use Flash")
		}
		if v.Resolution != "240p" && v.Resolution != "360p" {
			t.Fatalf("resolution %s", v.Resolution)
		}
		if v.Duration < 30*time.Second || v.Duration > time.Hour {
			t.Fatalf("duration %v out of range", v.Duration)
		}
	}
}

func TestYouHDDataset(t *testing.T) {
	d := YouHD(100, 2)
	for _, v := range d.Videos {
		if v.EncodingRate < 0.2e6 || v.EncodingRate > 4.8e6 {
			t.Fatalf("HD rate %v outside 0.2-4.8 Mbps", v.EncodingRate)
		}
		if v.Resolution != "720p" {
			t.Fatal("HD videos must be 720p")
		}
	}
}

func TestYouHtmlDataset(t *testing.T) {
	d := YouHtml(120, 3)
	for _, v := range d.Videos {
		if v.EncodingRate < 0.2e6 || v.EncodingRate > 2.5e6 {
			t.Fatalf("HTML5 rate %v outside 0.2-2.5 Mbps", v.EncodingRate)
		}
		if v.Container != HTML5 {
			t.Fatal("YouHtml videos must use HTML5")
		}
	}
}

func TestYouMobDataset(t *testing.T) {
	d := YouMob(80, 4)
	for _, v := range d.Videos {
		if v.EncodingRate < 0.2e6 || v.EncodingRate > 2.7e6 {
			t.Fatalf("mobile rate %v outside 0.2-2.7 Mbps", v.EncodingRate)
		}
	}
}

func TestNetflixDatasets(t *testing.T) {
	pc := NetPC(50, 5)
	for _, v := range pc.Videos {
		if v.Container != Silverlight {
			t.Fatal("Netflix must use Silverlight")
		}
		if v.Duration < 20*time.Minute {
			t.Fatalf("movie duration %v too short", v.Duration)
		}
	}
	mob := NetMob(10, 5)
	if len(mob.Videos) != 10 {
		t.Fatalf("NetMob size %d", len(mob.Videos))
	}
	if len(NetflixLadder) < 3 {
		t.Fatal("ladder too small")
	}
	for i := 1; i < len(NetflixLadder); i++ {
		if NetflixLadder[i] <= NetflixLadder[i-1] {
			t.Fatal("ladder must be increasing")
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a := YouFlash(50, 99)
	b := YouFlash(50, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate identical datasets")
	}
	c := YouFlash(50, 100)
	same := reflect.DeepEqual(a.Videos, c.Videos)
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestRenditionLadder(t *testing.T) {
	v := sample()
	if got := v.Ladder(); len(got) != 1 || got[0] != v.EncodingRate {
		t.Fatalf("single-bitrate ladder = %v", got)
	}
	lv := v.WithLadder(NetflixLadder...)
	if lv.EncodingRate != NetflixLadder[len(NetflixLadder)-1] {
		t.Fatalf("WithLadder must pin the top rung, got %v", lv.EncodingRate)
	}
	if len(lv.Ladder()) != len(NetflixLadder) {
		t.Fatalf("ladder = %v", lv.Ladder())
	}
	r0 := lv.AtRung(0)
	if r0.EncodingRate != NetflixLadder[0] || r0.Duration != lv.Duration {
		t.Fatalf("AtRung(0) = %+v", r0)
	}
	if lv.AtRung(-5).EncodingRate != NetflixLadder[0] || lv.AtRung(99).EncodingRate != NetflixLadder[len(NetflixLadder)-1] {
		t.Fatal("AtRung must clamp")
	}
	if r0.Size() >= lv.Size() {
		t.Fatal("a lower rung must be a smaller resource")
	}
	if lv.RungIndex(1600e3) != 2 || lv.RungIndex(777e3) != -1 {
		t.Fatalf("RungIndex broken: %d, %d", lv.RungIndex(1600e3), lv.RungIndex(777e3))
	}
	// The template's own Renditions slice is not aliased.
	shared := []float64{1e6, 2e6}
	a := v.WithLadder(shared...)
	shared[0] = 9e9
	if a.Renditions[0] != 1e6 {
		t.Fatal("WithLadder must copy the ladder")
	}
}

func TestFragHeaderRate(t *testing.T) {
	v := sample()
	hdr := EncodeMP4FragHeader(v, 1600e3, 4*time.Second)
	if got := FragHeaderRate(hdr); got != 1600e3 {
		t.Fatalf("rate from header = %v", got)
	}
	// Mid-payload headers are found (HTTP response header in front).
	payload := append([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n"), hdr...)
	payload = append(payload, make([]byte, 200)...)
	if got := FragHeaderRate(payload); got != 1600e3 {
		t.Fatalf("rate from mid-payload header = %v", got)
	}
	// Truncated headers and plain media bytes yield 0.
	if FragHeaderRate(hdr[:10]) != 0 || FragHeaderRate(make([]byte, 1400)) != 0 || FragHeaderRate(nil) != 0 {
		t.Fatal("false positive on truncated/zero payloads")
	}
}
