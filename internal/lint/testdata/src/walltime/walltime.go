package sim

import (
	"fmt"
	stdtime "time"
)

// Tick is duration data, not a clock read — legal.
const Tick = stdtime.Millisecond

// Step reads the wall clock mid-simulation. The renamed import proves
// detection resolves through the type checker, not the token "time".
func Step(prev stdtime.Time) stdtime.Duration {
	stdtime.Sleep(Tick)        // want "time.Sleep reads the wall clock"
	_ = stdtime.Now()          // want "time.Now reads the wall clock"
	return stdtime.Since(prev) // want "time.Since reads the wall clock"
}

// Wait arms a host timer.
func Wait() {
	<-stdtime.After(Tick) // want "time.After reads the wall clock"
}

// Elapsed formats a virtual duration — legal.
func Elapsed(d stdtime.Duration) string { return fmt.Sprint(d) }

// Parse builds times from data, which is deterministic — legal.
func Parse(s string) (stdtime.Time, error) {
	return stdtime.Parse(stdtime.RFC3339, s)
}
