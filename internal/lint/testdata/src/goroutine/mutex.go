package tcp

import "sync" // want "import .sync. in a single-goroutine cell package"

// Guard embeds a mutex; the import line is the diagnostic site.
type Guard struct {
	mu sync.Mutex
	n  int
}

// Bump takes the lock.
func (g *Guard) Bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}
