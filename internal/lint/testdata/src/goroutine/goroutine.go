package tcp

import "fmt"

// Fire spawns a second goroutine inside a cell.
func Fire() {
	go fmt.Println("boom") // want "go statement"
}

// Pipe builds and uses a channel.
func Pipe() {
	ch := make(chan int, 1) // want "channel type"
	ch <- 1                 // want "channel send"
	fmt.Println(<-ch)       // want "channel receive"
}

// Pick blocks on select. (ch1, ch2 share one chan type node.)
func Pick(ch1, ch2 chan int) { // want "channel type"
	select { // want "select statement"
	case <-ch1: // want "channel receive"
	case <-ch2: // want "channel receive"
	}
}

// Deref is an ordinary pointer deref, not a receive — legal.
func Deref(p *int) int { return *p }
