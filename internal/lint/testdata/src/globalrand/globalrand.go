package randfix

import "math/rand"

// Roll draws from the process-global source.
func Roll() int {
	return rand.Intn(6) // want "rand.Intn draws from the process-global source"
}

// Reseed perturbs every other global draw in the process.
func Reseed() {
	rand.Seed(42) // want "rand.Seed reseeds the process-global source"
}

// Pick passes a global-source function around by value.
var Pick = rand.Float64 // want "rand.Float64 draws from the process-global source"

// Local draws from an explicitly seeded generator — legal, and the
// rand.New/rand.NewSource constructors are exactly the escape route.
func Local(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Shuffle is legal through a *rand.Rand method too.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Shadow: a local identifier named rand is not the package.
func Shadow() int {
	rand := roller{}
	return rand.Intn(3)
}

type roller struct{}

func (roller) Intn(n int) int { return n - 1 }
