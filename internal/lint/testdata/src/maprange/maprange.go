package mapfix

import (
	"fmt"
	"slices"
	"sort"
)

// Emit leaks iteration order straight into output bytes.
func Emit(m map[string]int) {
	for k, v := range m { // want "range over map"
		fmt.Println(k, v)
	}
}

// Keys collects then sorts — the blessed stats.Sketch pattern.
func Keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// KeysViaSlices sorts through the slices package instead.
func KeysViaSlices(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// KeysUnsorted collects but never sorts — order escapes.
func KeysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want "range over map"
		ks = append(ks, k)
	}
	return ks
}

// Total folds commutatively into an integer.
func Total(m map[string]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

// Live counts under a call-free guard (the tcp.Host.ConnCount shape).
func Live(m map[string]int, floor int) int {
	n := 0
	for _, v := range m {
		if v > floor {
			n++
		}
	}
	return n
}

// Merge folds one count map into another (the stats.Sketch.Merge shape).
func Merge(dst, src map[int]int64) {
	for k, c := range src {
		dst[k] += c
	}
}

// SumFloats must not pass: float addition is not associative, so the
// visit order changes the low bits.
func SumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map"
		s += v
	}
	return s
}

// CallInBody must not pass even though it accumulates: the call could
// observe order.
func CallInBody(m map[string]int) int {
	n := 0
	for _, v := range m { // want "range over map"
		n += weigh(v)
	}
	return n
}

// Annotated carries the escape hatch with its commutativity argument.
func Annotated(m map[string]int) int {
	best := 0
	//vlint:unordered max of ints is commutative; ties produce the same value
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// MissingReason has the marker but no argument — still flagged.
func MissingReason(m map[string]int) {
	//vlint:unordered
	for k := range m { // want "needs a reason"
		fmt.Println(k)
	}
}

// Inline proves loops inside function literals are walked too.
var Inline = func(m map[int]int) {
	for k := range m { // want "range over map"
		fmt.Println(k)
	}
}

// OverSlice is out of the rule entirely.
func OverSlice(xs []int) {
	for i, x := range xs {
		fmt.Println(i, x)
	}
}

func weigh(v int) int { return v * 2 }
