package lint

import (
	"strings"
	"testing"
)

// The fixture suites: each analyzer must fire on every seeded
// violation and stay silent on the sorted / commutative / annotated /
// constructor patterns in the same files.

func TestMapRangeFixture(t *testing.T) {
	runFixture(t, MapRange, "maprange", "repro/internal/mapfix")
}

func TestMapRangeExemptOutsideInternal(t *testing.T) {
	// The same violations loaded under cmd/ are out of scope.
	expectSilent(t, MapRange, "maprange", "repro/cmd/mapfix")
}

func TestWallTimeFixture(t *testing.T) {
	runFixture(t, WallTime, "walltime", "repro/internal/sim")
}

func TestWallTimeAllowlist(t *testing.T) {
	// cmd/ binaries and non-simulation internals may read the clock.
	expectSilent(t, WallTime, "walltime", "repro/cmd/vclock")
	expectSilent(t, WallTime, "walltime", "repro/internal/lintish")
}

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, GlobalRand, "globalrand", "repro/internal/randfix")
}

func TestGlobalRandAppliesEverywhere(t *testing.T) {
	// Unlike walltime, the global-source rule has no cmd/ exemption:
	// the same fixture must fire under any path. Reuse the want
	// harness at a cmd-shaped import path.
	runFixture(t, GlobalRand, "globalrand", "repro/cmd/randfix")
}

func TestGoroutineFixture(t *testing.T) {
	runFixture(t, Goroutine, "goroutine", "repro/internal/tcp")
}

func TestGoroutineExemptAtRunnerLayer(t *testing.T) {
	// Parallelism is legal one layer up: the identical code under
	// runner (or scenario) must pass.
	expectSilent(t, Goroutine, "goroutine", "repro/internal/runner")
	expectSilent(t, Goroutine, "goroutine", "repro/internal/scenario")
}

// TestScopeHelpers pins the path predicates the rules key off.
func TestScopeHelpers(t *testing.T) {
	cases := []struct {
		path      string
		sim, cell bool
	}{
		{"repro/internal/sim", true, true},
		{"repro/internal/tcp", true, true},
		{"repro/internal/stats", true, false},
		{"repro/internal/analysis", true, false},
		{"repro/internal/scenario", true, false},
		{"repro/internal/runner", false, false},
		{"repro/internal/lint", false, false},
		{"repro/cmd/vfleet", false, false},
		{"repro/examples/fleet", false, false},
		{"sim", false, false}, // not under internal/
	}
	for _, c := range cases {
		if got := isSimulationPackage(c.path); got != c.sim {
			t.Errorf("isSimulationPackage(%q) = %v, want %v", c.path, got, c.sim)
		}
		if got := isCellPackage(c.path); got != c.cell {
			t.Errorf("isCellPackage(%q) = %v, want %v", c.path, got, c.cell)
		}
	}
}

// TestAnnotationPlacement pins where //vlint:unordered is honored:
// same line or the line directly above, nowhere else.
func TestAnnotationPlacement(t *testing.T) {
	pkg := loadFixture(t, "maprange", "repro/internal/mapfix")
	diags, err := Run(pkg, []*Analyzer{MapRange})
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's Annotated func must not appear in any diagnostic.
	for _, d := range diags {
		if strings.Contains(d.Message, "max of ints") {
			t.Errorf("annotated site still reported: %s", d)
		}
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics at all; wants went unchecked")
	}
}
