package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for … range` over a map in non-test internal/ code:
// Go randomizes map iteration order per run, so any such loop whose
// effects can reach output bytes breaks bit-identical replay. A site
// passes without annotation when it is provably order-insensitive:
//
//   - it only accumulates into integers commutatively (x++, x += e,
//     with call-free guards and operands) — integer addition is
//     associative and commutative, so any visit order folds to the
//     same value; or
//   - it only collects the keys into a slice that the same function
//     later hands to sort/slices (the stats.Sketch keys pattern).
//
// Anything else needs an explicit `//vlint:unordered <reason>` line
// carrying the commutativity argument.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration in internal/ packages unless provably order-insensitive, " +
		"key-sorted, or annotated //vlint:unordered <reason>",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	pkg := pass.Pkg
	if !underInternal(pkg.Path) {
		return nil
	}
	for _, file := range pkg.Files {
		// Walk with the enclosing function body at hand: the key-sort
		// pattern is a property of the loop and its continuation.
		var withBody func(n ast.Node, body *ast.BlockStmt)
		withBody = func(n ast.Node, body *ast.BlockStmt) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					withBody(n.Body, n.Body)
				}
				return
			case *ast.FuncLit:
				withBody(n.Body, n.Body)
				return
			case *ast.RangeStmt:
				checkMapRange(pass, file, n, body)
			}
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				switch c.(type) {
				case *ast.FuncDecl, *ast.FuncLit, *ast.RangeStmt:
					withBody(c, body)
					return false
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			withBody(decl, nil)
		}
	}
	return nil
}

func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	t := info.TypeOf(rng.X)
	if t == nil {
		return // unresolved (partial type info) — nothing provable either way
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if reason, ok := unorderedAt(pass.Fset(), file, rng.Pos()); ok {
		if reason == "" {
			pass.Reportf(rng.Pos(), "//vlint:unordered annotation needs a reason explaining why order cannot reach output")
		}
		return
	}
	if keysSortedLater(info, rng, funcBody) {
		return
	}
	if commutativeAccumulation(info, rng.Body.List) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map: iteration order is randomized; sort the keys, "+
		"reduce commutatively into integers, or annotate //vlint:unordered <reason>")
}

// keysSortedLater reports the collect-then-sort idiom: the loop body
// is exactly `ks = append(ks, k)` for the range key, and the same
// function later passes ks to a sort or slices call.
func keysSortedLater(info *types.Info, rng *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rng.Value != nil {
		if v, ok := rng.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || a0.Name != dst.Name {
		return false
	}
	if a1, ok := call.Args[1].(*ast.Ident); !ok || a1.Name != key.Name {
		return false
	}
	if funcBody == nil {
		return false
	}
	// The continuation must hand the slice to sort/slices before use.
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == dst.Name {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// commutativeAccumulation reports whether every statement is an
// order-insensitive integer fold: x++/x--, x op= e for commutative
// ops on integer lvalues, call-free if-guards around the same, and
// continue. Calls are banned anywhere (they could observe order);
// floats are banned because float addition is not associative.
func commutativeAccumulation(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(info, s.X) {
				return false
			}
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			default:
				return false
			}
			for _, lhs := range s.Lhs {
				if !isIntegerExpr(info, lhs) {
					return false
				}
			}
			for _, rhs := range s.Rhs {
				if containsCall(rhs) {
					return false
				}
			}
		case *ast.IfStmt:
			if s.Init != nil || containsCall(s.Cond) {
				return false
			}
			if !commutativeAccumulation(info, s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !commutativeAccumulation(info, e.List) {
					return false
				}
			case *ast.IfStmt:
				if !commutativeAccumulation(info, []ast.Stmt{e}) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.BlockStmt:
			if !commutativeAccumulation(info, s.List) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}
