package lint

// A miniature analysistest: fixtures under testdata/src/<name> carry
// `// want "regexp"` comments on the lines where their analyzer must
// fire; the harness loads the directory under a caller-chosen import
// path (so scope rules are exercised by path, not location), runs one
// analyzer, and requires an exact match between wants and
// diagnostics. This mirrors golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the stdlib because the module vendors nothing.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches type-checked stdlib packages across fixture
// tests; a fresh loader per test would re-check time/sync/fmt each
// run for no benefit.
var sharedLoader *Loader

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader("testdata")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// loadFixture type-checks testdata/src/<name> as importPath.
func loadFixture(t *testing.T, name, importPath string) *Package {
	t.Helper()
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// fixtureWants maps file base name and line to the expected
// diagnostic pattern.
type wantKey struct {
	file string
	line int
}

func fixtureWants(t *testing.T, name string) map[wantKey]string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[wantKey]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants[wantKey{e.Name(), i + 1}] = m[1]
			}
		}
	}
	return wants
}

// runFixture checks analyzer a over the named fixture loaded at
// importPath: every want line must produce one matching diagnostic,
// and no diagnostic may land on a line without a want.
func runFixture(t *testing.T, a *Analyzer, name, importPath string) {
	t.Helper()
	pkg := loadFixture(t, name, importPath)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	wants := fixtureWants(t, name)
	matched := make(map[wantKey]bool)
	for _, d := range diags {
		key := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		pat, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, d.Message)
			continue
		}
		if matched[key] {
			t.Errorf("second diagnostic at %s:%d: %s", key.file, key.line, d.Message)
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("bad want pattern %q at %s:%d: %v", pat, key.file, key.line, err)
		}
		if !re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s:%d = %q, want match for %q", key.file, key.line, d.Message, pat)
			continue
		}
		matched[key] = true
	}
	for key, pat := range wants {
		if !matched[key] {
			t.Errorf("no diagnostic at %s:%d, want match for %q", key.file, key.line, pat)
		}
	}
}

// expectSilent asserts the analyzer reports nothing for the fixture
// when loaded at an out-of-scope import path.
func expectSilent(t *testing.T, a *Analyzer, name, importPath string) {
	t.Helper()
	pkg := loadFixture(t, name, importPath)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		t.Errorf("analyzer %s fired at out-of-scope path %s: %s", a.Name, importPath, d)
	}
}
