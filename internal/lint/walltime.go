package lint

import (
	"go/ast"
	"go/types"
)

// WallTime forbids wall-clock reads inside the simulation packages.
// Everything under the event loop runs on virtual time
// (sim.Scheduler.Now); a time.Now or time.Sleep there ties results to
// the host's clock and scheduler, so two replays of the same seed
// diverge. cmd/, examples/ and _test.go files are exempt — measuring
// wall time at the process edge is fine.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Sleep (and friends) in simulation packages; virtual time only",
	Run:  runWallTime,
}

// wallClockFuncs are the time-package functions that read or wait on
// the host clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallTime(pass *Pass) error {
	if !isSimulationPackage(pass.Pkg.Path) {
		return nil
	}
	forEachPkgFuncRef(pass.Pkg, "time", func(sel *ast.SelectorExpr) {
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock inside a simulation package; "+
				"use the scheduler's virtual time (sim.Scheduler.Now)", sel.Sel.Name)
		}
	})
	return nil
}

// forEachPkgFuncRef calls fn for every reference to a package-level
// function of the package with import path pkgPath — resolved through
// the type checker, so renamed imports and shadowing locals are
// handled precisely.
func forEachPkgFuncRef(pkg *Package, pkgPath string, fn func(sel *ast.SelectorExpr)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[x].(*types.PkgName)
			if !ok || pn.Imported().Path() != pkgPath {
				return true
			}
			if _, ok := pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
				return true
			}
			fn(sel)
			return true
		})
	}
}
