package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Goroutine forbids concurrency constructs inside the cell-execution
// packages. A cell (one aggregation group with its scheduler, tree
// and sessions) runs on exactly one goroutine; parallelism is only
// legal one layer up, where runner/fleet code folds whole cells in a
// fixed order. A `go` statement, channel or mutex inside a cell
// package would reintroduce scheduling order as an input to results.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "forbid go statements, channels, select and sync primitives in single-goroutine cell packages",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) error {
	if !isCellPackage(pass.Pkg.Path) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				if path == "sync" || path == "sync/atomic" {
					pass.Reportf(imp.Pos(), "import %q in a single-goroutine cell package; "+
						"synchronization belongs to the runner/fleet layer", path)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in a single-goroutine cell package; "+
					"parallelism is only legal at the runner/fleet layer")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in a single-goroutine cell package")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in a single-goroutine cell package")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in a single-goroutine cell package; "+
					"cells communicate by return value through the fixed-order fold")
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in a single-goroutine cell package")
				}
			case *ast.RangeStmt:
				if t := pass.Pkg.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in a single-goroutine cell package")
					}
				}
			}
			return true
		})
	}
	return nil
}
