// Package lint is the repo's determinism-lint suite: a set of static
// analyzers that mechanically enforce the bit-identical-replay
// contract every experiment artifact rests on. A run must produce the
// same bytes across worker counts, shard hints, OS processes and
// replays; the analyzers reject the constructs that silently break
// that — map-iteration order reaching output, wall-clock reads inside
// the simulation, the global math/rand source, and goroutines or
// shared-memory synchronization inside single-goroutine cell packages.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer / Pass / Reportf / `// want` fixtures) but is built only
// on the standard library's go/ast + go/types, because this module
// vendors nothing. Drive it with `go run ./cmd/vlint ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one determinism rule. Run inspects a fully
// type-checked package and reports violations through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	Name string
	// Doc is the one-paragraph rule statement shown by `vlint -help`.
	Doc string
	// Run executes the rule over pass.Pkg.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the file set all package positions resolve through.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All is the multichecker suite in the order diagnostics are grouped.
var All = []*Analyzer{MapRange, WallTime, GlobalRand, Goroutine}

// Run executes the analyzers over one loaded package and returns the
// combined diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- package scoping -------------------------------------------------
//
// The rules key off the import path, so fixtures can impersonate any
// scope by loading a directory under a chosen path.

// simulationPackages are the packages whose code executes (or feeds)
// the virtual-time event loop: wall-clock reads there desynchronize
// replays. cmd/ and examples/ are deliberately absent — wall time is
// fine at the process edge.
var simulationPackages = map[string]bool{
	"sim": true, "netem": true, "tcp": true, "player": true,
	"session": true, "scenario": true, "stats": true, "analysis": true,
}

// cellPackages execute inside a single-goroutine cell; parallelism is
// only legal one layer up, at the runner/fleet boundary.
var cellPackages = map[string]bool{
	"sim": true, "tcp": true, "netem": true, "player": true, "session": true,
}

// pkgBase returns the final import-path segment.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// underInternal reports whether the import path has an "internal"
// segment — the scope the maprange rule patrols.
func underInternal(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// isSimulationPackage reports whether path is one of the virtual-time
// packages the walltime rule covers. The package allowlist is the
// complement: anything not internal/<sim pkg> (cmd/, examples/, the
// lint suite itself) may read the wall clock.
func isSimulationPackage(path string) bool {
	return underInternal(path) && simulationPackages[pkgBase(path)]
}

// isCellPackage reports whether path runs inside a single-goroutine
// cell (the goroutine rule's scope).
func isCellPackage(path string) bool {
	return underInternal(path) && cellPackages[pkgBase(path)]
}

// --- //vlint:unordered annotations -----------------------------------

const unorderedMarker = "vlint:unordered"

// unorderedAt returns the //vlint:unordered annotation covering the
// node starting at pos: a line comment on the same line or on the line
// immediately above. The text after the marker is the required
// commutativity argument.
func unorderedAt(fset *token.FileSet, file *ast.File, pos token.Pos) (reason string, ok bool) {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, unorderedMarker) {
				continue
			}
			cline := fset.Position(c.Pos()).Line
			if cline == line || cline == line-1 {
				return strings.TrimSpace(strings.TrimPrefix(text, unorderedMarker)), true
			}
		}
	}
	return "", false
}
