package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of non-test Go files, parsed with
// comments and fully type-checked. Test files are excluded by
// construction — every rule in the suite exempts _test.go.
type Package struct {
	// Path is the import path the rules scope on (module path + relative
	// directory, or whatever path the caller loaded the directory as).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checker complaints. The repo always
	// compiles, so these normally stay empty; the driver surfaces them
	// as warnings rather than silently analyzing partial information.
	TypeErrors []error
}

// A Loader parses and type-checks packages on demand. Imports inside
// the module resolve by directory mapping (module path prefix →
// subdirectory); everything else goes to the standard library's
// source importer, so the loader needs no network, no GOPATH
// artifacts and no vendored dependencies.
type Loader struct {
	// Root is the module root directory.
	Root string
	// Module is the module path from Root/go.mod ("" if absent; then
	// only explicit LoadDir calls and stdlib imports work).
	Module string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at dir, reading the module path
// from dir/go.mod when present.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Root:    abs,
		Module:  modulePath(filepath.Join(abs, "go.mod")),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from a go.mod file, or "".
func modulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer: module-internal paths load from
// disk, everything else falls through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if l.Module != "" && (path == l.Module || strings.HasPrefix(path, l.Module+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// LoadDir parses and type-checks the non-test Go files of one
// directory under the given import path. Results are cached by path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: importerFunc(l.Import),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.Info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Files = files
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// Packages expands the given patterns ("./...", "dir/...", or plain
// directories, relative to Root) and loads each matched package.
func (l *Loader) Packages(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.Root, filepath.FromSlash(strings.TrimSuffix(base, "/")))
			walked, err := packageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		add(filepath.Join(l.Root, filepath.FromSlash(pat)))
	}

	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := filepath.ToSlash(rel)
		if path == "." {
			path = ""
		}
		if l.Module != "" {
			path = strings.TrimSuffix(l.Module+"/"+path, "/")
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// packageDirs walks root collecting directories that contain at least
// one non-test Go file, skipping testdata, vendored and hidden trees.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			out = append(out, p)
		}
		return nil
	})
	return out, err
}

// goFileNames lists the non-test .go files of dir, sorted for
// deterministic parse (and therefore diagnostic) order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
