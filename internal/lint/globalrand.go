package lint

import (
	"go/ast"
)

// GlobalRand forbids the process-global math/rand source in non-test
// code, everywhere in the module. The global source is shared across
// goroutines and seeded per process, so any draw from it couples the
// result to scheduling and to unrelated draws elsewhere — randomness
// must flow through an explicitly seeded *rand.Rand (in simulation
// code, the scheduler's: sim.Scheduler.Rand()). Constructors that
// build such sources (rand.New, rand.NewSource, rand.NewZipf) stay
// legal; every top-level draw (rand.Intn, rand.Float64, …) and
// rand.Seed are violations.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid global math/rand functions; draw from a seeded *rand.Rand instead",
	Run:  runGlobalRand,
}

// randConstructors are the math/rand (and v2) functions that build an
// explicit generator instead of touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) error {
	report := func(sel *ast.SelectorExpr) {
		if randConstructors[sel.Sel.Name] {
			return
		}
		verb := "draws from"
		if sel.Sel.Name == "Seed" {
			verb = "reseeds"
		}
		pass.Reportf(sel.Pos(), "rand.%s %s the process-global source; "+
			"use a seeded *rand.Rand (sim.Scheduler.Rand() inside cells)", sel.Sel.Name, verb)
	}
	forEachPkgFuncRef(pass.Pkg, "math/rand", report)
	forEachPkgFuncRef(pass.Pkg, "math/rand/v2", report)
	return nil
}
