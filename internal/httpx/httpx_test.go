package httpx

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

type world struct {
	sch            *sim.Scheduler
	client, server *tcp.Host
}

func newWorld(seed int64) *world {
	sch := sim.NewScheduler(seed)
	client := tcp.NewHost(sch, 10, 0, 0, 1)
	server := tcp.NewHost(sch, 203, 0, 113, 10)
	prof := netem.Profile{Name: "t", Down: 20 * netem.Mbps, Up: 20 * netem.Mbps, RTT: 20 * time.Millisecond}
	path := netem.NewPath(sch, prof, client, server)
	client.SetLink(path.Up)
	server.SetLink(path.Down)
	return &world{sch: sch, client: client, server: server}
}

func (w *world) dial() *ClientConn {
	c := w.client.Dial(tcp.Config{RecvBuf: 1 << 20}, packet.EP(203, 0, 113, 10, 80))
	return NewClientConn(c)
}

func TestSimpleGET(t *testing.T) {
	w := newWorld(1)
	var gotPath string
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {
		gotPath = req.Path
		rw.WriteHeader(200, map[string]string{"Content-Length": "5", "Content-Type": "video/flv"})
		rw.Write([]byte("ABCDE"))
	})
	cc := w.dial()
	var resp *Response
	body := make([]byte, 0, 8)
	cc.OnResponse(func(r *Response) { resp = r })
	cc.OnBody(func(avail int) {
		buf := make([]byte, avail)
		n := cc.ReadBody(buf)
		body = append(body, buf[:n]...)
	})
	cc.Get("/video/42", map[string]string{"User-Agent": "sim"})
	w.sch.RunUntil(2 * time.Second)
	if gotPath != "/video/42" {
		t.Fatalf("server saw path %q", gotPath)
	}
	if resp == nil || resp.Status != 200 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Headers["content-type"] != "video/flv" {
		t.Fatalf("headers = %v", resp.Headers)
	}
	if string(body) != "ABCDE" {
		t.Fatalf("body = %q", body)
	}
}

func TestLargeZeroBody(t *testing.T) {
	w := newWorld(2)
	const size = 3 << 20
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {
		rw.WriteHeader(200, map[string]string{"Content-Length": strconv.Itoa(size)})
		rw.WriteZero(size)
	})
	cc := w.dial()
	got := 0
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	cc.Get("/big", nil)
	w.sch.RunUntil(30 * time.Second)
	if got != size {
		t.Fatalf("received %d, want %d", got, size)
	}
	if cc.BodyRemaining() != 0 {
		t.Fatalf("BodyRemaining = %d", cc.BodyRemaining())
	}
}

func TestRangeRequests(t *testing.T) {
	w := newWorld(3)
	const fileSize = int64(1 << 20)
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {
		start, end, ok := req.Range()
		if !ok {
			t.Errorf("no range header in %v", req.Headers)
			return
		}
		if end < 0 || end >= fileSize {
			end = fileSize - 1
		}
		n := int(end - start + 1)
		rw.WriteHeader(206, map[string]string{"Content-Length": strconv.Itoa(n)})
		rw.WriteZero(n)
	})
	cc := w.dial()
	var statuses []int
	got := 0
	cc.OnResponse(func(r *Response) { statuses = append(statuses, r.Status) })
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	cc.Get("/f", map[string]string{"Range": "bytes=0-65535"})
	w.sch.RunUntil(5 * time.Second)
	cc.Get("/f", map[string]string{"Range": "bytes=65536-131071"})
	w.sch.RunUntil(10 * time.Second)
	if len(statuses) != 2 || statuses[0] != 206 || statuses[1] != 206 {
		t.Fatalf("statuses = %v", statuses)
	}
	if got != 128<<10 {
		t.Fatalf("got %d body bytes, want %d", got, 128<<10)
	}
}

func TestRangeParsing(t *testing.T) {
	cases := []struct {
		in         string
		start, end int64
		ok         bool
	}{
		{"bytes=0-99", 0, 99, true},
		{"bytes=500-", 500, -1, true},
		{"bytes=abc-def", 0, 0, false},
		{"junk", 0, 0, false},
	}
	for _, c := range cases {
		r := &Request{Headers: map[string]string{"range": c.in}}
		s, e, ok := r.Range()
		if ok != c.ok || (ok && (s != c.start || e != c.end)) {
			t.Errorf("Range(%q) = %d,%d,%v; want %d,%d,%v", c.in, s, e, ok, c.start, c.end, c.ok)
		}
	}
	r := &Request{Headers: map[string]string{}}
	if _, _, ok := r.Range(); ok {
		t.Error("missing header must not parse")
	}
}

func TestResolveRange(t *testing.T) {
	const size = 1000
	cases := []struct {
		in       string
		start, n int64
		has, ok  bool
	}{
		{"bytes=0-99", 0, 100, true, true},
		{"bytes=900-", 900, 100, true, true},
		{"bytes=0-", 0, 1000, true, true},
		// End past EOF clamps to the last byte.
		{"bytes=990-5000", 990, 10, true, true},
		{"bytes=0-999999", 0, 1000, true, true},
		// Suffix ranges.
		{"bytes=-100", 900, 100, true, true},
		{"bytes=-1", 999, 1, true, true},
		// Suffix longer than the resource clamps to the whole file.
		{"bytes=-5000", 0, 1000, true, true},
		// Unsatisfiable: start at/past EOF, inverted, malformed, empty
		// suffix.
		{"bytes=1000-", 0, 0, true, false},
		{"bytes=5000-6000", 0, 0, true, false},
		{"bytes=5-4", 0, 0, true, false},
		{"bytes=-0", 0, 0, true, false},
		{"bytes=abc-def", 0, 0, true, false},
		{"junk", 0, 0, true, false},
		{"bytes=--5", 0, 0, true, false},
	}
	for _, c := range cases {
		r := &Request{Headers: map[string]string{"range": c.in}}
		start, n, has, ok := r.ResolveRange(size)
		if has != c.has || ok != c.ok || (ok && (start != c.start || n != c.n)) {
			t.Errorf("ResolveRange(%q) = %d,%d,%v,%v; want %d,%d,%v,%v",
				c.in, start, n, has, ok, c.start, c.n, c.has, c.ok)
		}
	}
	// No header at all.
	r := &Request{Headers: map[string]string{}}
	if _, _, has, _ := r.ResolveRange(size); has {
		t.Error("missing header must report hasRange=false")
	}
	// A zero-length resource satisfies nothing.
	r = &Request{Headers: map[string]string{"range": "bytes=0-"}}
	if _, _, _, ok := r.ResolveRange(0); ok {
		t.Error("empty resource must be unsatisfiable")
	}
	r = &Request{Headers: map[string]string{"range": "bytes=-10"}}
	if _, _, _, ok := r.ResolveRange(0); ok {
		t.Error("suffix on empty resource must be unsatisfiable")
	}
}

func TestZeroLengthBody(t *testing.T) {
	// A Content-Length: 0 response (the 404/416 shape) must complete
	// without a body phase and leave the connection usable for the
	// next exchange.
	w := newWorld(7)
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {
		if req.Path == "/empty" {
			rw.WriteHeader(416, map[string]string{"Content-Length": "0"})
			return
		}
		rw.WriteHeader(200, map[string]string{"Content-Length": "3"})
		rw.Write([]byte("abc"))
	})
	cc := w.dial()
	var statuses []int
	got := 0
	cc.OnResponse(func(r *Response) { statuses = append(statuses, r.Status) })
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	cc.Get("/empty", map[string]string{"Range": "bytes=5000-"})
	w.sch.RunUntil(2 * time.Second)
	cc.Get("/next", nil)
	w.sch.RunUntil(4 * time.Second)
	if len(statuses) != 2 || statuses[0] != 416 || statuses[1] != 200 {
		t.Fatalf("statuses = %v", statuses)
	}
	if got != 3 {
		t.Fatalf("body bytes = %d, want 3", got)
	}
	if cc.BodyRemaining() != 0 {
		t.Fatalf("BodyRemaining = %d", cc.BodyRemaining())
	}
}

func TestPipelinedSequentialRequests(t *testing.T) {
	// Two requests on one connection where responses arrive back to
	// back; the client must delimit them via Content-Length.
	w := newWorld(4)
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {
		n, _ := strconv.Atoi(req.Path[1:])
		rw.WriteHeader(200, map[string]string{"Content-Length": strconv.Itoa(n)})
		rw.WriteZero(n)
	})
	cc := w.dial()
	var sizes []int64
	got := 0
	cc.OnResponse(func(r *Response) { sizes = append(sizes, r.ContentLength) })
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	cc.Get("/1000", nil)
	cc.Get("/2000", nil) // pipelined immediately
	w.sch.RunUntil(5 * time.Second)
	if len(sizes) != 2 || sizes[0] != 1000 || sizes[1] != 2000 {
		t.Fatalf("sizes = %v", sizes)
	}
	if got != 3000 {
		t.Fatalf("got %d, want 3000", got)
	}
}

func TestSlowReaderClosesWindow(t *testing.T) {
	// The client never drains the body: the transfer must stall after
	// filling the receive buffer — the foundation of pull pacing.
	w := newWorld(5)
	const size = 4 << 20
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {
		rw.WriteHeader(200, map[string]string{"Content-Length": strconv.Itoa(size)})
		rw.WriteZero(size)
	})
	c := w.client.Dial(tcp.Config{RecvBuf: 128 << 10}, packet.EP(203, 0, 113, 10, 80))
	cc := NewClientConn(c)
	cc.Get("/big", nil)
	w.sch.RunUntil(3 * time.Second)
	buffered := cc.Conn.Buffered()
	if buffered == 0 || buffered > 128<<10 {
		t.Fatalf("buffered = %d, want (0, 128KiB]", buffered)
	}
	w.sch.RunUntil(6 * time.Second)
	if cc.Conn.Buffered() != buffered {
		t.Fatal("transfer did not stall with a full receive buffer")
	}
	// Now drain; it must complete.
	got := 0
	cc.OnBody(func(avail int) { got += cc.DiscardBody(avail) })
	var drain func()
	drain = func() {
		got += cc.DiscardBody(1 << 30)
		if got < size {
			w.sch.After(50*time.Millisecond, drain)
		}
	}
	w.sch.After(0, drain)
	w.sch.RunUntil(60 * time.Second)
	if got != size {
		t.Fatalf("drained %d/%d", got, size)
	}
}

func TestBadRequestAborts(t *testing.T) {
	w := newWorld(6)
	NewServer(w.server, 80, tcp.Config{}, func(req *Request, rw ResponseWriter) {})
	c := w.client.Dial(tcp.Config{}, packet.EP(203, 0, 113, 10, 80))
	closed := false
	c.SetCallbacks(tcp.Callbacks{
		OnConnected: func() { c.Write([]byte("NONSENSE\r\n\r\n")) },
		OnClosed:    func() { closed = true },
	})
	w.sch.RunUntil(2 * time.Second)
	if !closed {
		t.Fatal("malformed request should reset the connection")
	}
}

func TestParseRequestHeaders(t *testing.T) {
	req, err := parseRequest("GET /x HTTP/1.1\r\nHost: media\r\nRange: bytes=0-5\r\nX-Thing:  padded  ")
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/x" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["x-thing"] != "padded" {
		t.Fatalf("headers = %v", req.Headers)
	}
	if _, err := parseRequest("BROKEN"); err == nil {
		t.Fatal("bad request line must error")
	}
}

func TestParseResponseErrors(t *testing.T) {
	if _, err := parseResponse("HTTP/1.1 abc OK"); err == nil {
		t.Fatal("bad status must error")
	}
	if _, err := parseResponse("SPDY/3 200 OK"); err == nil {
		t.Fatal("bad proto must error")
	}
	if _, err := parseResponse("HTTP/1.1 200 OK\r\nContent-Length: xyz"); err == nil {
		t.Fatal("bad content-length must error")
	}
	r, err := parseResponse("HTTP/1.1 206 Partial Content\r\nContent-Length: 42")
	if err != nil || r.Status != 206 || r.ContentLength != 42 {
		t.Fatalf("parse = %+v, %v", r, err)
	}
}
