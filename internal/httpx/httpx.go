// Package httpx implements the minimal HTTP/1.1 subset the streaming
// services need on top of internal/tcp: GET requests with optional
// Range headers, responses with Content-Length, and persistent
// connections carrying multiple request/response exchanges (Netflix
// and the iPad player reuse and churn connections, Section 5.2).
//
// Everything is event-driven: a server registers a Handler; a client
// issues requests on a ClientConn and receives header callbacks, then
// reads body bytes at its own pace — the pace IS the experiment.
package httpx

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tcp"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Headers map[string]string
}

// Range returns the parsed Range header (start, end inclusive) and
// whether one was present. Only the single-range "bytes=a-b" and
// open-ended "bytes=a-" forms are supported.
func (r *Request) Range() (start, end int64, ok bool) {
	h, present := r.Headers["range"]
	if !present {
		return 0, 0, false
	}
	h = strings.TrimPrefix(h, "bytes=")
	parts := strings.SplitN(h, "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	if parts[1] == "" {
		return start, -1, true
	}
	end, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return start, end, true
}

// ResolveRange resolves the request's Range header against a resource
// of size bytes. It supports the full single-range grammar the
// per-rendition resources serve: "bytes=a-b" (end clamped to EOF),
// "bytes=a-" (open-ended) and "bytes=-n" (suffix: the last n bytes).
// hasRange is false when no Range header is present; ok is false when
// one is present but unsatisfiable (start at or past EOF, a malformed
// spec, or an empty suffix) — the 416 case.
func (r *Request) ResolveRange(size int64) (start, n int64, hasRange, ok bool) {
	h, present := r.Headers["range"]
	if !present {
		return 0, 0, false, false
	}
	// Suffix form ("bytes=-n") is the one shape Range() cannot carry;
	// everything else delegates to it so the grammar lives in one
	// place.
	if a, b, found := strings.Cut(strings.TrimPrefix(h, "bytes="), "-"); found && a == "" {
		want, err := strconv.ParseInt(b, 10, 64)
		if err != nil || want <= 0 {
			return 0, 0, true, false
		}
		if want > size {
			want = size
		}
		if want == 0 { // empty resource: nothing to satisfy
			return 0, 0, true, false
		}
		return size - want, want, true, true
	}
	s, e, valid := r.Range()
	if !valid || s < 0 || s >= size {
		return 0, 0, true, false
	}
	end := size - 1
	if e >= 0 {
		if e < s {
			return 0, 0, true, false
		}
		if e < end {
			end = e
		}
	}
	return s, end - s + 1, true, true
}

// ResponseWriter lets a handler emit a response. The body may be
// written incrementally and from timer callbacks — that is how the
// YouTube server paces Flash videos.
type ResponseWriter interface {
	// WriteHeader sends the status line and headers. Content-Length
	// must be included in headers for the client to find the body end.
	WriteHeader(status int, headers map[string]string)
	// Write appends body bytes (retained, do not mutate).
	Write(p []byte)
	// WriteZero appends n zero body bytes (bulk media).
	WriteZero(n int)
	// Conn exposes the underlying connection for pacing decisions.
	Conn() *tcp.Conn
}

// Handler serves one request. Handlers may keep writing after
// returning (server-side pacing).
type Handler func(req *Request, w ResponseWriter)

// Server attaches a Handler to a tcp.Host port.
type Server struct {
	handler Handler
}

// NewServer registers the handler on host:port with the given TCP
// config and returns the server.
func NewServer(host *tcp.Host, port uint16, cfg tcp.Config, handler Handler) *Server {
	s := &Server{handler: handler}
	host.Listen(port, cfg, func(c *tcp.Conn) {
		sc := &serverConn{srv: s, conn: c}
		c.SetCallbacks(tcp.Callbacks{
			OnReadable:    sc.onReadable,
			OnRemoteClose: func() {},
		})
	})
	return s
}

type serverConn struct {
	srv  *Server
	conn *tcp.Conn
	buf  []byte
}

// onReadable accumulates request bytes and dispatches every complete
// (possibly pipelined) request to the handler.
func (sc *serverConn) onReadable() {
	tmp := make([]byte, 4096)
	for {
		n := sc.conn.Read(tmp)
		if n == 0 {
			break
		}
		sc.buf = append(sc.buf, tmp[:n]...)
	}
	for {
		idx := strings.Index(string(sc.buf), "\r\n\r\n")
		if idx < 0 {
			return
		}
		head := string(sc.buf[:idx])
		sc.buf = sc.buf[idx+4:]
		req, err := parseRequest(head)
		if err != nil {
			sc.conn.Abort()
			return
		}
		w := &responseWriter{conn: sc.conn}
		sc.srv.handler(req, w)
	}
}

func parseRequest(head string) (*Request, error) {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("httpx: empty request")
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 3 {
		return nil, fmt.Errorf("httpx: bad request line %q", lines[0])
	}
	req := &Request{Method: parts[0], Path: parts[1], Headers: map[string]string{}}
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok {
			req.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	return req, nil
}

type responseWriter struct {
	conn        *tcp.Conn
	wroteHeader bool
}

func (w *responseWriter) WriteHeader(status int, headers map[string]string) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, statusText(status))
	// Sorted key order keeps wire bytes identical across runs, which
	// the determinism tests rely on.
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, headers[k])
	}
	b.WriteString("\r\n")
	w.conn.Write([]byte(b.String()))
}

func (w *responseWriter) Write(p []byte) {
	if !w.wroteHeader {
		w.WriteHeader(200, map[string]string{"Content-Length": strconv.Itoa(len(p))})
	}
	w.conn.Write(p)
}

func (w *responseWriter) WriteZero(n int) {
	if !w.wroteHeader {
		w.WriteHeader(200, map[string]string{"Content-Length": strconv.Itoa(n)})
	}
	w.conn.WriteZero(n)
}

func (w *responseWriter) Conn() *tcp.Conn { return w.conn }

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 404:
		return "Not Found"
	case 416:
		return "Range Not Satisfiable"
	default:
		return "Status"
	}
}

// Response is a parsed response header.
type Response struct {
	Status        int
	Headers       map[string]string
	ContentLength int64
}

// ClientConn drives requests over one TCP connection. Body bytes are
// NOT auto-drained: the application reads them from Body()/conn at its
// own pace, which closes the receive window when it falls behind —
// the client-side throttling mechanism the paper attributes to IE and
// Chrome.
type ClientConn struct {
	Conn *tcp.Conn

	onResponse func(*Response)
	onBody     func(avail int)

	buf       []byte
	inBody    bool
	bodyLeft  int64
	connected bool
	queued    []string // requests issued before connect completes
}

// NewClientConn wraps an established-or-connecting tcp.Conn.
func NewClientConn(c *tcp.Conn) *ClientConn {
	cc := &ClientConn{Conn: c}
	c.SetCallbacks(tcp.Callbacks{
		OnConnected: func() {
			cc.connected = true
			for _, r := range cc.queued {
				c.Write([]byte(r))
			}
			cc.queued = nil
		},
		OnReadable:    cc.onReadable,
		OnRemoteClose: func() {},
	})
	return cc
}

// OnResponse registers the header callback (one per request).
func (cc *ClientConn) OnResponse(fn func(*Response)) { cc.onResponse = fn }

// OnBody registers a callback fired when body bytes are available;
// avail is the readable byte count. The callback decides how much to
// consume via ReadBody/DiscardBody.
func (cc *ClientConn) OnBody(fn func(avail int)) { cc.onBody = fn }

// Get issues a GET request. headers may be nil.
func (cc *ClientConn) Get(path string, headers map[string]string) {
	var b strings.Builder
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: media\r\n", path)
	// Headers are wire bytes: emit in sorted order so the request (and
	// everything downstream of it) is identical across replays.
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, headers[k])
	}
	b.WriteString("\r\n")
	if cc.connected {
		cc.Conn.Write([]byte(b.String()))
	} else {
		cc.queued = append(cc.queued, b.String())
	}
}

// BodyAvailable returns the readable body byte count.
func (cc *ClientConn) BodyAvailable() int {
	if !cc.inBody {
		return 0
	}
	n := cc.Conn.Buffered()
	if int64(n) > cc.bodyLeft {
		n = int(cc.bodyLeft)
	}
	return n
}

// BodyRemaining returns body bytes of the current response not yet
// consumed (including bytes not yet arrived).
func (cc *ClientConn) BodyRemaining() int64 {
	if !cc.inBody {
		return 0
	}
	return cc.bodyLeft
}

// ReadBody copies up to len(p) body bytes.
func (cc *ClientConn) ReadBody(p []byte) int {
	if !cc.inBody {
		return 0
	}
	if int64(len(p)) > cc.bodyLeft {
		p = p[:cc.bodyLeft]
	}
	n := cc.Conn.Read(p)
	cc.consume(n)
	return n
}

// DiscardBody consumes up to n body bytes without copying.
func (cc *ClientConn) DiscardBody(n int) int {
	if !cc.inBody {
		return 0
	}
	if int64(n) > cc.bodyLeft {
		n = int(cc.bodyLeft)
	}
	got := cc.Conn.Discard(n)
	cc.consume(got)
	return got
}

func (cc *ClientConn) consume(n int) {
	cc.bodyLeft -= int64(n)
	if cc.bodyLeft == 0 {
		cc.inBody = false
		// A pipelined next response may already be buffered.
		if cc.Conn.Buffered() > 0 {
			cc.onReadable()
		}
	}
}

func (cc *ClientConn) onReadable() {
	for {
		if cc.inBody {
			if cc.onBody != nil && cc.BodyAvailable() > 0 {
				cc.onBody(cc.BodyAvailable())
			}
			return
		}
		// Header mode: peek (never consume past the header boundary,
		// so body accounting stays exact), find the blank line, then
		// consume exactly the header bytes.
		probe := make([]byte, maxHeaderBytes)
		n := cc.Conn.Peek(probe)
		if n == 0 {
			return
		}
		idx := strings.Index(string(probe[:n]), "\r\n\r\n")
		if idx < 0 {
			if n >= maxHeaderBytes {
				cc.Conn.Abort() // unparseable response
			}
			return
		}
		head := make([]byte, idx+4)
		cc.Conn.Read(head)
		resp, err := parseResponse(string(head[:idx]))
		if err != nil {
			cc.Conn.Abort()
			return
		}
		cc.inBody = resp.ContentLength > 0
		cc.bodyLeft = resp.ContentLength
		if cc.onResponse != nil {
			cc.onResponse(resp)
		}
		if !cc.inBody && cc.Conn.Buffered() == 0 {
			return
		}
	}
}

// maxHeaderBytes bounds response headers.
const maxHeaderBytes = 4096

func parseResponse(head string) (*Response, error) {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "HTTP/1.1 ") {
		return nil, fmt.Errorf("httpx: bad status line")
	}
	fields := strings.SplitN(lines[0], " ", 3)
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("httpx: bad status %q", fields[1])
	}
	resp := &Response{Status: status, Headers: map[string]string{}}
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok {
			resp.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	if cl, ok := resp.Headers["content-length"]; ok {
		resp.ContentLength, err = strconv.ParseInt(cl, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("httpx: bad content-length %q", cl)
		}
	}
	return resp, nil
}
