package repro

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/tcp"
)

// TestCcAllocParity is the perf gate the CC benchmarks feed: swapping
// the congestion controller must not change the session hot path's
// allocation profile. The controllers are flat structs initialized
// once per connection, so CUBIC and BBR-lite may not allocate more
// than 5% over Reno on the same capture.
func TestCcAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second session replays")
	}
	run := func(cc string) float64 {
		v := media.Video{ID: 99, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
		return testing.AllocsPerRun(3, func() {
			session.Run(session.Config{
				Video: v, Service: session.YouTube,
				Player:  player.NewFlashPlayer("Internet Explorer"),
				Network: netem.Research, Seed: 7,
				ServerTCP: tcp.Config{CC: cc},
			})
		})
	}
	reno := run(tcp.CCReno)
	if reno == 0 {
		t.Fatal("reno session reported zero allocations")
	}
	for _, cc := range []string{tcp.CCCubic, tcp.CCBbr} {
		if got := run(cc); got > reno*1.05 {
			t.Errorf("%s allocates %.0f allocs/session, more than 5%% over reno's %.0f", cc, got, reno)
		}
	}
}
