// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's experiment index):
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the corresponding experiment at paper scale
// (180 s captures) and prints the rows/series the paper reports on its
// first iteration, so a bench run doubles as the reproduction log
// recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/tcp"
)

// benchOpts is the paper-scale configuration: 180 s captures, a
// handful of videos per cell (the distributions stabilize quickly; the
// cmd/vsweep tool runs larger samples).
func benchOpts() experiments.Options {
	return experiments.Options{N: 8, Seed: 1}
}

var printOnce sync.Map

// emit prints an artifact once per benchmark name.
func emit(b *testing.B, artifact fmt.Stringer) {
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
		fmt.Print(artifact.String())
		fmt.Println()
	}
}

// BenchmarkSingleSession tracks the per-session hot-path cost
// (scheduler + link + TCP event machinery) with allocation stats: one
// 180 s Flash capture on the Research profile, in the default
// streaming-capture mode (online analyzer at the tap, segment pool
// on, no buffered trace).
func BenchmarkSingleSession(b *testing.B) {
	v := media.Video{ID: 99, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		session.Run(session.Config{
			Video: v, Service: session.YouTube,
			Player:  player.NewFlashPlayer("Internet Explorer"),
			Network: netem.Research, Seed: 7,
		})
	}
}

// benchSingleSessionCC is BenchmarkSingleSession with the server's
// congestion controller swapped — the per-CC hot-path cost. The CI
// perf smoke compares these against BenchmarkSingleSession (Reno):
// a controller is only mergeable if it does not regress allocs/op.
func benchSingleSessionCC(b *testing.B, cc string) {
	v := media.Video{ID: 99, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		session.Run(session.Config{
			Video: v, Service: session.YouTube,
			Player:  player.NewFlashPlayer("Internet Explorer"),
			Network: netem.Research, Seed: 7,
			ServerTCP: tcp.Config{CC: cc},
		})
	}
}

func BenchmarkSingleSessionCubic(b *testing.B) { benchSingleSessionCC(b, tcp.CCCubic) }

func BenchmarkSingleSessionBbr(b *testing.B) { benchSingleSessionCC(b, tcp.CCBbr) }

// BenchmarkSingleSessionBuffered is the same session in
// tcpdump-then-analyze mode: the full trace is retained (pinning every
// segment, pool off) and analyzed by replay. The B/op gap between this
// and BenchmarkSingleSession is the memory win of the sink pipeline.
func BenchmarkSingleSessionBuffered(b *testing.B) {
	v := media.Video{ID: 99, EncodingRate: 1e6, Duration: 300 * time.Second, Container: media.Flash, Resolution: "360p"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		session.Run(session.Config{
			Video: v, Service: session.YouTube,
			Player:  player.NewFlashPlayer("Internet Explorer"),
			Network: netem.Research, Seed: 7, Buffered: true,
		})
	}
}

func BenchmarkTable1StrategyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkTable2StrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure1Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure1(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure2ShortOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure2(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure3Buffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure3(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure4FlashSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure5Html5SteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure6LongOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure7IPad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure8NoOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure8(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure9AckClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure9(benchOpts(), false)
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure10NetflixStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure10(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure11NetflixBuffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure11(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkFigure12NetflixBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure12(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkModelAggregate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ModelAggregate(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkModelSmoothness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ModelSmoothness(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkModelInterruptionThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ModelInterruption(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkModelWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ModelWaste(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkAblationIdleReset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationIdleReset(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkAblationDelayedAck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationDelayedAck(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkAblationRecvBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationRecvBuffer(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkAblationLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationLoss(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkExtensionAggregateLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AggregateLoss(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkExtensionFluidCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AggregateFluidCheck(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkScenarioRateDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ScenarioRateDrop(benchOpts())
		emit(b, &res.Artifact)
	}
}

func BenchmarkScenarioFlashCrowd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ScenarioFlashCrowd(benchOpts())
		emit(b, &res.Artifact)
	}
}

// BenchmarkFleet tracks the fleet engine's scaling law: a mixed
// Short/No ON-OFF fleet on the multi-tier tree at growing client
// counts, fixed 30 s horizon. The claim under test is the memory
// regime — B/op must grow ~linearly with the client count (per-client
// slim state, sketches and fixed-width bins), never with the packet
// count. ns/op grows with carried traffic, which is client-linear
// here too. The normalized ns/op/client and B/op/client columns make
// the per-client cost comparable across the client counts (and across
// BENCH_<n>.json files): flat normalized columns = linear scaling.
func BenchmarkFleet(b *testing.B) {
	for _, clients := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			f := scenario.Fleet{
				Mix:      []scenario.MixEntry{{Player: scenario.Flash, Weight: 1}, {Player: scenario.FirefoxHtml5, Weight: 1}},
				Clients:  clients,
				Duration: 30 * time.Second,
				Arrival:  scenario.Arrival{Kind: scenario.Staggered, Window: 10 * time.Second},
				Seed:     7,
			}
			b.ReportAllocs()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			alloc0 := ms.TotalAlloc
			var offered int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := scenario.RunFleet(runner.Options{Workers: 1}, f)
				offered = res.CoreOffered
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms)
			perOpClient := float64(b.N) * float64(clients)
			b.ReportMetric(float64(offered)/float64(clients), "pkts/client")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/perOpClient, "ns/op/client")
			b.ReportMetric(float64(ms.TotalAlloc-alloc0)/perOpClient, "B/op/client")
		})
	}
}
