// Command vanalyze applies the paper's trace analysis to an existing
// libpcap capture (one produced by vsession, or by tcpdump with the
// raw-IP link type): phase detection, block sizes, accumulation ratio
// and strategy classification. The records stream straight through the
// sink pipeline — packets are never buffered in memory (captures that
// start mid-connection, with no handshake, defer 16 bytes per data
// packet until EOF; see analysis.Streaming) — and can be fanned out to
// a normalized pcap re-export at the same time.
//
// Usage:
//
//	vanalyze -client 10.0.0.1 [-duration 300] [-pcap out.pcap] session.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	client := flag.String("client", "10.0.0.1", "client (vantage) IPv4 address")
	duration := flag.Float64("duration", 0, "video duration in seconds (for the WebM rate fallback)")
	rate := flag.Float64("rate", 0, "known encoding rate in Mbps (optional)")
	pcapOut := flag.String("pcap", "", "re-export the parsed capture to this pcap file")
	verbose := flag.Bool("v", false, "print every ON-OFF cycle")
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: vanalyze [flags] capture.pcap")
	}
	addr, err := parseIPv4(*client)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	cfg := analysis.Config{
		KnownDuration: time.Duration(*duration * float64(time.Second)),
		KnownRate:     *rate * 1e6,
	}
	// The re-export rides the same packet stream as the analyzer via a
	// live PcapSink — one read of the input, two consumers, O(1)
	// memory even for multi-GB captures.
	var extra []trace.Sink
	var ps *trace.PcapSink
	var out *os.File
	tmpOut := *pcapOut + ".tmp"
	if *pcapOut != "" {
		// Stream into a temp file and rename only after a successful
		// run, so a malformed input never truncates a previous export.
		out, err = os.Create(tmpOut)
		if err != nil {
			fatalf("creating pcap: %v", err)
		}
		ps, err = trace.NewPcapSink(out, 0)
		if err != nil {
			fatalf("starting pcap stream: %v", err)
		}
		extra = append(extra, ps)
	}
	a, err := core.ClassifyPcapStream(f, addr, cfg, extra...)
	if err != nil {
		if out != nil {
			out.Close()
			os.Remove(tmpOut)
		}
		fatalf("%v", err)
	}
	if ps != nil {
		if err := ps.Close(); err != nil {
			fatalf("writing pcap: %v", err)
		}
		if err := out.Close(); err != nil {
			fatalf("closing pcap: %v", err)
		}
		if err := os.Rename(tmpOut, *pcapOut); err != nil {
			fatalf("finalizing pcap: %v", err)
		}
	}
	fmt.Printf("strategy          : %s\n", a.Strategy)
	fmt.Printf("connections       : %d\n", a.ConnCount)
	fmt.Printf("total downstream  : %.2f MB over %.1f s\n", float64(a.TotalBytes)/1e6, a.Duration.Seconds())
	fmt.Printf("buffering phase   : %.2f s, %.2f MB\n", a.BufferingEnd.Seconds(), float64(a.BufferedBytes)/1e6)
	if a.HasSteadyState {
		fmt.Printf("steady state      : %d blocks, median %.0f kB, rate %.2f Mbps\n",
			len(a.Blocks), float64(a.MedianBlock())/1e3, a.SteadyRate/1e6)
	}
	if a.Media.EncodingRate > 0 {
		fmt.Printf("encoding rate     : %.2f Mbps (source: %s, container: %s)\n",
			a.Media.EncodingRate/1e6, a.Media.RateSource, a.Media.Container)
	}
	if a.AccumulationRatio > 0 {
		fmt.Printf("accumulation ratio: %.2f\n", a.AccumulationRatio)
	}
	fmt.Printf("retransmissions   : %d/%d data segments (%.2f%%)\n", a.Retrans, a.DataSegs, a.RetransRate*100)
	fmt.Printf("estimated RTT     : %v\n", a.RTT)
	if *verbose {
		for i, c := range a.Cycles {
			fmt.Printf("cycle %3d: %8.3fs..%8.3fs %10d bytes, OFF %v\n",
				i, c.Start.Seconds(), c.End.Seconds(), c.Bytes, c.OffAfter)
		}
	}
}

func parseIPv4(s string) ([4]byte, error) {
	var out [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return out, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return out, fmt.Errorf("bad IPv4 %q", s)
		}
		out[i] = byte(v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vanalyze: "+format+"\n", args...)
	os.Exit(1)
}
