// Command vsession runs one simulated streaming session — the
// equivalent of the paper's "start tcpdump, load the video URL, stop
// after 180 seconds" loop — and writes the capture plus an analysis
// summary.
//
// Usage:
//
//	vsession -app flash-ie -network Research -rate 1.0 -dur 300 \
//	         -capture 180 -pcap session.pcap -csv series.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/netem"
)

func main() {
	app := flag.String("app", "flash-ie", "application (see -list)")
	network := flag.String("network", "Research", "vantage network: Research, Residence, Academic, Home")
	rate := flag.Float64("rate", 1.0, "video encoding rate in Mbps")
	dur := flag.Float64("dur", 300, "video duration in seconds")
	capture := flag.Float64("capture", 180, "capture duration in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	pcapPath := flag.String("pcap", "", "write the capture to this pcap file")
	csvPath := flag.String("csv", "", "write the cumulative download series to this CSV file")
	list := flag.Bool("list", false, "list application keys and exit")
	flag.Parse()

	if *list {
		for _, a := range core.Applications() {
			fmt.Println(a)
		}
		return
	}
	prof, ok := netem.ProfileByName(*network)
	if !ok {
		fatalf("unknown network %q", *network)
	}
	container := media.Flash
	resolution := "360p"
	switch *app {
	case "html5-ie", "html5-firefox", "html5-chrome", "youtube-android", "youtube-ipad":
		container = media.HTML5
	case "netflix-pc", "netflix-ipad", "netflix-android":
		container = media.Silverlight
		resolution = "adaptive"
	}
	v := media.Video{
		ID:           1,
		Title:        "cli-video",
		EncodingRate: *rate * 1e6,
		Duration:     time.Duration(*dur * float64(time.Second)),
		Container:    container,
		Resolution:   resolution,
	}
	res, err := core.Stream(core.StreamConfig{
		Video: v, App: core.Application(*app), Network: prof,
		Seed: *seed, DurationSeconds: *capture,
		// Streaming capture by default; buffer only what the output
		// flags actually need.
		Buffered: *pcapPath != "",
		Series:   *csvPath != "",
	})
	if err != nil {
		fatalf("%v", err)
	}
	a := res.Analysis
	fmt.Printf("session : %s on %s, %s\n", *app, prof.Name, v)
	fmt.Printf("capture : %d packets, %.2f MB down, %d connections\n",
		res.Packets, float64(a.TotalBytes)/1e6, a.ConnCount)
	fmt.Printf("result  : %s\n", a)
	q := res.QoE
	fmt.Printf("playback: startup %.2f s, %d rebuffer(s) (%.1f s), %d switch(es)\n",
		q.StartupDelay.Seconds(), q.Rebuffers, q.RebufferTime.Seconds(), q.Switches)
	if len(a.Rungs) > 0 {
		fmt.Printf("rungs   : %d rendition cycle(s), %d switch(es) on the wire\n",
			len(a.Rungs), a.RungSwitches)
	}

	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fatalf("creating pcap: %v", err)
		}
		if err := res.WritePcap(f); err != nil {
			fatalf("writing pcap: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing pcap: %v", err)
		}
		fmt.Printf("pcap    : %s\n", *pcapPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("creating csv: %v", err)
		}
		w := csv.NewWriter(f)
		_ = w.Write([]string{"t_seconds", "bytes"})
		for _, p := range res.Download {
			_ = w.Write([]string{
				strconv.FormatFloat(p.TS.Seconds(), 'f', 6, 64),
				strconv.FormatInt(p.Bytes, 10),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatalf("writing csv: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing csv: %v", err)
		}
		fmt.Printf("csv     : %s\n", *csvPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vsession: "+format+"\n", args...)
	os.Exit(1)
}
