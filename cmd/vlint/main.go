// Command vlint runs the repo's determinism-lint suite: four static
// analyzers (maprange, walltime, globalrand, goroutine) that enforce
// the bit-identical-replay contract at the toolchain level instead of
// leaving it to golden tests and reviewer vigilance. See the README's
// "Determinism contract" section for the rules and the
// //vlint:unordered escape hatch.
//
// Usage:
//
//	go run ./cmd/vlint ./...          # whole module (the CI gate)
//	go run ./cmd/vlint ./internal/sim ./internal/tcp
//	go run ./cmd/vlint -help          # rule documentation
//
// Exit status is 1 when any diagnostic is reported, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker; factored from main so cmd/vlint's
// own tests can drive it over fixture modules.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root to lint (default: nearest go.mod above the working directory)")
	help := fs.Bool("help", false, "print the analyzer rule documentation and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vlint [-root dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *help {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *root == "" {
		dir, err := findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "vlint:", err)
			return 2
		}
		*root = dir
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintln(stderr, "vlint:", err)
		return 2
	}
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "vlint:", err)
		return 2
	}

	bad := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "vlint: warning: %s: %v\n", pkg.Path, terr)
		}
		diags, err := lint.Run(pkg, lint.All)
		if err != nil {
			fmt.Fprintln(stderr, "vlint:", err)
			return 2
		}
		for _, d := range diags {
			bad++
			pos := d.Pos
			if rel, err := filepath.Rel(*root, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Fprintf(stdout, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stdout, "vlint: %d violation(s)\n", bad)
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, mirroring the go tool's module resolution.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
