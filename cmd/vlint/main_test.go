package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

var diagLine = regexp.MustCompile(`\.go:\d+:\d+: .+ \((maprange|walltime|globalrand|goroutine)\)$`)

// TestBadModule drives the multichecker over a known-bad fixture
// module in which each analyzer has exactly one seeded violation, and
// asserts each fires exactly once.
func TestBadModule(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-root", "testdata/badmod", "./..."}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errs.String())
	}
	if errs.Len() != 0 {
		t.Errorf("unexpected warnings:\n%s", errs.String())
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if m := diagLine.FindStringSubmatch(line); m != nil {
			counts[m[1]]++
		}
	}
	for _, name := range []string{"maprange", "walltime", "globalrand", "goroutine"} {
		if counts[name] != 1 {
			t.Errorf("analyzer %s fired %d times, want exactly 1\noutput:\n%s",
				name, counts[name], out.String())
		}
	}
	if !strings.Contains(out.String(), "vlint: 4 violation(s)") {
		t.Errorf("missing summary line in output:\n%s", out.String())
	}
}

// TestRepoClean is the acceptance gate in test form: the suite must
// exit 0 over the entire module, i.e. every real map-range site is
// sorted, provably commutative, or annotated, and no simulation code
// touches the wall clock, the global rand source, or goroutines.
func TestRepoClean(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-root", "../..", "./..."}, &out, &errs)
	if code != 0 {
		t.Fatalf("vlint on the repo exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errs.String())
	}
	if errs.Len() != 0 {
		t.Errorf("type-check warnings over the repo (loader should resolve everything):\n%s", errs.String())
	}
}

// TestHelpListsAnalyzers keeps -help wired to the suite.
func TestHelpListsAnalyzers(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-help"}, &out, &errs); code != 0 {
		t.Fatalf("-help exited %d", code)
	}
	for _, name := range []string{"maprange", "walltime", "globalrand", "goroutine"} {
		if !strings.Contains(out.String(), name+":") {
			t.Errorf("-help output missing %s:\n%s", name, out.String())
		}
	}
}
