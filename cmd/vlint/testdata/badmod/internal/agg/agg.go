// Package agg is a deliberately broken internal package: one
// order-leaking map iteration (maprange) and one global-source draw
// (globalrand), exactly one violation per analyzer.
package agg

import (
	"fmt"
	"math/rand"
)

// Dump prints in map order.
func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// Roll draws from the process-global source.
func Roll() int {
	return rand.Intn(6)
}
