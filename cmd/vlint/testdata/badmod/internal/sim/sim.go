// Package sim is a deliberately broken cell package: one wall-clock
// read (walltime) and one spawned goroutine (goroutine), exactly one
// violation per analyzer.
package sim

import "time"

// Boot waits on the host clock inside the event loop.
func Boot() {
	time.Sleep(time.Millisecond)
}

// Fan runs a cell concurrently.
func Fan() {
	go Boot()
}
