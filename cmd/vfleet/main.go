// Command vfleet runs a fleet-scale simulation: hundreds of thousands
// of concurrent streaming sessions of a strategy mix on the
// multi-tier tree topology (per-client access links → shared
// aggregation links → one core uplink), reporting streaming aggregate
// statistics — per-tier utilization, per-client QoE quantiles, and
// the aggregation-link burstiness the paper's closing argument is
// about. Memory is O(clients), never O(packets), and results are
// bit-identical for any -workers, -shards or -distributed value.
//
// Usage:
//
//	vfleet -clients 1000 -mix flash:1+firefox:1 -duration 120
//	vfleet -clients 256 -mix chrome -arrival poisson -series
//	vfleet -clients 1000000 -duration 5 -distributed 4 -result-out fleet.bin
//
// With -distributed N the fleet's cells are split into N contiguous
// ranges, each simulated by a re-invocation of this binary (the hidden
// -cells lo:hi child mode) streaming serialized per-cell results over
// its stdout; the parent merges the streams into the same bytes a
// single-process run produces.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vfleet:", err)
	os.Exit(1)
}

func main() {
	clients := flag.Int("clients", 256, "concurrent sessions")
	mix := flag.String("mix", "flash:1+firefox:1", "strategy mix, e.g. flash:2+firefox:1 (see -players)")
	duration := flag.Float64("duration", 120, "horizon seconds")
	warmup := flag.Float64("warmup", 0, "statistics warm-up seconds (0 = duration/4)")
	seed := flag.Int64("seed", 1, "random seed")
	shards := flag.Int("shards", 1, "deprecated execution hint; results never depend on it")
	workers := flag.Int("workers", 0, "cell worker pool (0 = one per CPU); results identical for any value")
	perAgg := flag.Int("peragg", 0, "clients per aggregation link (0 = 32)")
	bin := flag.Float64("bin", 1, "utilization bin seconds")
	arrival := flag.String("arrival", "staggered", "arrival process: all-at-once, staggered, poisson, flash-crowd")
	window := flag.Float64("window", 30, "arrival window seconds")
	accessDown := flag.Float64("access-down", 0, "access down-link Mbps (0 = 6)")
	aggDown := flag.Float64("agg-down", 0, "aggregation down-link Mbps (0 = 200)")
	coreDown := flag.Float64("core-down", 0, "core down-link Mbps (0 = 2000)")
	series := flag.Bool("series", false, "print the per-bin core/agg utilization and concurrency series")
	players := flag.Bool("players", false, "list player kind names and exit")
	abrMode := flag.Bool("abr", false, "run the ABR headline comparison: fixed-top vs rate-based vs buffer-based controllers under a rate-drop timeline")
	down := flag.String("down", "", `dynamics timeline for every aggregation downstream link, e.g. "rate@40s=24Mbps; outage@90s=5s" (with -abr, default drops to 24 Mbps at duration/3)`)
	ccMix := flag.String("cc", "", "server congestion-control mix per client, e.g. cubic or reno:2+cubic:1+bbr:1 (empty = reno)")
	aqm := flag.String("aqm", "", "queue policy on aggregation+access downstream links: droptail, red or codel (empty = droptail)")
	distributed := flag.Int("distributed", 0, "fork the run across N OS processes (merged result is bit-identical to -distributed 0)")
	cellRange := flag.String("cells", "", "child mode: run cells lo:hi and stream serialized per-cell results to stdout")
	resultOut := flag.String("result-out", "", "write the serialized FleetResult to this file (bit-identical across -workers/-shards/-distributed)")
	freshWorlds := flag.Bool("fresh-worlds", false, "build a fresh cell world per cell instead of recycling one per worker (slow; results are bit-identical either way)")
	memstats := flag.Bool("memstats", false, "print Go runtime memory statistics (HeapAlloc/TotalAlloc/NumGC) after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file (taken after the run)")
	flag.Parse()

	if *players {
		for _, k := range scenario.PlayerKinds() {
			fmt.Printf("%-16s (%s)\n", k, k.Service())
		}
		return
	}
	entries, err := scenario.ParseMix(*mix)
	if err != nil {
		fatal(err)
	}
	var kind scenario.ArrivalKind
	switch *arrival {
	case "all-at-once":
		kind = scenario.AllAtOnce
	case "staggered":
		kind = scenario.Staggered
	case "poisson":
		kind = scenario.Poisson
	case "flash-crowd":
		kind = scenario.FlashCrowd
	default:
		fatal(fmt.Errorf("unknown arrival %q", *arrival))
	}
	dur := time.Duration(*duration * float64(time.Second))
	var dyn netem.Dynamics
	if *down != "" {
		dyn, err = scenario.ParseDynamics(*down)
		if err != nil {
			fatal(err)
		}
	} else if *abrMode {
		dyn = netem.Dynamics{}.Then(netem.RateStep(dur/3, 24*netem.Mbps))
	}
	f := scenario.Fleet{
		Mix:      entries,
		Clients:  *clients,
		Duration: dur,
		Warmup:   time.Duration(*warmup * float64(time.Second)),
		Seed:     *seed,
		Shards:   *shards,
		Down:     dyn,
		UtilBin:  time.Duration(*bin * float64(time.Second)),
		Arrival:  scenario.Arrival{Kind: kind, Window: time.Duration(*window * float64(time.Second))},
	}
	f.FreshWorlds = *freshWorlds
	f.Tree.ClientsPerAgg = *perAgg
	f.Tree.Access.Down = netem.Bandwidth(*accessDown) * netem.Mbps
	f.Tree.Agg.Down = netem.Bandwidth(*aggDown) * netem.Mbps
	f.Tree.Core.Down = netem.Bandwidth(*coreDown) * netem.Mbps
	if *ccMix != "" {
		f.CCMix, err = scenario.ParseCCMix(*ccMix)
		if err != nil {
			fatal(err)
		}
	}
	if *aqm != "" {
		a, err := netem.ParseAqm(*aqm)
		if err != nil {
			fatal(err)
		}
		f.Tree.Agg.AQM = a
		f.Tree.Access.AQM = a
	}
	if err := f.Validate(); err != nil {
		fatal(err)
	}
	if *abrMode && (*distributed > 0 || *cellRange != "" || *resultOut != "") {
		fatal(fmt.Errorf("-abr runs three fleets; it cannot combine with -distributed, -cells or -result-out"))
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fatal(err)
			}
		}()
	}

	// Child mode: simulate one contiguous cell range, stream serialized
	// per-cell results to stdout, print nothing else.
	if *cellRange != "" {
		lo, hi, err := parseRange(*cellRange)
		if err != nil {
			fatal(err)
		}
		if err := scenario.WriteFleetCells(os.Stdout, runner.Options{Workers: *workers}, f, lo, hi); err != nil {
			fatal(err)
		}
		return
	}

	if *abrMode {
		// The headline comparison: the same fleet under the same
		// timeline, once per controller. Mix is overridden.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "mix" {
				fmt.Fprintln(os.Stderr, "vfleet: -abr runs one fleet per controller; ignoring -mix")
			}
		})
		start := time.Now()
		for _, k := range []scenario.PlayerKind{scenario.AbrFixed, scenario.AbrRate, scenario.AbrBuffer} {
			cf := f
			cf.Name = "abr/" + k.String()
			cf.Mix = []scenario.MixEntry{{Player: k, Weight: 1}}
			res := scenario.RunFleet(runner.Options{Workers: *workers}, cf)
			fmt.Print(res.Render())
			fmt.Println()
		}
		fmt.Printf("[abr comparison completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	start := time.Now()
	var res *scenario.FleetResult
	if *distributed > 0 {
		res, err = runDistributed(f, *distributed, *workers, *mix, *down, *ccMix, *aqm)
		if err != nil {
			fatal(err)
		}
	} else {
		res = scenario.RunFleet(runner.Options{Workers: *workers}, f)
	}
	fmt.Print(res.Render())
	if *series {
		fmt.Printf("\n# %-8s %-12s %-12s %-12s\n", "bin s", "core Mbps", "agg Mbps", "concurrent")
		core := res.CoreUtil.PerSecond()
		agg := res.AggUtil.PerSecond()
		conc := res.Concurrency()
		for i := range core {
			fmt.Printf("%-10.1f %-12.2f %-12.2f %-12.0f\n",
				float64(i)*res.CoreUtil.Width.Seconds(), core[i]*8/1e6, agg[i]*8/1e6, conc[i])
		}
	}
	if *resultOut != "" {
		data, err := res.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*resultOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("[result: %d bytes -> %s]\n", len(data), *resultOut)
	}
	if *memstats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Printf("[memstats: heap %.1f MB, total alloc %.1f MB, gc %d]\n",
			float64(ms.HeapAlloc)/(1<<20), float64(ms.TotalAlloc)/(1<<20), ms.NumGC)
	}
	fmt.Printf("[fleet completed in %v]\n", time.Since(start).Round(time.Millisecond))
}

func parseRange(s string) (lo, hi int, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("bad -cells range %q (want lo:hi)", s)
	}
	return lo, hi, nil
}

// runDistributed splits the fleet's cells into n contiguous ranges and
// re-invokes this binary once per range (child mode -cells lo:hi).
// Children stream serialized per-cell results over stdout — never
// locally folded partials — so the parent performs the one global left
// fold in cell order and the merged result is bit-identical to a
// single-process run.
func runDistributed(f scenario.Fleet, n, workers int, mix, down, ccMix, aqm string) (*scenario.FleetResult, error) {
	cells := f.Cells()
	if n > cells {
		n = cells
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	// The child re-derives the identical Fleet spec from flags; the
	// spec itself never crosses the pipe.
	base := []string{
		"-clients", strconv.Itoa(f.Clients),
		"-mix", mix,
		"-duration", fmt.Sprint(f.Duration.Seconds()),
		"-warmup", fmt.Sprint(f.Warmup.Seconds()),
		"-seed", strconv.FormatInt(f.Seed, 10),
		"-peragg", strconv.Itoa(f.Tree.ClientsPerAgg),
		"-bin", fmt.Sprint(f.UtilBin.Seconds()),
		"-arrival", arrivalName(f.Arrival.Kind),
		"-window", fmt.Sprint(f.Arrival.Window.Seconds()),
		"-access-down", fmt.Sprint(float64(f.Tree.Access.Down) / float64(netem.Mbps)),
		"-agg-down", fmt.Sprint(float64(f.Tree.Agg.Down) / float64(netem.Mbps)),
		"-core-down", fmt.Sprint(float64(f.Tree.Core.Down) / float64(netem.Mbps)),
		"-workers", strconv.Itoa(workers),
	}
	if down != "" {
		base = append(base, "-down", down)
	}
	if f.FreshWorlds {
		base = append(base, "-fresh-worlds")
	}
	if ccMix != "" {
		base = append(base, "-cc", ccMix)
	}
	if aqm != "" {
		base = append(base, "-aqm", aqm)
	}

	type child struct {
		cmd *exec.Cmd
		out bytes.Buffer
	}
	kids := make([]*child, n)
	var wg sync.WaitGroup
	per, rem := cells/n, cells%n
	lo := 0
	for i := range kids {
		hi := lo + per
		if i < rem {
			hi++
		}
		args := append(append([]string(nil), base...), "-cells", fmt.Sprintf("%d:%d", lo, hi))
		k := &child{cmd: exec.Command(exe, args...)}
		k.cmd.Stderr = os.Stderr
		pipe, err := k.cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := k.cmd.Start(); err != nil {
			return nil, err
		}
		kids[i] = k
		wg.Add(1)
		go func() {
			defer wg.Done()
			io.Copy(&k.out, pipe)
		}()
		lo = hi
	}
	wg.Wait()
	readers := make([]io.Reader, n)
	for i, k := range kids {
		if err := k.cmd.Wait(); err != nil {
			return nil, fmt.Errorf("child %d: %w", i, err)
		}
		readers[i] = &k.out
	}
	return scenario.MergeFleetCellStreams(f, readers...)
}

func arrivalName(k scenario.ArrivalKind) string {
	switch k {
	case scenario.AllAtOnce:
		return "all-at-once"
	case scenario.Poisson:
		return "poisson"
	case scenario.FlashCrowd:
		return "flash-crowd"
	default:
		return "staggered"
	}
}
