// Command vfleet runs a fleet-scale simulation: hundreds to thousands
// of concurrent streaming sessions of a strategy mix on the
// multi-tier tree topology (per-client access links → shared
// aggregation links → one core uplink), reporting streaming aggregate
// statistics — per-tier utilization, per-client QoE quantiles, and
// the aggregation-link burstiness the paper's closing argument is
// about. Memory is O(clients), never O(packets), and results are
// bit-identical for any -workers value.
//
// Usage:
//
//	vfleet -clients 1000 -mix flash:1+firefox:1 -duration 120
//	vfleet -clients 256 -mix chrome -arrival poisson -series
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	clients := flag.Int("clients", 256, "concurrent sessions")
	mix := flag.String("mix", "flash:1+firefox:1", "strategy mix, e.g. flash:2+firefox:1 (see -players)")
	duration := flag.Float64("duration", 120, "horizon seconds")
	warmup := flag.Float64("warmup", 0, "statistics warm-up seconds (0 = duration/4)")
	seed := flag.Int64("seed", 1, "random seed")
	shards := flag.Int("shards", 1, "independent tree shards (statistics merge deterministically)")
	workers := flag.Int("workers", 0, "shard worker pool (0 = one per CPU); results identical for any value")
	perAgg := flag.Int("peragg", 0, "clients per aggregation link (0 = 32)")
	bin := flag.Float64("bin", 1, "utilization bin seconds")
	arrival := flag.String("arrival", "staggered", "arrival process: all-at-once, staggered, poisson, flash-crowd")
	window := flag.Float64("window", 30, "arrival window seconds")
	accessDown := flag.Float64("access-down", 0, "access down-link Mbps (0 = 6)")
	aggDown := flag.Float64("agg-down", 0, "aggregation down-link Mbps (0 = 200)")
	coreDown := flag.Float64("core-down", 0, "core down-link Mbps (0 = 2000)")
	series := flag.Bool("series", false, "print the per-bin core/agg utilization and concurrency series")
	players := flag.Bool("players", false, "list player kind names and exit")
	abrMode := flag.Bool("abr", false, "run the ABR headline comparison: fixed-top vs rate-based vs buffer-based controllers under a rate-drop timeline")
	down := flag.String("down", "", `dynamics timeline for every aggregation downstream link, e.g. "rate@40s=24Mbps; outage@90s=5s" (with -abr, default drops to 24 Mbps at duration/3)`)
	flag.Parse()

	if *players {
		for _, k := range scenario.PlayerKinds() {
			fmt.Printf("%-16s (%s)\n", k, k.Service())
		}
		return
	}
	entries, err := scenario.ParseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vfleet:", err)
		os.Exit(1)
	}
	var kind scenario.ArrivalKind
	switch *arrival {
	case "all-at-once":
		kind = scenario.AllAtOnce
	case "staggered":
		kind = scenario.Staggered
	case "poisson":
		kind = scenario.Poisson
	case "flash-crowd":
		kind = scenario.FlashCrowd
	default:
		fmt.Fprintf(os.Stderr, "vfleet: unknown arrival %q\n", *arrival)
		os.Exit(1)
	}
	dur := time.Duration(*duration * float64(time.Second))
	var dyn netem.Dynamics
	if *down != "" {
		dyn, err = scenario.ParseDynamics(*down)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vfleet:", err)
			os.Exit(1)
		}
	} else if *abrMode {
		dyn = netem.Dynamics{}.Then(netem.RateStep(dur/3, 24*netem.Mbps))
	}
	f := scenario.Fleet{
		Mix:      entries,
		Clients:  *clients,
		Duration: dur,
		Warmup:   time.Duration(*warmup * float64(time.Second)),
		Seed:     *seed,
		Shards:   *shards,
		Down:     dyn,
		UtilBin:  time.Duration(*bin * float64(time.Second)),
		Arrival:  scenario.Arrival{Kind: kind, Window: time.Duration(*window * float64(time.Second))},
	}
	f.Tree.ClientsPerAgg = *perAgg
	f.Tree.Access.Down = netem.Bandwidth(*accessDown) * netem.Mbps
	f.Tree.Agg.Down = netem.Bandwidth(*aggDown) * netem.Mbps
	f.Tree.Core.Down = netem.Bandwidth(*coreDown) * netem.Mbps
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "vfleet:", err)
		os.Exit(1)
	}

	if *abrMode {
		// The headline comparison: the same fleet under the same
		// timeline, once per controller. Mix is overridden.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "mix" {
				fmt.Fprintln(os.Stderr, "vfleet: -abr runs one fleet per controller; ignoring -mix")
			}
		})
		start := time.Now()
		for _, k := range []scenario.PlayerKind{scenario.AbrFixed, scenario.AbrRate, scenario.AbrBuffer} {
			cf := f
			cf.Name = "abr/" + k.String()
			cf.Mix = []scenario.MixEntry{{Player: k, Weight: 1}}
			res := scenario.RunFleet(runner.Options{Workers: *workers}, cf)
			fmt.Print(res.Render())
			fmt.Println()
		}
		fmt.Printf("[abr comparison completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	start := time.Now()
	res := scenario.RunFleet(runner.Options{Workers: *workers}, f)
	fmt.Print(res.Render())
	if *series {
		fmt.Printf("\n# %-8s %-12s %-12s %-12s\n", "bin s", "core Mbps", "agg Mbps", "concurrent")
		core := res.CoreUtil.PerSecond()
		agg := res.AggUtil.PerSecond()
		conc := res.Concurrency()
		for i := range core {
			fmt.Printf("%-10.1f %-12.2f %-12.2f %-12.0f\n",
				float64(i)*res.CoreUtil.Width.Seconds(), core[i]*8/1e6, agg[i]*8/1e6, conc[i])
		}
	}
	fmt.Printf("[fleet completed in %v]\n", time.Since(start).Round(time.Millisecond))
}
