// Command vsweep regenerates the paper's tables and figures at a
// chosen scale: it runs the per-experiment sweeps from
// internal/experiments and prints the rows/series the paper reports.
//
// Usage:
//
//	vsweep -exp table1            # one experiment
//	vsweep -exp all -n 16         # everything, 16 videos per cell
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner func(experiments.Options) string

var registry = map[string]runner{
	"table1": func(o experiments.Options) string { return experiments.Table1(o).Artifact.String() },
	"table2": func(o experiments.Options) string { return experiments.Table2(o).Artifact.String() },
	"fig1":   func(o experiments.Options) string { return experiments.Figure1(o).Artifact.String() },
	"fig2":   func(o experiments.Options) string { return experiments.Figure2(o).Artifact.String() },
	"fig3":   func(o experiments.Options) string { return experiments.Figure3(o).Artifact.String() },
	"fig4":   func(o experiments.Options) string { return experiments.Figure4(o).Artifact.String() },
	"fig5":   func(o experiments.Options) string { return experiments.Figure5(o).Artifact.String() },
	"fig6":   func(o experiments.Options) string { return experiments.Figure6(o).Artifact.String() },
	"fig7":   func(o experiments.Options) string { return experiments.Figure7(o).Artifact.String() },
	"fig8":   func(o experiments.Options) string { return experiments.Figure8(o).Artifact.String() },
	"fig9":   func(o experiments.Options) string { return experiments.Figure9(o, false).Artifact.String() },
	"fig9-idlereset": func(o experiments.Options) string {
		return experiments.Figure9(o, true).Artifact.String()
	},
	"fig10":     func(o experiments.Options) string { return experiments.Figure10(o).Artifact.String() },
	"fig11":     func(o experiments.Options) string { return experiments.Figure11(o).Artifact.String() },
	"fig12":     func(o experiments.Options) string { return experiments.Figure12(o).Artifact.String() },
	"model-agg": func(o experiments.Options) string { return experiments.ModelAggregate(o).Artifact.String() },
	"model-smooth": func(o experiments.Options) string {
		return experiments.ModelSmoothness(o).Artifact.String()
	},
	"model-interrupt": func(o experiments.Options) string {
		return experiments.ModelInterruption(o).Artifact.String()
	},
	"model-waste": func(o experiments.Options) string { return experiments.ModelWaste(o).Artifact.String() },
	"scenario-ratedrop": func(o experiments.Options) string {
		return experiments.ScenarioRateDrop(o).Artifact.String()
	},
	"scenario-flashcrowd": func(o experiments.Options) string {
		return experiments.ScenarioFlashCrowd(o).Artifact.String()
	},
	"fleet-burstiness": func(o experiments.Options) string {
		return experiments.AggregateBurstiness(o).Artifact.String()
	},
	"abr-ratedrop": func(o experiments.Options) string {
		return experiments.AbrRateDrop(o).Artifact.String()
	},
	"ccmatrix": func(o experiments.Options) string {
		return experiments.CcMatrix(o).Artifact.String()
	},
}

// order fixes the presentation sequence for -exp all.
var order = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig9-idlereset", "fig10", "fig11", "fig12",
	"table2", "model-agg", "model-smooth", "model-interrupt", "model-waste",
	"scenario-ratedrop", "scenario-flashcrowd", "fleet-burstiness",
	"abr-ratedrop", "ccmatrix",
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all' (see -list)")
	n := flag.Int("n", 8, "videos per dataset/cell")
	seed := flag.Int64("seed", 1, "random seed")
	capture := flag.Float64("capture", 180, "per-session capture seconds")
	workers := flag.Int("workers", 0, "session worker pool size (0 = one per CPU); results are identical for any value")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}
	o := experiments.Options{
		N: *n, Seed: *seed,
		Duration: time.Duration(*capture * float64(time.Second)),
		Workers:  *workers,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := registry[strings.ToLower(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "vsweep: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		out := run(o)
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
