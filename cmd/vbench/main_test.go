package main

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestParseCustomMetricColumns pins the property the fleet benchmarks
// rely on: `go test -bench` lines carry arbitrary extra b.ReportMetric
// columns (`<value> <unit>` pairs like ns/op/client) and the parser
// must extract ns/op, B/op and allocs/op without being confused by
// them — or by their position relative to the standard columns — while
// recording the custom columns verbatim in Result.Metrics.
func TestParseCustomMetricColumns(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkSingleSession-8       	      36	  31092341 ns/op	  804416 B/op	    1045 allocs/op
BenchmarkFleet/clients=4096   	       1	28712345678 ns/op	   7009.6 ns/op/client	  122000 B/op/client	  3456.0 pkts/client	 498000000 B/op	  401234 allocs/op
BenchmarkNoMem 	     100	    123456 ns/op
PASS
ok  	repro	92.1s
`
	got := parse(strings.NewReader(out), nil)
	want := []Result{
		{Name: "BenchmarkSingleSession", Iterations: 36, NsPerOp: 31092341, BytesPerOp: 804416, AllocsPerOp: 1045},
		{Name: "BenchmarkFleet/clients=4096", Iterations: 1, NsPerOp: 28712345678, BytesPerOp: 498000000, AllocsPerOp: 401234,
			Metrics: map[string]float64{"ns/op/client": 7009.6, "B/op/client": 122000, "pkts/client": 3456}},
		{Name: "BenchmarkNoMem", Iterations: 100, NsPerOp: 123456},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseIgnoresNonBenchLines: headers, PASS/ok trailers and fuzz
// noise never produce results, and the empty case is [] not nil (the
// JSON schema promises an array).
func TestParseIgnoresNonBenchLines(t *testing.T) {
	got := parse(strings.NewReader("goos: linux\nPASS\nok \trepro\t1.0s\n"), nil)
	if got == nil || len(got) != 0 {
		t.Fatalf("parse of non-bench output = %#v, want empty non-nil slice", got)
	}
}

// TestReportStamp pins the -stamp satellite: a pinned RFC3339 instant
// passes through verbatim (reproducible BENCH_*.json diffs in CI),
// the default is a valid RFC3339 wall-clock read, and garbage errors
// out instead of silently stamping an unparseable report.
func TestReportStamp(t *testing.T) {
	const pinned = "2026-08-08T00:00:00Z"
	if got, err := reportStamp(pinned); err != nil || got != pinned {
		t.Fatalf("reportStamp(%q) = %q, %v; want it verbatim", pinned, got, err)
	}
	got, err := reportStamp("")
	if err != nil {
		t.Fatalf("reportStamp(\"\"): %v", err)
	}
	if _, err := time.Parse(time.RFC3339, got); err != nil {
		t.Fatalf("default stamp %q is not RFC3339: %v", got, err)
	}
	if _, err := reportStamp("yesterday-ish"); err == nil {
		t.Fatal("reportStamp accepted an unparseable stamp")
	}
}
