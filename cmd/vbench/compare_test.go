package main

import (
	"regexp"
	"strings"
	"testing"
)

func rep(benchmarks ...Result) Report {
	return Report{Benchmarks: benchmarks}
}

func TestCompareDeltaTable(t *testing.T) {
	oldRep := rep(
		Result{Name: "BenchmarkSingleSession", NsPerOp: 20e6, BytesPerOp: 400_000, AllocsPerOp: 1000},
		Result{Name: "BenchmarkFleet/clients=1024", NsPerOp: 10e9, BytesPerOp: 160e6, AllocsPerOp: 175_000},
	)
	newRep := rep(
		Result{Name: "BenchmarkSingleSession", NsPerOp: 15e6, BytesPerOp: 400_000, AllocsPerOp: 900},
		Result{Name: "BenchmarkFleet/clients=1024", NsPerOp: 8e9, BytesPerOp: 150e6, AllocsPerOp: 180_000},
	)
	table, fail := compareReports(oldRep, newRep, nil, 0, 0)
	if fail {
		t.Fatal("fail with no threshold set")
	}
	for _, want := range []string{
		"BenchmarkSingleSession",
		"-25.0%", // SingleSession ns/op delta
		"-10.0%", // SingleSession allocs delta
		"BenchmarkFleet/clients=1024",
		"per client",
		"-20.0%", // Fleet ns/op delta
		"+2.9%",  // Fleet allocs delta
		"worst allocs/op change: +2.9% (BenchmarkFleet/clients=1024)", // summary
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Per-client derivation: 8e9 ns over 1024 clients = 7.81ms/client.
	if !strings.Contains(table, "7.81ms") {
		t.Fatalf("table missing per-client ns value 7.81ms:\n%s", table)
	}
}

func TestCompareFailAllocsThreshold(t *testing.T) {
	oldRep := rep(Result{Name: "BenchmarkX", NsPerOp: 1e6, AllocsPerOp: 100})
	newRep := rep(Result{Name: "BenchmarkX", NsPerOp: 1e6, AllocsPerOp: 130})
	table, fail := compareReports(oldRep, newRep, nil, 25, 0)
	if !fail {
		t.Fatalf("+30%% allocs must fail a 25%% gate:\n%s", table)
	}
	if !strings.Contains(table, "FAIL: allocs/op regression exceeds 25.0%") {
		t.Fatalf("missing FAIL line:\n%s", table)
	}
	if _, fail := compareReports(oldRep, newRep, nil, 35, 0); fail {
		t.Fatal("+30% allocs must pass a 35% gate")
	}
	// Improvements never trip the gate.
	better := rep(Result{Name: "BenchmarkX", NsPerOp: 1e6, AllocsPerOp: 50})
	if _, fail := compareReports(oldRep, better, nil, 25, 0); fail {
		t.Fatal("alloc improvement tripped the gate")
	}
}

// TestCompareFailBytesThreshold pins the fleet-memory gate: a B/op
// regression past the threshold fails the compare even when allocs/op
// is flat. Because the per-client rows divide both reports by the same
// client count, this is exactly the B/op/client gate for the
// BenchmarkFleet/clients=N rows.
func TestCompareFailBytesThreshold(t *testing.T) {
	oldRep := rep(Result{Name: "BenchmarkFleet/clients=1024", NsPerOp: 1e9, BytesPerOp: 100e6, AllocsPerOp: 100})
	newRep := rep(Result{Name: "BenchmarkFleet/clients=1024", NsPerOp: 1e9, BytesPerOp: 130e6, AllocsPerOp: 100})
	table, fail := compareReports(oldRep, newRep, nil, 0, 25)
	if !fail {
		t.Fatalf("+30%% B/op must fail a 25%% gate:\n%s", table)
	}
	if !strings.Contains(table, "FAIL: B/op regression exceeds 25.0%") {
		t.Fatalf("missing FAIL line:\n%s", table)
	}
	if !strings.Contains(table, "worst B/op change: +30.0% (BenchmarkFleet/clients=1024)") {
		t.Fatalf("missing worst-B/op summary:\n%s", table)
	}
	if _, fail := compareReports(oldRep, newRep, nil, 0, 35); fail {
		t.Fatal("+30% B/op must pass a 35% gate")
	}
	better := rep(Result{Name: "BenchmarkFleet/clients=1024", NsPerOp: 1e9, BytesPerOp: 20e6, AllocsPerOp: 100})
	if _, fail := compareReports(oldRep, better, nil, 0, 25); fail {
		t.Fatal("B/op improvement tripped the gate")
	}
}

func TestCompareOnlyFilter(t *testing.T) {
	oldRep := rep(
		Result{Name: "BenchmarkKeep", NsPerOp: 1e6, AllocsPerOp: 10},
		Result{Name: "BenchmarkSkip", NsPerOp: 1e6, AllocsPerOp: 10},
	)
	newRep := rep(
		Result{Name: "BenchmarkKeep", NsPerOp: 2e6, AllocsPerOp: 10},
		Result{Name: "BenchmarkSkip", NsPerOp: 1e6, AllocsPerOp: 100},
	)
	table, fail := compareReports(oldRep, newRep, regexp.MustCompile("Keep"), 25, 0)
	if fail {
		t.Fatalf("filtered-out regression tripped the gate:\n%s", table)
	}
	if strings.Contains(table, "BenchmarkSkip") {
		t.Fatalf("filtered benchmark rendered:\n%s", table)
	}
	if !strings.Contains(table, "BenchmarkKeep") {
		t.Fatalf("kept benchmark missing:\n%s", table)
	}
}

func TestCompareMissingBenchmarks(t *testing.T) {
	oldRep := rep(
		Result{Name: "BenchmarkGone", NsPerOp: 1e6, AllocsPerOp: 10},
		Result{Name: "BenchmarkBoth", NsPerOp: 1e6, AllocsPerOp: 10},
	)
	newRep := rep(
		Result{Name: "BenchmarkBoth", NsPerOp: 1e6, AllocsPerOp: 10},
		Result{Name: "BenchmarkNew", NsPerOp: 1e6, AllocsPerOp: 10},
	)
	table, fail := compareReports(oldRep, newRep, nil, 25, 0)
	if fail {
		t.Fatalf("unchanged benchmark tripped the gate:\n%s", table)
	}
	if !strings.Contains(table, "only in old: BenchmarkGone") {
		t.Fatalf("missing only-in-old note:\n%s", table)
	}
	if !strings.Contains(table, "only in new: BenchmarkNew") {
		t.Fatalf("missing only-in-new note:\n%s", table)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	oldRep := rep(Result{Name: "BenchmarkZ", NsPerOp: 1e6})
	newRep := rep(Result{Name: "BenchmarkZ", NsPerOp: 1e6, AllocsPerOp: 50})
	table, fail := compareReports(oldRep, newRep, nil, 25, 0)
	if fail {
		t.Fatalf("zero-baseline allocs must not trip the gate:\n%s", table)
	}
	if !strings.Contains(table, "?") {
		t.Fatalf("zero baseline should render '?' delta:\n%s", table)
	}
}

func TestCompareUnitFormatting(t *testing.T) {
	if got := fmtNs(11_426_951_192); got != "11.427s" {
		t.Fatalf("fmtNs = %q", got)
	}
	if got := fmtNs(18_969_775); got != "18.97ms" {
		t.Fatalf("fmtNs = %q", got)
	}
	if got := fmtBytes(160_697_056); got != "153.25MB" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtCount(174_932); got != "174.9k" {
		t.Fatalf("fmtCount = %q", got)
	}
	if got := fmtCount(974); got != "974" {
		t.Fatalf("fmtCount = %q", got)
	}
}
