package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Benchmark comparison: `vbench -compare old.json new.json` renders a
// benchstat-style delta table over two BENCH_<n>.json reports and, with
// -fail-allocs / -fail-bytes <pct>, exits non-zero when any
// benchmark's allocs/op or B/op regresses past the threshold — the CI
// perf-smoke gate. The fleet per-client columns divide both reports by
// the same client count, so the B/op gate is exactly the B/op/client
// gate for the BenchmarkFleet rows.

// loadReport reads one BENCH_<n>.json file.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// clientsRe extracts the fleet-size sub-benchmark parameter, which
// drives the derived per-client rows.
var clientsRe = regexp.MustCompile(`clients=(\d+)`)

// delta formats a relative change as a signed percentage; a zero or
// missing baseline has no meaningful delta.
func delta(oldV, newV float64) string {
	if oldV == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

// pct returns the relative change in percent, NaN when undefined.
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return math.NaN()
	}
	return (newV - oldV) / oldV * 100
}

func fmtNs(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func fmtCount(v float64) string {
	if v >= 1e6 {
		return fmt.Sprintf("%.2fM", v/1e6)
	}
	if v >= 1e3 {
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// compareReports renders the delta table and reports whether any
// benchmark's allocs/op regression exceeds failAllocsPct or its B/op
// regression exceeds failBytesPct (a non-positive threshold never
// fails). only, when non-nil, restricts the comparison to matching
// benchmark names.
func compareReports(oldRep, newRep Report, only *regexp.Regexp, failAllocsPct, failBytesPct float64) (string, bool) {
	newIdx := map[string]*Result{}
	for i := range newRep.Benchmarks {
		newIdx[newRep.Benchmarks[i].Name] = &newRep.Benchmarks[i]
	}
	oldIdx := map[string]bool{}

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tns/op old\tnew\tΔ\tB/op old\tnew\tΔ\tallocs/op old\tnew\tΔ\t\n")

	worst := math.Inf(-1)
	worstName := ""
	worstBytes := math.Inf(-1)
	worstBytesName := ""
	row := func(name string, o, n *Result, div float64) {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			name,
			fmtNs(o.NsPerOp/div), fmtNs(n.NsPerOp/div), delta(o.NsPerOp, n.NsPerOp),
			fmtBytes(float64(o.BytesPerOp)/div), fmtBytes(float64(n.BytesPerOp)/div), delta(float64(o.BytesPerOp), float64(n.BytesPerOp)),
			fmtCount(float64(o.AllocsPerOp)/div), fmtCount(float64(n.AllocsPerOp)/div), delta(float64(o.AllocsPerOp), float64(n.AllocsPerOp)))
	}
	var onlyOld, onlyNew []string
	for i := range oldRep.Benchmarks {
		o := &oldRep.Benchmarks[i]
		oldIdx[o.Name] = true
		if only != nil && !only.MatchString(o.Name) {
			continue
		}
		n, ok := newIdx[o.Name]
		if !ok {
			onlyOld = append(onlyOld, o.Name)
			continue
		}
		row(o.Name, o, n, 1)
		if m := clientsRe.FindStringSubmatch(o.Name); m != nil {
			if clients, err := strconv.ParseFloat(m[1], 64); err == nil && clients > 0 {
				row("  └ per client", o, n, clients)
			}
		}
		if d := pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp)); !math.IsNaN(d) && d > worst {
			worst, worstName = d, o.Name
		}
		if d := pct(float64(o.BytesPerOp), float64(n.BytesPerOp)); !math.IsNaN(d) && d > worstBytes {
			worstBytes, worstBytesName = d, o.Name
		}
	}
	for i := range newRep.Benchmarks {
		n := &newRep.Benchmarks[i]
		if only != nil && !only.MatchString(n.Name) {
			continue
		}
		if !oldIdx[n.Name] {
			onlyNew = append(onlyNew, n.Name)
		}
	}
	tw.Flush()
	for _, name := range onlyOld {
		fmt.Fprintf(&b, "only in old: %s\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(&b, "only in new: %s\n", name)
	}

	fail := false
	if !math.IsInf(worst, -1) {
		fmt.Fprintf(&b, "worst allocs/op change: %+.1f%% (%s)\n", worst, worstName)
		if failAllocsPct > 0 && worst > failAllocsPct {
			fmt.Fprintf(&b, "FAIL: allocs/op regression exceeds %.1f%%\n", failAllocsPct)
			fail = true
		}
	}
	if !math.IsInf(worstBytes, -1) {
		fmt.Fprintf(&b, "worst B/op change: %+.1f%% (%s)\n", worstBytes, worstBytesName)
		if failBytesPct > 0 && worstBytes > failBytesPct {
			fmt.Fprintf(&b, "FAIL: B/op regression exceeds %.1f%%\n", failBytesPct)
			fail = true
		}
	}
	return b.String(), fail
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(args []string, onlyPat string, failAllocsPct, failBytesPct float64, out *os.File) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "vbench: -compare needs exactly two report paths: vbench -compare [-only re] [-fail-allocs pct] [-fail-bytes pct] old.json new.json")
		return 2
	}
	var only *regexp.Regexp
	if onlyPat != "" {
		var err error
		if only, err = regexp.Compile(onlyPat); err != nil {
			fmt.Fprintln(os.Stderr, "vbench: bad -only pattern:", err)
			return 2
		}
	}
	oldRep, err := loadReport(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		return 2
	}
	newRep, err := loadReport(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		return 2
	}
	table, fail := compareReports(oldRep, newRep, only, failAllocsPct, failBytesPct)
	fmt.Fprint(out, table)
	if fail {
		return 1
	}
	return 0
}
