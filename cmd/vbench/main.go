// Command vbench records the benchmark suite in machine-readable form
// so the performance trajectory is comparable across PRs: it runs
// `go test -bench` with allocation stats and writes a BENCH_<n>.json
// containing ns/op, B/op and allocs/op per benchmark.
//
// Usage:
//
//	vbench -n 1                       # writes BENCH_1.json from the full suite
//	vbench -n 2 -bench 'SingleSession' -benchtime 3x
//	go test -bench=. -benchmem | vbench -n 1 -stdin   # parse an existing run
//	vbench -compare BENCH_6.json BENCH_7.json         # benchstat-style delta table
//	vbench -compare -only 'Fleet|SingleSession' -fail-allocs 25 old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric column verbatim
	// (unit → value): the fleet benchmarks report per-client figures
	// (`B/op/client`, `ns/op/client`, `pkts/client`) that the standard
	// three columns cannot carry.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Command     string `json:"command"`
	// Notes carries free-form context that the benchmark columns
	// cannot (e.g. the wall clock of a fleet run too large for
	// `go test -bench`).
	Notes       string   `json:"notes,omitempty"`
	WallSeconds float64  `json:"wall_seconds"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  3  41330152 ns/op  17964480 B/op  332352 allocs/op`
// (the -8 GOMAXPROCS suffix and the memory columns are optional).
// benchHead matches the name and iteration count; the measurement
// columns after it are `<value> <unit>` pairs parsed by field walk,
// so custom b.ReportMetric units (e.g. `pkts/client`) pass through
// without confusing the ns/op, B/op and allocs/op extraction.
var benchHead = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)((?:\s+[\d.]+ \S+)+)\s*$`)

func parse(r io.Reader, echo io.Writer) []Result {
	out := []Result{} // never nil, so the JSON field is [] not null
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		m := benchHead.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		res.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		cols := strings.Fields(m[3])
		for i := 0; i+1 < len(cols); i += 2 {
			switch cols[i+1] {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(cols[i], 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(cols[i], 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(cols[i], 10, 64)
			default:
				v, err := strconv.ParseFloat(cols[i], 64)
				if err != nil {
					continue
				}
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[cols[i+1]] = v
			}
		}
		out = append(out, res)
	}
	return out
}

// reportStamp resolves the generated_at field: the wall clock by
// default (vbench is a cmd/, outside the simulation's virtual-time
// contract), or a caller-pinned RFC3339 instant so two CI runs of the
// same commit produce byte-identical BENCH_<n>.json files.
func reportStamp(stamp string) (string, error) {
	if stamp == "" {
		return time.Now().UTC().Format(time.RFC3339), nil
	}
	if _, err := time.Parse(time.RFC3339, stamp); err != nil {
		return "", fmt.Errorf("invalid -stamp %q: %w", stamp, err)
	}
	return stamp, nil
}

func main() {
	n := flag.Int("n", 1, "PR number; output file is BENCH_<n>.json")
	bench := flag.String("bench", ".", "benchmark regex passed to go test")
	benchtime := flag.String("benchtime", "1x", "benchtime passed to go test")
	pkg := flag.String("pkg", ".", "package to benchmark")
	stdin := flag.Bool("stdin", false, "parse `go test -bench` output from stdin instead of running it")
	out := flag.String("out", "", "output path (default BENCH_<n>.json)")
	stamp := flag.String("stamp", "", "override generated_at (RFC3339) so reports diff reproducibly in CI")
	note := flag.String("note", "", "free-form notes field recorded in the report")
	compare := flag.Bool("compare", false, "compare two BENCH_<n>.json files (positional: old.json new.json) and print a delta table")
	only := flag.String("only", "", "with -compare: restrict to benchmarks matching this regex")
	failAllocs := flag.Float64("fail-allocs", 0, "with -compare: exit 1 if any benchmark's allocs/op regresses by more than this percent")
	failBytes := flag.Float64("fail-bytes", 0, "with -compare: exit 1 if any benchmark's B/op (and so its per-client column) regresses by more than this percent")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *only, *failAllocs, *failBytes, os.Stdout))
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", *n)
	}
	generatedAt, err := reportStamp(*stamp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		os.Exit(1)
	}
	rep := Report{
		GeneratedAt: generatedAt,
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Notes:       *note,
	}

	start := time.Now()
	if *stdin {
		rep.Command = "stdin"
		rep.Benchmarks = parse(os.Stdin, nil)
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, "-benchmem", *pkg}
		rep.Command = "go " + strings.Join(args, " ")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vbench:", err)
			os.Exit(1)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "vbench:", err)
			os.Exit(1)
		}
		rep.Benchmarks = parse(pipe, os.Stdout)
		if err := cmd.Wait(); err != nil {
			fmt.Fprintln(os.Stderr, "vbench: go test failed:", err)
			os.Exit(1)
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "vbench: wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
}
