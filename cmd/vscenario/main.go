// Command vscenario runs declarative streaming scenarios: any player ×
// vantage profile × arrival process × dynamics timeline, on isolated
// per-session paths or on one shared bottleneck.
//
// Usage:
//
//	vscenario -list
//	vscenario -preset ratedrop                # built-in experiment sweeps
//	vscenario -player flash -profile Residence \
//	    -down "rate@30s=800kbps; loss@90s=0.02; outage@120s=5s"
//	vscenario -player chrome -sessions 8 -shared \
//	    -arrival flashcrowd -window 60s -duration 180s
//
// Dynamics timeline syntax (see scenario.ParseDynamics):
//
//	rate@30s=2Mbps; rate@60s+10s=10Mbps; delay@90s=200ms;
//	loss@120s=0.02; outage@150s=5s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/tcp"
)

// presets are the canned experiment sweeps (artifact output, same
// registry style as cmd/vsweep).
var presets = map[string]func(experiments.Options) string{
	"ratedrop":   func(o experiments.Options) string { return experiments.ScenarioRateDrop(o).Artifact.String() },
	"flashcrowd": func(o experiments.Options) string { return experiments.ScenarioFlashCrowd(o).Artifact.String() },
}

var presetOrder = []string{"ratedrop", "flashcrowd"}

func main() {
	var (
		list    = flag.Bool("list", false, "list presets, players and profiles, then exit")
		preset  = flag.String("preset", "", "run a built-in scenario sweep (see -list)")
		playerF = flag.String("player", "flash", "player kind (see -list)")
		profile = flag.String("profile", "Research", "vantage profile name")
		sess    = flag.Int("sessions", 1, "number of sessions")
		arrival = flag.String("arrival", "allatonce", "arrival process: allatonce|staggered|poisson|flashcrowd")
		window  = flag.Duration("window", 60*time.Second, "arrival window")
		rate    = flag.Float64("rate", 0, "poisson arrivals per second (0 = sessions/window)")
		downDyn = flag.String("down", "", "downstream dynamics timeline")
		upDyn   = flag.String("up", "", "upstream dynamics timeline")
		dur     = flag.Duration("duration", session.DefaultDuration, "capture horizon")
		seed    = flag.Int64("seed", 1, "random seed")
		n       = flag.Int("n", 8, "preset scale (videos/sessions per cell)")
		shared  = flag.Bool("shared", false, "run all sessions on one shared bottleneck (dumbbell)")
		workers = flag.Int("workers", 0, "worker pool size for isolated runs (0 = one per CPU)")
		cc      = flag.String("cc", "", "server congestion control: reno|cubic|bbr (empty = reno)")
		aqm     = flag.String("aqm", "", "queue policy on the path links: droptail|red|codel (empty = droptail)")
	)
	flag.Parse()

	if *list {
		fmt.Println("presets:")
		for _, p := range presetOrder {
			fmt.Println("  " + p)
		}
		fmt.Println("players:")
		for _, k := range scenario.PlayerKinds() {
			fmt.Printf("  %-16s (%s: %s)\n", k, k.Service(), k.New().Name())
		}
		fmt.Println("profiles:")
		for _, p := range netem.Profiles() {
			fmt.Printf("  %-10s %.1f/%.1f Mbps, RTT %v, loss %.3f%%\n",
				p.Name, float64(p.Down)/1e6, float64(p.Up)/1e6, p.RTT, p.Loss*100)
		}
		return
	}

	if *preset != "" {
		run, ok := presets[strings.ToLower(*preset)]
		if !ok {
			fail("unknown preset %q (try -list)", *preset)
		}
		fmt.Print(run(experiments.Options{N: *n, Seed: *seed, Duration: *dur, Workers: *workers}))
		return
	}

	kind, ok := scenario.PlayerKindByName(*playerF)
	if !ok {
		fail("unknown player %q (try -list)", *playerF)
	}
	prof, ok := netem.ProfileByName(*profile)
	if !ok {
		fail("unknown profile %q (try -list)", *profile)
	}
	ar, err := parseArrival(*arrival, *window, *rate)
	if err != nil {
		fail("%v", err)
	}
	down, err := scenario.ParseDynamics(*downDyn)
	if err != nil {
		fail("-down: %v", err)
	}
	up, err := scenario.ParseDynamics(*upDyn)
	if err != nil {
		fail("-up: %v", err)
	}
	if !tcp.ValidCC(*cc) {
		fail("-cc: unknown congestion control %q (%s)", *cc, strings.Join(tcp.CCKinds(), "|"))
	}
	if aq, err := netem.ParseAqm(*aqm); err != nil {
		fail("-aqm: %v", err)
	} else {
		prof.AQM = aq
	}
	sp := scenario.Spec{
		Profile:  prof,
		Player:   kind,
		Sessions: *sess,
		Arrival:  ar,
		Duration: *dur,
		Seed:     *seed,
		Down:     down,
		Up:       up,
	}
	sp.ServerTCP.CC = *cc
	if err := sp.Validate(); err != nil {
		fail("%v", err)
	}

	fmt.Printf("== scenario: %s/%s x%d ==\n", prof.Name, kind, *sess)
	fmt.Printf("arrival %s over %v; down dynamics: %d steps; up dynamics: %d steps; horizon %v\n",
		ar.Kind, *window, len(down.Steps), len(up.Steps), *dur)
	fmt.Printf("%-8s %-10s %-14s %-16s %-8s %-10s %s\n",
		"session", "start", "downloaded", "strategy", "blocks", "medianKB", "retrans")
	if *shared {
		res := scenario.RunShared(sp)
		for _, o := range res.Outcomes {
			printRow(o.Index, o.Start, o.Downloaded, o.Analysis)
		}
		fmt.Printf("bottleneck: offered %d, dropped %d (%.3f%%, %d in outages), unrouted %d, aggregate %.1f Mbps\n",
			res.Offered, res.Dropped, res.InducedLoss*100, res.OutageDrops, res.Unrouted, res.AggregateMbps)
		fmt.Printf("strategy mix: %s\n", res.StrategyMix())
		return
	}
	results := scenario.RunIsolated(runner.Options{Workers: *workers}, sp)
	for i, r := range results {
		printRow(i, r.Config.StartAt, r.Downloaded, r.Analysis)
	}
}

// printRow renders one session's outcome line.
func printRow(i int, start time.Duration, downloaded int64, a *analysis.Result) {
	fmt.Printf("%-8d %-10v %-14s %-16s %-8d %-10.0f %.2f%%\n",
		i, start.Round(time.Millisecond),
		fmt.Sprintf("%.2f MB", float64(downloaded)/1e6),
		a.Strategy, len(a.Blocks), float64(a.MedianBlock())/1e3, a.RetransRate*100)
}

func parseArrival(name string, window time.Duration, rate float64) (scenario.Arrival, error) {
	a := scenario.Arrival{Window: window, Rate: rate}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "allatonce", "all":
		a.Kind = scenario.AllAtOnce
	case "staggered", "uniform":
		a.Kind = scenario.Staggered
	case "poisson":
		a.Kind = scenario.Poisson
	case "flashcrowd", "crowd":
		a.Kind = scenario.FlashCrowd
	default:
		return a, fmt.Errorf("unknown arrival process %q", name)
	}
	return a, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vscenario: "+format+"\n", args...)
	os.Exit(1)
}
