// Command vmodel evaluates the Section 6 analytical model: network
// dimensioning for an expected video mix and wasted bandwidth under
// viewer interruptions.
//
// Usage:
//
//	vmodel -lambda 0.5 -rate 1.0 -duration 240 -downrate 10 -alpha 2
//	vmodel -waste -buffer 40 -accum 1.25 -beta 0.2
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/model"
)

func main() {
	lambda := flag.Float64("lambda", 0.5, "session arrival rate (sessions/second)")
	rate := flag.Float64("rate", 1.0, "mean encoding rate E[e] in Mbps")
	duration := flag.Float64("duration", 240, "mean video duration E[L] in seconds")
	downrate := flag.Float64("downrate", 10, "mean ON-period download rate E[G] in Mbps")
	alpha := flag.Float64("alpha", 2, "provisioning headroom multiplier")
	waste := flag.Bool("waste", false, "also evaluate the interruption-waste model")
	buffer := flag.Float64("buffer", 40, "buffered playback B' in seconds (waste model)")
	accum := flag.Float64("accum", 1.25, "accumulation ratio k (waste model)")
	beta := flag.Float64("beta", 0.2, "watched fraction before interruption (waste model)")
	flag.Parse()

	p := model.Params{
		Lambda:       *lambda,
		MeanRate:     *rate * 1e6,
		MeanDuration: *duration,
		MeanDownRate: *downrate * 1e6,
	}
	mean := model.MeanAggregate(p)
	variance := model.VarAggregate(p)
	fmt.Printf("parameters     : %s\n", p)
	fmt.Printf("E[R]           : %.2f Mbps (eq. 3)\n", mean/1e6)
	fmt.Printf("Std[R]         : %.2f Mbps (eq. 4)\n", math.Sqrt(variance)/1e6)
	fmt.Printf("CoV            : %.3f\n", model.CoV(p))
	fmt.Printf("link dimension : %.2f Mbps (E[R] + %.1f sigma)\n", model.Dimension(p, *alpha)/1e6, *alpha)

	if *waste {
		fmt.Println()
		th := model.InterruptionThreshold(*buffer, *accum, *beta)
		fmt.Printf("full-download threshold (eq. 7): videos shorter than %.1f s download entirely\n", th)
		w := model.WasteRate(*lambda, 10000, func(i int) model.Session {
			return model.Session{
				Rate: *rate * 1e6, Duration: *duration,
				Buffer: *buffer, Accum: *accum, Beta: *beta,
			}
		})
		fmt.Printf("wasted bandwidth E[R'] (eq. 9) : %.2f Mbps (%.1f%% of E[R])\n", w/1e6, 100*w/mean)
	}
}
