// ABR walkthrough: the adaptive-bitrate headline at fleet scale. Three
// fleets of segmented players stream the same 5-rung rendition ladder
// (0.5–3.8 Mbps) through the same mid-run congestion event — every
// 200 Mbps aggregation link drops to 24 Mbps, leaving 0.75 Mbps per
// client — and differ only in the abr.Controller picking each chunk's
// rung:
//
//   - fixed:  the null controller pinned to the top rung (a legacy
//     single-bitrate player in controller form),
//   - rate:   a throughput-EWMA rule,
//   - buffer: a BBA-style reservoir/cushion rule.
//
// The playback-buffer model turns the difference into QoE: the fixed
// fleet spends most of the post-drop horizon stalled, the adaptive
// fleets walk down the ladder and keep rebuffering near zero at a
// lower mean bitrate. Everything is a streaming aggregate statistic
// and the run is bit-identical for any worker count.
//
//	go run ./examples/abr
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	const (
		clients  = 96
		duration = 120 * time.Second
	)
	dropAt := duration / 3
	timeline := netem.Dynamics{}.Then(netem.RateStep(dropAt, 24*netem.Mbps))

	fmt.Println("=== abr: rendition ladders vs a fleet-scale rate drop ===")
	fmt.Printf("%d clients/controller, 32 per 200 Mbps agg link; drop to 24 Mbps (0.75 Mbps/client) at t=%v\n\n",
		clients, dropAt)

	controllers := []scenario.PlayerKind{scenario.AbrFixed, scenario.AbrRate, scenario.AbrBuffer}
	start := time.Now()
	results := make([]*scenario.FleetResult, len(controllers))
	for i, k := range controllers {
		f := scenario.Fleet{
			Name:     "abr/" + k.String(),
			Mix:      []scenario.MixEntry{{Player: k, Weight: 1}},
			Clients:  clients, // one cell (own tree) per aggregation group
			Duration: duration,
			Arrival:  scenario.Arrival{Kind: scenario.Staggered, Window: duration / 6},
			Down:     timeline,
			Seed:     7,
			Video:    media.Video{Duration: 900 * time.Second, Resolution: "adaptive"}.WithLadder(media.DefaultLadder()...),
		}
		results[i] = scenario.RunFleet(runner.Options{}, f)
	}

	// Rebuffer summary.
	fmt.Printf("%-10s %-18s %-20s %-12s %-12s\n",
		"controller", "rebuffers p50/p90", "stall sec p50/p90", "switch p50", "Mbps p50")
	for i, k := range controllers {
		r := results[i]
		fmt.Printf("%-10s %-18s %-20s %-12.0f %-12.2f\n",
			strings.TrimPrefix(k.String(), "abr-"),
			fmt.Sprintf("%.0f / %.0f", r.RebufCount.Quantile(0.5), r.RebufCount.Quantile(0.9)),
			fmt.Sprintf("%.1f / %.1f", r.RebufSec.Quantile(0.5), r.RebufSec.Quantile(0.9)),
			r.SwitchCount.Quantile(0.5),
			r.FetchedMbps.Quantile(0.5))
	}

	// Per-rung occupancy table: where each fleet spent its media time.
	fmt.Println()
	fmt.Printf("%-10s", "rung Mbps")
	for _, rate := range media.DefaultLadder() {
		fmt.Printf(" %8.1f", rate/1e6)
	}
	fmt.Println()
	for i, k := range controllers {
		fmt.Printf("%-10s", strings.TrimPrefix(k.String(), "abr-"))
		shares := results[i].RungShare()
		for r := 0; r < len(media.DefaultLadder()); r++ {
			s := 0.0
			if r < len(shares) {
				s = shares[r]
			}
			fmt.Printf(" %7.0f%%", s*100)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("the fixed fleet keeps requesting 3.8 Mbps through a 0.75 Mbps share and stalls;")
	fmt.Println("the adaptive fleets trade bitrate for smooth playback — the client-side answer")
	fmt.Println("to the congestion events PR 2 made expressible.")
	fmt.Printf("[%d sessions x 3 controllers simulated in %v]\n",
		clients, time.Since(start).Round(time.Millisecond))
}
