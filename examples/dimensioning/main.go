// Dimensioning uses the Section 6 model the way a network operator
// would: given an expected video workload, how much link capacity does
// video streaming need, and how does the answer change when the
// platform raises its default encoding rate (the paper's smoothness
// result)?
//
//	go run ./examples/dimensioning
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	fmt.Println("=== dimensioning a campus uplink for video streaming (Section 6.1) ===")
	fmt.Println()

	// A campus: one new streaming session every 2 seconds on average,
	// 4-minute videos, bulk phases at 10 Mbps.
	base := model.Params{
		Lambda:       0.5,
		MeanRate:     1e6,
		MeanDuration: 240,
		MeanDownRate: 10e6,
	}
	fmt.Printf("workload: %s\n\n", base)
	fmt.Printf("%-22s %-12s %-12s %-10s\n", "scenario", "E[R] Mbps", "+2sigma", "CoV")
	for _, sc := range []struct {
		label string
		scale float64
	}{
		{"today (360p mix)", 1},
		{"HD shift (2x rate)", 2},
		{"full HD shift (4x)", 4},
	} {
		p := base
		p.MeanRate *= sc.scale
		fmt.Printf("%-22s %-12.1f %-12.1f %-10.3f\n",
			sc.label, core.AggregateMean(p)/1e6, core.DimensionLink(p, 2)/1e6, model.CoV(p))
	}
	fmt.Println()
	fmt.Println("E[R] grows linearly with the encoding rate while the coefficient of")
	fmt.Println("variation falls as 1/sqrt(rate): higher-rate traffic is smoother, so")
	fmt.Println("the provisioned headroom above the mean shrinks in relative terms —")
	fmt.Println("the paper's Section 6.1 observation.")
	fmt.Println()

	// The strategy-independence result: the same answer holds whether
	// the platform uses bulk transfers or ON-OFF pacing.
	fmt.Println("Monte-Carlo check (strategy independence of mean and variance):")
	for _, s := range []model.Strategy{model.Bulk, model.ShortCycles, model.LongCycles} {
		cfg := model.SimConfig{
			Params: base, Strategy: s,
			BlockBits: 64 << 13, Accum: 1.25,
			Horizon: 6000, Step: 1, Seed: 11,
			RateJitter: 0.3, DurJitter: 0.3,
		}
		if s == model.LongCycles {
			cfg.BlockBits = 4 << 23
		}
		r := model.Simulate(cfg)
		fmt.Printf("  %-14s mean %6.1f Mbps  std %6.1f Mbps\n", s, r.Mean/1e6, math.Sqrt(r.Var)/1e6)
	}
	fmt.Printf("  %-14s mean %6.1f Mbps  std %6.1f Mbps\n", "closed form",
		core.AggregateMean(base)/1e6, math.Sqrt(core.AggregateVar(base))/1e6)
}
