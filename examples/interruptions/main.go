// Interruptions studies the Section 6.2 question: when viewers abandon
// videos early (60% of YouTube videos are watched for less than 20% of
// their duration, per Finamore et al.), how many downloaded bytes are
// wasted under each streaming strategy — measured on simulated traffic
// AND predicted by the eq. 8-9 model.
//
//	go run ./examples/interruptions
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/model"
	"repro/internal/netem"
)

func main() {
	fmt.Println("=== wasted bytes under lack-of-interest interruptions (Section 6.2) ===")
	fmt.Println()

	// Worked example (eq. 7): with YouTube Flash parameters, videos
	// shorter than ~53 s are fully downloaded even by viewers who quit
	// after 20%.
	th := core.FullDownloadThreshold(40, 1.25, 0.2)
	fmt.Printf("eq. 7 worked example: B'=40 s, k=1.25, beta=0.2 -> L = %.1f s (paper: 53.3 s)\n\n", th)

	// Measured waste: stream the same 400 s video with each strategy
	// and interrupt at 20% of the duration.
	video := media.Video{ID: 300, EncodingRate: 1.2e6, Duration: 400 * time.Second, Container: media.HTML5, Resolution: "360p"}
	flashVideo := video
	flashVideo.Container = media.Flash
	cut := 80.0 // 20% of 400 s
	watched := video.EncodingRate / 8 * cut

	fmt.Printf("measured on simulated sessions (interrupt at %.0f s):\n", cut)
	fmt.Printf("%-34s %-14s %-12s\n", "application", "downloaded", "wasted MB")
	cases := []struct {
		label string
		app   core.Application
		video media.Video
	}{
		{"Firefox/HTML5 (no ON-OFF)", core.HTML5Firefox, video},
		{"Chrome/HTML5 (long ON-OFF)", core.HTML5Chrome, video},
		{"Flash (short ON-OFF)", core.FlashIE, flashVideo},
	}
	for i, c := range cases {
		res, err := core.Stream(core.StreamConfig{
			Video: c.video, App: c.app, Network: netem.Research,
			Seed: int64(20 + i), DurationSeconds: cut,
		})
		if err != nil {
			panic(err)
		}
		total := float64(res.Analysis.TotalBytes)
		waste := total - watched
		if waste < 0 {
			waste = 0
		}
		fmt.Printf("%-34s %-14.1f %-12.1f\n", c.label, total/1e6, waste/1e6)
	}
	fmt.Println()

	// Model prediction over a realistic abandonment population.
	fmt.Println("model prediction (eqs. 8-9, lambda = 0.5/s, Finamore-style betas):")
	rng := rand.New(rand.NewSource(9))
	n := 8000
	type pick struct{ rate, dur, beta float64 }
	pop := make([]pick, n)
	for i := range pop {
		beta := rng.Float64() * 0.2
		if rng.Float64() > 0.6 {
			beta = 0.2 + rng.Float64()*0.8
		}
		pop[i] = pick{rate: 0.2e6 + rng.Float64()*1.3e6, dur: 60 + rng.Float64()*540, beta: beta}
	}
	for _, c := range []struct {
		label  string
		buffer func(pick) float64
		accum  float64
	}{
		{"short ON-OFF (B'=40 s, k=1.25)", func(pick) float64 { return 40 }, 1.25},
		{"long ON-OFF  (B'~12 MB, k=1.34)", func(p pick) float64 { return 12e6 * 8 / p.rate }, 1.34},
		{"no ON-OFF    (whole video)", func(p pick) float64 { return p.dur }, 1},
	} {
		w := model.WasteRate(0.5, n, func(i int) model.Session {
			p := pop[i]
			b := c.buffer(p)
			if b > p.dur {
				b = p.dur
			}
			return model.Session{Rate: p.rate, Duration: p.dur, Buffer: b, Accum: c.accum, Beta: p.beta}
		})
		fmt.Printf("  %-34s E[R'] = %5.2f Mbps\n", c.label, w/1e6)
	}
	fmt.Println()
	fmt.Println("Both views agree with Table 2: bulk transfers waste the most, short")
	fmt.Println("ON-OFF pacing the least. Small buffers and accumulation ratios close")
	fmt.Println("to one keep the waste down (the paper's engineering recommendation).")
}
