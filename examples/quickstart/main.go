// Quickstart: stream one YouTube Flash video through the Research
// network for 180 simulated seconds, then print the Figure-1-style
// phase anatomy the library recovered from the packet trace alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/netem"
)

func main() {
	video := media.Video{
		ID:           100,
		Title:        "quickstart",
		EncodingRate: 1.2e6, // 1.2 Mbps, a typical 360p clip
		Duration:     5 * time.Minute,
		Container:    media.Flash,
		Resolution:   "360p",
	}

	res, err := core.Stream(core.StreamConfig{
		Video:   video,
		App:     core.FlashIE,
		Network: netem.Research,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	a := res.Analysis
	fmt.Println("=== quickstart: one Flash streaming session (Figure 1 anatomy) ===")
	fmt.Printf("video            : %s\n", video)
	fmt.Printf("network          : %s (RTT %v)\n", netem.Research.Name, netem.Research.RTT)
	fmt.Printf("captured         : %d packets, %.1f MB downstream, %d TCP connection(s)\n",
		res.Packets, float64(a.TotalBytes)/1e6, a.ConnCount)
	fmt.Println()
	fmt.Printf("buffering phase  : ends at %.1f s with %.2f MB (%.0f s of playback)\n",
		a.BufferingEnd.Seconds(), float64(a.BufferedBytes)/1e6, a.PlaybackBuffered())
	fmt.Printf("steady state     : %d ON-OFF cycles, block median %.0f kB\n",
		len(a.Blocks), float64(a.MedianBlock())/1e3)
	fmt.Printf("steady-state rate: %.2f Mbps -> accumulation ratio %.2f\n",
		a.SteadyRate/1e6, a.AccumulationRatio)
	fmt.Printf("encoding rate    : %.2f Mbps, recovered from the %s header in the captured payload\n",
		a.Media.EncodingRate/1e6, a.Media.Container)
	fmt.Printf("classification   : %s\n", a.Strategy)
	fmt.Println()
	fmt.Println("The 64 kB blocks at accumulation ratio ~1.25 after a ~40 s burst are")
	fmt.Println("the YouTube Flash server-side pacing the paper reports in Section 5.1.1.")
}
