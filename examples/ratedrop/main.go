// Ratedrop: the same Flash session twice — once on a frozen Residence
// link, once with the downlink dropping below the encoding rate
// mid-session — showing how a time-varying network rewrites the wire
// pattern the classifier sees. This is the scenario subsystem's
// smallest useful program.
//
//	go run ./examples/ratedrop
package main

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	base := scenario.Spec{
		Name:    "static",
		Profile: netem.Residence, // 7.7 Mbps ADSL vantage
		Player:  scenario.Flash,  // server-paced short ON-OFF
		Video: media.Video{
			ID: 100, EncodingRate: 1e6, Duration: 5 * time.Minute,
			Container: media.Flash, Resolution: "360p",
		},
		Duration: 3 * time.Minute,
		Seed:     42,
	}
	drop := base
	drop.Name = "ratedrop"
	// At t=30s the downlink collapses to 800 kbps — below the 1 Mbps
	// encoding rate — then recovers with a 10 s ramp at 2m.
	drop.Down = netem.Dynamics{}.
		Then(netem.RateStep(30*time.Second, 800*netem.Kbps)).
		Then(netem.RateRamp(2*time.Minute, 10*time.Second, 7.7*netem.Mbps))

	fmt.Println("=== ratedrop: mid-session bandwidth drop vs static baseline ===")
	for _, sp := range []scenario.Spec{base, drop} {
		r := scenario.RunIsolated(runner.Options{}, sp)[0]
		a := r.Analysis
		fmt.Printf("%-9s: %-14s %3d blocks (median %4.0f kB), %5.2f MB downloaded, retrans %.2f%%\n",
			sp.Name, a.Strategy, len(a.Blocks), float64(a.MedianBlock())/1e3,
			float64(r.Downloaded)/1e6, a.RetransRate*100)
	}
	fmt.Println()
	fmt.Println("The pinned link leaves no idle gaps: the short ON-OFF cycles of the")
	fmt.Println("static run melt into a continuous bulk-like transfer until the ramp")
	fmt.Println("restores headroom — a strategy switch caused purely by the network.")
}
