// Strategymatrix reproduces Table 1 live: it streams one video for
// every (service, container, application) combination the paper
// measured and classifies each captured trace into no/short/long
// ON-OFF cycles.
//
//	go run ./examples/strategymatrix            # quick (60 s captures)
//	go run ./examples/strategymatrix -full      # the paper's 180 s
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "use the paper's 180 s captures (slower)")
	flag.Parse()

	o := experiments.Options{N: 4, Seed: 7, Duration: 60 * time.Second}
	if *full {
		o.Duration = 180 * time.Second
	}
	res := experiments.Table1(o)
	fmt.Print(res.Artifact.String())
	ok, total := res.Matches()
	if ok == total {
		fmt.Println("\nEvery cell reproduces the paper's Table 1.")
	} else {
		fmt.Printf("\n%d of %d cells match; divergent cells sit on the iPad's\n", ok, total)
		fmt.Println("Multiple/Short boundary, which is fuzzy in the paper as well.")
	}
}
