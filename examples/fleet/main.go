// Fleet walkthrough: 1,000 concurrent streaming sessions of a mixed
// strategy fleet (half Short ON-OFF Flash, half No ON-OFF Firefox) on
// the multi-tier tree topology — per-client access links feeding
// shared aggregation links feeding one core uplink, the shape at
// which the paper argues streaming strategies matter in aggregate.
//
// Everything reported is a streaming aggregate statistic: per-client
// QoE quantiles come from mergeable sketches, per-tier utilization
// from fixed-width bins. Memory stays O(clients) no matter how many
// packets flow, and the result is bit-identical for any worker count.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	f := scenario.Fleet{
		Mix: []scenario.MixEntry{
			{Player: scenario.Flash, Weight: 1},        // Short ON-OFF
			{Player: scenario.FirefoxHtml5, Weight: 1}, // No ON-OFF
		},
		Clients:  1000,
		Duration: 60 * time.Second,
		Warmup:   20 * time.Second,
		Arrival:  scenario.Arrival{Kind: scenario.Staggered, Window: 15 * time.Second},
		Seed:     42,
		// The fleet is partitioned into cells — one aggregation group
		// (32 clients) per cell, each on its own tree — simulated in
		// parallel; the sketches and binned series fold in cell order,
		// so the artifact does not depend on the worker count (or on
		// having more than one CPU).
		UtilBin: time.Second,
	}

	fmt.Println("=== fleet: 1,000 mixed-strategy sessions on a multi-tier tree ===")
	start := time.Now()
	res := scenario.RunFleet(runner.Options{}, f)
	fmt.Print(res.Render())

	fmt.Println()
	fmt.Println("per-tier downstream utilization (Mbps per link, 10 s means):")
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "t", "core", "agg", "access", "active")
	core := res.CoreUtil.PerSecond()
	agg := res.AggUtil.PerSecond()
	access := res.AccessUtil.PerSecond()
	conc := res.Concurrency()
	step := 10
	for i := 0; i+step <= len(core); i += step {
		var c, a, ac, n float64
		for j := i; j < i+step; j++ {
			c += core[j]
			a += agg[j]
			ac += access[j]
			n += conc[j]
		}
		c, a, ac, n = c/float64(step), a/float64(step), ac/float64(step), n/float64(step)
		fmt.Printf("%-8s %-10.1f %-10.1f %-10.2f %-10.0f\n",
			fmt.Sprintf("%ds", i),
			c*8/1e6/float64(res.Groups),
			a*8/1e6/float64(res.Groups),
			ac*8/1e6/float64(res.Clients),
			n)
	}

	fmt.Println()
	fmt.Printf("the ON-OFF half of the mix shows up as aggregation-link burstiness: CV p50 %.3f, peak/mean high bins\n",
		res.AggBurst.Quantile(0.5))
	fmt.Printf("[1,000 clients simulated in %v]\n", time.Since(start).Round(time.Millisecond))
}
