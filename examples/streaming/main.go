// Streaming: constant-memory analysis of a shared flash crowd. Six
// Flash clients pile onto one Residence bottleneck inside 20 seconds;
// every client's capture flows through an online analysis.Streaming
// sink attached at the tap, so the run holds per-flow state and a few
// fixed-width series bins instead of hundreds of thousands of buffered
// packets (Outcome.Trace stays nil — nothing to buffer). This is the
// sink pipeline the experiments run on by default; tcpdump mode is one
// Spec.Buffered flag away when a pcap is actually wanted.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/scenario"
)

func main() {
	sp := scenario.Spec{
		Name:    "flash-crowd",
		Profile: netem.Residence, // 7.7 Mbps ADSL: six streams oversubscribe it
		Player:  scenario.Flash,
		Video: media.Video{
			ID: 300, EncodingRate: 1e6, Duration: 5 * time.Minute,
			Container: media.Flash, Resolution: "360p",
		},
		Sessions: 6,
		Arrival:  scenario.Arrival{Kind: scenario.FlashCrowd, Window: 20 * time.Second},
		Duration: 2 * time.Minute,
		Seed:     7,
		// Ask the streaming analyzer for 10-second series bins: the
		// O(duration/bin) form of the download curve.
		SeriesBin: 10 * time.Second,
	}

	fmt.Println("=== streaming: flash crowd on one shared bottleneck, O(flows) memory ===")
	res := scenario.RunShared(sp)
	fmt.Printf("bottleneck : offered %d pkts, induced loss %.2f%%, aggregate %.2f Mbps\n",
		res.Offered, res.InducedLoss*100, res.AggregateMbps)
	fmt.Printf("strategies : %s\n\n", res.StrategyMix())

	fmt.Printf("%-3s %-8s %-9s %-14s %-10s %s\n", "id", "start", "packets", "strategy", "MB down", "buffered trace?")
	for _, o := range res.Outcomes {
		a := o.Analysis
		fmt.Printf("%-3d %-8s %-9d %-14s %-10.2f %v\n",
			o.Index, o.Start.Round(time.Second), o.Packets, a.Strategy,
			float64(a.TotalBytes)/1e6, o.Trace != nil)
	}

	// The binned download curve of the first arrival: each row is one
	// 10 s bin — fixed memory no matter how long the capture runs.
	fmt.Println()
	fmt.Println("client 0 download curve (10 s bins, # = 250 kB):")
	for _, b := range res.Outcomes[0].Analysis.Bins {
		bar := strings.Repeat("#", int(b.Bytes/250_000))
		fmt.Printf("  %4ds %7.2f MB %s\n", int(b.Start.Seconds()), float64(b.Bytes)/1e6, bar)
	}

	fmt.Println()
	fmt.Println("Every number above came out of sinks that never stored a packet:")
	fmt.Println("the analyzer keeps per-flow counters, the cycle list, and these")
	fmt.Println("bins, while segment structs are recycled through a pool the moment")
	fmt.Println("they are delivered. Set Spec.Buffered to flip the same run back to")
	fmt.Println("tcpdump-then-analyze and export pcaps — the classifier output is")
	fmt.Println("bit-identical either way (enforced by the equivalence test suite).")
}
